// Unit tests: the Module actor framework (queueing, service times, stats)
// and the SelectionModule.
#include <gtest/gtest.h>

#include "runtime/module.h"
#include "sm/selection_module.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;
using testing::TestDb;

/// A module that echoes tuples after a fixed service time.
class EchoModule : public Module {
 public:
  EchoModule(Simulation* sim, SimTime service)
      : Module(sim, "echo"), service_(service) {}
  ModuleKind kind() const override { return ModuleKind::kOperator; }

 protected:
  SimTime ServiceTime(const Tuple&) const override { return service_; }
  void Process(TuplePtr t) override { Emit(std::move(t)); }

 private:
  SimTime service_;
};

TEST(ModuleTest, SingleServerQueueing) {
  Simulation sim;
  EchoModule echo(&sim, Millis(10));
  std::vector<SimTime> emit_times;
  echo.SetSink([&](TuplePtr, Module*) { emit_times.push_back(sim.now()); });
  for (int i = 0; i < 3; ++i) {
    echo.Accept(Tuple::MakeSingleton(1, 0, MakeRow({Value::Int64(i)})));
  }
  EXPECT_EQ(echo.queue_length(), 2u);  // one in service
  sim.Run();
  ASSERT_EQ(emit_times.size(), 3u);
  EXPECT_EQ(emit_times[0], Millis(10));
  EXPECT_EQ(emit_times[1], Millis(20));  // serialized
  EXPECT_EQ(emit_times[2], Millis(30));
  const ModuleStats& stats = echo.stats();
  EXPECT_EQ(stats.tuples_in, 3u);
  EXPECT_EQ(stats.tuples_out, 3u);
  EXPECT_EQ(stats.busy_time, static_cast<uint64_t>(Millis(30)));
  EXPECT_EQ(stats.queue_wait_time, static_cast<uint64_t>(Millis(30)));  // 0+10+20
  EXPECT_EQ(stats.max_queue_len, 2u);
  EXPECT_GT(stats.MeanLatency(), 0.0);
  EXPECT_TRUE(echo.Quiescent());
}

TEST(ModuleTest, KindNames) {
  EXPECT_STREQ(ModuleKindName(ModuleKind::kSelection), "SM");
  EXPECT_STREQ(ModuleKindName(ModuleKind::kScanAm), "ScanAM");
  EXPECT_STREQ(ModuleKindName(ModuleKind::kIndexAm), "IndexAM");
  EXPECT_STREQ(ModuleKindName(ModuleKind::kStem), "SteM");
  EXPECT_STREQ(ModuleKindName(ModuleKind::kOperator), "Op");
}

class SmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.AddTable("R", IntSchema({"a"}), IntRows({}), {ScanSpec("R.scan")});
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddSelection("R.a", CompareOp::kGt, Value::Int64(5));
    query_ = qb.Build().ValueOrDie();
    ctx_.query = &query_;
    ctx_.sim = &sim_;
    sm_ = std::make_unique<SelectionModule>(&ctx_, &query_.predicates()[0]);
    sm_->SetSink([this](TuplePtr t, Module*) { out_.push_back(std::move(t)); });
  }

  TuplePtr Send(int64_t a) {
    TuplePtr t = Tuple::MakeSingleton(1, 0, MakeRow({Value::Int64(a)}));
    sm_->Accept(t);
    sim_.Run();
    return t;
  }

  TestDb db_;
  QuerySpec query_;
  Simulation sim_;
  QueryContext ctx_;
  std::unique_ptr<SelectionModule> sm_;
  std::vector<TuplePtr> out_;
};

TEST_F(SmTest, PassingTupleBouncedWithDoneBitSet) {
  TuplePtr t = Send(9);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_TRUE(t->PassedPredicate(0));
}

TEST_F(SmTest, FailingTupleDropped) {
  Send(3);
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(sm_->dropped(), 1u);
}

TEST_F(SmTest, AlreadyPassedIsIdempotent) {
  TuplePtr t = Tuple::MakeSingleton(1, 0, MakeRow({Value::Int64(2)}));
  t->MarkPredicatePassed(0);  // e.g. verified by a SteM probe
  sm_->Accept(t);
  sim_.Run();
  // Not re-evaluated (the value would fail): bounced straight through.
  EXPECT_EQ(out_.size(), 1u);
}

}  // namespace
}  // namespace stems
