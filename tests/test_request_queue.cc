// Deterministic (single-threaded) unit tests for the server's lane-fair
// RequestQueue: round-robin dequeue across tenant lanes, per-lane capacity,
// pre-auth lane priority, control-message ordering, and the backpressure
// high-water mark. The concurrent behavior is covered by the
// schedule-exploration harness (tests/test_schedule_explore.cc).
#include <gtest/gtest.h>

#include <chrono>
#include <string>
#include <vector>

#include "server/request_queue.h"

namespace stems::server {
namespace {

Request Frame(uint32_t lane, const std::string& payload) {
  Request request;
  request.kind = Request::Kind::kFrame;
  request.session_id = lane;  // one session per lane in these tests
  request.lane = lane;
  request.payload = payload;
  return request;
}

std::string PopPayload(RequestQueue* queue) {
  Request out;
  EXPECT_TRUE(queue->PopWithTimeout(&out, std::chrono::milliseconds(50)));
  return out.payload;
}

TEST(RequestQueueTest, RoundRobinAcrossTenantLanes) {
  RequestQueue queue(/*per_lane_capacity=*/8);
  // Tenant 1 floods; tenants 2 and 3 each queue one request.
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(queue.TryPush(Frame(1, "a" + std::to_string(i))));
  }
  ASSERT_TRUE(queue.TryPush(Frame(2, "b0")));
  ASSERT_TRUE(queue.TryPush(Frame(3, "c0")));

  // One request per lane per turn, ascending lane id, wrapping — the
  // chatty tenant cannot crowd the others out of the pump.
  EXPECT_EQ(PopPayload(&queue), "a0");
  EXPECT_EQ(PopPayload(&queue), "b0");
  EXPECT_EQ(PopPayload(&queue), "c0");
  EXPECT_EQ(PopPayload(&queue), "a1");
  EXPECT_EQ(PopPayload(&queue), "a2");
  EXPECT_EQ(PopPayload(&queue), "a3");
  EXPECT_EQ(queue.size(), 0u);
}

TEST(RequestQueueTest, PerLaneFifoIsPreserved) {
  RequestQueue queue(/*per_lane_capacity=*/8);
  ASSERT_TRUE(queue.TryPush(Frame(1, "a0")));
  ASSERT_TRUE(queue.TryPush(Frame(2, "b0")));
  ASSERT_TRUE(queue.TryPush(Frame(1, "a1")));
  ASSERT_TRUE(queue.TryPush(Frame(2, "b1")));

  std::vector<std::string> lane1;
  std::vector<std::string> lane2;
  Request out;
  while (queue.PopWithTimeout(&out, std::chrono::milliseconds(1))) {
    (out.lane == 1 ? lane1 : lane2).push_back(out.payload);
  }
  EXPECT_EQ(lane1, (std::vector<std::string>{"a0", "a1"}));
  EXPECT_EQ(lane2, (std::vector<std::string>{"b0", "b1"}));
}

TEST(RequestQueueTest, CapacityBoundIsPerLaneNotGlobal) {
  RequestQueue queue(/*per_lane_capacity=*/2);
  ASSERT_TRUE(queue.TryPush(Frame(1, "a0")));
  ASSERT_TRUE(queue.TryPush(Frame(1, "a1")));
  // Lane 1 is full — and must stay full without consuming lane 2's budget.
  Request overflow = Frame(1, "a2");
  EXPECT_FALSE(queue.TryPush(std::move(overflow)));
  // The rejected request is left intact for the caller's retry.
  EXPECT_EQ(overflow.payload, "a2");
  EXPECT_TRUE(queue.TryPush(Frame(2, "b0")));
  EXPECT_TRUE(queue.TryPush(Frame(2, "b1")));
  EXPECT_EQ(queue.size(), 4u);
}

TEST(RequestQueueTest, ControlBypassesCapacityButKeepsLaneOrder) {
  RequestQueue queue(/*per_lane_capacity=*/1);
  ASSERT_TRUE(queue.TryPush(Frame(1, "a0")));
  EXPECT_FALSE(queue.TryPush(Frame(1, "a1")));  // lane full

  // The end-of-input marker ignores the bound but queues *behind* the
  // lane's pending frames: pipelined requests are answered before the
  // session winds down (the half-close contract).
  Request eof;
  eof.kind = Request::Kind::kEndOfInput;
  eof.session_id = 1;
  eof.lane = 1;
  queue.PushControl(std::move(eof));

  Request out;
  ASSERT_TRUE(queue.PopWithTimeout(&out, std::chrono::milliseconds(50)));
  EXPECT_EQ(out.kind, Request::Kind::kFrame);
  EXPECT_EQ(out.payload, "a0");
  ASSERT_TRUE(queue.PopWithTimeout(&out, std::chrono::milliseconds(50)));
  EXPECT_EQ(out.kind, Request::Kind::kEndOfInput);
}

TEST(RequestQueueTest, PreAuthLaneDrainsBeforeTenantLanes) {
  RequestQueue queue(/*per_lane_capacity=*/8);
  ASSERT_TRUE(queue.TryPush(Frame(2, "b0")));
  ASSERT_TRUE(queue.TryPush(Frame(0, "hello")));
  ASSERT_TRUE(queue.TryPush(Frame(1, "a0")));

  // Lane 0 carries a session's pre-authentication frames; it must drain
  // before any tenant lane so a session's requests can never reorder
  // across its Hello-time lane switch.
  EXPECT_EQ(PopPayload(&queue), "hello");
  EXPECT_EQ(PopPayload(&queue), "a0");  // round-robin resumes from lane 1
  EXPECT_EQ(PopPayload(&queue), "b0");
}

TEST(RequestQueueTest, HighWaterTracksDeepestTotal) {
  RequestQueue queue(/*per_lane_capacity=*/8);
  EXPECT_EQ(queue.high_water(), 0u);
  ASSERT_TRUE(queue.TryPush(Frame(1, "a0")));
  ASSERT_TRUE(queue.TryPush(Frame(2, "b0")));
  ASSERT_TRUE(queue.TryPush(Frame(2, "b1")));
  EXPECT_EQ(queue.high_water(), 3u);
  Request out;
  ASSERT_TRUE(queue.PopWithTimeout(&out, std::chrono::milliseconds(50)));
  ASSERT_TRUE(queue.TryPush(Frame(1, "a1")));
  // High water is a running maximum, not the current depth.
  EXPECT_EQ(queue.high_water(), 3u);
  EXPECT_EQ(queue.size(), 3u);
}

TEST(RequestQueueTest, EmptyPopTimesOut) {
  RequestQueue queue(/*per_lane_capacity=*/1);
  Request out;
  EXPECT_FALSE(queue.PopWithTimeout(&out, std::chrono::milliseconds(5)));
}

}  // namespace
}  // namespace stems::server
