// Unit tests: common substrate (Status/Result, Rng, Zipf).
#include <gtest/gtest.h>

#include <set>

#include "common/rng.h"
#include "common/status.h"

namespace stems {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad column");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad column");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad column");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (auto code : {StatusCode::kOk, StatusCode::kInvalidArgument,
                    StatusCode::kNotFound, StatusCode::kAlreadyExists,
                    StatusCode::kOutOfRange, StatusCode::kUnsupported,
                    StatusCode::kInternal, StatusCode::kResourceExhausted,
                    StatusCode::kInvalidQuery}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.Value(), 7);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r(std::make_unique<int>(3));
  ASSERT_TRUE(r.ok());
  auto p = std::move(r).ValueOrDie();
  EXPECT_EQ(*p, 3);
}

Status FailingHelper() { return Status::Internal("boom"); }

Status UsesReturnNotOk() {
  STEMS_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

Result<int> ProducesValue() { return 5; }

Status UsesAssignOrReturn(int* out) {
  STEMS_ASSIGN_OR_RETURN(int v, ProducesValue());
  *out = v;
  return Status::OK();
}

TEST(ResultTest, Macros) {
  EXPECT_EQ(UsesReturnNotOk().code(), StatusCode::kInternal);
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(&out).ok());
  EXPECT_EQ(out, 5);
}

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 3);
}

TEST(RngTest, BoundedStaysInRange) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.NextBounded(17), 17u);
    int64_t v = rng.NextInt(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, BoundedCoversRange) {
  Rng rng(4);
  std::set<uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.NextBounded(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(7);
  auto perm = rng.Permutation(100);
  std::set<size_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(ZipfTest, SkewedTowardSmallRanks) {
  ZipfGenerator zipf(1000, 1.2, 5);
  size_t low = 0, total = 20000;
  for (size_t i = 0; i < total; ++i) {
    if (zipf.Next() < 10) ++low;
  }
  // With s=1.2 the top-10 ranks carry a large share of the mass.
  EXPECT_GT(low, total / 4);
}

TEST(ZipfTest, ZeroExponentIsUniformish) {
  ZipfGenerator zipf(10, 0.0, 6);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 10000; ++i) ++counts[zipf.Next()];
  for (int c : counts) {
    EXPECT_GT(c, 700);
    EXPECT_LT(c, 1300);
  }
}

}  // namespace
}  // namespace stems
