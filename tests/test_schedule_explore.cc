// Schedule-exploration harnesses: the model-checking scheduler
// (src/check/) driving *real* engine components — ShardedStem's §3.1
// visibility contract, the LimitGate admission race, spill-lite victim /
// fault-in vs concurrent probes, the server RequestQueue, and the
// TenantGovernor — over systematically explored thread interleavings.
//
// The harness proves its own teeth with a mutation check: flipping
// ShardedStem::mutation_ts_outside_lock_for_test moves the §3.1 timestamp
// issuance outside the shard critical section, and the explorer must find
// (and deterministically replay) an interleaving that loses a match.
//
// Failing schedules print a replay command:
//   STEMS_SCHEDULE='v1:...' ./test_schedule_explore --gtest_filter=...
// and fixed ones are pinned forever in tests/schedule_corpus/ (replayed by
// the Corpus test below via STEMS_CORPUS_DIR).
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "check/explorer.h"
#include "check/scheduler.h"
#include "common/thread_annotations.h"
#include "exec/limit_gate.h"
#include "exec/sharded_stem.h"
#include "obs/metrics_registry.h"
#include "query/query_spec.h"
#include "server/request_queue.h"
#include "server/tenant_governor.h"
#include "types/row.h"
#include "types/value.h"

namespace stems {
namespace {

using check::Explorer;
using check::TestCase;
using check::TestFactory;

// --- shared fixtures ---------------------------------------------------------

/// R(a) JOIN S(x) ON R.a = S.x — the two-slot equi-join every stem harness
/// runs under. Built once; read-only during exploration.
const QuerySpec& JoinSpec() {
  static const QuerySpec* spec = [] {
    static Catalog catalog;
    TableDef r;
    r.name = "R";
    r.schema = Schema({{"a", ValueType::kInt64}});
    TableDef s;
    s.name = "S";
    s.schema = Schema({{"x", ValueType::kInt64}});
    EXPECT_TRUE(catalog.AddTable(std::move(r)).ok());
    EXPECT_TRUE(catalog.AddTable(std::move(s)).ok());
    QueryBuilder qb(catalog);
    qb.AddTable("R").AddTable("S");
    qb.AddJoin("R.a", "S.x");
    auto built = qb.Build();
    EXPECT_TRUE(built.ok()) << built.status().ToString();
    return new QuerySpec(std::move(built).ValueOrDie());
  }();
  return *spec;
}

/// RAII toggle for the §3.1 mutation switch.
class ScopedMutation {
 public:
  ScopedMutation() { ShardedStem::mutation_ts_outside_lock_for_test = true; }
  ~ScopedMutation() { ShardedStem::mutation_ts_outside_lock_for_test = false; }
};

Explorer::Options SmokeOptions(uint64_t seed = 1) {
  Explorer::Options opts;
  opts.random_schedules = 120;
  opts.pct_schedules = 60;
  opts.pct_depth = 3;
  opts.seed = seed;
  return opts;
}

// --- §3.1 visibility: "exactly the newer row observes the older" -------------

/// Two threads, one row each on opposite slots: build your row, then probe
/// the peer stem with your own build timestamp. The symmetric-join
/// guarantee says exactly ONE of the two probes sees the other's row: the
/// newer-timestamped row observes the older, never both, never neither.
struct VisibilityState {
  Atomic<BuildTs> ts{1};
  std::unique_ptr<ShardedStem> stem_r;
  std::unique_ptr<ShardedStem> stem_s;
  int seen_by_r = 0;  // r's probe of stem_s matched s
  int seen_by_s = 0;  // s's probe of stem_r matched r
};

TestFactory VisibilityFactory() {
  return [] {
    const QuerySpec& query = JoinSpec();
    auto st = std::make_shared<VisibilityState>();
    st->stem_r =
        std::make_unique<ShardedStem>(0, query, /*num_shards=*/1, &st->ts,
                                      nullptr);
    st->stem_s =
        std::make_unique<ShardedStem>(1, query, /*num_shards=*/1, &st->ts,
                                      nullptr);
    TestCase tc;
    tc.threads.push_back([st] {
      const auto built = st->stem_r->Build(MakeRow({Value::Int64(7)}));
      ShardedStem::Bindings bind{{0, Value::Int64(7)}};
      st->stem_s->Probe(bind, built.ts,
                        [&](const RowRef&, BuildTs) { ++st->seen_by_r; });
    });
    tc.threads.push_back([st] {
      const auto built = st->stem_s->Build(MakeRow({Value::Int64(7)}));
      ShardedStem::Bindings bind{{0, Value::Int64(7)}};
      st->stem_r->Probe(bind, built.ts,
                        [&](const RowRef&, BuildTs) { ++st->seen_by_s; });
    });
    tc.check = [st]() -> std::string {
      const int cross = st->seen_by_r + st->seen_by_s;
      if (cross == 1) return "";
      return "expected exactly 1 cross observation, got " +
             std::to_string(cross) + " (seen_by_r=" +
             std::to_string(st->seen_by_r) +
             " seen_by_s=" + std::to_string(st->seen_by_s) + ")";
    };
    return tc;
  };
}

TEST(StemVisibility, HoldsUnderRandomAndPctExploration) {
  Explorer explorer(SmokeOptions(/*seed=*/11));
  const auto result = explorer.Explore("stem_visibility", VisibilityFactory());
  EXPECT_TRUE(result.ok) << result.failure << "\ntrace: "
                         << result.failing_trace;
  EXPECT_GT(result.schedules, 0u);
}

TEST(StemVisibility, HoldsUnderExhaustiveDfs) {
  // The model-checking mode proper: every interleaving of the 2-thread
  // configuration (up to the schedule cap) passes on correct code.
  Explorer::Options opts;
  opts.random_schedules = 0;
  opts.pct_schedules = 0;
  opts.dfs_max_schedules = 4000;
  opts.dfs_max_depth = 64;
  Explorer explorer(opts);
  const auto result = explorer.Explore("stem_visibility_dfs",
                                       VisibilityFactory());
  EXPECT_TRUE(result.ok) << result.failure << "\ntrace: "
                         << result.failing_trace;
  EXPECT_GT(result.schedules, 100u)
      << "DFS explored suspiciously few schedules";
}

// --- the mutation check: the harness must catch misordered code --------------

TEST(StemVisibilityMutation, SeededExplorationFindsTheLostMatch) {
  ScopedMutation mutate;
  Explorer explorer(SmokeOptions(/*seed=*/11));
  const auto result =
      explorer.Explore("stem_visibility_mutated", VisibilityFactory());
  ASSERT_FALSE(result.ok)
      << "timestamp issuance outside the critical section must be caught";
  EXPECT_NE(result.failure.find("cross observation"), std::string::npos)
      << result.failure;
  ASSERT_FALSE(result.failing_trace.empty());

  // The recorded decision trace replays the failure deterministically —
  // ten times out of ten, on a fresh scheduler each time.
  for (int i = 0; i < 10; ++i) {
    const auto replay = explorer.Replay("stem_visibility_mutated",
                                        VisibilityFactory(),
                                        result.failing_trace);
    ASSERT_FALSE(replay.ok) << "replay " << i << " did not reproduce";
    // Explore prefixes the finding strategy ("[random] ..."); the replayed
    // failure is the same text without it.
    EXPECT_NE(result.failure.find(replay.failure), std::string::npos)
        << replay.failure << " vs " << result.failure;
  }

  // And the bug does NOT reproduce on the *correct* code: replaying the
  // same trace there either diverges (the fixed code has a different
  // sync-point sequence, so the trace no longer applies) or completes —
  // but never loses the match. The failure is in the ordering under test,
  // not in the harness.
  ShardedStem::mutation_ts_outside_lock_for_test = false;
  const auto fixed = explorer.Replay("stem_visibility_fixed",
                                     VisibilityFactory(),
                                     result.failing_trace);
  ShardedStem::mutation_ts_outside_lock_for_test = true;  // ScopedMutation
  EXPECT_EQ(fixed.failure.find("cross observation"), std::string::npos)
      << fixed.failure;
}

TEST(StemVisibilityMutation, ExhaustiveDfsFindsTheLostMatch) {
  ScopedMutation mutate;
  Explorer::Options opts;
  opts.random_schedules = 0;
  opts.pct_schedules = 0;
  opts.dfs_max_schedules = 4000;
  Explorer explorer(opts);
  const auto result =
      explorer.Explore("stem_visibility_mutated_dfs", VisibilityFactory());
  ASSERT_FALSE(result.ok);
  EXPECT_NE(result.failure.find("cross observation"), std::string::npos);
}

// --- LimitGate: the threaded executor's exact-LIMIT admission ----------------

struct LimitState {
  LimitGate gate{3};
  int admitted[2] = {0, 0};
  int filled[2] = {0, 0};
};

TestFactory LimitFactory() {
  return [] {
    auto st = std::make_shared<LimitState>();
    TestCase tc;
    for (int i = 0; i < 2; ++i) {
      tc.threads.push_back([st, i] {
        for (int k = 0; k < 2; ++k) {
          const auto admit = st->gate.TryAdmit();
          if (admit.admitted) ++st->admitted[i];
          if (admit.filled) ++st->filled[i];
        }
      });
    }
    tc.check = [st]() -> std::string {
      const int admitted = st->admitted[0] + st->admitted[1];
      const int filled = st->filled[0] + st->filled[1];
      if (admitted != 3)
        return "admitted " + std::to_string(admitted) + ", want exactly 3";
      if (filled != 1)
        return "filled " + std::to_string(filled) + ", want exactly 1";
      if (!st->gate.stop_requested()) return "stop flag not raised";
      if (!st->gate.limit_reached()) return "limit_reached not raised";
      return "";
    };
    return tc;
  };
}

TEST(LimitGateCheck, ExactlyLimitAdmissionsUnderExploration) {
  Explorer::Options opts = SmokeOptions(/*seed=*/5);
  opts.dfs_max_schedules = 2000;  // small config: enumerate it too
  Explorer explorer(opts);
  const auto result = explorer.Explore("limit_gate", LimitFactory());
  EXPECT_TRUE(result.ok) << result.failure << "\ntrace: "
                         << result.failing_trace;
}

// --- spill-lite: victim selection / fault-in vs concurrent probes ------------

struct SpillState {
  ShardedSpillState spill;
  Atomic<BuildTs> ts{1};
  std::unique_ptr<ShardedStem> stem;
};

TestFactory SpillFactory() {
  return [] {
    const QuerySpec& query = JoinSpec();
    auto st = std::make_shared<SpillState>();
    st->spill.budget_entries = 1;  // every second build spills a victim
    st->stem = std::make_unique<ShardedStem>(0, query, /*num_shards=*/2,
                                             &st->ts, &st->spill);
    TestCase tc;
    tc.threads.push_back([st] {
      st->stem->Build(MakeRow({Value::Int64(1)}));
      st->stem->Build(MakeRow({Value::Int64(2)}));
      st->stem->Build(MakeRow({Value::Int64(3)}));
    });
    tc.threads.push_back([st] {
      // Unbindable probe: scans (and faults in) every shard, racing the
      // builder's victim selection.
      ShardedStem::Bindings none;
      st->stem->Probe(none, kTsInfinity, [](const RowRef&, BuildTs) {});
    });
    tc.check = [st]() -> std::string {
      // Whatever was spilled and faulted back, nothing may be lost: a
      // final full scan sees all three builds.
      int matches = 0;
      ShardedStem::Bindings none;
      st->stem->Probe(none, kTsInfinity,
                      [&](const RowRef&, BuildTs) { ++matches; });
      if (matches != 3)
        return "final scan saw " + std::to_string(matches) +
               " of 3 built entries";
      if (st->stem->num_entries() != 3) return "entry counter drifted";
      return "";
    };
    return tc;
  };
}

TEST(SpillCheck, NoEntryLostAcrossVictimAndFaultIn) {
  Explorer explorer(SmokeOptions(/*seed=*/23));
  const auto result = explorer.Explore("spill_lite", SpillFactory());
  EXPECT_TRUE(result.ok) << result.failure << "\ntrace: "
                         << result.failing_trace;
}

// --- server RequestQueue: no loss, per-lane FIFO, backpressure ---------------

struct QueueState {
  explicit QueueState(size_t cap) : queue(cap) {}
  server::RequestQueue queue;
  int push_ok = 0;
  int pops = 0;
  std::vector<std::string> lane1_order;
};

TestFactory QueueFactory() {
  return [] {
    auto st = std::make_shared<QueueState>(/*per_lane_capacity=*/1);
    TestCase tc;
    tc.threads.push_back([st] {  // producer
      for (int i = 1; i <= 3; ++i) {
        server::Request request;
        request.session_id = 1;
        request.lane = 1;
        request.payload = std::to_string(i);
        // No retry on a full lane: the push either lands or is counted
        // against the backpressure bound.
        if (st->queue.TryPush(std::move(request))) ++st->push_ok;
      }
      server::Request eof;
      eof.kind = server::Request::Kind::kEndOfInput;
      eof.session_id = 1;
      eof.lane = 1;
      st->queue.PushControl(std::move(eof));  // bypasses the bound
    });
    tc.threads.push_back([st] {  // consumer (the engine pump's pop loop)
      for (int i = 0; i < 4; ++i) {
        server::Request request;
        if (st->queue.PopWithTimeout(&request,
                                     std::chrono::milliseconds(10))) {
          ++st->pops;
          if (request.kind == server::Request::Kind::kFrame) {
            st->lane1_order.push_back(request.payload);
          }
        }
      }
    });
    tc.check = [st]() -> std::string {
      // Everything successfully pushed (plus the unbounded control
      // message) is popped — a virtual timeout can fire only on an empty
      // queue, so backpressure rejections are the only loss channel.
      if (st->pops != st->push_ok + 1)
        return "popped " + std::to_string(st->pops) + ", pushed " +
               std::to_string(st->push_ok) + "+1 control";
      for (size_t i = 1; i < st->lane1_order.size(); ++i) {
        if (st->lane1_order[i - 1] >= st->lane1_order[i])
          return "lane FIFO violated: " + st->lane1_order[i - 1] +
                 " before " + st->lane1_order[i];
      }
      if (st->queue.size() != 0) return "queue not drained";
      return "";
    };
    return tc;
  };
}

TEST(RequestQueueCheck, NoLossUnderBackpressureAndExploration) {
  Explorer explorer(SmokeOptions(/*seed=*/31));
  const auto result = explorer.Explore("request_queue", QueueFactory());
  EXPECT_TRUE(result.ok) << result.failure << "\ntrace: "
                         << result.failing_trace;
}

// --- spurious wakeups: the cv predicates must be loops, not ifs --------------
//
// RequestQueue::PopWithTimeout is the exact wait the server's engine loop
// parks on (EngineThreadMain pops with a bounded timeout), so these
// regressions cover both the queue predicate and the engine-loop cv-wait.

TEST(SpuriousWakeupCheck, PopSurvivesInjectedWakes) {
  Explorer::Options opts = SmokeOptions(/*seed=*/41);
  opts.spurious_budget = 2;  // every cv wait may wake without cause, twice
  Explorer explorer(opts);
  const auto result = explorer.Explore("pop_spurious", [] {
    auto st = std::make_shared<QueueState>(/*per_lane_capacity=*/4);
    TestCase tc;
    tc.threads.push_back([st] {
      server::Request request;
      request.lane = 1;
      request.payload = "x";
      st->queue.TryPush(std::move(request));  // capacity 4: always lands
    });
    tc.threads.push_back([st] {
      server::Request request;
      if (st->queue.PopWithTimeout(&request, std::chrono::milliseconds(10)))
        ++st->pops;
    });
    tc.check = [st]() -> std::string {
      // A spurious wake is not a timeout: with a request pushed, the
      // predicate loop must re-park and still deliver it.
      return st->pops == 1 ? "" : "pop lost the pushed request";
    };
    return tc;
  });
  EXPECT_TRUE(result.ok) << result.failure << "\ntrace: "
                         << result.failing_trace;
}

TEST(SpuriousWakeupCheck, EmptyPopTimesOutDespiteWakes) {
  Explorer::Options opts = SmokeOptions(/*seed=*/43);
  opts.spurious_budget = 2;
  Explorer explorer(opts);
  const auto result = explorer.Explore("pop_empty_timeout", [] {
    auto st = std::make_shared<QueueState>(/*per_lane_capacity=*/4);
    TestCase tc;
    tc.threads.push_back([st] {
      server::Request request;
      if (st->queue.PopWithTimeout(&request, std::chrono::milliseconds(5)))
        ++st->pops;
    });
    tc.check = [st]() -> std::string {
      // Spurious wakes must not be reported as data; only the (virtual)
      // timeout ends the empty wait, with false.
      return st->pops == 0 ? "" : "empty pop fabricated a request";
    };
    return tc;
  });
  EXPECT_TRUE(result.ok) << result.failure << "\ntrace: "
                         << result.failing_trace;
}

// --- TenantGovernor: the admit-on-completion sweep ---------------------------

struct GovernorState {
  server::TenantGovernor governor;
  int admitted = 0;   // across both threads; governor mutex serializes
  int queued = 0;
  int readmitted = 0;
};

TestFactory GovernorFactory() {
  return [] {
    auto st = std::make_shared<GovernorState>();
    server::TenantQuota quota;
    quota.max_concurrent_queries = 1;
    EXPECT_TRUE(st->governor.RegisterTenant("t", quota).ok());
    TestCase tc;
    for (int i = 0; i < 2; ++i) {
      tc.threads.push_back([st] {
        const auto decision = st->governor.OnSubmit("t", 0);
        if (decision.outcome == server::AdmissionOutcome::kAdmit) {
          ++st->admitted;
          st->governor.OnQueryFinished("t", 0, QueryStats{}, Status::OK());
          // The completion sweep: a submit our quota deferred must now
          // fit — admit it on the spot, exactly as SweepCompletions does.
          if (st->governor.TryAdmitQueued("t", 0)) {
            ++st->readmitted;
            st->governor.OnQueryFinished("t", 0, QueryStats{}, Status::OK());
          }
        } else if (decision.outcome == server::AdmissionOutcome::kQueue) {
          ++st->queued;
        }
      });
    }
    tc.check = [st]() -> std::string {
      if (st->admitted + st->queued != 2)
        return "lost a submit: admitted=" + std::to_string(st->admitted) +
               " queued=" + std::to_string(st->queued);
      if (st->admitted < 1) return "nobody admitted under a 1-slot quota";
      // Every queued submit is either re-admitted by a completion sweep or
      // still queued; nothing may be double-admitted or dropped.
      const auto rollup = st->governor.Rollup("t");
      if (rollup.running_queries != 0)
        return "slots leaked: " + std::to_string(rollup.running_queries) +
               " still running";
      const auto still_queued =
          static_cast<int>(rollup.queued_queries);
      if (st->readmitted + still_queued != st->queued)
        return "queue accounting drifted: readmitted=" +
               std::to_string(st->readmitted) +
               " still_queued=" + std::to_string(still_queued) +
               " queued=" + std::to_string(st->queued);
      return "";
    };
    return tc;
  };
}

TEST(GovernorCheck, AdmitOnCompletionSweepUnderExploration) {
  Explorer explorer(SmokeOptions(/*seed=*/53));
  const auto result = explorer.Explore("tenant_governor", GovernorFactory());
  EXPECT_TRUE(result.ok) << result.failure << "\ntrace: "
                         << result.failing_trace;
}

// --- deadlock detection ------------------------------------------------------

TEST(DeadlockCheck, AbBaLockCycleIsReportedWithWaitsFor) {
  Explorer::Options opts;
  opts.random_schedules = 0;
  opts.pct_schedules = 0;
  opts.dfs_max_schedules = 200;  // 2 threads, 2 locks: tiny tree
  Explorer explorer(opts);
  const auto result = explorer.Explore("ab_ba_deadlock", [] {
    auto a = std::make_shared<Mutex>();
    auto b = std::make_shared<Mutex>();
    TestCase tc;
    tc.threads.push_back([a, b] {
      MutexLock la(a.get());
      MutexLock lb(b.get());
    });
    tc.threads.push_back([a, b] {
      MutexLock lb(b.get());
      MutexLock la(a.get());
    });
    tc.check = [] { return std::string(); };
    return tc;
  });
  ASSERT_FALSE(result.ok) << "the AB-BA cycle must be found";
  EXPECT_NE(result.failure.find("deadlock"), std::string::npos)
      << result.failure;
  EXPECT_NE(result.failure.find("waits-for"), std::string::npos)
      << result.failure;
}

// --- trace replay determinism ------------------------------------------------

TEST(ReplayCheck, SameTraceSameSchedule) {
  // Record one random schedule, then replay its trace on a fresh
  // scheduler: the decision sequence taken must be identical.
  const TestFactory factory = LimitFactory();
  auto first = factory();
  check::Scheduler recorder({});
  check::RandomSource random(/*seed=*/7);
  const auto recorded = recorder.Run(std::move(first.threads), &random);
  ASSERT_TRUE(recorded.completed) << recorded.failure;
  ASSERT_FALSE(recorded.trace.empty());
  // Printed so a passing schedule can be lifted into the corpus verbatim.
  std::cerr << "[check] recorded limit_gate trace: " << recorded.trace
            << "\n";

  std::vector<std::string> tokens;
  ASSERT_TRUE(check::Scheduler::DecodeTrace(recorded.trace, &tokens));
  auto second = factory();
  check::Scheduler replayer({});
  check::ReplaySource replay(tokens);
  const auto replayed = replayer.Run(std::move(second.threads), &replay);
  EXPECT_TRUE(replayed.completed) << replayed.failure;
  EXPECT_EQ(replayed.trace, recorded.trace);
}

TEST(ReplayCheck, MalformedTraceIsRejected) {
  std::vector<std::string> tokens;
  EXPECT_FALSE(check::Scheduler::DecodeTrace("r0,r1", &tokens));  // no tag
  EXPECT_FALSE(check::Scheduler::DecodeTrace("v1:r0,,r1", &tokens));
  EXPECT_FALSE(check::Scheduler::DecodeTrace("v1:x9", &tokens));
  EXPECT_TRUE(check::Scheduler::DecodeTrace("v1:r0,s1,t0", &tokens));
  EXPECT_EQ(tokens.size(), 3u);
}

// --- coverage metrics --------------------------------------------------------

TEST(MetricsCheck, ExplorationPublishesCoverageCounters) {
  obs::MetricsRegistry registry;
  Explorer::Options opts = SmokeOptions(/*seed=*/61);
  opts.metrics = &registry;
  Explorer explorer(opts);
  const auto result = explorer.Explore("metrics_probe", LimitFactory());
  ASSERT_TRUE(result.ok) << result.failure;
  EXPECT_EQ(registry.GetCounter("check.schedules_explored")->value(),
            result.schedules);
  EXPECT_EQ(registry.GetCounter("check.states_pruned")->value(),
            result.pruned);
  EXPECT_GT(result.schedules, 0u);
}

// --- the regression corpus ---------------------------------------------------

/// Target registry for corpus entries: name -> (factory, needs mutation).
const std::map<std::string, std::pair<TestFactory, bool>>& CorpusTargets() {
  static const auto* targets =
      new std::map<std::string, std::pair<TestFactory, bool>>{
          {"stem_visibility", {VisibilityFactory(), false}},
          {"stem_visibility_mutated", {VisibilityFactory(), true}},
          {"limit_gate", {LimitFactory(), false}},
          {"request_queue", {QueueFactory(), false}},
      };
  return *targets;
}

TEST(CorpusCheck, EveryRecordedScheduleStillBehaves) {
  const char* dir = std::getenv("STEMS_CORPUS_DIR");
  if (dir == nullptr || *dir == '\0') {
    GTEST_SKIP() << "STEMS_CORPUS_DIR not set (ctest sets it)";
  }
  const auto corpus = check::LoadCorpus(dir);
  ASSERT_FALSE(corpus.empty()) << "empty corpus dir: " << dir;
  Explorer explorer({});
  for (const auto& entry : corpus) {
    SCOPED_TRACE(entry.file);
    ASSERT_NE(entry.target, "__malformed__") << "unparseable corpus file";
    const auto it = CorpusTargets().find(entry.target);
    ASSERT_NE(it, CorpusTargets().end())
        << "corpus names unknown target '" << entry.target << "'";
    const auto& [factory, mutated] = it->second;
    ShardedStem::mutation_ts_outside_lock_for_test = mutated;
    const auto result = explorer.Replay(entry.target, factory, entry.trace);
    ShardedStem::mutation_ts_outside_lock_for_test = false;
    if (entry.expect == "fail") {
      EXPECT_FALSE(result.ok)
          << "recorded failing schedule no longer fails — if the bug class "
             "is truly gone, retire the corpus entry deliberately";
    } else {
      EXPECT_TRUE(result.ok) << result.failure;
    }
  }
}

}  // namespace
}  // namespace stems
