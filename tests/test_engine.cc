// Engine façade: Submit/cursor streaming, cancellation, and multi-query
// interleaving on the shared simulation clock.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "query/planner.h"
#include "reference/brute_force.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;

/// users ⋈ orders ⋈ items with an age selection — the quickstart query.
/// Expected results: users 1 and 2 pass age >= 30; user 1 has two orders,
/// user 2 one; every ordered item exists. Cardinality 3.
class EngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"users", IntSchema({"id", "age"}),
                                       {ScanSpec("users.scan")}},
                              IntRows({{1, 34}, {2, 57}, {3, 25}}))
                    .ok());
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"orders",
                                       IntSchema({"user_id", "item_id"}),
                                       {ScanSpec("orders.scan")}},
                              IntRows({{1, 10}, {1, 11}, {2, 10}, {3, 12}}))
                    .ok());
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"items", IntSchema({"id", "price"}),
                                       {ScanSpec("items.scan")}},
                              IntRows({{10, 999}, {11, 25}, {12, 150}}))
                    .ok());
  }

  QuerySpec ThreeWayQuery() {
    QueryBuilder qb(engine_.catalog());
    qb.AddTable("users", "u").AddTable("orders", "o").AddTable("items", "i");
    qb.AddJoin("u.id", "o.user_id").AddJoin("o.item_id", "i.id");
    qb.AddSelection("u.age", CompareOp::kGe, Value::Int64(30));
    return qb.Build().ValueOrDie();
  }

  QuerySpec TwoWayQuery() {
    QueryBuilder qb(engine_.catalog());
    qb.AddTable("orders", "o").AddTable("items", "i");
    qb.AddJoin("o.item_id", "i.id");
    return qb.Build().ValueOrDie();
  }

  /// A join whose "bulk" side streams 2000 rows — slow enough to cancel
  /// mid-flight, with matches from the first row so a cursor gets a result
  /// long before the scan ends. Registers the table on first use.
  QuerySpec BulkQuery() {
    if (!engine_.catalog().GetTable("bulk").ok()) {
      std::vector<std::vector<int64_t>> rows;
      for (int64_t i = 0; i < 2000; ++i) rows.push_back({10 + (i % 3)});
      EXPECT_TRUE(engine_
                      .AddTable(TableDef{"bulk", IntSchema({"item"}),
                                         {ScanSpec("bulk.scan")}},
                                IntRows(rows))
                      .ok());
    }
    QueryBuilder qb(engine_.catalog());
    qb.AddTable("bulk").AddTable("items", "i");
    qb.AddJoin("bulk.item", "i.id");
    return qb.Build().ValueOrDie();
  }

  Engine engine_;
};

TEST_F(EngineTest, SubmitRejectsUnknownPolicy) {
  RunOptions options;
  options.policy = "optimizer";
  auto handle = engine_.Submit(ThreeWayQuery(), options);
  ASSERT_FALSE(handle.ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kNotFound);
}

TEST_F(EngineTest, AddTableRejectsDuplicates) {
  Status st = engine_.AddTable(
      TableDef{"users", IntSchema({"id"}), {ScanSpec("users.scan2")}},
      IntRows({{1}}));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
}

TEST_F(EngineTest, AddTableFailureLeavesCatalogAndStoreConsistent) {
  // Rows pre-loaded through the store() escape hatch: AddTable must fail
  // without registering a catalog entry, so a corrected retry can succeed.
  ASSERT_TRUE(
      engine_.store().AddTable("pre", IntSchema({"k"}), IntRows({{1}})).ok());
  Status st = engine_.AddTable(
      TableDef{"pre", IntSchema({"k"}), {ScanSpec("pre.scan")}},
      IntRows({{2}}));
  EXPECT_EQ(st.code(), StatusCode::kAlreadyExists);
  EXPECT_FALSE(engine_.catalog().GetTable("pre").ok())
      << "failed AddTable left a catalog entry behind";
}

TEST_F(EngineTest, DrainMatchesBruteForceAndPlanQueryPath) {
  const QuerySpec query = ThreeWayQuery();

  // New façade path.
  QueryHandle handle = engine_.Submit(query).ValueOrDie();
  std::vector<TuplePtr> streamed = handle.cursor().Drain();
  EXPECT_EQ(streamed.size(), 3u);
  EXPECT_TRUE(handle.done());

  // Ground truth.
  const std::set<std::string> expected =
      BruteForceResultSet(query, engine_.store());
  EXPECT_EQ(KeysOf(streamed), expected);

  // Old low-level escape hatch produces the identical result set.
  Simulation sim;
  auto eddy = PlanQuery(query, engine_.store(), &sim).ValueOrDie();
  eddy->SetPolicy(
      PolicyRegistry::Global().Create("nary_shj").ValueOrDie());
  eddy->RunToCompletion();
  EXPECT_EQ(KeysOf(eddy->results()), expected);
  EXPECT_EQ(eddy->results().size(), streamed.size());
}

TEST_F(EngineTest, CursorStreamsInProductionOrder) {
  QueryHandle handle = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  ResultCursor cursor = handle.cursor();

  std::vector<TuplePtr> pulled;
  while (auto t = cursor.Next()) pulled.push_back(*t);
  EXPECT_EQ(pulled.size(), 3u);
  // Next() past the end keeps returning nullopt.
  EXPECT_FALSE(cursor.Next().has_value());

  // The pull stream is exactly the eddy's push output, in order.
  const auto& pushed = handle.eddy()->results();
  ASSERT_EQ(pulled.size(), pushed.size());
  for (size_t i = 0; i < pulled.size(); ++i) {
    EXPECT_EQ(pulled[i].get(), pushed[i].get()) << "at index " << i;
  }
  EXPECT_EQ(cursor.consumed(), 3u);
}

TEST_F(EngineTest, DrainEqualsPushTotals) {
  // Drain() on a half-consumed cursor returns exactly the rest.
  QueryHandle handle = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  ResultCursor cursor = handle.cursor();
  ASSERT_TRUE(cursor.Next().has_value());
  std::vector<TuplePtr> rest = cursor.Drain();
  EXPECT_EQ(rest.size(), 2u);
  EXPECT_EQ(handle.Stats().num_results, 3u);
  EXPECT_EQ(handle.Stats().constraint_violations, 0u);
  EXPECT_NE(handle.Stats().completed_at, kSimTimeNever);
}

TEST_F(EngineTest, CursorAfterCancelReturnsNothing) {
  QueryHandle handle = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  ResultCursor cursor = handle.cursor();
  ASSERT_TRUE(cursor.Next().has_value());  // query is producing

  handle.Cancel();
  EXPECT_TRUE(handle.done());
  EXPECT_TRUE(handle.Stats().cancelled);
  EXPECT_FALSE(cursor.Next().has_value());
  EXPECT_TRUE(cursor.Drain().empty());
  EXPECT_EQ(engine_.active_queries(), 0u);

  // The engine remains usable: a fresh submission completes normally.
  QueryHandle again = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  EXPECT_EQ(again.cursor().Drain().size(), 3u);
}

TEST_F(EngineTest, CancelBeforeFirstResult) {
  QueryHandle handle = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  handle.Cancel();
  EXPECT_TRUE(handle.cursor().Drain().empty());
  EXPECT_EQ(handle.Stats().num_results, 0u);
}

TEST_F(EngineTest, CancelHaltsScanStreams) {
  // A cancelled query's scans must stop self-scheduling: otherwise every
  // later query on the shared clock pays for the dead stream's events.
  QueryHandle handle = engine_.Submit(BulkQuery()).ValueOrDie();
  handle.Cancel();

  // A second query drains normally, and the whole clock goes idle without
  // the cancelled scan delivering its 2000 rows.
  QueryHandle other = engine_.Submit(TwoWayQuery()).ValueOrDie();
  EXPECT_EQ(other.cursor().Drain().size(), 4u);
  engine_.sim().Run();
  const auto& scans = handle.eddy()->ScanAmsForSlot(0);
  ASSERT_EQ(scans.size(), 1u);
  EXPECT_TRUE(scans[0]->finished());
  EXPECT_LT(scans[0]->rows_emitted(), scans[0]->total_rows());
}

TEST_F(EngineTest, PruneAfterCancelWaitsForPendingEvents) {
  // Regression (use-after-free): cancelling and dropping the handle leaves
  // the engine holding the last reference while the cancelled scan's
  // already-scheduled emission event still points at its module. The prune
  // must wait for the eddy to go quiescent before destroying it. The slow
  // scan period puts that pending event far beyond the second query's
  // events, i.e. after several prune opportunities.
  {
    RunOptions slow;
    slow.exec.scan_overrides["bulk.scan"].period = Seconds(1);
    QueryHandle doomed = engine_.Submit(BulkQuery(), slow).ValueOrDie();
    (void)doomed.cursor().Next();
    doomed.Cancel();
  }  // handle dropped — engine owns the cancelled execution alone

  // A long second query pumps through many prune opportunities before the
  // clock reaches the dead query's pending event; under ASan the old prune
  // destroyed the cancelled eddy in one of them and crashed when the event
  // fired.
  // (2000 scanned rows hold only 3 distinct values; SteM set semantics
  // dedup them, so the join yields 3 results from thousands of events.)
  QueryHandle other = engine_.Submit(BulkQuery()).ValueOrDie();
  EXPECT_EQ(other.cursor().Drain().size(), 3u);
  engine_.sim().Run();
  engine_.RunAll();
  EXPECT_EQ(engine_.active_queries(), 0u);
}

/// A module that claims in-flight work forever: Quiescent() is false with
/// no event ever scheduled — the shape of a module bug that loses track of
/// a tuple. The engine must fail closed *and say so*.
class StuckModule : public Module {
 public:
  explicit StuckModule(Simulation* sim) : Module(sim, "stuck") {}
  ModuleKind kind() const override { return ModuleKind::kOperator; }
  bool Quiescent() const override { return false; }

 protected:
  SimTime ServiceTime(const Tuple&) const override { return 0; }
  void Process(TuplePtr) override {}
};

TEST_F(EngineTest, StuckModuleSurfacesErrorInsteadOfSilentTruncation) {
  // Regression: Engine::PumpUntilResult used to fabricate completion when
  // the clock idled with a non-quiescent eddy — callers got a truncated
  // result set that looked complete. The stream still ends (fail closed,
  // no spin), but the handle and cursor now carry a non-OK status.
  QueryHandle handle = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  handle.eddy()->AddModule(std::make_unique<StuckModule>(&engine_.sim()));

  ResultCursor cursor = handle.cursor();
  const std::vector<TuplePtr> results = cursor.Drain();
  EXPECT_EQ(results.size(), 3u);  // everything produced before the wedge
  EXPECT_TRUE(handle.done());
  EXPECT_FALSE(handle.Stats().cancelled);
  EXPECT_FALSE(handle.status().ok());
  EXPECT_EQ(handle.status().code(), StatusCode::kInternal);
  EXPECT_EQ(cursor.status().code(), StatusCode::kInternal);

  // A healthy query on the same engine completes with an OK status.
  QueryHandle healthy = engine_.Submit(TwoWayQuery()).ValueOrDie();
  EXPECT_EQ(healthy.cursor().Drain().size(), 4u);
  EXPECT_TRUE(healthy.status().ok());
}

TEST_F(EngineTest, CancelInterleavedWithAnotherCursorsDrain) {
  // Regression companion to PruneAfterCancelWaitsForPendingEvents, shaped
  // as the use-after-free hazard documented in Engine::CheckCompletions:
  // one query's cursor is mid-Drain on the shared clock while another
  // query is cancelled and dropped with no-op events still scheduled
  // against its modules. Draining must prune the dead execution without
  // touching freed memory (the ASan+UBSan job is the real referee here).
  QueryHandle other = engine_.Submit(BulkQuery()).ValueOrDie();
  ResultCursor cursor = other.cursor();
  ASSERT_TRUE(cursor.Next().has_value());  // mid-drain: stream is live

  {
    RunOptions slow;
    slow.exec.scan_overrides["bulk.scan"].period = Seconds(1);
    QueryHandle doomed = engine_.Submit(BulkQuery(), slow).ValueOrDie();
    (void)doomed.cursor().Next();
    doomed.Cancel();
  }  // handle dropped — the engine alone holds the cancelled execution

  const std::vector<TuplePtr> rest = cursor.Drain();
  EXPECT_EQ(1 + rest.size(), 3u);  // 2000 rows, 3 distinct join values
  EXPECT_TRUE(other.status().ok());
  engine_.RunAll();
  EXPECT_EQ(engine_.active_queries(), 0u);
}

TEST_F(EngineTest, InterleavedQueriesBothComplete) {
  // Submit both before pumping either: their eddies share the clock, so
  // alternating Next() calls interleave the two executions.
  QueryHandle h1 = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  QueryHandle h2 = engine_.Submit(TwoWayQuery()).ValueOrDie();
  EXPECT_EQ(engine_.active_queries(), 2u);

  ResultCursor c1 = h1.cursor();
  ResultCursor c2 = h2.cursor();
  std::vector<TuplePtr> r1, r2;
  bool more1 = true, more2 = true;
  while (more1 || more2) {
    if (more1) {
      auto t = c1.Next();
      more1 = t.has_value();
      if (t) r1.push_back(*t);
    }
    if (more2) {
      auto t = c2.Next();
      more2 = t.has_value();
      if (t) r2.push_back(*t);
    }
  }

  EXPECT_EQ(KeysOf(r1), BruteForceResultSet(ThreeWayQuery(), engine_.store()));
  EXPECT_EQ(KeysOf(r2), BruteForceResultSet(TwoWayQuery(), engine_.store()));
  EXPECT_EQ(r2.size(), 4u);  // every order joins its item
  EXPECT_TRUE(h1.done());
  EXPECT_TRUE(h2.done());
  EXPECT_EQ(h1.eddy()->violations().size(), 0u);
  EXPECT_EQ(h2.eddy()->violations().size(), 0u);
  EXPECT_EQ(engine_.active_queries(), 0u);
}

TEST_F(EngineTest, PumpingOneCursorAdvancesTheOther) {
  QueryHandle h1 = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  QueryHandle h2 = engine_.Submit(TwoWayQuery()).ValueOrDie();
  // Drain query 1 completely; query 2 rode along on the shared clock and
  // has buffered (or at least made) progress without its cursor moving.
  EXPECT_EQ(h1.cursor().Drain().size(), 3u);
  EXPECT_GT(h2.eddy()->tuples_routed(), 0u);
  // Its results are still all there for the late reader.
  EXPECT_EQ(h2.cursor().Drain().size(), 4u);
}

TEST_F(EngineTest, SequentialQueriesOnOneEngine) {
  for (int round = 0; round < 3; ++round) {
    QueryHandle handle = engine_.Submit(TwoWayQuery()).ValueOrDie();
    EXPECT_EQ(handle.cursor().Drain().size(), 4u) << "round " << round;
  }
  EXPECT_EQ(engine_.active_queries(), 0u);
}

TEST_F(EngineTest, RunAllCompletesEverything) {
  QueryHandle h1 = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  QueryHandle h2 = engine_.Submit(TwoWayQuery()).ValueOrDie();
  engine_.RunAll();
  EXPECT_TRUE(h1.done());
  EXPECT_TRUE(h2.done());
  EXPECT_EQ(h1.Stats().num_results, 3u);
  EXPECT_EQ(h2.Stats().num_results, 4u);
}

TEST_F(EngineTest, WaitBuffersResultsForLaterCursor) {
  QueryHandle handle = engine_.Submit(ThreeWayQuery()).ValueOrDie();
  handle.Wait();
  EXPECT_TRUE(handle.done());
  EXPECT_EQ(handle.cursor().Drain().size(), 3u);
}

TEST_F(EngineTest, PolicySweepOverRegistry) {
  // The registry makes "run this query under every policy" a loop.
  const std::set<std::string> expected =
      BruteForceResultSet(ThreeWayQuery(), engine_.store());
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    RunOptions options;
    options.policy = policy;
    QueryHandle handle = engine_.Submit(ThreeWayQuery(), options).ValueOrDie();
    EXPECT_EQ(KeysOf(handle.cursor().Drain()), expected)
        << "policy " << policy;
    EXPECT_EQ(handle.Stats().policy, policy);
  }
}

TEST_F(EngineTest, QueryBuiltBeforeLaterDdlStillRuns) {
  // Regression: QuerySpec slots hold resolved TableDef pointers, and
  // QueryContext::SlotsOfTable matches on that identity. Registering more
  // tables after the spec is built must not invalidate those pointers
  // (Catalog stores defs in a deque) nor confuse slot resolution, even
  // when an alias shadows another base table's name.
  QueryBuilder qb(engine_.catalog());
  qb.AddTable("orders", "items").AddTable("items", "x");  // shadowing alias
  qb.AddJoin("items.item_id", "x.id");
  QuerySpec query = qb.Build().ValueOrDie();

  // DDL after the spec was built: would have reallocated a vector-backed
  // catalog and dangled query.slots()[i].def.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"extra" + std::to_string(i),
                                       IntSchema({"k"}),
                                       {ScanSpec("e" + std::to_string(i))}},
                              IntRows({{1}}))
                    .ok());
  }

  QueryHandle handle = engine_.Submit(query).ValueOrDie();
  EXPECT_EQ(KeysOf(handle.cursor().Drain()),
            BruteForceResultSet(query, engine_.store()));
  EXPECT_EQ(handle.Stats().constraint_violations, 0u);
}

TEST_F(EngineTest, HandleOutlivesCallerQuerySpec) {
  std::optional<QueryHandle> handle;
  {
    QuerySpec local = ThreeWayQuery();
    handle = engine_.Submit(local).ValueOrDie();
  }  // `local` destroyed; the execution owns its copy
  EXPECT_EQ(handle->cursor().Drain().size(), 3u);
}

}  // namespace
}  // namespace stems
