// Shared helpers for the stems test suite.
#pragma once

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "eddy/eddy.h"
#include "engine/policy_registry.h"
#include "query/planner.h"
#include "query/query_spec.h"
#include "reference/brute_force.h"
#include "storage/table_store.h"

namespace stems::testing {

/// Catalog + data in one bundle.
struct TestDb {
  Catalog catalog;
  TableStore store;

  /// Registers a table with both definition and data.
  void AddTable(const std::string& name, Schema schema,
                std::vector<RowRef> rows,
                std::vector<AccessMethodSpec> access_methods) {
    TableDef def;
    def.name = name;
    def.schema = schema;
    def.access_methods = std::move(access_methods);
    ASSERT_TRUE(catalog.AddTable(std::move(def)).ok());
    ASSERT_TRUE(store.AddTable(name, std::move(schema), std::move(rows)).ok());
  }
};

inline AccessMethodSpec ScanSpec(const std::string& name) {
  return AccessMethodSpec{name, AccessMethodKind::kScan, {}};
}

inline AccessMethodSpec IndexSpec(const std::string& name,
                                  std::vector<int> bind_columns) {
  return AccessMethodSpec{name, AccessMethodKind::kIndex,
                          std::move(bind_columns)};
}

/// Rows of int64 columns from a literal list.
inline std::vector<RowRef> IntRows(
    const std::vector<std::vector<int64_t>>& data) {
  std::vector<RowRef> rows;
  rows.reserve(data.size());
  for (const auto& r : data) {
    std::vector<Value> values;
    values.reserve(r.size());
    for (int64_t v : r) values.push_back(Value::Int64(v));
    rows.push_back(MakeRow(std::move(values)));
  }
  return rows;
}

inline Schema IntSchema(const std::vector<std::string>& names) {
  std::vector<ColumnDef> cols;
  for (const auto& n : names) cols.push_back({n, ValueType::kInt64});
  return Schema(std::move(cols));
}

enum class PolicyKind { kNaryShj, kLottery, kBenefitCost };

/// Policies come from the global registry: tests select by name exactly as
/// Engine callers do, with no concrete-policy includes.
inline std::unique_ptr<RoutingPolicy> MakePolicy(PolicyKind kind,
                                                 uint64_t seed = 42) {
  PolicyParams params;
  params.seed = seed;
  const char* name = nullptr;
  switch (kind) {
    case PolicyKind::kNaryShj:
      name = "nary_shj";
      break;
    case PolicyKind::kLottery:
      name = "lottery";
      break;
    case PolicyKind::kBenefitCost:
      name = "benefit_cost";
      break;
  }
  return PolicyRegistry::Global().Create(name, params).ValueOrDie();
}

struct EddyRun {
  std::set<std::string> keys;
  std::vector<std::string> duplicates;
  size_t num_results = 0;
  size_t violations = 0;
  size_t parked = 0;
};

/// Plans, runs to completion, and summarizes.
inline EddyRun RunEddy(const QuerySpec& query, const TestDb& db,
                       const ExecutionConfig& config,
                       std::unique_ptr<RoutingPolicy> policy) {
  Simulation sim;
  auto planned = PlanQuery(query, db.store, &sim, config);
  EXPECT_TRUE(planned.ok()) << planned.status().ToString();
  std::unique_ptr<Eddy> eddy = std::move(planned).ValueOrDie();
  eddy->SetPolicy(std::move(policy));
  eddy->RunToCompletion();

  EddyRun run;
  run.num_results = eddy->results().size();
  run.keys = KeysOf(eddy->results(), &run.duplicates);
  run.violations = eddy->violations().size();
  run.parked = eddy->parked_count();
  return run;
}

/// The Theorem 1 + Theorem 2 check: no duplicates, no missing results, no
/// constraint violations, nothing left parked.
inline void ExpectCorrect(const QuerySpec& query, const TestDb& db,
                          const ExecutionConfig& config,
                          std::unique_ptr<RoutingPolicy> policy) {
  EddyRun run = RunEddy(query, db, config, std::move(policy));
  const std::set<std::string> expected =
      BruteForceResultSet(query, db.store);
  EXPECT_TRUE(run.duplicates.empty())
      << run.duplicates.size() << " duplicate results, first: "
      << run.duplicates.front();
  EXPECT_EQ(run.keys, expected);
  EXPECT_EQ(run.violations, 0u);
  EXPECT_EQ(run.parked, 0u);
}

/// A config with near-zero module costs, for pure correctness tests.
inline ExecutionConfig FastConfig() {
  ExecutionConfig config;
  config.scan_defaults.period = Micros(10);
  config.index_defaults.latency = std::make_shared<FixedLatency>(Micros(50));
  return config;
}

}  // namespace stems::testing
