// Unit tests: table store lookup indexes and the Table 3 generators.
#include <gtest/gtest.h>

#include <set>

#include "storage/generators.h"
#include "storage/table_store.h"

namespace stems {
namespace {

TEST(StoredTableTest, LookupByBindColumns) {
  StoredTable t(Schema({{"a", ValueType::kInt64}, {"b", ValueType::kInt64}}),
                {MakeRow({Value::Int64(1), Value::Int64(10)}),
                 MakeRow({Value::Int64(2), Value::Int64(20)}),
                 MakeRow({Value::Int64(1), Value::Int64(30)})});
  auto& hits = t.Lookup({0}, {Value::Int64(1)});
  EXPECT_EQ(hits.size(), 2u);
  EXPECT_TRUE(t.Lookup({0}, {Value::Int64(9)}).empty());
  // Multi-column binding.
  auto& exact = t.Lookup({0, 1}, {Value::Int64(1), Value::Int64(30)});
  ASSERT_EQ(exact.size(), 1u);
  EXPECT_EQ(exact[0]->value(1).AsInt64(), 30);
}

TEST(TableStoreTest, AddAndGet) {
  TableStore store;
  ASSERT_TRUE(store.AddTable("R", Schema({{"a", ValueType::kInt64}}),
                             {MakeRow({Value::Int64(1)})})
                  .ok());
  EXPECT_EQ(store.AddTable("R", Schema(), {}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(store.GetTable("R").ok());
  EXPECT_EQ(store.GetTable("X").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.GetTable("R").ValueOrDie()->num_rows(), 1u);
}

TEST(GeneratorsTest, TableRMatchesTable3) {
  auto rows = GenerateTableR(1000, 250, 7);
  ASSERT_EQ(rows.size(), 1000u);
  std::set<int64_t> keys, values;
  for (const auto& r : rows) {
    keys.insert(r->value(0).AsInt64());
    values.insert(r->value(1).AsInt64());
    EXPECT_GE(r->value(1).AsInt64(), 0);
    EXPECT_LT(r->value(1).AsInt64(), 250);
  }
  EXPECT_EQ(keys.size(), 1000u);       // key is a primary key
  EXPECT_GT(values.size(), 230u);      // ~250 distinct values of a
}

TEST(GeneratorsTest, TableSHasEqualKeys) {
  auto rows = GenerateTableS(100);
  ASSERT_EQ(rows.size(), 100u);
  for (const auto& r : rows) {
    EXPECT_EQ(r->value(0), r->value(1));  // x = y (Table 3)
  }
}

TEST(GeneratorsTest, TableTIsAPermutation) {
  auto rows = GenerateTableT(500, 3);
  std::set<int64_t> keys;
  for (const auto& r : rows) keys.insert(r->value(0).AsInt64());
  EXPECT_EQ(keys.size(), 500u);
  EXPECT_EQ(*keys.begin(), 0);
  EXPECT_EQ(*keys.rbegin(), 499);
  // Scan order must differ from key order (randomized arrival).
  bool sorted = true;
  for (size_t i = 1; i < rows.size(); ++i) {
    if (rows[i]->value(0).AsInt64() < rows[i - 1]->value(0).AsInt64()) {
      sorted = false;
      break;
    }
  }
  EXPECT_FALSE(sorted);
}

TEST(GeneratorsTest, GenericColumnKinds) {
  std::vector<ColumnGenSpec> specs{
      {"seq", ColumnGenSpec::Kind::kSequential, 5, 0, 0, 0},
      {"uni", ColumnGenSpec::Kind::kUniform, 0, 9, 0, 0},
      {"zipf", ColumnGenSpec::Kind::kZipf, 0, 0, 100, 1.0},
      {"const", ColumnGenSpec::Kind::kConstant, 42, 0, 0, 0},
      {"rr", ColumnGenSpec::Kind::kRoundRobin, 0, 0, 3, 0}};
  auto rows = GenerateRows(specs, 30, 1);
  ASSERT_EQ(rows.size(), 30u);
  for (size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(rows[i]->value(0).AsInt64(), static_cast<int64_t>(i) + 5);
    EXPECT_GE(rows[i]->value(1).AsInt64(), 0);
    EXPECT_LE(rows[i]->value(1).AsInt64(), 9);
    EXPECT_LT(rows[i]->value(2).AsInt64(), 100);
    EXPECT_EQ(rows[i]->value(3).AsInt64(), 42);
    EXPECT_EQ(rows[i]->value(4).AsInt64(),
              static_cast<int64_t>(i % 3));
  }
  EXPECT_EQ(SchemaFor(specs).num_columns(), 5u);
}

TEST(GeneratorsTest, DeterministicForSeed) {
  auto a = GenerateTableR(100, 10, 42);
  auto b = GenerateTableR(100, 10, 42);
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(*a[i], *b[i]);
}

}  // namespace
}  // namespace stems
