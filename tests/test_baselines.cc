// Baseline operator tests: every traditional join module must produce the
// brute-force result set on the same data the eddy runs on.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/grace_hash_join_op.h"
#include "baseline/index_join_op.h"
#include "baseline/nary_shj_op.h"
#include "baseline/shj_op.h"
#include "baseline/sort_merge_join_op.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;
using testing::TestDb;

class BaselineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.AddTable("R", IntSchema({"a", "r"}),
                 IntRows({{1, 100}, {2, 200}, {3, 300}, {2, 201}}),
                 {ScanSpec("R.scan")});
    db_.AddTable("S", IntSchema({"x", "y"}),
                 IntRows({{1, 7}, {2, 8}, {2, 9}, {5, 7}}),
                 {ScanSpec("S.scan"), IndexSpec("S.idx", {0})});
    db_.AddTable("T", IntSchema({"b"}), IntRows({{7}, {8}}),
                 {ScanSpec("T.scan")});
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S");
    qb.AddJoin("R.a", "S.x");  // predicate 0
    two_table_ = qb.Build().ValueOrDie();

    QueryBuilder qb3(db_.catalog);
    qb3.AddTable("R").AddTable("S").AddTable("T");
    qb3.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b");  // predicates 0, 1
    three_table_ = qb3.Build().ValueOrDie();
  }

  ScanAm* AddScan(StaticPlan* plan, const char* table, const QuerySpec& q) {
    (void)q;
    ScanAmOptions opts;
    opts.period = Micros(10);
    return plan->AddModule(std::make_unique<ScanAm>(
        plan->ctx(), std::string(table) + ".scan", table,
        db_.store.GetTable(table).ValueOrDie()->rows(), opts));
  }

  void ExpectMatchesBruteForce(const QuerySpec& q, StaticPlan& plan) {
    plan.Run();
    std::vector<std::string> dups;
    auto keys = KeysOf(plan.results(), &dups);
    EXPECT_TRUE(dups.empty()) << dups.size() << " duplicates";
    EXPECT_EQ(keys, BruteForceResultSet(q, db_.store));
  }

  TestDb db_;
  QuerySpec two_table_;
  QuerySpec three_table_;
};

TEST_F(BaselineTest, ShjMatchesBruteForce) {
  Simulation sim;
  StaticPlan plan(two_table_, &sim);
  auto* r = AddScan(&plan, "R", two_table_);
  auto* s = AddScan(&plan, "S", two_table_);
  auto* shj = plan.AddModule(
      std::make_unique<ShjOp>(plan.ctx(), "shj", 0b01, 0b10, 0));
  plan.Connect(r, shj);
  plan.Connect(s, shj);
  plan.ConnectToSink(shj);
  ExpectMatchesBruteForce(two_table_, plan);
  EXPECT_EQ(shj->materialized_tuples(), 8u);  // 4 + 4 singletons
}

TEST_F(BaselineTest, IndexJoinMatchesBruteForce) {
  Simulation sim;
  StaticPlan plan(two_table_, &sim);
  auto* r = AddScan(&plan, "R", two_table_);
  IndexJoinOpOptions opts;
  opts.lookup_latency = std::make_shared<FixedLatency>(Micros(100));
  auto* join = plan.AddModule(std::make_unique<IndexJoinOp>(
      plan.ctx(), "idxjoin", 0b01, 1, std::vector<int>{0},
      db_.store.GetTable("S").ValueOrDie(), opts));
  plan.Connect(r, join);
  plan.ConnectToSink(join);
  ExpectMatchesBruteForce(two_table_, plan);
  // 3 distinct R.a values -> 3 lookups; the duplicate a=2 hits the cache.
  EXPECT_EQ(join->index_lookups(), 3u);
  EXPECT_EQ(join->cache_hits(), 1u);
}

TEST_F(BaselineTest, BinaryShjPipelineMatchesBruteForce) {
  Simulation sim;
  StaticPlan plan(three_table_, &sim);
  auto* r = AddScan(&plan, "R", three_table_);
  auto* s = AddScan(&plan, "S", three_table_);
  auto* t = AddScan(&plan, "T", three_table_);
  auto* rs = plan.AddModule(
      std::make_unique<ShjOp>(plan.ctx(), "rs", 0b001, 0b010, 0));
  auto* rst = plan.AddModule(
      std::make_unique<ShjOp>(plan.ctx(), "rst", 0b011, 0b100, 1));
  plan.Connect(r, rs);
  plan.Connect(s, rs);
  plan.Connect(rs, rst);
  plan.Connect(t, rst);
  plan.ConnectToSink(rst);
  ExpectMatchesBruteForce(three_table_, plan);
  // The upper join materializes intermediate RS tuples (paper §2.3).
  EXPECT_GT(rst->materialized_tuples(), 2u);
}

TEST_F(BaselineTest, NaryShjOpMatchesBruteForce) {
  Simulation sim;
  StaticPlan plan(three_table_, &sim);
  auto* r = AddScan(&plan, "R", three_table_);
  auto* s = AddScan(&plan, "S", three_table_);
  auto* t = AddScan(&plan, "T", three_table_);
  auto* nary = plan.AddModule(std::make_unique<NaryShjOp>(plan.ctx(), "nary"));
  plan.Connect(r, nary);
  plan.Connect(s, nary);
  plan.Connect(t, nary);
  plan.ConnectToSink(nary);
  ExpectMatchesBruteForce(three_table_, plan);
  // Stores only base singletons.
  EXPECT_EQ(nary->materialized_tuples(), 10u);  // 4 + 4 + 2
}

TEST_F(BaselineTest, GraceHashJoinMatchesBruteForce) {
  Simulation sim;
  StaticPlan plan(two_table_, &sim);
  auto* r = AddScan(&plan, "R", two_table_);
  auto* s = AddScan(&plan, "S", two_table_);
  GraceHashJoinOpOptions opts;
  opts.num_partitions = 4;
  auto* grace = plan.AddModule(std::make_unique<GraceHashJoinOp>(
      plan.ctx(), "grace", 0b01, 0b10, 0, opts));
  plan.Connect(r, grace);
  plan.Connect(s, grace);
  plan.ConnectToSink(grace);
  ExpectMatchesBruteForce(two_table_, plan);
}

TEST_F(BaselineTest, GraceResultsOnlyAfterInputsComplete) {
  Simulation sim;
  StaticPlan plan(two_table_, &sim);
  auto* r = AddScan(&plan, "R", two_table_);
  auto* s = AddScan(&plan, "S", two_table_);
  auto* grace = plan.AddModule(std::make_unique<GraceHashJoinOp>(
      plan.ctx(), "grace", 0b01, 0b10, 0));
  plan.Connect(r, grace);
  plan.Connect(s, grace);
  plan.ConnectToSink(grace);
  plan.Start();
  sim.RunUntil(Micros(45));  // scans still running (4 rows x 10us + EOT)
  EXPECT_TRUE(plan.results().empty());
  sim.Run();
  EXPECT_FALSE(plan.results().empty());
}

TEST_F(BaselineTest, HybridHashEmitsEarlyForResidentPartition) {
  Simulation sim;
  StaticPlan plan(two_table_, &sim);
  auto* r = AddScan(&plan, "R", two_table_);
  auto* s = AddScan(&plan, "S", two_table_);
  GraceHashJoinOpOptions opts;
  opts.num_partitions = 1;
  opts.memory_resident_partitions = 1;  // fully pipelined
  auto* hybrid = plan.AddModule(std::make_unique<GraceHashJoinOp>(
      plan.ctx(), "hybrid", 0b01, 0b10, 0, opts));
  plan.Connect(r, hybrid);
  plan.Connect(s, hybrid);
  plan.ConnectToSink(hybrid);
  plan.Start();
  sim.RunUntil(Micros(60));
  EXPECT_FALSE(plan.results().empty());  // pipelined results before EOT
  sim.Run();
  auto keys = KeysOf(plan.results(), nullptr);
  EXPECT_EQ(keys, BruteForceResultSet(two_table_, db_.store));
}

TEST_F(BaselineTest, SortMergeJoinMatchesBruteForce) {
  Simulation sim;
  StaticPlan plan(two_table_, &sim);
  auto* r = AddScan(&plan, "R", two_table_);
  auto* s = AddScan(&plan, "S", two_table_);
  auto* smj = plan.AddModule(std::make_unique<SortMergeJoinOp>(
      plan.ctx(), "smj", 0b01, 0b10, 0));
  plan.Connect(r, smj);
  plan.Connect(s, smj);
  plan.ConnectToSink(smj);
  ExpectMatchesBruteForce(two_table_, plan);
}

TEST_F(BaselineTest, JoinOperatorSideRouting) {
  Simulation sim;
  StaticPlan plan(two_table_, &sim);
  ShjOp op(plan.ctx(), "shj", 0b01, 0b10, 0);
  TuplePtr left = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(1),
                                                      Value::Int64(2)}));
  TuplePtr right = Tuple::MakeSingleton(2, 1, MakeRow({Value::Int64(1),
                                                       Value::Int64(2)}));
  EXPECT_EQ(op.SideOf(*left), 0);
  EXPECT_EQ(op.SideOf(*right), 1);
  EXPECT_FALSE(op.AllSidesComplete());
}

}  // namespace
}  // namespace stems
