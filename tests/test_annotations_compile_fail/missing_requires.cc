// Negative-compilation probe: calling a STEMS_REQUIRES(mu) helper without
// holding the mutex must be rejected by -Wthread-safety -Werror.
//
// Compiled by run.cmake under clang only; the build expects FAILURE.
#include "common/thread_annotations.h"

namespace {

class Ledger {
 public:
  // BAD: the REQUIRES contract is not satisfied at this call site.
  void Deposit() { ApplyLocked(1); }

 private:
  void ApplyLocked(int delta) STEMS_REQUIRES(mu_) { balance_ += delta; }

  stems::Mutex mu_;
  int balance_ STEMS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Ledger l;
  l.Deposit();
  return 0;
}
