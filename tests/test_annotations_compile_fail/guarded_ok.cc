// Positive control for the negative-compilation suite: the same shapes as
// the failing probes, written correctly, must compile cleanly under
// -Wthread-safety -Werror. Guards against the suite "passing" because the
// probe files fail for an unrelated reason (bad include path, syntax).
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  int Read() {
    stems::MutexLock lock(&mu_);
    return balance_;
  }

  void Deposit() {
    stems::MutexLock lock(&mu_);
    ApplyLocked(1);
  }

  void WaitNonZero() {
    stems::MutexLock lock(&mu_);
    while (balance_ == 0) {
      cv_.Wait(mu_);
    }
  }

 private:
  void ApplyLocked(int delta) STEMS_REQUIRES(mu_) { balance_ += delta; }

  stems::Mutex mu_;
  stems::CondVar cv_;
  int balance_ STEMS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  a.Deposit();
  return a.Read();
}
