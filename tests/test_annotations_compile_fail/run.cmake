# Negative-compilation suite for the thread-safety annotations
# (docs/static_analysis.md). Registered as ctest `test_annotations_compile_fail`
# when the toolchain is clang; GCC builds skip it (the annotations expand to
# nothing there, so nothing could fail).
#
# Proves two rejections and one acceptance:
#   unguarded_access.cc   must NOT compile (guarded field, lock not held)
#   missing_requires.cc   must NOT compile (REQUIRES callee, lock not held)
#   guarded_ok.cc         MUST compile (correct locking, incl. CondVar::Wait)
#
# Invoked as:
#   cmake -DCOMPILER=<clang++> -DSRC_DIR=<repo root> -P run.cmake

set(FLAGS -std=c++20 -fsyntax-only -Wthread-safety -Werror -I${SRC_DIR}/src)
set(SUITE_DIR ${SRC_DIR}/tests/test_annotations_compile_fail)
set(failures 0)

function(expect_compile src should_succeed)
  execute_process(
    COMMAND ${COMPILER} ${FLAGS} ${SUITE_DIR}/${src}
    RESULT_VARIABLE rc
    OUTPUT_VARIABLE out
    ERROR_VARIABLE err)
  if(should_succeed AND NOT rc EQUAL 0)
    message(SEND_ERROR
      "${src}: expected clean compile but got rc=${rc}:\n${err}")
    math(EXPR failures "${failures}+1")
  elseif(NOT should_succeed AND rc EQUAL 0)
    message(SEND_ERROR
      "${src}: expected a thread-safety error but it COMPILED — "
      "the annotation wall has a hole")
    math(EXPR failures "${failures}+1")
  elseif(NOT should_succeed AND NOT err MATCHES "thread-safety|thread safety")
    message(SEND_ERROR
      "${src}: failed to compile, but not with a thread-safety "
      "diagnostic:\n${err}")
    math(EXPR failures "${failures}+1")
  else()
    message(STATUS "${src}: OK")
  endif()
  set(failures ${failures} PARENT_SCOPE)
endfunction()

expect_compile(guarded_ok.cc TRUE)
expect_compile(unguarded_access.cc FALSE)
expect_compile(missing_requires.cc FALSE)

if(failures GREATER 0)
  message(FATAL_ERROR "${failures} probe(s) failed")
endif()
