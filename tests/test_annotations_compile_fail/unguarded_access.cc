// Negative-compilation probe: reading a STEMS_GUARDED_BY field without
// holding its mutex must be rejected by -Wthread-safety -Werror.
//
// Compiled by run.cmake under clang only; the build expects FAILURE.
// If this file ever compiles, the annotation wall has a hole.
#include "common/thread_annotations.h"

namespace {

class Account {
 public:
  // BAD: touches balance_ with mu_ not held.
  int Read() { return balance_; }

 private:
  stems::Mutex mu_;
  int balance_ STEMS_GUARDED_BY(mu_) = 0;
};

}  // namespace

int main() {
  Account a;
  return a.Read();
}
