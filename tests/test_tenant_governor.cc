// TenantGovernor admission control: unit transitions (admit -> queue ->
// reject, memory charges, the spill-I/O window) and the same quotas
// enforced end-to-end over the wire — a queued Submit admitted when a
// running query finishes, hard-over-quota rejected with a retry-after
// hint, and per-tenant rollups matching the sum of per-query results.
#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "server/tenant_governor.h"
#include "tests/test_util.h"

namespace stems::server {
namespace {

using sql::SqlParams;
using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;

QueryStats StatsWith(uint64_t num_results, bool cancelled = false) {
  QueryStats stats;
  stats.num_results = num_results;
  stats.tuples_routed = num_results * 10;
  stats.cancelled = cancelled;
  return stats;
}

// ---------------------------------------------------------------------------
// Unit: the governor's bookkeeping alone
// ---------------------------------------------------------------------------

TEST(TenantGovernorUnit, RegistrationRules) {
  TenantGovernor governor;
  EXPECT_FALSE(governor.RegisterTenant("", {}).ok());
  TenantQuota zero_slots;
  zero_slots.max_concurrent_queries = 0;
  EXPECT_FALSE(governor.RegisterTenant("t", zero_slots).ok());
  ASSERT_TRUE(governor.RegisterTenant("t", {}).ok());
  EXPECT_EQ(governor.RegisterTenant("t", {}).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(governor.HasTenant("t"));
  EXPECT_FALSE(governor.HasTenant("u"));
}

TEST(TenantGovernorUnit, UnknownTenantRejected) {
  TenantGovernor governor;
  const AdmissionDecision decision = governor.OnSubmit("ghost", 0);
  EXPECT_EQ(decision.outcome, AdmissionOutcome::kReject);
  EXPECT_EQ(decision.status.code(), StatusCode::kNotFound);
}

TEST(TenantGovernorUnit, SlotsAdmitThenQueueThenReject) {
  TenantGovernor governor;
  TenantQuota quota;
  quota.max_concurrent_queries = 2;
  quota.max_queued_submits = 1;
  quota.reject_retry_after_ms = 75;
  ASSERT_TRUE(governor.RegisterTenant("t", quota).ok());

  EXPECT_EQ(governor.OnSubmit("t", 0).outcome, AdmissionOutcome::kAdmit);
  EXPECT_EQ(governor.OnSubmit("t", 0).outcome, AdmissionOutcome::kAdmit);
  const AdmissionDecision queued = governor.OnSubmit("t", 0);
  EXPECT_EQ(queued.outcome, AdmissionOutcome::kQueue);
  EXPECT_GE(queued.retry_after_ms, 1u);
  const AdmissionDecision rejected = governor.OnSubmit("t", 0);
  EXPECT_EQ(rejected.outcome, AdmissionOutcome::kReject);
  EXPECT_EQ(rejected.status.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(rejected.retry_after_ms, 75u);

  // No capacity yet: the queued submit stays queued.
  EXPECT_FALSE(governor.TryAdmitQueued("t", 0));
  // A finished query frees one slot; exactly one queued submit admits.
  governor.OnQueryFinished("t", 0, StatsWith(5), Status::OK());
  EXPECT_TRUE(governor.TryAdmitQueued("t", 0));
  EXPECT_FALSE(governor.TryAdmitQueued("t", 0));  // queue now empty

  const TenantRollup rollup = governor.Rollup("t");
  EXPECT_EQ(rollup.queries_submitted, 4u);
  EXPECT_EQ(rollup.queries_admitted, 3u);
  EXPECT_EQ(rollup.queries_queued, 1u);
  EXPECT_EQ(rollup.queries_rejected, 1u);
  EXPECT_EQ(rollup.running_queries, 2u);
  EXPECT_EQ(rollup.queued_queries, 0u);
}

TEST(TenantGovernorUnit, MemoryChargesGateAdmission) {
  TenantGovernor governor;
  TenantQuota quota;
  quota.max_concurrent_queries = 100;  // memory is the binding constraint
  quota.max_memory_entries = 1000;
  quota.default_query_memory_entries = 400;
  ASSERT_TRUE(governor.RegisterTenant("t", quota).ok());

  EXPECT_EQ(governor.MemoryCharge("t", 0), 400u);     // default estimate
  EXPECT_EQ(governor.MemoryCharge("t", 600), 600u);   // declared budget
  EXPECT_EQ(governor.MemoryCharge("ghost", 600), 0u);

  EXPECT_EQ(governor.OnSubmit("t", 600).outcome, AdmissionOutcome::kAdmit);
  EXPECT_EQ(governor.OnSubmit("t", 0).outcome, AdmissionOutcome::kAdmit);
  EXPECT_EQ(governor.Rollup("t").memory_entries_in_use, 1000u);
  // 1000/1000 used: the next submit queues, whatever its size.
  EXPECT_EQ(governor.OnSubmit("t", 1).outcome, AdmissionOutcome::kQueue);
  // A query that can never fit is rejected outright, not queued forever.
  const AdmissionDecision impossible = governor.OnSubmit("t", 2000);
  EXPECT_EQ(impossible.outcome, AdmissionOutcome::kReject);
  EXPECT_NE(impossible.status.message().find("can never be admitted"),
            std::string::npos);

  // Releasing the 600-entry query frees room for the queued 1-entry one.
  governor.OnQueryFinished("t", 600, StatsWith(0), Status::OK());
  EXPECT_EQ(governor.Rollup("t").memory_entries_in_use, 400u);
  EXPECT_TRUE(governor.TryAdmitQueued("t", 1));
  EXPECT_EQ(governor.Rollup("t").memory_entries_in_use, 401u);
}

TEST(TenantGovernorUnit, SpillWindowThrottles) {
  TenantGovernor governor;
  TenantQuota quota;
  quota.spill_io_window_budget = 100;
  quota.spill_window_ms = 60000;  // effectively never rolls during the test
  ASSERT_TRUE(governor.RegisterTenant("t", quota).ok());

  EXPECT_EQ(governor.OnSubmit("t", 0).outcome, AdmissionOutcome::kAdmit);
  governor.OnSpillProgress("t", 99);
  EXPECT_EQ(governor.OnSubmit("t", 0).outcome, AdmissionOutcome::kAdmit);
  governor.OnSpillProgress("t", 1);  // window budget now exhausted
  const AdmissionDecision throttled = governor.OnSubmit("t", 0);
  EXPECT_EQ(throttled.outcome, AdmissionOutcome::kQueue);
  EXPECT_GE(throttled.retry_after_ms, 1u);
  EXPECT_FALSE(governor.TryAdmitQueued("t", 0));
}

TEST(TenantGovernorUnit, RollupSumsFinishedQueryStats) {
  TenantGovernor governor;
  ASSERT_TRUE(governor.RegisterTenant("t", {}).ok());
  ASSERT_EQ(governor.OnSubmit("t", 0).outcome, AdmissionOutcome::kAdmit);
  ASSERT_EQ(governor.OnSubmit("t", 0).outcome, AdmissionOutcome::kAdmit);
  ASSERT_EQ(governor.OnSubmit("t", 0).outcome, AdmissionOutcome::kAdmit);
  governor.OnQueryFinished("t", 0, StatsWith(5), Status::OK());
  governor.OnQueryFinished("t", 0, StatsWith(7, /*cancelled=*/true),
                           Status::OK());
  governor.OnQueryFinished("t", 0, StatsWith(3), Status::Internal("wedged"));
  const TenantRollup rollup = governor.Rollup("t");
  EXPECT_EQ(rollup.queries_completed, 3u);
  EXPECT_EQ(rollup.queries_cancelled, 1u);
  EXPECT_EQ(rollup.queries_failed, 1u);
  EXPECT_EQ(rollup.num_results, 15u);
  EXPECT_EQ(rollup.tuples_routed, 150u);
  EXPECT_EQ(rollup.running_queries, 0u);
  // The Counters() surface mirrors the struct, pairwise.
  const auto counters = rollup.Counters();
  const auto find = [&](const std::string& name) -> uint64_t {
    for (const auto& [n, v] : counters) {
      if (n == name) return v;
    }
    ADD_FAILURE() << "missing counter " << name;
    return 0;
  };
  EXPECT_EQ(find("queries_completed"), 3u);
  EXPECT_EQ(find("num_results"), 15u);
  EXPECT_EQ(find("tuples_routed"), 150u);
}

// ---------------------------------------------------------------------------
// Over the wire: the same quotas enforced by a live server
// ---------------------------------------------------------------------------

class AdmissionOverWireTest : public ::testing::Test {
 protected:
  void SetUp() override {
    std::vector<std::vector<int64_t>> r_rows, s_rows;
    for (int64_t i = 0; i < 40; ++i) {
      r_rows.push_back({i % 8, i});
      s_rows.push_back({i % 8, i % 4});
    }
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"R", IntSchema({"a", "b"}),
                                       {ScanSpec("R.scan")}},
                              IntRows(r_rows))
                    .ok());
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"S", IntSchema({"x", "y"}),
                                       {ScanSpec("S.scan")}},
                              IntRows(s_rows))
                    .ok());
  }

  void StartServer(TenantQuota quota, RunOptions run_options = {}) {
    ServerOptions options;
    TenantConfig tenant;
    tenant.name = "t";
    tenant.quota = quota;
    options.tenants = {tenant};
    options.run_options = std::move(run_options);
    server_ = std::make_unique<Server>(&engine_, std::move(options));
    ASSERT_TRUE(server_->Start().ok());
  }

  /// Prepares + binds + submits the join on `client`, returning the
  /// SubmitResult (the query is left unfetched).
  SubmitResult StartJoin(Client* client) {
    auto prepared =
        client->Prepare("SELECT R.b, S.y FROM R, S WHERE R.a = S.x");
    EXPECT_TRUE(prepared.ok()) << prepared.status().message();
    auto portal = client->Bind(prepared.Value().stmt_id);
    EXPECT_TRUE(portal.ok());
    auto submit = client->Submit(portal.Value());
    EXPECT_TRUE(submit.ok()) << submit.status().message();
    return submit.Value();
  }

  /// Fetches `query_id` to a clean end of stream, returning the row count.
  size_t DrainQuery(Client* client, uint64_t query_id) {
    size_t rows = 0;
    while (true) {
      auto fetch = client->Fetch(query_id);
      EXPECT_TRUE(fetch.ok()) << fetch.status().message();
      if (!fetch.ok()) return rows;
      rows += fetch.Value().rows.size();
      if (fetch.Value().done) return rows;
    }
  }

  Engine engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(AdmissionOverWireTest, QueuedSubmitAdmitsWhenSlotFrees) {
  TenantQuota quota;
  quota.max_concurrent_queries = 1;
  StartServer(quota);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "t").ok());
  const SubmitResult first = StartJoin(&client);
  EXPECT_TRUE(first.admitted);
  const SubmitResult second = StartJoin(&client);
  EXPECT_FALSE(second.admitted) << "one slot: the second submit must queue";
  EXPECT_EQ(second.queue_position, 1u);

  // While the first query still runs, the queued one serves empty
  // not-done fetches (no rows, no error).
  auto parked = client.Fetch(second.query_id);
  ASSERT_TRUE(parked.ok());
  EXPECT_TRUE(parked.Value().rows.empty());
  EXPECT_FALSE(parked.Value().done);

  // Draining the first query frees the slot; the queued submit admits and
  // produces the same full result set.
  const size_t first_rows = DrainQuery(&client, first.query_id);
  EXPECT_GT(first_rows, 0u);
  const size_t second_rows = DrainQuery(&client, second.query_id);
  EXPECT_EQ(second_rows, first_rows);

  const TenantRollup rollup = server_->TenantStats("t");
  EXPECT_EQ(rollup.queries_submitted, 2u);
  EXPECT_EQ(rollup.queries_admitted, 2u);
  EXPECT_EQ(rollup.queries_queued, 1u);
  EXPECT_EQ(rollup.queries_rejected, 0u);
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(AdmissionOverWireTest, HardOverQuotaRejectsWithRetryAfter) {
  TenantQuota quota;
  quota.max_concurrent_queries = 1;
  quota.max_queued_submits = 0;  // no queue: over-quota is a hard reject
  quota.reject_retry_after_ms = 125;
  StartServer(quota);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "t").ok());
  const SubmitResult first = StartJoin(&client);
  EXPECT_TRUE(first.admitted);

  auto prepared = client.Prepare("SELECT R.a FROM R");
  ASSERT_TRUE(prepared.ok());
  auto portal = client.Bind(prepared.Value().stmt_id);
  ASSERT_TRUE(portal.ok());
  auto rejected = client.Submit(portal.Value());
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(client.last_error().retry_after_ms, 125u);
  EXPECT_NE(client.last_error().message.find("over quota"),
            std::string::npos);

  // After the running query drains, the same portal submits cleanly.
  DrainQuery(&client, first.query_id);
  auto retried = client.Submit(portal.Value());
  ASSERT_TRUE(retried.ok()) << retried.status().message();
  EXPECT_TRUE(retried.Value().admitted);
  EXPECT_EQ(DrainQuery(&client, retried.Value().query_id), 40u);

  const TenantRollup rollup = server_->TenantStats("t");
  EXPECT_EQ(rollup.queries_rejected, 1u);
  EXPECT_EQ(rollup.queries_admitted, 2u);
  EXPECT_TRUE(client.Close().ok());
}

/// Starvation regression: a submit queued because the tenant's spill-I/O
/// window budget is exhausted — with NO running queries left — must still
/// be admitted when the window rolls over. Only time frees this capacity,
/// so the server has to re-offer the queue on its own, not just after a
/// completion.
TEST_F(AdmissionOverWireTest, SpillWindowRolloverAdmitsQueuedSubmit) {
  TenantQuota quota;
  quota.spill_io_window_budget = 1;
  quota.spill_window_ms = 500;
  // A 16-entry budget over the 80-row build state forces spills.
  StartServer(quota, RunOptions::LargerThanMemory(16));

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "t").ok());
  const SubmitResult first = StartJoin(&client);
  ASSERT_TRUE(first.admitted);
  const size_t first_rows = DrainQuery(&client, first.query_id);
  ASSERT_GT(first_rows, 0u);
  ASSERT_GT(server_->TenantStats("t").spill_ios, 0u)
      << "premise: the join must spill under a 16-entry budget";

  // The finished query's I/Os exhausted the window: this submit queues,
  // and no completion will ever re-offer it.
  const SubmitResult second = StartJoin(&client);
  EXPECT_FALSE(second.admitted)
      << "premise: the spill window must still be exhausted";

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  size_t second_rows = 0;
  while (true) {
    ASSERT_TRUE(std::chrono::steady_clock::now() < deadline)
        << "queued submit was never admitted after the window rolled over";
    auto fetch = client.Fetch(second.query_id);
    ASSERT_TRUE(fetch.ok()) << fetch.status().message();
    second_rows += fetch.Value().rows.size();
    if (fetch.Value().done) break;
    if (fetch.Value().rows.empty()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  EXPECT_EQ(second_rows, first_rows);
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(AdmissionOverWireTest, RollupMatchesSumOfPerQueryResults) {
  TenantQuota quota;
  StartServer(quota);

  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "t").ok());
  constexpr int kQueries = 5;
  size_t total_rows = 0;
  for (int i = 0; i < kQueries; ++i) {
    const SubmitResult submit = StartJoin(&client);
    total_rows += DrainQuery(&client, submit.query_id);
  }
  // The rollup is the sum of the per-query stats the client observed.
  const TenantRollup rollup = server_->TenantStats("t");
  EXPECT_EQ(rollup.queries_completed, static_cast<uint64_t>(kQueries));
  EXPECT_EQ(rollup.num_results, total_rows);
  EXPECT_GT(rollup.tuples_routed, 0u);

  // The Stats wire frame serves the same counters.
  auto counters = client.TenantStats();
  ASSERT_TRUE(counters.ok());
  uint64_t wire_results = 0, wire_completed = 0;
  for (const auto& [name, value] : counters.Value()) {
    if (name == "num_results") wire_results = value;
    if (name == "queries_completed") wire_completed = value;
  }
  EXPECT_EQ(wire_results, total_rows);
  EXPECT_EQ(wire_completed, static_cast<uint64_t>(kQueries));
  EXPECT_TRUE(client.Close().ok());
}

}  // namespace
}  // namespace stems::server
