// Policy registry: named lookup, enumeration, and the error paths the
// Engine façade depends on.
#include <gtest/gtest.h>

#include <algorithm>

#include "engine/policy_registry.h"
#include "engine/run_options.h"

namespace stems {
namespace {

TEST(PolicyRegistryTest, AllBuiltinPoliciesEnumerable) {
  const std::vector<std::string> names = PolicyRegistry::Global().Names();
  for (const char* expected : {"nary_shj", "lottery", "benefit_cost"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), expected), names.end())
        << "builtin policy '" << expected << "' not registered";
  }
  // Names() is sorted (map order), so bench sweeps are deterministic.
  EXPECT_TRUE(std::is_sorted(names.begin(), names.end()));
}

TEST(PolicyRegistryTest, CreatesEveryRegisteredPolicy) {
  for (const std::string& name : PolicyRegistry::Global().Names()) {
    auto policy = PolicyRegistry::Global().Create(name);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    EXPECT_NE(policy.Value(), nullptr);
    EXPECT_NE(policy.Value()->name(), nullptr);
  }
}

TEST(PolicyRegistryTest, LookupNormalizesDashes) {
  // RoutingPolicy::name() spellings use dashes ("nary-shj"); the registry
  // resolves both spellings to the canonical underscore name.
  EXPECT_TRUE(PolicyRegistry::Global().Contains("nary-shj"));
  EXPECT_TRUE(PolicyRegistry::Global().Contains("benefit-cost"));
  auto policy = PolicyRegistry::Global().Create("benefit-cost");
  ASSERT_TRUE(policy.ok()) << policy.status().ToString();
}

TEST(PolicyRegistryTest, UnknownNameIsNotFoundAndListsKnownNames) {
  auto policy = PolicyRegistry::Global().Create("no_such_policy");
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kNotFound);
  // The error is actionable: it tells the caller what *is* registered.
  EXPECT_NE(policy.status().message().find("nary_shj"), std::string::npos)
      << policy.status().ToString();
}

TEST(PolicyRegistryTest, DuplicateRegistrationRejected) {
  PolicyRegistry registry;
  auto factory = [](const PolicyParams& p) {
    return PolicyRegistry::Global().Create("nary_shj", p).ValueOrDie();
  };
  ASSERT_TRUE(registry.Register("mine", factory).ok());
  Status dup = registry.Register("mine", factory);
  ASSERT_FALSE(dup.ok());
  EXPECT_EQ(dup.code(), StatusCode::kAlreadyExists);
  // Normalization applies to registration too: "mine" vs "mi-ne" differ,
  // but a dashed respelling of an existing name collides.
  EXPECT_EQ(registry.Register("mi-ne", factory).code(), StatusCode::kOk);
  EXPECT_EQ(registry.Register("mi_ne", factory).code(),
            StatusCode::kAlreadyExists);
}

TEST(PolicyRegistryTest, RejectsEmptyNameAndNullFactory) {
  PolicyRegistry registry;
  EXPECT_EQ(registry.Register("", [](const PolicyParams&) {
              return std::unique_ptr<RoutingPolicy>();
            }).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(registry.Register("x", nullptr).code(),
            StatusCode::kInvalidArgument);
}

TEST(RunOptionsTest, ValidateRejectsUnknownPolicy) {
  RunOptions options;
  options.policy = "optimizer";  // there is, by design, no such thing
  Status st = options.Validate();
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kNotFound);
}

TEST(RunOptionsTest, ValidateRejectsInconsistentKnobs) {
  RunOptions options;
  options.exec.eddy.max_routes_per_tuple = 0;
  EXPECT_FALSE(options.Validate().ok());

  options = RunOptions();
  options.exec.eddy.no_build_tables = {"R"};  // without relax_build_first
  EXPECT_FALSE(options.Validate().ok());

  options = RunOptions();
  options.exec.scan_defaults.period = 0;
  EXPECT_FALSE(options.Validate().ok());
}

TEST(RunOptionsTest, PresetsValidate) {
  EXPECT_TRUE(RunOptions().Validate().ok());
  EXPECT_TRUE(RunOptions::Paper().Validate().ok());
  EXPECT_TRUE(RunOptions::LowMemory().Validate().ok());
  EXPECT_TRUE(RunOptions::RelaxedBuildFirst({"R"}).Validate().ok());

  EXPECT_EQ(RunOptions::Paper().policy, "benefit_cost");
  EXPECT_GT(RunOptions::LowMemory(512).exec.eddy.memory.global_entry_budget,
            0u);
  EXPECT_TRUE(RunOptions::RelaxedBuildFirst({"R"}).exec.eddy.relax_build_first);
}

}  // namespace
}  // namespace stems
