// Routing policy behaviour tests: the *adaptation* claims, at policy level.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::FastConfig;
using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::RunEddy;
using testing::ScanSpec;
using testing::TestDb;

TEST(NaryShjPolicyTest, RespectsConfiguredProbeOrder) {
  // Chain R-S with S joined to both R and T; the probe order config flips
  // which SteM an S singleton probes first. Observable through per-stem
  // probe counters.
  TestDb db;
  db.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}}), {ScanSpec("R.s")});
  db.AddTable("S", IntSchema({"x", "y"}), IntRows({{1, 5}, {2, 6}}),
              {ScanSpec("S.s")});
  db.AddTable("T", IntSchema({"b"}), IntRows({{5}, {6}}), {ScanSpec("T.s")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b");
  QuerySpec q = qb.Build().ValueOrDie();

  auto run_with_order = [&](std::vector<int> order) {
    Simulation sim;
    auto eddy = PlanQuery(q, db.store, &sim, FastConfig()).ValueOrDie();
    PolicyParams params;
    params.probe_order = std::move(order);
    eddy->SetPolicy(
        PolicyRegistry::Global().Create("nary_shj", params).ValueOrDie());
    eddy->RunToCompletion();
    return std::make_pair(eddy->StemForTable("R")->probes_processed(),
                          eddy->StemForTable("T")->probes_processed());
  };
  // Prefer probing T first: SteM(T) sees S singletons plus composites.
  auto [r_probes_t_first, t_probes_t_first] = run_with_order({2, 0, 1});
  auto [r_probes_r_first, t_probes_r_first] = run_with_order({0, 1, 2});
  // With T preferred, SteM(T) receives at least as many probes as before.
  EXPECT_GE(t_probes_t_first, t_probes_r_first);
  EXPECT_LE(r_probes_t_first, r_probes_r_first);
}

TEST(LotteryPolicyTest, AvoidsBackloggedStem) {
  // One stem is made very slow; the lottery should route most probes to the
  // other join order once queues build up.
  TestDb db;
  db.AddTable("C", IntSchema({"a", "b"}),
              IntRows({{1, 1}, {2, 2}, {3, 3}, {4, 4}, {5, 5}, {6, 6}}),
              {ScanSpec("C.s")});
  db.AddTable("X", IntSchema({"a"}), IntRows({{1}, {2}, {3}}),
              {ScanSpec("X.s")});
  db.AddTable("Y", IntSchema({"b"}), IntRows({{1}, {2}}), {ScanSpec("Y.s")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("C").AddTable("X").AddTable("Y");
  qb.AddJoin("C.a", "X.a").AddJoin("C.b", "Y.b");
  QuerySpec q = qb.Build().ValueOrDie();

  ExecutionConfig config = FastConfig();
  StemOptions slow;
  slow.probe_service_time = Millis(20);
  slow.build_service_time = Millis(20);
  config.stem_overrides["X"] = slow;
  config.scan_defaults.period = Micros(50);

  Simulation sim;
  auto eddy = PlanQuery(q, db.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kLottery, /*seed=*/7));
  eddy->RunToCompletion();
  // Correct results regardless.
  EXPECT_EQ(KeysOf(eddy->results(), nullptr),
            BruteForceResultSet(q, db.store));
  EXPECT_EQ(eddy->violations().size(), 0u);
}

TEST(BenefitCostPolicyTest, HedgesToFastMirrorAfterSlowPick) {
  // Regression for the DEC-Rdb problem: the first probe lands on a dead
  // mirror; the policy must hedge to the healthy one instead of waiting.
  TestDb db;
  db.AddTable("R", IntSchema({"a"}), IntRows({{0}, {1}, {2}, {3}}),
              {ScanSpec("R.scan")});
  db.AddTable("S", IntSchema({"x"}), IntRows({{0}, {1}, {2}, {3}}),
              {IndexSpec("S.dead", {0}), IndexSpec("S.live", {0})});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();

  ExecutionConfig config = FastConfig();
  config.scan_defaults.period = Micros(10);
  config.index_overrides["S.dead"].latency =
      std::make_shared<FixedLatency>(Seconds(60));
  config.index_overrides["S.live"].latency =
      std::make_shared<FixedLatency>(Millis(1));

  Simulation sim;
  auto eddy = PlanQuery(q, db.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kBenefitCost));
  eddy->RunToCompletion();
  EXPECT_EQ(eddy->num_results(), 4u);
  // All results long before the dead mirror's latency.
  EXPECT_LT(eddy->ctx()->metrics.Series("results").TimeToReach(4),
            Seconds(30));
  EXPECT_GT(eddy->ctx()->metrics.Series("S.live.probes").total(), 0);
}

TEST(BenefitCostPolicyTest, DeclinesIndexWhenScanIsFaster) {
  // T's scan finishes almost immediately while the index is slow: the
  // policy should send (almost) nothing to the index.
  TestDb db;
  db.AddTable("R", IntSchema({"a"}), IntRows({{0}, {1}, {2}, {3}}),
              {ScanSpec("R.scan")});
  db.AddTable("T", IntSchema({"key"}), IntRows({{0}, {1}, {2}, {3}}),
              {ScanSpec("T.scan"), IndexSpec("T.idx", {0})});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
  QuerySpec q = qb.Build().ValueOrDie();

  ExecutionConfig config = FastConfig();
  config.scan_overrides["R.scan"].period = Millis(10);
  config.scan_overrides["T.scan"].period = Micros(10);  // near-instant
  config.index_defaults.latency = std::make_shared<FixedLatency>(Seconds(5));
  StemOptions t_stem;
  t_stem.bounce_mode = ProbeBounceMode::kAlways;
  config.stem_overrides["T"] = t_stem;

  Simulation sim;
  auto eddy = PlanQuery(q, db.store, &sim, config).ValueOrDie();
  PolicyParams params;
  params.knobs["explore_epsilon"] = 0.0;  // isolate cost model from exploration
  eddy->SetPolicy(
      PolicyRegistry::Global().Create("benefit_cost", params).ValueOrDie());
  eddy->RunToCompletion();
  EXPECT_EQ(eddy->num_results(), 4u);
  EXPECT_EQ(eddy->ctx()->metrics.Series("T.idx.probes").total(), 0);
}

TEST(BenefitCostPolicyTest, UsesIndexWhenScanIsHopeless) {
  // Opposite extreme: glacial scan, snappy index.
  TestDb db;
  db.AddTable("R", IntSchema({"a"}), IntRows({{0}, {1}, {2}, {3}}),
              {ScanSpec("R.scan")});
  db.AddTable("T", IntSchema({"key"}), IntRows({{0}, {1}, {2}, {3}}),
              {ScanSpec("T.scan"), IndexSpec("T.idx", {0})});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
  QuerySpec q = qb.Build().ValueOrDie();

  ExecutionConfig config = FastConfig();
  config.scan_overrides["R.scan"].period = Millis(1);
  config.scan_overrides["T.scan"].period = Seconds(10);
  config.index_defaults.latency = std::make_shared<FixedLatency>(Millis(5));
  StemOptions t_stem;
  t_stem.bounce_mode = ProbeBounceMode::kAlways;
  config.stem_overrides["T"] = t_stem;

  Simulation sim;
  auto eddy = PlanQuery(q, db.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kBenefitCost));
  eddy->RunToCompletion();
  EXPECT_EQ(eddy->num_results(), 4u);
  // All results within a few index round-trips, far before the scan.
  EXPECT_LT(eddy->ctx()->metrics.Series("results").TimeToReach(4), Seconds(1));
  EXPECT_EQ(eddy->ctx()->metrics.Series("T.idx.probes").total(), 4);
}

TEST(PolicySelfJoinCloneTest, CloneSpawnedExactlyOnce) {
  TestDb db;
  db.AddTable("R", IntSchema({"g"}), IntRows({{1}, {1}, {2}}),
              {ScanSpec("R.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R", "l").AddTable("R", "r").AddJoin("l.g", "r.g");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  // Set semantics: {1},{2} distinct rows -> pairs (1,1),(2,2).
  EXPECT_EQ(run.num_results, 2u);
  EXPECT_TRUE(run.duplicates.empty());
  EXPECT_EQ(run.violations, 0u);
}

}  // namespace
}  // namespace stems
