// Unit tests: scan and index access modules (paper §2.1.3, §3.3).
#include <gtest/gtest.h>

#include <memory>

#include "am/index_am.h"
#include "am/scan_am.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;
using testing::TestDb;

class AmTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}}),
                 {ScanSpec("R.scan")});
    db_.AddTable("S", IntSchema({"x", "p"}),
                 IntRows({{1, 10}, {1, 11}, {2, 20}}),
                 {IndexSpec("S.idx", {0})});
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
    query_ = qb.Build().ValueOrDie();
    ctx_.query = &query_;
    ctx_.sim = &sim_;
  }

  TestDb db_;
  QuerySpec query_;
  Simulation sim_;
  QueryContext ctx_;
  std::vector<TuplePtr> out_;
};

TEST_F(AmTest, ScanEmitsRowsPacedThenEot) {
  ScanAmOptions opts;
  opts.period = Millis(10);
  ScanAm scan(&ctx_, "R.scan", "R",
              db_.store.GetTable("R").ValueOrDie()->rows(), opts);
  std::vector<SimTime> times;
  scan.SetSink([&](TuplePtr t, Module*) {
    times.push_back(sim_.now());
    out_.push_back(std::move(t));
  });
  scan.Accept(Tuple::MakeSeed(2));
  EXPECT_FALSE(scan.Quiescent());
  sim_.Run();
  ASSERT_EQ(out_.size(), 3u);  // 2 rows + scan EOT
  EXPECT_FALSE(out_[0]->IsEot());
  EXPECT_FALSE(out_[1]->IsEot());
  EXPECT_TRUE(out_[2]->IsEot());
  EXPECT_EQ(out_[0]->SingletonSlot(), 0);
  // Pacing: one row per period.
  EXPECT_GE(times[1] - times[0], Millis(10));
  EXPECT_TRUE(scan.finished());
  EXPECT_TRUE(scan.Quiescent());
  EXPECT_EQ(scan.rows_emitted(), 2u);
}

TEST_F(AmTest, ScanStallWindowDelaysRows) {
  ScanAmOptions opts;
  opts.period = Millis(10);
  opts.stall_windows = {{Millis(15), Millis(500)}};
  ScanAm scan(&ctx_, "R.scan", "R",
              db_.store.GetTable("R").ValueOrDie()->rows(), opts);
  std::vector<SimTime> times;
  scan.SetSink([&](TuplePtr t, Module*) {
    if (!t->IsEot()) times.push_back(sim_.now());
  });
  scan.Accept(Tuple::MakeSeed(2));
  sim_.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_LT(times[0], Millis(15));   // before the stall
  EXPECT_GE(times[1], Millis(500));  // deferred to window end
}

TEST_F(AmTest, ScanIgnoresDuplicateSeeds) {
  ScanAm scan(&ctx_, "R.scan", "R",
              db_.store.GetTable("R").ValueOrDie()->rows(), {});
  size_t emitted = 0;
  scan.SetSink([&](TuplePtr, Module*) { ++emitted; });
  scan.Accept(Tuple::MakeSeed(2));
  scan.Accept(Tuple::MakeSeed(2));
  sim_.Run();
  EXPECT_EQ(emitted, 3u);  // rows + one EOT, not doubled
}

TEST_F(AmTest, ScanPrioritizerMarksTuples) {
  ScanAmOptions opts;
  opts.prioritizer = [](const Row& r) { return r.value(0).AsInt64() == 2; };
  ScanAm scan(&ctx_, "R.scan", "R",
              db_.store.GetTable("R").ValueOrDie()->rows(), opts);
  scan.SetSink([&](TuplePtr t, Module*) { out_.push_back(std::move(t)); });
  scan.Accept(Tuple::MakeSeed(2));
  sim_.Run();
  EXPECT_FALSE(out_[0]->prioritized());  // row [1]
  EXPECT_TRUE(out_[1]->prioritized());   // row [2]
}

IndexAmOptions FastIndexOptions(SimTime latency = Millis(5),
                                int concurrency = 1) {
  IndexAmOptions o;
  o.latency = std::make_shared<FixedLatency>(latency);
  o.concurrency = concurrency;
  return o;
}

TEST_F(AmTest, IndexProbeReturnsMatchesEotAndBouncesProbe) {
  IndexAm am(&ctx_, "S.idx", "S", {0}, db_.store.GetTable("S").ValueOrDie(),
             FastIndexOptions());
  am.SetSink([&](TuplePtr t, Module*) { out_.push_back(std::move(t)); });
  TuplePtr probe = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(1)}));
  probe->SetBuilt(0, 1);
  probe->MarkPriorProber(1);
  am.Accept(probe);
  sim_.Run();
  // Bounced probe + 2 matches + EOT.
  ASSERT_EQ(out_.size(), 4u);
  EXPECT_TRUE(probe->probe_completed());
  int matches = 0, eots = 0;
  for (const auto& t : out_) {
    if (t.get() == probe.get()) continue;
    if (t->IsEot()) {
      ++eots;
      EXPECT_EQ(t->component(1).row->value(0).AsInt64(), 1);  // bind value
    } else {
      ++matches;
      EXPECT_EQ(t->SingletonSlot(), 1);
      EXPECT_EQ(t->ValueAt(1, 0)->AsInt64(), 1);
    }
  }
  EXPECT_EQ(matches, 2);
  EXPECT_EQ(eots, 1);
  EXPECT_EQ(am.lookups_issued(), 1u);
  EXPECT_TRUE(am.Quiescent());
}

TEST_F(AmTest, IndexCoalescesDuplicateProbes) {
  IndexAm am(&ctx_, "S.idx", "S", {0}, db_.store.GetTable("S").ValueOrDie(),
             FastIndexOptions());
  am.SetSink([&](TuplePtr t, Module*) { out_.push_back(std::move(t)); });
  for (int i = 0; i < 3; ++i) {
    TuplePtr p = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(1)}));
    p->SetBuilt(0, static_cast<BuildTs>(i + 1));
    p->MarkPriorProber(1);
    am.Accept(p);
  }
  sim_.Run();
  EXPECT_EQ(am.lookups_issued(), 1u);
  EXPECT_EQ(am.probes_coalesced(), 2u);
  // All three probes bounced; matches + EOT emitted once.
  EXPECT_EQ(am.matches_emitted(), 2u);
}

TEST_F(AmTest, IndexCoalescingCanBeDisabled) {
  IndexAmOptions o = FastIndexOptions();
  o.coalesce_duplicate_probes = false;
  IndexAm am(&ctx_, "S.idx", "S", {0}, db_.store.GetTable("S").ValueOrDie(),
             std::move(o));
  am.SetSink([&](TuplePtr, Module*) {});
  for (int i = 0; i < 3; ++i) {
    TuplePtr p = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(1)}));
    p->SetBuilt(0, static_cast<BuildTs>(i + 1));
    p->MarkPriorProber(1);
    am.Accept(p);
  }
  sim_.Run();
  EXPECT_EQ(am.lookups_issued(), 3u);  // redundant remote work
}

TEST_F(AmTest, IndexConcurrencyLimitsOutstandingLookups) {
  // 4 distinct keys, concurrency 2, latency 5ms: two waves of lookups.
  db_.AddTable("S2", IntSchema({"x"}), IntRows({{1}, {2}, {3}, {4}}),
               {IndexSpec("S2.idx", {0})});
  IndexAm am(&ctx_, "S.idx", "S", {0}, db_.store.GetTable("S").ValueOrDie(),
             FastIndexOptions(Millis(5), 2));
  std::vector<SimTime> eot_times;
  am.SetSink([&](TuplePtr t, Module*) {
    if (t->IsEot()) eot_times.push_back(sim_.now());
  });
  for (int64_t k = 1; k <= 4; ++k) {
    TuplePtr p = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(k)}));
    p->SetBuilt(0, static_cast<BuildTs>(k));
    p->MarkPriorProber(1);
    am.Accept(p);
  }
  sim_.Run();
  ASSERT_EQ(eot_times.size(), 4u);
  // First two complete at ~5ms, second two at ~10ms.
  EXPECT_LT(eot_times[1], Millis(6));
  EXPECT_GE(eot_times[2], Millis(10));
}

TEST_F(AmTest, IndexLatencyStatsObserved) {
  IndexAm am(&ctx_, "S.idx", "S", {0}, db_.store.GetTable("S").ValueOrDie(),
             FastIndexOptions(Millis(40)));
  am.SetSink([&](TuplePtr, Module*) {});
  TuplePtr p = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(2)}));
  p->SetBuilt(0, 1);
  p->MarkPriorProber(1);
  am.Accept(p);
  sim_.Run();
  EXPECT_EQ(am.MeanLookupLatency(), Millis(40));
  EXPECT_EQ(am.outstanding(), 0u);
}

TEST_F(AmTest, ExtractBindValues) {
  IndexAm am(&ctx_, "S.idx", "S", {0}, db_.store.GetTable("S").ValueOrDie(),
             FastIndexOptions());
  TuplePtr p = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(7)}));
  auto values = am.ExtractBindValues(*p, 1);
  ASSERT_EQ(values.size(), 1u);
  EXPECT_EQ(values[0].AsInt64(), 7);
  // A tuple that spans S cannot bind S's own slot through a peer.
  TuplePtr s = Tuple::MakeSingleton(2, 1,
                                    MakeRow({Value::Int64(1), Value::Int64(2)}));
  EXPECT_TRUE(am.ExtractBindValues(*s, 1).empty());
}

TEST_F(AmTest, MakeEotRowEncodesBinding) {
  RowRef eot = MakeEotRow(3, {1}, {Value::Int64(9)});
  EXPECT_TRUE(eot->IsEot());
  EXPECT_TRUE(eot->value(0).is_eot());
  EXPECT_EQ(eot->value(1).AsInt64(), 9);
  EXPECT_TRUE(eot->value(2).is_eot());
}

}  // namespace
}  // namespace stems
