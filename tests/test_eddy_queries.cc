// Eddy correctness across the full query-class ladder of paper §3:
// index AMs (§3.3), competitive AMs (§3.2), cyclic queries (§3.4),
// relaxed BuildFirst (§3.5), self-joins (§2.2).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::ExpectCorrect;
using testing::FastConfig;
using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::RunEddy;
using testing::ScanSpec;
using testing::TestDb;

class EddyQueriesTest : public ::testing::Test {
 protected:
  TestDb db_;
};

// §3.3 / Figure 4: the inner table has only index AMs; probes must complete
// through the index, matches rendezvous through the probe side's SteM.
TEST_F(EddyQueriesTest, IndexOnlyInnerTable) {
  db_.AddTable("R", IntSchema({"key", "a"}),
               IntRows({{1, 10}, {2, 20}, {3, 10}, {4, 30}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "p"}),
               IntRows({{10, 100}, {20, 200}, {40, 400}}),
               {IndexSpec("S.idx_x", {0})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 3u);
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

// Two index AMs on different key columns of the same table (paper Table 3's
// source S): the query can bind either.
TEST_F(EddyQueriesTest, IndexOnlyTableTwoKeys) {
  db_.AddTable("R", IntSchema({"a", "b"}),
               IntRows({{1, 5}, {2, 6}, {3, 7}}), {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "y"}),
               IntRows({{1, 1}, {2, 2}, {3, 3}, {4, 4}}),
               {IndexSpec("S.idx_x", {0}), IndexSpec("S.idx_y", {1})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

// §3.3: table with BOTH scan and index AM — the shared SteM deduplicates
// whatever arrives from either access path; no duplicate results.
TEST_F(EddyQueriesTest, ScanPlusIndexOnSameTable) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}}),
               {ScanSpec("R.scan")});
  db_.AddTable("T", IntSchema({"key", "v"}),
               IntRows({{1, 11}, {2, 22}, {3, 33}, {4, 44}}),
               {ScanSpec("T.scan"), IndexSpec("T.idx", {0})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
  QuerySpec q = qb.Build().ValueOrDie();
  // SteM(T) must bounce probes (kAlways) for the policy to use the index.
  ExecutionConfig config = FastConfig();
  StemOptions t_opts;
  t_opts.bounce_mode = ProbeBounceMode::kAlways;
  config.stem_overrides["T"] = t_opts;
  for (auto kind : {PolicyKind::kNaryShj, PolicyKind::kBenefitCost}) {
    SCOPED_TRACE(static_cast<int>(kind));
    ExpectCorrect(q, db_, config, MakePolicy(kind));
  }
}

// §3.2: two scan AMs on one table (competing sources serving the same
// data); set-semantics dedup in the SteM removes the overlap.
TEST_F(EddyQueriesTest, CompetitiveScanAms) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}}),
               {ScanSpec("R.scan1"), ScanSpec("R.scan2")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{1}, {3}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 2u);
  EXPECT_TRUE(run.duplicates.empty());
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

// §3.4: fully cyclic 3-way join (predicates on all three pairs). No
// spanning tree is fixed; ProbeCompletion prevents duplicate derivations.
TEST_F(EddyQueriesTest, CyclicTriangleQuery) {
  db_.AddTable("R", IntSchema({"a", "c"}),
               IntRows({{1, 7}, {2, 8}, {1, 8}}), {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "y"}),
               IntRows({{1, 4}, {2, 5}, {1, 5}}), {ScanSpec("S.scan")});
  db_.AddTable("T", IntSchema({"b", "d"}),
               IntRows({{4, 7}, {5, 8}, {4, 8}}), {ScanSpec("T.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b").AddJoin("T.d", "R.c");
  QuerySpec q = qb.Build().ValueOrDie();
  JoinGraph graph(q);
  EXPECT_TRUE(graph.IsCyclic());
  for (auto kind : {PolicyKind::kNaryShj, PolicyKind::kLottery,
                    PolicyKind::kBenefitCost}) {
    SCOPED_TRACE(static_cast<int>(kind));
    ExpectCorrect(q, db_, FastConfig(), MakePolicy(kind));
  }
}

// Cyclic query with an index-AM table inside the cycle.
TEST_F(EddyQueriesTest, CyclicWithIndexAm) {
  db_.AddTable("R", IntSchema({"a", "c"}),
               IntRows({{1, 7}, {2, 8}}), {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "y"}),
               IntRows({{1, 4}, {2, 5}}), {ScanSpec("S.scan")});
  db_.AddTable("T", IntSchema({"b", "d"}),
               IntRows({{4, 7}, {5, 8}, {5, 7}}),
               {IndexSpec("T.idx_b", {0})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b").AddJoin("T.d", "R.c");
  QuerySpec q = qb.Build().ValueOrDie();
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

// §2.2: self-join — two instances of one table share a single SteM.
TEST_F(EddyQueriesTest, SelfJoin) {
  db_.AddTable("R", IntSchema({"key", "mgr"}),
               IntRows({{1, 2}, {2, 3}, {3, 1}, {4, 4}}),
               {ScanSpec("R.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R", "e").AddTable("R", "m").AddJoin("e.mgr", "m.key");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 4u);  // (1,2),(2,3),(3,1),(4,4 self)
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

TEST_F(EddyQueriesTest, SelfJoinCrossKeysAllPairs) {
  db_.AddTable("R", IntSchema({"g", "v"}),
               IntRows({{1, 10}, {1, 20}, {1, 30}, {2, 40}}),
               {ScanSpec("R.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R", "l").AddTable("R", "r").AddJoin("l.g", "r.g");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 10u);  // 3x3 within group 1 + 1 within group 2
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

// §3.5: relaxed BuildFirst — the large table's singletons probe without
// building, re-probing via LastMatchTimeStamp until covered.
TEST_F(EddyQueriesTest, RelaxedBuildFirst) {
  db_.AddTable("Big", IntSchema({"a"}),
               IntRows({{1}, {2}, {3}, {4}, {5}, {6}, {7}, {8}}),
               {ScanSpec("Big.scan")});
  db_.AddTable("Small", IntSchema({"x"}), IntRows({{2}, {4}, {6}}),
               {ScanSpec("Small.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("Big").AddTable("Small").AddJoin("Big.a", "Small.x");
  QuerySpec q = qb.Build().ValueOrDie();

  ExecutionConfig config = FastConfig();
  config.eddy.relax_build_first = true;
  config.eddy.no_build_tables = {"Big"};
  // Make Big much faster than Small so unbuilt Big probes genuinely arrive
  // before Small rows and must wait/re-probe.
  config.scan_overrides["Big.scan"] = {};
  config.scan_overrides["Big.scan"].period = Micros(5);
  config.scan_overrides["Small.scan"] = {};
  config.scan_overrides["Small.scan"].period = Millis(5);
  ExpectCorrect(q, db_, config, MakePolicy(PolicyKind::kNaryShj));
}

// Star query: center joins three satellites on different columns.
TEST_F(EddyQueriesTest, StarQueryFourTables) {
  db_.AddTable("C", IntSchema({"a", "b", "c"}),
               IntRows({{1, 4, 7}, {2, 5, 8}, {3, 6, 9}}),
               {ScanSpec("C.scan")});
  db_.AddTable("X", IntSchema({"a"}), IntRows({{1}, {2}}),
               {ScanSpec("X.scan")});
  db_.AddTable("Y", IntSchema({"b"}), IntRows({{4}, {6}}),
               {ScanSpec("Y.scan")});
  db_.AddTable("Z", IntSchema({"c"}), IntRows({{7}, {8}, {9}}),
               {ScanSpec("Z.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("C").AddTable("X").AddTable("Y").AddTable("Z");
  qb.AddJoin("C.a", "X.a").AddJoin("C.b", "Y.b").AddJoin("C.c", "Z.c");
  QuerySpec q = qb.Build().ValueOrDie();
  for (auto kind : {PolicyKind::kNaryShj, PolicyKind::kLottery}) {
    SCOPED_TRACE(static_cast<int>(kind));
    ExpectCorrect(q, db_, FastConfig(), MakePolicy(kind));
  }
}

// A query that cannot be executed: index-only table whose bind column has
// no join predicate.
TEST_F(EddyQueriesTest, UnbindableQueryRejected) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}}), {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "y"}), IntRows({{1, 2}}),
               {IndexSpec("S.idx_y", {1})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");  // binds x, not y
  QuerySpec q = qb.Build().ValueOrDie();
  Simulation sim;
  auto planned = PlanQuery(q, db_.store, &sim, FastConfig());
  EXPECT_FALSE(planned.ok());
  EXPECT_EQ(planned.status().code(), StatusCode::kInvalidQuery);
}

// Index AM whose table also carries a selection: residual predicate applies.
TEST_F(EddyQueriesTest, IndexAmWithResidualSelection) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "v"}),
               IntRows({{1, 10}, {2, 20}, {3, 30}, {3, 5}}),
               {IndexSpec("S.idx", {0})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  qb.AddSelection("S.v", CompareOp::kGe, Value::Int64(10));
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 3u);
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

// Two join predicates between the same pair of tables.
TEST_F(EddyQueriesTest, ParallelEdgesBetweenTwoTables) {
  db_.AddTable("R", IntSchema({"a", "b"}),
               IntRows({{1, 4}, {2, 5}, {3, 6}}), {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "y"}),
               IntRows({{1, 4}, {2, 9}, {3, 6}}), {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S");
  qb.AddJoin("R.a", "S.x").AddJoin("R.b", "S.y");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 2u);  // rows 1 and 3 match on both
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

}  // namespace
}  // namespace stems
