// The SQL front end: lexer/parser golden diagnostics, binder semantics,
// prepared-query parameter binding, SQL-vs-QueryBuilder result-set
// equivalence for every registered policy (including projections, LIMIT,
// batching and the larger-than-memory spill preset), the
// ToString -> parse -> bind round-trip property over random catalogs, and
// a token-mutation fuzz loop (runs under the ASan+UBSan CI job like every
// other test).
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "query/validation.h"
#include "sql/binder.h"
#include "sql/lexer.h"
#include "sql/parser.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using sql::SqlParams;
using testing::IntSchema;

// ---------------------------------------------------------------------------
// Shared fixtures
// ---------------------------------------------------------------------------

/// Standard three-table join workload, loaded identically into any engine.
void FillEngine(Engine* engine) {
  std::vector<RowRef> r_rows, s_rows, t_rows;
  for (int64_t i = 0; i < 40; ++i) {
    r_rows.push_back(MakeRow({Value::Int64(i % 10), Value::Int64(i)}));
    s_rows.push_back(MakeRow({Value::Int64(i % 10), Value::Int64(i % 5)}));
  }
  for (int64_t i = 0; i < 20; ++i) {
    t_rows.push_back(MakeRow({Value::Int64(i % 5), Value::Int64(i)}));
  }
  ASSERT_TRUE(
      engine
          ->AddTable(TableDef{"R", IntSchema({"a", "b"}),
                              {{"R.scan", AccessMethodKind::kScan, {}}}},
                     std::move(r_rows))
          .ok());
  ASSERT_TRUE(
      engine
          ->AddTable(TableDef{"S", IntSchema({"x", "y"}),
                              {{"S.scan", AccessMethodKind::kScan, {}}}},
                     std::move(s_rows))
          .ok());
  ASSERT_TRUE(
      engine
          ->AddTable(TableDef{"T", IntSchema({"k", "v"}),
                              {{"T.scan", AccessMethodKind::kScan, {}}}},
                     std::move(t_rows))
          .ok());
}

constexpr char kChainSql[] =
    "SELECT * FROM R, S, T WHERE R.a = S.x AND S.y = T.k AND R.b >= 4";

/// The QueryBuilder equivalent of kChainSql.
QuerySpec ChainSpec(const Catalog& catalog) {
  QueryBuilder qb(catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.k");
  qb.AddSelection("R.b", CompareOp::kGe, Value::Int64(4));
  return qb.Build().ValueOrDie();
}

/// Row projections rendered to strings, in production order.
std::vector<std::string> RowStrings(QueryHandle handle) {
  std::vector<std::string> out;
  ResultCursor cursor = handle.cursor();
  while (auto row = cursor.NextRow()) {
    out.push_back(row->ToString());
  }
  return out;
}

std::vector<std::string> Sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

// ---------------------------------------------------------------------------
// Lexer & parser golden diagnostics (position-annotated)
// ---------------------------------------------------------------------------

TEST(SqlParserDiagnostics, GoldenMessages) {
  struct Case {
    const char* sql;
    const char* message;
  };
  const Case cases[] = {
      {"SELEC * FROM R", "expected SELECT at 1:1"},
      {"SELECT FROM R", "expected column reference or '*' at 1:8"},
      {"SELECT * R", "expected FROM at 1:10"},
      {"SELECT * FROM", "expected table name at 1:14"},
      {"SELECT *, R.a FROM R", "expected FROM at 1:9"},
      {"SELECT R. FROM R", "expected column name after '.' at 1:11"},
      {"SELECT * FROM R WHERE R.a > AND R.b = 1",
       "expected expression at 1:29"},
      {"SELECT * FROM R, S WHERE R.a = S.x AND",
       "expected expression at 1:39"},
      {"SELECT * FROM R WHERE R.a 5", "expected comparison operator at 1:27"},
      {"SELECT * FROM R WHERE R.a = - 'x'",
       "expected numeric literal after '-' at 1:31"},
      {"SELECT * FROM R LIMIT x",
       "expected a non-negative integer after LIMIT at 1:23"},
      {"SELECT * FROM R LIMIT 99999999999999999999",
       "integer literal out of range at 1:23"},
      {"SELECT * FROM R WHERE R.a > 5 garbage",
       "expected end of input at 1:31"},
      {"SELECT * FROM R WHERE R.a = 'abc",
       "unterminated string literal at 1:29"},
      {"SELECT * FROM R WHERE R.a @ 5", "unexpected character '@' at 1:27"},
      {"SELECT * FROM R WHERE R.a ! 5",
       "unexpected character '!' (did you mean '!='?) at 1:27"},
      {"SELECT * FROM R WHERE R.a = $ 1",
       "'$' must be followed by a parameter name at 1:29"},
      {"SELECT * FROM R WHERE 1 = 2",
       "comparison must reference at least one column at 1:25"},
      {"SELECT * FROM R WHERE ? = 1",
       "comparison must reference at least one column at 1:25"},
      {"SELECT * FROM R WHERE R.a = R.b",
       "comparison between two columns of one table instance ('R.a' and "
       "'R.b') is not supported at 1:27"},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.sql);
    auto parsed = sql::Parse(c.sql);
    Status status;
    if (parsed.ok()) {
      // Semantic diagnostics (the last two cases) come from the binder.
      Catalog catalog;
      ASSERT_TRUE(catalog
                      .AddTable({"R", IntSchema({"a", "b"}),
                                 {testing::ScanSpec("R.scan")}})
                      .ok());
      auto bound = sql::Binder::Bind(parsed.Value(), catalog);
      ASSERT_FALSE(bound.ok());
      status = bound.status();
    } else {
      status = parsed.status();
    }
    EXPECT_EQ(status.code(), StatusCode::kInvalidQuery);
    EXPECT_EQ(status.message(), c.message);
  }
}

TEST(SqlLexer, TokensAndPositions) {
  auto tokens = sql::Tokenize("SELECT r.a\nFROM R r").ValueOrDie();
  ASSERT_EQ(tokens.size(), 8u);  // SELECT r . a FROM R r EOF
  EXPECT_EQ(tokens[0].kind, sql::TokenKind::kSelect);
  EXPECT_EQ(tokens[1].text, "r");
  EXPECT_EQ(tokens[3].col, 10);
  EXPECT_EQ(tokens[4].kind, sql::TokenKind::kFrom);
  EXPECT_EQ(tokens[4].line, 2);
  EXPECT_EQ(tokens[4].col, 1);
  EXPECT_EQ(tokens.back().kind, sql::TokenKind::kEof);
}

TEST(SqlLexer, LiteralsAndOperators) {
  auto tokens =
      sql::Tokenize("= != <> < <= > >= 12 1.5 2e3 'it''s' ? $p ; *")
          .ValueOrDie();
  using K = sql::TokenKind;
  const K expected[] = {K::kEq, K::kNe, K::kNe, K::kLt, K::kLe, K::kGt,
                        K::kGe, K::kInt, K::kFloat, K::kFloat, K::kString,
                        K::kQuestion, K::kDollar, K::kSemicolon, K::kStar,
                        K::kEof};
  ASSERT_EQ(tokens.size(), std::size(expected));
  for (size_t i = 0; i < tokens.size(); ++i) {
    EXPECT_EQ(tokens[i].kind, expected[i]) << i;
  }
  EXPECT_EQ(tokens[10].text, "it's");
  EXPECT_EQ(tokens[12].text, "p");
}

// ---------------------------------------------------------------------------
// Binder semantics
// ---------------------------------------------------------------------------

class SqlBinderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(catalog_
                    .AddTable({"R", IntSchema({"a", "b"}),
                               {testing::ScanSpec("R.scan")}})
                    .ok());
    ASSERT_TRUE(catalog_
                    .AddTable({"S", IntSchema({"x", "b"}),
                               {testing::ScanSpec("S.scan")}})
                    .ok());
  }
  Result<sql::BoundStatement> Bind(const std::string& q) {
    return sql::ParseAndBind(q, catalog_);
  }
  Catalog catalog_;
};

TEST_F(SqlBinderTest, StarExpandsToAllColumns) {
  auto bound = Bind("SELECT * FROM R, S WHERE R.a = S.x").ValueOrDie();
  ASSERT_EQ(bound.spec.output_columns().size(), 4u);
  EXPECT_EQ(bound.spec.output_columns()[0].label, "R.a");
  EXPECT_EQ(bound.spec.output_columns()[3].label, "S.b");
  EXPECT_FALSE(bound.spec.has_explicit_projection());
}

TEST_F(SqlBinderTest, ExplicitProjectionAndAliases) {
  auto bound =
      Bind("SELECT s.b, r.a FROM R AS r, S s WHERE r.a = s.x LIMIT 7")
          .ValueOrDie();
  ASSERT_EQ(bound.spec.output_columns().size(), 2u);
  EXPECT_EQ(bound.spec.output_columns()[0].label, "s.b");
  EXPECT_EQ(bound.spec.output_columns()[0].ref,
            (ColumnRef{1, 1}));
  EXPECT_TRUE(bound.spec.has_explicit_projection());
  ASSERT_TRUE(bound.spec.limit().has_value());
  EXPECT_EQ(*bound.spec.limit(), 7u);
}

TEST_F(SqlBinderTest, UnqualifiedColumnsResolveWhenUnambiguous) {
  auto bound = Bind("SELECT a FROM R, S WHERE a = x").ValueOrDie();
  EXPECT_EQ(bound.spec.output_columns()[0].label, "R.a");
  EXPECT_EQ(bound.spec.predicates()[0].lhs(), (ColumnRef{0, 0}));
  EXPECT_EQ(bound.spec.predicates()[0].rhs(), (ColumnRef{1, 0}));

  auto ambiguous = Bind("SELECT b FROM R, S WHERE R.a = S.x");
  ASSERT_FALSE(ambiguous.ok());
  EXPECT_EQ(ambiguous.status().message(),
            "column 'b' is ambiguous (candidates: R.b, S.b) at 1:8");
}

TEST_F(SqlBinderTest, FlippedOperandsNormalize) {
  auto bound = Bind("SELECT * FROM R WHERE 5 < R.a").ValueOrDie();
  const Predicate& p = bound.spec.predicates()[0];
  EXPECT_FALSE(p.is_join());
  EXPECT_EQ(p.op(), CompareOp::kGt);
  EXPECT_EQ(p.constant(), Value::Int64(5));
}

TEST_F(SqlBinderTest, AllNameErrorsReportedTogether) {
  auto bound =
      Bind("SELECT R.zz FROM R, Nope WHERE R.qq = 1 AND R.a = Nope.c");
  ASSERT_FALSE(bound.ok());
  const std::string& msg = bound.status().message();
  EXPECT_NE(msg.find("table 'Nope'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 'qq' not found"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 'zz' not found"), std::string::npos) << msg;
}

TEST_F(SqlBinderTest, LiteralTypeMismatchRejected) {
  auto bound = Bind("SELECT * FROM R WHERE R.a = 'abc'");
  ASSERT_FALSE(bound.ok());
  EXPECT_NE(bound.status().message().find("INT64"), std::string::npos);
  EXPECT_NE(bound.status().message().find("STRING"), std::string::npos);
}

TEST_F(SqlBinderTest, NullLiteralAndNegativeNumbersBind) {
  auto bound =
      Bind("SELECT * FROM R WHERE R.a != NULL AND R.b >= -3").ValueOrDie();
  EXPECT_TRUE(bound.spec.predicates()[0].constant().is_null());
  EXPECT_EQ(bound.spec.predicates()[1].constant(), Value::Int64(-3));
}

TEST_F(SqlBinderTest, Int64MinRoundTrips) {
  QueryBuilder qb(catalog_);
  qb.AddTable("R");
  qb.AddSelection("R.a", CompareOp::kGe,
                  Value::Int64(std::numeric_limits<int64_t>::min()));
  QuerySpec spec = qb.Build().ValueOrDie();
  auto reparsed = sql::ParseAndBind(spec.ToString(), catalog_);
  ASSERT_TRUE(reparsed.ok()) << spec.ToString() << " -> "
                             << reparsed.status().ToString();
  EXPECT_EQ(reparsed.Value().spec.predicates()[0].constant(),
            Value::Int64(std::numeric_limits<int64_t>::min()));
}

TEST_F(SqlBinderTest, PreparedTemplateToStringKeepsPlaceholders) {
  // A template must never print its NULL stand-ins: the emitted text
  // re-*prepares* to the same parameterized statement.
  auto bound =
      Bind("SELECT * FROM R WHERE R.a >= $min AND R.b < $max").ValueOrDie();
  const std::string emitted = bound.spec.ToString();
  EXPECT_EQ(emitted,
            "SELECT * FROM R WHERE R.a >= $min AND R.b < $max");
  auto reprepared = sql::ParseAndBind(emitted, catalog_).ValueOrDie();
  ASSERT_EQ(reprepared.params.size(), 2u);
  EXPECT_EQ(reprepared.params[0].name, "min");
  EXPECT_EQ(reprepared.params[1].name, "max");
  // Once bound, the executable spec prints the real constants. Positional
  // '?' placeholders print as plain '?' and re-parse the same way.
  QuerySpec executable = bound.spec;
  ASSERT_TRUE(sql::Binder::BindParameters(&executable, bound.params,
                                          SqlParams()
                                              .Set("min", Value::Int64(2))
                                              .Set("max", Value::Int64(9)))
                  .ok());
  EXPECT_EQ(executable.ToString(),
            "SELECT * FROM R WHERE R.a >= 2 AND R.b < 9");
  auto positional =
      Bind("SELECT * FROM R WHERE R.b < ?").ValueOrDie();
  EXPECT_EQ(positional.spec.ToString(),
            "SELECT * FROM R WHERE R.b < ?");
}

// --- validation shape errors via the SQL path (satellite: validation.cc) ---

TEST_F(SqlBinderTest, EmptyFromListIsFriendly) {
  // Unreachable through the parser (FROM is mandatory); hand-built ASTs
  // and direct ValidateQueryShape callers get the friendly path.
  sql::SelectStatement stmt;
  stmt.select_star = true;
  auto bound = sql::Binder::Bind(stmt, catalog_);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidQuery);
  EXPECT_EQ(bound.status().message(), "query has no tables (empty FROM list)");

  QuerySpec empty_spec;
  Status shape = ValidateQueryShape(empty_spec);
  EXPECT_EQ(shape.code(), StatusCode::kInvalidQuery);
  EXPECT_EQ(shape.message(), "query has no tables (empty FROM list)");
}

TEST_F(SqlBinderTest, DuplicateAliasIsFriendly) {
  auto bound = Bind("SELECT * FROM R x, S x");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidQuery);
  EXPECT_EQ(bound.status().message(), "duplicate alias 'x' in FROM list");
}

TEST_F(SqlBinderTest, CrossProductOnlyQueryIsFriendly) {
  auto bound = Bind("SELECT * FROM R, S");
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidQuery);
  EXPECT_NE(bound.status().message().find("not join-connected"),
            std::string::npos);
  // Partially connected is still rejected: S joins nothing.
  Catalog three = catalog_;
  ASSERT_TRUE(
      three.AddTable({"U", IntSchema({"z"}), {testing::ScanSpec("U.s")}})
          .ok());
  auto partial =
      sql::ParseAndBind("SELECT * FROM R, S, U WHERE R.a = S.x", three);
  ASSERT_FALSE(partial.ok());
  EXPECT_NE(partial.status().message().find("'U'"), std::string::npos);
}

TEST_F(SqlBinderTest, TooManySlotsIsFriendly) {
  std::string q = "SELECT * FROM R t0";
  for (int i = 1; i <= 64; ++i) q += ", R t" + std::to_string(i);
  auto bound = Bind(q);
  ASSERT_FALSE(bound.ok());
  EXPECT_EQ(bound.status().code(), StatusCode::kInvalidQuery);
  EXPECT_EQ(bound.status().message(),
            "query has 65 table instances; at most 64 are supported");
}

// ---------------------------------------------------------------------------
// Prepared queries & parameters
// ---------------------------------------------------------------------------

class SqlEngineTest : public ::testing::Test {
 protected:
  void SetUp() override { FillEngine(&engine_); }
  Engine engine_;
};

TEST_F(SqlEngineTest, PreparedPositionalParamsRebind) {
  auto prepared =
      engine_.Prepare("SELECT * FROM R WHERE R.b >= ? AND R.b < ?")
          .ValueOrDie();
  ASSERT_EQ(prepared.params().size(), 2u);
  auto narrow = prepared.Bind({Value::Int64(10), Value::Int64(12)})
                    .Submit()
                    .ValueOrDie();
  EXPECT_EQ(narrow.cursor().Drain().size(), 2u);  // b = 10, 11
  // Same prepared statement, different values: no re-parse, new results.
  auto wide = prepared.Bind({Value::Int64(0), Value::Int64(40)})
                  .Submit()
                  .ValueOrDie();
  EXPECT_EQ(wide.cursor().Drain().size(), 40u);
}

TEST_F(SqlEngineTest, PreparedNamedParams) {
  auto prepared = engine_
                      .Prepare("SELECT R.b FROM R WHERE R.a = $a "
                               "AND R.b >= $min")
                      .ValueOrDie();
  auto handle = prepared
                    .Bind(SqlParams()
                              .Set("a", Value::Int64(3))
                              .Set("min", Value::Int64(0)))
                    .Submit()
                    .ValueOrDie();
  auto rows = RowStrings(handle);
  EXPECT_EQ(rows.size(), 4u);  // b = 3, 13, 23, 33
}

TEST_F(SqlEngineTest, ParameterBindErrors) {
  auto prepared =
      engine_.Prepare("SELECT * FROM R WHERE R.b >= ?").ValueOrDie();
  // Arity.
  auto missing = prepared.Bind({}).Submit();
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().message(),
            "query expects 1 positional parameter(s); 0 bound");
  // Type.
  auto mistyped = prepared.Bind({Value::String("hi")}).Submit();
  ASSERT_FALSE(mistyped.ok());
  EXPECT_NE(mistyped.status().message().find("INT64"), std::string::npos);
  // Named typo.
  auto named =
      engine_.Prepare("SELECT * FROM R WHERE R.b >= $min").ValueOrDie();
  auto typo = named.Bind(SqlParams().Set("mni", Value::Int64(1))).Submit();
  ASSERT_FALSE(typo.ok());
  EXPECT_EQ(typo.status().message(),
            "parameter '$mni' does not appear in the query");
  // One-shot Query refuses placeholders.
  auto oneshot = engine_.Query("SELECT * FROM R WHERE R.b >= ?");
  ASSERT_FALSE(oneshot.ok());
  EXPECT_NE(oneshot.status().message().find("Engine::Prepare"),
            std::string::npos);
}

TEST_F(SqlEngineTest, RowViewSchemaAndLookup) {
  auto handle =
      engine_.Query("SELECT R.b, S.y FROM R, S WHERE R.a = S.x LIMIT 1")
          .ValueOrDie();
  ResultCursor cursor = handle.cursor();
  EXPECT_EQ(cursor.schema().num_columns(), 2u);
  EXPECT_EQ(cursor.schema().column(0).name, "R.b");
  auto row = cursor.NextRow();
  ASSERT_TRUE(row.has_value());
  EXPECT_EQ(row->num_columns(), 2u);
  EXPECT_EQ(row->name(1), "S.y");
  EXPECT_EQ(row->Get("R.b").type(), ValueType::kInt64);
  EXPECT_EQ(row->Find("S.y"), &row->value(1));
  EXPECT_EQ(row->Find("R.nope"), nullptr);
  EXPECT_FALSE(cursor.NextRow().has_value());  // LIMIT 1
}

TEST_F(SqlEngineTest, LimitSemantics) {
  // LIMIT larger than the result set: everything arrives.
  auto all = engine_.Query("SELECT * FROM R WHERE R.b < 5 LIMIT 100")
                 .ValueOrDie();
  EXPECT_EQ(all.cursor().Drain().size(), 5u);
  // LIMIT 0: nothing, and the query completes immediately.
  auto none = engine_.Query("SELECT * FROM R LIMIT 0").ValueOrDie();
  EXPECT_EQ(none.cursor().Drain().size(), 0u);
  EXPECT_TRUE(none.done());
  EXPECT_FALSE(none.Stats().cancelled);
  // An exact LIMIT halts the dataflow early: far fewer tuples routed than
  // the full run (the scans are halted, not drained to completion).
  auto limited = engine_.Query(std::string(kChainSql) + " LIMIT 3")
                     .ValueOrDie();
  EXPECT_EQ(limited.cursor().Drain().size(), 3u);
  EXPECT_TRUE(limited.eddy()->limit_reached());
  EXPECT_FALSE(limited.Stats().cancelled);
  auto full = engine_.Query(kChainSql).ValueOrDie();
  const size_t full_count = full.cursor().Drain().size();
  EXPECT_GT(full_count, 100u);
  EXPECT_LT(limited.Stats().tuples_routed, full.Stats().tuples_routed);
}

// ---------------------------------------------------------------------------
// Acceptance: SQL == QueryBuilder for every policy / batch / spill preset
// ---------------------------------------------------------------------------

TEST(SqlEquivalence, MatchesBuilderForEveryPolicyAndBatchSize) {
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    for (size_t batch : {size_t{1}, size_t{64}}) {
      SCOPED_TRACE(policy + " batch=" + std::to_string(batch));
      RunOptions options;
      options.policy = policy;
      options.batch_size = batch;

      Engine sql_engine;
      FillEngine(&sql_engine);
      auto via_sql = sql_engine.Query(kChainSql, options).ValueOrDie();

      Engine qb_engine;
      FillEngine(&qb_engine);
      auto via_builder =
          qb_engine.Submit(ChainSpec(qb_engine.catalog()), options)
              .ValueOrDie();

      const auto sql_rows = Sorted(RowStrings(via_sql));
      const auto builder_rows = Sorted(RowStrings(via_builder));
      ASSERT_GT(sql_rows.size(), 0u);
      EXPECT_EQ(sql_rows, builder_rows);
      EXPECT_EQ(via_sql.Stats().constraint_violations, 0u);
    }
  }
}

TEST(SqlEquivalence, ProjectionAndLimitMatchBuilder) {
  const std::string sql = std::string("SELECT T.v, R.b FROM R, S, T ") +
                          "WHERE R.a = S.x AND S.y = T.k AND R.b >= 4 " +
                          "LIMIT 25";
  for (size_t batch : {size_t{1}, size_t{64}}) {
    SCOPED_TRACE(batch);
    RunOptions options;
    options.batch_size = batch;

    Engine sql_engine;
    FillEngine(&sql_engine);
    auto via_sql = sql_engine.Query(sql, options).ValueOrDie();

    Engine qb_engine;
    FillEngine(&qb_engine);
    QueryBuilder qb(qb_engine.catalog());
    qb.AddTable("R").AddTable("S").AddTable("T");
    qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.k");
    qb.AddSelection("R.b", CompareOp::kGe, Value::Int64(4));
    qb.Select({"T.v", "R.b"}).Limit(25);
    auto via_builder =
        qb_engine.Submit(qb.Build().ValueOrDie(), options).ValueOrDie();

    // Identical engines + identical specs => identical virtual-time
    // interleaving, so even the LIMIT prefix matches in order.
    const auto sql_rows = RowStrings(via_sql);
    EXPECT_EQ(sql_rows.size(), 25u);
    EXPECT_EQ(sql_rows, RowStrings(via_builder));
  }
}

TEST(SqlEquivalence, LargerThanMemorySpillPresetMatchesBuilder) {
  RunOptions spill = RunOptions::LargerThanMemory(/*memory_budget=*/32);

  Engine sql_engine;
  FillEngine(&sql_engine);
  auto via_sql = sql_engine.Query(kChainSql, spill).ValueOrDie();

  Engine qb_engine;
  FillEngine(&qb_engine);
  auto via_builder =
      qb_engine.Submit(ChainSpec(qb_engine.catalog()), spill).ValueOrDie();

  EXPECT_EQ(Sorted(RowStrings(via_sql)), Sorted(RowStrings(via_builder)));
  EXPECT_GT(via_sql.Stats().spill_ios, 0u) << "budget did not force spill";
  EXPECT_EQ(via_sql.Stats().constraint_violations, 0u);
}

TEST(SqlEquivalence, PreparedMatchesOneShot) {
  Engine prep_engine;
  FillEngine(&prep_engine);
  auto prepared = prep_engine
                      .Prepare("SELECT * FROM R, S, T WHERE R.a = S.x AND "
                               "S.y = T.k AND R.b >= $min")
                      .ValueOrDie();
  auto via_prepared =
      prepared.Bind(SqlParams().Set("min", Value::Int64(4)))
          .Submit()
          .ValueOrDie();

  Engine query_engine;
  FillEngine(&query_engine);
  auto via_query = query_engine.Query(kChainSql).ValueOrDie();

  EXPECT_EQ(Sorted(RowStrings(via_prepared)),
            Sorted(RowStrings(via_query)));
}

// ---------------------------------------------------------------------------
// Round-trip property: builder spec -> SQL -> parse/bind -> same spec
// ---------------------------------------------------------------------------

void ExpectSpecsEquivalent(const QuerySpec& a, const QuerySpec& b) {
  ASSERT_EQ(a.num_slots(), b.num_slots());
  for (size_t i = 0; i < a.num_slots(); ++i) {
    EXPECT_EQ(a.slots()[i].table_name, b.slots()[i].table_name);
    EXPECT_EQ(a.slots()[i].alias, b.slots()[i].alias);
    EXPECT_EQ(a.slots()[i].def, b.slots()[i].def);  // same catalog
  }
  ASSERT_EQ(a.num_predicates(), b.num_predicates());
  for (size_t i = 0; i < a.num_predicates(); ++i) {
    const Predicate& pa = a.predicates()[i];
    const Predicate& pb = b.predicates()[i];
    EXPECT_EQ(pa.id(), pb.id());
    ASSERT_EQ(pa.is_join(), pb.is_join());
    EXPECT_EQ(pa.lhs(), pb.lhs());
    EXPECT_EQ(pa.op(), pb.op());
    if (pa.is_join()) {
      EXPECT_EQ(pa.rhs(), pb.rhs());
    } else {
      EXPECT_EQ(pa.constant(), pb.constant()) << pa.constant().ToString();
    }
  }
  EXPECT_EQ(a.has_explicit_projection(), b.has_explicit_projection());
  ASSERT_EQ(a.output_columns().size(), b.output_columns().size());
  for (size_t i = 0; i < a.output_columns().size(); ++i) {
    EXPECT_EQ(a.output_columns()[i].label, b.output_columns()[i].label);
    EXPECT_EQ(a.output_columns()[i].ref, b.output_columns()[i].ref);
  }
  EXPECT_EQ(a.limit(), b.limit());
}

TEST(SqlRoundTrip, PropertyOverRandomCatalogs) {
  Rng rng(20260729);
  for (int round = 0; round < 200; ++round) {
    SCOPED_TRACE(round);
    // Random catalog: 2-4 tables, 1-4 columns each, mixed types.
    Catalog catalog;
    const int num_tables = static_cast<int>(rng.NextInt(2, 4));
    std::vector<std::vector<ValueType>> table_types;
    for (int t = 0; t < num_tables; ++t) {
      const int num_cols = static_cast<int>(rng.NextInt(1, 4));
      std::vector<ColumnDef> cols;
      std::vector<ValueType> types;
      for (int c = 0; c < num_cols; ++c) {
        const uint64_t pick = rng.NextBounded(4);
        // Column 0 is always numeric so any two tables have a
        // type-compatible join pair (the binder rejects INT64-vs-STRING
        // joins, so the generator must not emit them).
        const ValueType type = c == 0       ? ValueType::kInt64
                               : pick == 0  ? ValueType::kDouble
                               : pick == 1  ? ValueType::kString
                                            : ValueType::kInt64;
        cols.push_back({"c" + std::to_string(c), type});
        types.push_back(type);
      }
      ASSERT_TRUE(catalog
                      .AddTable({"t" + std::to_string(t), Schema(cols),
                                 {testing::ScanSpec("s")}})
                      .ok());
      table_types.push_back(std::move(types));
    }

    // Random spec: joins keep every slot connected (the SQL path rejects
    // cross products), selections and projections are arbitrary.
    QueryBuilder qb(catalog);
    const int num_slots = static_cast<int>(rng.NextInt(1, 4));
    std::vector<int> slot_table(num_slots);
    std::vector<std::string> slot_alias(num_slots);
    for (int s = 0; s < num_slots; ++s) {
      slot_table[s] = static_cast<int>(rng.NextBounded(num_tables));
      slot_alias[s] = "q" + std::to_string(s);
      qb.AddTable("t" + std::to_string(slot_table[s]), slot_alias[s]);
    }
    auto random_col = [&](int slot) {
      const auto& types = table_types[slot_table[slot]];
      const int col = static_cast<int>(rng.NextBounded(types.size()));
      return std::pair<std::string, ValueType>(
          slot_alias[slot] + ".c" + std::to_string(col), types[col]);
    };
    const CompareOp ops[] = {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                             CompareOp::kLe, CompareOp::kGt, CompareOp::kGe};
    auto numeric = [](ValueType t) {
      return t == ValueType::kInt64 || t == ValueType::kDouble;
    };
    for (int s = 1; s < num_slots; ++s) {
      const int peer = static_cast<int>(rng.NextBounded(s));
      // Retry until the two join columns are type-compatible; c0 is
      // always numeric, so the fallback pair (c0, c0) always works.
      for (int attempt = 0; attempt < 10; ++attempt) {
        auto [lhs, lhs_type] = random_col(s);
        auto [rhs, rhs_type] = random_col(peer);
        const bool compatible = numeric(lhs_type) == numeric(rhs_type);
        if (!compatible && attempt < 9) continue;
        if (!compatible) {
          lhs = slot_alias[s] + ".c0";
          rhs = slot_alias[peer] + ".c0";
        }
        qb.AddJoin(lhs, rhs, ops[rng.NextBounded(6)]);
        break;
      }
    }
    const int num_selections = static_cast<int>(rng.NextInt(0, 3));
    for (int i = 0; i < num_selections; ++i) {
      auto [name, type] = random_col(static_cast<int>(
          rng.NextBounded(num_slots)));
      Value constant;
      switch (type) {
        case ValueType::kDouble:
          constant = Value::Double((rng.NextDouble() - 0.5) * 1e6);
          break;
        case ValueType::kString:
          // Includes a quote to exercise '' escaping.
          constant = Value::String("v'" + std::to_string(rng.NextBounded(99)));
          break;
        default:
          constant = Value::Int64(rng.NextInt(-1000, 1000));
          break;
      }
      qb.AddSelection(name, ops[rng.NextBounded(6)], std::move(constant));
    }
    if (rng.NextBounded(2) == 0) {
      std::vector<std::string> projection;
      const int k = static_cast<int>(rng.NextInt(1, 3));
      for (int i = 0; i < k; ++i) {
        projection.push_back(
            random_col(static_cast<int>(rng.NextBounded(num_slots))).first);
      }
      qb.Select(projection);
    }
    if (rng.NextBounded(3) == 0) qb.Limit(rng.NextBounded(1000));

    auto built = qb.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    const QuerySpec& spec = built.Value();

    const std::string emitted = spec.ToString();
    auto reparsed = sql::ParseAndBind(emitted, catalog);
    ASSERT_TRUE(reparsed.ok())
        << emitted << " -> " << reparsed.status().ToString();
    ExpectSpecsEquivalent(spec, reparsed.Value().spec);
    // And ToString is a fixpoint: emitting the re-bound spec matches.
    EXPECT_EQ(reparsed.Value().spec.ToString(), emitted);
  }
}

// ---------------------------------------------------------------------------
// Token-mutation fuzz: the front end never crashes, never asserts
// ---------------------------------------------------------------------------

TEST(SqlFuzz, TokenMutationNeverCrashes) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable({"R", IntSchema({"a", "b"}),
                             {testing::ScanSpec("R.scan")}})
                  .ok());
  ASSERT_TRUE(catalog
                  .AddTable({"S", IntSchema({"x"}),
                             {testing::ScanSpec("S.scan")}})
                  .ok());

  const std::vector<std::vector<std::string>> seeds = {
      {"SELECT", "*", "FROM", "R", ",", "S", "WHERE", "R", ".", "a", "=",
       "S", ".", "x", "LIMIT", "10"},
      {"SELECT", "R", ".", "a", ",", "R", ".", "b", "FROM", "R", "WHERE",
       "R", ".", "b", ">=", "-", "5", "AND", "R", ".", "a", "!=", "NULL"},
      {"SELECT", "a", "FROM", "R", "WHERE", "a", "<", "$p", ";"},
      {"SELECT", "*", "FROM", "R", "r1", ",", "R", "r2", "WHERE", "r1", ".",
       "a", "=", "r2", ".", "b"},
      {"SELECT", "*", "FROM", "R", "WHERE", "R", ".", "a", "=", "1.5", "AND",
       "R", ".", "b", "=", "'it''s'"},
  };
  const std::vector<std::string> vocabulary = {
      "SELECT", "FROM",   "WHERE", "AND", "AS",    "LIMIT",  "NULL",
      ",",      ".",      "*",     ";",   "=",     "!=",     "<>",
      "<",      "<=",     ">",     ">=",  "-",     "?",      "$p",
      "'str'",  "'o''k'", "123",   "1.5", "2e9",   "R",      "S",
      "a",      "b",      "x",     "zz",  "(",     ")",      "@",
      "!",      "$",      "'open", "99999999999999999999"};

  Rng rng(42);
  int parsed_ok = 0;
  for (int iter = 0; iter < 3000; ++iter) {
    std::vector<std::string> tokens = seeds[rng.NextBounded(seeds.size())];
    const int mutations = static_cast<int>(rng.NextInt(1, 4));
    for (int m = 0; m < mutations && !tokens.empty(); ++m) {
      const size_t pos = rng.NextBounded(tokens.size());
      switch (rng.NextBounded(4)) {
        case 0:  // drop
          tokens.erase(tokens.begin() + static_cast<ptrdiff_t>(pos));
          break;
        case 1:  // duplicate
          tokens.insert(tokens.begin() + static_cast<ptrdiff_t>(pos),
                        tokens[pos]);
          break;
        case 2: {  // swap with neighbour
          const size_t other = (pos + 1) % tokens.size();
          std::swap(tokens[pos], tokens[other]);
          break;
        }
        default:  // replace from vocabulary
          tokens[pos] = vocabulary[rng.NextBounded(vocabulary.size())];
          break;
      }
    }
    std::string sql;
    for (const auto& t : tokens) {
      if (!sql.empty()) sql += " ";
      sql += t;
    }
    auto bound = sql::ParseAndBind(sql, catalog);
    if (bound.ok()) {
      ++parsed_ok;
      // Whatever bound must also print and re-bind (emitted SQL is valid).
      auto again = sql::ParseAndBind(bound.Value().spec.ToString(), catalog);
      EXPECT_TRUE(again.ok()) << sql << " -> "
                              << bound.Value().spec.ToString();
    } else {
      EXPECT_FALSE(bound.status().message().empty()) << sql;
    }
  }
  // Sanity: the mutator is not so destructive that nothing ever parses.
  EXPECT_GT(parsed_ok, 0);
}

// ---------------------------------------------------------------------------
// ToString for the builder path (satellite: SQL-emitting ToString)
// ---------------------------------------------------------------------------

TEST(QuerySpecToString, EmitsDialect) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable({"R", IntSchema({"a", "b"}),
                             {testing::ScanSpec("R.scan")}})
                  .ok());
  ASSERT_TRUE(
      catalog
          .AddTable({"S",
                     Schema({{"x", ValueType::kInt64},
                             {"name", ValueType::kString}}),
                     {testing::ScanSpec("S.scan")}})
          .ok());
  QueryBuilder qb(catalog);
  qb.AddTable("R").AddTable("S", "s2");
  qb.AddJoin("R.a", "s2.x");
  qb.AddSelection("s2.name", CompareOp::kEq, Value::String("it's"));
  qb.AddSelection("R.b", CompareOp::kLt, Value::Int64(-7));
  qb.Select({"R.b", "s2.name"}).Limit(9);
  QuerySpec spec = qb.Build().ValueOrDie();
  EXPECT_EQ(spec.ToString(),
            "SELECT R.b, s2.name FROM R, S s2 WHERE R.a = s2.x "
            "AND s2.name = 'it''s' AND R.b < -7 LIMIT 9");
  // Doubles always re-lex as floats (never as ints).
  QueryBuilder qb2(catalog);
  qb2.AddTable("R");
  qb2.AddSelection("R.a", CompareOp::kGe, Value::Double(5.0));
  EXPECT_EQ(qb2.Build().ValueOrDie().ToString(),
            "SELECT * FROM R WHERE R.a >= 5.0");
}

TEST(QuerySpecToString, BuilderMultiErrorCollection) {
  Catalog catalog;
  ASSERT_TRUE(catalog
                  .AddTable({"R", IntSchema({"a", "b"}),
                             {testing::ScanSpec("R.scan")}})
                  .ok());
  QueryBuilder qb(catalog);
  qb.AddTable("R").AddTable("Missing").AddTable("R");  // dup alias + unknown
  qb.AddJoin("R.a", "Missing.x");  // swallowed: table already reported
  qb.AddSelection("R.zz", CompareOp::kEq, Value::Int64(1));
  qb.Select({"R.qq"});
  auto built = qb.Build();
  ASSERT_FALSE(built.ok());
  const std::string& msg = built.status().message();
  EXPECT_NE(msg.find("table 'Missing'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("duplicate alias 'R'"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 'zz' not found"), std::string::npos) << msg;
  EXPECT_NE(msg.find("column 'qq' not found"), std::string::npos) << msg;
  // Errors are numbered so the user can fix them all in one pass.
  EXPECT_NE(msg.find("[1]"), std::string::npos) << msg;
}

}  // namespace
}  // namespace stems
