// The network front-end (src/server/): end-to-end over a real loopback
// socket. Covers result equivalence against in-process Engine::Query runs
// (single client and 4 clients x 2 tenants), positioned SQL error frames,
// typed not-found errors, protocol violations (out-of-order frames, raw
// garbage), the typed end-of-stream for queries that fail mid-flight
// (injected stuck module), a session killed mid-Fetch over pooled SteMs,
// and graceful shutdown draining then cancelling.
#include <gtest/gtest.h>
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "server/client.h"
#include "server/server.h"
#include "tests/test_util.h"

namespace stems::server {
namespace {

using sql::SqlParams;
using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;

/// The quickstart workload plus a bulk join pair, loaded identically into
/// any engine so wire results can be checked against in-process runs.
void FillEngine(Engine* engine) {
  ASSERT_TRUE(engine
                  ->AddTable(TableDef{"users", IntSchema({"id", "age"}),
                                      {ScanSpec("users.scan")}},
                             IntRows({{1, 34}, {2, 57}, {3, 25}, {4, 41}}))
                  .ok());
  ASSERT_TRUE(engine
                  ->AddTable(TableDef{"orders",
                                      IntSchema({"user_id", "item_id"}),
                                      {ScanSpec("orders.scan")}},
                             IntRows({{1, 10}, {1, 11}, {2, 10}, {3, 12},
                                      {4, 11}, {4, 12}}))
                  .ok());
  std::vector<std::vector<int64_t>> r_rows, s_rows;
  for (int64_t i = 0; i < 60; ++i) {
    r_rows.push_back({i % 12, i});
    s_rows.push_back({i % 12, i % 6});
  }
  ASSERT_TRUE(engine
                  ->AddTable(TableDef{"R", IntSchema({"a", "b"}),
                                      {ScanSpec("R.scan")}},
                             IntRows(r_rows))
                  .ok());
  ASSERT_TRUE(engine
                  ->AddTable(TableDef{"S", IntSchema({"x", "y"}),
                                      {ScanSpec("S.scan")}},
                             IntRows(s_rows))
                  .ok());
}

std::string RenderRow(const std::vector<Value>& row) {
  std::string out;
  for (const Value& v : row) {
    if (!out.empty()) out += "|";
    out += v.ToString();
  }
  return out;
}

std::vector<std::string> Sorted(std::vector<std::string> v) {
  std::sort(v.begin(), v.end());
  return v;
}

std::vector<std::string> WireRows(
    const std::vector<std::vector<Value>>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const auto& row : rows) out.push_back(RenderRow(row));
  return out;
}

/// The in-process answer for (sql, params), computed on a private engine
/// with the same data — the server's shared engine is never touched from
/// the test thread while the server runs.
std::vector<std::string> InProcessRows(const std::string& sql,
                                       const SqlParams& params = {}) {
  Engine engine;
  FillEngine(&engine);
  auto prepared = engine.Prepare(sql);
  EXPECT_TRUE(prepared.ok()) << prepared.status().message();
  auto handle = prepared.Value().Bind(params).Submit();
  EXPECT_TRUE(handle.ok()) << handle.status().message();
  std::vector<std::string> out;
  ResultCursor cursor = handle.Value().cursor();
  while (auto row = cursor.NextRow()) {
    std::string rendered;
    for (size_t i = 0; i < row->num_columns(); ++i) {
      if (!rendered.empty()) rendered += "|";
      rendered += row->value(i).ToString();
    }
    out.push_back(std::move(rendered));
  }
  EXPECT_TRUE(cursor.status().ok()) << cursor.status().message();
  return out;
}

constexpr char kJoinSql[] =
    "SELECT u.id, o.item_id FROM users u, orders o "
    "WHERE u.id = o.user_id AND u.age >= $min";
constexpr char kBulkSql[] =
    "SELECT R.b, S.y FROM R, S WHERE R.a = S.x AND R.b >= $min";

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { FillEngine(&engine_); }

  /// Starts the server over engine_ with `options` (port stays ephemeral).
  void StartServer(ServerOptions options = {}) {
    server_ = std::make_unique<Server>(&engine_, std::move(options));
    ASSERT_TRUE(server_->Start().ok());
    ASSERT_NE(server_->port(), 0);
  }

  Engine engine_;
  std::unique_ptr<Server> server_;
};

TEST_F(ServerTest, SingleQueryMatchesInProcess) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  auto rows = client.RunQuery(kJoinSql,
                              SqlParams().Set("min", Value::Int64(30)));
  ASSERT_TRUE(rows.ok()) << rows.status().message();
  EXPECT_EQ(
      Sorted(WireRows(rows.Value())),
      Sorted(InProcessRows(kJoinSql,
                           SqlParams().Set("min", Value::Int64(30)))));
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerTest, PreparedStatementReusedAcrossPortals) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  auto prepared = client.Prepare(kJoinSql);
  ASSERT_TRUE(prepared.ok()) << prepared.status().message();
  EXPECT_EQ(prepared.Value().num_params, 1u);
  ASSERT_EQ(prepared.Value().columns.size(), 2u);
  EXPECT_EQ(prepared.Value().columns[0].first, "u.id");
  EXPECT_EQ(prepared.Value().columns[1].first, "o.item_id");
  for (const int64_t min : {25, 40, 100}) {
    auto portal = client.Bind(prepared.Value().stmt_id,
                              SqlParams().Set("min", Value::Int64(min)));
    ASSERT_TRUE(portal.ok());
    auto submit = client.Submit(portal.Value());
    ASSERT_TRUE(submit.ok());
    std::vector<std::vector<Value>> rows;
    while (true) {
      auto fetch = client.Fetch(submit.Value().query_id);
      ASSERT_TRUE(fetch.ok());
      for (auto& row : fetch.Value().rows) rows.push_back(std::move(row));
      if (fetch.Value().done) break;
    }
    EXPECT_EQ(Sorted(WireRows(rows)),
              Sorted(InProcessRows(
                  kJoinSql, SqlParams().Set("min", Value::Int64(min)))))
        << "min=" << min;
  }
  EXPECT_TRUE(client.Close().ok());
}

/// The ISSUE acceptance bar: 4 concurrent clients across 2 tenants, mixed
/// prepared statements, every result set identical to an in-process run.
TEST_F(ServerTest, FourClientsTwoTenantsMatchInProcess) {
  ServerOptions options;
  options.run_options.share_stems = true;
  StartServer(std::move(options));

  struct Workload {
    std::string tenant;
    std::string sql;
    int64_t min;
  };
  const std::vector<Workload> workloads = {
      {"tenant_a", kJoinSql, 30},
      {"tenant_a", kBulkSql, 20},
      {"tenant_b", kJoinSql, 40},
      {"tenant_b", kBulkSql, 45},
  };
  std::vector<std::string> expected[4];
  for (size_t i = 0; i < workloads.size(); ++i) {
    expected[i] = Sorted(InProcessRows(
        workloads[i].sql,
        SqlParams().Set("min", Value::Int64(workloads[i].min))));
    ASSERT_FALSE(expected[i].empty());
  }

  std::vector<std::string> got[4];
  Status statuses[4];
  std::vector<std::thread> threads;
  for (size_t i = 0; i < workloads.size(); ++i) {
    threads.emplace_back([&, i] {
      Client client;
      statuses[i] = client.Connect("127.0.0.1", server_->port(),
                                   workloads[i].tenant);
      if (!statuses[i].ok()) return;
      // Each client runs its statement three times over one prepared
      // handle, interleaving with the other sessions on the shared clock.
      for (int repeat = 0; repeat < 3 && statuses[i].ok(); ++repeat) {
        auto rows = client.RunQuery(
            workloads[i].sql,
            SqlParams().Set("min", Value::Int64(workloads[i].min)));
        if (!rows.ok()) {
          statuses[i] = rows.status();
          return;
        }
        got[i] = Sorted(WireRows(rows.Value()));
      }
      statuses[i] = client.Close();
    });
  }
  for (auto& t : threads) t.join();
  for (size_t i = 0; i < workloads.size(); ++i) {
    ASSERT_TRUE(statuses[i].ok())
        << "client " << i << ": " << statuses[i].message();
    EXPECT_EQ(got[i], expected[i]) << "client " << i;
  }

  // Per-tenant rollups saw every query (3 repeats x 2 clients per tenant).
  for (const char* tenant : {"tenant_a", "tenant_b"}) {
    const TenantRollup rollup = server_->TenantStats(tenant);
    EXPECT_EQ(rollup.queries_submitted, 6u) << tenant;
    EXPECT_EQ(rollup.queries_completed, 6u) << tenant;
    EXPECT_EQ(rollup.queries_failed, 0u) << tenant;
  }
}

TEST_F(ServerTest, SqlErrorsCarryPosition) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  auto prepared = client.Prepare("SELECT * FROM R WHERE R.a > AND R.b = 1");
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(client.last_error().code, StatusCode::kInvalidQuery);
  EXPECT_EQ(client.last_error().sql_line, 1u);
  EXPECT_EQ(client.last_error().sql_column, 29u);
  EXPECT_NE(client.last_error().message.find("expected expression"),
            std::string::npos);
  // A failed Prepare is not fatal: the session keeps serving.
  EXPECT_TRUE(client.Prepare("SELECT R.a FROM R").ok());
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerTest, UnknownIdsAreTypedNotFound) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  EXPECT_FALSE(client.Bind(999).ok());
  EXPECT_EQ(client.last_error().code, StatusCode::kNotFound);
  EXPECT_FALSE(client.Submit(999).ok());
  EXPECT_EQ(client.last_error().code, StatusCode::kNotFound);
  EXPECT_FALSE(client.Fetch(999).ok());
  EXPECT_EQ(client.last_error().code, StatusCode::kNotFound);
  EXPECT_EQ(client.Cancel(999).code(), StatusCode::kNotFound);
  // None of those were protocol violations; the session still works.
  auto rows = client.RunQuery("SELECT u.id FROM users u");
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.Value().size(), 4u);
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerTest, UnknownTenantRejected) {
  ServerOptions options;
  TenantConfig tenant;
  tenant.name = "tenant_a";
  tenant.token = "secret";
  options.tenants = {tenant};
  StartServer(std::move(options));

  Client stranger;
  EXPECT_FALSE(
      stranger.Connect("127.0.0.1", server_->port(), "tenant_b").ok());
  Client wrong_token;
  EXPECT_FALSE(wrong_token
                   .Connect("127.0.0.1", server_->port(), "tenant_a", "nope")
                   .ok());
  Client ok;
  EXPECT_TRUE(
      ok.Connect("127.0.0.1", server_->port(), "tenant_a", "secret").ok());
  EXPECT_TRUE(ok.Close().ok());
}

// ---------------------------------------------------------------------------
// Protocol robustness: violations answer with an Error frame, then close.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, FrameBeforeHelloIsFatal) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.ConnectRawForTest("127.0.0.1", server_->port()).ok());
  const std::string frame = wire::Encode(wire::FetchRequest{1, 10});
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  wire::FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrameRaw(&type, &payload).ok());
  EXPECT_EQ(type, wire::FrameType::kError);
  wire::ErrorResponse error;
  ASSERT_TRUE(wire::Decode(payload, &error).ok());
  EXPECT_EQ(error.code, StatusCode::kInvalidArgument);
  EXPECT_NE(error.message.find("Hello"), std::string::npos);
  // The server closes after flushing the error.
  EXPECT_FALSE(client.ReadFrameRaw(&type, &payload).ok());
}

TEST_F(ServerTest, DuplicateHelloIsFatal) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  wire::HelloRequest hello;
  hello.tenant = "tenant_a";
  const std::string frame = wire::Encode(hello);
  ASSERT_TRUE(client.SendRaw(frame.data(), frame.size()).ok());
  wire::FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrameRaw(&type, &payload).ok());
  EXPECT_EQ(type, wire::FrameType::kError);
  EXPECT_FALSE(client.ReadFrameRaw(&type, &payload).ok());
}

TEST_F(ServerTest, GarbageBytesAnswerErrorThenClose) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.ConnectRawForTest("127.0.0.1", server_->port()).ok());
  // Header announcing a payload far over the frame ceiling: unframeable,
  // so the server must error out and close without waiting for bytes.
  const uint8_t poison[8] = {0xFF, 0xFF, 0xFF, 0xFF, 0x01, 0x00, 0x00, 0x00};
  ASSERT_TRUE(client.SendRaw(poison, sizeof(poison)).ok());
  wire::FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrameRaw(&type, &payload).ok());
  EXPECT_EQ(type, wire::FrameType::kError);
  wire::ErrorResponse error;
  ASSERT_TRUE(wire::Decode(payload, &error).ok());
  EXPECT_NE(error.message.find("oversized"), std::string::npos);
  EXPECT_FALSE(client.ReadFrameRaw(&type, &payload).ok());

  // The violation poisoned only that connection; the server stays healthy.
  Client healthy;
  ASSERT_TRUE(healthy.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  EXPECT_TRUE(healthy.RunQuery("SELECT u.id FROM users u").ok());
  EXPECT_TRUE(healthy.Close().ok());
}

TEST_F(ServerTest, TruncatedPayloadIsFatalButContained) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.ConnectRawForTest("127.0.0.1", server_->port()).ok());
  // A well-framed Hello whose payload is cut short: framing succeeds, the
  // typed decode fails, the server answers and closes.
  wire::HelloRequest hello;
  hello.tenant = "tenant_a";
  std::string frame = wire::Encode(hello);
  std::string body = frame.substr(wire::kHeaderBytes,
                                  frame.size() - wire::kHeaderBytes - 2);
  std::string cut = wire::EncodeFrame(wire::FrameType::kHello, body);
  ASSERT_TRUE(client.SendRaw(cut.data(), cut.size()).ok());
  wire::FrameType type;
  std::string payload;
  ASSERT_TRUE(client.ReadFrameRaw(&type, &payload).ok());
  EXPECT_EQ(type, wire::FrameType::kError);
  wire::ErrorResponse error;
  ASSERT_TRUE(wire::Decode(payload, &error).ok());
  EXPECT_NE(error.message.find("truncated"), std::string::npos);
  EXPECT_FALSE(client.ReadFrameRaw(&type, &payload).ok());
}

/// Use-after-move regression: with a single-slot request queue, pipelined
/// frames constantly hit backpressure; a parked frame must survive a
/// failed queue push intact (a corrupted payload would decode as
/// "truncated" and kill the session).
TEST_F(ServerTest, BackpressureKeepsParkedFramesIntact) {
  ServerOptions options;
  options.request_queue_capacity = 1;
  StartServer(std::move(options));
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());

  constexpr uint32_t kPipelined = 50;
  std::string batch;
  for (uint32_t i = 1; i <= kPipelined; ++i) {
    batch += wire::Encode(wire::PrepareRequest{i, "SELECT u.id FROM users u"});
  }
  ASSERT_TRUE(client.SendRaw(batch.data(), batch.size()).ok());
  for (uint32_t i = 1; i <= kPipelined; ++i) {
    wire::FrameType type;
    std::string payload;
    ASSERT_TRUE(client.ReadFrameRaw(&type, &payload).ok()) << "frame " << i;
    ASSERT_EQ(type, wire::FrameType::kPrepareOk) << "frame " << i;
    wire::PrepareOk ok;
    ASSERT_TRUE(wire::Decode(payload, &ok).ok());
    EXPECT_EQ(ok.stmt_id, i);
  }
  EXPECT_TRUE(client.Close().ok());
}

/// A client that pipelines a whole session and half-closes (SHUT_WR)
/// before reading must still get every response: frames buffered at EOF
/// are parsed and answered, then the server closes after flushing.
TEST_F(ServerTest, PipelinedRequestsAnsweredAfterHalfClose) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.ConnectRawForTest("127.0.0.1", server_->port()).ok());

  wire::HelloRequest hello;
  hello.tenant = "tenant_a";
  std::string batch = wire::Encode(hello);
  batch += wire::Encode(wire::PrepareRequest{1, "SELECT u.id FROM users u"});
  wire::BindRequest bind;
  bind.stmt_id = 1;
  bind.portal_id = 1;
  batch += wire::Encode(bind).Value();
  batch += wire::Encode(wire::SubmitRequest{1, ""});
  batch += wire::Encode(wire::FetchRequest{1, 100});  // first query id is 1
  ASSERT_TRUE(client.SendRaw(batch.data(), batch.size()).ok());
  client.ShutdownWriteForTest();

  const wire::FrameType expected[] = {
      wire::FrameType::kHelloOk, wire::FrameType::kPrepareOk,
      wire::FrameType::kBindOk, wire::FrameType::kSubmitOk,
      wire::FrameType::kRows};
  std::string payload;
  for (const wire::FrameType want : expected) {
    wire::FrameType type;
    ASSERT_TRUE(client.ReadFrameRaw(&type, &payload).ok())
        << "expected " << wire::FrameTypeName(want) << " after half-close";
    ASSERT_EQ(type, want);
  }
  wire::RowsResponse rows;
  ASSERT_TRUE(wire::Decode(payload, &rows).ok());
  EXPECT_EQ(rows.rows.size(), 4u);
  EXPECT_TRUE(rows.done);
  // Nothing more was requested: the server closes the drained session.
  wire::FrameType type;
  EXPECT_FALSE(client.ReadFrameRaw(&type, &payload).ok());
}

/// Fairness regression (the ROADMAP item the lane-aware queue fixes): a
/// chatty tenant flooding the request queue must not starve another
/// tenant's access to the engine pump. Every chatty Submit stalls the
/// engine thread (post_submit_hook), so the flood's backlog takes hundreds
/// of milliseconds to drain; round-robin dequeue must answer the quiet
/// tenant's query while most of that backlog is still queued. Under the
/// old FIFO queue the quiet tenant's frames waited behind the whole flood.
TEST_F(ServerTest, ChattyTenantCannotStarveQuietTenant) {
  constexpr uint32_t kChatty = 40;
  ServerOptions options;
  TenantConfig chatty;
  chatty.name = "tenant_chatty";
  chatty.quota.max_concurrent_queries = kChatty;  // all submits admit
  chatty.quota.max_queued_submits = kChatty;
  TenantConfig quiet;
  quiet.name = "tenant_quiet";
  options.tenants = {chatty, quiet};
  options.post_submit_hook = [](const std::string& tenant, QueryHandle&) {
    if (tenant == "tenant_chatty") {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  };
  StartServer(std::move(options));

  Client flood;
  ASSERT_TRUE(
      flood.Connect("127.0.0.1", server_->port(), "tenant_chatty").ok());
  std::string batch;
  for (uint32_t i = 1; i <= kChatty; ++i) {
    batch += wire::Encode(wire::PrepareRequest{i, "SELECT u.id FROM users u"});
    wire::BindRequest bind;
    bind.stmt_id = i;
    bind.portal_id = i;
    batch += wire::Encode(bind).Value();
    batch += wire::Encode(wire::SubmitRequest{i, ""});
  }
  ASSERT_TRUE(flood.SendRaw(batch.data(), batch.size()).ok());

  Client prompt;
  ASSERT_TRUE(
      prompt.Connect("127.0.0.1", server_->port(), "tenant_quiet").ok());
  auto rows = prompt.RunQuery("SELECT u.id FROM users u");
  ASSERT_TRUE(rows.ok()) << rows.status().message();
  EXPECT_EQ(rows.Value().size(), 4u);

  // The ordering assertion: the quiet tenant was served while the flood
  // was still draining. FIFO would have processed all chatty submits
  // before the quiet tenant's first post-Hello frame.
  const TenantRollup backlog = server_->TenantStats("tenant_chatty");
  EXPECT_LT(backlog.queries_submitted, static_cast<uint64_t>(kChatty))
      << "quiet tenant waited for the whole chatty backlog";
  const TenantRollup served = server_->TenantStats("tenant_quiet");
  EXPECT_EQ(served.queries_completed, 1u);

  // The backpressure gauge saw the flood queue up.
  const std::string metrics = server_->MetricsText();
  const auto pos = metrics.find("server_request_queue_high_water");
  ASSERT_NE(pos, std::string::npos);
  const size_t value_at = metrics.find_first_of("0123456789", pos);
  ASSERT_NE(value_at, std::string::npos);
  EXPECT_GE(std::stoull(metrics.substr(value_at)), 5u)
      << "expected the chatty backlog to register on the high-water gauge";

  // Drain: the flood's responses all arrive eventually.
  for (uint32_t i = 1; i <= 3 * kChatty; ++i) {
    wire::FrameType type;
    std::string payload;
    ASSERT_TRUE(flood.ReadFrameRaw(&type, &payload).ok()) << "frame " << i;
  }
  EXPECT_TRUE(flood.Close().ok());
  EXPECT_TRUE(prompt.Close().ok());
}

// ---------------------------------------------------------------------------
// Failure surfacing and mid-query disconnects
// ---------------------------------------------------------------------------

/// A module that claims in-flight work forever (copied shape from
/// tests/test_engine.cc): the engine fails the query closed with
/// kInternal, which the server must surface as a typed Error frame.
class StuckModule : public Module {
 public:
  explicit StuckModule(Simulation* sim) : Module(sim, "stuck") {}
  ModuleKind kind() const override { return ModuleKind::kOperator; }
  bool Quiescent() const override { return false; }

 protected:
  SimTime ServiceTime(const Tuple&) const override { return 0; }
  void Process(TuplePtr) override {}
};

TEST_F(ServerTest, StuckQuerySurfacesTypedErrorOnFetch) {
  ServerOptions options;
  options.post_submit_hook = [this](const std::string& tenant,
                                    QueryHandle& handle) {
    if (tenant == "tenant_sick") {
      handle.eddy()->AddModule(
          std::make_unique<StuckModule>(&engine_.sim()));
    }
  };
  StartServer(std::move(options));

  Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", server_->port(), "tenant_sick").ok());
  auto prepared = client.Prepare("SELECT u.id FROM users u");
  ASSERT_TRUE(prepared.ok());
  auto portal = client.Bind(prepared.Value().stmt_id);
  ASSERT_TRUE(portal.ok());
  auto submit = client.Submit(portal.Value());
  ASSERT_TRUE(submit.ok());
  // Rows produced before the wedge stream normally; the stream then ends
  // with the engine's forced-completion kInternal instead of done=true.
  size_t rows_seen = 0;
  Status end = Status::OK();
  while (true) {
    auto fetch = client.Fetch(submit.Value().query_id);
    if (!fetch.ok()) {
      end = fetch.status();
      break;
    }
    rows_seen += fetch.Value().rows.size();
    ASSERT_FALSE(fetch.Value().done)
        << "a wedged query must not report a clean end of stream";
  }
  EXPECT_EQ(rows_seen, 4u);  // everything produced before the wedge
  EXPECT_EQ(end.code(), StatusCode::kInternal);
  EXPECT_EQ(client.last_error().code, StatusCode::kInternal);

  // The failure was that query's alone: same session, healthy tenant path.
  const TenantRollup rollup = server_->TenantStats("tenant_sick");
  EXPECT_EQ(rollup.queries_failed, 1u);
  Client healthy;
  ASSERT_TRUE(
      healthy.Connect("127.0.0.1", server_->port(), "tenant_ok").ok());
  EXPECT_TRUE(healthy.RunQuery("SELECT u.id FROM users u").ok());
  EXPECT_TRUE(healthy.Close().ok());
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerTest, SessionKilledMidFetchLeavesEngineHealthy) {
  ServerOptions options;
  options.run_options.share_stems = true;  // pooled SteMs across sessions
  StartServer(std::move(options));
  const SqlParams params = SqlParams().Set("min", Value::Int64(0));
  const std::vector<std::string> expected =
      Sorted(InProcessRows(kBulkSql, params));

  // Victim: submit, pull one partial batch, vanish without Close.
  {
    Client victim;
    ASSERT_TRUE(
        victim.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
    auto prepared = victim.Prepare(kBulkSql);
    ASSERT_TRUE(prepared.ok());
    auto portal = victim.Bind(prepared.Value().stmt_id, params);
    ASSERT_TRUE(portal.ok());
    auto submit = victim.Submit(portal.Value());
    ASSERT_TRUE(submit.ok());
    auto fetch = victim.Fetch(submit.Value().query_id, 8);
    ASSERT_TRUE(fetch.ok());
    ASSERT_FALSE(fetch.Value().done);
    victim.Abort();  // hard disconnect mid-stream, no Close frame
  }

  // Survivor on the same pooled engine: exact results, before and after
  // the server notices the disconnect and cancels the orphan.
  Client survivor;
  ASSERT_TRUE(
      survivor.Connect("127.0.0.1", server_->port(), "tenant_b").ok());
  for (int repeat = 0; repeat < 3; ++repeat) {
    auto rows = survivor.RunQuery(kBulkSql, params);
    ASSERT_TRUE(rows.ok()) << rows.status().message();
    EXPECT_EQ(Sorted(WireRows(rows.Value())), expected)
        << "repeat " << repeat;
  }
  EXPECT_TRUE(survivor.Close().ok());

  // The victim's orphaned query was charged back to its tenant.
  const TenantRollup rollup = server_->TenantStats("tenant_a");
  EXPECT_EQ(rollup.queries_submitted, 1u);
  EXPECT_EQ(rollup.queries_cancelled, 1u);
  EXPECT_EQ(rollup.running_queries, 0u);
  EXPECT_EQ(rollup.memory_entries_in_use, 0u);
}

TEST_F(ServerTest, GracefulShutdownDrainsThenCancels) {
  ServerOptions options;
  options.shutdown_drain_ms = 300;
  StartServer(std::move(options));

  // One query is left admitted but never fully fetched: it can never
  // drain, so Shutdown must hold the door for ~drain_ms, then cancel it.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  auto prepared = client.Prepare(kBulkSql);
  ASSERT_TRUE(prepared.ok());
  auto portal = client.Bind(prepared.Value().stmt_id,
                            SqlParams().Set("min", Value::Int64(0)));
  ASSERT_TRUE(portal.ok());
  auto submit = client.Submit(portal.Value());
  ASSERT_TRUE(submit.ok());
  auto fetch = client.Fetch(submit.Value().query_id, 4);
  ASSERT_TRUE(fetch.ok());
  ASSERT_FALSE(fetch.Value().done);

  const auto t0 = std::chrono::steady_clock::now();
  server_->Shutdown();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_GE(elapsed, 250);   // the drain window was honored...
  EXPECT_LT(elapsed, 5000);  // ...and the remainder was cancelled, not hung
  EXPECT_FALSE(server_->running());
  const TenantRollup rollup = server_->TenantStats("tenant_a");
  EXPECT_EQ(rollup.queries_cancelled, 1u);
  EXPECT_EQ(rollup.running_queries, 0u);

  // The engine survived its server: direct in-process use still works.
  auto direct = engine_.Query("SELECT u.id FROM users u");
  ASSERT_TRUE(direct.ok());
  EXPECT_EQ(direct.Value().cursor().Drain().size(), 4u);
}

TEST_F(ServerTest, ShutdownIsImmediateWhenDrained) {
  ServerOptions options;
  options.shutdown_drain_ms = 10000;  // never waited on when idle
  StartServer(std::move(options));
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  ASSERT_TRUE(client.RunQuery("SELECT u.id FROM users u").ok());
  const auto t0 = std::chrono::steady_clock::now();
  server_->Shutdown();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
                           std::chrono::steady_clock::now() - t0)
                           .count();
  EXPECT_LT(elapsed, 2000);
}

TEST_F(ServerTest, IdleServerStaysParkedOnTheQueueCv) {
  // Regression: the engine loop used to poll the request queue on a flat
  // 20ms timeout even with nothing running — ~50 wakeups/sec of pure idle
  // burn. Idle must mean the long cv-wait cadence (a handful of wakeups
  // per second at most); queued submits and shutdown still get the fast
  // 20ms tick because only *time* can unblock them.
  StartServer();
  // One connect/query round-trip to prove we measure post-activity idle,
  // not just never-started.
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  ASSERT_TRUE(client.RunQuery("SELECT u.id FROM users u").ok());
  ASSERT_TRUE(client.Close().ok());

  std::this_thread::sleep_for(std::chrono::milliseconds(100));  // settle
  const uint64_t before = server_->engine_ticks();
  rusage ru_before{};
  getrusage(RUSAGE_SELF, &ru_before);
  std::this_thread::sleep_for(std::chrono::milliseconds(600));
  const uint64_t idle_ticks = server_->engine_ticks() - before;
  rusage ru_after{};
  getrusage(RUSAGE_SELF, &ru_after);

  // 600ms on a 250ms cv-wait is ~3 wakeups; the old 20ms tick was ~30.
  // Allow jitter headroom but stay far below the polling cadence.
  EXPECT_LE(idle_ticks, 8u) << "engine loop is busy-ticking while idle";
  const auto cpu_us = [](const timeval& tv) {
    return static_cast<int64_t>(tv.tv_sec) * 1000000 + tv.tv_usec;
  };
  const int64_t burned_us =
      (cpu_us(ru_after.ru_utime) - cpu_us(ru_before.ru_utime)) +
      (cpu_us(ru_after.ru_stime) - cpu_us(ru_before.ru_stime));
  // ~0 CPU over 600ms of wall idle. 100ms is an order of magnitude of
  // headroom for sanitizer builds and the test thread's own bookkeeping.
  EXPECT_LT(burned_us, 100000) << "idle server burned " << burned_us
                               << "us CPU over a 600ms window";
}

TEST_F(ServerTest, ThreadedPresetMatchesInProcess) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  auto rows = client.RunQuery(kBulkSql,
                              SqlParams().Set("min", Value::Int64(0)),
                              "threaded");
  ASSERT_TRUE(rows.ok()) << rows.status().message();
  EXPECT_EQ(Sorted(WireRows(rows.Value())),
            Sorted(InProcessRows(kBulkSql,
                                 SqlParams().Set("min", Value::Int64(0)))));
  EXPECT_TRUE(client.Close().ok());
}

TEST_F(ServerTest, CancelStopsAStreamingQuery) {
  StartServer();
  Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", server_->port(), "tenant_a").ok());
  auto prepared = client.Prepare(kBulkSql);
  ASSERT_TRUE(prepared.ok());
  auto portal = client.Bind(prepared.Value().stmt_id,
                            SqlParams().Set("min", Value::Int64(0)));
  ASSERT_TRUE(portal.ok());
  auto submit = client.Submit(portal.Value());
  ASSERT_TRUE(submit.ok());
  auto fetch = client.Fetch(submit.Value().query_id, 4);
  ASSERT_TRUE(fetch.ok());
  ASSERT_TRUE(client.Cancel(submit.Value().query_id).ok());
  // The query id is gone after cancellation.
  EXPECT_FALSE(client.Fetch(submit.Value().query_id).ok());
  EXPECT_EQ(client.last_error().code, StatusCode::kNotFound);
  const TenantRollup rollup = server_->TenantStats("tenant_a");
  EXPECT_EQ(rollup.queries_cancelled, 1u);
  EXPECT_TRUE(client.Close().ok());
}

}  // namespace
}  // namespace stems::server
