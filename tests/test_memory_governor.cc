// Tests: the §6 global memory governor (eddy-controlled eviction across
// SteMs) and window-join semantics under memory pressure.
#include <gtest/gtest.h>

#include "eddy/memory_governor.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::FastConfig;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::ScanSpec;
using testing::TestDb;

std::vector<std::vector<int64_t>> SequentialRows(int n, int64_t offset = 0) {
  std::vector<std::vector<int64_t>> rows;
  for (int i = 0; i < n; ++i) rows.push_back({i + offset});
  return rows;
}

class MemoryGovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.AddTable("R", IntSchema({"a"}), IntRows(SequentialRows(50)),
                 {ScanSpec("R.scan")});
    db_.AddTable("S", IntSchema({"x"}), IntRows(SequentialRows(50)),
                 {ScanSpec("S.scan")});
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
    query_ = qb.Build().ValueOrDie();
  }

  TestDb db_;
  QuerySpec query_;
};

TEST_F(MemoryGovernorTest, BudgetEnforcedAcrossStems) {
  ExecutionConfig config = FastConfig();
  config.eddy.memory.global_entry_budget = 30;
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->RunToCompletion();
  EXPECT_LE(eddy->memory_governor().TotalEntries(), 30u);
  EXPECT_GT(eddy->memory_governor().total_evicted(), 0u);
  // 100 singletons built, only 30 retained.
  EXPECT_EQ(eddy->StemForTable("R")->num_entries() +
                eddy->StemForTable("S")->num_entries(),
            eddy->memory_governor().TotalEntries());
}

TEST_F(MemoryGovernorTest, UnlimitedBudgetEvictsNothing) {
  ExecutionConfig config = FastConfig();
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->RunToCompletion();
  EXPECT_EQ(eddy->memory_governor().total_evicted(), 0u);
  EXPECT_EQ(eddy->memory_governor().TotalEntries(), 100u);
}

TEST_F(MemoryGovernorTest, LargestFirstBalancesSizes) {
  // R scans 4x faster than S: without governance SteM(R) would dwarf
  // SteM(S); largest-first keeps them comparable.
  ExecutionConfig config = FastConfig();
  config.eddy.memory.global_entry_budget = 20;
  config.eddy.memory.victim_policy = MemoryVictimPolicy::kLargestFirst;
  config.scan_overrides["R.scan"].period = Micros(10);
  config.scan_overrides["S.scan"].period = Micros(40);
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->Start();
  sim.RunUntil(Micros(800));  // mid-flight
  const size_t r = eddy->StemForTable("R")->num_entries();
  const size_t s = eddy->StemForTable("S")->num_entries();
  EXPECT_LE(r + s, 20u);
  EXPECT_LE(r > s ? r - s : s - r, 17u);  // neither side starved
  sim.Run();
}

TEST_F(MemoryGovernorTest, WindowSemanticsStillSubsetOfFullJoin) {
  // Under memory pressure results are a subset of the full join — never
  // spurious tuples, never duplicates.
  ExecutionConfig config = FastConfig();
  config.eddy.memory.global_entry_budget = 10;
  EddyRun run = RunEddy(query_, db_, config, MakePolicy(PolicyKind::kNaryShj));
  const auto full = BruteForceResultSet(query_, db_.store);
  EXPECT_TRUE(run.duplicates.empty());
  for (const auto& key : run.keys) {
    EXPECT_TRUE(full.count(key) > 0) << "spurious result " << key;
  }
  EXPECT_EQ(run.violations, 0u);
}

TEST(MemoryGovernorUnitTest, ColdestFirstPrefersUnprobedStem) {
  // Direct unit-level check of the victim policy.
  TestDb db;
  db.AddTable("A", IntSchema({"k"}), IntRows(SequentialRows(5)),
              {ScanSpec("A.scan")});
  db.AddTable("B", IntSchema({"k"}), IntRows(SequentialRows(5)),
              {ScanSpec("B.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B").AddJoin("A.k", "B.k");
  QuerySpec q = qb.Build().ValueOrDie();
  Simulation sim;
  QueryContext ctx;
  ctx.query = &q;
  ctx.sim = &sim;
  Stem a(&ctx, "A"), b(&ctx, "B");
  a.SetSink([](TuplePtr, Module*) {});
  b.SetSink([](TuplePtr, Module*) {});
  auto build = [&](Stem& stem, int slot, int64_t v) {
    TuplePtr t = Tuple::MakeSingleton(2, slot, MakeRow({Value::Int64(v)}));
    t->SetRouteInfo(RouteIntent::kBuild, slot);
    stem.Accept(std::move(t));
    sim.Run();
  };
  for (int64_t i = 0; i < 4; ++i) build(a, 0, i);
  for (int64_t i = 0; i < 4; ++i) build(b, 1, i);
  // Probe only SteM(A): it is hot; B is cold.
  TuplePtr probe = Tuple::MakeSingleton(2, 1, MakeRow({Value::Int64(1)}));
  probe->SetBuilt(1, 100);
  probe->SetRouteInfo(RouteIntent::kProbe, 0);
  a.Accept(std::move(probe));
  sim.Run();

  MemoryGovernorOptions opts;
  opts.global_entry_budget = 6;
  opts.victim_policy = MemoryVictimPolicy::kColdestFirst;
  opts.eviction_batch = 2;
  MemoryGovernor governor(opts);
  governor.Watch(&a);
  governor.Watch(&b);
  governor.Rebalance();
  EXPECT_EQ(governor.TotalEntries(), 6u);
  EXPECT_EQ(a.num_entries(), 4u);  // hot SteM untouched
  EXPECT_EQ(b.num_entries(), 2u);  // cold SteM shrunk
}

}  // namespace
}  // namespace stems
