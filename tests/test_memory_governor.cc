// Tests: the §6 global memory governor (eddy-controlled eviction across
// SteMs) and window-join semantics under memory pressure.
#include <gtest/gtest.h>

#include "eddy/memory_governor.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::FastConfig;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::ScanSpec;
using testing::TestDb;

std::vector<std::vector<int64_t>> SequentialRows(int n, int64_t offset = 0) {
  std::vector<std::vector<int64_t>> rows;
  for (int i = 0; i < n; ++i) rows.push_back({i + offset});
  return rows;
}

class MemoryGovernorTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.AddTable("R", IntSchema({"a"}), IntRows(SequentialRows(50)),
                 {ScanSpec("R.scan")});
    db_.AddTable("S", IntSchema({"x"}), IntRows(SequentialRows(50)),
                 {ScanSpec("S.scan")});
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
    query_ = qb.Build().ValueOrDie();
  }

  TestDb db_;
  QuerySpec query_;
};

TEST_F(MemoryGovernorTest, BudgetEnforcedAcrossStems) {
  ExecutionConfig config = FastConfig();
  config.eddy.memory.global_entry_budget = 30;
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->RunToCompletion();
  EXPECT_LE(eddy->memory_governor().TotalEntries(), 30u);
  EXPECT_GT(eddy->memory_governor().total_evicted(), 0u);
  // 100 singletons built, only 30 retained.
  EXPECT_EQ(eddy->StemForTable("R")->num_entries() +
                eddy->StemForTable("S")->num_entries(),
            eddy->memory_governor().TotalEntries());
}

TEST_F(MemoryGovernorTest, UnlimitedBudgetEvictsNothing) {
  ExecutionConfig config = FastConfig();
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->RunToCompletion();
  EXPECT_EQ(eddy->memory_governor().total_evicted(), 0u);
  EXPECT_EQ(eddy->memory_governor().TotalEntries(), 100u);
}

TEST_F(MemoryGovernorTest, LargestFirstBalancesSizes) {
  // R scans 4x faster than S: without governance SteM(R) would dwarf
  // SteM(S); largest-first keeps them comparable.
  ExecutionConfig config = FastConfig();
  config.eddy.memory.global_entry_budget = 20;
  config.eddy.memory.victim_policy = MemoryVictimPolicy::kLargestFirst;
  config.scan_overrides["R.scan"].period = Micros(10);
  config.scan_overrides["S.scan"].period = Micros(40);
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->Start();
  sim.RunUntil(Micros(800));  // mid-flight
  const size_t r = eddy->StemForTable("R")->num_entries();
  const size_t s = eddy->StemForTable("S")->num_entries();
  EXPECT_LE(r + s, 20u);
  EXPECT_LE(r > s ? r - s : s - r, 17u);  // neither side starved
  sim.Run();
}

TEST_F(MemoryGovernorTest, WindowSemanticsStillSubsetOfFullJoin) {
  // Under memory pressure results are a subset of the full join — never
  // spurious tuples, never duplicates.
  ExecutionConfig config = FastConfig();
  config.eddy.memory.global_entry_budget = 10;
  EddyRun run = RunEddy(query_, db_, config, MakePolicy(PolicyKind::kNaryShj));
  const auto full = BruteForceResultSet(query_, db_.store);
  EXPECT_TRUE(run.duplicates.empty());
  for (const auto& key : run.keys) {
    EXPECT_TRUE(full.count(key) > 0) << "spurious result " << key;
  }
  EXPECT_EQ(run.violations, 0u);
}

// Governor x batched routing: the victim policies must behave identically
// whether rebalances fire per tuple or once per serviced batch (the SteM
// defers its change notification to the end of a batch group).
class MemoryGovernorBatchTest
    : public MemoryGovernorTest,
      public ::testing::WithParamInterface<size_t /*batch_size*/> {};

TEST_P(MemoryGovernorBatchTest, ColdestFirstEnforcesBudget) {
  ExecutionConfig config = FastConfig();
  config.eddy.batch_size = GetParam();
  config.eddy.memory.global_entry_budget = 30;
  config.eddy.memory.victim_policy = MemoryVictimPolicy::kColdestFirst;
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->RunToCompletion();
  EXPECT_LE(eddy->memory_governor().TotalEntries(), 30u);
  EXPECT_GT(eddy->memory_governor().total_evicted(), 0u);
  EXPECT_EQ(eddy->memory_governor().total_spilled(), 0u);
  // Eviction = window semantics: a subset of the full join, never
  // spurious rows or duplicates.
  std::vector<std::string> duplicates;
  const auto keys = KeysOf(eddy->results(), &duplicates);
  const auto full = BruteForceResultSet(query_, db_.store);
  EXPECT_TRUE(duplicates.empty());
  for (const auto& key : keys) {
    EXPECT_TRUE(full.count(key) > 0) << "spurious result " << key;
  }
  EXPECT_EQ(eddy->violations().size(), 0u);
}

TEST_P(MemoryGovernorBatchTest, SpillColdestKeepsJoinExact) {
  ExecutionConfig config = FastConfig();
  config.eddy.batch_size = GetParam();
  config.eddy.memory.global_entry_budget = 30;
  config.eddy.memory.victim_policy = MemoryVictimPolicy::kSpillColdest;
  config.eddy.spill.enabled = true;
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->RunToCompletion();
  const MemoryGovernor& governor = eddy->memory_governor();
  EXPECT_GT(governor.total_spilled(), 0u);
  EXPECT_EQ(governor.total_evicted(), 0u);
  // Per-SteM spill accounting covers every watched SteM and sums to the
  // governor total.
  uint64_t per_stem_sum = 0;
  ASSERT_EQ(governor.watched().size(), governor.spilled_by_stem().size());
  for (uint64_t n : governor.spilled_by_stem()) per_stem_sum += n;
  EXPECT_EQ(per_stem_sum, governor.total_spilled());
  // Spilling preserves exactness where eviction would drop matches.
  std::vector<std::string> duplicates;
  const auto keys = KeysOf(eddy->results(), &duplicates);
  EXPECT_TRUE(duplicates.empty());
  EXPECT_EQ(keys, BruteForceResultSet(query_, db_.store));
  EXPECT_EQ(eddy->violations().size(), 0u);
  const Eddy::SpillSummary spill = eddy->SpillStats();
  EXPECT_GT(spill.spill_ios, 0u);
  EXPECT_GT(spill.bytes_spilled, 0u);
}

INSTANTIATE_TEST_SUITE_P(BatchSizes, MemoryGovernorBatchTest,
                         ::testing::Values(1, 64));

TEST(MemoryGovernorUnitTest, ColdestFirstPrefersUnprobedStem) {
  // Direct unit-level check of the victim policy.
  TestDb db;
  db.AddTable("A", IntSchema({"k"}), IntRows(SequentialRows(5)),
              {ScanSpec("A.scan")});
  db.AddTable("B", IntSchema({"k"}), IntRows(SequentialRows(5)),
              {ScanSpec("B.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B").AddJoin("A.k", "B.k");
  QuerySpec q = qb.Build().ValueOrDie();
  Simulation sim;
  QueryContext ctx;
  ctx.query = &q;
  ctx.sim = &sim;
  Stem a(&ctx, "A"), b(&ctx, "B");
  a.SetSink([](TuplePtr, Module*) {});
  b.SetSink([](TuplePtr, Module*) {});
  auto build = [&](Stem& stem, int slot, int64_t v) {
    TuplePtr t = Tuple::MakeSingleton(2, slot, MakeRow({Value::Int64(v)}));
    t->SetRouteInfo(RouteIntent::kBuild, slot);
    stem.Accept(std::move(t));
    sim.Run();
  };
  for (int64_t i = 0; i < 4; ++i) build(a, 0, i);
  for (int64_t i = 0; i < 4; ++i) build(b, 1, i);
  // Probe only SteM(A): it is hot; B is cold.
  TuplePtr probe = Tuple::MakeSingleton(2, 1, MakeRow({Value::Int64(1)}));
  probe->SetBuilt(1, 100);
  probe->SetRouteInfo(RouteIntent::kProbe, 0);
  a.Accept(std::move(probe));
  sim.Run();

  MemoryGovernorOptions opts;
  opts.global_entry_budget = 6;
  opts.victim_policy = MemoryVictimPolicy::kColdestFirst;
  opts.eviction_batch = 2;
  MemoryGovernor governor(opts);
  governor.Watch(&a);
  governor.Watch(&b);
  governor.Rebalance();
  EXPECT_EQ(governor.TotalEntries(), 6u);
  EXPECT_EQ(a.num_entries(), 4u);  // hot SteM untouched
  EXPECT_EQ(b.num_entries(), 2u);  // cold SteM shrunk
}

TEST(MemoryGovernorUnitTest, RebalanceBailsOutWhenNoVictimCanShrink) {
  // kSpillColdest over SteMs that were never EnableSpill()ed: no victim can
  // shrink, so Rebalance must log and bail instead of spinning (the
  // "all SteMs at minimum size" failure mode).
  TestDb db;
  db.AddTable("A", IntSchema({"k"}), IntRows(SequentialRows(6)),
              {ScanSpec("A.scan")});
  db.AddTable("B", IntSchema({"k"}), IntRows(SequentialRows(6)),
              {ScanSpec("B.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B").AddJoin("A.k", "B.k");
  QuerySpec q = qb.Build().ValueOrDie();
  Simulation sim;
  QueryContext ctx;
  ctx.query = &q;
  ctx.sim = &sim;
  Stem a(&ctx, "A"), b(&ctx, "B");
  a.SetSink([](TuplePtr, Module*) {});
  b.SetSink([](TuplePtr, Module*) {});
  auto build = [&](Stem& stem, int slot, int64_t v) {
    TuplePtr t = Tuple::MakeSingleton(2, slot, MakeRow({Value::Int64(v)}));
    t->SetRouteInfo(RouteIntent::kBuild, slot);
    stem.Accept(std::move(t));
    sim.Run();
  };
  for (int64_t i = 0; i < 4; ++i) build(a, 0, i);
  for (int64_t i = 0; i < 4; ++i) build(b, 1, i);

  MemoryGovernorOptions opts;
  opts.global_entry_budget = 3;  // unreachable without spill support
  opts.victim_policy = MemoryVictimPolicy::kSpillColdest;
  MemoryGovernor governor(opts);
  governor.Watch(&a);
  governor.Watch(&b);
  governor.Rebalance();  // must return (bail), not loop forever
  EXPECT_EQ(governor.TotalEntries(), 8u);  // nothing shrank
  EXPECT_EQ(governor.total_spilled(), 0u);
  EXPECT_EQ(governor.total_evicted(), 0u);
}

}  // namespace
}  // namespace stems
