// Sim-vs-threaded equivalence gate (the CI wall for docs/parallelism.md).
//
// The deterministic simulated-clock executor is the reference semantics;
// the wall-clock morsel-driven executor must reproduce its result set
// exactly. This suite pins that across the whole supported matrix — every
// routing policy × batch size {8, 64} × threads {1, 2, 4} — with the
// brute-force evaluator as the independent anchor, and requires both
// substrates to finish with clean audit verdicts (zero violations). It
// also covers the LargerThanMemory spill preset, exact LIMIT clamping
// under concurrent admission, the Engine/SQL integration, and the
// unsupported-combination errors.
#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "engine/engine.h"
#include "exec/sim_executor.h"
#include "exec/threaded_executor.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;
using testing::TestDb;

constexpr size_t kBatchSizes[] = {8, 64};
constexpr size_t kThreadCounts[] = {1, 2, 4};
const char* const kPolicies[] = {"nary_shj", "lottery", "benefit_cost"};

/// Deterministic row generator (tests must not depend on ambient RNG).
std::vector<RowRef> RandomIntRows(uint64_t seed, size_t n, size_t cols,
                                  int64_t domain) {
  std::vector<std::vector<int64_t>> data(n, std::vector<int64_t>(cols));
  uint64_t x = seed * 6364136223846793005ULL + 1442695040888963407ULL;
  for (auto& row : data) {
    for (auto& v : row) {
      x = x * 6364136223846793005ULL + 1442695040888963407ULL;
      v = static_cast<int64_t>((x >> 33) % static_cast<uint64_t>(domain));
    }
  }
  return IntRows(data);
}

struct RunSummary {
  std::set<std::string> keys;
  std::vector<std::string> duplicates;
  std::vector<std::string> violations;
  ExecOutcome outcome;
};

RunSummary RunSim(const QuerySpec& query, const TestDb& db,
                  const std::string& policy, size_t batch_size) {
  RunOptions options;
  options.policy = policy;
  options.batch_size = batch_size;
  options.exec.scan_defaults.period = Micros(10);
  SimExecutor executor;
  RunSummary run;
  Status st = executor.Execute(query, options, db.store, &run.outcome);
  EXPECT_TRUE(st.ok()) << st.ToString();
  run.keys = KeysOf(run.outcome.results, &run.duplicates);
  run.violations = run.outcome.violations;
  return run;
}

RunSummary RunThreaded(const QuerySpec& query, const TestDb& db,
                       const std::string& policy, size_t batch_size,
                       size_t threads, RunOptions options = {}) {
  options.policy = policy;
  options.batch_size = batch_size;
  options.executor = ExecutorKind::kThreaded;
  options.num_threads = threads;
  ThreadPoolExecutor executor;
  RunSummary run;
  Status st = executor.Execute(query, options, db.store, &run.outcome);
  EXPECT_TRUE(st.ok()) << st.ToString();
  run.keys = KeysOf(run.outcome.results, &run.duplicates);
  run.violations = run.outcome.violations;
  return run;
}

/// The gate itself: one sim reference run per policy, then the threaded
/// matrix must match it key-for-key with clean audits on both sides.
void ExpectEquivalence(const QuerySpec& query, const TestDb& db,
                       RunOptions threaded_base = {}) {
  const std::set<std::string> expected = BruteForceResultSet(query, db.store);
  for (const char* policy : kPolicies) {
    SCOPED_TRACE(std::string("policy=") + policy);
    const RunSummary sim = RunSim(query, db, policy, 8);
    EXPECT_EQ(sim.keys, expected) << "sim run diverges from brute force";
    EXPECT_TRUE(sim.duplicates.empty());
    EXPECT_TRUE(sim.violations.empty());
    for (size_t batch : kBatchSizes) {
      for (size_t threads : kThreadCounts) {
        SCOPED_TRACE("batch=" + std::to_string(batch) +
                     " threads=" + std::to_string(threads));
        const RunSummary threaded =
            RunThreaded(query, db, policy, batch, threads, threaded_base);
        EXPECT_EQ(threaded.keys, sim.keys);
        EXPECT_TRUE(threaded.duplicates.empty())
            << threaded.duplicates.size() << " duplicates, first: "
            << threaded.duplicates.front();
        // "Identical audit verdicts": both executors must report the same
        // (empty) violation list.
        EXPECT_EQ(threaded.violations, sim.violations);
        EXPECT_TRUE(threaded.violations.empty());
      }
    }
  }
}

TestDb TwoTableDb() {
  TestDb db;
  // Duplicate rows included on purpose: the §3.2 set-semantics dedup must
  // behave identically under concurrent builds.
  auto r = RandomIntRows(1, 40, 2, 8);
  r.push_back(r.front());
  r.push_back(r.front());
  db.AddTable("R", IntSchema({"a", "b"}), std::move(r), {ScanSpec("R.scan")});
  db.AddTable("S", IntSchema({"x", "y"}), RandomIntRows(2, 40, 2, 8),
              {ScanSpec("S.scan")});
  return db;
}

TEST(ThreadedEquivalence, EquiJoin2) {
  TestDb db = TwoTableDb();
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  ExpectEquivalence(std::move(qb).Build().ValueOrDie(), db);
}

TEST(ThreadedEquivalence, Chain3WithSelection) {
  TestDb db;
  db.AddTable("R", IntSchema({"a", "b"}), RandomIntRows(3, 30, 2, 6),
              {ScanSpec("R.scan")});
  db.AddTable("S", IntSchema({"x", "y"}), RandomIntRows(4, 30, 2, 6),
              {ScanSpec("S.scan")});
  db.AddTable("T", IntSchema({"u", "v"}), RandomIntRows(5, 30, 2, 6),
              {ScanSpec("T.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.u");
  qb.AddSelection("R.b", CompareOp::kLt, Value::Int64(4));
  ExpectEquivalence(std::move(qb).Build().ValueOrDie(), db);
}

TEST(ThreadedEquivalence, Star4) {
  TestDb db;
  db.AddTable("A", IntSchema({"a", "b", "c"}), RandomIntRows(6, 24, 3, 5),
              {ScanSpec("A.scan")});
  db.AddTable("B", IntSchema({"x"}), RandomIntRows(7, 20, 1, 5),
              {ScanSpec("B.scan")});
  db.AddTable("C", IntSchema({"x"}), RandomIntRows(8, 20, 1, 5),
              {ScanSpec("C.scan")});
  db.AddTable("D", IntSchema({"x"}), RandomIntRows(9, 20, 1, 5),
              {ScanSpec("D.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B").AddTable("C").AddTable("D");
  qb.AddJoin("A.a", "B.x").AddJoin("A.b", "C.x").AddJoin("A.c", "D.x");
  ExpectEquivalence(std::move(qb).Build().ValueOrDie(), db);
}

TEST(ThreadedEquivalence, RangeJoin) {
  // Non-equality join: no hash bindings, so threaded probes take the
  // all-shard scan path.
  TestDb db;
  db.AddTable("R", IntSchema({"a"}), RandomIntRows(10, 18, 1, 12),
              {ScanSpec("R.scan")});
  db.AddTable("S", IntSchema({"x"}), RandomIntRows(11, 18, 1, 12),
              {ScanSpec("S.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x", CompareOp::kLt);
  ExpectEquivalence(std::move(qb).Build().ValueOrDie(), db);
}

TEST(ThreadedEquivalence, CrossProduct) {
  // Join-graph fallback: no predicates at all, every unspanned slot is a
  // probe candidate.
  TestDb db;
  db.AddTable("R", IntSchema({"a"}), RandomIntRows(12, 8, 1, 100),
              {ScanSpec("R.scan")});
  db.AddTable("S", IntSchema({"x"}), RandomIntRows(13, 6, 1, 100),
              {ScanSpec("S.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S");
  ExpectEquivalence(std::move(qb).Build().ValueOrDie(), db);
}

TEST(ThreadedEquivalence, LargerThanMemorySpillPreset) {
  // The spill preset case the ISSUE calls out: a budget far below the
  // build state forces the threaded executor's spill-lite path (shard
  // index drops + probe fault-ins) — results must stay exact.
  TestDb db;
  db.AddTable("R", IntSchema({"a", "b"}), RandomIntRows(14, 60, 2, 10),
              {ScanSpec("R.scan")});
  db.AddTable("S", IntSchema({"x", "y"}), RandomIntRows(15, 60, 2, 10),
              {ScanSpec("S.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  const QuerySpec query = std::move(qb).Build().ValueOrDie();

  const std::set<std::string> expected = BruteForceResultSet(query, db.store);
  for (const char* policy : kPolicies) {
    SCOPED_TRACE(std::string("policy=") + policy);
    for (size_t batch : kBatchSizes) {
      for (size_t threads : kThreadCounts) {
        SCOPED_TRACE("batch=" + std::to_string(batch) +
                     " threads=" + std::to_string(threads));
        const RunSummary run = RunThreaded(query, db, policy, batch, threads,
                                           RunOptions::LargerThanMemory(32));
        EXPECT_EQ(run.keys, expected);
        EXPECT_TRUE(run.duplicates.empty());
        EXPECT_TRUE(run.violations.empty());
        EXPECT_GT(run.outcome.spill_ios, 0u)
            << "budget 32 over ~120 entries must spill";
        EXPECT_GT(run.outcome.entries_spilled + run.outcome.spill_ios, 0u);
      }
    }
  }
}

TEST(ThreadedEquivalence, LimitClampIsExactUnderConcurrency) {
  TestDb db = TwoTableDb();
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  const QuerySpec unlimited = std::move(qb).Build().ValueOrDie();
  const size_t total = BruteForceResultSet(unlimited, db.store).size();
  ASSERT_GT(total, 10u);

  QueryBuilder qb2(db.catalog);
  qb2.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  qb2.Limit(7);
  const QuerySpec limited = std::move(qb2).Build().ValueOrDie();
  for (size_t threads : kThreadCounts) {
    SCOPED_TRACE("threads=" + std::to_string(threads));
    const RunSummary run = RunThreaded(limited, db, "nary_shj", 8, threads);
    EXPECT_EQ(run.outcome.results.size(), 7u);
    EXPECT_TRUE(run.outcome.limit_reached);
    EXPECT_TRUE(run.violations.empty());
  }
  // LIMIT 0 completes without touching a single morsel.
  QueryBuilder qb3(db.catalog);
  qb3.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  qb3.Limit(0);
  const RunSummary zero =
      RunThreaded(std::move(qb3).Build().ValueOrDie(), db, "nary_shj", 8, 2);
  EXPECT_TRUE(zero.outcome.results.empty());
  EXPECT_EQ(zero.outcome.totals.morsels, 0u);
}

TEST(ThreadedEquivalence, EngineSubmitAndStats) {
  Engine engine;
  TableDef r;
  r.name = "R";
  r.schema = IntSchema({"a", "b"});
  r.access_methods = {ScanSpec("R.scan")};
  ASSERT_TRUE(engine.AddTable(r, RandomIntRows(20, 40, 2, 8)).ok());
  TableDef s;
  s.name = "S";
  s.schema = IntSchema({"x", "y"});
  s.access_methods = {ScanSpec("S.scan")};
  ASSERT_TRUE(engine.AddTable(s, RandomIntRows(21, 40, 2, 8)).ok());

  QueryBuilder qb(engine.catalog());
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  const QuerySpec query = std::move(qb).Build().ValueOrDie();
  const std::set<std::string> expected =
      BruteForceResultSet(query, engine.store());

  auto submitted = engine.Submit(query, RunOptions::Threaded(2));
  ASSERT_TRUE(submitted.ok()) << submitted.status().ToString();
  QueryHandle handle = std::move(submitted).ValueOrDie();
  EXPECT_TRUE(handle.done());
  EXPECT_EQ(handle.eddy(), nullptr);

  std::vector<std::string> duplicates;
  EXPECT_EQ(KeysOf(handle.cursor().Drain(), &duplicates), expected);
  EXPECT_TRUE(duplicates.empty());

  const QueryStats stats = handle.Stats();
  EXPECT_EQ(stats.executor, "threaded");
  EXPECT_EQ(stats.num_results, expected.size());
  EXPECT_EQ(stats.constraint_violations, 0u);
  EXPECT_EQ(stats.worker_counters.size(), 2u);
  uint64_t worker_results = 0;
  uint64_t worker_routed = 0;
  for (const WorkerCounters& wc : stats.worker_counters) {
    worker_results += wc.results;
    worker_routed += wc.tuples_routed;
  }
  EXPECT_EQ(worker_results, stats.num_results);
  EXPECT_EQ(worker_routed, stats.tuples_routed);
  EXPECT_GT(stats.tuples_routed, 0u);

  // SQL front end through the same dispatch, with a LIMIT.
  auto sql = engine.Query(
      "SELECT R.a, S.y FROM R, S WHERE R.a = S.x LIMIT 5",
      RunOptions::Threaded(2));
  ASSERT_TRUE(sql.ok()) << sql.status().ToString();
  EXPECT_EQ(std::move(sql).ValueOrDie().cursor().Drain().size(), 5u);
}

TEST(ThreadedEquivalence, UnsupportedCombinationsAreTypedErrors) {
  Engine engine;
  TableDef scan_table;
  scan_table.name = "R";
  scan_table.schema = IntSchema({"a"});
  scan_table.access_methods = {ScanSpec("R.scan")};
  ASSERT_TRUE(engine.AddTable(scan_table, IntRows({{1}, {2}})).ok());
  TableDef index_only;
  index_only.name = "I";
  index_only.schema = IntSchema({"x"});
  index_only.access_methods = {testing::IndexSpec("I.idx", {0})};
  ASSERT_TRUE(engine.AddTable(index_only, IntRows({{1}, {2}})).ok());

  // share_stems is rejected by option validation alone.
  {
    RunOptions o = RunOptions::Threaded(2);
    o.share_stems = true;
    EXPECT_EQ(o.Validate().code(), StatusCode::kInvalidArgument);
  }
  // An evicting (non-spill) memory budget is sim-only.
  {
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R");
    RunOptions o = RunOptions::Threaded(2);
    o.memory_budget_entries = 16;
    auto r = engine.Submit(std::move(qb).Build().ValueOrDie(), o);
    EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  }
  // Index-only tables need probe bouncing — sim-only.
  {
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R").AddTable("I").AddJoin("R.a", "I.x");
    auto r = engine.Submit(std::move(qb).Build().ValueOrDie(),
                           RunOptions::Threaded(2));
    EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  }
  // Self-joins (retarget clones) are sim-only.
  {
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R", "r1").AddTable("R", "r2").AddJoin("r1.a", "r2.a");
    auto r = engine.Submit(std::move(qb).Build().ValueOrDie(),
                           RunOptions::Threaded(2));
    EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  }
  // Relaxed BuildFirst is sim-only.
  {
    QueryBuilder qb(engine.catalog());
    qb.AddTable("R");
    RunOptions o = RunOptions::RelaxedBuildFirst({"R"});
    o.executor = ExecutorKind::kThreaded;
    auto r = engine.Submit(std::move(qb).Build().ValueOrDie(), o);
    EXPECT_EQ(r.status().code(), StatusCode::kUnsupported);
  }
}

TEST(ThreadedEquivalence, RandomQueriesMatchBruteForce) {
  for (uint64_t seed = 100; seed < 103; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    TestDb db;
    db.AddTable("R", IntSchema({"a", "b"}),
                RandomIntRows(seed, 25 + seed % 10, 2, 7),
                {ScanSpec("R.scan")});
    db.AddTable("S", IntSchema({"x", "y"}),
                RandomIntRows(seed + 50, 25, 2, 7), {ScanSpec("S.scan")});
    db.AddTable("T", IntSchema({"u"}), RandomIntRows(seed + 90, 20, 1, 7),
                {ScanSpec("T.scan")});
    QueryBuilder qb(db.catalog);
    qb.AddTable("R").AddTable("S").AddTable("T");
    qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.u");
    if (seed % 2 == 0) {
      qb.AddSelection("S.y", CompareOp::kGe, Value::Int64(2));
    }
    ExpectEquivalence(std::move(qb).Build().ValueOrDie(), db);
  }
}

}  // namespace
}  // namespace stems
