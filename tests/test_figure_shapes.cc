// Integration regression tests for the paper's headline results: scaled-
// down versions of Figures 7 and 8 whose *shapes* are asserted, so a
// routing or SteM regression that silently destroys the adaptation story
// (while staying correct) still fails the suite.
#include <gtest/gtest.h>

#include <memory>

#include "baseline/index_join_op.h"
#include "baseline/operator.h"
#include "baseline/shj_op.h"
#include "engine/policy_registry.h"
#include "query/planner.h"
#include "storage/generators.h"

namespace stems {
namespace {

// --- Figure 7 in miniature ----------------------------------------------------

class Fig7ShapeTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 200;
  static constexpr size_t kDistinct = 50;
  static constexpr SimTime kScanPeriod = Millis(5);
  static constexpr SimTime kIndexLatency = Millis(150);

  void SetUp() override {
    TableDef r{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}};
    TableDef s{"S", SchemaS(), {{"S.idx", AccessMethodKind::kIndex, {0}}}};
    ASSERT_TRUE(catalog_.AddTable(r).ok());
    ASSERT_TRUE(catalog_.AddTable(s).ok());
    ASSERT_TRUE(store_.AddTable("R", SchemaR(),
                                GenerateTableR(kRows, kDistinct, 7)).ok());
    ASSERT_TRUE(
        store_.AddTable("S", SchemaS(), GenerateTableS(kDistinct)).ok());
    QueryBuilder qb(catalog_);
    qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
    query_ = qb.Build().ValueOrDie();
  }

  void RunIndexJoin(CounterSeries* results, uint64_t* probes) {
    Simulation sim;
    StaticPlan plan(query_, &sim);
    ScanAmOptions scan_opts;
    scan_opts.period = kScanPeriod;
    auto* scan = plan.AddModule(std::make_unique<ScanAm>(
        plan.ctx(), "R.scan", "R", store_.GetTable("R").ValueOrDie()->rows(),
        scan_opts));
    IndexJoinOpOptions jopts;
    jopts.lookup_latency = std::make_shared<FixedLatency>(kIndexLatency);
    auto* join = plan.AddModule(std::make_unique<IndexJoinOp>(
        plan.ctx(), "ij", 0b01, 1, std::vector<int>{0},
        store_.GetTable("S").ValueOrDie(), jopts));
    plan.Connect(scan, join);
    plan.ConnectToSink(join);
    plan.Run();
    *results = plan.ctx()->metrics.Series("results");
    *probes = static_cast<uint64_t>(join->index_lookups());
  }

  void RunStems(CounterSeries* results, uint64_t* probes) {
    Simulation sim;
    ExecutionConfig config;
    config.scan_defaults.period = kScanPeriod;
    config.index_defaults.latency =
        std::make_shared<FixedLatency>(kIndexLatency);
    auto eddy = PlanQuery(query_, store_, &sim, config).ValueOrDie();
    eddy->SetPolicy(PolicyRegistry::Global().Create("nary_shj").ValueOrDie());
    eddy->RunToCompletion();
    ASSERT_TRUE(eddy->violations().empty());
    *results = eddy->ctx()->metrics.Series("results");
    *probes = static_cast<uint64_t>(
        eddy->ctx()->metrics.Series("S.idx.probes").total());
  }

  Catalog catalog_;
  TableStore store_;
  QuerySpec query_;
};

TEST_F(Fig7ShapeTest, StemsAheadThroughoutSameCompletion) {
  CounterSeries ij, st;
  uint64_t ij_probes = 0, st_probes = 0;
  RunIndexJoin(&ij, &ij_probes);
  RunStems(&st, &st_probes);

  // Identical totals and near-identical remote work (Fig 7(ii)).
  EXPECT_EQ(ij.total(), st.total());
  EXPECT_EQ(ij.total(), static_cast<int64_t>(kRows));
  EXPECT_EQ(ij_probes, st_probes);

  // SteMs lead at every mid-execution sample (Fig 7(i)).
  const SimTime completion = st.TimeToReach(st.total());
  int stem_ahead = 0, samples = 0;
  for (int pct = 20; pct <= 80; pct += 10) {
    const SimTime t = completion * pct / 100;
    ++samples;
    if (st.ValueAt(t) >= ij.ValueAt(t)) ++stem_ahead;
  }
  EXPECT_EQ(stem_ahead, samples);
  // Big online-metric advantage at the halfway point.
  EXPECT_GT(st.ValueAt(completion / 2), 2 * ij.ValueAt(completion / 2));

  // Similar overall completion (within 10%).
  const double ij_done = static_cast<double>(ij.TimeToReach(ij.total()));
  const double st_done = static_cast<double>(completion);
  EXPECT_LT(std::abs(ij_done - st_done) / ij_done, 0.10);
}

// --- Figure 8 in miniature -----------------------------------------------------

class Fig8ShapeTest : public ::testing::Test {
 protected:
  static constexpr size_t kRows = 200;
  static constexpr SimTime kRScan = Millis(6);
  static constexpr SimTime kTScan = Millis(12);
  static constexpr SimTime kIndexLatency = Millis(25);

  void SetUp() override {
    TableDef r{"R", SchemaR(), {{"R.scan", AccessMethodKind::kScan, {}}}};
    TableDef t{"T",
               SchemaT(),
               {{"T.scan", AccessMethodKind::kScan, {}},
                {"T.idx", AccessMethodKind::kIndex, {0}}}};
    ASSERT_TRUE(catalog_.AddTable(r).ok());
    ASSERT_TRUE(catalog_.AddTable(t).ok());
    std::vector<RowRef> r_rows;
    for (size_t i = 0; i < kRows; ++i) {
      r_rows.push_back(MakeRow({Value::Int64(static_cast<int64_t>(i)),
                                Value::Int64(0)}));
    }
    ASSERT_TRUE(store_.AddTable("R", SchemaR(), std::move(r_rows)).ok());
    ASSERT_TRUE(
        store_.AddTable("T", SchemaT(), GenerateTableT(kRows, 11)).ok());
    QueryBuilder qb(catalog_);
    qb.AddTable("R").AddTable("T").AddJoin("R.key", "T.key");
    query_ = qb.Build().ValueOrDie();
  }

  CounterSeries RunHashJoin() {
    Simulation sim;
    StaticPlan plan(query_, &sim);
    ScanAmOptions r_opts, t_opts;
    r_opts.period = kRScan;
    t_opts.period = kTScan;
    auto* r = plan.AddModule(std::make_unique<ScanAm>(
        plan.ctx(), "R.scan", "R", store_.GetTable("R").ValueOrDie()->rows(),
        r_opts));
    auto* t = plan.AddModule(std::make_unique<ScanAm>(
        plan.ctx(), "T.scan", "T", store_.GetTable("T").ValueOrDie()->rows(),
        t_opts));
    auto* shj = plan.AddModule(
        std::make_unique<ShjOp>(plan.ctx(), "shj", 0b01, 0b10, 0));
    plan.Connect(r, shj);
    plan.Connect(t, shj);
    plan.ConnectToSink(shj);
    plan.Run();
    return plan.ctx()->metrics.Series("results");
  }

  CounterSeries RunHybrid() {
    Simulation sim;
    ExecutionConfig config;
    config.scan_overrides["R.scan"].period = kRScan;
    config.scan_overrides["T.scan"].period = kTScan;
    config.index_defaults.latency =
        std::make_shared<FixedLatency>(kIndexLatency);
    StemOptions t_stem;
    t_stem.bounce_mode = ProbeBounceMode::kAlways;
    config.stem_overrides["T"] = t_stem;
    auto eddy = PlanQuery(query_, store_, &sim, config).ValueOrDie();
    eddy->SetPolicy(PolicyRegistry::Global().Create("benefit_cost").ValueOrDie());
    eddy->RunToCompletion();
    EXPECT_TRUE(eddy->violations().empty());
    EXPECT_EQ(eddy->num_results(), kRows);
    return eddy->ctx()->metrics.Series("results");
  }

  Catalog catalog_;
  TableStore store_;
  QuerySpec query_;
};

TEST_F(Fig8ShapeTest, HybridTracksOrBeatsHashJoin) {
  CounterSeries hash = RunHashJoin();
  CounterSeries hybrid = RunHybrid();
  EXPECT_EQ(hash.total(), hybrid.total());

  const SimTime hash_done = hash.TimeToReach(hash.total());
  // Hybrid is never far behind the hash join mid-flight, and is strictly
  // ahead early (it also uses the index).
  for (int pct = 10; pct <= 90; pct += 20) {
    const SimTime t = hash_done * pct / 100;
    EXPECT_GE(hybrid.ValueAt(t) + 5, hash.ValueAt(t)) << "at " << pct << "%";
  }
  EXPECT_GT(hybrid.ValueAt(hash_done / 10), hash.ValueAt(hash_done / 10));
  // Completion within 15% of the hash join (the paper's "slightly more").
  const double ratio =
      static_cast<double>(hybrid.TimeToReach(hybrid.total())) /
      static_cast<double>(hash_done);
  EXPECT_LT(ratio, 1.15);
}

}  // namespace
}  // namespace stems
