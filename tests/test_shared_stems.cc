// Cross-query shared SteMs (engine StemManager + RunOptions::share_stems):
// exactness under staggered concurrent attach, build-work avoidance,
// pooled-storage lifecycle, spill sharing, and the validation guard rails.
// Sharing model and exactness argument: docs/sharing.md.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "reference/brute_force.h"
#include "storage/generators.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::ScanSpec;

/// R(k, v) ⋈ S(k, w) ⋈ T(k, u) over skewed keys: every probe matches in
/// bursts, and two queries over any table subset want the same SteM index
/// (column 0), so pooled storages are actually shared.
class SharedStemsTest : public ::testing::Test {
 protected:
  static void Fill(Engine* engine, size_t rows = 160) {
    const std::vector<ColumnGenSpec> key_and_payload{
        {"k", ColumnGenSpec::Kind::kUniform, 0, 23, 0, 1.0},
        {"v", ColumnGenSpec::Kind::kSequential, 0, 0, 1, 1.0}};
    uint64_t seed = 31;
    for (const char* name : {"R", "S", "T"}) {
      ASSERT_TRUE(engine
                      ->AddTable(TableDef{name, SchemaFor(key_and_payload),
                                          {ScanSpec(std::string(name) +
                                                    ".scan")}},
                                 GenerateRows(key_and_payload, rows, seed++))
                      .ok());
    }
  }

  /// Two-way join on column 0 of `left` and `right`.
  static QuerySpec Join2(Engine* engine, const std::string& left,
                         const std::string& right) {
    QueryBuilder qb(engine->catalog());
    qb.AddTable(left).AddTable(right);
    qb.AddJoin(left + ".k", right + ".k");
    return qb.Build().ValueOrDie();
  }

  static QuerySpec Chain3(Engine* engine) {
    QueryBuilder qb(engine->catalog());
    qb.AddTable("R").AddTable("S").AddTable("T");
    qb.AddJoin("R.k", "S.k").AddJoin("S.k", "T.k");
    return qb.Build().ValueOrDie();
  }

  /// Drains every handle and returns the per-query sorted result keys.
  static std::vector<std::set<std::string>> DrainAll(
      Engine* engine, std::vector<QueryHandle>* handles) {
    engine->RunAll();
    std::vector<std::set<std::string>> out;
    for (QueryHandle& h : *handles) {
      std::vector<std::string> dups;
      out.push_back(KeysOf(h.eddy()->results(), &dups));
      EXPECT_TRUE(dups.empty()) << dups.size() << " duplicate results";
      EXPECT_EQ(h.Stats().constraint_violations, 0u);
      EXPECT_TRUE(h.status().ok()) << h.status().ToString();
    }
    return out;
  }
};

// --- acceptance matrix -------------------------------------------------------

// For every policy × batch {1,64} × N∈{2,4}: N staggered concurrent queries
// (same and overlapping table sets) with share_stems produce exactly the
// private-run (and brute-force) result sets — also under the
// LargerThanMemory spill preset — and the late-attaching queries actually
// avoided build work.
TEST_F(SharedStemsTest, StaggeredConcurrentQueriesAreExact) {
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    for (size_t batch : {size_t{1}, size_t{64}}) {
      for (size_t n : {size_t{2}, size_t{4}}) {
        for (int spill = 0; spill < 2; ++spill) {
          SCOPED_TRACE(policy + " batch=" + std::to_string(batch) +
                       " n=" + std::to_string(n) + " spill=" +
                       std::to_string(spill));
          RunOptions options =
              spill ? RunOptions::LargerThanMemory(120) : RunOptions();
          options.policy = policy;
          options.batch_size = batch;
          options.share_stems = true;
          options.exec.scan_defaults.period = Micros(3);

          Engine engine;
          Fill(&engine);
          // Same table set (R⋈S twice) interleaved with overlapping ones
          // (S⋈T, R⋈S⋈T): SteM(S) is shared by all, SteM(R)/SteM(T) by
          // some.
          std::vector<QuerySpec> specs;
          for (size_t i = 0; i < n; ++i) {
            if (i % 3 == 1) {
              specs.push_back(Join2(&engine, "S", "T"));
            } else if (i % 3 == 2) {
              specs.push_back(Chain3(&engine));
            } else {
              specs.push_back(Join2(&engine, "R", "S"));
            }
          }
          std::vector<QueryHandle> handles;
          for (size_t i = 0; i < n; ++i) {
            handles.push_back(engine.Submit(specs[i], options).ValueOrDie());
            // Stagger: let earlier queries build state before the next
            // attaches (the late-attach visibility-epoch path).
            auto cursor = handles.back().cursor();
            for (int j = 0; j < 3 && cursor.Next(); ++j) {
            }
          }
          const auto shared_results = DrainAll(&engine, &handles);

          // Private baseline: same specs, sharing off, fresh engine.
          RunOptions private_options = options;
          private_options.share_stems = false;
          Engine private_engine;
          Fill(&private_engine);
          std::vector<QueryHandle> private_handles;
          std::vector<QuerySpec> private_specs;
          for (size_t i = 0; i < n; ++i) {
            if (i % 3 == 1) {
              private_specs.push_back(Join2(&private_engine, "S", "T"));
            } else if (i % 3 == 2) {
              private_specs.push_back(Chain3(&private_engine));
            } else {
              private_specs.push_back(Join2(&private_engine, "R", "S"));
            }
          }
          for (size_t i = 0; i < n; ++i) {
            private_handles.push_back(
                private_engine.Submit(private_specs[i], private_options)
                    .ValueOrDie());
          }
          const auto private_results =
              DrainAll(&private_engine, &private_handles);

          for (size_t i = 0; i < n; ++i) {
            EXPECT_EQ(shared_results[i], private_results[i])
                << "query " << i << " diverged from private run";
            EXPECT_EQ(shared_results[i],
                      BruteForceResultSet(specs[i], engine.store()))
                << "query " << i << " diverged from brute force";
            EXPECT_EQ(private_handles[i].Stats().stems_shared, 0u);
            EXPECT_EQ(private_handles[i].Stats().builds_avoided, 0u);
          }
          // The late attacher rode on already-built state.
          EXPECT_GT(handles.back().Stats().stems_shared, 0u);
          EXPECT_GT(handles.back().Stats().builds_avoided, 0u);
        }
      }
    }
  }
}

// --- sharing mechanics -------------------------------------------------------

TEST_F(SharedStemsTest, LateAttachAvoidsEveryBuildAfterCompletion) {
  Engine engine;
  Fill(&engine);
  RunOptions options = RunOptions::MultiQuery();
  options.exec.scan_defaults.period = Micros(3);
  const QuerySpec spec = Join2(&engine, "R", "S");

  QueryHandle first = engine.Submit(spec, options).ValueOrDie();
  first.Wait();
  const uint64_t stored = engine.stem_pool().pooled_storages();
  EXPECT_EQ(stored, 2u);  // SteM(R) + SteM(S)

  // Second, identical query while the first handle is still live: every
  // distinct row is already stored, so *all* of its builds are avoided —
  // the physical state is written once, engine-wide.
  QueryHandle second = engine.Submit(spec, options).ValueOrDie();
  second.Wait();
  const QueryStats stats = second.Stats();
  EXPECT_EQ(stats.stems_shared, 2u);
  const Stem* r = second.eddy()->StemForTable("R");
  const Stem* s = second.eddy()->StemForTable("S");
  ASSERT_NE(r, nullptr);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(stats.builds_avoided, r->num_entries() + s->num_entries());
  // The attach watermark marks the pre-existing state it adopted.
  EXPECT_GT(r->attach_watermark(), 0u);
  EXPECT_EQ(r->attach_watermark(), r->storage()->build_seq())
      << "second query should not have grown the shared storage";
  // Identical result sets, of course.
  EXPECT_EQ(KeysOf(second.eddy()->results()),
            KeysOf(first.eddy()->results()));
}

TEST_F(SharedStemsTest, PoolEvictsLazilyWhenLastQueryReleases) {
  Engine engine;
  Fill(&engine);
  RunOptions shared = RunOptions::MultiQuery();
  shared.exec.scan_defaults.period = Micros(3);
  {
    QueryHandle a = engine.Submit(Join2(&engine, "R", "S"), shared)
                        .ValueOrDie();
    QueryHandle b = engine.Submit(Join2(&engine, "S", "T"), shared)
                        .ValueOrDie();
    engine.RunAll();
    EXPECT_EQ(engine.stem_pool().pooled_storages(), 3u);  // R, S (shared), T
  }  // handles dropped; executions await pruning

  // An unrelated private query pumps the engine: the retired executions
  // prune, the last facades detach, and the pooled storages expire —
  // detach, then (lazy) evict.
  RunOptions private_options;
  private_options.exec.scan_defaults.period = Micros(3);
  QueryHandle nudge =
      engine.Submit(Join2(&engine, "R", "T"), private_options).ValueOrDie();
  nudge.Wait();
  EXPECT_EQ(engine.stem_pool().pooled_storages(), 0u);
  EXPECT_EQ(nudge.Stats().stems_shared, 0u);
}

TEST_F(SharedStemsTest, WindowedStemsStayPrivate) {
  // Sliding-window SteMs (max_entries) are a per-query execution strategy:
  // share_stems leaves them private rather than windowing a neighbour.
  Engine engine;
  Fill(&engine);
  RunOptions options = RunOptions::MultiQuery();
  options.exec.scan_defaults.period = Micros(3);
  options.exec.stem_defaults.max_entries = 8;
  QueryHandle a =
      engine.Submit(Join2(&engine, "R", "S"), options).ValueOrDie();
  QueryHandle b =
      engine.Submit(Join2(&engine, "R", "S"), options).ValueOrDie();
  engine.RunAll();
  EXPECT_EQ(b.Stats().stems_shared, 0u);
  EXPECT_EQ(b.Stats().builds_avoided, 0u);
  EXPECT_EQ(engine.stem_pool().pooled_storages(), 0u);
}

TEST_F(SharedStemsTest, SharedSpillPartitionsStayExact) {
  // Two staggered queries under a binding budget share spilled partitions:
  // state lands in one run file, faults in for whichever query probes it,
  // and both result sets stay exact.
  Engine engine;
  Fill(&engine, /*rows=*/240);
  RunOptions options = RunOptions::LargerThanMemory(100);
  options.share_stems = true;
  options.exec.scan_defaults.period = Micros(3);
  const QuerySpec spec = Join2(&engine, "R", "S");

  QueryHandle a = engine.Submit(spec, options).ValueOrDie();
  auto cursor = a.cursor();
  for (int i = 0; i < 4 && cursor.Next(); ++i) {
  }
  QueryHandle b = engine.Submit(spec, options).ValueOrDie();
  engine.RunAll();

  const std::set<std::string> expected =
      BruteForceResultSet(spec, engine.store());
  EXPECT_EQ(KeysOf(a.eddy()->results()), expected);
  EXPECT_EQ(KeysOf(b.eddy()->results()), expected);
  EXPECT_GT(a.Stats().spill_ios + b.Stats().spill_ios, 0u)
      << "budget never bound: the spill path was not exercised";
  EXPECT_GT(b.Stats().builds_avoided, 0u);
  EXPECT_EQ(a.Stats().constraint_violations, 0u);
  EXPECT_EQ(b.Stats().constraint_violations, 0u);
}

// --- guard rails -------------------------------------------------------------

TEST_F(SharedStemsTest, ValidationRejectsEvictingGovernorWithSharing) {
  Engine engine;
  Fill(&engine);
  // A memory budget whose governor evicts (no spill) would window every
  // attached query's join through the shared state: rejected up front.
  RunOptions options;
  options.share_stems = true;
  options.memory_budget_entries = 64;
  auto result = engine.Submit(Join2(&engine, "R", "S"), options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);

  // The spilling governor is the supported way to bound shared memory.
  options.spill = true;
  EXPECT_TRUE(engine.Submit(Join2(&engine, "R", "S"), options).ok());
}

TEST_F(SharedStemsTest, MultiQueryPresetSharesStems) {
  const RunOptions preset = RunOptions::MultiQuery();
  EXPECT_TRUE(preset.share_stems);
  EXPECT_TRUE(preset.Validate().ok());
}

}  // namespace
}  // namespace stems
