// Wire-protocol codec tests: round trips for every frame type, golden
// errors for malformed/truncated/oversized payloads, and a mutation fuzz
// loop over the decoders (the ASan+UBSan CI job is the real referee for
// the fuzz part).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "server/wire.h"

namespace stems::server::wire {
namespace {

TEST(WireHeader, RoundTrip) {
  const std::string frame = EncodeFrame(FrameType::kFetch, "abc");
  ASSERT_EQ(frame.size(), kHeaderBytes + 3);
  FrameHeader header;
  ASSERT_TRUE(DecodeFrameHeader(
                  reinterpret_cast<const uint8_t*>(frame.data()),
                  kMaxFramePayload, &header)
                  .ok());
  EXPECT_EQ(header.type, FrameType::kFetch);
  EXPECT_EQ(header.payload_len, 3u);
}

TEST(WireHeader, NonzeroFlagsRejected) {
  std::string frame = EncodeFrame(FrameType::kFetch, "abc");
  frame[5] = 1;  // flags byte
  FrameHeader header;
  const Status st = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), kMaxFramePayload,
      &header);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("flags"), std::string::npos);
}

TEST(WireHeader, NonzeroReservedRejected) {
  std::string frame = EncodeFrame(FrameType::kFetch, "abc");
  frame[7] = 0x40;  // high reserved byte
  FrameHeader header;
  EXPECT_FALSE(DecodeFrameHeader(
                   reinterpret_cast<const uint8_t*>(frame.data()),
                   kMaxFramePayload, &header)
                   .ok());
}

TEST(WireHeader, OversizedPayloadRejected) {
  std::string frame = EncodeFrame(FrameType::kPrepare, "x");
  frame[0] = static_cast<char>(0xFF);  // announce a huge payload
  frame[1] = static_cast<char>(0xFF);
  frame[2] = static_cast<char>(0xFF);
  frame[3] = static_cast<char>(0x7F);
  FrameHeader header;
  const Status st = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(frame.data()), kMaxFramePayload,
      &header);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("oversized"), std::string::npos);
}

TEST(WireFraming, ExtractAcrossPartialReads) {
  const std::string frame = EncodeFrame(FrameType::kClose, "");
  std::string buffer;
  FrameHeader header;
  std::string payload;
  Status error;
  for (size_t i = 0; i < frame.size(); ++i) {
    // No complete frame until the last byte arrives; never an error.
    EXPECT_FALSE(
        TryExtractFrame(&buffer, kMaxFramePayload, &header, &payload, &error));
    EXPECT_TRUE(error.ok());
    buffer.push_back(frame[i]);
  }
  EXPECT_TRUE(
      TryExtractFrame(&buffer, kMaxFramePayload, &header, &payload, &error));
  EXPECT_EQ(header.type, FrameType::kClose);
  EXPECT_TRUE(buffer.empty());
}

TEST(WireValues, AllTypesRoundTrip) {
  const std::vector<Value> values = {
      Value::Null(),
      Value::Int64(0),
      Value::Int64(-1),
      Value::Int64(INT64_MIN),
      Value::Int64(INT64_MAX),
      Value::Double(3.25),
      Value::Double(-0.0),
      Value::String(""),
      Value::String(std::string("nul\0byte", 8)),
      Value::String("plain"),
      Value::Eot(),
  };
  Writer w;
  for (const Value& v : values) w.Val(v);
  Reader r(w.payload());
  for (const Value& expected : values) {
    Value got;
    ASSERT_TRUE(r.Val(&got));
    EXPECT_EQ(got, expected) << expected.ToString();
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(WireValues, UnknownTagRejected) {
  std::string payload(1, static_cast<char>(0x7F));
  Reader r(payload);
  Value v;
  EXPECT_FALSE(r.Val(&v));
  EXPECT_FALSE(r.ok());
}

TEST(WireMessages, HelloRoundTrip) {
  HelloRequest in;
  in.tenant = "tenant_a";
  in.token = "secret";
  const std::string frame = Encode(in);
  HelloRequest out;
  ASSERT_TRUE(Decode(frame.substr(kHeaderBytes), &out).ok());
  EXPECT_EQ(out.protocol_version, kProtocolVersion);
  EXPECT_EQ(out.tenant, "tenant_a");
  EXPECT_EQ(out.token, "secret");
}

TEST(WireMessages, BindRoundTrip) {
  BindRequest in;
  in.stmt_id = 7;
  in.portal_id = 9;
  in.positional = {Value::Int64(1), Value::String("x")};
  in.named = {{"min", Value::Int64(30)}, {"tag", Value::Null()}};
  BindRequest out;
  ASSERT_TRUE(Decode(Encode(in).Value().substr(kHeaderBytes), &out).ok());
  EXPECT_EQ(out.stmt_id, 7u);
  EXPECT_EQ(out.portal_id, 9u);
  EXPECT_EQ(out.positional, in.positional);
  EXPECT_EQ(out.named, in.named);
}

TEST(WireMessages, OversizedBindRejectedAtEncode) {
  // 65536 parameters cannot travel behind a u16 count: the encoder must
  // refuse rather than truncate the count and desynchronize the frame.
  BindRequest in;
  in.positional.assign(0x10000, Value::Int64(1));
  auto frame = Encode(in);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(frame.status().message().find("65535"), std::string::npos);

  in.positional.clear();
  in.named.assign(0x10000, {"p", Value::Int64(1)});
  EXPECT_FALSE(Encode(in).ok());

  // Exactly at the cap still encodes and round-trips.
  in.named.clear();
  in.positional.assign(0xFFFF, Value::Int64(1));
  auto max_frame = Encode(in);
  ASSERT_TRUE(max_frame.ok());
  BindRequest out;
  ASSERT_TRUE(
      Decode(max_frame.Value().substr(kHeaderBytes), &out).ok());
  EXPECT_EQ(out.positional.size(), 0xFFFFu);
}

TEST(WireMessages, RowsRoundTrip) {
  RowsResponse in;
  in.query_id = 42;
  in.done = true;
  in.rows = {{Value::Int64(1), Value::String("a")},
             {Value::Int64(2), Value::Null()}};
  RowsResponse out;
  ASSERT_TRUE(Decode(Encode(in).Value().substr(kHeaderBytes), &out).ok());
  EXPECT_EQ(out.query_id, 42u);
  EXPECT_TRUE(out.done);
  EXPECT_EQ(out.rows, in.rows);
}

TEST(WireMessages, OversizedRowRejectedAtEncode) {
  RowsResponse in;
  in.rows = {std::vector<Value>(0x10000, Value::Int64(1))};
  auto frame = Encode(in);
  ASSERT_FALSE(frame.ok());
  EXPECT_EQ(frame.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(frame.status().message().find("65535"), std::string::npos);
}

TEST(WireMessages, PrepareOkRoundTrip) {
  PrepareOk in;
  in.stmt_id = 3;
  in.num_params = 2;
  in.columns = {{"u.id", ValueType::kInt64}, {"u.name", ValueType::kString}};
  PrepareOk out;
  ASSERT_TRUE(Decode(Encode(in).substr(kHeaderBytes), &out).ok());
  EXPECT_EQ(out.stmt_id, 3u);
  EXPECT_EQ(out.num_params, 2u);
  EXPECT_EQ(out.columns, in.columns);
}

TEST(WireMessages, SubmitOkAndErrorRoundTrip) {
  SubmitOk submit;
  submit.query_id = 11;
  submit.admitted = false;
  submit.queue_position = 2;
  SubmitOk submit_out;
  ASSERT_TRUE(Decode(Encode(submit).substr(kHeaderBytes), &submit_out).ok());
  EXPECT_EQ(submit_out.query_id, 11u);
  EXPECT_FALSE(submit_out.admitted);
  EXPECT_EQ(submit_out.queue_position, 2u);

  ErrorResponse error;
  error.code = StatusCode::kResourceExhausted;
  error.message = "tenant over quota";
  error.retry_after_ms = 250;
  ErrorResponse error_out;
  ASSERT_TRUE(Decode(Encode(error).substr(kHeaderBytes), &error_out).ok());
  EXPECT_EQ(error_out.code, StatusCode::kResourceExhausted);
  EXPECT_EQ(error_out.message, "tenant over quota");
  EXPECT_EQ(error_out.retry_after_ms, 250u);
}

TEST(WireMessages, StatsRoundTrip) {
  StatsOk in;
  in.counters = {{"queries_completed", 7}, {"num_results", 123}};
  StatsOk out;
  ASSERT_TRUE(Decode(Encode(in).substr(kHeaderBytes), &out).ok());
  EXPECT_EQ(out.counters, in.counters);
}

TEST(WireMessages, TruncatedPayloadIsGoldenError) {
  PrepareRequest in;
  in.stmt_id = 1;
  in.sql = "SELECT u.id FROM users u";
  const std::string payload = Encode(in).substr(kHeaderBytes);
  for (size_t cut = 0; cut < payload.size(); ++cut) {
    PrepareRequest out;
    const Status st = Decode(payload.substr(0, cut), &out);
    ASSERT_FALSE(st.ok()) << "cut=" << cut;
    EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
    EXPECT_NE(st.message().find("Prepare"), std::string::npos);
    EXPECT_NE(st.message().find("truncated"), std::string::npos);
  }
}

TEST(WireMessages, TrailingGarbageIsGoldenError) {
  FetchRequest in;
  in.query_id = 5;
  std::string payload = Encode(in).substr(kHeaderBytes);
  payload.push_back('!');
  FetchRequest out;
  const Status st = Decode(payload, &out);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.message().find("trailing bytes"), std::string::npos);
}

TEST(WireErrors, SqlPositionExtraction) {
  uint32_t line = 0, column = 0;
  EXPECT_TRUE(ExtractSqlPosition("expected expression at 1:27", &line,
                                 &column));
  EXPECT_EQ(line, 1u);
  EXPECT_EQ(column, 27u);

  EXPECT_TRUE(ExtractSqlPosition(
      "unknown column 'u.agee' at 2:14 (did you mean 'u.age'?) at 3:9",
      &line, &column));
  EXPECT_EQ(line, 3u);  // last position wins
  EXPECT_EQ(column, 9u);

  EXPECT_FALSE(ExtractSqlPosition("no position here", &line, &column));
  EXPECT_FALSE(ExtractSqlPosition("look at this", &line, &column));
  EXPECT_FALSE(ExtractSqlPosition("at 0:0 invalid", &line, &column));
}

TEST(WireErrors, ErrorFromStatusCarriesPosition) {
  const ErrorResponse error = ErrorFromStatus(
      Status::InvalidQuery("expected expression at 1:27"), 0);
  EXPECT_EQ(error.code, StatusCode::kInvalidQuery);
  EXPECT_EQ(error.sql_line, 1u);
  EXPECT_EQ(error.sql_column, 27u);
  const Status round = StatusFromError(error);
  EXPECT_EQ(round.code(), StatusCode::kInvalidQuery);
  EXPECT_EQ(round.message(), "expected expression at 1:27");
}

/// Mutation fuzz over every decoder: flip/trim/extend bytes of valid
/// payloads and feed random garbage; decoders must return a Status (never
/// crash, read out of bounds, or hang). ASan+UBSan referees in CI.
TEST(WireFuzz, MutatedPayloadsNeverCrashDecoders) {
  Rng rng(20260808);
  BindRequest bind;
  bind.stmt_id = 1;
  bind.portal_id = 2;
  bind.positional = {Value::Int64(7), Value::String("abc")};
  bind.named = {{"k", Value::Double(1.5)}};
  RowsResponse rows;
  rows.query_id = 9;
  rows.rows = {{Value::Int64(1), Value::String("x")}, {Value::Null()}};
  StatsOk stats;
  stats.counters = {{"a", 1}, {"b", 2}};
  PrepareOk prepare_ok;
  prepare_ok.columns = {{"c", ValueType::kInt64}};
  const std::vector<std::string> seeds = {
      Encode(HelloRequest{kProtocolVersion, "t", "tok"}).substr(kHeaderBytes),
      Encode(PrepareRequest{1, "SELECT 1"}).substr(kHeaderBytes),
      Encode(bind).Value().substr(kHeaderBytes),
      Encode(SubmitRequest{2, "paper"}).substr(kHeaderBytes),
      Encode(FetchRequest{3, 100}).substr(kHeaderBytes),
      Encode(rows).Value().substr(kHeaderBytes),
      Encode(stats).substr(kHeaderBytes),
      Encode(prepare_ok).substr(kHeaderBytes),
  };
  auto try_all_decoders = [](const std::string& payload) {
    HelloRequest hello;
    (void)Decode(payload, &hello);
    PrepareRequest prepare;
    (void)Decode(payload, &prepare);
    BindRequest bind_out;
    (void)Decode(payload, &bind_out);
    SubmitRequest submit;
    (void)Decode(payload, &submit);
    FetchRequest fetch;
    (void)Decode(payload, &fetch);
    CancelRequest cancel;
    (void)Decode(payload, &cancel);
    HelloOk hello_ok;
    (void)Decode(payload, &hello_ok);
    PrepareOk prepare_out;
    (void)Decode(payload, &prepare_out);
    SubmitOk submit_ok;
    (void)Decode(payload, &submit_ok);
    RowsResponse rows_out;
    (void)Decode(payload, &rows_out);
    StatsOk stats_out;
    (void)Decode(payload, &stats_out);
    ErrorResponse error;
    (void)Decode(payload, &error);
  };
  for (int iter = 0; iter < 3000; ++iter) {
    std::string payload = seeds[rng.NextBounded(seeds.size())];
    switch (rng.NextBounded(4)) {
      case 0:  // flip a few bytes
        for (int k = 0; k < 3 && !payload.empty(); ++k) {
          payload[rng.NextBounded(payload.size())] =
              static_cast<char>(rng.NextBounded(256));
        }
        break;
      case 1:  // truncate
        payload.resize(rng.NextBounded(payload.size() + 1));
        break;
      case 2:  // extend with garbage
        for (int k = 0; k < 5; ++k) {
          payload.push_back(static_cast<char>(rng.NextBounded(256)));
        }
        break;
      case 3: {  // pure garbage
        payload.assign(rng.NextBounded(64), '\0');
        for (char& c : payload) c = static_cast<char>(rng.NextBounded(256));
        break;
      }
    }
    try_all_decoders(payload);
  }
}

}  // namespace
}  // namespace stems::server::wire
