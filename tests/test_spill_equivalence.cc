// Spill equivalence property: for every registered routing policy and a
// spread of queries, running with a tight global memory budget (25% of the
// total build size) plus spilling enabled must produce a result set
// identical to the unlimited-memory run — exactness is the whole point of
// spilling over eviction. Checked for both probe policies (synchronous
// fault-in and deferred bounce-back) and for scalar and batched routing,
// mirroring tests/test_batch_equivalence.cc.
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "reference/brute_force.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;

/// A case builds its tables into a fresh engine and returns the query;
/// `build_rows` is the total number of build tuples (the budget baseline).
struct SpillCase {
  std::string name;
  size_t build_rows;
  std::function<QuerySpec(Engine&)> make;
};

void AddIntTable(Engine& engine, const std::string& name,
                 const std::vector<std::string>& cols,
                 const std::vector<std::vector<int64_t>>& rows,
                 std::vector<AccessMethodSpec> ams) {
  TableDef def;
  def.name = name;
  def.schema = IntSchema(cols);
  def.access_methods = std::move(ams);
  ASSERT_TRUE(engine.AddTable(std::move(def), IntRows(rows)).ok());
}

std::vector<std::vector<int64_t>> RandomRows(Rng& rng, int n, int cols,
                                             int64_t domain) {
  std::vector<std::vector<int64_t>> rows;
  for (int r = 0; r < n; ++r) {
    std::vector<int64_t> row;
    for (int c = 0; c < cols; ++c) row.push_back(rng.NextInt(0, domain));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<SpillCase> Cases() {
  std::vector<SpillCase> cases;

  cases.push_back({"equijoin2", 240, [](Engine& e) {
                     Rng rng(201);
                     AddIntTable(e, "R", {"k", "a"},
                                 RandomRows(rng, 120, 2, 30),
                                 {ScanSpec("R.scan")});
                     AddIntTable(e, "S", {"x", "p"},
                                 RandomRows(rng, 120, 2, 30),
                                 {ScanSpec("S.scan")});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.x");
                     return qb.Build().ValueOrDie();
                   }});

  cases.push_back({"chain3_selection", 180, [](Engine& e) {
                     Rng rng(202);
                     AddIntTable(e, "R", {"a", "b"}, RandomRows(rng, 60, 2, 10),
                                 {ScanSpec("R.scan")});
                     AddIntTable(e, "S", {"x", "y"}, RandomRows(rng, 60, 2, 10),
                                 {ScanSpec("S.scan")});
                     AddIntTable(e, "T", {"u", "v"}, RandomRows(rng, 60, 2, 10),
                                 {ScanSpec("T.scan")});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R").AddTable("S").AddTable("T");
                     qb.AddJoin("R.b", "S.x").AddJoin("S.y", "T.u");
                     qb.AddSelection("R.a", CompareOp::kLe, Value::Int64(6));
                     return qb.Build().ValueOrDie();
                   }});

  cases.push_back({"self_join", 60, [](Engine& e) {
                     Rng rng(203);
                     AddIntTable(e, "R", {"g", "v"}, RandomRows(rng, 60, 2, 8),
                                 {ScanSpec("R.scan")});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R", "l").AddTable("R", "r");
                     qb.AddJoin("l.g", "r.g");
                     return qb.Build().ValueOrDie();
                   }});

  // Index AM on T: spilled partitions interact with prior probers, probe
  // completion through the index, and parking.
  cases.push_back({"index_am", 140, [](Engine& e) {
                     Rng rng(204);
                     AddIntTable(e, "R", {"a"}, RandomRows(rng, 80, 1, 40),
                                 {ScanSpec("R.scan")});
                     AddIntTable(e, "T", {"key", "w"},
                                 RandomRows(rng, 60, 2, 40),
                                 {ScanSpec("T.scan"), IndexSpec("T.idx", {0})});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
                     return qb.Build().ValueOrDie();
                   }});

  // Range join: probes have no equality binding on the partitioning column
  // and must fault in every spilled partition.
  cases.push_back({"range_join", 60, [](Engine& e) {
                     Rng rng(205);
                     AddIntTable(e, "R", {"a"}, RandomRows(rng, 30, 1, 12),
                                 {ScanSpec("R.scan")});
                     AddIntTable(e, "S", {"x"}, RandomRows(rng, 30, 1, 12),
                                 {ScanSpec("S.scan")});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R").AddTable("S");
                     qb.AddJoin("R.a", "S.x", CompareOp::kLe);
                     return qb.Build().ValueOrDie();
                   }});

  return cases;
}

struct RunOutcome {
  std::set<std::string> keys;
  std::vector<std::string> duplicates;
  std::set<std::string> expected;  ///< brute-force ground truth
  QueryStats stats;
};

RunOutcome RunCase(const SpillCase& c, const std::string& policy,
                   size_t budget, SpillProbePolicy probe_policy,
                   size_t batch_size) {
  Engine engine;
  QuerySpec query = c.make(engine);
  RunOptions options;
  options.policy = policy;
  options.policy_params.seed = 42;
  options.batch_size = batch_size;
  options.exec.scan_defaults.period = Micros(10);
  options.exec.index_defaults.latency =
      std::make_shared<FixedLatency>(Micros(50));
  if (budget > 0) {
    options.memory_budget_entries = budget;
    options.spill = true;
    options.exec.eddy.spill.probe_policy = probe_policy;
  }
  auto submitted = engine.Submit(query, options);
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  QueryHandle handle = std::move(submitted).ValueOrDie();
  handle.Wait();

  RunOutcome out;
  out.keys = KeysOf(handle.eddy()->results(), &out.duplicates);
  out.expected = BruteForceResultSet(query, engine.store());
  out.stats = handle.Stats();
  return out;
}

TEST(SpillEquivalenceTest, AllPoliciesTightBudgetMatchesUnlimited) {
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    for (const SpillCase& c : Cases()) {
      SCOPED_TRACE("policy=" + policy + " case=" + c.name);
      RunOutcome unlimited = RunCase(c, policy, /*budget=*/0,
                                     SpillProbePolicy::kFaultIn, 1);
      if (::testing::Test::HasFatalFailure()) return;
      // The unlimited run anchors correctness against ground truth.
      EXPECT_EQ(unlimited.keys, unlimited.expected);
      EXPECT_TRUE(unlimited.duplicates.empty());
      EXPECT_EQ(unlimited.stats.constraint_violations, 0u);
      EXPECT_EQ(unlimited.stats.spill_ios, 0u);

      const size_t budget = c.build_rows / 4;  // 25% of total build size
      for (SpillProbePolicy pp :
           {SpillProbePolicy::kFaultIn, SpillProbePolicy::kBounce}) {
        for (size_t batch_size : {size_t{1}, size_t{8}}) {
          SCOPED_TRACE(std::string("probe_policy=") +
                       (pp == SpillProbePolicy::kFaultIn ? "fault_in"
                                                         : "bounce") +
                       " batch_size=" + std::to_string(batch_size));
          RunOutcome spilled = RunCase(c, policy, budget, pp, batch_size);
          EXPECT_EQ(spilled.keys, unlimited.keys);
          EXPECT_TRUE(spilled.duplicates.empty());
          EXPECT_EQ(spilled.stats.constraint_violations, 0u);
          EXPECT_EQ(spilled.stats.parked, 0u);
          // Memory pressure was real: the governor spilled and the run
          // files saw disk traffic. (Resident entries may transiently
          // exceed the budget around a fault-in; exactness never depends
          // on the budget being airtight.)
          EXPECT_GT(spilled.stats.spill_ios, 0u);
          EXPECT_GT(spilled.stats.bytes_spilled, 0u);
        }
      }
    }
  }
}

// The acceptance bound of the larger-than-memory workload: with the
// default fault-in policy, virtual completion time under a 25% budget must
// stay within 5x of the unlimited run. Sized so the fixed per-page I/O
// latencies amortize over the build (the equivalence cases above are
// deliberately tiny and would be latency-dominated).
TEST(SpillEquivalenceTest, FaultInRuntimeWithinFiveXOfUnlimited) {
  const SpillCase c{"equijoin_large", 800, [](Engine& e) {
                      Rng rng(206);
                      AddIntTable(e, "R", {"k", "a"},
                                  RandomRows(rng, 400, 2, 200),
                                  {ScanSpec("R.scan")});
                      AddIntTable(e, "S", {"x", "p"},
                                  RandomRows(rng, 400, 2, 200),
                                  {ScanSpec("S.scan")});
                      QueryBuilder qb(e.catalog());
                      qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.x");
                      return qb.Build().ValueOrDie();
                    }};
  RunOutcome unlimited =
      RunCase(c, "nary_shj", 0, SpillProbePolicy::kFaultIn, 1);
  RunOutcome spilled = RunCase(c, "nary_shj", c.build_rows / 4,
                               SpillProbePolicy::kFaultIn, 1);
  EXPECT_EQ(spilled.keys, unlimited.keys);
  ASSERT_GT(unlimited.stats.completed_at, 0);
  ASSERT_NE(unlimited.stats.completed_at, kSimTimeNever);
  ASSERT_NE(spilled.stats.completed_at, kSimTimeNever);
  EXPECT_GT(spilled.stats.spill_ios, 0u);
  EXPECT_LE(spilled.stats.completed_at, unlimited.stats.completed_at * 5);
}

// Validation: spill knobs are checked, and the spilling victim policy
// cannot be requested without run files to spill to.
TEST(SpillEquivalenceTest, OptionValidation) {
  RunOptions o;
  o.exec.eddy.memory.victim_policy = MemoryVictimPolicy::kSpillColdest;
  EXPECT_FALSE(o.Validate().ok());
  o.spill = true;
  EXPECT_TRUE(o.Validate().ok());
  o.exec.eddy.spill.partitions = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.exec.eddy.spill.partitions = 1 << 16;  // exceeds the page-key packing
  EXPECT_FALSE(o.Validate().ok());
  o.exec.eddy.spill.partitions = 8;
  o.exec.eddy.spill.page_entries = 0;
  EXPECT_FALSE(o.Validate().ok());
  o.exec.eddy.spill.page_entries = 64;
  o.exec.eddy.spill.pool_frames = 0;
  EXPECT_FALSE(o.Validate().ok());

  RunOptions preset = RunOptions::LargerThanMemory(512);
  EXPECT_TRUE(preset.Validate().ok());
  EXPECT_TRUE(preset.spill);
  EXPECT_EQ(preset.memory_budget_entries, 512u);
}

}  // namespace
}  // namespace stems
