// Planner tests: §2.2 module instantiation and configuration overrides.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stems {
namespace {

using testing::FastConfig;
using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::ScanSpec;
using testing::TestDb;

class PlannerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.AddTable("R", IntSchema({"a"}), IntRows({{1}}),
                 {ScanSpec("R.scan"), ScanSpec("R.scan2")});
    db_.AddTable("S", IntSchema({"x", "y"}), IntRows({{1, 1}}),
                 {ScanSpec("S.scan"), IndexSpec("S.idx", {0})});
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S", "s1").AddTable("S", "s2");
    qb.AddJoin("R.a", "s1.x").AddJoin("s1.y", "s2.x");
    qb.AddSelection("R.a", CompareOp::kGe, Value::Int64(0));
    query_ = qb.Build().ValueOrDie();
  }

  TestDb db_;
  QuerySpec query_;
};

TEST_F(PlannerTest, InstantiatesModulesPerPaperSection22) {
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, FastConfig()).ValueOrDie();

  int stems = 0, scans = 0, indexes = 0, sms = 0;
  for (const auto& m : eddy->modules()) {
    switch (m->kind()) {
      case ModuleKind::kStem:
        ++stems;
        break;
      case ModuleKind::kScanAm:
        ++scans;
        break;
      case ModuleKind::kIndexAm:
        ++indexes;
        break;
      case ModuleKind::kSelection:
        ++sms;
        break;
      default:
        break;
    }
  }
  // One SteM per base TABLE (S appears twice in FROM but gets one SteM).
  EXPECT_EQ(stems, 2);
  // Every usable access method gets an AM.
  EXPECT_EQ(scans, 3);   // R.scan, R.scan2, S.scan
  EXPECT_EQ(indexes, 1); // S.idx
  // One SM per selection predicate.
  EXPECT_EQ(sms, 1);

  // The shared SteM serves both S slots.
  Stem* s_stem = eddy->StemForTable("S");
  ASSERT_NE(s_stem, nullptr);
  EXPECT_TRUE(s_stem->ServesSlot(1));
  EXPECT_TRUE(s_stem->ServesSlot(2));
  EXPECT_EQ(eddy->StemForSlot(1), eddy->StemForSlot(2));
}

TEST_F(PlannerTest, SelectionModulesCanBeDisabled) {
  ExecutionConfig config = FastConfig();
  config.create_selection_modules = false;
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  EXPECT_TRUE(eddy->selection_modules().empty());
  // Correctness is unaffected: SteM probes enforce selections.
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->RunToCompletion();
  EXPECT_EQ(KeysOf(eddy->results(), nullptr),
            BruteForceResultSet(query_, db_.store));
}

TEST_F(PlannerTest, StemOverridesApply) {
  ExecutionConfig config = FastConfig();
  StemOptions s_opts;
  s_opts.max_entries = 123;
  config.stem_overrides["S"] = s_opts;
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, config).ValueOrDie();
  // Indirect check: the override changed the module (observable via
  // behaviour elsewhere); here we simply verify both SteMs exist and the
  // planner did not crash wiring overrides.
  EXPECT_NE(eddy->StemForTable("S"), nullptr);
  EXPECT_NE(eddy->StemForTable("R"), nullptr);
}

TEST_F(PlannerTest, BuildRequiredFollowsTable2) {
  Simulation sim;
  auto eddy = PlanQuery(query_, db_.store, &sim, FastConfig()).ValueOrDie();
  // R has two scan AMs -> build required; S has an index AM -> required.
  EXPECT_TRUE(eddy->BuildRequired(0));
  EXPECT_TRUE(eddy->BuildRequired(1));
  EXPECT_TRUE(eddy->BuildRequired(2));
}

TEST_F(PlannerTest, TooManyPredicatesRejected) {
  TestDb db;
  db.AddTable("A", IntSchema({"x"}), IntRows({{1}}), {ScanSpec("a")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A");
  for (int i = 0; i < 65; ++i) {
    qb.AddSelection("A.x", CompareOp::kGe, Value::Int64(-i));
  }
  QuerySpec q = qb.Build().ValueOrDie();
  Simulation sim;
  auto planned = PlanQuery(q, db.store, &sim, FastConfig());
  EXPECT_FALSE(planned.ok());
}

}  // namespace
}  // namespace stems
