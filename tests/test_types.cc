// Unit tests: Value, Schema, Row (including EOT semantics).
#include <gtest/gtest.h>

#include "types/row.h"
#include "types/schema.h"
#include "types/value.h"

namespace stems {
namespace {

TEST(ValueTest, TypesAndAccessors) {
  EXPECT_TRUE(Value::Null().is_null());
  EXPECT_EQ(Value::Int64(42).AsInt64(), 42);
  EXPECT_DOUBLE_EQ(Value::Double(2.5).AsDouble(), 2.5);
  EXPECT_EQ(Value::String("hi").AsString(), "hi");
  EXPECT_TRUE(Value::Eot().is_eot());
}

TEST(ValueTest, CrossNumericEquality) {
  EXPECT_EQ(Value::Int64(3), Value::Double(3.0));
  EXPECT_NE(Value::Int64(3), Value::Double(3.5));
  EXPECT_EQ(Value::Int64(3).Hash(), Value::Double(3.0).Hash());
}

TEST(ValueTest, EotOnlyEqualsEot) {
  EXPECT_EQ(Value::Eot(), Value::Eot());
  EXPECT_NE(Value::Eot(), Value::Int64(0));
  EXPECT_NE(Value::Eot(), Value::Null());
}

TEST(ValueTest, TotalOrder) {
  EXPECT_LT(Value::Null(), Value::Int64(-100));
  EXPECT_LT(Value::Int64(1), Value::Int64(2));
  EXPECT_LT(Value::Int64(5), Value::String("a"));
  EXPECT_LT(Value::String("a"), Value::String("b"));
  EXPECT_LT(Value::String("z"), Value::Eot());
  EXPECT_FALSE(Value::Eot() < Value::Eot());
}

TEST(ValueTest, ToString) {
  EXPECT_EQ(Value::Null().ToString(), "NULL");
  EXPECT_EQ(Value::Int64(-7).ToString(), "-7");
  EXPECT_EQ(Value::String("x").ToString(), "'x'");
  EXPECT_EQ(Value::Eot().ToString(), "EOT");
}

TEST(SchemaTest, FindColumn) {
  Schema s({{"a", ValueType::kInt64}, {"b", ValueType::kString}});
  EXPECT_EQ(s.num_columns(), 2u);
  EXPECT_EQ(*s.FindColumn("b"), 1u);
  EXPECT_FALSE(s.FindColumn("missing").has_value());
  EXPECT_EQ(s.ToString(), "(a, b)");
}

TEST(RowTest, ContentEqualityAndHash) {
  RowRef a = MakeRow({Value::Int64(1), Value::String("x")});
  RowRef b = MakeRow({Value::Int64(1), Value::String("x")});
  RowRef c = MakeRow({Value::Int64(2), Value::String("x")});
  EXPECT_EQ(*a, *b);
  EXPECT_EQ(a->Hash(), b->Hash());
  EXPECT_FALSE(*a == *c);
}

TEST(RowTest, EotFlagExplicitAndInferred) {
  // Inferred from an EOT marker field.
  RowRef marked = MakeRow({Value::Int64(5), Value::Eot()});
  EXPECT_TRUE(marked->IsEot());
  // Explicit flag for all-bound EOTs (single-column tables).
  RowRef flagged = MakeEotRowRef({Value::Int64(5)});
  EXPECT_TRUE(flagged->IsEot());
  // The EOT [5] must NOT equal the data row [5] — it would otherwise join
  // as phantom data (regression test for a real bug).
  RowRef data = MakeRow({Value::Int64(5)});
  EXPECT_FALSE(data->IsEot());
  EXPECT_FALSE(*flagged == *data);
  EXPECT_NE(flagged->Hash(), data->Hash());
}

TEST(RowTest, ToStringMarksEot) {
  EXPECT_EQ(MakeEotRowRef({Value::Int64(5)})->ToString(), "EOT[5]");
  EXPECT_EQ(MakeRow({Value::Int64(5)})->ToString(), "[5]");
}

}  // namespace
}  // namespace stems
