// Unit tests: Tuple, TupleState and timestamp semantics (paper Defs. 1-3,
// §3.1, §3.5).
#include <gtest/gtest.h>

#include "runtime/metrics.h"
#include "runtime/tuple.h"

namespace stems {
namespace {

TEST(TupleTest, SingletonBasics) {
  TuplePtr t = Tuple::MakeSingleton(3, 1, MakeRow({Value::Int64(5)}));
  EXPECT_TRUE(t->IsSingleton());
  EXPECT_EQ(t->SingletonSlot(), 1);
  EXPECT_EQ(t->spanned_mask(), 0b010u);
  EXPECT_TRUE(t->Spans(1));
  EXPECT_FALSE(t->Spans(0));
  EXPECT_EQ(t->SpanSize(), 1);
  EXPECT_EQ(t->ValueAt(1, 0)->AsInt64(), 5);
  EXPECT_EQ(t->ValueAt(0, 0), nullptr);
  EXPECT_EQ(t->ValueAt(1, 7), nullptr);
}

TEST(TupleTest, SeedTuple) {
  TuplePtr seed = Tuple::MakeSeed(2);
  EXPECT_TRUE(seed->is_seed());
  EXPECT_EQ(seed->spanned_mask(), 0u);
  EXPECT_EQ(seed->SingletonSlot(), -1);
}

TEST(TupleTest, TimestampInfinityBeforeBuild) {
  // Paper §3.1: before building, ts is infinity.
  TuplePtr t = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(1)}));
  EXPECT_EQ(t->Timestamp(), kTsInfinity);
  EXPECT_FALSE(t->AllComponentsBuilt());
  t->SetBuilt(0, 17);
  EXPECT_EQ(t->Timestamp(), 17u);
  EXPECT_TRUE(t->AllComponentsBuilt());
}

TEST(TupleTest, CompositeTimestampIsLastArrival) {
  // Paper §3.1: a composite's timestamp is its last-arriving component's.
  TuplePtr a = Tuple::MakeSingleton(3, 0, MakeRow({Value::Int64(1)}));
  a->SetBuilt(0, 5);
  TuplePtr ab = a->ConcatWith(1, MakeRow({Value::Int64(2)}), 9);
  EXPECT_EQ(ab->Timestamp(), 9u);
  TuplePtr abc = ab->ConcatWith(2, MakeRow({Value::Int64(3)}), 7);
  EXPECT_EQ(abc->Timestamp(), 9u);
  // An unbuilt component makes the whole tuple "infinity".
  TuplePtr with_unbuilt = a->ConcatWith(1, MakeRow({Value::Int64(2)}),
                                        kTsInfinity);
  EXPECT_EQ(with_unbuilt->Timestamp(), kTsInfinity);
}

TEST(TupleTest, ConcatPreservesStateAndPriority) {
  TuplePtr a = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(1)}));
  a->MarkPredicatePassed(3);
  a->set_prioritized(true);
  TuplePtr ab = a->ConcatWith(1, MakeRow({Value::Int64(2)}), 1);
  EXPECT_TRUE(ab->PassedPredicate(3));
  EXPECT_TRUE(ab->prioritized());
  EXPECT_EQ(ab->spanned_mask(), 0b11u);
  // The original is untouched.
  EXPECT_EQ(a->spanned_mask(), 0b01u);
}

TEST(TupleTest, PriorProberState) {
  TuplePtr t = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(1)}));
  EXPECT_FALSE(t->IsPriorProber());
  t->MarkPriorProber(1);
  EXPECT_TRUE(t->IsPriorProber());
  EXPECT_EQ(t->probe_completion_slot(), 1);
  EXPECT_FALSE(t->probe_completed());
  t->MarkProbeCompleted();
  EXPECT_TRUE(t->probe_completed());
}

TEST(TupleTest, RetargetSingletonMovesComponent) {
  TuplePtr t = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(1)}));
  t->SetBuilt(0, 4);
  t->MarkPredicatePassed(0);
  TuplePtr moved = t->RetargetSingleton(1);
  EXPECT_TRUE(moved->Spans(1));
  EXPECT_FALSE(moved->Spans(0));
  EXPECT_EQ(moved->component(1).timestamp, 4u);
  // Predicate state must not transfer (bits refer to the old slot).
  EXPECT_FALSE(moved->PassedPredicate(0));
}

TEST(TupleTest, EotDetection) {
  TuplePtr t = Tuple::MakeSingleton(
      2, 0, MakeEotRowRef({Value::Int64(1), Value::Eot()}));
  EXPECT_TRUE(t->IsEot());
}

TEST(TupleTest, TimestampAuthorityMonotone) {
  TimestampAuthority ts;
  BuildTs a = ts.Issue();
  BuildTs b = ts.Issue();
  EXPECT_LT(a, b);
  EXPECT_EQ(ts.last_issued(), b);
}

TEST(CounterSeriesTest, StepSemantics) {
  CounterSeries s;
  s.Increment(10);
  s.Increment(10);
  s.Increment(20, 3);
  EXPECT_EQ(s.total(), 5);
  EXPECT_EQ(s.ValueAt(5), 0);
  EXPECT_EQ(s.ValueAt(10), 2);
  EXPECT_EQ(s.ValueAt(15), 2);
  EXPECT_EQ(s.ValueAt(20), 5);
  EXPECT_EQ(s.ValueAt(100), 5);
  EXPECT_EQ(s.TimeToReach(1), 10);
  EXPECT_EQ(s.TimeToReach(5), 20);
  EXPECT_EQ(s.TimeToReach(6), kSimTimeNever);
}

TEST(CounterSeriesTest, Sampling) {
  CounterSeries s;
  s.Increment(0);
  s.Increment(100, 9);
  auto samples = s.Sample(100, 3);
  EXPECT_EQ(samples, (std::vector<int64_t>{1, 1, 10}));
}

TEST(MetricsRecorderTest, NamedSeries) {
  MetricsRecorder m;
  m.Count("a", 5);
  m.Count("a", 7, 2);
  EXPECT_TRUE(m.Has("a"));
  EXPECT_FALSE(m.Has("b"));
  EXPECT_EQ(m.Series("a").total(), 3);
  EXPECT_EQ(m.Series("missing").total(), 0);  // empty sentinel
}

}  // namespace
}  // namespace stems
