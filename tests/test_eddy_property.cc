// Property-based correctness: randomized queries, data, access methods,
// timings and policies must all satisfy Theorems 1 and 2 (no duplicates, no
// missing results) against the brute-force evaluator.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::IndexSpec;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::RunEddy;
using testing::ScanSpec;
using testing::TestDb;

struct RandomCase {
  TestDb db;
  QuerySpec query;
  ExecutionConfig config;
};

/// Generates a random valid SPJ query with data.
class CaseGenerator {
 public:
  explicit CaseGenerator(uint64_t seed) : rng_(seed) {}

  void Generate(RandomCase* out) {
    const int num_tables = static_cast<int>(rng_.NextInt(2, 4));
    std::vector<std::string> names;
    std::vector<int> num_cols(num_tables);
    std::vector<std::vector<std::vector<int64_t>>> data(num_tables);

    for (int t = 0; t < num_tables; ++t) {
      names.push_back(std::string(1, static_cast<char>('A' + t)));
      num_cols[t] = static_cast<int>(rng_.NextInt(1, 3));
      const int rows = static_cast<int>(rng_.NextInt(0, 18));
      for (int r = 0; r < rows; ++r) {
        std::vector<int64_t> row;
        for (int c = 0; c < num_cols[t]; ++c) row.push_back(rng_.NextInt(0, 6));
        data[t].push_back(std::move(row));
      }
    }

    // Join edges: a random spanning tree, possibly plus one extra edge
    // (cyclic query).
    struct Edge {
      int ta, ca, tb, cb;
      CompareOp op;
    };
    std::vector<Edge> edges;
    for (int t = 1; t < num_tables; ++t) {
      const int prev = static_cast<int>(rng_.NextInt(0, t - 1));
      edges.push_back({prev, static_cast<int>(rng_.NextInt(0, num_cols[prev] - 1)),
                       t, static_cast<int>(rng_.NextInt(0, num_cols[t] - 1)),
                       rng_.NextBool(0.85) ? CompareOp::kEq : CompareOp::kLe});
    }
    if (num_tables >= 3 && rng_.NextBool(0.35)) {
      int a = static_cast<int>(rng_.NextInt(0, num_tables - 1));
      int b = static_cast<int>(rng_.NextInt(0, num_tables - 1));
      if (a != b) {
        edges.push_back({a, static_cast<int>(rng_.NextInt(0, num_cols[a] - 1)),
                         b, static_cast<int>(rng_.NextInt(0, num_cols[b] - 1)),
                         CompareOp::kEq});
      }
    }

    // Access methods: scans for most tables; sometimes an extra or an
    // exclusive index AM on an equi-joined column.
    std::vector<std::vector<AccessMethodSpec>> ams(num_tables);
    for (int t = 0; t < num_tables; ++t) {
      std::optional<int> indexable_col;
      for (const Edge& e : edges) {
        if (e.op != CompareOp::kEq) continue;
        if (e.ta == t) indexable_col = e.ca;
        if (e.tb == t) indexable_col = e.cb;
      }
      const double coin = rng_.NextDouble();
      if (indexable_col.has_value() && coin < 0.2) {
        // Index-only table; valid as long as some neighbour can seed it —
        // guaranteed because every other table gets a scan below.
        ams[t].push_back(IndexSpec(names[t] + ".idx", {*indexable_col}));
      } else {
        ams[t].push_back(ScanSpec(names[t] + ".scan"));
        if (indexable_col.has_value() && coin > 0.7) {
          ams[t].push_back(IndexSpec(names[t] + ".idx", {*indexable_col}));
        }
        if (coin > 0.92) {
          ams[t].push_back(ScanSpec(names[t] + ".scan2"));
        }
      }
    }
    // At most one index-only table (keeps bind order trivially valid).
    bool seen_index_only = false;
    for (int t = 0; t < num_tables; ++t) {
      const bool index_only = ams[t].size() == 1 &&
                              ams[t][0].kind == AccessMethodKind::kIndex;
      if (index_only && seen_index_only) {
        ams[t].insert(ams[t].begin(), ScanSpec(names[t] + ".scan"));
      }
      seen_index_only = seen_index_only || index_only;
    }

    for (int t = 0; t < num_tables; ++t) {
      std::vector<std::string> cols;
      for (int c = 0; c < num_cols[t]; ++c) {
        cols.push_back("c" + std::to_string(c));
      }
      out->db.AddTable(names[t], IntSchema(cols),
                       stems::testing::IntRows(data[t]), ams[t]);
    }

    QueryBuilder qb(out->db.catalog);
    for (int t = 0; t < num_tables; ++t) qb.AddTable(names[t]);
    for (const Edge& e : edges) {
      qb.AddJoin(names[e.ta] + ".c" + std::to_string(e.ca),
                 names[e.tb] + ".c" + std::to_string(e.cb), e.op);
    }
    // Random selections.
    const int num_sel = static_cast<int>(rng_.NextInt(0, 2));
    for (int i = 0; i < num_sel; ++i) {
      const int t = static_cast<int>(rng_.NextInt(0, num_tables - 1));
      const int c = static_cast<int>(rng_.NextInt(0, num_cols[t] - 1));
      const CompareOp op =
          rng_.NextBool() ? CompareOp::kLe : CompareOp::kGe;
      qb.AddSelection(names[t] + ".c" + std::to_string(c), op,
                      Value::Int64(rng_.NextInt(0, 6)));
    }
    auto built = qb.Build();
    ASSERT_TRUE(built.ok()) << built.status().ToString();
    out->query = std::move(built).ValueOrDie();

    // Random timings.
    out->config.scan_defaults.period = Micros(rng_.NextInt(1, 200));
    out->config.index_defaults.latency =
        std::make_shared<FixedLatency>(Micros(rng_.NextInt(10, 2000)));
    out->config.index_defaults.concurrency =
        static_cast<int>(rng_.NextInt(1, 4));
    if (rng_.NextBool(0.4)) {
      StemOptions bounce_all;
      bounce_all.bounce_mode = ProbeBounceMode::kAlways;
      for (int t = 0; t < num_tables; ++t) {
        out->config.stem_overrides[names[t]] = bounce_all;
      }
    }
    if (rng_.NextBool(0.3)) {
      out->config.stem_defaults.index_impl = StemIndexImpl::kAdaptive;
      out->config.stem_defaults.adaptive_threshold = 4;
    }
  }

 private:
  Rng rng_;
};

class EddyPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(EddyPropertyTest, MatchesBruteForceAllPolicies) {
  for (PolicyKind kind : {PolicyKind::kNaryShj, PolicyKind::kLottery,
                          PolicyKind::kBenefitCost}) {
    RandomCase c;
    CaseGenerator gen(GetParam());
    gen.Generate(&c);
    if (::testing::Test::HasFatalFailure()) return;
    SCOPED_TRACE("seed=" + std::to_string(GetParam()) + " policy=" +
                 std::to_string(static_cast<int>(kind)));
    EddyRun run =
        RunEddy(c.query, c.db, c.config, MakePolicy(kind, GetParam()));
    const auto expected = BruteForceResultSet(c.query, c.db.store);
    EXPECT_TRUE(run.duplicates.empty())
        << run.duplicates.size() << " duplicates; query " << c.query.ToString();
    EXPECT_EQ(run.keys, expected) << "query " << c.query.ToString();
    EXPECT_EQ(run.violations, 0u) << "query " << c.query.ToString();
    EXPECT_EQ(run.parked, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomizedQueries, EddyPropertyTest,
                         ::testing::Range<uint64_t>(0, 60));

}  // namespace
}  // namespace stems
