// Unit tests: catalog, query building, join graph, bind-order validation.
#include <gtest/gtest.h>

#include "query/join_graph.h"
#include "query/validation.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;
using testing::TestDb;

TEST(CatalogTest, DuplicateTableRejected) {
  Catalog c;
  EXPECT_TRUE(c.AddTable({"R", IntSchema({"a"}), {ScanSpec("s")}}).ok());
  EXPECT_EQ(c.AddTable({"R", IntSchema({"a"}), {ScanSpec("s")}}).code(),
            StatusCode::kAlreadyExists);
}

TEST(CatalogTest, IndexAmRequiresValidBindColumns) {
  Catalog c;
  EXPECT_EQ(
      c.AddTable({"R", IntSchema({"a"}), {IndexSpec("i", {})}}).code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      c.AddTable({"S", IntSchema({"a"}), {IndexSpec("i", {3})}}).code(),
      StatusCode::kOutOfRange);
}

TEST(CatalogTest, AmKindPredicates) {
  TableDef both{"T", IntSchema({"a"}), {ScanSpec("s"), IndexSpec("i", {0})}};
  EXPECT_TRUE(both.HasScanAm());
  EXPECT_TRUE(both.HasIndexAm());
  TableDef scan_only{"U", IntSchema({"a"}), {ScanSpec("s")}};
  EXPECT_FALSE(scan_only.HasIndexAm());
}

class QueryBuilderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.AddTable("R", IntSchema({"a", "b"}), IntRows({}), {ScanSpec("R.s")});
    db_.AddTable("S", IntSchema({"x"}), IntRows({}), {ScanSpec("S.s")});
  }
  TestDb db_;
};

TEST_F(QueryBuilderTest, ResolvesQualifiedColumns) {
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  auto q = qb.Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.Value().num_slots(), 2u);
  EXPECT_EQ(q.Value().predicates()[0].lhs().table_slot, 0);
  EXPECT_EQ(q.Value().predicates()[0].rhs().table_slot, 1);
}

TEST_F(QueryBuilderTest, ErrorsAreReported) {
  {
    QueryBuilder qb(db_.catalog);
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kInvalidQuery);
  }
  {
    QueryBuilder qb(db_.catalog);
    qb.AddTable("Nope");
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kNotFound);
  }
  {
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("R");  // duplicate alias
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kInvalidQuery);
  }
  {
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S").AddJoin("R.zzz", "S.x");
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kNotFound);
  }
  {
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S").AddJoin("unqualified", "S.x");
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kInvalidArgument);
  }
  {
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S").AddJoin("R.a", "R.b");  // same slot
    EXPECT_EQ(qb.Build().status().code(), StatusCode::kInvalidQuery);
  }
}

TEST_F(QueryBuilderTest, SelfJoinAliases) {
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R", "r1").AddTable("R", "r2").AddJoin("r1.a", "r2.b");
  auto q = qb.Build();
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(q.Value().slots()[0].table_name, "R");
  EXPECT_EQ(q.Value().slots()[1].table_name, "R");
}

TEST_F(QueryBuilderTest, HelperAccessors) {
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  qb.AddSelection("R.b", CompareOp::kGt, Value::Int64(0));
  QuerySpec q = qb.Build().ValueOrDie();
  EXPECT_EQ(q.JoinPredicatesOn(0).size(), 1u);
  EXPECT_EQ(q.JoinPredicatesOn(1).size(), 1u);
  EXPECT_EQ(q.SelectionsOn(0).size(), 1u);
  EXPECT_EQ(q.SelectionsOn(1).size(), 0u);
  EXPECT_EQ(q.SlotOf("S").ValueOrDie(), 1);
  EXPECT_EQ(q.full_span_mask(), 0b11u);
}

TEST(JoinGraphTest, ChainIsAcyclic) {
  TestDb db;
  db.AddTable("A", IntSchema({"x"}), {}, {ScanSpec("a")});
  db.AddTable("B", IntSchema({"x"}), {}, {ScanSpec("b")});
  db.AddTable("C", IntSchema({"x"}), {}, {ScanSpec("c")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B").AddTable("C");
  qb.AddJoin("A.x", "B.x").AddJoin("B.x", "C.x");
  QuerySpec q = qb.Build().ValueOrDie();
  JoinGraph g(q);
  EXPECT_TRUE(g.IsConnected());
  EXPECT_FALSE(g.IsCyclic());
  EXPECT_EQ(g.Neighbors(1), (std::vector<int>{0, 2}));
  EXPECT_EQ(g.SpanningTrees().size(), 1u);
}

TEST(JoinGraphTest, TriangleIsCyclicWithThreeSpanningTrees) {
  TestDb db;
  db.AddTable("A", IntSchema({"x"}), {}, {ScanSpec("a")});
  db.AddTable("B", IntSchema({"x"}), {}, {ScanSpec("b")});
  db.AddTable("C", IntSchema({"x"}), {}, {ScanSpec("c")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B").AddTable("C");
  qb.AddJoin("A.x", "B.x").AddJoin("B.x", "C.x").AddJoin("C.x", "A.x");
  QuerySpec q = qb.Build().ValueOrDie();
  JoinGraph g(q);
  EXPECT_TRUE(g.IsCyclic());
  EXPECT_EQ(g.SpanningTrees().size(), 3u);
}

TEST(JoinGraphTest, DisconnectedGraph) {
  TestDb db;
  db.AddTable("A", IntSchema({"x"}), {}, {ScanSpec("a")});
  db.AddTable("B", IntSchema({"x"}), {}, {ScanSpec("b")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B");  // cross product
  QuerySpec q = qb.Build().ValueOrDie();
  JoinGraph g(q);
  EXPECT_FALSE(g.IsConnected());
  EXPECT_TRUE(g.SpanningTrees().empty());
}

TEST(ValidationTest, ScanTablesAlwaysReachable) {
  TestDb db;
  db.AddTable("A", IntSchema({"x"}), {}, {ScanSpec("a")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A");
  EXPECT_TRUE(ValidateBindOrder(qb.Build().ValueOrDie()).ok());
}

TEST(ValidationTest, IndexChainReachable) {
  // A(scan) -> B(index bound by A) -> C(index bound by B): valid.
  TestDb db;
  db.AddTable("A", IntSchema({"x"}), {}, {ScanSpec("a")});
  db.AddTable("B", IntSchema({"x", "y"}), {}, {IndexSpec("b", {0})});
  db.AddTable("C", IntSchema({"z"}), {}, {IndexSpec("c", {0})});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B").AddTable("C");
  qb.AddJoin("A.x", "B.x").AddJoin("B.y", "C.z");
  EXPECT_TRUE(ValidateBindOrder(qb.Build().ValueOrDie()).ok());
}

TEST(ValidationTest, MutuallyDependentIndexesRejected) {
  // B and C are index-only and can only bind each other: no seed.
  TestDb db;
  db.AddTable("B", IntSchema({"x"}), {}, {IndexSpec("b", {0})});
  db.AddTable("C", IntSchema({"z"}), {}, {IndexSpec("c", {0})});
  QueryBuilder qb(db.catalog);
  qb.AddTable("B").AddTable("C");
  qb.AddJoin("B.x", "C.z");
  EXPECT_EQ(ValidateBindOrder(qb.Build().ValueOrDie()).code(),
            StatusCode::kInvalidQuery);
}

TEST(ValidationTest, ThetaBindingDoesNotCount) {
  // The index bind column is only theta-joined: cannot be bound.
  TestDb db;
  db.AddTable("A", IntSchema({"x"}), {}, {ScanSpec("a")});
  db.AddTable("B", IntSchema({"x"}), {}, {IndexSpec("b", {0})});
  QueryBuilder qb(db.catalog);
  qb.AddTable("A").AddTable("B");
  qb.AddJoin("A.x", "B.x", CompareOp::kLt);
  EXPECT_EQ(ValidateBindOrder(qb.Build().ValueOrDie()).code(),
            StatusCode::kInvalidQuery);
}

TEST(ValidationTest, MultiColumnBindNeedsAllColumns) {
  TestDb db;
  db.AddTable("A", IntSchema({"x", "y"}), {}, {ScanSpec("a")});
  db.AddTable("B", IntSchema({"p", "q"}), {}, {IndexSpec("b", {0, 1})});
  {
    QueryBuilder qb(db.catalog);
    qb.AddTable("A").AddTable("B").AddJoin("A.x", "B.p");
    EXPECT_FALSE(ValidateBindOrder(qb.Build().ValueOrDie()).ok());
  }
  {
    QueryBuilder qb(db.catalog);
    qb.AddTable("A").AddTable("B");
    qb.AddJoin("A.x", "B.p").AddJoin("A.y", "B.q");
    EXPECT_TRUE(ValidateBindOrder(qb.Build().ValueOrDie()).ok());
  }
}

}  // namespace
}  // namespace stems
