// Parameterized configuration sweeps: canned workloads executed under every
// combination of routing policy, SteM index implementation and bounce mode
// must all produce the brute-force result set (TEST_P property style).
#include <gtest/gtest.h>

#include <tuple>

#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::RunEddy;
using testing::ScanSpec;
using testing::TestDb;

enum class Workload {
  kTwoTableScan,
  kThreeChainMixedAms,
  kCyclicTriangle,
  kStarSchema,
};

std::string WorkloadName(Workload w) {
  switch (w) {
    case Workload::kTwoTableScan:
      return "TwoTableScan";
    case Workload::kThreeChainMixedAms:
      return "ThreeChainMixedAms";
    case Workload::kCyclicTriangle:
      return "CyclicTriangle";
    case Workload::kStarSchema:
      return "StarSchema";
  }
  return "?";
}

void BuildWorkload(Workload w, TestDb* db, QuerySpec* query) {
  switch (w) {
    case Workload::kTwoTableScan: {
      db->AddTable("R", IntSchema({"a", "p"}),
                   IntRows({{1, 9}, {2, 8}, {3, 7}, {2, 6}, {5, 5}}),
                   {ScanSpec("R.scan")});
      db->AddTable("S", IntSchema({"x"}), IntRows({{1}, {2}, {4}, {5}}),
                   {ScanSpec("S.scan")});
      QueryBuilder qb(db->catalog);
      qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
      qb.AddSelection("R.p", CompareOp::kGt, Value::Int64(4));
      *query = qb.Build().ValueOrDie();
      return;
    }
    case Workload::kThreeChainMixedAms: {
      db->AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}, {4}}),
                   {ScanSpec("R.scan")});
      db->AddTable("S", IntSchema({"x", "y"}),
                   IntRows({{1, 5}, {2, 6}, {3, 5}, {9, 6}}),
                   {ScanSpec("S.scan"), IndexSpec("S.idx", {0})});
      db->AddTable("T", IntSchema({"b", "v"}),
                   IntRows({{5, 50}, {6, 60}, {7, 70}}),
                   {IndexSpec("T.idx", {0})});
      QueryBuilder qb(db->catalog);
      qb.AddTable("R").AddTable("S").AddTable("T");
      qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b");
      *query = qb.Build().ValueOrDie();
      return;
    }
    case Workload::kCyclicTriangle: {
      db->AddTable("R", IntSchema({"a", "c"}),
                   IntRows({{1, 7}, {2, 8}, {1, 8}, {3, 7}}),
                   {ScanSpec("R.scan")});
      db->AddTable("S", IntSchema({"x", "y"}),
                   IntRows({{1, 4}, {2, 5}, {1, 5}, {3, 4}}),
                   {ScanSpec("S.scan")});
      db->AddTable("T", IntSchema({"b", "d"}),
                   IntRows({{4, 7}, {5, 8}, {4, 8}, {5, 7}}),
                   {ScanSpec("T.scan")});
      QueryBuilder qb(db->catalog);
      qb.AddTable("R").AddTable("S").AddTable("T");
      qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b").AddJoin("T.d", "R.c");
      *query = qb.Build().ValueOrDie();
      return;
    }
    case Workload::kStarSchema: {
      db->AddTable("F", IntSchema({"d1", "d2", "m"}),
                   IntRows({{1, 10, 5}, {2, 20, 6}, {1, 20, 7}, {3, 10, 8}}),
                   {ScanSpec("F.scan")});
      db->AddTable("D1", IntSchema({"k"}), IntRows({{1}, {2}}),
                   {ScanSpec("D1.scan")});
      db->AddTable("D2", IntSchema({"k", "n"}),
                   IntRows({{10, 0}, {20, 1}}), {ScanSpec("D2.scan")});
      QueryBuilder qb(db->catalog);
      qb.AddTable("F").AddTable("D1").AddTable("D2");
      qb.AddJoin("F.d1", "D1.k").AddJoin("F.d2", "D2.k");
      qb.AddSelection("F.m", CompareOp::kLe, Value::Int64(7));
      *query = qb.Build().ValueOrDie();
      return;
    }
  }
}

using SweepParam = std::tuple<Workload, PolicyKind, StemIndexImpl, int>;

class SweepTest : public ::testing::TestWithParam<SweepParam> {};

TEST_P(SweepTest, MatchesBruteForce) {
  const auto [workload, policy, index_impl, bounce] = GetParam();
  TestDb db;
  QuerySpec query;
  BuildWorkload(workload, &db, &query);
  if (::testing::Test::HasFatalFailure()) return;

  ExecutionConfig config = stems::testing::FastConfig();
  config.stem_defaults.index_impl = index_impl;
  config.stem_defaults.adaptive_threshold = 2;  // force list->hash upgrades
  config.stem_defaults.bounce_mode = static_cast<ProbeBounceMode>(bounce);

  EddyRun run = RunEddy(query, db, config, MakePolicy(policy));
  EXPECT_TRUE(run.duplicates.empty());
  EXPECT_EQ(run.keys, BruteForceResultSet(query, db.store));
  EXPECT_EQ(run.violations, 0u);
  EXPECT_EQ(run.parked, 0u);
}

std::string SweepName(const ::testing::TestParamInfo<SweepParam>& info) {
  const auto [workload, policy, index_impl, bounce] = info.param;
  static const char* kPolicy[] = {"NaryShj", "Lottery", "BenefitCost"};
  static const char* kIndex[] = {"Hash", "Ordered", "Adaptive"};
  static const char* kBounce[] = {"ConstraintOnly", "Prioritized", "Always"};
  return WorkloadName(workload) + "_" +
         kPolicy[static_cast<int>(policy)] + "_" +
         kIndex[static_cast<int>(index_impl)] + "_" +
         kBounce[bounce];
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigurations, SweepTest,
    ::testing::Combine(
        ::testing::Values(Workload::kTwoTableScan,
                          Workload::kThreeChainMixedAms,
                          Workload::kCyclicTriangle, Workload::kStarSchema),
        ::testing::Values(PolicyKind::kNaryShj, PolicyKind::kLottery,
                          PolicyKind::kBenefitCost),
        ::testing::Values(StemIndexImpl::kHash, StemIndexImpl::kOrdered,
                          StemIndexImpl::kAdaptive),
        ::testing::Values(0, 2)),  // kConstraintOnly, kAlways
    SweepName);

}  // namespace
}  // namespace stems
