// Failure injection: source stalls, bursty latencies, slow mirrors,
// pathological data (all duplicates, empty sides, key skew) — correctness
// must hold in every case, and progress properties must match the paper's
// claims (e.g. competitive AMs mask a stalled source).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::FastConfig;
using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::RunEddy;
using testing::ScanSpec;
using testing::TestDb;

void ExpectCorrectRun(const QuerySpec& q, const TestDb& db,
                      const ExecutionConfig& config, PolicyKind kind) {
  EddyRun run = RunEddy(q, db, config, MakePolicy(kind));
  EXPECT_TRUE(run.duplicates.empty());
  EXPECT_EQ(run.keys, BruteForceResultSet(q, db.store));
  EXPECT_EQ(run.violations, 0u);
}

class FailureInjectionTest : public ::testing::Test {
 protected:
  TestDb db_;
};

TEST_F(FailureInjectionTest, ScanStallMidQuery) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}, {4}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{2}, {4}, {6}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  ExecutionConfig config = FastConfig();
  config.scan_overrides["S.scan"].period = Micros(20);
  config.scan_overrides["S.scan"].stall_windows = {
      {Micros(30), Millis(500)}};  // long mid-scan outage
  ExpectCorrectRun(q, db_, config, PolicyKind::kNaryShj);
}

TEST_F(FailureInjectionTest, IndexSourceStallsThenRecovers) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "v"}),
               IntRows({{1, 10}, {2, 20}, {3, 30}}),
               {IndexSpec("S.idx", {0})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  ExecutionConfig config = FastConfig();
  config.index_defaults.latency = std::make_shared<StallWindowLatency>(
      std::make_unique<FixedLatency>(Micros(100)),
      std::vector<StallWindowLatency::Window>{{Micros(50), Millis(200)}});
  ExpectCorrectRun(q, db_, config, PolicyKind::kNaryShj);
}

TEST_F(FailureInjectionTest, BurstyExponentialLatencies) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{0}, {1}, {2}, {3}, {4}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{0}, {2}, {4}}),
               {IndexSpec("S.idx", {0})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  for (uint64_t seed : {1u, 2u, 3u}) {
    ExecutionConfig config = FastConfig();
    config.index_defaults.latency =
        std::make_shared<ExponentialLatency>(Millis(2));
    config.index_defaults.seed = seed;
    config.index_defaults.concurrency = 2;
    SCOPED_TRACE(seed);
    ExpectCorrectRun(q, db_, config, PolicyKind::kLottery);
  }
}

TEST_F(FailureInjectionTest, AllRowsIdentical) {
  // Pathological: every row a duplicate; set semantics collapse to one.
  db_.AddTable("R", IntSchema({"a"}), IntRows({{7}, {7}, {7}, {7}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{7}, {7}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 1u);
  EXPECT_TRUE(run.duplicates.empty());
}

TEST_F(FailureInjectionTest, HeavyKeySkew) {
  // One hot key matching everything, many cold keys matching nothing.
  std::vector<std::vector<int64_t>> r_rows, s_rows;
  for (int i = 0; i < 40; ++i) r_rows.push_back({i % 2 == 0 ? 0 : 100 + i});
  for (int i = 0; i < 10; ++i) s_rows.push_back({i == 0 ? 0 : 500 + i});
  db_.AddTable("R", IntSchema({"a"}), IntRows(r_rows), {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows(s_rows), {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  ExpectCorrectRun(q, db_, FastConfig(), PolicyKind::kBenefitCost);
}

TEST_F(FailureInjectionTest, EmptyProbeSideIndexTable) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({}), {IndexSpec("S.idx", {0})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 0u);
  EXPECT_EQ(run.violations, 0u);
  EXPECT_EQ(run.parked, 0u);  // EOTs release everything
}

TEST_F(FailureInjectionTest, CompetitiveAmsMaskStalledMirror) {
  // Progress property (paper §3.2): with a healthy mirror, completion is
  // not hostage to the stalled one.
  db_.AddTable("R", IntSchema({"a"}), IntRows({{0}, {1}, {2}, {3}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}),
               IntRows({{0}, {1}, {2}, {3}}),
               {IndexSpec("S.slow", {0}), IndexSpec("S.fast", {0})});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();

  ExecutionConfig config = FastConfig();
  config.scan_defaults.period = Micros(10);
  config.index_overrides["S.fast"].latency =
      std::make_shared<FixedLatency>(Micros(100));
  config.index_overrides["S.slow"].latency =
      std::make_shared<FixedLatency>(Seconds(30));  // effectively dead

  Simulation sim;
  auto eddy = PlanQuery(q, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kBenefitCost));
  eddy->RunToCompletion();
  EXPECT_EQ(eddy->num_results(), 4u);
  // All results well before the dead mirror's 30s latency.
  EXPECT_LT(eddy->ctx()->metrics.Series("results").TimeToReach(4),
            Seconds(10));
}

TEST_F(FailureInjectionTest, SlowConsumerBackpressureStats) {
  // A very slow SteM accumulates queue; stats must reflect the wait.
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}, {4}, {5}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{1}}), {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  ExecutionConfig config = FastConfig();
  StemOptions slow;
  slow.build_service_time = Millis(50);
  slow.probe_service_time = Millis(50);
  config.stem_overrides["S"] = slow;
  config.scan_defaults.period = Micros(5);
  Simulation sim;
  auto eddy = PlanQuery(q, db_.store, &sim, config).ValueOrDie();
  eddy->SetPolicy(MakePolicy(PolicyKind::kNaryShj));
  eddy->RunToCompletion();
  EXPECT_EQ(eddy->num_results(), 1u);
  EXPECT_GT(eddy->StemForTable("S")->stats().queue_wait_time, 0u);
  EXPECT_GT(eddy->StemForTable("S")->stats().max_queue_len, 1u);
}

TEST_F(FailureInjectionTest, RelaxedBuildFirstUnderStalls) {
  db_.AddTable("Big", IntSchema({"a"}),
               IntRows({{1}, {2}, {3}, {4}, {5}, {6}}),
               {ScanSpec("Big.scan")});
  db_.AddTable("Small", IntSchema({"x"}), IntRows({{2}, {4}}),
               {ScanSpec("Small.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("Big").AddTable("Small").AddJoin("Big.a", "Small.x");
  QuerySpec q = qb.Build().ValueOrDie();
  ExecutionConfig config = FastConfig();
  config.eddy.relax_build_first = true;
  config.eddy.no_build_tables = {"Big"};
  config.scan_overrides["Big.scan"].period = Micros(1);
  config.scan_overrides["Small.scan"].period = Millis(2);
  config.scan_overrides["Small.scan"].stall_windows = {
      {Millis(1), Millis(300)}};
  ExpectCorrectRun(q, db_, config, PolicyKind::kNaryShj);
}

}  // namespace
}  // namespace stems
