// Batch-vs-scalar equivalence property: for every registered routing
// policy and a spread of queries/seeds, running with batch_size 1, 8 and
// 64 must produce identical sorted result sets and identical
// constraint-audit verdicts. Batching amortizes the policy consultation,
// the audit and the event-queue hop — it must never change what a query
// returns (the tentpole invariant of the batched-dataflow refactor).
#include <gtest/gtest.h>

#include <algorithm>
#include <functional>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "engine/engine.h"
#include "reference/brute_force.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;

/// A case builds its tables into a fresh engine and returns the query.
struct EquivalenceCase {
  std::string name;
  std::function<QuerySpec(Engine&)> make;
};

void AddIntTable(Engine& engine, const std::string& name,
                 const std::vector<std::string>& cols,
                 const std::vector<std::vector<int64_t>>& rows,
                 std::vector<AccessMethodSpec> ams) {
  TableDef def;
  def.name = name;
  def.schema = IntSchema(cols);
  def.access_methods = std::move(ams);
  ASSERT_TRUE(engine.AddTable(std::move(def), IntRows(rows)).ok());
}

std::vector<std::vector<int64_t>> RandomRows(Rng& rng, int n, int cols,
                                             int64_t domain) {
  std::vector<std::vector<int64_t>> rows;
  for (int r = 0; r < n; ++r) {
    std::vector<int64_t> row;
    for (int c = 0; c < cols; ++c) row.push_back(rng.NextInt(0, domain));
    rows.push_back(std::move(row));
  }
  return rows;
}

std::vector<EquivalenceCase> Cases() {
  std::vector<EquivalenceCase> cases;

  cases.push_back({"equijoin2", [](Engine& e) {
                     Rng rng(101);
                     AddIntTable(e, "R", {"k", "a"}, RandomRows(rng, 60, 2, 8),
                                 {ScanSpec("R.scan")});
                     AddIntTable(e, "S", {"x", "p"}, RandomRows(rng, 60, 2, 8),
                                 {ScanSpec("S.scan")});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.x");
                     return qb.Build().ValueOrDie();
                   }});

  cases.push_back({"chain3_selection", [](Engine& e) {
                     Rng rng(102);
                     AddIntTable(e, "R", {"a", "b"}, RandomRows(rng, 25, 2, 6),
                                 {ScanSpec("R.scan")});
                     AddIntTable(e, "S", {"x", "y"}, RandomRows(rng, 25, 2, 6),
                                 {ScanSpec("S.scan")});
                     AddIntTable(e, "T", {"u", "v"}, RandomRows(rng, 25, 2, 6),
                                 {ScanSpec("T.scan")});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R").AddTable("S").AddTable("T");
                     qb.AddJoin("R.b", "S.x").AddJoin("S.y", "T.u");
                     qb.AddSelection("R.a", CompareOp::kLe, Value::Int64(4));
                     return qb.Build().ValueOrDie();
                   }});

  cases.push_back({"self_join", [](Engine& e) {
                     Rng rng(103);
                     AddIntTable(e, "R", {"g", "v"}, RandomRows(rng, 30, 2, 5),
                                 {ScanSpec("R.scan")});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R", "l").AddTable("R", "r");
                     qb.AddJoin("l.g", "r.g");
                     return qb.Build().ValueOrDie();
                   }});

  // Index AM on T: exercises prior probers, probe completion, parking.
  cases.push_back({"index_am", [](Engine& e) {
                     Rng rng(104);
                     AddIntTable(e, "R", {"a"}, RandomRows(rng, 40, 1, 30),
                                 {ScanSpec("R.scan")});
                     AddIntTable(e, "T", {"key", "w"},
                                 RandomRows(rng, 30, 2, 30),
                                 {ScanSpec("T.scan"), IndexSpec("T.idx", {0})});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R").AddTable("T").AddJoin("R.a", "T.key");
                     return qb.Build().ValueOrDie();
                   }});

  cases.push_back({"range_join", [](Engine& e) {
                     Rng rng(105);
                     AddIntTable(e, "R", {"a"}, RandomRows(rng, 20, 1, 10),
                                 {ScanSpec("R.scan")});
                     AddIntTable(e, "S", {"x"}, RandomRows(rng, 20, 1, 10),
                                 {ScanSpec("S.scan")});
                     QueryBuilder qb(e.catalog());
                     qb.AddTable("R").AddTable("S");
                     qb.AddJoin("R.a", "S.x", CompareOp::kLe);
                     return qb.Build().ValueOrDie();
                   }});

  // Randomized 2-table cases: varied domains and row counts.
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    cases.push_back(
        {"random_" + std::to_string(seed), [seed](Engine& e) {
           Rng rng(1000 + seed);
           const int rows_r = static_cast<int>(rng.NextInt(5, 50));
           const int rows_s = static_cast<int>(rng.NextInt(5, 50));
           const int64_t domain = rng.NextInt(2, 12);
           AddIntTable(e, "R", {"k", "a"}, RandomRows(rng, rows_r, 2, domain),
                       {ScanSpec("R.scan")});
           AddIntTable(e, "S", {"x", "p"}, RandomRows(rng, rows_s, 2, domain),
                       {ScanSpec("S.scan")});
           QueryBuilder qb(e.catalog());
           qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.x");
           if (rng.NextBool(0.5)) {
             qb.AddSelection("S.p", CompareOp::kGe,
                             Value::Int64(rng.NextInt(0, domain)));
           }
           return qb.Build().ValueOrDie();
         }});
  }

  return cases;
}

struct RunOutcome {
  std::set<std::string> keys;
  std::vector<std::string> duplicates;
  std::vector<std::string> verdicts;  ///< sorted audit-violation constraints
  std::set<std::string> expected;     ///< brute-force ground truth
  size_t parked = 0;
};

RunOutcome RunCase(const EquivalenceCase& c, const std::string& policy,
                   size_t batch_size, uint64_t seed) {
  Engine engine;
  QuerySpec query = c.make(engine);
  RunOptions options;
  options.policy = policy;
  options.policy_params.seed = seed;
  options.batch_size = batch_size;
  options.exec.scan_defaults.period = Micros(10);
  options.exec.index_defaults.latency =
      std::make_shared<FixedLatency>(Micros(50));
  auto submitted = engine.Submit(query, options);
  EXPECT_TRUE(submitted.ok()) << submitted.status().ToString();
  QueryHandle handle = std::move(submitted).ValueOrDie();
  handle.Wait();

  RunOutcome out;
  out.keys = KeysOf(handle.eddy()->results(), &out.duplicates);
  for (const ConstraintViolation& v : handle.eddy()->violations()) {
    out.verdicts.push_back(v.constraint);
  }
  std::sort(out.verdicts.begin(), out.verdicts.end());
  out.expected = BruteForceResultSet(query, engine.store());
  out.parked = handle.Stats().parked;
  return out;
}

TEST(BatchEquivalenceTest, AllPoliciesAllBatchSizes) {
  const std::vector<size_t> batch_sizes = {1, 8, 64};
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    for (const EquivalenceCase& c : Cases()) {
      for (uint64_t seed : {7u, 42u}) {
        SCOPED_TRACE("policy=" + policy + " case=" + c.name +
                     " seed=" + std::to_string(seed));
        RunOutcome scalar = RunCase(c, policy, 1, seed);
        if (::testing::Test::HasFatalFailure()) return;
        // The scalar run anchors correctness against ground truth.
        EXPECT_EQ(scalar.keys, scalar.expected);
        EXPECT_TRUE(scalar.duplicates.empty());
        EXPECT_TRUE(scalar.verdicts.empty())
            << scalar.verdicts.size() << " violations, first: "
            << scalar.verdicts.front();
        EXPECT_EQ(scalar.parked, 0u);
        // Every batched run must be indistinguishable in results and
        // audit verdicts.
        for (size_t batch_size : batch_sizes) {
          if (batch_size == 1) continue;
          SCOPED_TRACE("batch_size=" + std::to_string(batch_size));
          RunOutcome batched = RunCase(c, policy, batch_size, seed);
          EXPECT_EQ(batched.keys, scalar.keys);
          EXPECT_TRUE(batched.duplicates.empty());
          EXPECT_EQ(batched.verdicts, scalar.verdicts);
          EXPECT_EQ(batched.parked, 0u);
        }
      }
    }
  }
}

// LIMIT k with k landing mid-batch: a same-destination AcceptBatch cluster
// can emit many outputs in one service event, so a whole burst of
// span-complete tuples reaches the router's admission point together. The
// single clamp in Eddy::AdmitResult must hold the bound exactly — never
// k+1 rows because several outputs shared a routing step — for every
// policy at batch sizes that straddle k.
TEST(BatchEquivalenceTest, LimitClampHoldsMidBatch) {
  for (const std::string& policy : PolicyRegistry::Global().Names()) {
    for (size_t batch : {size_t{8}, size_t{64}}) {
      // Establish the unlimited cardinality once per (policy, batch).
      const auto build = [&](std::optional<uint64_t> limit) {
        Engine engine;
        Rng rng(107);
        // 8 distinct keys over 96 distinct rows (unique payload column, so
        // SteM set semantics absorb nothing): ~12 matches per probe, so
        // service events emit output bursts larger than most limits below.
        const auto bursty = [&rng](int n) {
          std::vector<std::vector<int64_t>> rows;
          for (int i = 0; i < n; ++i) rows.push_back({rng.NextInt(0, 7), i});
          return rows;
        };
        AddIntTable(engine, "R", {"k", "v"}, bursty(96),
                    {ScanSpec("R.scan")});
        AddIntTable(engine, "S", {"x", "w"}, bursty(96),
                    {ScanSpec("S.scan")});
        QueryBuilder qb(engine.catalog());
        qb.AddTable("R").AddTable("S").AddJoin("R.k", "S.x");
        if (limit.has_value()) qb.Limit(*limit);
        RunOptions options;
        options.policy = policy;
        options.batch_size = batch;
        options.exec.scan_defaults.period = Micros(1);
        QueryHandle handle =
            engine.Submit(qb.Build().ValueOrDie(), options).ValueOrDie();
        handle.Wait();
        return handle.Stats().num_results;
      };
      const uint64_t full = build(std::nullopt);
      ASSERT_GT(full, batch) << "workload too small to fill a batch";
      for (uint64_t k :
           {uint64_t{3}, uint64_t{7}, static_cast<uint64_t>(batch) / 2 + 1,
            static_cast<uint64_t>(batch) - 1,
            static_cast<uint64_t>(batch) + 1}) {
        SCOPED_TRACE("policy=" + policy + " batch=" + std::to_string(batch) +
                     " k=" + std::to_string(k));
        EXPECT_EQ(build(k), std::min(k, full));
      }
    }
  }
}

// The knob validates: batch_size 0 is rejected, not silently scalar.
TEST(BatchEquivalenceTest, ZeroBatchSizeRejected) {
  RunOptions options;
  options.batch_size = 0;
  EXPECT_FALSE(options.Validate().ok());
  options.batch_size = 1;
  options.exec.eddy.batch_size = 0;
  EXPECT_FALSE(options.Validate().ok());
}

}  // namespace
}  // namespace stems
