// Unit tests: the SteM module in isolation — build/probe mechanics, the
// SteM BounceBack and TimeStamp constraints (paper Table 2), set-semantics
// dedup, EOT coverage, eviction, index implementations, Grace mode.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "stem/eot_store.h"
#include "stem/stem.h"
#include "stem/stem_index.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IndexSpec;
using testing::IntSchema;
using testing::ScanSpec;
using testing::TestDb;

// --- StemIndex implementations ----------------------------------------------

TEST(StemIndexTest, HashInsertLookup) {
  auto idx = MakeStemIndex(StemIndexImpl::kHash);
  idx->Insert(Value::Int64(1), 10);
  idx->Insert(Value::Int64(1), 11);
  idx->Insert(Value::Int64(2), 12);
  std::vector<uint32_t> out;
  idx->LookupEq(Value::Int64(1), &out);
  EXPECT_EQ(out.size(), 2u);
  out.clear();
  idx->LookupEq(Value::Int64(9), &out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(idx->size(), 3u);
  EXPECT_STREQ(idx->impl_name(), "hash");
  EXPECT_FALSE(idx->LookupRange(nullptr, true, nullptr, true, &out));
}

TEST(StemIndexTest, OrderedRangeLookup) {
  auto idx = MakeStemIndex(StemIndexImpl::kOrdered);
  for (int i = 0; i < 10; ++i) {
    idx->Insert(Value::Int64(i), static_cast<uint32_t>(i));
  }
  std::vector<uint32_t> out;
  Value lo = Value::Int64(3), hi = Value::Int64(6);
  EXPECT_TRUE(idx->LookupRange(&lo, true, &hi, true, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{3, 4, 5, 6}));
  out.clear();
  EXPECT_TRUE(idx->LookupRange(&lo, false, &hi, false, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{4, 5}));
  out.clear();
  EXPECT_TRUE(idx->LookupRange(nullptr, true, &lo, true, &out));
  EXPECT_EQ(out, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(StemIndexTest, AdaptiveUpgradesListToHash) {
  // Paper §3.1: "the SteM may use a linked list when it holds a small
  // number of tuples, and switch to a hash-based implementation when the
  // list size increases ... independent of other modules."
  AdaptiveStemIndex idx(/*upgrade_threshold=*/4);
  for (int i = 0; i < 4; ++i) {
    idx.Insert(Value::Int64(i), static_cast<uint32_t>(i));
  }
  EXPECT_STREQ(idx.impl_name(), "list");
  idx.Insert(Value::Int64(4), 4);
  EXPECT_STREQ(idx.impl_name(), "hash");
  EXPECT_EQ(idx.size(), 5u);
  std::vector<uint32_t> out;
  idx.LookupEq(Value::Int64(2), &out);  // survives the upgrade
  EXPECT_EQ(out, (std::vector<uint32_t>{2}));
}

// --- EotStore ---------------------------------------------------------------

TEST(EotStoreTest, EqualityCoverage) {
  EotStore store;
  // EOT for probe x=5 on schema (x, y).
  store.Add(MakeEotRowRef({Value::Int64(5), Value::Eot()}));
  EXPECT_TRUE(store.Covers({{0, Value::Int64(5)}}));
  EXPECT_FALSE(store.Covers({{0, Value::Int64(6)}}));
  EXPECT_FALSE(store.Covers({{1, Value::Int64(5)}}));  // different column
  // A probe binding MORE columns is still covered (subset rule).
  EXPECT_TRUE(store.Covers({{0, Value::Int64(5)}, {1, Value::Int64(9)}}));
  // An unbound probe is not covered.
  EXPECT_FALSE(store.Covers({}));
}

TEST(EotStoreTest, FullCoverageFromScanEot) {
  EotStore store;
  EXPECT_FALSE(store.HasFullCoverage());
  store.Add(MakeEotRowRef({Value::Eot(), Value::Eot()}));
  EXPECT_TRUE(store.HasFullCoverage());
  EXPECT_TRUE(store.Covers({}));
  EXPECT_TRUE(store.Covers({{1, Value::Int64(3)}}));
}

TEST(EotStoreTest, DuplicatesIgnored) {
  EotStore store;
  store.Add(MakeEotRowRef({Value::Int64(5), Value::Eot()}));
  store.Add(MakeEotRowRef({Value::Int64(5), Value::Eot()}));
  EXPECT_EQ(store.size(), 1u);
}

// --- SteM module --------------------------------------------------------------

/// Harness: a two-table query R(a) join S(x, p); SteM under test on S.
class StemTest : public ::testing::Test {
 protected:
  void SetUp() override { Init({ScanSpec("S.scan")}); }

  void Init(std::vector<AccessMethodSpec> s_ams, StemOptions options = {}) {
    db_ = std::make_unique<TestDb>();
    db_->AddTable("R", IntSchema({"a"}), {}, {ScanSpec("R.scan")});
    db_->AddTable("S", IntSchema({"x", "p"}), {}, std::move(s_ams));
    QueryBuilder qb(db_->catalog);
    qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
    query_ = qb.Build().ValueOrDie();
    ctx_.query = &query_;
    ctx_.sim = &sim_;
    stem_ = std::make_unique<Stem>(&ctx_, "S", options);
    out_.clear();
    stem_->SetSink([this](TuplePtr t, Module*) { out_.push_back(std::move(t)); });
  }

  /// Builds the S row (x, p) into the SteM; returns emitted count delta.
  void BuildS(int64_t x, int64_t p) {
    TuplePtr t = Tuple::MakeSingleton(
        2, 1, MakeRow({Value::Int64(x), Value::Int64(p)}));
    t->SetRouteInfo(RouteIntent::kBuild, 1);
    stem_->Accept(std::move(t));
    sim_.Run();
  }

  /// Probes with an R singleton of value a (optionally pre-built at ts).
  TuplePtr ProbeR(int64_t a, BuildTs ts = kTsInfinity) {
    TuplePtr t = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(a)}));
    if (ts != kTsInfinity) t->SetBuilt(0, ts);
    t->SetRouteInfo(RouteIntent::kProbe, 1);
    stem_->Accept(t);
    sim_.Run();
    return t;
  }

  /// Emitted tuples that are concatenated matches (span both slots).
  std::vector<TuplePtr> Matches() const {
    std::vector<TuplePtr> m;
    for (const auto& t : out_) {
      if (t->spanned_mask() == 0b11) m.push_back(t);
    }
    return m;
  }

  std::unique_ptr<TestDb> db_;
  QuerySpec query_;
  Simulation sim_;
  QueryContext ctx_;
  std::unique_ptr<Stem> stem_;
  std::vector<TuplePtr> out_;
};

TEST_F(StemTest, BuildAssignsTimestampAndBounces) {
  TuplePtr t = Tuple::MakeSingleton(
      2, 1, MakeRow({Value::Int64(1), Value::Int64(2)}));
  t->SetRouteInfo(RouteIntent::kBuild, 1);
  stem_->Accept(t);
  sim_.Run();
  ASSERT_EQ(out_.size(), 1u);          // bounced back
  EXPECT_EQ(out_[0].get(), t.get());   // the same tuple
  EXPECT_NE(t->Timestamp(), kTsInfinity);
  EXPECT_EQ(stem_->num_entries(), 1u);
  EXPECT_EQ(stem_->builds(), 1u);
}

TEST_F(StemTest, DuplicateBuildAbsorbedNotBounced) {
  BuildS(1, 2);
  out_.clear();
  BuildS(1, 2);  // identical content
  EXPECT_TRUE(out_.empty());  // absorbed (paper §3.2): no bounce, no probe
  EXPECT_EQ(stem_->num_entries(), 1u);
  EXPECT_EQ(stem_->duplicates_absorbed(), 1u);
}

TEST_F(StemTest, ProbeFindsMatchesAndEvaluatesPredicates) {
  BuildS(5, 50);
  BuildS(5, 51);
  BuildS(6, 60);
  out_.clear();
  ProbeR(5);
  auto matches = Matches();
  ASSERT_EQ(matches.size(), 2u);
  for (const auto& m : matches) {
    EXPECT_TRUE(m->PassedPredicate(0));  // join predicate marked passed
    EXPECT_EQ(m->ValueAt(1, 0)->AsInt64(), 5);
  }
}

TEST_F(StemTest, TimestampConstraintFiltersNewerEntries) {
  // Paper §3.1 TimeStamp rule: probe t sees match m iff ts(t) >= ts(m).
  BuildS(5, 50);  // ts 1
  BuildS(5, 51);  // ts 2
  out_.clear();
  ProbeR(5, /*ts=*/1);  // built between the two S rows
  EXPECT_EQ(Matches().size(), 1u);
  out_.clear();
  ProbeR(5, /*ts=*/2);
  EXPECT_EQ(Matches().size(), 2u);
  out_.clear();
  ProbeR(5, kTsInfinity);  // unbuilt probe sees everything
  EXPECT_EQ(Matches().size(), 2u);
}

TEST_F(StemTest, ExcludeEqualTsForRetargetProbes) {
  BuildS(5, 50);  // ts 1
  out_.clear();
  TuplePtr t = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(5)}));
  t->SetBuilt(0, 1);  // tie
  t->SetRouteInfo(RouteIntent::kProbe, 1, /*exclude_equal_ts=*/true);
  stem_->Accept(t);
  sim_.Run();
  EXPECT_TRUE(Matches().empty());  // strict comparison excludes the tie
}

TEST_F(StemTest, LastMatchTimestampSkipsSeenEntries) {
  // §3.5 re-probe path: only entries newer than last_match_ts are returned.
  BuildS(5, 50);  // ts 1
  BuildS(5, 51);  // ts 2
  out_.clear();
  TuplePtr t = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(5)}));
  t->set_last_match_ts(1);
  t->SetRouteInfo(RouteIntent::kProbe, 1);
  stem_->Accept(t);
  sim_.Run();
  EXPECT_EQ(Matches().size(), 1u);  // only ts 2
}

TEST_F(StemTest, ProbeNotBouncedWhenScanAmExistsAndBuilt) {
  // Table 2 BounceBack: S has a scan AM and the probe is fully built.
  BuildS(5, 50);
  out_.clear();
  ProbeR(7, /*ts=*/5);  // no matches, but no bounce either
  EXPECT_TRUE(out_.empty());
  EXPECT_EQ(stem_->probes_bounced(), 0u);
}

TEST_F(StemTest, ProbeBouncedWhenUnbuiltComponent) {
  // Relaxed-BuildFirst probes (ts infinity) must bounce: their matches
  // cannot rendezvous through other SteMs.
  out_.clear();
  TuplePtr t = ProbeR(7, kTsInfinity);
  ASSERT_EQ(out_.size(), 1u);
  EXPECT_TRUE(t->IsPriorProber());
  EXPECT_EQ(t->probe_completion_slot(), 1);
  EXPECT_EQ(t->last_match_ts(), stem_->max_entry_ts());
}

TEST_F(StemTest, ProbeBouncedOnIndexOnlyTableUntilEotCovered) {
  Init({IndexSpec("S.idx", {0})});
  BuildS(5, 50);
  out_.clear();
  TuplePtr t = ProbeR(5, /*ts=*/5);
  // Matches returned AND bounced: coverage unknown.
  EXPECT_EQ(Matches().size(), 1u);
  EXPECT_TRUE(t->IsPriorProber());
  // Now build the EOT for x=5 — later probes are covered.
  TuplePtr eot = Tuple::MakeSingleton(
      2, 1, MakeEotRowRef({Value::Int64(5), Value::Eot()}));
  eot->SetRouteInfo(RouteIntent::kBuild, 1);
  stem_->Accept(std::move(eot));
  sim_.Run();
  out_.clear();
  TuplePtr t2 = ProbeR(5, /*ts=*/6);
  EXPECT_EQ(Matches().size(), 1u);
  EXPECT_FALSE(t2->IsPriorProber());  // covered: not bounced
}

TEST_F(StemTest, BounceModeAlwaysOverridesScanRule) {
  Init({ScanSpec("S.scan"), IndexSpec("S.idx", {0})},
       [] {
         StemOptions o;
         o.bounce_mode = ProbeBounceMode::kAlways;
         return o;
       }());
  BuildS(5, 50);
  out_.clear();
  TuplePtr t = ProbeR(5, /*ts=*/5);
  EXPECT_TRUE(t->IsPriorProber());  // bounced despite scan AM
}

TEST_F(StemTest, PrioritizedBounceMode) {
  Init({ScanSpec("S.scan"), IndexSpec("S.idx", {0})},
       [] {
         StemOptions o;
         o.bounce_mode = ProbeBounceMode::kPrioritized;
         return o;
       }());
  BuildS(5, 50);
  out_.clear();
  TuplePtr plain = ProbeR(5, /*ts=*/5);
  EXPECT_FALSE(plain->IsPriorProber());
  TuplePtr hot = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(5)}));
  hot->SetBuilt(0, 6);
  hot->set_prioritized(true);
  hot->SetRouteInfo(RouteIntent::kProbe, 1);
  stem_->Accept(hot);
  sim_.Run();
  EXPECT_TRUE(hot->IsPriorProber());
}

TEST_F(StemTest, EvictionSlidingWindow) {
  StemOptions o;
  o.max_entries = 2;
  Init({ScanSpec("S.scan")}, o);
  BuildS(1, 10);
  BuildS(2, 20);
  BuildS(3, 30);
  EXPECT_EQ(stem_->num_entries(), 2u);
  EXPECT_EQ(stem_->evictions(), 1u);
  out_.clear();
  ProbeR(1, /*ts=*/9);
  EXPECT_TRUE(Matches().empty());  // oldest row evicted
  out_.clear();
  ProbeR(3, /*ts=*/9);
  EXPECT_EQ(Matches().size(), 1u);
  // Re-inserting an evicted row is NOT a duplicate (dedup set was purged).
  out_.clear();
  BuildS(1, 10);
  EXPECT_EQ(stem_->duplicates_absorbed(), 0u);
}

TEST_F(StemTest, GraceModeDefersBouncesUntilBatchOrFlush) {
  StemOptions o;
  o.num_partitions = 4;
  o.bounce_batch = 3;
  Init({ScanSpec("S.scan")}, o);
  // Builds with the same partition key hash together.
  for (int i = 0; i < 2; ++i) {
    TuplePtr t = Tuple::MakeSingleton(
        2, 1, MakeRow({Value::Int64(8), Value::Int64(i)}));
    t->SetRouteInfo(RouteIntent::kBuild, 1);
    stem_->Accept(std::move(t));
  }
  sim_.Run();
  EXPECT_TRUE(out_.empty());  // deferred (batch of 3 not reached)
  EXPECT_EQ(stem_->num_entries(), 2u);  // but stored immediately
  stem_->FlushDeferredBounces();
  EXPECT_EQ(out_.size(), 2u);  // clustered release
}

TEST_F(StemTest, ServesSlotAndIndexImpl) {
  EXPECT_TRUE(stem_->ServesSlot(1));
  EXPECT_FALSE(stem_->ServesSlot(0));
  EXPECT_EQ(stem_->IndexImplFor(0), "hash");  // join column S.x
  EXPECT_EQ(stem_->IndexImplFor(1), "");      // p is not a join column
}

TEST_F(StemTest, ProbeBindingsExtraction) {
  TuplePtr t = Tuple::MakeSingleton(2, 0, MakeRow({Value::Int64(9)}));
  auto binds = stem_->ProbeBindings(*t, 1);
  ASSERT_EQ(binds.size(), 1u);
  EXPECT_EQ(binds[0].first, 0);                // S.x
  EXPECT_EQ(binds[0].second.AsInt64(), 9);
}

}  // namespace
}  // namespace stems
