// Unit tests: discrete-event simulator and latency models.
#include <gtest/gtest.h>

#include <vector>

#include "sim/latency_model.h"
#include "sim/simulation.h"

namespace stems {
namespace {

TEST(EventQueueTest, OrdersByTimeThenInsertion) {
  EventQueue q;
  std::vector<int> order;
  q.Push(10, [&] { order.push_back(1); });
  q.Push(5, [&] { order.push_back(2); });
  q.Push(10, [&] { order.push_back(3); });
  q.Push(1, [&] { order.push_back(4); });
  while (!q.empty()) {
    SimTime t;
    q.Pop(&t)();
  }
  EXPECT_EQ(order, (std::vector<int>{4, 2, 1, 3}));
}

TEST(EventQueueTest, NextTime) {
  EventQueue q;
  EXPECT_EQ(q.NextTime(), kSimTimeNever);
  q.Push(7, [] {});
  EXPECT_EQ(q.NextTime(), 7);
}

TEST(SimulationTest, TimeAdvancesMonotonically) {
  Simulation sim;
  std::vector<SimTime> times;
  sim.Schedule(100, [&] { times.push_back(sim.now()); });
  sim.Schedule(50, [&] {
    times.push_back(sim.now());
    sim.Schedule(25, [&] { times.push_back(sim.now()); });
  });
  sim.Run();
  EXPECT_EQ(times, (std::vector<SimTime>{50, 75, 100}));
  EXPECT_EQ(sim.events_processed(), 3u);
}

TEST(SimulationTest, NegativeDelayClampsToNow) {
  Simulation sim;
  bool ran = false;
  sim.Schedule(10, [&] {
    sim.Schedule(-5, [&] {
      ran = true;
      EXPECT_EQ(sim.now(), 10);
    });
  });
  sim.Run();
  EXPECT_TRUE(ran);
}

TEST(SimulationTest, RunUntilStopsAtLimit) {
  Simulation sim;
  int count = 0;
  for (SimTime t = 10; t <= 100; t += 10) {
    sim.At(t, [&] { ++count; });
  }
  EXPECT_FALSE(sim.RunUntil(50));
  EXPECT_EQ(count, 5);
  EXPECT_EQ(sim.now(), 50);
  EXPECT_TRUE(sim.RunUntil(1000));
  EXPECT_EQ(count, 10);
}

TEST(SimulationTest, RunSteps) {
  Simulation sim;
  int count = 0;
  for (int i = 0; i < 10; ++i) sim.Schedule(i, [&] { ++count; });
  EXPECT_EQ(sim.RunSteps(4), 4u);
  EXPECT_EQ(count, 4);
  EXPECT_FALSE(sim.Idle());
}

TEST(LatencyModelTest, Fixed) {
  FixedLatency m(Millis(30));
  Rng rng(1);
  EXPECT_EQ(m.Sample(0, rng), Millis(30));
  EXPECT_EQ(m.Sample(Seconds(5), rng), Millis(30));
}

TEST(LatencyModelTest, UniformWithinBounds) {
  UniformLatency m(10, 20);
  Rng rng(2);
  for (int i = 0; i < 200; ++i) {
    SimTime s = m.Sample(0, rng);
    EXPECT_GE(s, 10);
    EXPECT_LE(s, 20);
  }
}

TEST(LatencyModelTest, StallWindowDefersCompletion) {
  StallWindowLatency m(std::make_unique<FixedLatency>(Millis(10)),
                       {{Seconds(1), Seconds(5)}});
  Rng rng(3);
  // Outside the window: base latency.
  EXPECT_EQ(m.Sample(0, rng), Millis(10));
  EXPECT_EQ(m.Sample(Seconds(6), rng), Millis(10));
  // Inside: completes no earlier than the window end.
  EXPECT_EQ(m.Sample(Seconds(2), rng), Seconds(3));
  // Near the end, base latency dominates again.
  EXPECT_EQ(m.Sample(Seconds(5) - Millis(1), rng), Millis(10));
}

TEST(LatencyModelTest, ExponentialHasRoughlyRightMean) {
  ExponentialLatency m(Millis(100));
  Rng rng(4);
  double sum = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(m.Sample(0, rng));
  const double mean = sum / n;
  EXPECT_GT(mean, 90000.0);
  EXPECT_LT(mean, 110000.0);
}

}  // namespace
}  // namespace stems
