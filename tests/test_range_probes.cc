// Range-predicate probes served by ordered SteM indexes ("we allow a SteM
// to perform searches on arbitrary predicates", paper §2.1.4), and their
// equivalence with the hash-index full-scan fallback.
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::FastConfig;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::RunEddy;
using testing::ScanSpec;
using testing::TestDb;

class RangeProbeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_.AddTable("R", IntSchema({"key", "a"}),
                 IntRows({{0, 1}, {1, 5}, {2, 9}, {3, 3}}),
                 {ScanSpec("R.scan")});
    db_.AddTable("S", IntSchema({"key", "x"}),
                 IntRows({{0, 2}, {1, 4}, {2, 6}, {3, 8}}),
                 {ScanSpec("S.scan")});
  }

  QuerySpec MakeQuery(CompareOp op) {
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x", op);
    return qb.Build().ValueOrDie();
  }

  TestDb db_;
};

TEST_F(RangeProbeTest, AllOperatorsMatchBruteForceWithOrderedIndex) {
  for (CompareOp op :
       {CompareOp::kLt, CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    SCOPED_TRACE(CompareOpName(op));
    QuerySpec q = MakeQuery(op);
    ExecutionConfig config = FastConfig();
    config.stem_defaults.index_impl = StemIndexImpl::kOrdered;
    EddyRun run = RunEddy(q, db_, config, MakePolicy(PolicyKind::kNaryShj));
    EXPECT_TRUE(run.duplicates.empty());
    EXPECT_EQ(run.keys, BruteForceResultSet(q, db_.store));
    EXPECT_EQ(run.violations, 0u);
  }
}

TEST_F(RangeProbeTest, OrderedAndHashImplementationsAgree) {
  QuerySpec q = MakeQuery(CompareOp::kLt);
  ExecutionConfig ordered = FastConfig();
  ordered.stem_defaults.index_impl = StemIndexImpl::kOrdered;
  ExecutionConfig hashed = FastConfig();
  hashed.stem_defaults.index_impl = StemIndexImpl::kHash;  // full-scan path
  EddyRun a = RunEddy(q, db_, ordered, MakePolicy(PolicyKind::kNaryShj));
  EddyRun b = RunEddy(q, db_, hashed, MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(a.keys, b.keys);
}

TEST_F(RangeProbeTest, MixedEqualityAndRangePredicates) {
  // Equality predicate drives the hash index; the range predicate is
  // verified as a residual.
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S");
  qb.AddJoin("R.key", "S.key");
  qb.AddJoin("R.a", "S.x", CompareOp::kGe);
  QuerySpec q = qb.Build().ValueOrDie();
  for (auto impl : {StemIndexImpl::kHash, StemIndexImpl::kOrdered}) {
    SCOPED_TRACE(static_cast<int>(impl));
    ExecutionConfig config = FastConfig();
    config.stem_defaults.index_impl = impl;
    EddyRun run = RunEddy(q, db_, config, MakePolicy(PolicyKind::kNaryShj));
    EXPECT_EQ(run.keys, BruteForceResultSet(q, db_.store));
    EXPECT_EQ(run.violations, 0u);
  }
}

TEST_F(RangeProbeTest, BandJoinThreeTables) {
  db_.AddTable("T", IntSchema({"b"}), IntRows({{3}, {7}}),
               {ScanSpec("T.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x", CompareOp::kLe);
  qb.AddJoin("S.x", "T.b", CompareOp::kGt);
  QuerySpec q = qb.Build().ValueOrDie();
  ExecutionConfig config = FastConfig();
  config.stem_defaults.index_impl = StemIndexImpl::kOrdered;
  for (auto kind : {PolicyKind::kNaryShj, PolicyKind::kLottery}) {
    SCOPED_TRACE(static_cast<int>(kind));
    EddyRun run = RunEddy(q, db_, config, MakePolicy(kind));
    EXPECT_TRUE(run.duplicates.empty());
    EXPECT_EQ(run.keys, BruteForceResultSet(q, db_.store));
    EXPECT_EQ(run.violations, 0u);
  }
}

}  // namespace
}  // namespace stems
