// Unit tests: predicates and their evaluation over composite tuples.
#include <gtest/gtest.h>

#include "expr/predicate.h"
#include "runtime/tuple.h"

namespace stems {
namespace {

TEST(CompareValuesTest, AllOperators) {
  const Value a = Value::Int64(3), b = Value::Int64(5);
  EXPECT_TRUE(CompareValues(a, CompareOp::kLt, b));
  EXPECT_TRUE(CompareValues(a, CompareOp::kLe, b));
  EXPECT_TRUE(CompareValues(a, CompareOp::kLe, a));
  EXPECT_TRUE(CompareValues(b, CompareOp::kGt, a));
  EXPECT_TRUE(CompareValues(b, CompareOp::kGe, b));
  EXPECT_TRUE(CompareValues(a, CompareOp::kEq, a));
  EXPECT_TRUE(CompareValues(a, CompareOp::kNe, b));
  EXPECT_FALSE(CompareValues(a, CompareOp::kEq, b));
}

TEST(CompareValuesTest, NullAndEotNeverMatch) {
  for (auto op : {CompareOp::kEq, CompareOp::kNe, CompareOp::kLt,
                  CompareOp::kLe, CompareOp::kGt, CompareOp::kGe}) {
    EXPECT_FALSE(CompareValues(Value::Null(), op, Value::Int64(1)));
    EXPECT_FALSE(CompareValues(Value::Int64(1), op, Value::Null()));
    EXPECT_FALSE(CompareValues(Value::Eot(), op, Value::Eot()));
  }
}

TEST(PredicateTest, SelectionEvaluation) {
  Predicate p = Predicate::Selection(0, ColumnRef{0, 1}, CompareOp::kGt,
                                     Value::Int64(10));
  EXPECT_FALSE(p.is_join());
  EXPECT_EQ(p.slots(), std::vector<int>{0});

  TuplePtr t = Tuple::MakeSingleton(
      2, 0, MakeRow({Value::Int64(1), Value::Int64(15)}));
  EXPECT_TRUE(p.CanEvaluate(t->spanned_mask()));
  EXPECT_TRUE(p.Evaluate(*t));

  TuplePtr f = Tuple::MakeSingleton(
      2, 0, MakeRow({Value::Int64(1), Value::Int64(5)}));
  EXPECT_FALSE(p.Evaluate(*f));
}

TEST(PredicateTest, JoinEvaluationAndCanEvaluate) {
  Predicate p =
      Predicate::Join(1, ColumnRef{0, 0}, CompareOp::kEq, ColumnRef{1, 1});
  EXPECT_TRUE(p.is_join());
  EXPECT_EQ(p.slots().size(), 2u);
  EXPECT_FALSE(p.CanEvaluate(0b01));
  EXPECT_FALSE(p.CanEvaluate(0b10));
  EXPECT_TRUE(p.CanEvaluate(0b11));

  auto t = std::make_shared<Tuple>(2);
  t->SetComponent(0, MakeRow({Value::Int64(7)}));
  t->SetComponent(1, MakeRow({Value::Int64(0), Value::Int64(7)}));
  EXPECT_TRUE(p.Evaluate(*t));
}

TEST(PredicateTest, EquiJoinHelpers) {
  Predicate p =
      Predicate::Join(0, ColumnRef{0, 2}, CompareOp::kEq, ColumnRef{3, 1});
  EXPECT_EQ(*p.EquiJoinColumnFor(0), 2);
  EXPECT_EQ(*p.EquiJoinColumnFor(3), 1);
  EXPECT_FALSE(p.EquiJoinColumnFor(1).has_value());
  EXPECT_EQ(p.EquiJoinPeerOf(0)->table_slot, 3);
  EXPECT_EQ(p.EquiJoinPeerOf(3)->column, 2);

  Predicate theta =
      Predicate::Join(1, ColumnRef{0, 0}, CompareOp::kLt, ColumnRef{1, 0});
  EXPECT_FALSE(theta.EquiJoinColumnFor(0).has_value());
}

TEST(PredicateTest, OverlayValueSource) {
  auto base = std::make_shared<Tuple>(2);
  base->SetComponent(0, MakeRow({Value::Int64(1)}));
  std::vector<Value> candidate{Value::Int64(2), Value::Int64(3)};
  OverlayValueSource overlay(*base, 1, &candidate);
  EXPECT_EQ(overlay.ValueAt(0, 0)->AsInt64(), 1);
  EXPECT_EQ(overlay.ValueAt(1, 0)->AsInt64(), 2);
  EXPECT_EQ(overlay.ValueAt(1, 1)->AsInt64(), 3);
  EXPECT_EQ(overlay.ValueAt(1, 2), nullptr);

  Predicate p =
      Predicate::Join(0, ColumnRef{0, 0}, CompareOp::kLt, ColumnRef{1, 1});
  EXPECT_TRUE(p.Evaluate(overlay));
}

TEST(PredicateTest, ToStringIsReadable) {
  Predicate p = Predicate::Selection(2, ColumnRef{1, 0}, CompareOp::kLe,
                                     Value::Int64(9));
  EXPECT_EQ(p.ToString(), "p2: t1.c0 <= 9");
}

}  // namespace
}  // namespace stems
