// Observability layer: the thread-safe metrics registry, per-query trace
// spans and their Chrome trace JSON export, EXPLAIN ANALYZE profiles, the
// QueryStats field-count canary, and the server's metrics exposition
// (Metrics wire frame, Stats frame additions, slow-query log).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/engine.h"
#include "obs/metrics_registry.h"
#include "obs/profile.h"
#include "obs/trace.h"
#include "runtime/metrics.h"
#include "server/client.h"
#include "server/server.h"
#include "server/tenant_governor.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::IntRows;
using testing::IntSchema;
using testing::ScanSpec;

// --- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, CounterGaugeBasics) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.GetCounter("a.count");
  c->Add();
  c->Add(9);
  EXPECT_EQ(c->value(), 10u);
  // Handles are stable: a second lookup returns the same object.
  EXPECT_EQ(registry.GetCounter("a.count"), c);

  obs::Gauge* g = registry.GetGauge("a.depth");
  g->Set(7);
  g->Add(-2);
  EXPECT_EQ(g->value(), 5);
  g->SetMax(3);
  EXPECT_EQ(g->value(), 5) << "SetMax must not lower the gauge";
  g->SetMax(11);
  EXPECT_EQ(g->value(), 11);
}

TEST(MetricsRegistryTest, HistogramPercentilesAreOrdered) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.GetHistogram("lat.us");
  EXPECT_EQ(h->Percentile(0.5), 0.0) << "empty histogram reads zero";
  for (uint64_t v = 1; v <= 1000; ++v) h->Observe(v);
  EXPECT_EQ(h->count(), 1000u);
  EXPECT_EQ(h->sum(), 500500u);
  const double p50 = h->Percentile(0.50);
  const double p95 = h->Percentile(0.95);
  const double p99 = h->Percentile(0.99);
  EXPECT_LE(p50, p95);
  EXPECT_LE(p95, p99);
  // Power-of-two buckets: the true p50 (500) lives in (256, 512], the
  // tail in (512, 1024].
  EXPECT_GE(p50, 256.0);
  EXPECT_LE(p50, 512.0);
  EXPECT_LE(p99, 1024.0);
}

TEST(MetricsRegistryTest, ExpositionTextFormat) {
  obs::MetricsRegistry registry;
  registry.GetCounter("eddy.tuples_routed")->Add(42);
  registry.GetGauge("spill.pool_pages")->Set(-3);
  registry.GetHistogram("engine.query_wall_us")->Observe(100);
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("# TYPE stems_eddy_tuples_routed counter\n"
                      "stems_eddy_tuples_routed 42\n"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("stems_spill_pool_pages -3\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE stems_engine_query_wall_us summary"),
            std::string::npos);
  EXPECT_NE(text.find("stems_engine_query_wall_us{quantile=\"0.5\"}"),
            std::string::npos);
  EXPECT_NE(text.find("stems_engine_query_wall_us_count 1"),
            std::string::npos);
}

// The TSan regression of the synchronized metrics path: four writer
// threads pump both the engine-wide registry and the per-query
// MetricsRecorder (whose std::map + SeriesHandle used to be unguarded)
// while a reader snapshots concurrently.
TEST(MetricsRegistryTest, ConcurrentPumpFromFourWorkers) {
  obs::MetricsRegistry registry;
  MetricsRecorder recorder;
  constexpr int kWorkers = 4;
  constexpr int kIters = 2000;
  std::atomic<bool> stop{false};
  std::thread reader([&] {
    while (!stop.load(std::memory_order_relaxed)) {
      (void)registry.ExpositionText();
      (void)registry.Snapshot();
      if (recorder.Has("results")) (void)recorder.Series("results").total();
      std::this_thread::yield();
    }
  });
  std::vector<std::thread> workers;
  for (int w = 0; w < kWorkers; ++w) {
    workers.emplace_back([&, w] {
      obs::Counter* shared = registry.GetCounter("shared.count");
      obs::Histogram* hist = registry.GetHistogram("shared.lat");
      CounterSeries* series = recorder.SeriesHandle("results");
      for (int i = 0; i < kIters; ++i) {
        shared->Add();
        registry.GetGauge("w" + std::to_string(w) + ".depth")->Set(i);
        hist->Observe(static_cast<uint64_t>(i));
        series->Increment(static_cast<SimTime>(i));
        recorder.Count("probes", static_cast<SimTime>(i));
      }
    });
  }
  for (auto& t : workers) t.join();
  stop = true;
  reader.join();
  EXPECT_EQ(registry.GetCounter("shared.count")->value(),
            static_cast<uint64_t>(kWorkers * kIters));
  EXPECT_EQ(registry.GetHistogram("shared.lat")->count(),
            static_cast<uint64_t>(kWorkers * kIters));
  EXPECT_EQ(recorder.Series("results").total(), kWorkers * kIters);
  EXPECT_EQ(recorder.Series("probes").total(), kWorkers * kIters);
}

// --- Tracer ------------------------------------------------------------------

TEST(TracerTest, SamplingRecordsEveryNth) {
  obs::Tracer tracer(/*every_n=*/3);
  int sampled = 0;
  for (int i = 0; i < 10; ++i) {
    if (tracer.SampleRoute()) ++sampled;
  }
  EXPECT_EQ(sampled, 4) << "events 0, 3, 6, 9";
  // Streams sample independently: the service stream starts fresh.
  EXPECT_TRUE(tracer.SampleService());
  EXPECT_FALSE(tracer.SampleService());
  EXPECT_EQ(tracer.events_seen(), 12u);
}

TEST(TracerTest, RingKeepsMostRecentEvents) {
  obs::Tracer tracer(/*every_n=*/1, /*capacity=*/4);
  for (int i = 0; i < 10; ++i) {
    obs::TraceEvent ev;
    ev.name = "e" + std::to_string(i);
    ev.cat = "route";
    ev.ph = 'i';
    ev.ts_us = static_cast<uint64_t>(i);
    tracer.Record(std::move(ev));
  }
  EXPECT_EQ(tracer.events_recorded(), 10u);
  const std::string json = tracer.ToJson();
  // Only the most recent `capacity` events survive, oldest-first.
  EXPECT_EQ(json.find("\"e5\""), std::string::npos) << json;
  for (int i = 6; i < 10; ++i) {
    EXPECT_NE(json.find("\"e" + std::to_string(i) + "\""), std::string::npos)
        << json;
  }
  const size_t e6 = json.find("\"e6\"");
  const size_t e9 = json.find("\"e9\"");
  EXPECT_LT(e6, e9) << "events must be emitted oldest-first";
}

TEST(TracerTest, JsonEscape) {
  EXPECT_EQ(obs::Tracer::JsonEscape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
}

/// Minimal structural JSON validation: balanced braces/brackets outside
/// string literals, no trailing garbage. Catches truncated or unescaped
/// output without a JSON library.
void ExpectWellFormedJson(const std::string& json) {
  int depth = 0;
  bool in_string = false;
  bool escaped = false;
  for (char c : json) {
    if (in_string) {
      if (escaped) {
        escaped = false;
      } else if (c == '\\') {
        escaped = true;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    switch (c) {
      case '"': in_string = true; break;
      case '{': case '[': ++depth; break;
      case '}': case ']':
        --depth;
        ASSERT_GE(depth, 0) << "unbalanced close in: " << json;
        break;
      default: break;
    }
  }
  EXPECT_FALSE(in_string) << "unterminated string in: " << json;
  EXPECT_EQ(depth, 0) << "unbalanced braces in: " << json;
}

// --- engine fixture ----------------------------------------------------------

/// users ⋈ orders ⋈ items with an age selection (the quickstart query):
/// users 1 and 2 pass age >= 30, user 1 has two orders, user 2 one, every
/// ordered item exists. Cardinality 3.
class ObsEngineTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"users", IntSchema({"id", "age"}),
                                       {ScanSpec("users.scan")}},
                              IntRows({{1, 34}, {2, 57}, {3, 25}}))
                    .ok());
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"orders",
                                       IntSchema({"user_id", "item_id"}),
                                       {ScanSpec("orders.scan")}},
                              IntRows({{1, 10}, {1, 11}, {2, 10}, {3, 12}}))
                    .ok());
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"items", IntSchema({"id", "price"}),
                                       {ScanSpec("items.scan")}},
                              IntRows({{10, 999}, {11, 25}, {12, 150}}))
                    .ok());
  }

  static constexpr const char* kJoinSql =
      "SELECT u.id, o.item_id, i.price FROM users u, orders o, items i "
      "WHERE u.id = o.user_id AND o.item_id = i.id AND u.age >= 30";

  Engine engine_;
};

// --- EXPLAIN ANALYZE ---------------------------------------------------------

TEST_F(ObsEngineTest, ExplainAnalyzeGoldenProfile) {
  // Tiny memory budget with spill on, so the profile's spill columns move.
  RunOptions options;
  options.spill = true;
  options.memory_budget_entries = 4;
  auto handle = engine_.Query(std::string("EXPLAIN ANALYZE ") + kJoinSql,
                              options);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  EXPECT_TRUE(handle.Value().done()) << "EXPLAIN ANALYZE runs to completion";
  const obs::QueryProfile profile = handle.Value().Profile();

  EXPECT_EQ(profile.executor, "sim");
  EXPECT_EQ(profile.num_results, 3u);
  EXPECT_GT(profile.tuples_routed, 0u);
  EXPECT_GT(profile.spill_ios, 0u) << "budget of 4 entries must spill";

  // Per-module rows: the selection must show its *observed* selectivity
  // (2 of 3 users pass age >= 30) against the uninformed 0.5 prior, and
  // the SteMs must carry build/probe/spill counters.
  const obs::ModuleProfileRow* selection = nullptr;
  uint64_t stem_rows = 0;
  uint64_t stem_builds = 0;
  uint64_t stem_spill_ios = 0;
  for (const obs::ModuleProfileRow& m : profile.modules) {
    if (m.kind == "SM") selection = &m;
    if (m.kind == "SteM") {
      ++stem_rows;
      stem_builds += m.builds;
      stem_spill_ios += m.spill_ios;
    }
  }
  ASSERT_NE(selection, nullptr) << "profile must list the selection module";
  EXPECT_EQ(selection->tuples_in, 3u);
  EXPECT_EQ(selection->tuples_out, 2u);
  EXPECT_NEAR(selection->observed_selectivity, 2.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(selection->assumed_selectivity, 0.5);
  EXPECT_GE(stem_rows, 2u) << "two join columns => at least two SteMs";
  EXPECT_GT(stem_builds, 0u);
  EXPECT_GT(stem_spill_ios, 0u) << "spill I/O must be attributed to SteMs";

  // The rendered table carries the headline columns.
  const std::string table = profile.ToTable();
  for (const char* needle :
       {"module", "sel(obs)", "sel(asm)", "spill_io", "executor=sim"}) {
    EXPECT_NE(table.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n" << table;
  }
}

TEST_F(ObsEngineTest, ExplainAnalyzeConvenienceAndPrepareRejection) {
  auto table = engine_.ExplainAnalyze(kJoinSql);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_NE(table.Value().find("SteM"), std::string::npos);

  auto prepared = engine_.Prepare(std::string("EXPLAIN ANALYZE ") + kJoinSql);
  ASSERT_FALSE(prepared.ok());
  EXPECT_EQ(prepared.status().code(), StatusCode::kInvalidQuery);
  EXPECT_NE(prepared.status().message().find("cannot be prepared"),
            std::string::npos);
}

TEST_F(ObsEngineTest, ExplainRequiresAnalyze) {
  auto handle = engine_.Query(std::string("EXPLAIN ") + kJoinSql);
  ASSERT_FALSE(handle.ok());
  EXPECT_NE(handle.status().message().find("expected ANALYZE"),
            std::string::npos);
}

// --- trace export ------------------------------------------------------------

TEST_F(ObsEngineTest, SimTraceExportsChromeJson) {
  RunOptions options;
  options.trace_every_n = 1;
  auto handle = engine_.Query(kJoinSql, options);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  handle.Value().Wait();
  const std::string json = handle.Value().DumpTrace();
  ExpectWellFormedJson(json);
  EXPECT_EQ(json.find("{\"traceEvents\":["), 0u) << json.substr(0, 80);
  EXPECT_NE(json.find("\"otherData\""), std::string::npos);
  EXPECT_NE(json.find("\"events_seen\""), std::string::npos);
  EXPECT_NE(json.find("\"every_n\":1"), std::string::npos);
  // Both sim streams must appear: routing decisions and module service
  // spans on the virtual clock.
  EXPECT_NE(json.find("\"cat\":\"route\""), std::string::npos);
  EXPECT_NE(json.find("\"cat\":\"module\""), std::string::npos);
}

TEST_F(ObsEngineTest, ThreadedTraceExportsMorselSpans) {
  RunOptions options = RunOptions::Threaded();
  options.trace_every_n = 1;
  auto handle = engine_.Query(kJoinSql, options);
  ASSERT_TRUE(handle.ok()) << handle.status().ToString();
  handle.Value().Wait();
  const std::string json = handle.Value().DumpTrace();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"cat\":\"morsel\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"tid\":"), std::string::npos);
}

TEST_F(ObsEngineTest, TracingDisabledDumpsEmptyTrace) {
  auto handle = engine_.Query(kJoinSql);
  ASSERT_TRUE(handle.ok());
  handle.Value().Wait();
  const std::string json = handle.Value().DumpTrace();
  ExpectWellFormedJson(json);
  EXPECT_NE(json.find("\"traceEvents\":[]"), std::string::npos);
  EXPECT_NE(json.find("\"every_n\":0"), std::string::npos);
}

// --- engine-wide registry ----------------------------------------------------

TEST_F(ObsEngineTest, EngineRegistryAggregatesAcrossQueries) {
  ASSERT_TRUE(engine_.Query(kJoinSql).ok());
  auto handle = engine_.Query(kJoinSql);
  ASSERT_TRUE(handle.ok());
  handle.Value().Wait();
  // Both queries were driven to completion lazily by cursors; pump the
  // first too.
  obs::MetricsRegistry& registry = engine_.metrics_registry();
  EXPECT_GE(registry.GetCounter("engine.queries_completed")->value(), 1u);
  EXPECT_GT(registry.GetCounter("eddy.tuples_routed")->value(), 0u);
  EXPECT_GT(registry.GetHistogram("engine.query_wall_us")->count(), 0u);
  const std::string text = registry.ExpositionText();
  EXPECT_NE(text.find("stems_engine_queries_completed"), std::string::npos);
}

TEST_F(ObsEngineTest, PublishMetricsOffKeepsRegistryQuiet) {
  RunOptions options;
  options.publish_metrics = false;
  auto handle = engine_.Query(kJoinSql, options);
  ASSERT_TRUE(handle.ok());
  handle.Value().Wait();
  EXPECT_EQ(engine_.metrics_registry().GetCounter("engine.queries_completed")
                ->value(),
            0u);
}

// --- QueryStats canary -------------------------------------------------------

// Compile-time field-count canary: the structured binding below names
// every QueryStats field. Adding a field to QueryStats breaks this
// binding, forcing the author to ALSO extend the observability surfaces
// fed from it — TenantRollup/Counters() (the Stats wire frame),
// QueryHandle::Profile(), and the golden name list asserted below.
TEST(QueryStatsCanaryTest, FieldCountMatchesObservabilitySurfaces) {
  QueryStats stats;
  auto& [num_results, tuples_routed, tuples_retired, routing_wall_ns,
         constraint_violations, parked, stems_shared, builds_avoided,
         completed_at, policy, cancelled, executor, worker_counters,
         spill_ios, bytes_spilled, entries_spilled, partitions_resident,
         partitions_spilled] = stats;
  (void)num_results; (void)tuples_routed; (void)tuples_retired;
  (void)routing_wall_ns; (void)constraint_violations; (void)parked;
  (void)stems_shared; (void)builds_avoided; (void)completed_at;
  (void)policy; (void)cancelled; (void)executor; (void)worker_counters;
  (void)spill_ios; (void)bytes_spilled; (void)entries_spilled;
  (void)partitions_resident; (void)partitions_spilled;

  // Golden counter-name list of the Stats wire frame payload. A QueryStats
  // field surfaced per tenant must appear here; update deliberately.
  server::TenantRollup rollup;
  std::vector<std::string> names;
  for (const auto& [name, value] : rollup.Counters()) names.push_back(name);
  const std::vector<std::string> expected = {
      "queries_submitted", "queries_admitted", "queries_queued",
      "queries_rejected", "queries_completed", "queries_cancelled",
      "queries_failed", "num_results", "tuples_routed", "tuples_retired",
      "spill_ios", "bytes_spilled", "builds_avoided", "running_queries",
      "queued_queries", "memory_entries_in_use", "queue_high_water",
      "queued_time_ms",
  };
  EXPECT_EQ(names, expected)
      << "TenantRollup::Counters() drifted from the golden list; update "
         "both (and docs/observability.md) together";
}

// --- tenant governor queue accounting ---------------------------------------

TEST(TenantGovernorObsTest, QueueHighWaterAndQueuedTime) {
  server::TenantGovernor governor;
  server::TenantQuota quota;
  quota.max_concurrent_queries = 1;
  ASSERT_TRUE(governor.RegisterTenant("t", quota).ok());
  ASSERT_EQ(governor.OnSubmit("t", 0).outcome,
            server::AdmissionOutcome::kAdmit);
  ASSERT_EQ(governor.OnSubmit("t", 0).outcome,
            server::AdmissionOutcome::kQueue);
  ASSERT_EQ(governor.OnSubmit("t", 0).outcome,
            server::AdmissionOutcome::kQueue);
  EXPECT_EQ(governor.Rollup("t").queue_high_water, 2u);

  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  governor.OnQueryFinished("t", 0, QueryStats{}, Status::OK());
  ASSERT_TRUE(governor.TryAdmitQueued("t", 0));
  governor.DropQueued("t");
  const server::TenantRollup rollup = governor.Rollup("t");
  EXPECT_EQ(rollup.queue_high_water, 2u) << "high water is monotone";
  EXPECT_EQ(rollup.queued_queries, 0u);
  // Both deferred submits waited at least the 20ms sleep (minus sched
  // noise; assert a conservative floor).
  EXPECT_GE(rollup.queued_time_ms, 10u);
}

// --- server exposition -------------------------------------------------------

class ObsServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ASSERT_TRUE(engine_
                    .AddTable(TableDef{"users", IntSchema({"id", "age"}),
                                       {ScanSpec("users.scan")}},
                              IntRows({{1, 34}, {2, 57}, {3, 25}}))
                    .ok());
  }

  Engine engine_;
};

TEST_F(ObsServerTest, MetricsFrameServesExpositionEndToEnd) {
  server::ServerOptions options;
  server::Server srv(&engine_, options);
  ASSERT_TRUE(srv.Start().ok());
  server::Client client;
  ASSERT_TRUE(
      client.Connect("127.0.0.1", srv.port(), "tenant_a").ok());
  auto rows = client.RunQuery("SELECT u.id FROM users u WHERE u.age >= 30");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.Value().size(), 2u);

  auto metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  const std::string& text = metrics.Value();
  for (const char* needle :
       {"stems_server_submits_admitted 1", "stems_server_sessions_active",
        "stems_server_engine_ticks", "stems_server_request_queue_high_water",
        "stems_server_fetch_us_count", "stems_engine_queries_completed",
        "stems_eddy_tuples_routed"}) {
    EXPECT_NE(text.find(needle), std::string::npos)
        << "missing '" << needle << "' in:\n" << text;
  }
  // The wire frame and the in-process accessor serve the same registry.
  EXPECT_NE(srv.MetricsText().find("stems_server_submits_admitted 1"),
            std::string::npos);

  // Stats frame additions: server health rides with the tenant rollup.
  auto stats = client.TenantStats();
  ASSERT_TRUE(stats.ok());
  bool saw_ticks = false, saw_hwm = false, saw_queued_time = false;
  for (const auto& [name, value] : stats.Value()) {
    if (name == "server.engine_ticks") saw_ticks = value > 0;
    if (name == "server.request_queue_high_water") saw_hwm = value > 0;
    if (name == "queued_time_ms") saw_queued_time = true;
  }
  EXPECT_TRUE(saw_ticks);
  EXPECT_TRUE(saw_hwm);
  EXPECT_TRUE(saw_queued_time);

  EXPECT_TRUE(client.Close().ok());
  srv.Shutdown();
}

TEST_F(ObsServerTest, SlowQueryLogFiresAboveThreshold) {
  Mutex mu;
  std::vector<std::string> lines;
  server::ServerOptions options;
  options.slow_query_ms = 1;
  options.slow_query_log = [&](const std::string& line) {
    MutexLock lock(&mu);
    lines.push_back(line);
  };
  // Pin a floor under the query's wall time (the hook runs on the engine
  // thread between Submit and the first Fetch's pump).
  options.post_submit_hook = [](const std::string&, QueryHandle&) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };
  server::Server srv(&engine_, options);
  ASSERT_TRUE(srv.Start().ok());
  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port(), "tenant_a").ok());
  auto rows = client.RunQuery("SELECT u.id FROM users u");
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(client.Close().ok());
  srv.Shutdown();

  MutexLock lock(&mu);
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("slow query: tenant=tenant_a"), std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("wall_ms="), std::string::npos);
  EXPECT_NE(lines[0].find("results=3"), std::string::npos);
  EXPECT_GE(engine_.metrics_registry().GetCounter("server.slow_queries")
                ->value(),
            1u);
}

TEST_F(ObsServerTest, ExplainAnalyzeRejectedOverTheWire) {
  server::ServerOptions options;
  server::Server srv(&engine_, options);
  ASSERT_TRUE(srv.Start().ok());
  server::Client client;
  ASSERT_TRUE(client.Connect("127.0.0.1", srv.port(), "tenant_a").ok());
  auto prepared =
      client.Prepare("EXPLAIN ANALYZE SELECT u.id FROM users u");
  ASSERT_FALSE(prepared.ok());
  EXPECT_NE(client.last_error().message.find("cannot be prepared"),
            std::string::npos)
      << client.last_error().message;
  EXPECT_TRUE(client.Close().ok());
  srv.Shutdown();
}

}  // namespace
}  // namespace stems
