// ConstraintChecker tests: deliberately broken routing policies must be
// caught (paper Table 2's rules are enforceable, not aspirational).
#include <gtest/gtest.h>

#include "eddy/policies/policy_base.h"
#include "tests/test_util.h"

namespace stems {
namespace {

using testing::FastConfig;
using testing::IndexSpec;
using testing::IntRows;
using testing::IntSchema;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::ScanSpec;
using testing::TestDb;

/// Violates BuildFirst: unbuilt singletons go straight to probing.
class SkipBuildPolicy : public PolicyBase {
 public:
  const char* name() const override { return "bad-skip-build"; }

 protected:
  int ChooseProbeSlot(const Tuple&, const std::vector<int>& c) override {
    return c.front();
  }

 public:
  RouteDecision Route(const TuplePtr& tuple) override {
    const int slot = tuple->SingletonSlot();
    if (slot >= 0 && tuple->component(slot).timestamp == kTsInfinity &&
        !tuple->IsPriorProber()) {
      auto candidates = ProbeCandidates(*tuple);
      if (!candidates.empty()) {
        return RouteDecision::Send(eddy_->StemForSlot(candidates.front()),
                                   RouteIntent::kProbe, candidates.front());
      }
    }
    return PolicyBase::Route(tuple);
  }
};

/// Violates ProbeCompletion: retires prior probers immediately.
class DropProberPolicy : public PolicyBase {
 public:
  const char* name() const override { return "bad-drop-prober"; }

 protected:
  int ChooseProbeSlot(const Tuple&, const std::vector<int>& c) override {
    return c.front();
  }

 public:
  RouteDecision Route(const TuplePtr& tuple) override {
    if (tuple->IsPriorProber() && !tuple->probe_completed()) {
      return RouteDecision::Retire();
    }
    return PolicyBase::Route(tuple);
  }
};

/// Violates ProbeCompletion: prior probers probe a different SteM.
class WrongStemPolicy : public PolicyBase {
 public:
  const char* name() const override { return "bad-wrong-stem"; }

 protected:
  int ChooseProbeSlot(const Tuple&, const std::vector<int>& c) override {
    return c.front();
  }

 public:
  RouteDecision Route(const TuplePtr& tuple) override {
    if (tuple->IsPriorProber() && !tuple->probe_completed()) {
      // Probe some OTHER table's SteM — the §3.4 duplicate recipe.
      for (int s = 0; s < static_cast<int>(eddy_->query().num_slots()); ++s) {
        if (s != tuple->probe_completion_slot() && !tuple->Spans(s)) {
          return RouteDecision::Send(eddy_->StemForSlot(s),
                                     RouteIntent::kProbe, s);
        }
      }
    }
    return PolicyBase::Route(tuple);
  }
};

class ConstraintsTest : public ::testing::Test {
 protected:
  // R joins S; S is index-only so probes genuinely bounce.
  void SetUp() override {
    db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}}),
                 {ScanSpec("R.scan")});
    db_.AddTable("S", IntSchema({"x", "y"}),
                 IntRows({{1, 4}, {2, 5}, {3, 6}}),
                 {IndexSpec("S.idx", {0})});
    db_.AddTable("T", IntSchema({"b"}), IntRows({{4}, {5}}),
                 {ScanSpec("T.scan")});
    QueryBuilder qb(db_.catalog);
    qb.AddTable("R").AddTable("S").AddTable("T");
    qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b");
    query_ = qb.Build().ValueOrDie();
  }

  size_t ViolationsWith(std::unique_ptr<RoutingPolicy> policy) {
    auto run = RunEddy(query_, db_, FastConfig(), std::move(policy));
    return run.violations;
  }

  TestDb db_;
  QuerySpec query_;
};

TEST_F(ConstraintsTest, CorrectPoliciesHaveNoViolations) {
  EXPECT_EQ(ViolationsWith(MakePolicy(PolicyKind::kNaryShj)), 0u);
  EXPECT_EQ(ViolationsWith(MakePolicy(PolicyKind::kLottery)), 0u);
  EXPECT_EQ(ViolationsWith(MakePolicy(PolicyKind::kBenefitCost)), 0u);
}

TEST_F(ConstraintsTest, BuildFirstViolationDetected) {
  EXPECT_GT(ViolationsWith(std::make_unique<SkipBuildPolicy>()), 0u);
}

TEST_F(ConstraintsTest, ProbeCompletionRetireViolationDetected) {
  EXPECT_GT(ViolationsWith(std::make_unique<DropProberPolicy>()), 0u);
}

TEST_F(ConstraintsTest, ProbeCompletionWrongStemViolationDetected) {
  EXPECT_GT(ViolationsWith(std::make_unique<WrongStemPolicy>()), 0u);
}

TEST_F(ConstraintsTest, CheckerOffRecordsNothing) {
  ExecutionConfig config = FastConfig();
  config.eddy.constraint_mode = ConstraintMode::kOff;
  auto run = RunEddy(query_, db_, config,
                     std::make_unique<DropProberPolicy>());
  EXPECT_EQ(run.violations, 0u);
}

TEST_F(ConstraintsTest, BoundedRepetitionBackstopTerminates) {
  // A policy that ping-pongs tuples to SMs forever must still terminate via
  // the BoundedRepetition backstop.
  class PingPongPolicy : public PolicyBase {
   public:
    const char* name() const override { return "bad-pingpong"; }
    RouteDecision Route(const TuplePtr& tuple) override {
      if (!eddy_->selection_modules().empty() && !tuple->is_seed()) {
        SelectionModule* sm = eddy_->selection_modules().front();
        if (sm->predicate()->CanEvaluate(tuple->spanned_mask())) {
          return RouteDecision::Send(sm, RouteIntent::kAuto);
        }
      }
      return PolicyBase::Route(tuple);
    }

   protected:
    int ChooseProbeSlot(const Tuple&, const std::vector<int>& c) override {
      return c.front();
    }
  };

  // Two tables, so a passed singleton is not output-eligible and the bad
  // policy can ping-pong it through the SM forever.
  TestDb db;
  db.AddTable("R", IntSchema({"a"}), IntRows({{7}}), {ScanSpec("R.scan")});
  db.AddTable("S", IntSchema({"x"}), IntRows({{1}}), {ScanSpec("S.scan")});
  QueryBuilder qb(db.catalog);
  qb.AddTable("R").AddTable("S");
  qb.AddSelection("R.a", CompareOp::kGt, Value::Int64(0));
  QuerySpec q = qb.Build().ValueOrDie();
  ExecutionConfig config = FastConfig();
  config.eddy.max_routes_per_tuple = 50;
  auto run = RunEddy(q, db, config, std::make_unique<PingPongPolicy>());
  // Terminated (we got here) and flagged.
  EXPECT_GT(run.violations, 0u);
}

}  // namespace
}  // namespace stems
