// End-to-end eddy correctness on small hand-checked queries
// (paper Theorems 1 and 2 in miniature).
#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace stems {
namespace {

using testing::EddyRun;
using testing::ExpectCorrect;
using testing::FastConfig;
using testing::IntRows;
using testing::IntSchema;
using testing::IndexSpec;
using testing::MakePolicy;
using testing::PolicyKind;
using testing::RunEddy;
using testing::ScanSpec;
using testing::TestDb;

class EddyBasicTest : public ::testing::Test {
 protected:
  TestDb db_;
};

TEST_F(EddyBasicTest, TwoTableEquiJoinScans) {
  db_.AddTable("R", IntSchema({"key", "a"}),
               IntRows({{1, 10}, {2, 20}, {3, 10}}), {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "p"}),
               IntRows({{10, 100}, {20, 200}, {30, 300}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();

  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 3u);  // (1,10)-(10,100), (3,10)-(10,100), (2,20)-(20,200)
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

TEST_F(EddyBasicTest, TwoTableJoinEmptyResult) {
  db_.AddTable("R", IntSchema({"key", "a"}), IntRows({{1, 1}, {2, 2}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{7}, {8}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 0u);
  EXPECT_EQ(run.violations, 0u);
}

TEST_F(EddyBasicTest, EmptyTable) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), {}, {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

TEST_F(EddyBasicTest, SingleTableSelection) {
  db_.AddTable("R", IntSchema({"key", "a"}),
               IntRows({{1, 5}, {2, 15}, {3, 25}}), {ScanSpec("R.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddSelection("R.a", CompareOp::kGt, Value::Int64(10));
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 2u);
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

TEST_F(EddyBasicTest, JoinWithSelectionsBothSides) {
  db_.AddTable("R", IntSchema({"key", "a"}),
               IntRows({{1, 1}, {2, 2}, {3, 3}, {4, 4}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "v"}),
               IntRows({{1, 10}, {2, 20}, {3, 30}, {4, 40}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  qb.AddSelection("R.key", CompareOp::kGe, Value::Int64(2));
  qb.AddSelection("S.v", CompareOp::kLt, Value::Int64(40));
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 2u);  // (2,2)x(2,20), (3,3)x(3,30)
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

TEST_F(EddyBasicTest, ThreeTableChain) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "y"}),
               IntRows({{1, 7}, {2, 8}, {3, 9}, {3, 7}}),
               {ScanSpec("S.scan")});
  db_.AddTable("T", IntSchema({"b"}), IntRows({{7}, {8}}),
               {ScanSpec("T.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b");
  QuerySpec q = qb.Build().ValueOrDie();
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

TEST_F(EddyBasicTest, ThreeTableChainAllPolicies) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}, {3}, {4}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x", "y"}),
               IntRows({{1, 7}, {2, 8}, {4, 9}, {4, 7}, {1, 7}}),
               {ScanSpec("S.scan")});
  db_.AddTable("T", IntSchema({"b", "c"}),
               IntRows({{7, 0}, {8, 1}, {9, 2}}), {ScanSpec("T.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddTable("T");
  qb.AddJoin("R.a", "S.x").AddJoin("S.y", "T.b");
  QuerySpec q = qb.Build().ValueOrDie();
  for (auto kind : {PolicyKind::kNaryShj, PolicyKind::kLottery,
                    PolicyKind::kBenefitCost}) {
    SCOPED_TRACE(static_cast<int>(kind));
    ExpectCorrect(q, db_, FastConfig(), MakePolicy(kind));
  }
}

TEST_F(EddyBasicTest, CrossProduct) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {2}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{10}, {20}, {30}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 6u);
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

TEST_F(EddyBasicTest, ThetaJoinLessThan) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {5}, {9}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{3}, {6}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x", CompareOp::kLt);
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 3u);  // 1<3, 1<6, 5<6
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

TEST_F(EddyBasicTest, DuplicateRowsInBaseTableAreSetSemantics) {
  db_.AddTable("R", IntSchema({"a"}), IntRows({{1}, {1}, {2}}),
               {ScanSpec("R.scan")});
  db_.AddTable("S", IntSchema({"x"}), IntRows({{1}, {2}, {2}}),
               {ScanSpec("S.scan")});
  QueryBuilder qb(db_.catalog);
  qb.AddTable("R").AddTable("S").AddJoin("R.a", "S.x");
  QuerySpec q = qb.Build().ValueOrDie();
  EddyRun run = RunEddy(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
  EXPECT_EQ(run.num_results, 2u);  // set semantics (paper §3.2)
  ExpectCorrect(q, db_, FastConfig(), MakePolicy(PolicyKind::kNaryShj));
}

}  // namespace
}  // namespace stems
