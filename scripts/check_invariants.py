#!/usr/bin/env python3
"""Repo-invariant linter: structural rules the compiler cannot express.

Complements the Clang thread-safety analysis (docs/static_analysis.md):
TSA proves lock discipline *given* that code uses the annotated
stems::Mutex; this script proves the premises and the cross-cutting
conventions:

  naked-mutex      Raw std::mutex / lock types / condition_variable are
                   forbidden outside src/common/thread_annotations.h.
                   Everything must go through the annotated wrappers, or
                   the thread-safety lane silently loses coverage.

  wall-clock       Virtual-clock code (the discrete-event simulator and
                   everything scheduled on it) must not read the wall
                   clock: steady_clock/system_clock::now() there breaks
                   determinism and sim/threaded equivalence. A read that
                   is *intentionally* wall-clock (observability spans)
                   carries a `// wall-clock: <why>` comment within the
                   preceding five lines. src/sim/ gets no such escape:
                   the clock itself may never consult real time.

  engine-thread    Only the engine thread may touch the Engine. In
                   src/server/server.cc, `engine_->` must not appear in
                   the network-thread section (between the
                   `--- network thread` and `--- engine thread` section
                   markers), and no other file under src/server/ may
                   dereference an Engine at all.

  nodiscard        Status and Result<T> (src/common/status.h) must be
                   declared [[nodiscard]] so a discarded error status is
                   a -Werror build break, not a silent drop.

  atomic-doc       Every std::atomic<> member declaration carries a
                   nearby `relaxed:` or `sync:` comment saying why its
                   memory ordering is sufficient. Undocumented atomics
                   are where the next data race hides.

  schedulable-atomic
                   Atomic members in the concurrent subsystems (src/exec/
                   and src/server/) must be stems::Atomic<T>, not raw
                   std::atomic<T>, so the schedule-exploration harness
                   (src/check/) sees the access as a preemption point.
                   A raw atomic there is invisible to the model checker:
                   every interleaving around it goes untested. Atomics
                   that are genuinely outside any sync protocol (pure
                   statistics read by nobody the checker cares about)
                   carry an allow(schedulable-atomic) suppression.

Suppression (sparingly): a line, or the line above it, may carry
`// invariant: allow(<rule>) -- <reason>`. The reason is mandatory.

Exit status 0 = clean, 1 = violations (printed one per line as
path:line: [rule] message). Run from anywhere; paths resolve against the
repo root (the parent of this script's directory).
"""

import re
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

# Directories whose code runs on (or defines) the virtual clock. The
# threaded executor (src/exec/), the server (src/server/) and the
# observability layer (src/obs/) are wall-clock land by design.
VIRTUAL_CLOCK_DIRS = (
    "src/sim",
    "src/eddy",
    "src/stem",
    "src/am",
    "src/sm",
    "src/engine",
    "src/spill",
    "src/baseline",
    "src/runtime",
    "src/query",
)

SOURCE_GLOBS = ("src/**/*.h", "src/**/*.cc", "tests/**/*.h", "tests/**/*.cc",
                "bench/**/*.h", "bench/**/*.cc")

ANNOTATIONS_HEADER = "src/common/thread_annotations.h"

NAKED_MUTEX_RE = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|shared_timed_mutex"
    r"|lock_guard|unique_lock|scoped_lock|shared_lock|condition_variable"
    r"|condition_variable_any)\b")
WALL_CLOCK_RE = re.compile(
    r"std::chrono::(steady_clock|system_clock|high_resolution_clock)::now\b")
ATOMIC_MEMBER_RE = re.compile(r"^\s+(?:mutable\s+)?std::atomic<")
ATOMIC_POINTER_RE = re.compile(r"std::atomic<[^<>]*>\s*[*&]")
ATOMIC_DOC_RE = re.compile(r"relaxed[-:]|sync:")
WALL_CLOCK_DOC_RE = re.compile(r"//.*wall-clock:")
ALLOW_RE = re.compile(r"//\s*invariant:\s*allow\(([a-z-]+)\)\s*--\s*\S")

NET_THREAD_MARKER = "--- network thread"
ENGINE_THREAD_MARKER = "--- engine thread"


def is_comment(line: str) -> bool:
    stripped = line.lstrip()
    return stripped.startswith("//") or stripped.startswith("*")


def allowed(lines, i, rule):
    """True if line i (0-based) or the line above carries a matching
    `// invariant: allow(<rule>) -- reason` suppression."""
    for j in (i, i - 1):
        if j < 0:
            continue
        m = ALLOW_RE.search(lines[j])
        if m and m.group(1) == rule:
            return True
    return False


def check_file(rel, lines, errors):
    in_net_section = False
    for i, line in enumerate(lines):
        lineno = i + 1

        # naked-mutex ---------------------------------------------------
        if rel != ANNOTATIONS_HEADER and not is_comment(line):
            m = NAKED_MUTEX_RE.search(line)
            if m and not allowed(lines, i, "naked-mutex"):
                errors.append(
                    f"{rel}:{lineno}: [naked-mutex] raw std::{m.group(1)}; "
                    f"use stems::Mutex / MutexLock / CondVar from "
                    f"{ANNOTATIONS_HEADER} so the thread-safety analysis "
                    f"sees it")

        # wall-clock ----------------------------------------------------
        if rel.startswith(VIRTUAL_CLOCK_DIRS) and not is_comment(line):
            m = WALL_CLOCK_RE.search(line)
            if m and not allowed(lines, i, "wall-clock"):
                documented = any(
                    WALL_CLOCK_DOC_RE.search(lines[j])
                    for j in range(max(0, i - 5), i + 1))
                if rel.startswith("src/sim/"):
                    errors.append(
                        f"{rel}:{lineno}: [wall-clock] "
                        f"{m.group(1)}::now() inside the simulator core; "
                        f"the virtual clock must never consult real time "
                        f"(no marker escape in src/sim/)")
                elif not documented:
                    errors.append(
                        f"{rel}:{lineno}: [wall-clock] "
                        f"{m.group(1)}::now() in a virtual-clock path "
                        f"without a `// wall-clock: <why>` marker in the "
                        f"preceding five lines")

        # engine-thread -------------------------------------------------
        if rel == "src/server/server.cc":
            if NET_THREAD_MARKER in line:
                in_net_section = True
            elif ENGINE_THREAD_MARKER in line:
                in_net_section = False
            elif (in_net_section and "engine_->" in line
                  and not is_comment(line)
                  and not allowed(lines, i, "engine-thread")):
                errors.append(
                    f"{rel}:{lineno}: [engine-thread] engine_-> in the "
                    f"network-thread section; only the engine thread may "
                    f"touch the Engine (server.h threading contract)")
        elif rel.startswith("src/server/") and "engine_->" in line:
            if not is_comment(line) and not allowed(lines, i, "engine-thread"):
                errors.append(
                    f"{rel}:{lineno}: [engine-thread] engine_-> outside "
                    f"server.cc; Engine access is confined to the server's "
                    f"engine thread")

        # atomic-doc ----------------------------------------------------
        if (rel.startswith("src/") and ATOMIC_MEMBER_RE.search(line)
                and not ATOMIC_POINTER_RE.search(line)):
            # Pointers/references to atomics are aliases, not new shared
            # state — the owning declaration carries the doc. The ten-line
            # window lets one comment cover a small group of members.
            documented = any(
                ATOMIC_DOC_RE.search(lines[j])
                for j in range(max(0, i - 10), i + 1))
            if not documented and not allowed(lines, i, "atomic-doc"):
                errors.append(
                    f"{rel}:{lineno}: [atomic-doc] std::atomic member "
                    f"without a nearby `relaxed:` or `sync:` comment "
                    f"explaining why its ordering suffices")

        # schedulable-atomic --------------------------------------------
        if (rel.startswith(("src/exec/", "src/server/"))
                and ATOMIC_MEMBER_RE.search(line)
                and not ATOMIC_POINTER_RE.search(line)
                and not allowed(lines, i, "schedulable-atomic")):
            errors.append(
                f"{rel}:{lineno}: [schedulable-atomic] raw std::atomic "
                f"member in a schedule-explored subsystem; use "
                f"stems::Atomic<T> ({ANNOTATIONS_HEADER}) so the model "
                f"checker treats it as a preemption point, or add "
                f"`// invariant: allow(schedulable-atomic) -- <reason>`")


def check_nodiscard(errors):
    status_h = REPO_ROOT / "src/common/status.h"
    text = status_h.read_text(encoding="utf-8")
    for cls in ("Status", "Result"):
        pattern = rf"class\s+\[\[nodiscard\]\]\s+{cls}\b"
        if not re.search(pattern, text):
            errors.append(
                f"src/common/status.h:1: [nodiscard] class {cls} is not "
                f"declared [[nodiscard]]; discarded error statuses would "
                f"compile silently")


def main():
    errors = []
    seen = set()
    for pattern in SOURCE_GLOBS:
        for path in sorted(REPO_ROOT.glob(pattern)):
            rel = path.relative_to(REPO_ROOT).as_posix()
            if rel in seen:
                continue
            seen.add(rel)
            lines = path.read_text(encoding="utf-8").splitlines()
            check_file(rel, lines, errors)
    check_nodiscard(errors)

    if errors:
        for e in errors:
            print(e)
        print(f"\ncheck_invariants: {len(errors)} violation(s)",
              file=sys.stderr)
        return 1
    print(f"check_invariants: OK ({len(seen)} files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
