#include "query/validation.h"

#include <numeric>
#include <vector>

namespace stems {

Status ValidateQueryShape(const QuerySpec& query) {
  const size_t n = query.num_slots();
  if (n == 0) {
    return Status::InvalidQuery("query has no tables (empty FROM list)");
  }
  if (n > 64) {
    return Status::InvalidQuery("query has " + std::to_string(n) +
                                " table instances; at most 64 are supported");
  }
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (query.slots()[i].alias == query.slots()[j].alias) {
        return Status::InvalidQuery("duplicate alias '" +
                                    query.slots()[i].alias +
                                    "' in FROM list");
      }
    }
  }
  return Status::OK();
}

Status ValidateJoinConnected(const QuerySpec& query) {
  const size_t n = query.num_slots();
  if (n < 2) return Status::OK();
  // Union-find over join predicates: every slot must land in one
  // component, or part of the query is a cross product.
  std::vector<int> parent(n);
  std::iota(parent.begin(), parent.end(), 0);
  auto find = [&parent](int x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };
  for (const auto& p : query.predicates()) {
    if (!p.is_join()) continue;
    parent[find(p.lhs().table_slot)] = find(p.rhs().table_slot);
  }
  const int root = find(0);
  for (size_t i = 1; i < n; ++i) {
    if (find(static_cast<int>(i)) != root) {
      return Status::InvalidQuery(
          "table instance '" + query.slots()[i].alias +
          "' is not join-connected to '" + query.slots()[0].alias +
          "'; cross products are rejected in SQL — add a join predicate "
          "linking every table (the programmatic QueryBuilder remains the "
          "escape hatch for deliberate cross joins)");
    }
  }
  return Status::OK();
}

bool IndexAmReachable(const QuerySpec& query, int slot,
                      const AccessMethodSpec& am, uint64_t reachable_mask) {
  for (int bind_col : am.bind_columns) {
    bool bound = false;
    for (const auto& p : query.predicates()) {
      auto col = p.EquiJoinColumnFor(slot);
      if (!col.has_value() || *col != bind_col) continue;
      auto peer = p.EquiJoinPeerOf(slot);
      if (peer.has_value() && peer->table_slot != slot &&
          (reachable_mask & (1ULL << peer->table_slot))) {
        bound = true;
        break;
      }
    }
    if (!bound) return false;
  }
  return true;
}

Status ValidateBindOrder(const QuerySpec& query) {
  const size_t n = query.num_slots();
  uint64_t reachable = 0;
  // Scannable tables are immediately reachable.
  for (size_t i = 0; i < n; ++i) {
    if (query.slots()[i].def->HasScanAm()) reachable |= 1ULL << i;
  }
  // Fixpoint over index AMs.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (reachable & (1ULL << i)) continue;
      for (const auto& am : query.slots()[i].def->access_methods) {
        if (am.kind != AccessMethodKind::kIndex) continue;
        if (IndexAmReachable(query, static_cast<int>(i), am, reachable)) {
          reachable |= 1ULL << i;
          changed = true;
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!(reachable & (1ULL << i))) {
      return Status::InvalidQuery(
          "table instance '" + query.slots()[i].alias +
          "' is unreachable: no scan AM and no index AM whose bind fields "
          "can be satisfied");
    }
  }
  return Status::OK();
}

}  // namespace stems
