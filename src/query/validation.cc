#include "query/validation.h"

namespace stems {

bool IndexAmReachable(const QuerySpec& query, int slot,
                      const AccessMethodSpec& am, uint64_t reachable_mask) {
  for (int bind_col : am.bind_columns) {
    bool bound = false;
    for (const auto& p : query.predicates()) {
      auto col = p.EquiJoinColumnFor(slot);
      if (!col.has_value() || *col != bind_col) continue;
      auto peer = p.EquiJoinPeerOf(slot);
      if (peer.has_value() && peer->table_slot != slot &&
          (reachable_mask & (1ULL << peer->table_slot))) {
        bound = true;
        break;
      }
    }
    if (!bound) return false;
  }
  return true;
}

Status ValidateBindOrder(const QuerySpec& query) {
  const size_t n = query.num_slots();
  uint64_t reachable = 0;
  // Scannable tables are immediately reachable.
  for (size_t i = 0; i < n; ++i) {
    if (query.slots()[i].def->HasScanAm()) reachable |= 1ULL << i;
  }
  // Fixpoint over index AMs.
  bool changed = true;
  while (changed) {
    changed = false;
    for (size_t i = 0; i < n; ++i) {
      if (reachable & (1ULL << i)) continue;
      for (const auto& am : query.slots()[i].def->access_methods) {
        if (am.kind != AccessMethodKind::kIndex) continue;
        if (IndexAmReachable(query, static_cast<int>(i), am, reachable)) {
          reachable |= 1ULL << i;
          changed = true;
          break;
        }
      }
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (!(reachable & (1ULL << i))) {
      return Status::InvalidQuery(
          "table instance '" + query.slots()[i].alias +
          "' is unreachable: no scan AM and no index AM whose bind fields "
          "can be satisfied");
    }
  }
  return Status::OK();
}

}  // namespace stems
