// Query validation (paper §2.2 step 1).
//
// Before instantiating modules, the planner checks that the query *can* be
// executed given the bind-field constraints of the data sources, using a
// fixpoint in the spirit of the Nail! subgoal-ordering algorithm [18]: a
// table is reachable if it has a scan AM, or if it has an index AM whose
// bind columns are all equi-joined to columns of already-reachable tables.
#pragma once

#include "common/status.h"
#include "query/query_spec.h"

namespace stems {

/// Returns OK iff every table instance in the query is reachable under the
/// bind-field constraints; otherwise an InvalidQuery status naming the first
/// unreachable table.
Status ValidateBindOrder(const QuerySpec& query);

/// True iff `slot` can satisfy the bind columns of index AM `am` given that
/// the slots in `reachable_mask` are already available: every bind column of
/// the AM appears in some equi-join predicate whose other side lies in a
/// reachable slot.
bool IndexAmReachable(const QuerySpec& query, int slot,
                      const AccessMethodSpec& am, uint64_t reachable_mask);

}  // namespace stems
