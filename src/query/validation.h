// Query validation (paper §2.2 step 1).
//
// Before instantiating modules, the planner checks that the query *can* be
// executed given the bind-field constraints of the data sources, using a
// fixpoint in the spirit of the Nail! subgoal-ordering algorithm [18]: a
// table is reachable if it has a scan AM, or if it has an index AM whose
// bind columns are all equi-joined to columns of already-reachable tables.
#pragma once

#include "common/status.h"
#include "query/query_spec.h"

namespace stems {

/// Structural sanity of a spec, independent of access methods: a non-empty
/// FROM list, at most 64 slots (the span/predicate bitmask width), and
/// unique aliases — friendly Status errors, never an assert. The planner
/// runs this on every spec; the SQL binder runs it at bind time so
/// Prepare() fails fast.
Status ValidateQueryShape(const QuerySpec& query);

/// Rejects queries whose FROM instances are not all connected by join
/// predicates. Only the SQL front end enforces this: a declarative
/// `FROM R, S` with no join is almost always a missing predicate, and the
/// result size is the full cross product. The programmatic QueryBuilder /
/// PlanQuery path still executes cross products deliberately (scan-only
/// cross joins are exercised by tests) — this is an intent check, not an
/// executability limit.
Status ValidateJoinConnected(const QuerySpec& query);

/// Returns OK iff every table instance in the query is reachable under the
/// bind-field constraints; otherwise an InvalidQuery status naming the first
/// unreachable table.
Status ValidateBindOrder(const QuerySpec& query);

/// True iff `slot` can satisfy the bind columns of index AM `am` given that
/// the slots in `reachable_mask` are already available: every bind column of
/// the AM appears in some equi-join predicate whose other side lies in a
/// reachable slot.
bool IndexAmReachable(const QuerySpec& query, int slot,
                      const AccessMethodSpec& am, uint64_t reachable_mask);

}  // namespace stems
