#include "query/join_graph.h"

#include <algorithm>
#include <functional>

namespace stems {

JoinGraph::JoinGraph(const QuerySpec& query)
    : num_nodes_(static_cast<int>(query.num_slots())) {
  adj_.resize(num_nodes_);
  for (const auto& p : query.predicates()) {
    if (!p.is_join()) continue;
    int a = p.lhs().table_slot;
    int b = p.rhs().table_slot;
    if (a > b) std::swap(a, b);
    edges_.emplace_back(a, b, p.id());
    if (std::find(adj_[a].begin(), adj_[a].end(), b) == adj_[a].end()) {
      adj_[a].push_back(b);
      adj_[b].push_back(a);
      logical_edges_.emplace_back(a, b);
    }
  }
  for (auto& n : adj_) std::sort(n.begin(), n.end());
  std::sort(logical_edges_.begin(), logical_edges_.end());
}

std::vector<int> JoinGraph::EdgesBetween(int a, int b) const {
  if (a > b) std::swap(a, b);
  std::vector<int> out;
  for (const auto& [ea, eb, id] : edges_) {
    if (ea == a && eb == b) out.push_back(id);
  }
  return out;
}

std::vector<int> JoinGraph::Neighbors(int a) const { return adj_[a]; }

bool JoinGraph::IsConnected() const {
  if (num_nodes_ == 0) return true;
  std::vector<bool> seen(num_nodes_, false);
  std::vector<int> stack = {0};
  seen[0] = true;
  int count = 1;
  while (!stack.empty()) {
    int n = stack.back();
    stack.pop_back();
    for (int m : adj_[n]) {
      if (!seen[m]) {
        seen[m] = true;
        ++count;
        stack.push_back(m);
      }
    }
  }
  return count == num_nodes_;
}

bool JoinGraph::IsCyclic() const {
  // Count logical edges per connected component; a component with E >= V has
  // a cycle.
  std::vector<int> comp(num_nodes_, -1);
  int num_comp = 0;
  for (int start = 0; start < num_nodes_; ++start) {
    if (comp[start] != -1) continue;
    std::vector<int> stack = {start};
    comp[start] = num_comp;
    while (!stack.empty()) {
      int n = stack.back();
      stack.pop_back();
      for (int m : adj_[n]) {
        if (comp[m] == -1) {
          comp[m] = num_comp;
          stack.push_back(m);
        }
      }
    }
    ++num_comp;
  }
  std::vector<int> nodes(num_comp, 0), edges(num_comp, 0);
  for (int n = 0; n < num_nodes_; ++n) ++nodes[comp[n]];
  for (const auto& [a, b] : logical_edges_) {
    (void)b;
    ++edges[comp[a]];
  }
  for (int c = 0; c < num_comp; ++c) {
    if (edges[c] >= nodes[c] && nodes[c] > 1) return true;
    if (edges[c] > nodes[c] - 1) return true;
  }
  return false;
}

std::vector<std::vector<std::pair<int, int>>> JoinGraph::SpanningTrees()
    const {
  std::vector<std::vector<std::pair<int, int>>> result;
  if (!IsConnected() || num_nodes_ == 0) return result;
  const size_t need = static_cast<size_t>(num_nodes_ - 1);

  // Enumerate edge subsets of size V-1 and keep the acyclic connected ones.
  // Fine for the small queries this engine targets.
  std::vector<std::pair<int, int>> chosen;
  std::function<void(size_t)> recurse = [&](size_t next) {
    if (chosen.size() == need) {
      // Union-find connectivity check.
      std::vector<int> parent(num_nodes_);
      for (int i = 0; i < num_nodes_; ++i) parent[i] = i;
      std::function<int(int)> find = [&](int x) {
        while (parent[x] != x) x = parent[x] = parent[parent[x]];
        return x;
      };
      for (const auto& [a, b] : chosen) {
        int ra = find(a), rb = find(b);
        if (ra == rb) return;  // cycle
        parent[ra] = rb;
      }
      int root = find(0);
      for (int i = 1; i < num_nodes_; ++i) {
        if (find(i) != root) return;  // disconnected
      }
      result.push_back(chosen);
      return;
    }
    if (next >= logical_edges_.size()) return;
    if (logical_edges_.size() - next < need - chosen.size()) return;
    chosen.push_back(logical_edges_[next]);
    recurse(next + 1);
    chosen.pop_back();
    recurse(next + 1);
  };
  recurse(0);
  return result;
}

}  // namespace stems
