// QuerySpec: a select-project-join query over catalog tables.
//
// A query is a FROM list of table instances ("slots"; self-joins occupy
// multiple slots of the same base table, sharing one SteM per §2.2), plus a
// conjunction of selection and join predicates. Projections are implicit
// (every module projects as early as possible, paper footnote 1); GroupBy /
// aggregation live above the eddy and are out of scope, as in the paper.
#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "expr/predicate.h"

namespace stems {

/// One entry of the FROM list.
struct TableInstance {
  std::string table_name;
  std::string alias;          ///< defaults to table_name
  const TableDef* def = nullptr;
};

class QuerySpec {
 public:
  const std::vector<TableInstance>& slots() const { return slots_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  size_t num_slots() const { return slots_.size(); }
  size_t num_predicates() const { return predicates_.size(); }

  /// Bitmask with one bit per table slot, all set.
  uint64_t full_span_mask() const { return (1ULL << slots_.size()) - 1; }

  /// Join predicates that reference `slot`.
  std::vector<const Predicate*> JoinPredicatesOn(int slot) const;
  /// Selection predicates that reference only `slot`.
  std::vector<const Predicate*> SelectionsOn(int slot) const;

  /// Slot index for an alias.
  Result<int> SlotOf(const std::string& alias) const;

  std::string ToString() const;

 private:
  friend class QueryBuilder;
  std::vector<TableInstance> slots_;
  std::vector<Predicate> predicates_;
};

/// Fluent construction of QuerySpecs with "Alias.column" name resolution.
///
///   QueryBuilder qb(catalog);
///   qb.AddTable("R").AddTable("S");
///   qb.AddJoin("R.a", "S.x");
///   qb.AddSelection("R.key", CompareOp::kLt, Value::Int64(10));
///   STEMS_ASSIGN_OR_RETURN(QuerySpec q, qb.Build());
class QueryBuilder {
 public:
  explicit QueryBuilder(const Catalog& catalog) : catalog_(catalog) {}

  /// Adds a FROM entry; `alias` defaults to the table name.
  QueryBuilder& AddTable(const std::string& table_name,
                         const std::string& alias = "");

  /// Adds an equi-join (or theta-join) predicate "A.col op B.col".
  QueryBuilder& AddJoin(const std::string& lhs, const std::string& rhs,
                        CompareOp op = CompareOp::kEq);

  /// Adds a selection predicate "A.col op constant".
  QueryBuilder& AddSelection(const std::string& column, CompareOp op,
                             Value constant);

  /// Resolves names and returns the spec; reports the first error found.
  Result<QuerySpec> Build();

 private:
  struct PendingJoin {
    std::string lhs, rhs;
    CompareOp op;
  };
  struct PendingSelection {
    std::string column;
    CompareOp op;
    Value constant;
  };

  Result<ColumnRef> Resolve(const QuerySpec& spec,
                            const std::string& qualified) const;

  const Catalog& catalog_;
  std::vector<TableInstance> tables_;
  std::vector<PendingJoin> joins_;
  std::vector<PendingSelection> selections_;
  Status deferred_error_;
};

}  // namespace stems
