// QuerySpec: a select-project-join query over catalog tables.
//
// A query is a FROM list of table instances ("slots"; self-joins occupy
// multiple slots of the same base table, sharing one SteM per §2.2), plus a
// conjunction of selection and join predicates, an explicit projection list
// with its output schema, and an optional LIMIT. Inside the dataflow,
// modules still project as early as possible (paper footnote 1); the
// declared projection shapes what the *caller* sees through RowView.
// GroupBy / aggregation live above the eddy and are out of scope, as in
// the paper.
//
// Specs are built either programmatically (QueryBuilder, the escape hatch)
// or from SQL text (sql/parser.h + sql/binder.h, the supported front end);
// QuerySpec::ToString() emits the SQL dialect, and the two round-trip.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "expr/predicate.h"

namespace stems {

namespace sql {
class Binder;
}  // namespace sql

/// One entry of the FROM list.
struct TableInstance {
  std::string table_name;
  std::string alias;          ///< defaults to table_name
  const TableDef* def = nullptr;
};

/// One output column of a query: a display label ("u.age") plus the
/// (slot, column) it reads from. The label is always the canonical
/// qualified form, so emitted SQL re-parses to the same projection.
struct OutputColumn {
  std::string label;
  ColumnRef ref;
  ValueType type = ValueType::kInt64;
};

class QuerySpec {
 public:
  const std::vector<TableInstance>& slots() const { return slots_; }
  const std::vector<Predicate>& predicates() const { return predicates_; }

  size_t num_slots() const { return slots_.size(); }
  size_t num_predicates() const { return predicates_.size(); }

  /// Bitmask with one bit per table slot, all set.
  uint64_t full_span_mask() const { return (1ULL << slots_.size()) - 1; }

  /// Join predicates that reference `slot`.
  std::vector<const Predicate*> JoinPredicatesOn(int slot) const;
  /// Selection predicates that reference only `slot`.
  std::vector<const Predicate*> SelectionsOn(int slot) const;

  /// Slot index for an alias.
  Result<int> SlotOf(const std::string& alias) const;

  // --- projection & limit ----------------------------------------------------

  /// The output columns, in SELECT-list order. Never empty on a built
  /// spec: `SELECT *` expands to every column of every slot.
  const std::vector<OutputColumn>& output_columns() const {
    return output_columns_;
  }
  /// Schema of the output columns (label + type per column).
  const Schema& output_schema() const { return output_schema_; }
  /// True when the query listed columns explicitly (vs `SELECT *`).
  bool has_explicit_projection() const { return explicit_projection_; }
  /// Index into output_columns() for `label`, if any.
  std::optional<size_t> FindOutputColumn(const std::string& label) const;

  /// Maximum number of results to produce; nullopt = unlimited.
  const std::optional<uint64_t>& limit() const { return limit_; }

  /// Emits the query in the SQL dialect of sql/parser.h. Parsing and
  /// binding the result against the same catalog reproduces an equivalent
  /// spec (round-trip property, tested in tests/test_sql.cc). On a
  /// prepared-statement template, unbound parameter sites print as their
  /// placeholder ("$name" / "?"), so the text re-prepares rather than
  /// silently binding an always-false NULL comparison.
  std::string ToString() const;

 private:
  friend class QueryBuilder;
  friend class sql::Binder;

  /// Rebuilds output_columns_ and output_schema_ from the slots (star
  /// expansion) or from the explicit projection labels set by the builder.
  void FinalizeOutputs(std::vector<OutputColumn> explicit_columns);

  std::vector<TableInstance> slots_;
  std::vector<Predicate> predicates_;
  std::vector<OutputColumn> output_columns_;
  Schema output_schema_;
  bool explicit_projection_ = false;
  std::optional<uint64_t> limit_;
  /// (predicate index, placeholder spelling) for still-unbound parameter
  /// sites; set by the SQL binder, cleared when parameters bind.
  std::vector<std::pair<size_t, std::string>> param_markers_;
};

/// Fluent construction of QuerySpecs with "Alias.column" name resolution.
///
///   QueryBuilder qb(catalog);
///   qb.AddTable("R").AddTable("S");
///   qb.AddJoin("R.a", "S.x");
///   qb.AddSelection("R.key", CompareOp::kLt, Value::Int64(10));
///   qb.Select({"R.key", "S.x"});   // optional; default is SELECT *
///   qb.Limit(100);                 // optional
///   STEMS_ASSIGN_OR_RETURN(QuerySpec q, qb.Build());
///
/// Build() resolves every name and reports *all* resolution errors in one
/// combined Status (the SQL binder surfaces the same message).
class QueryBuilder {
 public:
  explicit QueryBuilder(const Catalog& catalog) : catalog_(catalog) {}

  /// Adds a FROM entry; `alias` defaults to the table name.
  QueryBuilder& AddTable(const std::string& table_name,
                         const std::string& alias = "");

  /// Adds an equi-join (or theta-join) predicate "A.col op B.col".
  QueryBuilder& AddJoin(const std::string& lhs, const std::string& rhs,
                        CompareOp op = CompareOp::kEq);

  /// Adds a selection predicate "A.col op constant".
  QueryBuilder& AddSelection(const std::string& column, CompareOp op,
                             Value constant);

  /// Appends explicit output columns ("Alias.column"). Without any Select
  /// call the query is SELECT * (all columns of all slots, in slot order).
  QueryBuilder& Select(const std::vector<std::string>& columns);

  /// Caps the number of results.
  QueryBuilder& Limit(uint64_t limit);

  /// Resolves names and returns the spec. All name-resolution errors are
  /// collected and reported together (see CombineStatuses).
  Result<QuerySpec> Build();

 private:
  struct PendingJoin {
    std::string lhs, rhs;
    CompareOp op;
  };
  struct PendingSelection {
    std::string column;
    CompareOp op;
    Value constant;
  };

  Result<ColumnRef> Resolve(const QuerySpec& spec,
                            const std::string& qualified) const;

  const Catalog& catalog_;
  std::vector<TableInstance> tables_;
  std::vector<PendingJoin> joins_;
  std::vector<PendingSelection> selections_;
  std::vector<std::string> select_columns_;
  std::optional<uint64_t> limit_;
};

}  // namespace stems
