#include "query/query_spec.h"

#include <cstdio>

#include "query/validation.h"

namespace stems {

namespace {

/// Renders a Value as a SQL literal that re-lexes to an equal Value:
/// doubles always carry a '.' or exponent (so they don't re-parse as
/// ints), strings use '' escaping.
std::string SqlLiteral(const Value& v) {
  switch (v.type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(v.AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%.17g", v.AsDouble());
      std::string s(buf);
      if (s.find('.') == std::string::npos &&
          s.find('e') == std::string::npos &&
          s.find('n') == std::string::npos) {  // "nan"/"inf" stay as-is
        s += ".0";
      }
      return s;
    }
    case ValueType::kString: {
      std::string out = "'";
      for (char c : v.AsString()) {
        out.push_back(c);
        if (c == '\'') out.push_back('\'');
      }
      out += "'";
      return out;
    }
    case ValueType::kEot:
      return "<eot>";  // never appears in a spec built by public APIs
  }
  return "?";
}

}  // namespace

std::vector<const Predicate*> QuerySpec::JoinPredicatesOn(int slot) const {
  std::vector<const Predicate*> out;
  for (const auto& p : predicates_) {
    if (!p.is_join()) continue;
    for (int s : p.slots()) {
      if (s == slot) {
        out.push_back(&p);
        break;
      }
    }
  }
  return out;
}

std::vector<const Predicate*> QuerySpec::SelectionsOn(int slot) const {
  std::vector<const Predicate*> out;
  for (const auto& p : predicates_) {
    if (!p.is_join() && p.lhs().table_slot == slot) out.push_back(&p);
  }
  return out;
}

Result<int> QuerySpec::SlotOf(const std::string& alias) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alias == alias) return static_cast<int>(i);
  }
  return Status::NotFound("no table instance with alias '" + alias + "'");
}

std::optional<size_t> QuerySpec::FindOutputColumn(
    const std::string& label) const {
  for (size_t i = 0; i < output_columns_.size(); ++i) {
    if (output_columns_[i].label == label) return i;
  }
  return std::nullopt;
}

void QuerySpec::FinalizeOutputs(std::vector<OutputColumn> explicit_columns) {
  explicit_projection_ = !explicit_columns.empty();
  if (explicit_projection_) {
    output_columns_ = std::move(explicit_columns);
  } else {
    output_columns_.clear();
    for (size_t s = 0; s < slots_.size(); ++s) {
      const Schema& schema = slots_[s].def->schema;
      for (size_t c = 0; c < schema.num_columns(); ++c) {
        OutputColumn col;
        col.label = slots_[s].alias + "." + schema.column(c).name;
        col.ref = ColumnRef{static_cast<int>(s), static_cast<int>(c)};
        col.type = schema.column(c).type;
        output_columns_.push_back(std::move(col));
      }
    }
  }
  std::vector<ColumnDef> defs;
  defs.reserve(output_columns_.size());
  for (const auto& col : output_columns_) {
    defs.push_back({col.label, col.type});
  }
  output_schema_ = Schema(std::move(defs));
}

std::string QuerySpec::ToString() const {
  auto col_name = [this](const ColumnRef& ref) {
    const TableInstance& inst = slots_[ref.table_slot];
    return inst.alias + "." + inst.def->schema.column(ref.column).name;
  };

  std::string out = "SELECT ";
  if (!explicit_projection_) {
    out += "*";
  } else {
    for (size_t i = 0; i < output_columns_.size(); ++i) {
      if (i > 0) out += ", ";
      out += output_columns_[i].label;
    }
  }
  out += " FROM ";
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += ", ";
    out += slots_[i].table_name;
    if (slots_[i].alias != slots_[i].table_name) out += " " + slots_[i].alias;
  }
  if (!predicates_.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < predicates_.size(); ++i) {
      if (i > 0) out += " AND ";
      const Predicate& p = predicates_[i];
      out += col_name(p.lhs());
      out += " ";
      out += CompareOpName(p.op());
      out += " ";
      const std::string* marker = nullptr;
      for (const auto& [pred_index, placeholder] : param_markers_) {
        if (pred_index == i) {
          marker = &placeholder;
          break;
        }
      }
      if (marker != nullptr) {
        out += *marker;
      } else {
        out += p.is_join() ? col_name(p.rhs()) : SqlLiteral(p.constant());
      }
    }
  }
  if (limit_.has_value()) {
    out += " LIMIT " + std::to_string(*limit_);
  }
  return out;
}

QueryBuilder& QueryBuilder::AddTable(const std::string& table_name,
                                     const std::string& alias) {
  TableInstance inst;
  inst.table_name = table_name;
  inst.alias = alias.empty() ? table_name : alias;
  tables_.push_back(std::move(inst));
  return *this;
}

QueryBuilder& QueryBuilder::AddJoin(const std::string& lhs,
                                    const std::string& rhs, CompareOp op) {
  joins_.push_back({lhs, rhs, op});
  return *this;
}

QueryBuilder& QueryBuilder::AddSelection(const std::string& column,
                                         CompareOp op, Value constant) {
  selections_.push_back({column, op, std::move(constant)});
  return *this;
}

QueryBuilder& QueryBuilder::Select(const std::vector<std::string>& columns) {
  select_columns_.insert(select_columns_.end(), columns.begin(),
                         columns.end());
  return *this;
}

QueryBuilder& QueryBuilder::Limit(uint64_t limit) {
  limit_ = limit;
  return *this;
}

Result<ColumnRef> QueryBuilder::Resolve(const QuerySpec& spec,
                                        const std::string& qualified) const {
  auto dot = qualified.find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument("column reference '" + qualified +
                                   "' must be qualified as Alias.column");
  }
  const std::string alias = qualified.substr(0, dot);
  const std::string column = qualified.substr(dot + 1);
  STEMS_ASSIGN_OR_RETURN(int slot, spec.SlotOf(alias));
  if (spec.slots()[slot].def == nullptr) {
    // The table itself failed to resolve; that error is already recorded,
    // so stay quiet here (kInternal statuses are filtered by Build()).
    return Status::Internal("");
  }
  auto col = spec.slots()[slot].def->schema.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("column '" + column + "' not found in table '" +
                            spec.slots()[slot].table_name + "'");
  }
  return ColumnRef{slot, static_cast<int>(*col)};
}

Result<QuerySpec> QueryBuilder::Build() {
  // Name resolution collects *every* error before reporting (a serving
  // front end should not make the user fix one name per round-trip). A
  // table that fails to resolve keeps its slot with def == nullptr so
  // later references to its alias don't cascade into bogus errors.
  std::vector<Status> errors;
  auto note = [&errors](const Status& s) {
    if (!s.ok() && s.code() != StatusCode::kInternal) errors.push_back(s);
  };

  QuerySpec spec;
  for (auto inst : tables_) {
    auto def = catalog_.GetTable(inst.table_name);
    if (def.ok()) {
      inst.def = def.Value();
    } else {
      note(def.status());
    }
    spec.slots_.push_back(std::move(inst));
  }

  // Structural checks live in validation.cc, shared with the planner. An
  // empty or oversized FROM list ends resolution immediately (there is
  // nothing meaningful to resolve against); a duplicate alias is
  // collected alongside the name errors below.
  Status shape = ValidateQueryShape(spec);
  if (!shape.ok()) {
    if (spec.slots_.empty() || spec.slots_.size() > 64) return shape;
    note(shape);
  }

  int next_id = 0;
  for (const auto& j : joins_) {
    Result<ColumnRef> lhs = Resolve(spec, j.lhs);
    Result<ColumnRef> rhs = Resolve(spec, j.rhs);
    if (!lhs.ok() || !rhs.ok()) {
      note(lhs.status());
      note(rhs.status());
      continue;
    }
    if (lhs.Value().table_slot == rhs.Value().table_slot) {
      note(Status::InvalidQuery(
          "join predicate '" + j.lhs + " " + CompareOpName(j.op) + " " +
          j.rhs +
          "' references a single table instance; "
          "express it as a selection"));
      continue;
    }
    spec.predicates_.push_back(
        Predicate::Join(next_id++, lhs.Value(), j.op, rhs.Value()));
  }
  for (const auto& s : selections_) {
    Result<ColumnRef> col = Resolve(spec, s.column);
    if (!col.ok()) {
      note(col.status());
      continue;
    }
    spec.predicates_.push_back(
        Predicate::Selection(next_id++, col.Value(), s.op, s.constant));
  }

  std::vector<OutputColumn> projection;
  for (const auto& label : select_columns_) {
    Result<ColumnRef> col = Resolve(spec, label);
    if (!col.ok()) {
      note(col.status());
      continue;
    }
    const ColumnRef ref = col.Value();
    OutputColumn out;
    // Canonical qualified label, so emitted SQL re-parses identically.
    out.label = spec.slots_[ref.table_slot].alias + "." +
                spec.slots_[ref.table_slot].def->schema.column(ref.column)
                    .name;
    out.ref = ref;
    out.type =
        spec.slots_[ref.table_slot].def->schema.column(ref.column).type;
    projection.push_back(std::move(out));
  }

  if (!errors.empty()) return CombineStatuses(errors);

  spec.limit_ = limit_;
  spec.FinalizeOutputs(std::move(projection));
  return spec;
}

}  // namespace stems
