#include "query/query_spec.h"

namespace stems {

std::vector<const Predicate*> QuerySpec::JoinPredicatesOn(int slot) const {
  std::vector<const Predicate*> out;
  for (const auto& p : predicates_) {
    if (!p.is_join()) continue;
    for (int s : p.slots()) {
      if (s == slot) {
        out.push_back(&p);
        break;
      }
    }
  }
  return out;
}

std::vector<const Predicate*> QuerySpec::SelectionsOn(int slot) const {
  std::vector<const Predicate*> out;
  for (const auto& p : predicates_) {
    if (!p.is_join() && p.lhs().table_slot == slot) out.push_back(&p);
  }
  return out;
}

Result<int> QuerySpec::SlotOf(const std::string& alias) const {
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (slots_[i].alias == alias) return static_cast<int>(i);
  }
  return Status::NotFound("no table instance with alias '" + alias + "'");
}

std::string QuerySpec::ToString() const {
  std::string out = "SELECT * FROM ";
  for (size_t i = 0; i < slots_.size(); ++i) {
    if (i > 0) out += ", ";
    out += slots_[i].table_name;
    if (slots_[i].alias != slots_[i].table_name) out += " " + slots_[i].alias;
  }
  if (!predicates_.empty()) {
    out += " WHERE ";
    for (size_t i = 0; i < predicates_.size(); ++i) {
      if (i > 0) out += " AND ";
      out += predicates_[i].ToString();
    }
  }
  return out;
}

QueryBuilder& QueryBuilder::AddTable(const std::string& table_name,
                                     const std::string& alias) {
  TableInstance inst;
  inst.table_name = table_name;
  inst.alias = alias.empty() ? table_name : alias;
  tables_.push_back(std::move(inst));
  return *this;
}

QueryBuilder& QueryBuilder::AddJoin(const std::string& lhs,
                                    const std::string& rhs, CompareOp op) {
  joins_.push_back({lhs, rhs, op});
  return *this;
}

QueryBuilder& QueryBuilder::AddSelection(const std::string& column,
                                         CompareOp op, Value constant) {
  selections_.push_back({column, op, std::move(constant)});
  return *this;
}

Result<ColumnRef> QueryBuilder::Resolve(const QuerySpec& spec,
                                        const std::string& qualified) const {
  auto dot = qualified.find('.');
  if (dot == std::string::npos) {
    return Status::InvalidArgument("column reference '" + qualified +
                                   "' must be qualified as Alias.column");
  }
  const std::string alias = qualified.substr(0, dot);
  const std::string column = qualified.substr(dot + 1);
  STEMS_ASSIGN_OR_RETURN(int slot, spec.SlotOf(alias));
  auto col = spec.slots()[slot].def->schema.FindColumn(column);
  if (!col.has_value()) {
    return Status::NotFound("column '" + column + "' not found in table '" +
                            spec.slots()[slot].table_name + "'");
  }
  return ColumnRef{slot, static_cast<int>(*col)};
}

Result<QuerySpec> QueryBuilder::Build() {
  if (tables_.empty()) {
    return Status::InvalidQuery("query has no tables");
  }
  if (tables_.size() > 64) {
    return Status::InvalidQuery("at most 64 table instances supported");
  }
  QuerySpec spec;
  for (auto inst : tables_) {
    STEMS_ASSIGN_OR_RETURN(const TableDef* def,
                           catalog_.GetTable(inst.table_name));
    inst.def = def;
    for (const auto& existing : spec.slots_) {
      if (existing.alias == inst.alias) {
        return Status::InvalidQuery("duplicate alias '" + inst.alias + "'");
      }
    }
    spec.slots_.push_back(std::move(inst));
  }
  int next_id = 0;
  for (const auto& j : joins_) {
    STEMS_ASSIGN_OR_RETURN(ColumnRef lhs, Resolve(spec, j.lhs));
    STEMS_ASSIGN_OR_RETURN(ColumnRef rhs, Resolve(spec, j.rhs));
    if (lhs.table_slot == rhs.table_slot) {
      return Status::InvalidQuery(
          "join predicate references a single table instance; "
          "express it as a selection");
    }
    spec.predicates_.push_back(Predicate::Join(next_id++, lhs, j.op, rhs));
  }
  for (const auto& s : selections_) {
    STEMS_ASSIGN_OR_RETURN(ColumnRef col, Resolve(spec, s.column));
    spec.predicates_.push_back(
        Predicate::Selection(next_id++, col, s.op, s.constant));
  }
  return spec;
}

}  // namespace stems
