// Planner: instantiates a query as an eddy plus modules (paper §2.2).
//
// NOTE: most callers should not be here. The supported top-level API is
// stems::Engine (engine/engine.h): Engine::Submit() plans the query, picks
// the routing policy by registry name, and streams results through a
// cursor. PlanQuery() remains the documented low-level escape hatch for
// callers that need to wire modules, policies, or the simulation by hand
// (custom module graphs, policy unit tests). See docs/api.md for the
// old-wiring → Engine mapping.
//
// "The use of an eddy and SteMs obviates the need for query optimization
// because there are no a priori decisions to be made." The planner only:
//   1. validates the query against bind-field constraints (Nail-style),
//   2. creates an AM for every usable access method,
//   3. creates an SM for every selection predicate,
//   4. creates one SteM per base table (shared across self-join instances),
//   5. arranges seed tuples for the scans (done by Eddy::Start()).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "am/index_am.h"
#include "am/scan_am.h"
#include "eddy/eddy.h"
#include "query/query_spec.h"
#include "stem/stem.h"
#include "storage/table_store.h"

namespace stems {

/// Per-experiment knobs: module timing, SteM behaviour, eddy options.
struct ExecutionConfig {
  EddyOptions eddy;

  StemOptions stem_defaults;
  /// Overrides keyed by table name.
  std::map<std::string, StemOptions> stem_overrides;

  ScanAmOptions scan_defaults;
  /// Overrides keyed by access method name (AccessMethodSpec::name).
  std::map<std::string, ScanAmOptions> scan_overrides;

  IndexAmOptions index_defaults;
  /// Overrides keyed by access method name.
  std::map<std::string, IndexAmOptions> index_overrides;

  /// Create selection modules for selection predicates (they are an
  /// optimization: SteM probes enforce selections regardless).
  bool create_selection_modules = true;
};

class StemManager;

/// Builds a ready-to-run eddy for `query` over `store`. The caller still
/// picks a routing policy (Eddy::SetPolicy) before Start().
///
/// `stem_pool` (optional) enables cross-query SteM sharing: each poolable
/// SteM (unbounded, non-Grace) attaches to the engine-wide storage for its
/// (table, index columns, spill config) key instead of building a private
/// one — see docs/sharing.md. nullptr plans fully private state.
Result<std::unique_ptr<Eddy>> PlanQuery(const QuerySpec& query,
                                        const TableStore& store,
                                        Simulation* sim,
                                        const ExecutionConfig& config = {},
                                        StemManager* stem_pool = nullptr);

}  // namespace stems
