// JoinGraph: the query's join connectivity.
//
// Nodes are table slots, edges are join predicates. The paper's §3.4 turns
// on whether this graph is cyclic: with SteMs no spanning tree is fixed a
// priori, so cyclic queries need the ProbeCompletion constraint. The graph
// also enumerates spanning trees for the spanning-tree experiments and for
// static baseline plans.
#pragma once

#include <cstdint>
#include <vector>

#include "query/query_spec.h"

namespace stems {

class JoinGraph {
 public:
  explicit JoinGraph(const QuerySpec& query);

  int num_nodes() const { return num_nodes_; }

  /// Predicate ids labelling the edges between a and b.
  std::vector<int> EdgesBetween(int a, int b) const;

  /// Neighbours of slot `a` (deduplicated, ascending).
  std::vector<int> Neighbors(int a) const;

  /// True iff all slots are join-connected (no cross products).
  bool IsConnected() const;

  /// True iff the undirected multigraph contains a cycle. Parallel edges
  /// between the same pair (two predicates on one table pair) count as a
  /// cycle of length two only if they are distinct predicates; for spanning
  /// tree purposes we treat them as one logical edge, so cyclicity here
  /// means: more logical edges than (nodes - 1) on some connected component.
  bool IsCyclic() const;

  /// All spanning trees of the *logical* edge graph, each expressed as a
  /// list of (a, b) slot pairs. Exponential in general; the query sizes in
  /// this library are small. Empty if the graph is disconnected.
  std::vector<std::vector<std::pair<int, int>>> SpanningTrees() const;

 private:
  int num_nodes_ = 0;
  /// Logical adjacency: adj_[a] contains each neighbour once.
  std::vector<std::vector<int>> adj_;
  /// (a, b, predicate id) triples with a < b.
  std::vector<std::tuple<int, int, int>> edges_;
  /// Distinct (a, b) pairs with a < b.
  std::vector<std::pair<int, int>> logical_edges_;
};

}  // namespace stems
