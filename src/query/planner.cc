#include "query/planner.h"

#include <set>

#include "query/validation.h"
#include "stem/stem_manager.h"

namespace stems {

Result<std::unique_ptr<Eddy>> PlanQuery(const QuerySpec& query,
                                        const TableStore& store,
                                        Simulation* sim,
                                        const ExecutionConfig& config,
                                        StemManager* stem_pool) {
  // Step 1: structural sanity (friendly errors for empty FROM lists,
  // duplicate aliases, cross products), then bind-order validation (paper
  // §2.2, via [18]).
  STEMS_RETURN_NOT_OK(ValidateQueryShape(query));
  STEMS_RETURN_NOT_OK(ValidateBindOrder(query));
  if (query.num_predicates() > 64) {
    return Status::InvalidQuery("at most 64 predicates supported");
  }

  auto eddy = std::make_unique<Eddy>(query, sim, config.eddy);
  QueryContext* ctx = eddy->ctx();

  // Batched dataflow (EddyOptions::batch_size): modules service tuple
  // groups of the same size per event, so the per-event amortization holds
  // end to end, not just at the router.
  const size_t service_batch = config.eddy.batch_size;

  // Step 4 (done early so AMs can assume SteMs exist): one SteM per base
  // table, shared across all FROM-clause instances of that table. With a
  // StemManager, the SteM's physical storage is additionally shared across
  // *queries*: the facade attaches to the pooled storage for its (table,
  // index columns, spill config) key — a late-attaching query skips the
  // build work for rows already stored (docs/sharing.md).
  std::set<std::string> tables_done;
  for (const auto& inst : query.slots()) {
    if (!tables_done.insert(inst.table_name).second) continue;
    StemOptions opts = config.stem_defaults;
    auto it = config.stem_overrides.find(inst.table_name);
    if (it != config.stem_overrides.end()) opts = it->second;
    // Windowed (max_entries) and Grace-mode (partitioned bounce) SteMs stay
    // private: eviction windows and phased partition release are per-query
    // execution strategies, not shareable state.
    const bool poolable = stem_pool != nullptr && opts.max_entries == 0 &&
                          opts.num_partitions <= 1;
    std::shared_ptr<StemStorage> storage;
    bool shared = false;
    if (poolable) {
      const std::vector<int> cols =
          StemIndexColumns(query, ctx->SlotsOfTable(inst.table_name));
      storage = stem_pool->Acquire(
          StemManager::KeyFor(inst.table_name, cols, opts,
                              config.eddy.spill.enabled, config.eddy.spill),
          inst.table_name, sim, &shared);
    }
    auto module =
        std::make_unique<Stem>(ctx, inst.table_name, opts, std::move(storage));
    if (shared) module->MarkAttachedShared();
    if (poolable && config.eddy.spill.enabled) {
      // Pooled storage spills through the engine-wide buffer pool (shared
      // partitions must outlive any one query); private SteMs get the
      // query-wide pool at registration instead.
      module->EnableSpill(stem_pool->SpillPool(config.eddy.spill),
                          config.eddy.spill);
    }
    Stem* stem = eddy->AddModule(std::move(module));
    // Grace-mode SteMs stay scalar: their per-probe partition-switch
    // penalty depends on the partition of the *previous* probe, which
    // batched service (service times summed up front) would misprice.
    if (opts.partition_switch_penalty <= 0) {
      stem->set_service_batch(service_batch);
    }
  }

  // Step 2: an AM for every access method that can possibly be used.
  tables_done.clear();
  for (const auto& inst : query.slots()) {
    if (!tables_done.insert(inst.table_name).second) continue;
    STEMS_ASSIGN_OR_RETURN(const StoredTable* data,
                           store.GetTable(inst.table_name));
    for (const auto& am : inst.def->access_methods) {
      if (am.kind == AccessMethodKind::kScan) {
        ScanAmOptions opts = config.scan_defaults;
        auto it = config.scan_overrides.find(am.name);
        if (it != config.scan_overrides.end()) opts = it->second;
        // Scan AMs accept only the seed; batched service is a no-op there.
        eddy->AddModule(std::make_unique<ScanAm>(
            ctx, am.name, inst.table_name, data->rows(), opts));
      } else {
        IndexAmOptions opts = config.index_defaults;
        auto it = config.index_overrides.find(am.name);
        if (it != config.index_overrides.end()) opts = it->second;
        eddy->AddModule(std::make_unique<IndexAm>(
                ctx, am.name, inst.table_name, am.bind_columns, data, opts))
            ->set_service_batch(service_batch);
      }
    }
  }

  // Step 3: an SM per selection predicate.
  if (config.create_selection_modules) {
    for (const auto& p : query.predicates()) {
      if (!p.is_join()) {
        eddy->AddModule(std::make_unique<SelectionModule>(ctx, &p))
            ->set_service_batch(service_batch);
      }
    }
  }

  return eddy;
}

}  // namespace stems
