// Predicates over (composite) tuples.
//
// A query's WHERE clause is a conjunction of simple comparisons, each of
// which is either a selection (column op constant) or a join predicate
// (column op column). Each predicate gets a stable id within the query;
// TupleState tracks which predicate ids a tuple has passed (the "done bits"
// of the eddy paper).
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "types/schema.h"
#include "types/value.h"

namespace stems {

enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpName(CompareOp op);

/// Applies `op` to two values. Comparisons involving NULL are false
/// (SQL-style); EOT markers never satisfy a comparison.
bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs);

/// Read-only access to the base-table components of a (possibly composite)
/// tuple, by (table slot, column). Returns nullptr when the slot is not
/// spanned. Implemented by runtime::Tuple and by overlay views.
class ValueSource {
 public:
  virtual ~ValueSource() = default;
  virtual const Value* ValueAt(int slot, int col) const = 0;
};

/// One conjunct of the WHERE clause.
class Predicate {
 public:
  /// Selection: `lhs op constant`.
  static Predicate Selection(int id, ColumnRef lhs, CompareOp op,
                             Value constant);
  /// Join: `lhs op rhs` over two table slots.
  static Predicate Join(int id, ColumnRef lhs, CompareOp op, ColumnRef rhs);

  int id() const { return id_; }
  bool is_join() const { return rhs_col_.has_value(); }
  CompareOp op() const { return op_; }
  const ColumnRef& lhs() const { return lhs_; }
  /// Valid only when is_join().
  const ColumnRef& rhs() const { return *rhs_col_; }
  /// Valid only when !is_join().
  const Value& constant() const { return constant_; }

  /// Table slots this predicate references (1 for selections, 2 for joins;
  /// a self-join predicate on one slot yields that slot once).
  const std::vector<int>& slots() const { return slots_; }

  /// True iff every referenced slot is present in `spanned` (bitmask over
  /// table slots).
  bool CanEvaluate(uint64_t spanned_mask) const;

  /// Evaluates the predicate; all referenced slots must be present.
  bool Evaluate(const ValueSource& tuple) const;

  /// For an equi-join predicate, the column it binds on `slot` (if the
  /// predicate references that slot). Used by SteMs to build hash indexes on
  /// join columns (paper §2.1.4).
  std::optional<int> EquiJoinColumnFor(int slot) const;
  /// The column on the *other* side of an equi-join predicate w.r.t. `slot`.
  std::optional<ColumnRef> EquiJoinPeerOf(int slot) const;

  std::string ToString() const;

 private:
  Predicate() = default;

  int id_ = -1;
  ColumnRef lhs_;
  CompareOp op_ = CompareOp::kEq;
  std::optional<ColumnRef> rhs_col_;
  Value constant_;
  std::vector<int> slots_;
};

/// A ValueSource that overlays one extra base-table component (a candidate
/// match row interpreted at `slot`) on top of a base tuple. Used by SteMs to
/// evaluate predicates between a probe tuple and a stored row without
/// materializing the concatenation.
class OverlayValueSource : public ValueSource {
 public:
  OverlayValueSource(const ValueSource& base, int slot,
                     const std::vector<Value>* row_values)
      : base_(base), slot_(slot), row_values_(row_values) {}

  const Value* ValueAt(int slot, int col) const override;

 private:
  const ValueSource& base_;
  int slot_;
  const std::vector<Value>* row_values_;
};

}  // namespace stems
