#include "expr/predicate.h"

#include <cassert>

namespace stems {

const char* CompareOpName(CompareOp op) {
  switch (op) {
    case CompareOp::kEq:
      return "=";
    case CompareOp::kNe:
      return "!=";
    case CompareOp::kLt:
      return "<";
    case CompareOp::kLe:
      return "<=";
    case CompareOp::kGt:
      return ">";
    case CompareOp::kGe:
      return ">=";
  }
  return "?";
}

bool CompareValues(const Value& lhs, CompareOp op, const Value& rhs) {
  if (lhs.is_null() || rhs.is_null() || lhs.is_eot() || rhs.is_eot()) {
    return false;
  }
  switch (op) {
    case CompareOp::kEq:
      return lhs == rhs;
    case CompareOp::kNe:
      return lhs != rhs;
    case CompareOp::kLt:
      return lhs < rhs;
    case CompareOp::kLe:
      return lhs < rhs || lhs == rhs;
    case CompareOp::kGt:
      return rhs < lhs;
    case CompareOp::kGe:
      return rhs < lhs || lhs == rhs;
  }
  return false;
}

Predicate Predicate::Selection(int id, ColumnRef lhs, CompareOp op,
                               Value constant) {
  Predicate p;
  p.id_ = id;
  p.lhs_ = lhs;
  p.op_ = op;
  p.constant_ = std::move(constant);
  p.slots_ = {lhs.table_slot};
  return p;
}

Predicate Predicate::Join(int id, ColumnRef lhs, CompareOp op, ColumnRef rhs) {
  Predicate p;
  p.id_ = id;
  p.lhs_ = lhs;
  p.op_ = op;
  p.rhs_col_ = rhs;
  p.slots_ = {lhs.table_slot};
  if (rhs.table_slot != lhs.table_slot) p.slots_.push_back(rhs.table_slot);
  return p;
}

bool Predicate::CanEvaluate(uint64_t spanned_mask) const {
  for (int s : slots_) {
    if (!(spanned_mask & (1ULL << s))) return false;
  }
  return true;
}

bool Predicate::Evaluate(const ValueSource& tuple) const {
  const Value* lhs = tuple.ValueAt(lhs_.table_slot, lhs_.column);
  assert(lhs != nullptr && "predicate evaluated on unspanned slot");
  if (!is_join()) {
    return CompareValues(*lhs, op_, constant_);
  }
  const Value* rhs = tuple.ValueAt(rhs_col_->table_slot, rhs_col_->column);
  assert(rhs != nullptr && "predicate evaluated on unspanned slot");
  return CompareValues(*lhs, op_, *rhs);
}

std::optional<int> Predicate::EquiJoinColumnFor(int slot) const {
  if (!is_join() || op_ != CompareOp::kEq) return std::nullopt;
  if (lhs_.table_slot == slot) return lhs_.column;
  if (rhs_col_->table_slot == slot) return rhs_col_->column;
  return std::nullopt;
}

std::optional<ColumnRef> Predicate::EquiJoinPeerOf(int slot) const {
  if (!is_join() || op_ != CompareOp::kEq) return std::nullopt;
  if (lhs_.table_slot == slot) return rhs_col_;
  if (rhs_col_->table_slot == slot) return lhs_;
  return std::nullopt;
}

std::string Predicate::ToString() const {
  auto col = [](const ColumnRef& c) {
    return "t" + std::to_string(c.table_slot) + ".c" + std::to_string(c.column);
  };
  std::string out = "p" + std::to_string(id_) + ": " + col(lhs_) + " " +
                    CompareOpName(op_) + " ";
  if (is_join()) {
    out += col(*rhs_col_);
  } else {
    out += constant_.ToString();
  }
  return out;
}

const Value* OverlayValueSource::ValueAt(int slot, int col) const {
  if (slot == slot_) {
    if (row_values_ == nullptr ||
        static_cast<size_t>(col) >= row_values_->size()) {
      return nullptr;
    }
    return &(*row_values_)[col];
  }
  return base_.ValueAt(slot, col);
}

}  // namespace stems
