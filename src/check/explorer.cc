#include "check/explorer.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>

namespace stems::check {

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

size_t RandomSource::Pick(const std::vector<std::string>& choices) {
  std::uniform_int_distribution<size_t> dist(0, choices.size() - 1);
  return dist(rng_);
}

PctSource::PctSource(uint64_t seed, size_t num_threads, size_t depth,
                     size_t max_steps)
    : rng_(seed) {
  priority_.resize(num_threads);
  // Distinct random priorities well above the demotion range.
  std::vector<uint64_t> perm(num_threads);
  for (size_t i = 0; i < num_threads; ++i) perm[i] = i;
  std::shuffle(perm.begin(), perm.end(), rng_);
  for (size_t i = 0; i < num_threads; ++i) {
    priority_[i] = max_steps + 1 + perm[i];
  }
  next_low_ = max_steps;  // demotions hand out max_steps, max_steps-1, ...
  // d-1 change points, sampled uniformly over the step budget.
  if (depth > 1 && max_steps > 0) {
    std::uniform_int_distribution<size_t> dist(1, max_steps);
    for (size_t k = 0; k + 1 < depth; ++k) change_points_.insert(dist(rng_));
  }
}

size_t PctSource::Pick(const std::vector<std::string>& choices) {
  ++step_;
  // Partition the choices: thread steps (r<i>) vs wake injections (s/t).
  size_t best = choices.size();
  uint64_t best_prio = 0;
  for (size_t c = 0; c < choices.size(); ++c) {
    if (choices[c][0] != 'r') continue;
    const size_t tid =
        static_cast<size_t>(std::atoi(choices[c].c_str() + 1));
    const uint64_t prio = tid < priority_.size() ? priority_[tid] : 0;
    if (best == choices.size() || prio > best_prio) {
      best = c;
      best_prio = prio;
    }
  }
  if (best == choices.size()) {
    // Only injections available: uniform.
    std::uniform_int_distribution<size_t> dist(0, choices.size() - 1);
    return dist(rng_);
  }
  if (change_points_.count(step_) > 0) {
    // Demote the would-be leader below everyone demoted before it, then
    // re-pick by falling through to a fresh scan.
    const size_t tid = static_cast<size_t>(std::atoi(choices[best].c_str() + 1));
    if (tid < priority_.size() && next_low_ > 0) {
      priority_[tid] = next_low_--;
    }
    best_prio = 0;
    best = choices.size();
    for (size_t c = 0; c < choices.size(); ++c) {
      if (choices[c][0] != 'r') continue;
      const size_t t2 = static_cast<size_t>(std::atoi(choices[c].c_str() + 1));
      const uint64_t prio = t2 < priority_.size() ? priority_[t2] : 0;
      if (best == choices.size() || prio > best_prio) {
        best = c;
        best_prio = prio;
      }
    }
  }
  return best;
}

size_t DfsSource::Pick(const std::vector<std::string>& choices) {
  if (depth_ < frames_.size()) {
    const Frame& f = frames_[depth_];
    ++depth_;
    // A deterministic body re-presents the same choices along the same
    // prefix; if not, decline and let the scheduler report divergence.
    if (f.chosen >= choices.size()) return choices.size();
    return f.chosen;
  }
  if (frames_.size() >= max_depth_) {
    ++pruned_;  // branch truncated: below this depth only choice 0 is taken
    ++depth_;
    return 0;
  }
  frames_.push_back(Frame{0, choices.size()});
  ++depth_;
  return 0;
}

bool DfsSource::Advance() {
  depth_ = 0;
  while (!frames_.empty()) {
    if (frames_.back().chosen + 1 < frames_.back().num_choices) {
      ++frames_.back().chosen;
      return true;
    }
    frames_.pop_back();
  }
  return false;
}

size_t ReplaySource::Pick(const std::vector<std::string>& choices) {
  if (pos_ >= tokens_.size()) return choices.size();  // trace exhausted
  const std::string& want = tokens_[pos_];
  for (size_t c = 0; c < choices.size(); ++c) {
    if (choices[c] == want) {
      ++pos_;
      return c;
    }
  }
  return choices.size();  // divergence
}

// ---------------------------------------------------------------------------
// Explorer
// ---------------------------------------------------------------------------

std::string Explorer::RunOne(const TestFactory& factory,
                             DecisionSource* source, std::string* trace) {
  TestCase tc = factory();
  Scheduler::Options sopts;
  sopts.max_steps = opts_.max_steps;
  sopts.spurious_budget = opts_.spurious_budget;
  Scheduler sched(sopts);
  ScheduleResult r = sched.Run(std::move(tc.threads), source);
  *trace = r.trace;
  if (!r.completed) return r.failure;
  if (tc.check) {
    std::string inv = tc.check();
    if (!inv.empty()) return "invariant violated: " + inv;
  }
  return "";
}

Explorer::Result Explorer::Replay(const std::string& name,
                                  const TestFactory& factory,
                                  const std::string& trace) {
  Result result;
  std::vector<std::string> tokens;
  if (!Scheduler::DecodeTrace(trace, &tokens)) {
    result.ok = false;
    result.failure = "malformed trace: " + trace;
    return result;
  }
  ReplaySource source(std::move(tokens));
  std::string taken;
  const std::string failure = RunOne(factory, &source, &taken);
  result.schedules = 1;
  if (!failure.empty()) {
    result.ok = false;
    result.failure = failure;
    result.failing_trace = taken;
    std::fprintf(stderr, "[check] %s: replay FAILED (%s)\n  trace: %s\n",
                 name.c_str(), failure.c_str(), taken.c_str());
  } else {
    std::fprintf(stderr, "[check] %s: replay passed (%zu steps)\n",
                 name.c_str(), taken.size());
  }
  if (opts_.metrics != nullptr) {
    opts_.metrics->GetCounter("check.schedules_explored")->Add(1);
  }
  return result;
}

Explorer::Result Explorer::Explore(const std::string& name,
                                   const TestFactory& factory) {
  if (const char* env = std::getenv("STEMS_SCHEDULE")) {
    return Replay(name, factory, env);
  }
  size_t random_schedules = opts_.random_schedules;
  if (const char* env = std::getenv("STEMS_EXPLORE_SCHEDULES")) {
    random_schedules = static_cast<size_t>(std::strtoull(env, nullptr, 10));
  }

  Result result;
  size_t random_run = 0, pct_run = 0, dfs_run = 0;
  std::set<size_t> seen_traces;  // duplicate-schedule hashes count as pruned
  const std::hash<std::string> hasher;

  auto run_and_note = [&](DecisionSource* source,
                          const char* strategy) -> bool {
    std::string trace;
    const std::string failure = RunOne(factory, source, &trace);
    ++result.schedules;
    if (!seen_traces.insert(hasher(trace)).second) ++result.pruned;
    if (!failure.empty()) {
      result.ok = false;
      result.failure = "[" + std::string(strategy) + "] " + failure;
      result.failing_trace = trace;
      return false;
    }
    return true;
  };

  bool keep_going = true;
  for (size_t i = 0; keep_going && i < random_schedules; ++i) {
    RandomSource source(opts_.seed + i);
    keep_going = run_and_note(&source, "random");
    if (keep_going) ++random_run;
  }
  for (size_t i = 0; keep_going && i < opts_.pct_schedules; ++i) {
    // Thread count is only known after the factory runs; probe one case.
    const size_t num_threads = factory().threads.size();
    PctSource source(opts_.seed * 7919 + i, num_threads, opts_.pct_depth,
                     opts_.max_steps);
    keep_going = run_and_note(&source, "pct");
    if (keep_going) ++pct_run;
  }
  if (keep_going && opts_.dfs_max_schedules > 0) {
    DfsSource dfs(opts_.dfs_max_depth);
    for (size_t i = 0; keep_going && i < opts_.dfs_max_schedules; ++i) {
      keep_going = run_and_note(&dfs, "dfs");
      if (keep_going) {
        ++dfs_run;
        if (!dfs.Advance()) break;  // tree exhausted: full coverage
      }
    }
    if (keep_going && dfs_run == opts_.dfs_max_schedules) {
      ++result.pruned;  // enumeration stopped at the schedule cap
    }
    result.pruned += dfs.pruned();
  }

  if (opts_.metrics != nullptr) {
    opts_.metrics->GetCounter("check.schedules_explored")
        ->Add(result.schedules);
    opts_.metrics->GetCounter("check.states_pruned")->Add(result.pruned);
  }
  if (result.ok) {
    std::fprintf(stderr,
                 "[check] %s: OK — %zu schedules (random=%zu pct=%zu "
                 "dfs=%zu), pruned=%zu\n",
                 name.c_str(), result.schedules, random_run, pct_run, dfs_run,
                 result.pruned);
  } else {
    std::fprintf(stderr,
                 "[check] %s: FAILED after %zu schedules: %s\n"
                 "  failing trace: %s\n"
                 "  replay: STEMS_SCHEDULE='%s' (re-run this test binary "
                 "filtered to this harness)\n",
                 name.c_str(), result.schedules, result.failure.c_str(),
                 result.failing_trace.c_str(), result.failing_trace.c_str());
  }
  return result;
}

// ---------------------------------------------------------------------------
// Corpus
// ---------------------------------------------------------------------------

std::vector<CorpusEntry> LoadCorpus(const std::string& dir) {
  std::vector<CorpusEntry> entries;
  std::error_code ec;
  std::vector<std::filesystem::path> files;
  for (const auto& de : std::filesystem::directory_iterator(dir, ec)) {
    if (de.path().extension() == ".trace") files.push_back(de.path());
  }
  std::sort(files.begin(), files.end());
  for (const auto& path : files) {
    CorpusEntry entry;
    entry.file = path.filename().string();
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) {
      if (line.empty() || line[0] == '#') continue;
      const size_t colon = line.find(':');
      if (colon == std::string::npos) continue;
      const std::string key = line.substr(0, colon);
      std::string value = line.substr(colon + 1);
      const size_t start = value.find_first_not_of(" \t");
      value = start == std::string::npos ? "" : value.substr(start);
      if (key == "target") {
        entry.target = value;
      } else if (key == "expect") {
        entry.expect = value;
      } else if (key == "trace") {
        entry.trace = value;
      }
    }
    if (entry.target.empty() || entry.trace.empty() ||
        (entry.expect != "pass" && entry.expect != "fail")) {
      entry.target = "__malformed__";
    }
    entries.push_back(entry);
  }
  return entries;
}

}  // namespace stems::check
