// Schedule exploration on top of check::Scheduler: strategies, trace
// replay, the regression corpus, and coverage metrics.
//
// A harness test supplies a TestFactory that builds a *fresh* test case
// (shared state + thread bodies + invariant check) per schedule; the
// Explorer runs it under many schedules and reports the first failing one
// with its decision trace. Workflow on failure:
//
//   [check] stem_visibility: FAILED under trace v1:r0,r1,r1,...
//   replay: STEMS_SCHEDULE='v1:r0,r1,r1,...' ./test_schedule_explore
//           --gtest_filter=<the failing test>
//
// and once fixed, the trace goes into tests/schedule_corpus/ so the exact
// interleaving is re-checked forever (see LoadCorpus / docs).
//
// Strategies (docs/static_analysis.md, "Dynamic exploration"):
//   random  seeded uniform pick per decision — broad, cheap coverage
//   pct     PCT (Burckhardt et al.): random thread priorities plus d-1
//           priority-change points — finds depth-d ordering bugs with
//           provable probability
//   dfs     bounded-exhaustive depth-first enumeration — *all* schedules
//           of small configs (2 threads, short bodies), the model-checking
//           mode proper
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "check/scheduler.h"
#include "obs/metrics_registry.h"

namespace stems::check {

/// One fresh instance of a harness scenario. `threads` run under the
/// scheduler; after they all finish, `check` is called on the Run() caller's
/// thread and returns a failure description ("" = invariant holds).
struct TestCase {
  std::vector<std::function<void()>> threads;
  std::function<std::string()> check;
};
using TestFactory = std::function<TestCase()>;

/// Seeded uniform random walk.
class RandomSource : public DecisionSource {
 public:
  explicit RandomSource(uint64_t seed) : rng_(seed) {}
  size_t Pick(const std::vector<std::string>& choices) override;

 private:
  std::mt19937_64 rng_;
};

/// PCT: each thread gets a random priority; the highest-priority runnable
/// thread always runs, except at d-1 pre-sampled change points where the
/// running thread's priority drops to the bottom. Non-thread choices
/// (spurious wakes, timeouts) are taken uniformly when no thread choice
/// exists, and with small probability otherwise.
class PctSource : public DecisionSource {
 public:
  PctSource(uint64_t seed, size_t num_threads, size_t depth,
            size_t max_steps);
  size_t Pick(const std::vector<std::string>& choices) override;

 private:
  std::mt19937_64 rng_;
  std::vector<uint64_t> priority_;  // [thread] higher runs first
  std::set<size_t> change_points_;  // steps where the leader is demoted
  size_t step_ = 0;
  uint64_t next_low_ = 0;  // descending counter: each demotion goes lower
};

/// Bounded-exhaustive DFS over the decision tree. One instance persists
/// across schedules: Pick() replays the recorded prefix then extends it;
/// Advance() moves to the next unexplored branch (false = tree exhausted).
class DfsSource : public DecisionSource {
 public:
  /// Branches deeper than `max_depth` are not enumerated (the first choice
  /// is taken); each such truncation counts as a pruned state.
  explicit DfsSource(size_t max_depth) : max_depth_(max_depth) {}
  size_t Pick(const std::vector<std::string>& choices) override;
  bool Advance();
  size_t pruned() const { return pruned_; }

 private:
  struct Frame {
    size_t chosen;
    size_t num_choices;
  };
  const size_t max_depth_;
  std::vector<Frame> frames_;
  size_t depth_ = 0;    // position within frames_ for the current schedule
  size_t pruned_ = 0;   // branches abandoned at the depth cap
};

/// Replays a recorded trace verbatim; declines (returns >= choices.size())
/// on divergence or when the trace runs out early.
class ReplaySource : public DecisionSource {
 public:
  explicit ReplaySource(std::vector<std::string> tokens)
      : tokens_(std::move(tokens)) {}
  size_t Pick(const std::vector<std::string>& choices) override;

 private:
  std::vector<std::string> tokens_;
  size_t pos_ = 0;
};

/// Runs a harness scenario under all configured strategies.
class Explorer {
 public:
  struct Options {
    size_t random_schedules = 200;   // STEMS_EXPLORE_SCHEDULES overrides
    size_t pct_schedules = 100;
    size_t pct_depth = 3;
    size_t dfs_max_schedules = 0;    // 0 = DFS disabled
    size_t dfs_max_depth = 64;
    size_t spurious_budget = 0;
    size_t max_steps = 20000;
    uint64_t seed = 1;
    /// When set, check.schedules_explored / check.states_pruned are
    /// published here (per-harness coverage in CI logs).
    obs::MetricsRegistry* metrics = nullptr;
  };

  struct Result {
    bool ok = true;
    std::string failure;        // first failing schedule's description
    std::string failing_trace;  // its decision trace (replayable)
    size_t schedules = 0;       // schedules actually run
    size_t pruned = 0;          // depth-cap truncations + duplicate traces
  };

  explicit Explorer(Options opts) : opts_(opts) {}

  /// Explores `factory` under every configured strategy, stopping at the
  /// first failure. Honors STEMS_SCHEDULE (replay that one trace instead)
  /// and STEMS_EXPLORE_SCHEDULES (override random_schedules). Prints a
  /// one-line per-harness summary and, on failure, the replay command.
  Result Explore(const std::string& name, const TestFactory& factory);

  /// Replays exactly one recorded schedule.
  Result Replay(const std::string& name, const TestFactory& factory,
                const std::string& trace);

 private:
  // Runs one schedule; returns "" or the failure description, and always
  // reports the trace taken through *trace.
  std::string RunOne(const TestFactory& factory, DecisionSource* source,
                     std::string* trace);

  Options opts_;
};

/// A checked-in regression schedule (tests/schedule_corpus/*.trace):
///   target: <harness name>      — which TestFactory to drive
///   expect: pass | fail         — fail = the trace must still trip the
///                                 invariant on the *mutated* code path
///   trace: v1:...               — the decision trace
/// '#' lines are comments.
struct CorpusEntry {
  std::string file;
  std::string target;
  std::string expect;
  std::string trace;
};

/// Loads every *.trace file under `dir` (sorted by name); malformed files
/// are reported as entries with target "__malformed__" so tests fail
/// loudly instead of silently skipping.
std::vector<CorpusEntry> LoadCorpus(const std::string& dir);

}  // namespace stems::check
