#include "check/scheduler.h"

#include <cstdlib>
#include <sstream>

namespace stems::check {
namespace {

/// Index of the calling thread within its Scheduler; -1 on unmanaged
/// threads (the hook is never installed there, so this is only read from
/// managed ones).
thread_local int t_self_index = -1;

/// Thrown out of a hook point to unwind a managed thread when the schedule
/// aborts (deadlock / livelock / divergence / another thread's exception).
/// Only thrown from points that fire *before* an acquisition — Lock, TryLock,
/// CondWait — so stack unwinding never double-releases a real mutex; the
/// points that fire after a release (Unlock, Notify, Atomic) return silently
/// instead, because they can run inside noexcept destructors.
struct SchedulerAbort {};

}  // namespace

Scheduler::~Scheduler() {
  {
    // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
    std::lock_guard<std::mutex> lk(lock_);
    abort_ = true;
  }
  turn_cv_.notify_all();
  for (ThreadInfo& ti : threads_) {
    if (ti.thread.joinable()) ti.thread.join();
  }
}

// ---------------------------------------------------------------------------
// Thread side
// ---------------------------------------------------------------------------

void Scheduler::ThreadMain(int index, std::function<void()> body) {
  t_self_index = index;
  ScopedHook hook(this);
  {
    // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
    std::unique_lock<std::mutex> lk(lock_);
    threads_[index].state = ThreadState::kRunnable;
    turn_cv_.notify_all();
    turn_cv_.wait(lk, [&] { return active_ == index || abort_; });
    if (abort_) {
      threads_[index].state = ThreadState::kFinished;
      active_ = kSchedulerTurn;
      turn_cv_.notify_all();
      return;
    }
  }
  std::string err;
  try {
    body();
  } catch (const SchedulerAbort&) {
    // Unwound deliberately; the scheduler already recorded why.
  } catch (const std::exception& e) {
    err = std::string("uncaught exception: ") + e.what();
  } catch (...) {
    err = "uncaught non-std exception";
  }
  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  std::unique_lock<std::mutex> lk(lock_);
  threads_[index].state = ThreadState::kFinished;
  if (!err.empty() && thread_failure_.empty()) {
    thread_failure_ = "thread " + std::to_string(index) + ": " + err;
  }
  active_ = kSchedulerTurn;
  turn_cv_.notify_all();
}

// invariant: allow(naked-mutex) -- scheduler-internal lock handle (models the hooked seam)
void Scheduler::YieldLocked(std::unique_lock<std::mutex>& lk) {
  const int self = SelfIndex();
  active_ = kSchedulerTurn;
  turn_cv_.notify_all();
  turn_cv_.wait(lk, [&] { return active_ == self || abort_; });
}

int Scheduler::SelfIndex() const { return t_self_index; }

// ---------------------------------------------------------------------------
// Hook points (called from managed threads)
// ---------------------------------------------------------------------------

void Scheduler::MutexLockPoint(void* mu) {
  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  std::unique_lock<std::mutex> lk(lock_);
  if (abort_) throw SchedulerAbort{};
  ThreadInfo& ti = threads_[SelfIndex()];
  ti.state = ThreadState::kBlockedMutex;
  ti.wait_mu = mu;
  YieldLocked(lk);  // the pick granted the modeled mutex (ApplyChoice)
  if (abort_) throw SchedulerAbort{};
}

void Scheduler::MutexUnlockPoint(void* mu) {
  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  std::unique_lock<std::mutex> lk(lock_);
  if (abort_) return;  // may run inside a noexcept destructor: never throw
  mutex_owner_.erase(mu);
  threads_[SelfIndex()].state = ThreadState::kRunnable;
  YieldLocked(lk);
}

bool Scheduler::TryLockPoint(void* mu) {
  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  std::unique_lock<std::mutex> lk(lock_);
  if (abort_) throw SchedulerAbort{};
  const int self = SelfIndex();
  // Yield *before* resolving: whether the try succeeds depends on where the
  // other threads are, which is exactly what the strategy explores.
  threads_[self].state = ThreadState::kRunnable;
  YieldLocked(lk);
  if (abort_) throw SchedulerAbort{};
  if (!MutexFree(mu)) return false;
  mutex_owner_[mu] = self;
  return true;
}

bool Scheduler::CondWaitPoint(void* cv, void* mu, bool timed) {
  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  std::unique_lock<std::mutex> lk(lock_);
  if (abort_) throw SchedulerAbort{};
  ThreadInfo& ti = threads_[SelfIndex()];
  mutex_owner_.erase(mu);  // the wrapper really released it before calling us
  ti.state = ThreadState::kBlockedCond;
  ti.wait_cv = cv;
  ti.wait_mu = mu;
  ti.timed_wait = timed;
  ti.wake = WakeReason::kNone;
  // Parked until (a) a notify / injected spurious wake / virtual timeout
  // moves us to kBlockedMutex, then (b) a pick grants the modeled mutex.
  YieldLocked(lk);
  if (abort_) throw SchedulerAbort{};
  const bool timed_out = (ti.wake == WakeReason::kTimeout);
  ti.wake = WakeReason::kNone;
  ti.wait_cv = nullptr;
  ti.wait_mu = nullptr;
  return timed_out;
}

void Scheduler::NotifyPoint(void* cv, bool notify_all) {
  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  std::unique_lock<std::mutex> lk(lock_);
  if (abort_) return;  // notify can sit on teardown paths: never throw
  // Deterministic wake order: ascending thread index.
  for (size_t i = 0; i < threads_.size(); ++i) {
    ThreadInfo& ti = threads_[i];
    if (ti.state == ThreadState::kBlockedCond && ti.wait_cv == cv) {
      ti.wake = WakeReason::kNotify;
      ti.state = ThreadState::kBlockedMutex;
      ti.wait_cv = nullptr;
      if (!notify_all) break;
    }
  }
  threads_[SelfIndex()].state = ThreadState::kRunnable;
  YieldLocked(lk);
}

void Scheduler::AtomicPoint(const void* /*addr*/) {
  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  std::unique_lock<std::mutex> lk(lock_);
  if (abort_) return;  // stems::Atomic ops are noexcept: never throw
  threads_[SelfIndex()].state = ThreadState::kRunnable;
  YieldLocked(lk);
}

// ---------------------------------------------------------------------------
// Scheduler side
// ---------------------------------------------------------------------------

bool Scheduler::MutexFree(void* mu) const {
  return mutex_owner_.find(mu) == mutex_owner_.end();
}

std::vector<std::string> Scheduler::LegalChoices() const {
  std::vector<std::string> out;
  for (size_t i = 0; i < threads_.size(); ++i) {
    const ThreadInfo& ti = threads_[i];
    const bool runnable =
        ti.state == ThreadState::kRunnable ||
        (ti.state == ThreadState::kBlockedMutex && MutexFree(ti.wait_mu));
    if (runnable) out.push_back("r" + std::to_string(i));
  }
  if (spurious_used_ < opts_.spurious_budget) {
    for (size_t i = 0; i < threads_.size(); ++i) {
      if (threads_[i].state == ThreadState::kBlockedCond) {
        out.push_back("s" + std::to_string(i));
      }
    }
  }
  if (out.empty()) {
    // Timeouts model "the wait expired because nothing else could run";
    // offering them only here keeps the DFS space small and makes a
    // deadlock report mean "even timeouts could not help".
    for (size_t i = 0; i < threads_.size(); ++i) {
      const ThreadInfo& ti = threads_[i];
      if (ti.state == ThreadState::kBlockedCond && ti.timed_wait) {
        out.push_back("t" + std::to_string(i));
      }
    }
  }
  return out;
}

bool Scheduler::ApplyChoice(const std::string& token) {
  if (token.size() < 2) return false;
  const char kind = token[0];
  const int i = std::atoi(token.c_str() + 1);
  if (i < 0 || static_cast<size_t>(i) >= threads_.size()) return false;
  ThreadInfo& ti = threads_[static_cast<size_t>(i)];
  switch (kind) {
    case 'r':
      if (ti.state == ThreadState::kBlockedMutex) {
        if (!MutexFree(ti.wait_mu)) return false;
        mutex_owner_[ti.wait_mu] = i;
        ti.wait_mu = nullptr;
        ti.state = ThreadState::kRunnable;
      } else if (ti.state != ThreadState::kRunnable) {
        return false;
      }
      active_ = i;
      turn_cv_.notify_all();
      return true;
    case 's':
      if (ti.state != ThreadState::kBlockedCond) return false;
      if (spurious_used_ >= opts_.spurious_budget) return false;
      ++spurious_used_;
      ti.wake = WakeReason::kSpurious;
      ti.state = ThreadState::kBlockedMutex;
      ti.wait_cv = nullptr;
      return true;  // no control transfer: the waiter still needs the mutex
    case 't':
      if (ti.state != ThreadState::kBlockedCond || !ti.timed_wait) return false;
      ti.wake = WakeReason::kTimeout;
      ti.state = ThreadState::kBlockedMutex;
      ti.wait_cv = nullptr;
      return true;
    default:
      return false;
  }
}

std::string Scheduler::WaitsForReport() const {
  std::ostringstream os;
  os << "waits-for:";
  for (size_t i = 0; i < threads_.size(); ++i) {
    const ThreadInfo& ti = threads_[i];
    if (ti.state == ThreadState::kFinished) continue;
    os << "\n  thread " << i << ": ";
    switch (ti.state) {
      case ThreadState::kBlockedMutex: {
        os << "blocked on mutex " << ti.wait_mu;
        auto it = mutex_owner_.find(ti.wait_mu);
        if (it != mutex_owner_.end()) os << " held by thread " << it->second;
        break;
      }
      case ThreadState::kBlockedCond:
        os << (ti.timed_wait ? "timed" : "untimed") << " wait on condvar "
           << ti.wait_cv << " (reacquires mutex " << ti.wait_mu << ")";
        break;
      default:
        os << "runnable (livelock)";
        break;
    }
    // Held mutexes complete the cycle picture.
    for (const auto& [mu, owner] : mutex_owner_) {
      if (owner == static_cast<int>(i)) os << "; holds mutex " << mu;
    }
  }
  return os.str();
}

ScheduleResult Scheduler::Run(std::vector<std::function<void()>> bodies,
                              DecisionSource* source) {
  ScheduleResult result;
  threads_.resize(bodies.size());
  for (size_t i = 0; i < bodies.size(); ++i) {
    threads_[i].thread = std::thread(&Scheduler::ThreadMain, this,
                                     static_cast<int>(i), std::move(bodies[i]));
  }
  {
    // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
    std::unique_lock<std::mutex> lk(lock_);
    turn_cv_.wait(lk, [&] {
      for (const ThreadInfo& ti : threads_) {
        if (ti.state == ThreadState::kNotStarted) return false;
      }
      return true;
    });

    while (true) {
      turn_cv_.wait(lk, [&] { return active_ == kSchedulerTurn; });
      if (!thread_failure_.empty()) {
        result.failure = thread_failure_;
        break;
      }
      bool all_finished = true;
      for (const ThreadInfo& ti : threads_) {
        if (ti.state != ThreadState::kFinished) all_finished = false;
      }
      if (all_finished) {
        result.completed = true;
        break;
      }
      if (tokens_.size() >= opts_.max_steps) {
        result.failure = "livelock: schedule exceeded " +
                         std::to_string(opts_.max_steps) + " steps";
        break;
      }
      const std::vector<std::string> choices = LegalChoices();
      if (choices.empty()) {
        result.failure = "deadlock: no runnable thread, no timeout to fire; " +
                         WaitsForReport();
        break;
      }
      const size_t pick = source->Pick(choices);
      if (pick >= choices.size()) {
        result.failure =
            "replay divergence: decision source declined all of [" +
            EncodeTrace(choices) + "] at step " +
            std::to_string(tokens_.size());
        break;
      }
      tokens_.push_back(choices[pick]);
      if (!ApplyChoice(choices[pick])) {
        result.failure = "internal: illegal choice " + choices[pick];
        break;
      }
      // r<i> handed control to thread i; s/t only mutated waiter state, so
      // the next loop iteration picks again immediately.
    }

    if (!result.completed) {
      // Failure drain: wake everyone; parked threads unwind (or run free —
      // every hook point is non-blocking once abort_ is set) and finish.
      abort_ = true;
      turn_cv_.notify_all();
      turn_cv_.wait(lk, [&] {
        for (const ThreadInfo& ti : threads_) {
          if (ti.state != ThreadState::kFinished) return false;
        }
        return true;
      });
    }
  }
  for (ThreadInfo& ti : threads_) {
    if (ti.thread.joinable()) ti.thread.join();
  }
  result.trace = EncodeTrace(tokens_);
  result.steps = tokens_.size();
  return result;
}

// ---------------------------------------------------------------------------
// Trace format
// ---------------------------------------------------------------------------

std::string Scheduler::EncodeTrace(const std::vector<std::string>& tokens) {
  std::string out = "v1:";
  for (size_t i = 0; i < tokens.size(); ++i) {
    if (i > 0) out += ',';
    out += tokens[i];
  }
  return out;
}

bool Scheduler::DecodeTrace(const std::string& trace,
                            std::vector<std::string>* tokens) {
  tokens->clear();
  const std::string prefix = "v1:";
  if (trace.rfind(prefix, 0) != 0) return false;
  const std::string body = trace.substr(prefix.size());
  if (body.empty()) return true;
  size_t start = 0;
  while (start <= body.size()) {
    const size_t comma = body.find(',', start);
    const std::string tok = body.substr(
        start, comma == std::string::npos ? std::string::npos : comma - start);
    if (tok.size() < 2 || (tok[0] != 'r' && tok[0] != 's' && tok[0] != 't')) {
      return false;
    }
    for (size_t i = 1; i < tok.size(); ++i) {
      if (tok[i] < '0' || tok[i] > '9') return false;
    }
    tokens->push_back(tok);
    if (comma == std::string::npos) break;
    start = comma + 1;
  }
  return true;
}

}  // namespace stems::check
