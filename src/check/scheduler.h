// Model-checking scheduler: runs N real threads one-runnable-at-a-time and
// explores their interleavings systematically (CHESS / loom style).
//
// How it composes with the engine: every stems::Mutex / CondVar /
// stems::Atomic operation consults the thread-local sched::Hook
// (src/common/thread_annotations.h). The Scheduler installs itself as that
// hook on each thread it spawns, models the mutex/condvar state itself, and
// blocks every thread at each synchronization point until the active
// exploration strategy picks it. Because the model grants a mutex only when
// it is free, the *real* lock that follows a granted MutexLockPoint never
// contends — real sync primitives degenerate to uncontended no-ops and the
// schedule alone decides every ordering.
//
// Each decision is recorded as a token; the concatenated trace replays a
// schedule exactly (Scheduler in replay mode, STEMS_SCHEDULE=<trace> at the
// harness level). Decision tokens:
//   r<i>  run thread i for one step (until its next sync point)
//   s<i>  spuriously wake cv-waiter i (bounded by spurious_budget)
//   t<i>  fire the virtual timeout of timed cv-waiter i (only offered when
//         nothing else is runnable — timeouts model "the wait expired
//         because no progress was possible", keeping the DFS space small)
//
// Deadlock: no choice available while unfinished threads remain — reported
// with a waits-for description of every blocked thread. Livelock: more
// steps than max_steps — reported with the tail of the trace.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

// The scheduler *implements* the modeled side of the sync seam, so its own
// coordination must not recurse into the hooked wrappers; it uses the raw
// standard primitives, suppressed per line below.
#include <condition_variable>  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
#include <mutex>               // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
#include <thread>

#include "common/thread_annotations.h"

namespace stems::check {

/// Picks the next decision each time the scheduler reaches a choice point.
/// `choices` holds the encoded tokens (see file comment) of every legal
/// decision, in deterministic order; Pick returns an index into it.
class DecisionSource {
 public:
  virtual ~DecisionSource() = default;
  virtual size_t Pick(const std::vector<std::string>& choices) = 0;
};

/// Outcome of running one schedule to completion (or to a detected hang).
struct ScheduleResult {
  /// All threads finished and no thread body threw.
  bool completed = false;
  /// Non-empty when the schedule itself failed: deadlock (with waits-for
  /// report), livelock (step cap), replay divergence, or an exception
  /// escaping a thread body.
  std::string failure;
  /// The decision trace actually taken, encoded as `v1:tok,tok,...`.
  std::string trace;
  size_t steps = 0;
};

/// One scheduler instance runs one schedule over fresh thread bodies. The
/// harness (Explorer) constructs a new Scheduler per explored schedule.
class Scheduler : public sched::Hook {
 public:
  struct Options {
    /// Hard cap on decisions before the schedule is declared a livelock.
    size_t max_steps = 20000;
    /// How many spurious cv wakeups the strategy may inject in total.
    size_t spurious_budget = 0;
  };

  explicit Scheduler(Options opts) : opts_(opts) {}
  ~Scheduler() override;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  /// Runs `bodies` (one real thread each) to completion under `source`'s
  /// decisions. Blocks until every thread finished or the schedule failed
  /// (deadlock / livelock / divergence); threads are always joined before
  /// return, so harness state the bodies touch is safe to inspect.
  ScheduleResult Run(std::vector<std::function<void()>> bodies,
                     DecisionSource* source);

  // --- sched::Hook (called from the spawned threads) ---------------------
  void MutexLockPoint(void* mu) override;
  void MutexUnlockPoint(void* mu) override;
  bool TryLockPoint(void* mu) override;
  bool CondWaitPoint(void* cv, void* mu, bool timed) override;
  void NotifyPoint(void* cv, bool notify_all) override;
  void AtomicPoint(const void* addr) override;

  /// Trace-format helpers shared with the Explorer / env replay.
  static std::string EncodeTrace(const std::vector<std::string>& tokens);
  /// Returns false on malformed input (bad version tag / empty token).
  static bool DecodeTrace(const std::string& trace,
                          std::vector<std::string>* tokens);

 private:
  enum class ThreadState {
    kNotStarted,
    kRunnable,      // will run when picked
    kBlockedMutex,  // waiting for wait_mu to be modeled-free
    kBlockedCond,   // inside CondWaitPoint, not yet woken
    kFinished,
  };

  // Why a cv waiter was woken — decides CondWaitPoint's return value and
  // shows up in waits-for reports.
  enum class WakeReason { kNone, kNotify, kSpurious, kTimeout };

  struct ThreadInfo {
    ThreadState state = ThreadState::kNotStarted;
    void* wait_mu = nullptr;  // kBlockedMutex / kBlockedCond: mutex to (re)acquire
    void* wait_cv = nullptr;  // kBlockedCond: condition waited on
    bool timed_wait = false;
    WakeReason wake = WakeReason::kNone;
    std::thread thread;
  };

  // --- thread-side protocol (all under lock_) ----------------------------
  void ThreadMain(int index, std::function<void()> body);
  // Parks the calling thread until the scheduler picks it again.
  void YieldLocked(std::unique_lock<std::mutex>& lk);  // invariant: allow(naked-mutex) -- scheduler-internal lock handle
  int SelfIndex() const;

  // --- scheduler-side (run on the Run() caller's thread) -----------------
  bool MutexFree(void* mu) const;
  std::vector<std::string> LegalChoices() const;
  // Applies the decision `token`; returns false if it names no legal move
  // (replay divergence).
  bool ApplyChoice(const std::string& token);
  std::string WaitsForReport() const;

  const Options opts_;

  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  mutable std::mutex lock_;
  // Threads park on this until `active_ == their index`; the scheduler
  // parks until `active_ == kSchedulerTurn`. One cv broadcast keeps the
  // protocol simple; N is small.
  // invariant: allow(naked-mutex) -- scheduler internals model the hooked seam and must not recurse into it
  std::condition_variable turn_cv_;

  static constexpr int kSchedulerTurn = -1;
  int active_ = kSchedulerTurn;         // whose turn it is to run
  std::vector<ThreadInfo> threads_;     // fixed size after Run() starts
  std::map<void*, int> mutex_owner_;    // modeled mutex -> owning thread
  size_t spurious_used_ = 0;
  bool abort_ = false;                  // schedule failed; threads must exit
  std::vector<std::string> tokens_;     // decisions taken so far
  std::string thread_failure_;          // first exception out of a body
};

/// RAII: installs `s` as the calling thread's hook, restores on destruction.
/// Used by Scheduler's spawned threads; exposed for tests that need a
/// hook on the main thread.
class ScopedHook {
 public:
  explicit ScopedHook(sched::Hook* s) : prev_(sched::ThreadHook()) {
    sched::SetThreadHook(s);
  }
  ~ScopedHook() { sched::SetThreadHook(prev_); }
  ScopedHook(const ScopedHook&) = delete;
  ScopedHook& operator=(const ScopedHook&) = delete;

 private:
  sched::Hook* const prev_;
};

}  // namespace stems::check
