// Simulation: the discrete-event driver all modules run on.
#pragma once

#include <cstdint>
#include <functional>

#include "sim/event_queue.h"

namespace stems {

/// Owns virtual time and the event queue. Modules schedule work with
/// Schedule()/At(); the driver executes events in time order until the
/// queue drains or a time/step limit is hit.
class Simulation {
 public:
  SimTime now() const { return now_; }
  uint64_t events_processed() const { return events_processed_; }

  /// Schedules `action` to run `delay` after now. Negative delays clamp to 0
  /// (runs after currently pending events at `now`).
  void Schedule(SimTime delay, EventQueue::Action action);

  /// Schedules `action` at absolute time `when` (>= now).
  void At(SimTime when, EventQueue::Action action);

  /// Runs until the event queue is empty. Returns the final time.
  SimTime Run();

  /// Runs events up to and including time `limit`. Returns true if the
  /// queue drained (no events remain), false if events beyond `limit`
  /// are still pending.
  bool RunUntil(SimTime limit);

  /// Runs at most `max_events` events; returns events actually run.
  uint64_t RunSteps(uint64_t max_events);

  bool Idle() const { return queue_.empty(); }

 private:
  SimTime now_ = 0;
  uint64_t events_processed_ = 0;
  EventQueue queue_;
};

}  // namespace stems
