#include "sim/event_queue.h"

#include <cassert>
#include <utility>

namespace stems {

void EventQueue::Push(SimTime time, Action action) {
  heap_.push(Entry{time, next_seq_++, std::move(action)});
}

SimTime EventQueue::NextTime() const {
  return heap_.empty() ? kSimTimeNever : heap_.top().time;
}

EventQueue::Action EventQueue::Pop(SimTime* time) {
  assert(!heap_.empty());
  // priority_queue::top() is const; the Entry is moved out via const_cast,
  // which is safe because pop() immediately removes it.
  Entry& top = const_cast<Entry&>(heap_.top());
  *time = top.time;
  Action action = std::move(top.action);
  heap_.pop();
  return action;
}

}  // namespace stems
