// Time-ordered event queue for the discrete-event simulator.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "sim/clock.h"

namespace stems {

/// Min-heap of (time, insertion order) keyed closures. Events at equal time
/// run in insertion order, which makes executions fully deterministic.
class EventQueue {
 public:
  using Action = std::function<void()>;

  void Push(SimTime time, Action action);

  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

  /// Time of the earliest pending event; kSimTimeNever when empty.
  SimTime NextTime() const;

  /// Removes and returns the earliest event.
  Action Pop(SimTime* time);

 private:
  struct Entry {
    SimTime time;
    uint64_t seq;
    Action action;
  };
  struct Later {
    bool operator()(const Entry& a, const Entry& b) const {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };
  std::priority_queue<Entry, std::vector<Entry>, Later> heap_;
  uint64_t next_seq_ = 0;
};

}  // namespace stems
