// Latency models for simulated remote sources.
//
// The paper's experiments implement index lookups "as sleeps of identical
// duration" (Table 3) and stress source delays/stalls (§1.2, §3.4). These
// models generate those behaviours in virtual time.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.h"
#include "sim/clock.h"

namespace stems {

/// Samples the service latency of one request issued at `now`.
class LatencyModel {
 public:
  virtual ~LatencyModel() = default;
  virtual SimTime Sample(SimTime now, Rng& rng) = 0;
};

/// Constant latency — the paper's "sleeps of identical duration".
class FixedLatency : public LatencyModel {
 public:
  explicit FixedLatency(SimTime latency) : latency_(latency) {}
  SimTime Sample(SimTime, Rng&) override { return latency_; }

 private:
  SimTime latency_;
};

/// Uniform latency in [lo, hi].
class UniformLatency : public LatencyModel {
 public:
  UniformLatency(SimTime lo, SimTime hi) : lo_(lo), hi_(hi) {}
  SimTime Sample(SimTime, Rng& rng) override {
    return lo_ + static_cast<SimTime>(
                     rng.NextBounded(static_cast<uint64_t>(hi_ - lo_ + 1)));
  }

 private:
  SimTime lo_, hi_;
};

/// Wraps an inner model with stall windows: a request issued during
/// [start, end) completes no earlier than `end` (an autonomously maintained
/// web source going quiet, paper §1.2).
class StallWindowLatency : public LatencyModel {
 public:
  struct Window {
    SimTime start;
    SimTime end;
  };

  StallWindowLatency(std::unique_ptr<LatencyModel> inner,
                     std::vector<Window> windows)
      : inner_(std::move(inner)), windows_(std::move(windows)) {}

  SimTime Sample(SimTime now, Rng& rng) override {
    SimTime base = inner_->Sample(now, rng);
    for (const auto& w : windows_) {
      if (now >= w.start && now < w.end) {
        SimTime until_end = w.end - now;
        return base > until_end ? base : until_end;
      }
    }
    return base;
  }

 private:
  std::unique_ptr<LatencyModel> inner_;
  std::vector<Window> windows_;
};

/// Exponentially distributed latency with the given mean (bursty sources).
class ExponentialLatency : public LatencyModel {
 public:
  explicit ExponentialLatency(SimTime mean) : mean_(mean) {}
  SimTime Sample(SimTime now, Rng& rng) override;

 private:
  SimTime mean_;
};

}  // namespace stems
