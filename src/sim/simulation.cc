#include "sim/simulation.h"

#include <cassert>

namespace stems {

void Simulation::Schedule(SimTime delay, EventQueue::Action action) {
  if (delay < 0) delay = 0;
  queue_.Push(now_ + delay, std::move(action));
}

void Simulation::At(SimTime when, EventQueue::Action action) {
  assert(when >= now_ && "cannot schedule in the past");
  queue_.Push(when, std::move(action));
}

SimTime Simulation::Run() {
  while (!queue_.empty()) {
    SimTime t;
    auto action = queue_.Pop(&t);
    now_ = t;
    ++events_processed_;
    action();
  }
  return now_;
}

bool Simulation::RunUntil(SimTime limit) {
  while (!queue_.empty() && queue_.NextTime() <= limit) {
    SimTime t;
    auto action = queue_.Pop(&t);
    now_ = t;
    ++events_processed_;
    action();
  }
  if (now_ < limit) now_ = limit;
  return queue_.empty();
}

uint64_t Simulation::RunSteps(uint64_t max_events) {
  uint64_t run = 0;
  while (!queue_.empty() && run < max_events) {
    SimTime t;
    auto action = queue_.Pop(&t);
    now_ = t;
    ++events_processed_;
    ++run;
    action();
  }
  return run;
}

}  // namespace stems
