// Virtual time.
//
// The engine runs in discrete-event simulated time (DESIGN.md §5): the paper
// implemented remote-source latencies as wall-clock sleeps; we implement
// them as virtual-time delays, which preserves all ordering/queueing effects
// while making every experiment deterministic and fast.
#pragma once

#include <cstdint>

namespace stems {

/// Virtual time in microseconds since query start.
using SimTime = int64_t;

constexpr SimTime kSimTimeNever = INT64_MAX;

/// Convenience constructors.
constexpr SimTime Micros(int64_t us) { return us; }
constexpr SimTime Millis(int64_t ms) { return ms * 1000; }
constexpr SimTime Seconds(double s) {
  return static_cast<SimTime>(s * 1e6);
}

/// SimTime expressed in (virtual) seconds, for reporting.
constexpr double ToSeconds(SimTime t) { return static_cast<double>(t) / 1e6; }

}  // namespace stems
