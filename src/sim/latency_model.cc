#include "sim/latency_model.h"

#include <cmath>

namespace stems {

SimTime ExponentialLatency::Sample(SimTime /*now*/, Rng& rng) {
  double u = rng.NextDouble();
  // Guard against log(0).
  if (u <= 0) u = 1e-12;
  double draw = -std::log(1.0 - u) * static_cast<double>(mean_);
  return static_cast<SimTime>(draw);
}

}  // namespace stems
