// QueryProfile: the per-module execution profile behind EXPLAIN ANALYZE.
//
// One row per module (AMs, selection modules, SteMs) with the counters a
// routing post-mortem needs: tuples in/out, the selectivity the module
// *observed* against the static prior a conventional optimizer would have
// *assumed* (0.5 per selection conjunct, 1.0 pass-through elsewhere — the
// contrast the eddies paper motivates), build/probe/match counts, spill I/O,
// and virtual busy/queue time. Totals cover the whole query on both clocks.
//
// Built by QueryHandle::Profile() / Engine::ExplainAnalyze() from live module
// stats; pure data here (no engine dependencies) so tests and tools can
// construct and render profiles directly.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stems::obs {

struct ModuleProfileRow {
  std::string name;
  std::string kind;  ///< ModuleKindName: "SM" / "ScanAM" / "SteM" / ...;
                     ///< "worker" for threaded-executor rows
  uint64_t tuples_in = 0;
  uint64_t tuples_out = 0;
  /// tuples_out / tuples_in as measured (1.0 when nothing arrived).
  double observed_selectivity = 1.0;
  /// The uninformed static prior (0.5 for selections, 1.0 otherwise).
  double assumed_selectivity = 1.0;
  uint64_t builds = 0;
  uint64_t probes = 0;
  uint64_t matches = 0;
  uint64_t spill_ios = 0;
  uint64_t bytes_spilled = 0;
  uint64_t busy_vus = 0;        ///< virtual microseconds in service
  uint64_t queue_wait_vus = 0;  ///< summed virtual queueing delay
  size_t max_queue_len = 0;
};

struct QueryProfile {
  std::string executor;  ///< "sim" or "threaded"
  std::string policy;
  uint64_t num_results = 0;
  uint64_t tuples_routed = 0;
  uint64_t tuples_retired = 0;
  uint64_t routing_wall_ns = 0;  ///< wall time inside routing steps
  uint64_t virtual_time_us = 0;  ///< sim-clock completion time (sim only)
  uint64_t wall_us = 0;          ///< wall-clock submit-to-finish time
  uint64_t spill_ios = 0;
  uint64_t bytes_spilled = 0;
  std::vector<ModuleProfileRow> modules;

  /// Fixed-width text table (the EXPLAIN ANALYZE output): one header, one
  /// row per module, then a totals footer.
  std::string ToTable() const;
};

}  // namespace stems::obs
