#include "obs/profile.h"

#include <algorithm>
#include <cinttypes>
#include <cstdio>

namespace stems::obs {

namespace {

struct Col {
  const char* header;
  size_t width;
};

void AppendCell(std::string* out, const std::string& text, size_t width,
                bool right) {
  std::string cell = text;
  if (cell.size() > width) cell.resize(width);
  size_t pad = width - cell.size();
  if (right) out->append(pad, ' ');
  *out += cell;
  if (!right) out->append(pad, ' ');
  *out += "  ";
}

std::string U64(uint64_t v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

std::string Dbl(double v) {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "%.3f", v);
  return buf;
}

}  // namespace

std::string QueryProfile::ToTable() const {
  static constexpr Col kCols[] = {
      {"module", 18}, {"kind", 9},    {"in", 9},       {"out", 9},
      {"sel(obs)", 8}, {"sel(asm)", 8}, {"builds", 8},  {"probes", 8},
      {"matches", 8}, {"spill_io", 8}, {"busy_vus", 10}, {"wait_vus", 10},
  };
  std::string out;
  for (const Col& c : kCols) {
    std::string h = c.header;
    AppendCell(&out, h, c.width, false);
  }
  out += "\n";
  size_t total_width = 0;
  for (const Col& c : kCols) total_width += c.width + 2;
  out.append(total_width, '-');
  out += "\n";
  for (const ModuleProfileRow& m : modules) {
    AppendCell(&out, m.name, kCols[0].width, false);
    AppendCell(&out, m.kind, kCols[1].width, false);
    AppendCell(&out, U64(m.tuples_in), kCols[2].width, true);
    AppendCell(&out, U64(m.tuples_out), kCols[3].width, true);
    AppendCell(&out, Dbl(m.observed_selectivity), kCols[4].width, true);
    AppendCell(&out, Dbl(m.assumed_selectivity), kCols[5].width, true);
    AppendCell(&out, U64(m.builds), kCols[6].width, true);
    AppendCell(&out, U64(m.probes), kCols[7].width, true);
    AppendCell(&out, U64(m.matches), kCols[8].width, true);
    AppendCell(&out, U64(m.spill_ios), kCols[9].width, true);
    AppendCell(&out, U64(m.busy_vus), kCols[10].width, true);
    AppendCell(&out, U64(m.queue_wait_vus), kCols[11].width, true);
    out += "\n";
  }
  out.append(total_width, '-');
  out += "\n";
  char buf[256];
  std::snprintf(buf, sizeof(buf),
                "executor=%s policy=%s results=%" PRIu64 " routed=%" PRIu64
                " retired=%" PRIu64 "\n",
                executor.c_str(), policy.c_str(), num_results, tuples_routed,
                tuples_retired);
  out += buf;
  std::snprintf(buf, sizeof(buf),
                "virtual_time_us=%" PRIu64 " wall_us=%" PRIu64
                " routing_wall_ns=%" PRIu64 " spill_ios=%" PRIu64
                " bytes_spilled=%" PRIu64 "\n",
                virtual_time_us, wall_us, routing_wall_ns, spill_ios,
                bytes_spilled);
  out += buf;
  return out;
}

}  // namespace stems::obs
