#include "obs/metrics_registry.h"

#include <cinttypes>
#include <cstdio>

namespace stems::obs {

double Histogram::Percentile(double q) const {
  uint64_t counts[kNumBuckets];
  uint64_t total = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    counts[i] = buckets_[i].load(std::memory_order_relaxed);
    total += counts[i];
  }
  if (total == 0) return 0.0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target observation (1-based), then walk buckets.
  double rank = q * static_cast<double>(total);
  if (rank < 1.0) rank = 1.0;
  uint64_t seen = 0;
  for (size_t i = 0; i < kNumBuckets; ++i) {
    if (counts[i] == 0) continue;
    if (static_cast<double>(seen + counts[i]) >= rank) {
      // Interpolate inside bucket i: (lo, hi] with lo = 2^(i-1), hi = 2^i.
      double lo = i == 0 ? 0.0 : static_cast<double>(1ull << (i - 1));
      double hi = static_cast<double>(1ull << i);
      double frac = (rank - static_cast<double>(seen)) /
                    static_cast<double>(counts[i]);
      return lo + (hi - lo) * frac;
    }
    seen += counts[i];
  }
  return static_cast<double>(1ull << (kNumBuckets - 1));
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = counters_[name];
  if (!slot) slot = std::make_unique<Counter>();
  return slot.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = gauges_[name];
  if (!slot) slot = std::make_unique<Gauge>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  MutexLock lock(&mu_);
  auto& slot = histograms_[name];
  if (!slot) slot = std::make_unique<Histogram>();
  return slot.get();
}

namespace {

// Prometheus metric names: [a-zA-Z_:][a-zA-Z0-9_:]*. Registry keys use dots
// as namespace separators; sanitize everything else to '_'.
std::string Sanitize(const std::string& name) {
  std::string out = "stems_";
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  return out;
}

void AppendLine(std::string* out, const std::string& name, const char* type,
                int64_t value) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, value);
  *out += "# TYPE " + name + " " + type + "\n";
  *out += name + " " + buf + "\n";
}

}  // namespace

std::string MetricsRegistry::ExpositionText() const {
  MutexLock lock(&mu_);
  std::string out;
  for (const auto& [name, c] : counters_) {
    AppendLine(&out, Sanitize(name), "counter",
               static_cast<int64_t>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    AppendLine(&out, Sanitize(name), "gauge", g->value());
  }
  for (const auto& [name, h] : histograms_) {
    const std::string p = Sanitize(name);
    out += "# TYPE " + p + " summary\n";
    char buf[64];
    for (double q : {0.5, 0.95, 0.99}) {
      std::snprintf(buf, sizeof(buf), "{quantile=\"%.2g\"} %.1f\n", q,
                    h->Percentile(q));
      out += p + buf;
    }
    std::snprintf(buf, sizeof(buf), "_sum %" PRIu64 "\n", h->sum());
    out += p + buf;
    std::snprintf(buf, sizeof(buf), "_count %" PRIu64 "\n", h->count());
    out += p + buf;
  }
  return out;
}

std::vector<std::pair<std::string, int64_t>> MetricsRegistry::Snapshot() const {
  MutexLock lock(&mu_);
  std::vector<std::pair<std::string, int64_t>> out;
  out.reserve(counters_.size() + gauges_.size());
  for (const auto& [name, c] : counters_) {
    out.emplace_back(name, static_cast<int64_t>(c->value()));
  }
  for (const auto& [name, g] : gauges_) {
    out.emplace_back(name, g->value());
  }
  return out;
}

}  // namespace stems::obs
