// Tracer: per-query ring buffer of trace spans, exportable as Chrome
// `trace_event` JSON (chrome://tracing, Perfetto).
//
// Three event streams share one buffer:
//   * routing decisions — the eddy's choice for a tuple batch: lineage mask,
//     module chosen, routing intent (category "route", instant events);
//   * module service spans — one complete span per serviced group, on the
//     virtual clock (category "module", 'X' events whose ts/dur are virtual
//     microseconds);
//   * worker morsel spans — one complete span per claimed morsel in the
//     threaded executor, on the wall clock (category "morsel").
//
// Sampling: each stream keeps its own counter and records every Nth event
// (`RunOptions::trace_every_n`; 1 = everything). The *disabled* path is one
// branch — when tracing is off no Tracer exists and every instrumentation
// site is `if (tracer_ != nullptr)` on a cached pointer.
//
// The ring keeps the most recent `capacity` events (oldest overwritten);
// `events_seen` vs `events_recorded` in the JSON metadata says how much was
// dropped by sampling + wraparound.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace stems::obs {

struct TraceEvent {
  std::string name;
  const char* cat = "";  ///< static-string category ("route"/"module"/"morsel")
  char ph = 'X';         ///< 'X' complete span, 'i' instant
  uint64_t ts_us = 0;    ///< virtual or wall microseconds (per stream)
  uint64_t dur_us = 0;   ///< span duration; ignored for 'i'
  uint32_t tid = 0;      ///< worker id (threaded) or module id (sim)
  std::string args_json; ///< pre-rendered JSON object body sans braces, or ""
};

class Tracer {
 public:
  /// `every_n` >= 1: record every Nth event per stream.
  explicit Tracer(uint64_t every_n, size_t capacity = 16384)
      : every_n_(every_n == 0 ? 1 : every_n), capacity_(capacity) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  /// Per-stream sampling decisions; cheap enough for the routing hot loop
  /// (one relaxed fetch_add + compare).
  bool SampleRoute() { return Sample(route_seen_); }
  bool SampleService() { return Sample(service_seen_); }
  bool SampleMorsel() { return Sample(morsel_seen_); }

  void Record(TraceEvent ev);

  uint64_t events_seen() const {
    return route_seen_.load(std::memory_order_relaxed) +
           service_seen_.load(std::memory_order_relaxed) +
           morsel_seen_.load(std::memory_order_relaxed);
  }
  uint64_t events_recorded() const {
    MutexLock lock(&mu_);
    return recorded_;
  }
  uint64_t every_n() const { return every_n_; }

  /// Chrome trace JSON: {"traceEvents":[...], "otherData":{...}}. Events are
  /// emitted oldest-first. Safe to call while workers still record (locks
  /// the ring), though normally called after completion.
  std::string ToJson() const;

  /// Escapes `s` for embedding inside a JSON string literal.
  static std::string JsonEscape(const std::string& s);

 private:
  bool Sample(std::atomic<uint64_t>& seen) {
    uint64_t n = seen.fetch_add(1, std::memory_order_relaxed);
    return n % every_n_ == 0;
  }

  const uint64_t every_n_;
  const size_t capacity_;

  /// relaxed: per-stream sampling counters — each is an independent
  /// statistic; the modulo decision needs no ordering with the ring.
  std::atomic<uint64_t> route_seen_{0};
  std::atomic<uint64_t> service_seen_{0};
  std::atomic<uint64_t> morsel_seen_{0};

  mutable Mutex mu_;
  /// Ring once size reaches capacity_.
  std::vector<TraceEvent> ring_ STEMS_GUARDED_BY(mu_);
  /// Overwrite cursor when full.
  size_t next_ STEMS_GUARDED_BY(mu_) = 0;
  uint64_t recorded_ STEMS_GUARDED_BY(mu_) = 0;
};

}  // namespace stems::obs
