#include "obs/trace.h"

#include <cinttypes>
#include <cstdio>

namespace stems::obs {

void Tracer::Record(TraceEvent ev) {
  MutexLock lock(&mu_);
  ++recorded_;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(ev));
    return;
  }
  ring_[next_] = std::move(ev);
  next_ = (next_ + 1) % capacity_;
}

std::string Tracer::JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      case '\r': out += "\\r"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

std::string Tracer::ToJson() const {
  MutexLock lock(&mu_);
  std::string out = "{\"traceEvents\":[";
  char buf[128];
  bool first = true;
  // Oldest-first: once the ring wrapped, next_ points at the oldest event.
  const size_t n = ring_.size();
  for (size_t i = 0; i < n; ++i) {
    const TraceEvent& ev = ring_[(next_ + i) % n];
    if (!first) out += ",";
    first = false;
    out += "{\"name\":\"" + JsonEscape(ev.name) + "\",\"cat\":\"";
    out += ev.cat;
    out += "\",\"ph\":\"";
    out.push_back(ev.ph);
    std::snprintf(buf, sizeof(buf),
                  "\",\"ts\":%" PRIu64 ",\"pid\":1,\"tid\":%u", ev.ts_us,
                  ev.tid);
    out += buf;
    if (ev.ph == 'X') {
      std::snprintf(buf, sizeof(buf), ",\"dur\":%" PRIu64, ev.dur_us);
      out += buf;
    }
    if (ev.ph == 'i') {
      out += ",\"s\":\"t\"";  // instant-event scope: thread
    }
    if (!ev.args_json.empty()) {
      out += ",\"args\":{" + ev.args_json + "}";
    }
    out += "}";
  }
  std::snprintf(buf, sizeof(buf),
                "],\"otherData\":{\"events_seen\":%" PRIu64
                ",\"events_recorded\":%" PRIu64 ",\"every_n\":%" PRIu64 "}}",
                route_seen_.load(std::memory_order_relaxed) +
                    service_seen_.load(std::memory_order_relaxed) +
                    morsel_seen_.load(std::memory_order_relaxed),
                recorded_, every_n_);
  out += buf;
  return out;
}

}  // namespace stems::obs
