// MetricsRegistry: the engine-wide, thread-safe observability substrate.
//
// Every subsystem (eddy, SteMs, spill buffer pool, morsel workers, tenant
// governor, server request queue) publishes into one registry of named
// counters, gauges, and fixed-bucket latency histograms. Handles returned by
// the registry are pointer-stable for its lifetime, so hot paths resolve a
// metric once and then touch a single relaxed atomic per update.
//
// The registry is *dual-clocked* by convention, not by mechanism: metrics fed
// from the sim executor record virtual SimTime quantities (suffix `_vus`,
// virtual microseconds), metrics fed from the threaded executor and the
// server record wall-clock quantities (suffix `_us`/`_ns`). A metric name
// states its clock; the registry itself only stores numbers.
//
// Exposition is Prometheus-style plaintext (`ExpositionText()`): counters and
// gauges as single samples, histograms as summary quantiles (p50/p95/p99)
// plus `_count`/`_sum`. Names are sanitized (dots become underscores) and
// prefixed `stems_`.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace stems::obs {

/// Monotone counter. All mutators are wait-free relaxed atomics.
/// relaxed: a monotone statistic — readers tolerate slightly stale values
/// and no other data is published through it.
class Counter {
 public:
  void Add(uint64_t delta = 1) { v_.fetch_add(delta, std::memory_order_relaxed); }
  uint64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> v_{0};
};

/// Last-writer-wins instantaneous value, plus a monotone high-water mark
/// (`SetMax`) for queue-depth style metrics.
/// relaxed: an instantaneous statistic — no ordering with other state.
class Gauge {
 public:
  void Set(int64_t v) { v_.store(v, std::memory_order_relaxed); }
  void Add(int64_t delta) { v_.fetch_add(delta, std::memory_order_relaxed); }
  /// Raises the gauge to `v` if above the current value (CAS loop).
  void SetMax(int64_t v) {
    int64_t cur = v_.load(std::memory_order_relaxed);
    while (v > cur &&
           !v_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  int64_t value() const { return v_.load(std::memory_order_relaxed); }

 private:
  /// relaxed: instantaneous statistic (class doc).
  std::atomic<int64_t> v_{0};
};

/// Fixed-bucket latency histogram with power-of-two bucket bounds:
/// bucket i counts observations in (2^(i-1), 2^i], bucket 0 counts [0, 1].
/// Percentiles interpolate linearly inside the winning bucket — cheap,
/// lock-free to record, and accurate enough for p50/p95/p99 dashboards.
/// relaxed: bucket/count/sum updates are independent statistics; readers
/// take racy-but-close snapshots by design.
class Histogram {
 public:
  static constexpr size_t kNumBuckets = 40;  // covers up to ~2^39 (~9 minutes in us)

  void Observe(uint64_t value) {
    buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(value, std::memory_order_relaxed);
  }

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }

  /// Estimated value at quantile `q` in [0, 1] (0.5 = p50). Returns 0 when
  /// empty. Reads are racy-but-consistent-enough snapshots (relaxed loads).
  double Percentile(double q) const;

 private:
  static size_t BucketFor(uint64_t value) {
    if (value <= 1) return 0;
    size_t b = 64 - static_cast<size_t>(__builtin_clzll(value - 1));
    return b < kNumBuckets ? b : kNumBuckets - 1;
  }

  /// relaxed: independent statistics; racy-but-close snapshots (class doc).
  std::atomic<uint64_t> buckets_[kNumBuckets] = {};
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
};

/// Named metric registry. Lookup takes a mutex; returned pointers are stable
/// for the registry's lifetime, so callers cache them at wiring time and the
/// steady state never touches the lock.
class MetricsRegistry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);

  /// Prometheus-style plaintext exposition of every registered metric, in
  /// sorted name order (deterministic output for tests and diffing).
  std::string ExpositionText() const;

  /// Point-in-time numeric snapshot (counters + gauges), for programmatic
  /// consumers (governor re-pricing, tests). Histogram quantiles are
  /// exposition-only.
  std::vector<std::pair<std::string, int64_t>> Snapshot() const;

 private:
  mutable Mutex mu_;
  std::map<std::string, std::unique_ptr<Counter>> counters_
      STEMS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Gauge>> gauges_ STEMS_GUARDED_BY(mu_);
  std::map<std::string, std::unique_ptr<Histogram>> histograms_
      STEMS_GUARDED_BY(mu_);
};

}  // namespace stems::obs
