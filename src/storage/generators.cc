#include "storage/generators.h"

#include <cassert>

namespace stems {

std::vector<RowRef> GenerateRows(const std::vector<ColumnGenSpec>& columns,
                                 size_t num_rows, uint64_t seed) {
  Rng rng(seed);
  std::vector<ZipfGenerator> zipfs;
  zipfs.reserve(columns.size());
  for (const auto& c : columns) {
    // One generator per column to keep draws independent of column order.
    zipfs.emplace_back(c.kind == ColumnGenSpec::Kind::kZipf
                           ? static_cast<size_t>(c.domain)
                           : 1,
                       c.zipf_s, seed ^ (zipfs.size() + 1));
  }
  std::vector<RowRef> rows;
  rows.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    std::vector<Value> values;
    values.reserve(columns.size());
    for (size_t c = 0; c < columns.size(); ++c) {
      const auto& spec = columns[c];
      switch (spec.kind) {
        case ColumnGenSpec::Kind::kSequential:
          values.push_back(Value::Int64(static_cast<int64_t>(i) + spec.lo));
          break;
        case ColumnGenSpec::Kind::kUniform:
          values.push_back(Value::Int64(rng.NextInt(spec.lo, spec.hi)));
          break;
        case ColumnGenSpec::Kind::kZipf:
          values.push_back(
              Value::Int64(static_cast<int64_t>(zipfs[c].Next()) + spec.lo));
          break;
        case ColumnGenSpec::Kind::kConstant:
          values.push_back(Value::Int64(spec.lo));
          break;
        case ColumnGenSpec::Kind::kRoundRobin:
          values.push_back(Value::Int64(
              static_cast<int64_t>(i % static_cast<size_t>(spec.domain)) +
              spec.lo));
          break;
      }
    }
    rows.push_back(MakeRow(std::move(values)));
  }
  return rows;
}

Schema SchemaFor(const std::vector<ColumnGenSpec>& columns) {
  std::vector<ColumnDef> defs;
  defs.reserve(columns.size());
  for (const auto& c : columns) defs.push_back({c.name, ValueType::kInt64});
  return Schema(std::move(defs));
}

Schema SchemaR() {
  return Schema({{"key", ValueType::kInt64}, {"a", ValueType::kInt64}});
}

std::vector<RowRef> GenerateTableR(size_t num_rows, size_t num_distinct_a,
                                   uint64_t seed) {
  assert(num_distinct_a > 0);
  Rng rng(seed);
  std::vector<RowRef> rows;
  rows.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    rows.push_back(MakeRow(
        {Value::Int64(static_cast<int64_t>(i)),
         Value::Int64(rng.NextInt(0, static_cast<int64_t>(num_distinct_a) - 1))}));
  }
  return rows;
}

Schema SchemaS() {
  return Schema({{"x", ValueType::kInt64}, {"y", ValueType::kInt64}});
}

std::vector<RowRef> GenerateTableS(size_t domain) {
  std::vector<RowRef> rows;
  rows.reserve(domain);
  for (size_t v = 0; v < domain; ++v) {
    rows.push_back(MakeRow({Value::Int64(static_cast<int64_t>(v)),
                            Value::Int64(static_cast<int64_t>(v))}));
  }
  return rows;
}

Schema SchemaT() {
  return Schema({{"key", ValueType::kInt64}, {"payload", ValueType::kInt64}});
}

std::vector<RowRef> GenerateTableT(size_t num_rows, uint64_t seed) {
  Rng rng(seed);
  auto perm = rng.Permutation(num_rows);
  std::vector<RowRef> rows;
  rows.reserve(num_rows);
  for (size_t i = 0; i < num_rows; ++i) {
    rows.push_back(MakeRow({Value::Int64(static_cast<int64_t>(perm[i])),
                            Value::Int64(static_cast<int64_t>(perm[i]) * 7)}));
  }
  return rows;
}

}  // namespace stems
