// Synthetic data generators, including the paper's Table 3 sources.
//
// Table 3 of the paper:
//   R(key, a):  1000 tuples, scan AM; `key` is the primary key, `a` has 250
//               distinct values randomly assigned.
//   S(x, y):    asynchronous index AMs on both x and y; every tuple has
//               x = y (a keyed web service: probing either key returns the
//               matching record).
//   T(key):     1000 tuples; asynchronous index AM on `key` plus a scan AM.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"
#include "types/row.h"
#include "types/schema.h"

namespace stems {

/// Value distribution for one generated column.
struct ColumnGenSpec {
  enum class Kind {
    kSequential,  ///< 0, 1, 2, ... (primary keys)
    kUniform,     ///< uniform integers in [lo, hi]
    kZipf,        ///< zipf over [0, domain) with exponent s
    kConstant,    ///< `lo` for every row
    kRoundRobin,  ///< i % domain — exactly `domain` distinct values
  };
  std::string name;
  Kind kind = Kind::kSequential;
  int64_t lo = 0;
  int64_t hi = 0;
  int64_t domain = 1;
  double zipf_s = 1.0;
};

/// Generates `num_rows` rows for the given column specs.
std::vector<RowRef> GenerateRows(const std::vector<ColumnGenSpec>& columns,
                                 size_t num_rows, uint64_t seed);

/// Schema matching a set of column specs (all int64).
Schema SchemaFor(const std::vector<ColumnGenSpec>& columns);

// ---------------------------------------------------------------------------
// Paper Table 3 sources.
// ---------------------------------------------------------------------------

/// R(key, a): `num_rows` rows, `a` uniform over `num_distinct_a` values.
std::vector<RowRef> GenerateTableR(size_t num_rows, size_t num_distinct_a,
                                   uint64_t seed);
Schema SchemaR();

/// S(x, y): one row per value of [0, domain), with x = y. Models the keyed
/// web service: an index probe on x (or y) for value v returns row (v, v).
std::vector<RowRef> GenerateTableS(size_t domain);
Schema SchemaS();

/// T(key): `num_rows` rows with key = 0..num_rows-1, scanned in a
/// seed-determined random order (so hash-join matches arrive probabilistically,
/// as in Fig 8).
std::vector<RowRef> GenerateTableT(size_t num_rows, uint64_t seed);
Schema SchemaT();

}  // namespace stems
