#include "storage/table_store.h"

namespace stems {

size_t StoredTable::IndexKeyHash::operator()(
    const std::vector<Value>& k) const {
  size_t h = 0x811c9dc5u;
  for (const auto& v : k) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

bool StoredTable::IndexKeyEq::operator()(const std::vector<Value>& a,
                                         const std::vector<Value>& b) const {
  return a == b;
}

const std::vector<RowRef>& StoredTable::Lookup(
    const std::vector<int>& bind_columns,
    const std::vector<Value>& bind_values) const {
  static const std::vector<RowRef> kEmpty;
  auto [it, inserted] = indexes_.try_emplace(bind_columns);
  Index& index = it->second;
  if (inserted) {
    for (const auto& row : rows_) {
      std::vector<Value> key;
      key.reserve(bind_columns.size());
      for (int c : bind_columns) key.push_back(row->value(c));
      index[std::move(key)].push_back(row);
    }
  }
  auto hit = index.find(bind_values);
  return hit == index.end() ? kEmpty : hit->second;
}

Status TableStore::AddTable(const std::string& name, Schema schema,
                            std::vector<RowRef> rows) {
  if (tables_.count(name) > 0) {
    return Status::AlreadyExists("stored table '" + name + "' already exists");
  }
  tables_.emplace(name, StoredTable(std::move(schema), std::move(rows)));
  return Status::OK();
}

Result<const StoredTable*> TableStore::GetTable(const std::string& name) const {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("stored table '" + name + "' not found");
  }
  return &it->second;
}

Result<StoredTable*> TableStore::GetMutableTable(const std::string& name) {
  auto it = tables_.find(name);
  if (it == tables_.end()) {
    return Status::NotFound("stored table '" + name + "' not found");
  }
  return &it->second;
}

}  // namespace stems
