// In-memory storage backing the simulated data sources.
//
// A TableStore holds the rows of each base table. Access Modules draw from
// it: scan AMs stream all rows; index AMs look up rows by bind-column
// values (with lazily built hash indexes, standing in for the remote
// source's own index).
#pragma once

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "types/row.h"
#include "types/schema.h"

namespace stems {

/// Rows of one table plus lazily built lookup indexes.
class StoredTable {
 public:
  StoredTable() = default;
  StoredTable(Schema schema, std::vector<RowRef> rows)
      : schema_(std::move(schema)), rows_(std::move(rows)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<RowRef>& rows() const { return rows_; }
  size_t num_rows() const { return rows_.size(); }

  void AppendRow(RowRef row) { rows_.push_back(std::move(row)); }

  /// Rows whose `bind_columns` equal `bind_values` (order-aligned). Builds a
  /// hash index over that column set on first use.
  const std::vector<RowRef>& Lookup(const std::vector<int>& bind_columns,
                                    const std::vector<Value>& bind_values) const;

 private:
  struct IndexKeyHash {
    size_t operator()(const std::vector<Value>& k) const;
  };
  struct IndexKeyEq {
    bool operator()(const std::vector<Value>& a,
                    const std::vector<Value>& b) const;
  };
  using Index = std::unordered_map<std::vector<Value>, std::vector<RowRef>,
                                   IndexKeyHash, IndexKeyEq>;

  Schema schema_;
  std::vector<RowRef> rows_;
  // Keyed by the bind-column set; mutable because index construction is a
  // caching detail of the logically-const Lookup.
  mutable std::map<std::vector<int>, Index> indexes_;
};

/// Name-keyed collection of stored tables.
class TableStore {
 public:
  Status AddTable(const std::string& name, Schema schema,
                  std::vector<RowRef> rows);

  Result<const StoredTable*> GetTable(const std::string& name) const;
  Result<StoredTable*> GetMutableTable(const std::string& name);

 private:
  std::map<std::string, StoredTable> tables_;
};

}  // namespace stems
