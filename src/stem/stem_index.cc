#include "stem/stem_index.h"

namespace stems {

void HashStemIndex::Insert(const Value& key, uint32_t entry_id) {
  map_[key].push_back(entry_id);
  ++count_;
}

void HashStemIndex::LookupEq(const Value& key,
                             std::vector<uint32_t>* out) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

void OrderedStemIndex::Insert(const Value& key, uint32_t entry_id) {
  map_[key].push_back(entry_id);
  ++count_;
}

void OrderedStemIndex::LookupEq(const Value& key,
                                std::vector<uint32_t>* out) const {
  auto it = map_.find(key);
  if (it == map_.end()) return;
  out->insert(out->end(), it->second.begin(), it->second.end());
}

bool OrderedStemIndex::LookupRange(const Value* lo, bool lo_inclusive,
                                   const Value* hi, bool hi_inclusive,
                                   std::vector<uint32_t>* out) const {
  auto begin = map_.begin();
  if (lo != nullptr) {
    begin = lo_inclusive ? map_.lower_bound(*lo) : map_.upper_bound(*lo);
  }
  for (auto it = begin; it != map_.end(); ++it) {
    if (hi != nullptr) {
      if (hi_inclusive ? (*hi < it->first) : !(it->first < *hi)) break;
    }
    out->insert(out->end(), it->second.begin(), it->second.end());
  }
  return true;
}

void AdaptiveStemIndex::Insert(const Value& key, uint32_t entry_id) {
  if (hash_ != nullptr) {
    hash_->Insert(key, entry_id);
    return;
  }
  list_.emplace_back(key, entry_id);
  if (list_.size() > upgrade_threshold_) {
    // Upgrade: rebuild as a hash index (done by the SteM itself, independent
    // of all other modules — paper §3.1).
    hash_ = std::make_unique<HashStemIndex>();
    for (const auto& [k, id] : list_) hash_->Insert(k, id);
    list_.clear();
    list_.shrink_to_fit();
  }
}

void AdaptiveStemIndex::LookupEq(const Value& key,
                                 std::vector<uint32_t>* out) const {
  if (hash_ != nullptr) {
    hash_->LookupEq(key, out);
    return;
  }
  for (const auto& [k, id] : list_) {
    if (k == key) out->push_back(id);
  }
}

size_t AdaptiveStemIndex::size() const {
  return hash_ != nullptr ? hash_->size() : list_.size();
}

std::unique_ptr<StemIndex> MakeStemIndex(StemIndexImpl impl,
                                         size_t adaptive_threshold) {
  switch (impl) {
    case StemIndexImpl::kHash:
      return std::make_unique<HashStemIndex>();
    case StemIndexImpl::kOrdered:
      return std::make_unique<OrderedStemIndex>();
    case StemIndexImpl::kAdaptive:
      return std::make_unique<AdaptiveStemIndex>(adaptive_threshold);
  }
  return nullptr;
}

}  // namespace stems
