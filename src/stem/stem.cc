#include "stem/stem.h"

#include <algorithm>
#include <cassert>

namespace stems {

Stem::Stem(QueryContext* ctx, std::string table_name, StemOptions options)
    : Module(ctx->sim, "SteM(" + table_name + ")"),
      ctx_(ctx),
      table_name_(std::move(table_name)),
      options_(options) {
  table_slots_ = ctx_->SlotsOfTable(table_name_);
  assert(!table_slots_.empty() && "SteM table does not appear in the query");
  const TableDef* def = ctx_->query->slots()[table_slots_.front()].def;
  table_has_scan_am_ = def->HasScanAm();
  table_has_index_am_ = def->HasIndexAm();

  // One secondary index per column of this table involved in a join
  // predicate on any of its slots (paper §2.1.4). Range-joined columns are
  // indexed too: with an ordered implementation they serve range probes,
  // otherwise LookupRange declines and probes fall back to full scans.
  auto add_index = [this](int col) {
    for (const auto& [c, idx] : indexes_) {
      if (c == col) return;
    }
    indexes_.emplace_back(
        col, MakeStemIndex(options_.index_impl, options_.adaptive_threshold));
  };
  for (const auto& p : ctx_->query->predicates()) {
    if (!p.is_join()) continue;
    for (int slot : table_slots_) {
      auto col = p.EquiJoinColumnFor(slot);
      if (col.has_value()) {
        add_index(*col);
        continue;
      }
      if (p.lhs().table_slot == slot) add_index(p.lhs().column);
      if (p.rhs().table_slot == slot) add_index(p.rhs().column);
    }
  }
  if (options_.num_partitions > 1) {
    deferred_bounces_.resize(options_.num_partitions);
  }
  dups_series_ = ctx_->metrics.SeriesHandle(name() + ".dups");
  bounces_series_ = ctx_->metrics.SeriesHandle(name() + ".bounces");
  evictions_series_ = ctx_->metrics.SeriesHandle(name() + ".evictions");
}

CounterSeries* Stem::SpanSeries(uint64_t mask) {
  for (const auto& [m, series] : span_series_) {
    if (m == mask) return series;
  }
  CounterSeries* series =
      ctx_->metrics.SeriesHandle("span." + std::to_string(mask));
  span_series_.emplace_back(mask, series);
  return series;
}

bool Stem::ServesSlot(int slot) const {
  return std::find(table_slots_.begin(), table_slots_.end(), slot) !=
         table_slots_.end();
}

std::string Stem::IndexImplFor(int column) const {
  for (const auto& [c, idx] : indexes_) {
    if (c == column) return idx->impl_name();
  }
  return "";
}

size_t Stem::PartitionOf(const Tuple& tuple) const {
  if (options_.num_partitions <= 1 || indexes_.empty()) return 0;
  const int part_col = indexes_.front().first;
  const int slot = tuple.SingletonSlot();
  if (slot >= 0 && ServesSlot(slot)) {
    const Value* v = tuple.ValueAt(slot, part_col);  // build side
    return v == nullptr ? 0 : v->Hash() % options_.num_partitions;
  }
  // Probe side: the value bound to the partitioning column, if any.
  int target = tuple.route_target_slot();
  if (target < 0 || !ServesSlot(target)) target = table_slots_.front();
  ProbeBindingsInto(tuple, target, &partition_binds_scratch_);
  for (const auto& [col, val] : partition_binds_scratch_) {
    if (col == part_col) return val.Hash() % options_.num_partitions;
  }
  return 0;
}

SimTime Stem::ServiceTime(const Tuple& tuple) const {
  const int slot = tuple.SingletonSlot();
  const bool is_build =
      tuple.route_intent() == RouteIntent::kBuild ||
      (tuple.route_intent() == RouteIntent::kAuto && slot >= 0 &&
       ServesSlot(slot) && tuple.component(slot).timestamp == kTsInfinity);
  if (is_build) return options_.build_service_time;
  SimTime t = options_.probe_service_time;
  if (options_.partition_switch_penalty > 0) {
    const size_t part = PartitionOf(tuple);
    if (part != last_probed_partition_) t += options_.partition_switch_penalty;
  }
  return t;
}

void Stem::Process(TuplePtr tuple) {
  const int slot = tuple->SingletonSlot();
  switch (tuple->route_intent()) {
    case RouteIntent::kBuild:
      ProcessBuild(std::move(tuple));
      return;
    case RouteIntent::kProbe:
      ProcessProbe(std::move(tuple));
      return;
    case RouteIntent::kAuto:
      if (slot >= 0 && ServesSlot(slot) &&
          tuple->component(slot).timestamp == kTsInfinity) {
        ProcessBuild(std::move(tuple));
      } else {
        ProcessProbe(std::move(tuple));
      }
      return;
  }
}

void Stem::ProcessBuild(TuplePtr tuple) {
  const int slot = tuple->SingletonSlot();
  assert(slot >= 0 && ServesSlot(slot) &&
         "build tuple is not a singleton of this SteM's table");
  RowRef row = tuple->component(slot).row;

  if (row->IsEot()) {
    // EOTs are built into the SteM alongside data tuples (paper §2.1.3) and
    // are not bounced back.
    eots_.Add(std::move(row));
    // Any coverage change can complete deferred work and wake parked
    // probers.
    FlushDeferredBounces();
    NotifyChange();
    return;
  }

  // Set-semantics duplicate elimination (paper §3.2): competing AMs build
  // into the same SteM; the copy that arrives second is absorbed, and is
  // *not* bounced back (SteM BounceBack constraint) so it never probes.
  if (dedup_.count(row) > 0) {
    ++duplicates_absorbed_;
    dups_series_->Increment(sim()->now());
    return;
  }

  const BuildTs ts = ctx_->ts.Issue();
  ++builds_;
  InsertRow(row, ts);
  tuple->SetBuilt(slot, ts);
  EvictIfNeeded();
  NotifyChange();

  if (options_.num_partitions > 1 && options_.bounce_batch > 1) {
    // Grace-mode: defer the bounce-back, clustered by hash partition
    // (paper §3.1's "asynchronous hash index"). The tuple will re-enter the
    // dataflow when its partition's batch fills or on an EOT/flush.
    const size_t part = PartitionOf(*tuple);
    deferred_bounces_[part].push_back(std::move(tuple));
    if (deferred_bounces_[part].size() >= options_.bounce_batch) {
      auto batch = std::move(deferred_bounces_[part]);
      deferred_bounces_[part].clear();
      for (auto& t : batch) Emit(std::move(t));
    }
    return;
  }
  Emit(std::move(tuple));
}

void Stem::InsertRow(RowRef row, BuildTs ts) {
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  for (auto& [col, index] : indexes_) {
    index->Insert(row->value(col), id);
  }
  dedup_.insert(row);
  entries_.push_back(Entry{std::move(row), ts});
  ++live_entries_;
  if (ts > max_entry_ts_) max_entry_ts_ = ts;
}

void Stem::EvictIfNeeded() {
  if (options_.max_entries == 0) return;
  if (live_entries_ > options_.max_entries) {
    EvictOldest(live_entries_ - options_.max_entries);
  }
}

size_t Stem::EvictOldest(size_t n) {
  size_t evicted = 0;
  while (evicted < n && next_eviction_ < entries_.size()) {
    Entry& victim = entries_[next_eviction_++];
    if (victim.row == nullptr) continue;  // already a tombstone
    dedup_.erase(victim.row);
    victim.row = nullptr;  // tombstone; index ids skip it at lookup
    --live_entries_;
    ++evictions_;
    ++evicted;
    evictions_series_->Increment(sim()->now());
  }
  return evicted;
}

void Stem::NotifyChange() {
  if (defer_change_notify_) {
    pending_change_notify_ = true;
    return;
  }
  if (change_listener_) change_listener_();
}

void Stem::ProcessBatch(std::vector<TuplePtr>* tuples) {
  defer_change_notify_ = true;
  Module::ProcessBatch(tuples);
  defer_change_notify_ = false;
  if (pending_change_notify_) {
    pending_change_notify_ = false;
    NotifyChange();
  }
}

void Stem::FlushDeferredBounces() {
  for (auto& partition : deferred_bounces_) {
    auto batch = std::move(partition);
    partition.clear();
    for (auto& t : batch) Emit(std::move(t));
  }
}

std::vector<std::pair<int, Value>> Stem::ProbeBindings(
    const Tuple& tuple, int target_slot) const {
  std::vector<std::pair<int, Value>> binds;
  ProbeBindingsInto(tuple, target_slot, &binds);
  return binds;
}

void Stem::ProbeBindingsInto(const Tuple& tuple, int target_slot,
                             std::vector<std::pair<int, Value>>* out) const {
  out->clear();
  for (const auto& p : ctx_->query->predicates()) {
    auto col = p.EquiJoinColumnFor(target_slot);
    if (!col.has_value()) continue;
    auto peer = p.EquiJoinPeerOf(target_slot);
    if (!peer.has_value() || peer->table_slot == target_slot) continue;
    const Value* v = tuple.ValueAt(peer->table_slot, peer->column);
    if (v != nullptr) out->emplace_back(*col, *v);
  }
}

void Stem::Candidates(const Tuple& tuple, int target_slot,
                      const std::vector<std::pair<int, Value>>& binds,
                      std::vector<uint32_t>* out_ids, bool* full_scan) const {
  std::vector<uint32_t>& out = *out_ids;
  out.clear();
  *full_scan = true;
  for (const auto& [col, val] : binds) {
    for (const auto& [idx_col, index] : indexes_) {
      if (idx_col == col) {
        index->LookupEq(val, &out);
        *full_scan = false;
        return;
      }
    }
  }

  // No equality binding: try a range predicate against an ordered index
  // (paper §2.1.4: "we allow a SteM to perform searches on arbitrary
  // predicates"). Works when the SteM uses StemIndexImpl::kOrdered.
  for (const auto& p : ctx_->query->predicates()) {
    if (!p.is_join() || p.op() == CompareOp::kEq || p.op() == CompareOp::kNe) {
      continue;
    }
    // Orient the comparison as <stem column> OP <probe value>.
    int stem_col;
    CompareOp op = p.op();
    const ColumnRef* peer;
    if (p.lhs().table_slot == target_slot) {
      stem_col = p.lhs().column;
      peer = &p.rhs();
    } else if (p.rhs().table_slot == target_slot) {
      stem_col = p.rhs().column;
      peer = &p.lhs();
      // Flip the operator: probe OP stem  ==>  stem OP' probe.
      switch (op) {
        case CompareOp::kLt: op = CompareOp::kGt; break;
        case CompareOp::kLe: op = CompareOp::kGe; break;
        case CompareOp::kGt: op = CompareOp::kLt; break;
        case CompareOp::kGe: op = CompareOp::kLe; break;
        default: break;
      }
    } else {
      continue;
    }
    const Value* v = tuple.ValueAt(peer->table_slot, peer->column);
    if (v == nullptr) continue;
    for (const auto& [idx_col, index] : indexes_) {
      if (idx_col != stem_col) continue;
      const bool lower = op == CompareOp::kGt || op == CompareOp::kGe;
      const bool inclusive = op == CompareOp::kLe || op == CompareOp::kGe;
      const bool served = index->LookupRange(lower ? v : nullptr, inclusive,
                                             lower ? nullptr : v, inclusive,
                                             &out);
      if (served) {
        *full_scan = false;
        return;
      }
      out.clear();  // index cannot serve ranges; fall through to full scan
    }
  }

  // No usable index: all live entries are candidates; remaining predicates
  // are verified per candidate.
  out.reserve(entries_.size());
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].row != nullptr) out.push_back(id);
  }
}

void Stem::ProcessProbe(TuplePtr tuple) {
  assert(!tuple->is_seed() && "seed tuple routed to a SteM");
  int target_slot = tuple->route_target_slot();
  if (target_slot < 0 || !ServesSlot(target_slot) ||
      tuple->Spans(target_slot)) {
    target_slot = -1;
    for (int s : table_slots_) {
      if (!tuple->Spans(s)) {
        target_slot = s;
        break;
      }
    }
    assert(target_slot >= 0 && "probe tuple already spans all SteM slots");
  }

  if (options_.partition_switch_penalty > 0) {
    last_probed_partition_ = PartitionOf(*tuple);
  }

  ProbeBindingsInto(*tuple, target_slot, &binds_scratch_);
  const auto& binds = binds_scratch_;
  bool full_scan = false;
  Candidates(*tuple, target_slot, binds, &candidates_scratch_, &full_scan);
  const auto& candidates = candidates_scratch_;

  // All not-yet-passed predicates evaluable on the concatenation (paper
  // Table 1: matches satisfy "all query predicates that can be evaluated on
  // the columns in t and s"). This deliberately includes predicates already
  // evaluable on the probe alone (e.g. an unvisited selection), so results
  // always carry complete predicate state.
  const uint64_t new_span = tuple->spanned_mask() | (1ULL << target_slot);
  preds_scratch_.clear();
  const auto& preds = preds_scratch_;
  for (const auto& p : ctx_->query->predicates()) {
    if (!tuple->PassedPredicate(p.id()) && p.CanEvaluate(new_span)) {
      preds_scratch_.push_back(&p);
    }
  }

  const BuildTs probe_ts = tuple->Timestamp();
  const BuildTs last_match_ts = tuple->last_match_ts();
  ++probes_processed_;
  uint32_t matches_this_probe = 0;

  for (uint32_t id : candidates) {
    const Entry& entry = entries_[id];
    if (entry.row == nullptr) continue;  // evicted
    // TimeStamp constraint (§3.1): the later-arriving side generates the
    // result. §3.5 re-probes skip matches already seen (LastMatchTimeStamp).
    if (tuple->exclude_equal_ts() ? entry.ts >= probe_ts
                                  : entry.ts > probe_ts) {
      continue;
    }
    if (entry.ts <= last_match_ts) continue;
    OverlayValueSource overlay(*tuple, target_slot, &entry.row->values());
    bool pass = true;
    for (const Predicate* p : preds) {
      if (!p->Evaluate(overlay)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    TuplePtr concat = tuple->ConcatWith(target_slot, entry.row, entry.ts);
    for (const Predicate* p : preds) concat->MarkPredicatePassed(p->id());
    ++matches_emitted_;
    ++matches_this_probe;
    // Partial-result accounting (online metric, §1.2/§3.4): intermediate
    // spans are the partial results FFF surfaces to users.
    SpanSeries(concat->spanned_mask())->Increment(sim()->now());
    Emit(std::move(concat));
  }

  tuple->MarkProbedStem(target_slot);
  tuple->set_last_probe_matches(matches_this_probe);

  // SteM BounceBack constraint (paper Table 2) for probe tuples.
  const bool covered = eots_.Covers(binds);
  bool bounce;
  if (covered) {
    bounce = false;  // all matches provably delivered
  } else if (table_has_index_am_ &&
             (options_.bounce_mode == ProbeBounceMode::kAlways ||
              (options_.bounce_mode == ProbeBounceMode::kPrioritized &&
               tuple->prioritized()))) {
    // Optional bounce (§4.1 / §4.3): give the policy a chance to expedite
    // this probe's matches through an index AM. Because the table has AMs
    // feeding the shared SteM, the policy may also safely retire the tuple
    // instead (when a scan AM exists).
    bounce = true;
  } else if (table_has_scan_am_ && tuple->AllComponentsBuilt()) {
    // Missing matches will find this tuple's components in their SteMs when
    // they arrive from the scan.
    bounce = false;
  } else {
    bounce = true;
  }

  if (bounce) {
    tuple->set_last_match_ts(max_entry_ts_);
    tuple->MarkPriorProber(target_slot);
    ++probes_bounced_;
    bounces_series_->Increment(sim()->now());
    Emit(std::move(tuple));
  }
  // Otherwise the probe tuple leaves the dataflow here: every result it
  // could still contribute to will be generated by later-arriving builds
  // probing the SteMs holding this tuple's components (TimeStamp rule).
}

}  // namespace stems
