#include "stem/stem.h"

#include <algorithm>
#include <cassert>

#include "obs/metrics_registry.h"
#include "spill/spill_file.h"
#include "spill/spill_options.h"

namespace stems {

std::vector<int> StemIndexColumns(const QuerySpec& query,
                                  const std::vector<int>& slots) {
  std::vector<int> cols;
  auto add = [&cols](int col) {
    if (std::find(cols.begin(), cols.end(), col) == cols.end()) {
      cols.push_back(col);
    }
  };
  // One secondary index per column of the table involved in a join
  // predicate on any of its slots (paper §2.1.4). Range-joined columns are
  // indexed too: with an ordered implementation they serve range probes,
  // otherwise LookupRange declines and probes fall back to full scans.
  for (const auto& p : query.predicates()) {
    if (!p.is_join()) continue;
    for (int slot : slots) {
      auto col = p.EquiJoinColumnFor(slot);
      if (col.has_value()) {
        add(*col);
        continue;
      }
      if (p.lhs().table_slot == slot) add(p.lhs().column);
      if (p.rhs().table_slot == slot) add(p.rhs().column);
    }
  }
  std::sort(cols.begin(), cols.end());
  return cols;
}

Stem::~Stem() {
  // Deferred probes die with their query; release their partition pins so
  // surviving queries' governors may victimize those partitions again.
  for (const auto& [p, tuple] : deferred_probes_) {
    storage_->RemoveSpillWaiter(p);
  }
  storage_->Detach(this);
}

Stem::Stem(QueryContext* ctx, std::string table_name, StemOptions options,
           std::shared_ptr<StemStorage> storage)
    : Module(ctx->sim, "SteM(" + table_name + ")"),
      ctx_(ctx),
      table_name_(std::move(table_name)),
      options_(options),
      storage_(std::move(storage)) {
  table_slots_ = ctx_->SlotsOfTable(table_name_);
  assert(!table_slots_.empty() && "SteM table does not appear in the query");
  const TableDef* def = ctx_->query->slots()[table_slots_.front()].def;
  table_has_scan_am_ = def->HasScanAm();
  table_has_index_am_ = def->HasIndexAm();

  if (storage_ == nullptr) {
    storage_ = std::make_shared<StemStorage>(table_name_, ctx_->sim,
                                             /*pooled=*/false);
  }
  // First attacher materializes the index set; later attachers of a pooled
  // storage need the same columns by construction (the StemManager keys
  // its pool on StemIndexColumns).
  const std::vector<int> cols = StemIndexColumns(*ctx_->query, table_slots_);
  auto& indexes = storage_->indexes();
  if (indexes.empty()) {
    for (int col : cols) {
      indexes.emplace_back(
          col, MakeStemIndex(options_.index_impl, options_.adaptive_threshold));
    }
  } else {
    assert(indexes.size() == cols.size() &&
           "pooled SteM storage acquired with a different index column set");
  }
  attach_watermark_ = storage_->build_seq();
  storage_->Attach(this);

  if (options_.num_partitions > 1) {
    deferred_bounces_.resize(options_.num_partitions);
  }
  dups_series_ = ctx_->metrics.SeriesHandle(name() + ".dups");
  bounces_series_ = ctx_->metrics.SeriesHandle(name() + ".bounces");
  evictions_series_ = ctx_->metrics.SeriesHandle(name() + ".evictions");
  spill_out_series_ = ctx_->metrics.SeriesHandle(name() + ".spill.out");
  spill_in_series_ = ctx_->metrics.SeriesHandle(name() + ".spill.in");
  if (ctx_->registry != nullptr) {
    reg_builds_ = ctx_->registry->GetCounter("stem.builds");
    reg_probes_ = ctx_->registry->GetCounter("stem.probes");
    reg_matches_ = ctx_->registry->GetCounter("stem.matches");
  }
}

CounterSeries* Stem::SpanSeries(uint64_t mask) {
  for (const auto& [m, series] : span_series_) {
    if (m == mask) return series;
  }
  CounterSeries* series =
      ctx_->metrics.SeriesHandle("span." + std::to_string(mask));
  span_series_.emplace_back(mask, series);
  return series;
}

bool Stem::ServesSlot(int slot) const {
  return std::find(table_slots_.begin(), table_slots_.end(), slot) !=
         table_slots_.end();
}

std::string Stem::IndexImplFor(int column) const {
  for (const auto& [c, idx] : storage_->indexes()) {
    if (c == column) return idx->impl_name();
  }
  return "";
}

void Stem::EnableSpill(BufferPool* pool, const SpillOptions& options) {
  if (storage_->spill_enabled()) return;
  const auto& indexes = storage_->indexes();
  storage_->EnableSpill(pool, options,
                        indexes.empty() ? -1 : indexes.front().first);
}

void Stem::AccrueIoCharge(const StemStorage::SpillResult& io) {
  attr_spill_ios_ += io.ios;
  attr_bytes_spilled_ += io.bytes;
  const SimTime cost = io.cost;
  if (cost <= 0) return;
  const uint64_t id = next_io_accrual_id_++;
  pending_io_charge_ += cost;
  io_accruals_.emplace_back(id, cost);
  ++pending_io_markers_;
  // The disk traffic occupies virtual time even if this SteM never
  // services another tuple: while the marker is pending the SteM is not
  // Quiescent(), so the engine cannot stamp completion ahead of the I/O.
  // On firing, the marker retires exactly its own accrual *if it is still
  // pending* — an intervening service may have billed it already (the
  // busy period subsumed the marker), and newer accruals must stay billed.
  sim()->Schedule(cost, [this, id] {
    --pending_io_markers_;
    for (auto it = io_accruals_.begin(); it != io_accruals_.end(); ++it) {
      if (it->first == id) {
        pending_io_charge_ -= it->second;
        io_accruals_.erase(it);
        break;
      }
    }
  });
}

size_t Stem::SpillColdestPartition() {
  const StemStorage::SpillResult out = storage_->SpillColdestPartition();
  AccrueIoCharge(out);
  if (out.entries > 0) {
    spill_out_series_->Increment(sim()->now(),
                                 static_cast<int64_t>(out.entries));
  }
  return out.entries;
}

void Stem::OnPartitionFaulted(size_t partition) {
  // Bounce this partition's deferred probes back to the eddy; probes
  // waiting on other partitions stay behind their own pending faults.
  size_t kept = 0;
  bool emitted = false;
  for (auto& [p, tuple] : deferred_probes_) {
    if (p == partition) {
      storage_->RemoveSpillWaiter(p);
      Emit(std::move(tuple));
      emitted = true;
    } else {
      deferred_probes_[kept++] = {p, std::move(tuple)};
    }
  }
  deferred_probes_.resize(kept);
  if (emitted) NotifyChange();
}

void Stem::AttributeRestore(const StemStorage::SpillResult& in,
                            bool synchronous) {
  if (synchronous) {
    AccrueIoCharge(in);
  } else {
    // The asynchronous read's virtual time was the fault event's delay;
    // only the counters are still owed.
    attr_spill_ios_ += in.ios;
    attr_bytes_spilled_ += in.bytes;
  }
  if (in.entries > 0) {
    spill_in_series_->Increment(sim()->now(),
                                static_cast<int64_t>(in.entries));
  }
}

void Stem::AttributeAsyncRestore(const StemStorage::SpillResult& restored) {
  AttributeRestore(restored, /*synchronous=*/false);
}

bool Stem::Quiescent() const {
  if (!Module::Quiescent()) return false;
  return pending_io_markers_ == 0 && deferred_probes_.empty();
}

size_t Stem::PartitionOf(const Tuple& tuple) const {
  const auto& indexes = storage_->indexes();
  if (options_.num_partitions <= 1 || indexes.empty()) return 0;
  const int part_col = indexes.front().first;
  const int slot = tuple.SingletonSlot();
  if (slot >= 0 && ServesSlot(slot)) {
    const Value* v = tuple.ValueAt(slot, part_col);  // build side
    return v == nullptr ? 0 : v->Hash() % options_.num_partitions;
  }
  // Probe side: the value bound to the partitioning column, if any.
  int target = tuple.route_target_slot();
  if (target < 0 || !ServesSlot(target)) target = table_slots_.front();
  ProbeBindingsInto(tuple, target, &partition_binds_scratch_);
  for (const auto& [col, val] : partition_binds_scratch_) {
    if (col == part_col) return val.Hash() % options_.num_partitions;
  }
  return 0;
}

SimTime Stem::ServiceTime(const Tuple& tuple) const {
  // Drain the spill subsystem's accrued I/O charge (write-behind spills,
  // synchronous fault-ins): the disk traffic consumes this module's service
  // capacity on its next scheduled event.
  SimTime io_charge = 0;
  if (pending_io_charge_ > 0) {
    io_charge = pending_io_charge_;
    pending_io_charge_ = 0;
    io_accruals_.clear();  // billed: their markers retire nothing
  }
  const int slot = tuple.SingletonSlot();
  const bool is_build =
      tuple.route_intent() == RouteIntent::kBuild ||
      (tuple.route_intent() == RouteIntent::kAuto && slot >= 0 &&
       ServesSlot(slot) && tuple.component(slot).timestamp == kTsInfinity);
  if (is_build) return options_.build_service_time + io_charge;
  SimTime t = options_.probe_service_time + io_charge;
  if (options_.partition_switch_penalty > 0) {
    const size_t part = PartitionOf(tuple);
    if (part != last_probed_partition_) t += options_.partition_switch_penalty;
  }
  return t;
}

void Stem::Process(TuplePtr tuple) {
  const int slot = tuple->SingletonSlot();
  switch (tuple->route_intent()) {
    case RouteIntent::kBuild:
      ProcessBuild(std::move(tuple));
      return;
    case RouteIntent::kProbe:
      ProcessProbe(std::move(tuple));
      return;
    case RouteIntent::kAuto:
      if (slot >= 0 && ServesSlot(slot) &&
          tuple->component(slot).timestamp == kTsInfinity) {
        ProcessBuild(std::move(tuple));
      } else {
        ProcessProbe(std::move(tuple));
      }
      return;
  }
}

void Stem::ProcessBuild(TuplePtr tuple) {
  const int slot = tuple->SingletonSlot();
  assert(slot >= 0 && ServesSlot(slot) &&
         "build tuple is not a singleton of this SteM's table");
  RowRef row = tuple->component(slot).row;

  if (row->IsEot()) {
    // EOTs are built into the SteM alongside data tuples (paper §2.1.3) and
    // are not bounced back. Coverage is per-query: another query's scan
    // completing says nothing about what *this* query has been shown.
    eots_.Add(std::move(row));
    // Any coverage change can complete deferred work and wake parked
    // probers.
    FlushDeferredBounces();
    NotifyChange();
    return;
  }

  // Set-semantics duplicate elimination (paper §3.2): competing AMs build
  // into the same SteM; the copy that arrives second is absorbed, and is
  // *not* bounced back (SteM BounceBack constraint) so it never probes.
  // Dedup is per query: on pooled storage the overlay is the query's dedup
  // set, so a row first built by a *different* query is not a duplicate
  // here — it must still probe on this query's behalf.
  const bool pooled = storage_->pooled();
  if (pooled ? query_ts_.count(row) > 0 : storage_->Contains(row)) {
    ++duplicates_absorbed_;
    dups_series_->Increment(sim()->now());
    return;
  }

  const BuildTs ts = ctx_->ts.Issue();
  ++builds_;
  if (reg_builds_ != nullptr) reg_builds_->Add();
  if (ts > max_entry_ts_) max_entry_ts_ = ts;
  if (pooled) query_ts_.emplace(row, ts);

  if (pooled && storage_->Contains(row)) {
    // Cross-query shared hit: the row (and its index postings, and any
    // spilled copy) is already stored. Only the per-query visibility entry
    // above was needed — the physical build work is avoided entirely.
    ++builds_avoided_;
  } else {
    // Pooled entries store the insertion sequence (timestamps live in each
    // query's overlay); private entries store the query's own timestamp.
    const BuildTs stored_ts = pooled ? storage_->IssueSeq() : ts;
    const size_t build_partition =
        storage_->spill_enabled() ? storage_->SpillPartitionOfRow(*row) : 0;
    if (storage_->spill_enabled() &&
        !storage_->PartitionResident(build_partition)) {
      // Build into a spilled partition: append straight to its run file —
      // the entry never touches memory, and a later fault-in restores it
      // indistinguishably (TimeStamp-wise) from a resident build. The
      // dedup identity stays in memory so duplicates are still absorbed.
      AccrueIoCharge(
          storage_->AppendToSpilledPartition(build_partition, row, stored_ts));
      spill_out_series_->Increment(sim()->now());
    } else {
      storage_->Insert(row, stored_ts);
    }
  }
  tuple->SetBuilt(slot, ts);
  EvictIfNeeded();
  NotifyChange();

  if (options_.num_partitions > 1 && options_.bounce_batch > 1) {
    // Grace-mode: defer the bounce-back, clustered by hash partition
    // (paper §3.1's "asynchronous hash index"). The tuple will re-enter the
    // dataflow when its partition's batch fills or on an EOT/flush.
    const size_t part = PartitionOf(*tuple);
    deferred_bounces_[part].push_back(std::move(tuple));
    if (deferred_bounces_[part].size() >= options_.bounce_batch) {
      auto batch = std::move(deferred_bounces_[part]);
      deferred_bounces_[part].clear();
      for (auto& t : batch) Emit(std::move(t));
    }
    return;
  }
  Emit(std::move(tuple));
}

void Stem::EvictIfNeeded() {
  if (options_.max_entries == 0) return;
  if (storage_->live_entries() > options_.max_entries) {
    EvictOldest(storage_->live_entries() - options_.max_entries);
  }
}

size_t Stem::EvictOldest(size_t n) {
  const size_t evicted = storage_->EvictOldest(n);
  if (evicted > 0) {
    evictions_ += evicted;
    evictions_series_->Increment(sim()->now(),
                                 static_cast<int64_t>(evicted));
  }
  return evicted;
}

void Stem::NotifyChange() {
  if (defer_change_notify_) {
    pending_change_notify_ = true;
    return;
  }
  if (change_listener_) change_listener_();
}

void Stem::ProcessBatch(std::vector<TuplePtr>* tuples) {
  defer_change_notify_ = true;
  Module::ProcessBatch(tuples);
  defer_change_notify_ = false;
  if (pending_change_notify_) {
    pending_change_notify_ = false;
    NotifyChange();
  }
}

void Stem::FlushDeferredBounces() {
  for (auto& partition : deferred_bounces_) {
    auto batch = std::move(partition);
    partition.clear();
    for (auto& t : batch) Emit(std::move(t));
  }
}

std::vector<std::pair<int, Value>> Stem::ProbeBindings(
    const Tuple& tuple, int target_slot) const {
  std::vector<std::pair<int, Value>> binds;
  ProbeBindingsInto(tuple, target_slot, &binds);
  return binds;
}

void Stem::ProbeBindingsInto(const Tuple& tuple, int target_slot,
                             std::vector<std::pair<int, Value>>* out) const {
  out->clear();
  for (const auto& p : ctx_->query->predicates()) {
    auto col = p.EquiJoinColumnFor(target_slot);
    if (!col.has_value()) continue;
    auto peer = p.EquiJoinPeerOf(target_slot);
    if (!peer.has_value() || peer->table_slot == target_slot) continue;
    const Value* v = tuple.ValueAt(peer->table_slot, peer->column);
    if (v != nullptr) out->emplace_back(*col, *v);
  }
}

void Stem::Candidates(const Tuple& tuple, int target_slot,
                      const std::vector<std::pair<int, Value>>& binds,
                      std::vector<uint32_t>* out_ids, bool* full_scan) const {
  std::vector<uint32_t>& out = *out_ids;
  out.clear();
  *full_scan = true;
  const auto& indexes = storage_->indexes();
  for (const auto& [col, val] : binds) {
    for (const auto& [idx_col, index] : indexes) {
      if (idx_col == col) {
        index->LookupEq(val, &out);
        *full_scan = false;
        return;
      }
    }
  }

  // No equality binding: try a range predicate against an ordered index
  // (paper §2.1.4: "we allow a SteM to perform searches on arbitrary
  // predicates"). Works when the SteM uses StemIndexImpl::kOrdered.
  for (const auto& p : ctx_->query->predicates()) {
    if (!p.is_join() || p.op() == CompareOp::kEq || p.op() == CompareOp::kNe) {
      continue;
    }
    // Orient the comparison as <stem column> OP <probe value>.
    int stem_col;
    CompareOp op = p.op();
    const ColumnRef* peer;
    if (p.lhs().table_slot == target_slot) {
      stem_col = p.lhs().column;
      peer = &p.rhs();
    } else if (p.rhs().table_slot == target_slot) {
      stem_col = p.rhs().column;
      peer = &p.lhs();
      // Flip the operator: probe OP stem  ==>  stem OP' probe.
      switch (op) {
        case CompareOp::kLt: op = CompareOp::kGt; break;
        case CompareOp::kLe: op = CompareOp::kGe; break;
        case CompareOp::kGt: op = CompareOp::kLt; break;
        case CompareOp::kGe: op = CompareOp::kLe; break;
        default: break;
      }
    } else {
      continue;
    }
    const Value* v = tuple.ValueAt(peer->table_slot, peer->column);
    if (v == nullptr) continue;
    for (const auto& [idx_col, index] : indexes) {
      if (idx_col != stem_col) continue;
      const bool lower = op == CompareOp::kGt || op == CompareOp::kGe;
      const bool inclusive = op == CompareOp::kLe || op == CompareOp::kGe;
      const bool served = index->LookupRange(lower ? v : nullptr, inclusive,
                                             lower ? nullptr : v, inclusive,
                                             &out);
      if (served) {
        *full_scan = false;
        return;
      }
      out.clear();  // index cannot serve ranges; fall through to full scan
    }
  }

  // No usable index: all live entries are candidates; remaining predicates
  // are verified per candidate.
  const auto& entries = storage_->entries();
  out.reserve(entries.size());
  for (uint32_t id = 0; id < entries.size(); ++id) {
    if (entries[id].row != nullptr) out.push_back(id);
  }
}

void Stem::ProcessProbe(TuplePtr tuple) {
  assert(!tuple->is_seed() && "seed tuple routed to a SteM");
  int target_slot = tuple->route_target_slot();
  if (target_slot < 0 || !ServesSlot(target_slot) ||
      tuple->Spans(target_slot)) {
    target_slot = -1;
    for (int s : table_slots_) {
      if (!tuple->Spans(s)) {
        target_slot = s;
        break;
      }
    }
    assert(target_slot >= 0 && "probe tuple already spans all SteM slots");
  }

  ProbeBindingsInto(*tuple, target_slot, &binds_scratch_);
  const auto& binds = binds_scratch_;

  if (storage_->spill_enabled()) {
    // Partition the probe is equality-bound to, read off the bindings just
    // extracted for the candidate lookup (no second extraction pass).
    const int part_col = storage_->spill_part_col();
    const size_t nparts = storage_->num_spill_partitions();
    size_t bound_p = 0;
    bool bound = false;
    if (part_col >= 0 && nparts > 1) {
      for (const auto& [col, val] : binds) {
        if (col == part_col) {
          bound_p = val.Hash() % nparts;
          bound = true;
          break;
        }
      }
    }
    // Heat is counted for deferred probes too: a partition with waiters is
    // hot, so the governor keeps it resident once faulted in.
    if (bound) storage_->CountProbe(bound_p);
    if (storage_->partitions_spilled() > 0) {
      const SpillProbePolicy policy = storage_->spill_probe_policy();
      if (bound && !storage_->PartitionResident(bound_p)) {
        if (policy == SpillProbePolicy::kBounce &&
            tuple->spill_deferrals() < storage_->max_probe_deferrals()) {
          // Constraint-consistent deferral: the probe is processed against
          // *nothing* (no matches emitted, no probe bookkeeping touched),
          // so re-probing it once the partition is resident is exact. The
          // asynchronous fault-in re-emits it to the eddy, where the
          // routing policy is free to send it elsewhere first.
          ++probes_deferred_;
          tuple->IncrementSpillDeferrals();
          spill_parts_scratch_.assign(1, bound_p);
          storage_->AddSpillWaiter(bound_p);
          storage_->ScheduleFaultIn(spill_parts_scratch_, this);
          deferred_probes_.emplace_back(bound_p, std::move(tuple));
          return;
        }
        // kFaultIn: pay the simulated read I/O and restore the partition
        // before the probe is processed.
        AttributeRestore(storage_->FaultInPartition(bound_p),
                         /*synchronous=*/true);
        faulted_during_probe_ = true;
      } else if (!bound) {
        // No equality binding on the partitioning column: any spilled
        // partition could hold matches. Fault them all in synchronously —
        // also under kBounce, where deferring behind several independent
        // reads would let re-spills starve the probe.
        for (size_t p = 0; p < nparts; ++p) {
          if (!storage_->PartitionResident(p)) {
            AttributeRestore(storage_->FaultInPartition(p),
                             /*synchronous=*/true);
          }
        }
        faulted_during_probe_ = true;
      }
    }
  }

  if (options_.partition_switch_penalty > 0) {
    last_probed_partition_ = PartitionOf(*tuple);
  }

  bool full_scan = false;
  Candidates(*tuple, target_slot, binds, &candidates_scratch_, &full_scan);
  const auto& candidates = candidates_scratch_;

  // All not-yet-passed predicates evaluable on the concatenation (paper
  // Table 1: matches satisfy "all query predicates that can be evaluated on
  // the columns in t and s"). This deliberately includes predicates already
  // evaluable on the probe alone (e.g. an unvisited selection), so results
  // always carry complete predicate state.
  const uint64_t new_span = tuple->spanned_mask() | (1ULL << target_slot);
  preds_scratch_.clear();
  const auto& preds = preds_scratch_;
  for (const auto& p : ctx_->query->predicates()) {
    if (!tuple->PassedPredicate(p.id()) && p.CanEvaluate(new_span)) {
      preds_scratch_.push_back(&p);
    }
  }

  const BuildTs probe_ts = tuple->Timestamp();
  const BuildTs last_match_ts = tuple->last_match_ts();
  const bool pooled = storage_->pooled();
  ++probes_processed_;
  if (reg_probes_ != nullptr) reg_probes_->Add();
  uint32_t matches_this_probe = 0;

  const auto& entries = storage_->entries();
  for (uint32_t id : candidates) {
    const StemStorage::Entry& entry = entries[id];
    if (entry.row == nullptr) continue;  // evicted / spilled
    // Visibility epoch (docs/sharing.md): on pooled storage an entry's
    // timestamp *for this query* lives in the overlay; entries only other
    // queries built are invisible — the probe must not treat concurrent
    // state as its own, or results would depend on co-running queries.
    BuildTs entry_ts;
    if (pooled) {
      auto it = query_ts_.find(entry.row);
      if (it == query_ts_.end()) continue;
      entry_ts = it->second;
    } else {
      entry_ts = entry.ts;
    }
    // TimeStamp constraint (§3.1): the later-arriving side generates the
    // result. §3.5 re-probes skip matches already seen (LastMatchTimeStamp).
    if (tuple->exclude_equal_ts() ? entry_ts >= probe_ts
                                  : entry_ts > probe_ts) {
      continue;
    }
    if (entry_ts <= last_match_ts) continue;
    OverlayValueSource overlay(*tuple, target_slot, &entry.row->values());
    bool pass = true;
    for (const Predicate* p : preds) {
      if (!p->Evaluate(overlay)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    TuplePtr concat = tuple->ConcatWith(target_slot, entry.row, entry_ts);
    for (const Predicate* p : preds) concat->MarkPredicatePassed(p->id());
    ++matches_emitted_;
    if (reg_matches_ != nullptr) reg_matches_->Add();
    ++matches_this_probe;
    // Partial-result accounting (online metric, §1.2/§3.4): intermediate
    // spans are the partial results FFF surfaces to users.
    SpanSeries(concat->spanned_mask())->Increment(sim()->now());
    Emit(std::move(concat));
  }

  tuple->MarkProbedStem(target_slot);
  tuple->set_last_probe_matches(matches_this_probe);

  // SteM BounceBack constraint (paper Table 2) for probe tuples.
  const bool covered = eots_.Covers(binds);
  bool bounce;
  if (covered) {
    bounce = false;  // all matches provably delivered
  } else if (table_has_index_am_ &&
             (options_.bounce_mode == ProbeBounceMode::kAlways ||
              (options_.bounce_mode == ProbeBounceMode::kPrioritized &&
               tuple->prioritized()))) {
    // Optional bounce (§4.1 / §4.3): give the policy a chance to expedite
    // this probe's matches through an index AM. Because the table has AMs
    // feeding the shared SteM, the policy may also safely retire the tuple
    // instead (when a scan AM exists).
    bounce = true;
  } else if (table_has_scan_am_ && tuple->AllComponentsBuilt()) {
    // Missing matches will find this tuple's components in their SteMs when
    // they arrive from the scan.
    bounce = false;
  } else {
    bounce = true;
  }

  if (bounce) {
    tuple->set_last_match_ts(max_entry_ts_);
    tuple->MarkPriorProber(target_slot);
    ++probes_bounced_;
    bounces_series_->Increment(sim()->now());
    Emit(std::move(tuple));
  }
  // Otherwise the probe tuple leaves the dataflow here: every result it
  // could still contribute to will be generated by later-arriving builds
  // probing the SteMs holding this tuple's components (TimeStamp rule).

  if (faulted_during_probe_) {
    // Synchronous fault-ins grew resident state: let the memory governor
    // rebalance (it will not immediately re-spill the faulted partition)
    // and parked probers reconsider.
    faulted_during_probe_ = false;
    NotifyChange();
  }
}

}  // namespace stems
