#include "stem/stem.h"

#include <algorithm>
#include <cassert>

#include "spill/spill_file.h"
#include "spill/spill_options.h"

namespace stems {

/// Spill-aware storage state (src/spill/): the SteM's partitioned run file,
/// per-partition residency/heat, probes deferred behind asynchronous
/// fault-ins, and the virtual I/O charge drained into the next service.
struct Stem::SpillState {
  BufferPool* pool = nullptr;
  SpillOptions options;
  std::unique_ptr<SpillFile> file;
  /// Partitioning column (first indexed join column); -1 degenerates to a
  /// single partition.
  int part_col = -1;
  std::vector<uint8_t> resident;          ///< per partition
  std::vector<size_t> live_in_partition;  ///< resident live entries
  std::vector<uint64_t> probe_counts;     ///< per-partition heat
  /// entries_ ids per partition, so a spill-out touches only its own
  /// partition instead of scanning every entry (stale tombstoned ids are
  /// skipped and dropped at the next spill).
  std::vector<std::vector<uint32_t>> ids_in_partition;
  /// Run file still equals the partition's content (clean): re-spilling is
  /// free — drop the memory copy. Cleared by any in-memory mutation.
  std::vector<uint8_t> run_valid;
  std::vector<uint8_t> fault_scheduled;  ///< async fault-in pending
  /// kBounce: probes parked in the SteM behind their partition's
  /// asynchronous fault-in, tagged with the partition they need.
  std::vector<std::pair<size_t, TuplePtr>> deferred_probes;
  std::vector<SpilledEntry> restore_scratch;
  size_t spilled_partitions = 0;
  size_t pending_fault_events = 0;
  /// Most recently faulted partition: skipped by victim selection (unless
  /// it is the only candidate) so a fault-in is not immediately undone.
  size_t last_faulted = SIZE_MAX;
  uint64_t faults = 0;
  uint64_t probes_deferred = 0;
  uint64_t entries_spilled_total = 0;
  /// Spill I/O cost accrued during processing; drained into the next
  /// ServiceTime (write-behind spills / synchronous fault-ins consume this
  /// module's service capacity one event later).
  SimTime pending_io_charge = 0;
  /// Undrained accruals backing pending_io_charge, by accrual id: lets a
  /// marker retire exactly its own still-pending amount (and nothing a
  /// service already billed, and no newer accrual).
  std::vector<std::pair<uint64_t, SimTime>> io_accruals;
  uint64_t next_io_accrual_id = 0;
  /// Outstanding I/O marker events (AccrueIoCharge): the SteM is not
  /// quiescent while one is pending, so completion cannot be stamped
  /// ahead of trailing spill I/O.
  size_t pending_io_markers = 0;
  bool faulted_during_probe = false;
  CounterSeries* out_series = nullptr;
  CounterSeries* in_series = nullptr;
};

Stem::~Stem() = default;

Stem::Stem(QueryContext* ctx, std::string table_name, StemOptions options)
    : Module(ctx->sim, "SteM(" + table_name + ")"),
      ctx_(ctx),
      table_name_(std::move(table_name)),
      options_(options) {
  table_slots_ = ctx_->SlotsOfTable(table_name_);
  assert(!table_slots_.empty() && "SteM table does not appear in the query");
  const TableDef* def = ctx_->query->slots()[table_slots_.front()].def;
  table_has_scan_am_ = def->HasScanAm();
  table_has_index_am_ = def->HasIndexAm();

  // One secondary index per column of this table involved in a join
  // predicate on any of its slots (paper §2.1.4). Range-joined columns are
  // indexed too: with an ordered implementation they serve range probes,
  // otherwise LookupRange declines and probes fall back to full scans.
  auto add_index = [this](int col) {
    for (const auto& [c, idx] : indexes_) {
      if (c == col) return;
    }
    indexes_.emplace_back(
        col, MakeStemIndex(options_.index_impl, options_.adaptive_threshold));
  };
  for (const auto& p : ctx_->query->predicates()) {
    if (!p.is_join()) continue;
    for (int slot : table_slots_) {
      auto col = p.EquiJoinColumnFor(slot);
      if (col.has_value()) {
        add_index(*col);
        continue;
      }
      if (p.lhs().table_slot == slot) add_index(p.lhs().column);
      if (p.rhs().table_slot == slot) add_index(p.rhs().column);
    }
  }
  if (options_.num_partitions > 1) {
    deferred_bounces_.resize(options_.num_partitions);
  }
  dups_series_ = ctx_->metrics.SeriesHandle(name() + ".dups");
  bounces_series_ = ctx_->metrics.SeriesHandle(name() + ".bounces");
  evictions_series_ = ctx_->metrics.SeriesHandle(name() + ".evictions");
}

CounterSeries* Stem::SpanSeries(uint64_t mask) {
  for (const auto& [m, series] : span_series_) {
    if (m == mask) return series;
  }
  CounterSeries* series =
      ctx_->metrics.SeriesHandle("span." + std::to_string(mask));
  span_series_.emplace_back(mask, series);
  return series;
}

bool Stem::ServesSlot(int slot) const {
  return std::find(table_slots_.begin(), table_slots_.end(), slot) !=
         table_slots_.end();
}

std::string Stem::IndexImplFor(int column) const {
  for (const auto& [c, idx] : indexes_) {
    if (c == column) return idx->impl_name();
  }
  return "";
}

void Stem::EnableSpill(BufferPool* pool, const SpillOptions& options) {
  if (spill_ != nullptr) return;
  spill_ = std::make_unique<SpillState>();
  SpillState& s = *spill_;
  s.pool = pool;
  s.options = options;
  s.part_col = indexes_.empty() ? -1 : indexes_.front().first;
  const size_t n =
      s.part_col < 0 ? 1 : (options.partitions == 0 ? 1 : options.partitions);
  s.file = std::make_unique<SpillFile>(pool, n, options.page_entries);
  s.resident.assign(n, 1);
  s.live_in_partition.assign(n, 0);
  s.probe_counts.assign(n, 0);
  s.run_valid.assign(n, 0);
  s.fault_scheduled.assign(n, 0);
  s.ids_in_partition.assign(n, {});
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].row == nullptr) continue;
    const size_t p = SpillPartitionOfRow(*entries_[id].row);
    ++s.live_in_partition[p];
    s.ids_in_partition[p].push_back(id);
  }
  s.out_series = ctx_->metrics.SeriesHandle(name() + ".spill.out");
  s.in_series = ctx_->metrics.SeriesHandle(name() + ".spill.in");
}

size_t Stem::SpillPartitionOfRow(const Row& row) const {
  if (spill_ == nullptr || spill_->part_col < 0) return 0;
  return row.value(static_cast<size_t>(spill_->part_col)).Hash() %
         spill_->resident.size();
}

void Stem::AccrueIoCharge(SimTime cost) {
  if (cost <= 0) return;
  SpillState& s = *spill_;
  const uint64_t id = s.next_io_accrual_id++;
  s.pending_io_charge += cost;
  s.io_accruals.emplace_back(id, cost);
  ++s.pending_io_markers;
  // The disk traffic occupies virtual time even if this SteM never
  // services another tuple: while the marker is pending the SteM is not
  // Quiescent(), so the engine cannot stamp completion ahead of the I/O.
  // On firing, the marker retires exactly its own accrual *if it is still
  // pending* — an intervening service may have billed it already (the
  // busy period subsumed the marker), and newer accruals must stay billed.
  sim()->Schedule(cost, [this, id] {
    SpillState& state = *spill_;
    --state.pending_io_markers;
    for (auto it = state.io_accruals.begin(); it != state.io_accruals.end();
         ++it) {
      if (it->first == id) {
        state.pending_io_charge -= it->second;
        state.io_accruals.erase(it);
        break;
      }
    }
  });
}

SimTime Stem::FaultInPartition(size_t partition) {
  SpillState& s = *spill_;
  if (s.resident[partition]) return 0;
  s.restore_scratch.clear();
  const SimTime cost = s.file->ReadAll(partition, &s.restore_scratch);
  s.resident[partition] = 1;
  --s.spilled_partitions;
  const int64_t restored = static_cast<int64_t>(s.restore_scratch.size());
  for (SpilledEntry& e : s.restore_scratch) {
    InsertRow(std::move(e.row), e.ts);
  }
  s.restore_scratch.clear();
  // The run is retained and, right after restoring, equals the in-memory
  // partition (InsertRow cleared the flag; re-arm it last).
  s.run_valid[partition] = 1;
  s.last_faulted = partition;
  ++s.faults;
  s.in_series->Increment(sim()->now(), restored);
  return cost;
}

void Stem::ScheduleFaultIn(const std::vector<size_t>& parts) {
  SpillState& s = *spill_;
  for (size_t p : parts) {
    if (s.resident[p] || s.fault_scheduled[p]) continue;
    s.fault_scheduled[p] = 1;
    ++s.pending_fault_events;
    // The event delay models the asynchronous read; pool bookkeeping (and
    // page caching) happens at completion. Never zero, so a defer/fault
    // cycle always advances virtual time.
    const SimTime delay =
        std::max<SimTime>(Micros(1), s.file->EstimateRestoreCost(p));
    sim()->Schedule(delay, [this, p] { CompleteFaultIn(p); });
  }
}

void Stem::CompleteFaultIn(size_t partition) {
  SpillState& s = *spill_;
  assert(s.pending_fault_events > 0);
  --s.pending_fault_events;
  s.fault_scheduled[partition] = 0;
  FaultInPartition(partition);  // no-op if it was faulted in meanwhile
  // Bounce this partition's deferred probes back to the eddy; probes
  // waiting on other partitions stay behind their own pending faults.
  size_t kept = 0;
  for (auto& [p, tuple] : s.deferred_probes) {
    if (p == partition) {
      Emit(std::move(tuple));
    } else {
      s.deferred_probes[kept++] = {p, std::move(tuple)};
    }
  }
  s.deferred_probes.resize(kept);
  NotifyChange();
}

size_t Stem::SpillColdestPartition() {
  if (spill_ == nullptr) return 0;
  SpillState& s = *spill_;
  const size_t nparts = s.resident.size();
  // Partitions a probe is waiting on (deferred behind a fault-in, or the
  // read is already scheduled) must not be spilled back out from under it.
  auto demanded = [&s](size_t p) {
    if (s.fault_scheduled[p]) return true;
    for (const auto& [dp, tuple] : s.deferred_probes) {
      if (dp == p) return true;
    }
    return false;
  };
  size_t victim = SIZE_MAX;
  double victim_heat = 0;
  for (size_t p = 0; p < nparts; ++p) {
    if (!s.resident[p] || s.live_in_partition[p] == 0) continue;
    if (p == s.last_faulted) continue;  // anti-thrash: not right back out
    if (demanded(p)) continue;
    const double heat = static_cast<double>(s.probe_counts[p]) /
                        static_cast<double>(s.live_in_partition[p]);
    if (victim == SIZE_MAX || heat < victim_heat ||
        (heat == victim_heat &&
         s.live_in_partition[p] > s.live_in_partition[victim])) {
      victim = p;
      victim_heat = heat;
    }
  }
  if (victim == SIZE_MAX && s.last_faulted < nparts &&
      s.resident[s.last_faulted] && s.live_in_partition[s.last_faulted] > 0 &&
      !demanded(s.last_faulted)) {
    // Sole candidate beats an unenforced budget — unless probes wait on it.
    victim = s.last_faulted;
  }
  if (victim == SIZE_MAX) return 0;

  // Clean partition (faulted in earlier, unmodified since): the run file
  // already holds exactly this content, so spilling is dropping the memory
  // copy — zero I/O. Otherwise rewrite the run and flush it.
  const bool clean =
      s.run_valid[victim] &&
      s.file->EntriesIn(victim) == s.live_in_partition[victim];
  size_t spilled = 0;
  SimTime cost = 0;
  if (!clean) s.file->ClearPartition(victim);
  for (uint32_t id : s.ids_in_partition[victim]) {
    Entry& entry = entries_[id];
    if (entry.row == nullptr) continue;  // evicted or stale since listed
    if (!clean) cost += s.file->Append(victim, entry.row, entry.ts);
    entry.row = nullptr;  // tombstone; dedup_ keeps the row's identity
    --live_entries_;
    ++spilled;
  }
  s.ids_in_partition[victim].clear();
  if (!clean) {
    cost += s.file->FlushPartition(victim);  // run is now durably on disk
  }
  s.run_valid[victim] = 1;
  s.live_in_partition[victim] = 0;
  s.resident[victim] = 0;
  ++s.spilled_partitions;
  s.entries_spilled_total += spilled;
  AccrueIoCharge(cost);
  s.out_series->Increment(sim()->now(), static_cast<int64_t>(spilled));
  return spilled;
}

size_t Stem::spill_partitions() const {
  return spill_ == nullptr ? 0 : spill_->resident.size();
}

size_t Stem::partitions_spilled() const {
  return spill_ == nullptr ? 0 : spill_->spilled_partitions;
}

size_t Stem::partitions_resident() const {
  if (spill_ == nullptr) return 0;
  return spill_->resident.size() - spill_->spilled_partitions;
}

uint64_t Stem::entries_spilled() const {
  if (spill_ == nullptr) return 0;
  // Only non-resident partitions' runs hold entries that are *not* in
  // memory (resident partitions may retain a clean run as a copy).
  uint64_t n = 0;
  for (size_t p = 0; p < spill_->resident.size(); ++p) {
    if (!spill_->resident[p]) n += spill_->file->EntriesIn(p);
  }
  return n;
}

uint64_t Stem::spill_ios() const {
  return spill_ == nullptr ? 0 : spill_->file->disk_ios();
}

uint64_t Stem::bytes_spilled() const {
  return spill_ == nullptr ? 0 : spill_->file->bytes_written();
}

uint64_t Stem::spill_faults() const {
  return spill_ == nullptr ? 0 : spill_->faults;
}

uint64_t Stem::probes_deferred() const {
  return spill_ == nullptr ? 0 : spill_->probes_deferred;
}

SimTime Stem::ExpectedProbeSpillCost() const {
  if (spill_ == nullptr || spill_->spilled_partitions == 0) return 0;
  const SpillState& s = *spill_;
  // P(the probe's partition is spilled) × mean pages per spilled partition
  // × expected page read cost.
  const double frac = static_cast<double>(s.spilled_partitions) /
                      static_cast<double>(s.resident.size());
  const size_t page_entries =
      s.options.page_entries == 0 ? 1 : s.options.page_entries;
  const double pages_per_part =
      static_cast<double>((entries_spilled() + page_entries - 1) /
                          page_entries) /
      static_cast<double>(s.spilled_partitions);
  return static_cast<SimTime>(
      frac * pages_per_part *
      static_cast<double>(s.pool->ExpectedReadCost()));
}

bool Stem::Quiescent() const {
  if (!Module::Quiescent()) return false;
  return spill_ == nullptr ||
         (spill_->pending_fault_events == 0 &&
          spill_->pending_io_markers == 0 && spill_->deferred_probes.empty());
}

size_t Stem::PartitionOf(const Tuple& tuple) const {
  if (options_.num_partitions <= 1 || indexes_.empty()) return 0;
  const int part_col = indexes_.front().first;
  const int slot = tuple.SingletonSlot();
  if (slot >= 0 && ServesSlot(slot)) {
    const Value* v = tuple.ValueAt(slot, part_col);  // build side
    return v == nullptr ? 0 : v->Hash() % options_.num_partitions;
  }
  // Probe side: the value bound to the partitioning column, if any.
  int target = tuple.route_target_slot();
  if (target < 0 || !ServesSlot(target)) target = table_slots_.front();
  ProbeBindingsInto(tuple, target, &partition_binds_scratch_);
  for (const auto& [col, val] : partition_binds_scratch_) {
    if (col == part_col) return val.Hash() % options_.num_partitions;
  }
  return 0;
}

SimTime Stem::ServiceTime(const Tuple& tuple) const {
  // Drain the spill subsystem's accrued I/O charge (write-behind spills,
  // synchronous fault-ins): the disk traffic consumes this module's service
  // capacity on its next scheduled event.
  SimTime io_charge = 0;
  if (spill_ != nullptr && spill_->pending_io_charge > 0) {
    io_charge = spill_->pending_io_charge;
    spill_->pending_io_charge = 0;
    spill_->io_accruals.clear();  // billed: their markers retire nothing
  }
  const int slot = tuple.SingletonSlot();
  const bool is_build =
      tuple.route_intent() == RouteIntent::kBuild ||
      (tuple.route_intent() == RouteIntent::kAuto && slot >= 0 &&
       ServesSlot(slot) && tuple.component(slot).timestamp == kTsInfinity);
  if (is_build) return options_.build_service_time + io_charge;
  SimTime t = options_.probe_service_time + io_charge;
  if (options_.partition_switch_penalty > 0) {
    const size_t part = PartitionOf(tuple);
    if (part != last_probed_partition_) t += options_.partition_switch_penalty;
  }
  return t;
}

void Stem::Process(TuplePtr tuple) {
  const int slot = tuple->SingletonSlot();
  switch (tuple->route_intent()) {
    case RouteIntent::kBuild:
      ProcessBuild(std::move(tuple));
      return;
    case RouteIntent::kProbe:
      ProcessProbe(std::move(tuple));
      return;
    case RouteIntent::kAuto:
      if (slot >= 0 && ServesSlot(slot) &&
          tuple->component(slot).timestamp == kTsInfinity) {
        ProcessBuild(std::move(tuple));
      } else {
        ProcessProbe(std::move(tuple));
      }
      return;
  }
}

void Stem::ProcessBuild(TuplePtr tuple) {
  const int slot = tuple->SingletonSlot();
  assert(slot >= 0 && ServesSlot(slot) &&
         "build tuple is not a singleton of this SteM's table");
  RowRef row = tuple->component(slot).row;

  if (row->IsEot()) {
    // EOTs are built into the SteM alongside data tuples (paper §2.1.3) and
    // are not bounced back.
    eots_.Add(std::move(row));
    // Any coverage change can complete deferred work and wake parked
    // probers.
    FlushDeferredBounces();
    NotifyChange();
    return;
  }

  // Set-semantics duplicate elimination (paper §3.2): competing AMs build
  // into the same SteM; the copy that arrives second is absorbed, and is
  // *not* bounced back (SteM BounceBack constraint) so it never probes.
  if (dedup_.count(row) > 0) {
    ++duplicates_absorbed_;
    dups_series_->Increment(sim()->now());
    return;
  }

  const BuildTs ts = ctx_->ts.Issue();
  ++builds_;
  const size_t build_partition =
      spill_ != nullptr ? SpillPartitionOfRow(*row) : 0;
  if (spill_ != nullptr && !spill_->resident[build_partition]) {
    // Build into a spilled partition: append straight to its run file with
    // the fresh timestamp — the entry never touches memory, and a later
    // fault-in restores it indistinguishably (TimeStamp-wise) from a
    // resident build. The dedup identity stays in memory so competing AMs'
    // duplicates are still absorbed.
    const size_t p = build_partition;
    dedup_.insert(row);
    AccrueIoCharge(spill_->file->Append(p, row, ts));
    if (ts > max_entry_ts_) max_entry_ts_ = ts;
    spill_->out_series->Increment(sim()->now());
  } else {
    InsertRow(row, ts);
  }
  tuple->SetBuilt(slot, ts);
  EvictIfNeeded();
  NotifyChange();

  if (options_.num_partitions > 1 && options_.bounce_batch > 1) {
    // Grace-mode: defer the bounce-back, clustered by hash partition
    // (paper §3.1's "asynchronous hash index"). The tuple will re-enter the
    // dataflow when its partition's batch fills or on an EOT/flush.
    const size_t part = PartitionOf(*tuple);
    deferred_bounces_[part].push_back(std::move(tuple));
    if (deferred_bounces_[part].size() >= options_.bounce_batch) {
      auto batch = std::move(deferred_bounces_[part]);
      deferred_bounces_[part].clear();
      for (auto& t : batch) Emit(std::move(t));
    }
    return;
  }
  Emit(std::move(tuple));
}

void Stem::InsertRow(RowRef row, BuildTs ts) {
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  for (auto& [col, index] : indexes_) {
    index->Insert(row->value(col), id);
  }
  if (spill_ != nullptr) {
    const size_t p = SpillPartitionOfRow(*row);
    ++spill_->live_in_partition[p];
    spill_->ids_in_partition[p].push_back(id);
    spill_->run_valid[p] = 0;  // memory diverges from any retained run
  }
  dedup_.insert(row);
  entries_.push_back(Entry{std::move(row), ts});
  ++live_entries_;
  if (ts > max_entry_ts_) max_entry_ts_ = ts;
}

void Stem::EvictIfNeeded() {
  if (options_.max_entries == 0) return;
  if (live_entries_ > options_.max_entries) {
    EvictOldest(live_entries_ - options_.max_entries);
  }
}

size_t Stem::EvictOldest(size_t n) {
  size_t evicted = 0;
  while (evicted < n && next_eviction_ < entries_.size()) {
    Entry& victim = entries_[next_eviction_++];
    if (victim.row == nullptr) continue;  // already a tombstone
    if (spill_ != nullptr) {
      const size_t p = SpillPartitionOfRow(*victim.row);
      if (spill_->live_in_partition[p] > 0) --spill_->live_in_partition[p];
      spill_->run_valid[p] = 0;  // a retained run would resurrect the row
    }
    dedup_.erase(victim.row);
    victim.row = nullptr;  // tombstone; index ids skip it at lookup
    --live_entries_;
    ++evictions_;
    ++evicted;
    evictions_series_->Increment(sim()->now());
  }
  return evicted;
}

void Stem::NotifyChange() {
  if (defer_change_notify_) {
    pending_change_notify_ = true;
    return;
  }
  if (change_listener_) change_listener_();
}

void Stem::ProcessBatch(std::vector<TuplePtr>* tuples) {
  defer_change_notify_ = true;
  Module::ProcessBatch(tuples);
  defer_change_notify_ = false;
  if (pending_change_notify_) {
    pending_change_notify_ = false;
    NotifyChange();
  }
}

void Stem::FlushDeferredBounces() {
  for (auto& partition : deferred_bounces_) {
    auto batch = std::move(partition);
    partition.clear();
    for (auto& t : batch) Emit(std::move(t));
  }
}

std::vector<std::pair<int, Value>> Stem::ProbeBindings(
    const Tuple& tuple, int target_slot) const {
  std::vector<std::pair<int, Value>> binds;
  ProbeBindingsInto(tuple, target_slot, &binds);
  return binds;
}

void Stem::ProbeBindingsInto(const Tuple& tuple, int target_slot,
                             std::vector<std::pair<int, Value>>* out) const {
  out->clear();
  for (const auto& p : ctx_->query->predicates()) {
    auto col = p.EquiJoinColumnFor(target_slot);
    if (!col.has_value()) continue;
    auto peer = p.EquiJoinPeerOf(target_slot);
    if (!peer.has_value() || peer->table_slot == target_slot) continue;
    const Value* v = tuple.ValueAt(peer->table_slot, peer->column);
    if (v != nullptr) out->emplace_back(*col, *v);
  }
}

void Stem::Candidates(const Tuple& tuple, int target_slot,
                      const std::vector<std::pair<int, Value>>& binds,
                      std::vector<uint32_t>* out_ids, bool* full_scan) const {
  std::vector<uint32_t>& out = *out_ids;
  out.clear();
  *full_scan = true;
  for (const auto& [col, val] : binds) {
    for (const auto& [idx_col, index] : indexes_) {
      if (idx_col == col) {
        index->LookupEq(val, &out);
        *full_scan = false;
        return;
      }
    }
  }

  // No equality binding: try a range predicate against an ordered index
  // (paper §2.1.4: "we allow a SteM to perform searches on arbitrary
  // predicates"). Works when the SteM uses StemIndexImpl::kOrdered.
  for (const auto& p : ctx_->query->predicates()) {
    if (!p.is_join() || p.op() == CompareOp::kEq || p.op() == CompareOp::kNe) {
      continue;
    }
    // Orient the comparison as <stem column> OP <probe value>.
    int stem_col;
    CompareOp op = p.op();
    const ColumnRef* peer;
    if (p.lhs().table_slot == target_slot) {
      stem_col = p.lhs().column;
      peer = &p.rhs();
    } else if (p.rhs().table_slot == target_slot) {
      stem_col = p.rhs().column;
      peer = &p.lhs();
      // Flip the operator: probe OP stem  ==>  stem OP' probe.
      switch (op) {
        case CompareOp::kLt: op = CompareOp::kGt; break;
        case CompareOp::kLe: op = CompareOp::kGe; break;
        case CompareOp::kGt: op = CompareOp::kLt; break;
        case CompareOp::kGe: op = CompareOp::kLe; break;
        default: break;
      }
    } else {
      continue;
    }
    const Value* v = tuple.ValueAt(peer->table_slot, peer->column);
    if (v == nullptr) continue;
    for (const auto& [idx_col, index] : indexes_) {
      if (idx_col != stem_col) continue;
      const bool lower = op == CompareOp::kGt || op == CompareOp::kGe;
      const bool inclusive = op == CompareOp::kLe || op == CompareOp::kGe;
      const bool served = index->LookupRange(lower ? v : nullptr, inclusive,
                                             lower ? nullptr : v, inclusive,
                                             &out);
      if (served) {
        *full_scan = false;
        return;
      }
      out.clear();  // index cannot serve ranges; fall through to full scan
    }
  }

  // No usable index: all live entries are candidates; remaining predicates
  // are verified per candidate.
  out.reserve(entries_.size());
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].row != nullptr) out.push_back(id);
  }
}

void Stem::ProcessProbe(TuplePtr tuple) {
  assert(!tuple->is_seed() && "seed tuple routed to a SteM");
  int target_slot = tuple->route_target_slot();
  if (target_slot < 0 || !ServesSlot(target_slot) ||
      tuple->Spans(target_slot)) {
    target_slot = -1;
    for (int s : table_slots_) {
      if (!tuple->Spans(s)) {
        target_slot = s;
        break;
      }
    }
    assert(target_slot >= 0 && "probe tuple already spans all SteM slots");
  }

  ProbeBindingsInto(*tuple, target_slot, &binds_scratch_);
  const auto& binds = binds_scratch_;

  if (spill_ != nullptr) {
    SpillState& s = *spill_;
    // Partition the probe is equality-bound to, read off the bindings just
    // extracted for the candidate lookup (no second extraction pass).
    size_t bound_p = 0;
    bool bound = false;
    if (s.part_col >= 0 && s.resident.size() > 1) {
      for (const auto& [col, val] : binds) {
        if (col == s.part_col) {
          bound_p = val.Hash() % s.resident.size();
          bound = true;
          break;
        }
      }
    }
    // Heat is counted for deferred probes too: a partition with waiters is
    // hot, so the governor keeps it resident once faulted in.
    if (bound) ++s.probe_counts[bound_p];
    if (s.spilled_partitions > 0) {
      if (bound && !s.resident[bound_p]) {
        if (s.options.probe_policy == SpillProbePolicy::kBounce &&
            tuple->spill_deferrals() < s.options.max_probe_deferrals) {
          // Constraint-consistent deferral: the probe is processed against
          // *nothing* (no matches emitted, no probe bookkeeping touched),
          // so re-probing it once the partition is resident is exact. The
          // asynchronous fault-in re-emits it to the eddy, where the
          // routing policy is free to send it elsewhere first.
          ++s.probes_deferred;
          tuple->IncrementSpillDeferrals();
          spill_parts_scratch_.assign(1, bound_p);
          ScheduleFaultIn(spill_parts_scratch_);
          s.deferred_probes.emplace_back(bound_p, std::move(tuple));
          return;
        }
        // kFaultIn: pay the simulated read I/O and restore the partition
        // before the probe is processed.
        AccrueIoCharge(FaultInPartition(bound_p));
        s.faulted_during_probe = true;
      } else if (!bound) {
        // No equality binding on the partitioning column: any spilled
        // partition could hold matches. Fault them all in synchronously —
        // also under kBounce, where deferring behind several independent
        // reads would let re-spills starve the probe.
        for (size_t p = 0; p < s.resident.size(); ++p) {
          if (!s.resident[p]) AccrueIoCharge(FaultInPartition(p));
        }
        s.faulted_during_probe = true;
      }
    }
  }

  if (options_.partition_switch_penalty > 0) {
    last_probed_partition_ = PartitionOf(*tuple);
  }

  bool full_scan = false;
  Candidates(*tuple, target_slot, binds, &candidates_scratch_, &full_scan);
  const auto& candidates = candidates_scratch_;

  // All not-yet-passed predicates evaluable on the concatenation (paper
  // Table 1: matches satisfy "all query predicates that can be evaluated on
  // the columns in t and s"). This deliberately includes predicates already
  // evaluable on the probe alone (e.g. an unvisited selection), so results
  // always carry complete predicate state.
  const uint64_t new_span = tuple->spanned_mask() | (1ULL << target_slot);
  preds_scratch_.clear();
  const auto& preds = preds_scratch_;
  for (const auto& p : ctx_->query->predicates()) {
    if (!tuple->PassedPredicate(p.id()) && p.CanEvaluate(new_span)) {
      preds_scratch_.push_back(&p);
    }
  }

  const BuildTs probe_ts = tuple->Timestamp();
  const BuildTs last_match_ts = tuple->last_match_ts();
  ++probes_processed_;
  uint32_t matches_this_probe = 0;

  for (uint32_t id : candidates) {
    const Entry& entry = entries_[id];
    if (entry.row == nullptr) continue;  // evicted
    // TimeStamp constraint (§3.1): the later-arriving side generates the
    // result. §3.5 re-probes skip matches already seen (LastMatchTimeStamp).
    if (tuple->exclude_equal_ts() ? entry.ts >= probe_ts
                                  : entry.ts > probe_ts) {
      continue;
    }
    if (entry.ts <= last_match_ts) continue;
    OverlayValueSource overlay(*tuple, target_slot, &entry.row->values());
    bool pass = true;
    for (const Predicate* p : preds) {
      if (!p->Evaluate(overlay)) {
        pass = false;
        break;
      }
    }
    if (!pass) continue;
    TuplePtr concat = tuple->ConcatWith(target_slot, entry.row, entry.ts);
    for (const Predicate* p : preds) concat->MarkPredicatePassed(p->id());
    ++matches_emitted_;
    ++matches_this_probe;
    // Partial-result accounting (online metric, §1.2/§3.4): intermediate
    // spans are the partial results FFF surfaces to users.
    SpanSeries(concat->spanned_mask())->Increment(sim()->now());
    Emit(std::move(concat));
  }

  tuple->MarkProbedStem(target_slot);
  tuple->set_last_probe_matches(matches_this_probe);

  // SteM BounceBack constraint (paper Table 2) for probe tuples.
  const bool covered = eots_.Covers(binds);
  bool bounce;
  if (covered) {
    bounce = false;  // all matches provably delivered
  } else if (table_has_index_am_ &&
             (options_.bounce_mode == ProbeBounceMode::kAlways ||
              (options_.bounce_mode == ProbeBounceMode::kPrioritized &&
               tuple->prioritized()))) {
    // Optional bounce (§4.1 / §4.3): give the policy a chance to expedite
    // this probe's matches through an index AM. Because the table has AMs
    // feeding the shared SteM, the policy may also safely retire the tuple
    // instead (when a scan AM exists).
    bounce = true;
  } else if (table_has_scan_am_ && tuple->AllComponentsBuilt()) {
    // Missing matches will find this tuple's components in their SteMs when
    // they arrive from the scan.
    bounce = false;
  } else {
    bounce = true;
  }

  if (bounce) {
    tuple->set_last_match_ts(max_entry_ts_);
    tuple->MarkPriorProber(target_slot);
    ++probes_bounced_;
    bounces_series_->Increment(sim()->now());
    Emit(std::move(tuple));
  }
  // Otherwise the probe tuple leaves the dataflow here: every result it
  // could still contribute to will be generated by later-arriving builds
  // probing the SteMs holding this tuple's components (TimeStamp rule).

  if (spill_ != nullptr && spill_->faulted_during_probe) {
    // Synchronous fault-ins grew resident state: let the memory governor
    // rebalance (it will not immediately re-spill the faulted partition)
    // and parked probers reconsider.
    spill_->faulted_during_probe = false;
    NotifyChange();
  }
}

}  // namespace stems
