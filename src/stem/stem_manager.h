// StemManager: the pool of shared SteM storage (paper §5), owned by the
// Engine but living in src/stem/ — it manages only StemStorage instances
// and their buffer pools, so the planner can depend on it without the
// query layer depending upward on the engine layer.
//
//
// "SteMs enable sharing of state and computation between queries": the
// manager keys StemStorage instances by (table, indexed columns, index
// implementation, spill configuration) so that PlanQuery can attach a new
// query to a SteM another live query already built, instead of paying the
// build cost and memory twice. See docs/sharing.md for the visibility
// model that keeps results exact.
//
// Lifecycle is ref-counted and lazily evicting: facades (and in-flight
// fault-in events) hold shared_ptrs, the manager holds only weak entries.
// When the last query releases a storage it is detached and the registry
// entry expires; expired entries are purged on the next acquire or stats
// call ("detach, then evict").
//
// Shared spill state needs a buffer pool that outlives any single query,
// so the manager also owns one BufferPool per distinct spill
// configuration, shared by every pooled SteM using that configuration
// (the engine-wide analogue of the per-query pool the Eddy owns).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "spill/spill_options.h"
#include "stem/stem.h"
#include "stem/stem_storage.h"

namespace stems {

class BufferPool;

class StemManager {
 public:
  StemManager();
  ~StemManager();

  StemManager(const StemManager&) = delete;
  StemManager& operator=(const StemManager&) = delete;

  /// Pool key for a SteM over `table` indexing `index_columns` (sorted,
  /// from StemIndexColumns). Two queries share a storage iff their keys
  /// are equal — same table, same index needs, same index implementation,
  /// and the same spill configuration (`spill` ignored unless
  /// `spill_enabled`).
  static std::string KeyFor(const std::string& table,
                            const std::vector<int>& index_columns,
                            const StemOptions& options, bool spill_enabled,
                            const SpillOptions& spill);

  /// Returns the pooled storage for `key`, creating it (pooled mode) on
  /// first use. `*shared` is set iff the storage pre-existed — i.e. this
  /// query attaches to state another query built.
  std::shared_ptr<StemStorage> Acquire(const std::string& key,
                                       const std::string& table,
                                       Simulation* sim, bool* shared);

  /// The engine-wide buffer pool for pooled spilling SteMs with this spill
  /// configuration (created on first use; lives as long as the manager).
  BufferPool* SpillPool(const SpillOptions& options);

  /// Live pooled storages (purges expired entries first).
  size_t pooled_storages();

  uint64_t acquires() const { return acquires_; }
  /// Acquires that attached to pre-existing shared state.
  uint64_t shared_acquires() const { return shared_acquires_; }

 private:
  void PurgeExpired();

  std::map<std::string, std::weak_ptr<StemStorage>> storages_;
  std::map<std::string, std::unique_ptr<BufferPool>> pools_;
  uint64_t acquires_ = 0;
  uint64_t shared_acquires_ = 0;
};

}  // namespace stems
