// State Module (SteM) — the paper's core contribution (§2.1.4, §3).
//
// A SteM is "half a join": a dictionary of singleton tuples from one base
// table, supporting build (insert), probe (lookup + concatenate), and
// optionally eviction. One SteM exists per base table and is shared by all
// join predicates, all access methods, and all FROM-clause instances of
// that table.
//
// The SteM enforces, internally, the constraints of paper Table 2 that
// belong to it:
//   SteM BounceBack — builds bounce unless duplicates (set semantics);
//     probes bounce unless the SteM provably has all matches (EOT coverage)
//     or the table has a scan AM and all the probe's components are built.
//   TimeStamp — a probe returns match m iff ts(probe) >= ts(m), and (§3.5)
//     only matches newer than the probe's LastMatchTimeStamp.
//
// Optional behaviours:
//   * priority bounce (§4.1): on tables with index AMs, prioritized probe
//     tuples are bounced even when a scan is running, so they can seed
//     index lookups and surface their matches sooner;
//   * eviction (sliding window over entry count) for continuous queries;
//   * deferred, partition-clustered bounce-backs of build tuples plus a
//     partition-switch probe penalty — the "asynchronous hash index" of
//     §3.1 that makes the eddy's routing simulate Grace hash join;
//   * spillable state (src/spill/): under a global memory budget the
//     governor moves whole hash partitions to simulated run files instead
//     of evicting, keeping joins exact. Builds into a spilled partition
//     append to its run; probes against one either fault it back in
//     (paying buffer-pool read I/O) or are deferred and bounced back to
//     the eddy when the asynchronous fault-in completes.
//
// Cross-query sharing (§5, docs/sharing.md): this class is the *per-query
// facade* of a SteM. The physical dictionary (rows, indexes, spill
// partitions) lives in a StemStorage, which the engine's StemManager may
// pool across concurrent queries. A pooled facade keeps a per-query
// visibility overlay — row -> this query's build timestamp — so a build
// whose row another query already stored skips the physical insert
// (builds_avoided) while the query's own dataflow, timestamps, EOT
// coverage and bounce decisions stay exactly those of a private run.
#pragma once

#include <functional>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "runtime/module.h"
#include "runtime/query_context.h"
#include "stem/eot_store.h"
#include "stem/stem_index.h"
#include "stem/stem_storage.h"

namespace stems {

namespace obs {
class Counter;
}  // namespace obs


class BufferPool;
struct SpillOptions;

/// When, beyond the mandatory cases, a SteM bounces probe tuples on a table
/// that also has index AMs:
///   kConstraintOnly — only the bounces Table 2 requires;
///   kPrioritized    — additionally bounce user-prioritized probes (§4.1);
///   kAlways         — bounce every uncovered probe, giving the routing
///                     policy the option of exploring index AMs (this is
///                     what enables the §4.3 index/hash hybridization).
enum class ProbeBounceMode { kConstraintOnly, kPrioritized, kAlways };

struct StemOptions {
  StemIndexImpl index_impl = StemIndexImpl::kHash;
  size_t adaptive_threshold = 64;

  SimTime build_service_time = Micros(2);
  SimTime probe_service_time = Micros(2);

  ProbeBounceMode bounce_mode = ProbeBounceMode::kConstraintOnly;

  /// Sliding window: keep at most this many entries (0 = unbounded).
  size_t max_entries = 0;

  /// Grace-mode (§3.1): when > 1, build bounce-backs are buffered per hash
  /// partition of the first join column and released in clusters of
  /// `bounce_batch` (or on Flush()/scan-EOT); probes pay
  /// `partition_switch_penalty` when they touch a different partition than
  /// the previous probe (models partition I/O locality).
  size_t num_partitions = 1;
  size_t bounce_batch = 1;
  SimTime partition_switch_penalty = 0;
};

/// The table columns a SteM for `slots` of `query` indexes: every column of
/// the table involved in a join predicate on any of those slots (paper
/// §2.1.4). Sorted ascending. The StemManager keys its pool on this set —
/// queries share a SteM only when they need the same indexes.
std::vector<int> StemIndexColumns(const QuerySpec& query,
                                  const std::vector<int>& slots);

class Stem : public Module {
 public:
  /// `storage` is the physical dictionary to attach to; nullptr creates a
  /// private one (single-query SteM, the default). A pooled storage (from
  /// the engine's StemManager) may already hold other queries' state.
  Stem(QueryContext* ctx, std::string table_name, StemOptions options = {},
       std::shared_ptr<StemStorage> storage = nullptr);
  ~Stem() override;

  ModuleKind kind() const override { return ModuleKind::kStem; }

  const std::string& table_name() const { return table_name_; }
  const std::vector<int>& table_slots() const { return table_slots_; }
  /// True if `slot` is one of this SteM's table instances.
  bool ServesSlot(int slot) const;

  /// Live in-memory entries of the backing storage. For a pooled SteM this
  /// is the *shared* dictionary size — the right signal for probe-cost
  /// models and the memory governor; the query's visible subset may be
  /// smaller (see builds_avoided / docs/sharing.md).
  size_t num_entries() const { return storage_->live_entries(); }
  const EotStore& eot_store() const { return eots_; }
  /// Largest build timestamp this query stored (0 when empty); §3.5
  /// re-probe gating. Always per-query, also on pooled storage.
  BuildTs max_entry_ts() const { return max_entry_ts_; }

  uint64_t duplicates_absorbed() const { return duplicates_absorbed_; }
  uint64_t probes_bounced() const { return probes_bounced_; }
  uint64_t probes_processed() const { return probes_processed_; }
  uint64_t matches_emitted() const { return matches_emitted_; }
  uint64_t builds() const { return builds_; }
  uint64_t evictions() const { return evictions_; }

  // --- cross-query sharing (engine StemManager, docs/sharing.md) ------------

  const std::shared_ptr<StemStorage>& storage() const { return storage_; }
  bool pooled() const { return storage_->pooled(); }
  /// Did this facade attach to a storage another query had already
  /// populated? (Set by the planner from the StemManager's answer.)
  bool attached_shared() const { return attached_shared_; }
  void MarkAttachedShared() { attached_shared_ = true; }
  /// Builds whose row was already physically stored by another query: the
  /// insert, index and (if spilled) run-file work this query skipped.
  uint64_t builds_avoided() const { return builds_avoided_; }
  /// Storage insertion sequence at attach time — the query's epoch
  /// boundary, for observability and diagnostics: entries at or below it
  /// predate the query. Visibility itself is *enforced* by the per-query
  /// overlay (an old entry becomes visible exactly when this query's own
  /// build of the row lands there), so the watermark is never consulted
  /// on the probe path.
  uint64_t attach_watermark() const { return attach_watermark_; }

  /// Registered by the eddy: fires after every build/EOT arrival so parked
  /// prior probers can be re-dispatched.
  void SetChangeListener(std::function<void()> listener) {
    change_listener_ = std::move(listener);
  }

  /// Releases any deferred (Grace-mode) bounce-backs immediately.
  void FlushDeferredBounces();

  /// Evicts up to `n` of the oldest live entries (used by the eddy's
  /// global MemoryGovernor, paper §6: "the eddy can make memory allocation
  /// decisions in a globally optimal manner"). Returns entries evicted;
  /// always 0 on a pooled SteM (shared state is never windowed).
  size_t EvictOldest(size_t n);

  // --- spill-aware state storage (src/spill/, paper §6 + §3.1) --------------

  /// Makes this SteM's state spillable at hash-partition granularity (on
  /// the first indexed join column). Called by the eddy at registration
  /// when EddyOptions::spill is enabled (`pool` is the query-wide buffer
  /// pool), or by the planner with the engine-wide pool for pooled SteMs —
  /// a no-op if the backing storage already spills.
  void EnableSpill(BufferPool* pool, const SpillOptions& options);
  bool spill_enabled() const { return storage_->spill_enabled(); }

  /// Moves the coldest resident partition (fewest probes per stored entry)
  /// to its run file; exact-join semantics are preserved because spilled
  /// entries keep their rows, timestamps and dedup identity. Returns the
  /// number of entries spilled (0 when nothing is spillable). The
  /// MemoryGovernor's kSpillColdest victim policy calls this instead of
  /// EvictOldest.
  size_t SpillColdestPartition();

  size_t spill_partitions() const { return storage_->num_spill_partitions(); }
  size_t partitions_spilled() const { return storage_->partitions_spilled(); }
  size_t partitions_resident() const {
    return storage_->partitions_resident();
  }
  /// Live entries currently on disk (in run files; shared storage-wide).
  uint64_t entries_spilled() const { return storage_->entries_spilled(); }
  /// Spill traffic attributed to *this query's* operations (builds, probe
  /// fault-ins, governor spills it triggered): simulated page reads +
  /// writes, and bytes appended. On a private SteM this equals the run
  /// file's lifetime totals.
  uint64_t spill_ios() const { return attr_spill_ios_; }
  uint64_t bytes_spilled() const { return attr_bytes_spilled_; }
  /// Partitions faulted back into memory (storage-wide).
  uint64_t spill_faults() const { return storage_->spill_faults(); }
  /// Probes deferred because their partition was spilled (kBounce policy).
  uint64_t probes_deferred() const { return probes_deferred_; }

  /// Expected extra virtual time a probe pays here right now because of
  /// spilled partitions (fault-in I/O, amortized). Routing policies fold
  /// this into their cost model so probe routing reflects spill state.
  SimTime ExpectedProbeSpillCost() const {
    return storage_->ExpectedProbeSpillCost();
  }

  /// A SteM with deferred probes or an outstanding I/O charge marker is
  /// not quiescent: a pending event will still re-emit tuples or occupy
  /// virtual time on this query's behalf.
  bool Quiescent() const override;

  /// StemStorage callbacks (asynchronous fault-in completion): re-emit
  /// this query's deferred probes / bill the restore it requested.
  void OnPartitionFaulted(size_t partition);
  void AttributeAsyncRestore(const StemStorage::SpillResult& restored);

  /// The name of the index implementation currently backing `column`
  /// ("hash", "ordered", "list"); empty if the column is not indexed.
  std::string IndexImplFor(int column) const;

  /// Equality bindings (stem column, probe value) that `tuple` fixes when
  /// probing for matches at `target_slot`.
  std::vector<std::pair<int, Value>> ProbeBindings(const Tuple& tuple,
                                                   int target_slot) const;
  /// Hot-path variant: appends into `*out` (cleared first) instead of
  /// allocating a fresh vector per probe.
  void ProbeBindingsInto(const Tuple& tuple, int target_slot,
                         std::vector<std::pair<int, Value>>* out) const;

 protected:
  SimTime ServiceTime(const Tuple& tuple) const override;
  void Process(TuplePtr tuple) override;
  /// Batched service: builds/probes of the group run back to back, and the
  /// change notification (parked-prober wakeups + memory-governor
  /// rebalance) fires once at the end of the group instead of per build.
  void ProcessBatch(std::vector<TuplePtr>* tuples) override;

 private:
  void ProcessBuild(TuplePtr tuple);
  void ProcessProbe(TuplePtr tuple);
  void EvictIfNeeded();
  void NotifyChange();
  size_t PartitionOf(const Tuple& tuple) const;

  /// Books spill I/O: the cost is drained into the next ServiceTime, and a
  /// marker event keeps the clock occupied in case no service follows. The
  /// ios/bytes of the triggering operation are billed to this query.
  void AccrueIoCharge(const StemStorage::SpillResult& io);

  /// Single home for restore (fault-in) attribution: bills the I/O to this
  /// query — as a service charge when the restore ran synchronously under
  /// a probe, as counters only when it completed asynchronously (its cost
  /// was already modeled by the fault event's delay) — and feeds the
  /// spill.in metric series.
  void AttributeRestore(const StemStorage::SpillResult& in, bool synchronous);

  /// Candidate entry ids for a probe: equality bindings through the hash
  /// index when possible, range join predicates through an ordered index
  /// otherwise ("searches on arbitrary predicates", §2.1.4); `full_scan`
  /// set when the result is all entries (no usable index). Fills `*out`
  /// (cleared first).
  void Candidates(const Tuple& tuple, int target_slot,
                  const std::vector<std::pair<int, Value>>& binds,
                  std::vector<uint32_t>* out, bool* full_scan) const;

  /// Probe-path scratch buffers (service is serialized per module, so one
  /// set suffices; keeps the hot path allocation-free). The partition
  /// buffer is separate (and mutable) because PartitionOf() runs inside
  /// const ServiceTime() while binds_scratch_ may hold live probe state.
  std::vector<std::pair<int, Value>> binds_scratch_;
  mutable std::vector<std::pair<int, Value>> partition_binds_scratch_;
  std::vector<uint32_t> candidates_scratch_;
  std::vector<const Predicate*> preds_scratch_;
  std::vector<size_t> spill_parts_scratch_;

  QueryContext* ctx_;
  std::string table_name_;
  std::vector<int> table_slots_;
  bool table_has_scan_am_ = false;
  bool table_has_index_am_ = false;
  StemOptions options_;

  /// The physical dictionary (rows, indexes, spill partitions). Private by
  /// default; pooled across queries when handed in by the StemManager.
  std::shared_ptr<StemStorage> storage_;

  /// Per-query visibility overlay (pooled storage only): row -> this
  /// query's build timestamp. Serves as the query's dedup set (a second
  /// build of the same row within the query is absorbed) and as the
  /// timestamp source for the TimeStamp constraint — entries another query
  /// stored stay invisible until this query's own build of the row lands
  /// here. Content-keyed so it survives spill/fault round trips.
  std::unordered_map<RowRef, BuildTs, RowRefContentHash, RowRefContentEq>
      query_ts_;

  BuildTs max_entry_ts_ = 0;
  EotStore eots_;

  /// Grace mode state.
  std::vector<std::vector<TuplePtr>> deferred_bounces_;
  mutable size_t last_probed_partition_ = SIZE_MAX;

  /// kBounce: probes parked in this facade behind their partition's
  /// asynchronous fault-in, tagged with the partition they need.
  std::vector<std::pair<size_t, TuplePtr>> deferred_probes_;

  /// Spill I/O cost accrued during processing; drained into the next
  /// ServiceTime (write-behind spills / synchronous fault-ins consume this
  /// module's service capacity one event later).
  mutable SimTime pending_io_charge_ = 0;
  /// Undrained accruals backing pending_io_charge_, by accrual id: lets a
  /// marker retire exactly its own still-pending amount (and nothing a
  /// service already billed, and no newer accrual).
  mutable std::vector<std::pair<uint64_t, SimTime>> io_accruals_;
  uint64_t next_io_accrual_id_ = 0;
  /// Outstanding I/O marker events (AccrueIoCharge): the SteM is not
  /// quiescent while one is pending, so completion cannot be stamped
  /// ahead of trailing spill I/O.
  size_t pending_io_markers_ = 0;
  bool faulted_during_probe_ = false;

  /// Batched-service state: while a group is in flight, NotifyChange()
  /// latches instead of firing, and the pending notification is delivered
  /// once after the group.
  bool defer_change_notify_ = false;
  bool pending_change_notify_ = false;

  std::function<void()> change_listener_;

  /// Hot-path metrics: series handles resolved once (the per-match
  /// "span.<mask>" key used to be rebuilt per emitted concatenation).
  /// Engine-wide registry handles (null when no registry is attached).
  obs::Counter* reg_builds_ = nullptr;
  obs::Counter* reg_probes_ = nullptr;
  obs::Counter* reg_matches_ = nullptr;

  CounterSeries* dups_series_ = nullptr;
  CounterSeries* bounces_series_ = nullptr;
  CounterSeries* evictions_series_ = nullptr;
  CounterSeries* spill_out_series_ = nullptr;
  CounterSeries* spill_in_series_ = nullptr;
  std::vector<std::pair<uint64_t, CounterSeries*>> span_series_;
  CounterSeries* SpanSeries(uint64_t mask);

  uint64_t duplicates_absorbed_ = 0;
  uint64_t probes_bounced_ = 0;
  uint64_t probes_processed_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t builds_ = 0;
  uint64_t builds_avoided_ = 0;
  uint64_t evictions_ = 0;
  uint64_t probes_deferred_ = 0;
  uint64_t attr_spill_ios_ = 0;
  uint64_t attr_bytes_spilled_ = 0;
  uint64_t attach_watermark_ = 0;
  bool attached_shared_ = false;
};

}  // namespace stems
