// State Module (SteM) — the paper's core contribution (§2.1.4, §3).
//
// A SteM is "half a join": a dictionary of singleton tuples from one base
// table, supporting build (insert), probe (lookup + concatenate), and
// optionally eviction. One SteM exists per base table and is shared by all
// join predicates, all access methods, and all FROM-clause instances of
// that table.
//
// The SteM enforces, internally, the constraints of paper Table 2 that
// belong to it:
//   SteM BounceBack — builds bounce unless duplicates (set semantics);
//     probes bounce unless the SteM provably has all matches (EOT coverage)
//     or the table has a scan AM and all the probe's components are built.
//   TimeStamp — a probe returns match m iff ts(probe) >= ts(m), and (§3.5)
//     only matches newer than the probe's LastMatchTimeStamp.
//
// Optional behaviours:
//   * priority bounce (§4.1): on tables with index AMs, prioritized probe
//     tuples are bounced even when a scan is running, so they can seed
//     index lookups and surface their matches sooner;
//   * eviction (sliding window over entry count) for continuous queries;
//   * deferred, partition-clustered bounce-backs of build tuples plus a
//     partition-switch probe penalty — the "asynchronous hash index" of
//     §3.1 that makes the eddy's routing simulate Grace hash join;
//   * spillable state (src/spill/): under a global memory budget the
//     governor moves whole hash partitions to simulated run files instead
//     of evicting, keeping joins exact. Builds into a spilled partition
//     append to its run; probes against one either fault it back in
//     (paying buffer-pool read I/O) or are deferred and bounced back to
//     the eddy when the asynchronous fault-in completes.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "runtime/module.h"
#include "runtime/query_context.h"
#include "stem/eot_store.h"
#include "stem/stem_index.h"

namespace stems {

class BufferPool;
struct SpillOptions;

/// When, beyond the mandatory cases, a SteM bounces probe tuples on a table
/// that also has index AMs:
///   kConstraintOnly — only the bounces Table 2 requires;
///   kPrioritized    — additionally bounce user-prioritized probes (§4.1);
///   kAlways         — bounce every uncovered probe, giving the routing
///                     policy the option of exploring index AMs (this is
///                     what enables the §4.3 index/hash hybridization).
enum class ProbeBounceMode { kConstraintOnly, kPrioritized, kAlways };

struct StemOptions {
  StemIndexImpl index_impl = StemIndexImpl::kHash;
  size_t adaptive_threshold = 64;

  SimTime build_service_time = Micros(2);
  SimTime probe_service_time = Micros(2);

  ProbeBounceMode bounce_mode = ProbeBounceMode::kConstraintOnly;

  /// Sliding window: keep at most this many entries (0 = unbounded).
  size_t max_entries = 0;

  /// Grace-mode (§3.1): when > 1, build bounce-backs are buffered per hash
  /// partition of the first join column and released in clusters of
  /// `bounce_batch` (or on Flush()/scan-EOT); probes pay
  /// `partition_switch_penalty` when they touch a different partition than
  /// the previous probe (models partition I/O locality).
  size_t num_partitions = 1;
  size_t bounce_batch = 1;
  SimTime partition_switch_penalty = 0;
};

class Stem : public Module {
 public:
  Stem(QueryContext* ctx, std::string table_name, StemOptions options = {});
  ~Stem() override;

  ModuleKind kind() const override { return ModuleKind::kStem; }

  const std::string& table_name() const { return table_name_; }
  const std::vector<int>& table_slots() const { return table_slots_; }
  /// True if `slot` is one of this SteM's table instances.
  bool ServesSlot(int slot) const;

  size_t num_entries() const { return live_entries_; }
  const EotStore& eot_store() const { return eots_; }
  /// Largest build timestamp stored (0 when empty); §3.5 re-probe gating.
  BuildTs max_entry_ts() const { return max_entry_ts_; }

  uint64_t duplicates_absorbed() const { return duplicates_absorbed_; }
  uint64_t probes_bounced() const { return probes_bounced_; }
  uint64_t probes_processed() const { return probes_processed_; }
  uint64_t matches_emitted() const { return matches_emitted_; }
  uint64_t builds() const { return builds_; }
  uint64_t evictions() const { return evictions_; }

  /// Registered by the eddy: fires after every build/EOT arrival so parked
  /// prior probers can be re-dispatched.
  void SetChangeListener(std::function<void()> listener) {
    change_listener_ = std::move(listener);
  }

  /// Releases any deferred (Grace-mode) bounce-backs immediately.
  void FlushDeferredBounces();

  /// Evicts up to `n` of the oldest live entries (used by the eddy's
  /// global MemoryGovernor, paper §6: "the eddy can make memory allocation
  /// decisions in a globally optimal manner"). Returns entries evicted.
  size_t EvictOldest(size_t n);

  // --- spill-aware state storage (src/spill/, paper §6 + §3.1) --------------

  /// Makes this SteM's state spillable at hash-partition granularity (on
  /// the first indexed join column). Called by the eddy at registration
  /// when EddyOptions::spill is enabled; `pool` is the query-wide buffer
  /// pool all SteMs share.
  void EnableSpill(BufferPool* pool, const SpillOptions& options);
  bool spill_enabled() const { return spill_ != nullptr; }

  /// Moves the coldest resident partition (fewest probes per stored entry)
  /// to its run file; exact-join semantics are preserved because spilled
  /// entries keep their rows, timestamps and dedup identity. Returns the
  /// number of entries spilled (0 when nothing is spillable). The
  /// MemoryGovernor's kSpillColdest victim policy calls this instead of
  /// EvictOldest.
  size_t SpillColdestPartition();

  size_t spill_partitions() const;
  size_t partitions_spilled() const;
  size_t partitions_resident() const;
  /// Live entries currently on disk (in run files).
  uint64_t entries_spilled() const;
  /// Lifetime spill traffic: simulated disk page reads + writes.
  uint64_t spill_ios() const;
  uint64_t bytes_spilled() const;
  /// Partitions faulted back into memory.
  uint64_t spill_faults() const;
  /// Probes deferred because their partition was spilled (kBounce policy).
  uint64_t probes_deferred() const;

  /// Expected extra virtual time a probe pays here right now because of
  /// spilled partitions (fault-in I/O, amortized). Routing policies fold
  /// this into their cost model so probe routing reflects spill state.
  SimTime ExpectedProbeSpillCost() const;

  /// A SteM with deferred probes or an in-flight asynchronous fault-in is
  /// not quiescent: the pending fault event will re-emit tuples.
  bool Quiescent() const override;

  /// The name of the index implementation currently backing `column`
  /// ("hash", "ordered", "list"); empty if the column is not indexed.
  std::string IndexImplFor(int column) const;

  /// Equality bindings (stem column, probe value) that `tuple` fixes when
  /// probing for matches at `target_slot`.
  std::vector<std::pair<int, Value>> ProbeBindings(const Tuple& tuple,
                                                   int target_slot) const;
  /// Hot-path variant: appends into `*out` (cleared first) instead of
  /// allocating a fresh vector per probe.
  void ProbeBindingsInto(const Tuple& tuple, int target_slot,
                         std::vector<std::pair<int, Value>>* out) const;

 protected:
  SimTime ServiceTime(const Tuple& tuple) const override;
  void Process(TuplePtr tuple) override;
  /// Batched service: builds/probes of the group run back to back, and the
  /// change notification (parked-prober wakeups + memory-governor
  /// rebalance) fires once at the end of the group instead of per build.
  void ProcessBatch(std::vector<TuplePtr>* tuples) override;

 private:
  struct Entry {
    RowRef row;  ///< null after eviction (tombstone)
    BuildTs ts = 0;
  };

  void ProcessBuild(TuplePtr tuple);
  void ProcessProbe(TuplePtr tuple);
  void InsertRow(RowRef row, BuildTs ts);
  void EvictIfNeeded();
  void NotifyChange();
  size_t PartitionOf(const Tuple& tuple) const;

  // --- spill internals (definitions in stem.cc; state in SpillState) --------
  /// Spill partition of a build row (0 when partitioning is unavailable).
  size_t SpillPartitionOfRow(const Row& row) const;
  /// Books spill I/O: the cost is drained into the next ServiceTime, and a
  /// marker event keeps the clock occupied in case no service follows.
  void AccrueIoCharge(SimTime cost);
  /// Restores a partition synchronously; returns the virtual read cost.
  SimTime FaultInPartition(size_t partition);
  /// Schedules the asynchronous fault-in of every partition in `parts`
  /// (kBounce); deferred probes are re-emitted on completion.
  void ScheduleFaultIn(const std::vector<size_t>& parts);
  void CompleteFaultIn(size_t partition);

  /// Candidate entry ids for a probe: equality bindings through the hash
  /// index when possible, range join predicates through an ordered index
  /// otherwise ("searches on arbitrary predicates", §2.1.4); `full_scan`
  /// set when the result is all entries (no usable index). Fills `*out`
  /// (cleared first).
  void Candidates(const Tuple& tuple, int target_slot,
                  const std::vector<std::pair<int, Value>>& binds,
                  std::vector<uint32_t>* out, bool* full_scan) const;

  /// Probe-path scratch buffers (service is serialized per module, so one
  /// set suffices; keeps the hot path allocation-free). The partition
  /// buffer is separate (and mutable) because PartitionOf() runs inside
  /// const ServiceTime() while binds_scratch_ may hold live probe state.
  std::vector<std::pair<int, Value>> binds_scratch_;
  mutable std::vector<std::pair<int, Value>> partition_binds_scratch_;
  std::vector<uint32_t> candidates_scratch_;
  std::vector<const Predicate*> preds_scratch_;

  QueryContext* ctx_;
  std::string table_name_;
  std::vector<int> table_slots_;
  bool table_has_scan_am_ = false;
  bool table_has_index_am_ = false;
  StemOptions options_;

  std::vector<Entry> entries_;
  size_t live_entries_ = 0;
  size_t next_eviction_ = 0;
  BuildTs max_entry_ts_ = 0;
  std::unordered_set<RowRef, RowRefContentHash, RowRefContentEq> dedup_;
  EotStore eots_;

  /// join column -> index (indexes are secondary: ids into entries_).
  std::vector<std::pair<int, std::unique_ptr<StemIndex>>> indexes_;

  /// Grace mode state.
  std::vector<std::vector<TuplePtr>> deferred_bounces_;
  mutable size_t last_probed_partition_ = SIZE_MAX;

  /// Spill-aware storage state (null until EnableSpill); definition local
  /// to stem.cc so this header stays free of spill includes.
  struct SpillState;
  std::unique_ptr<SpillState> spill_;
  std::vector<size_t> spill_parts_scratch_;

  /// Batched-service state: while a group is in flight, NotifyChange()
  /// latches instead of firing, and the pending notification is delivered
  /// once after the group.
  bool defer_change_notify_ = false;
  bool pending_change_notify_ = false;

  std::function<void()> change_listener_;

  /// Hot-path metrics: series handles resolved once (the per-match
  /// "span.<mask>" key used to be rebuilt per emitted concatenation).
  CounterSeries* dups_series_ = nullptr;
  CounterSeries* bounces_series_ = nullptr;
  CounterSeries* evictions_series_ = nullptr;
  std::vector<std::pair<uint64_t, CounterSeries*>> span_series_;
  CounterSeries* SpanSeries(uint64_t mask);

  uint64_t duplicates_absorbed_ = 0;
  uint64_t probes_bounced_ = 0;
  uint64_t probes_processed_ = 0;
  uint64_t matches_emitted_ = 0;
  uint64_t builds_ = 0;
  uint64_t evictions_ = 0;
};

}  // namespace stems
