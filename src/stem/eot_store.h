// EotStore: End-Of-Transmission tuples held inside a SteM (paper §2.1.3).
//
// An EOT row records that some AM has returned *all* matches for a probing
// predicate: its bound columns carry the probe's values and every other
// column carries the EOT marker. A probe is "covered" — the SteM provably
// holds all its matches — iff some stored EOT's bound columns are a subset
// of the probe's bound columns with equal values. The scan EOT (no bound
// columns) covers every probe.
#pragma once

#include <unordered_set>
#include <utility>
#include <vector>

#include "types/row.h"

namespace stems {

class EotStore {
 public:
  /// Adds an EOT row (set semantics: duplicates are ignored).
  void Add(RowRef eot_row);

  /// `binds` are (column, value) pairs the probe fixes by equality.
  bool Covers(const std::vector<std::pair<int, Value>>& binds) const;

  /// True once a scan EOT (all-EOT row) is present.
  bool HasFullCoverage() const { return full_coverage_; }

  size_t size() const { return rows_.size(); }

 private:
  std::vector<RowRef> rows_;
  std::unordered_set<RowRef, RowRefContentHash, RowRefContentEq> dedup_;
  bool full_coverage_ = false;
};

}  // namespace stems
