#include "stem/stem_manager.h"

#include "spill/buffer_pool.h"

namespace stems {

StemManager::StemManager() = default;
StemManager::~StemManager() = default;

namespace {

/// Spill-configuration fragment of a pool key. Latency models are keyed by
/// identity: two RunOptions sharing a model object (or both using the
/// built-in default, nullptr) are compatible; distinct custom models are
/// not provably equivalent, so they get distinct storages.
std::string SpillKey(const SpillOptions& spill) {
  return std::to_string(spill.partitions) + ":" +
         std::to_string(spill.page_entries) + ":" +
         std::to_string(spill.pool_frames) + ":" +
         std::to_string(spill.seed) + ":" +
         std::to_string(static_cast<int>(spill.probe_policy)) + ":" +
         std::to_string(spill.max_probe_deferrals) + ":" +
         std::to_string(reinterpret_cast<uintptr_t>(spill.read_latency.get())) +
         ":" +
         std::to_string(reinterpret_cast<uintptr_t>(spill.write_latency.get()));
}

}  // namespace

std::string StemManager::KeyFor(const std::string& table,
                                const std::vector<int>& index_columns,
                                const StemOptions& options, bool spill_enabled,
                                const SpillOptions& spill) {
  std::string key = table + "|";
  for (int col : index_columns) key += std::to_string(col) + ",";
  key += "|" + std::to_string(static_cast<int>(options.index_impl)) + ":" +
         std::to_string(options.adaptive_threshold) + "|";
  key += spill_enabled ? "spill:" + SpillKey(spill) : std::string("nospill");
  return key;
}

std::shared_ptr<StemStorage> StemManager::Acquire(const std::string& key,
                                                  const std::string& table,
                                                  Simulation* sim,
                                                  bool* shared) {
  PurgeExpired();
  ++acquires_;
  auto it = storages_.find(key);
  if (it != storages_.end()) {
    if (std::shared_ptr<StemStorage> existing = it->second.lock()) {
      ++shared_acquires_;
      *shared = true;
      return existing;
    }
  }
  *shared = false;
  auto storage = std::make_shared<StemStorage>(table, sim, /*pooled=*/true);
  storages_[key] = storage;
  return storage;
}

BufferPool* StemManager::SpillPool(const SpillOptions& options) {
  const std::string key = SpillKey(options);
  auto it = pools_.find(key);
  if (it == pools_.end()) {
    it = pools_.emplace(key, std::make_unique<BufferPool>(options)).first;
  }
  return it->second.get();
}

size_t StemManager::pooled_storages() {
  PurgeExpired();
  return storages_.size();
}

void StemManager::PurgeExpired() {
  for (auto it = storages_.begin(); it != storages_.end();) {
    if (it->second.expired()) {
      it = storages_.erase(it);
    } else {
      ++it;
    }
  }
}

}  // namespace stems
