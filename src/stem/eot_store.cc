#include "stem/eot_store.h"

namespace stems {

void EotStore::Add(RowRef eot_row) {
  if (!dedup_.insert(eot_row).second) return;
  bool all_eot = true;
  for (const auto& v : eot_row->values()) {
    if (!v.is_eot()) {
      all_eot = false;
      break;
    }
  }
  if (all_eot) full_coverage_ = true;
  rows_.push_back(std::move(eot_row));
}

bool EotStore::Covers(
    const std::vector<std::pair<int, Value>>& binds) const {
  if (full_coverage_) return true;
  for (const auto& row : rows_) {
    bool covers = true;
    for (size_t c = 0; c < row->num_values(); ++c) {
      const Value& v = row->value(c);
      if (v.is_eot()) continue;  // unconstrained by this EOT
      // Bound column of the EOT: the probe must bind it to the same value.
      bool matched = false;
      for (const auto& [col, val] : binds) {
        if (col == static_cast<int>(c) && val == v) {
          matched = true;
          break;
        }
      }
      if (!matched) {
        covers = false;
        break;
      }
    }
    if (covers) return true;
  }
  return false;
}

}  // namespace stems
