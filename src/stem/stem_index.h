// In-memory secondary indexes inside a SteM (paper §2.1.4, §3.1).
//
// A SteM keeps one index per join column of its table. The paper's first
// constraint relaxation lets the SteM choose and even switch its index
// implementation independently of the routing: we provide a hash index, an
// ordered (tree) index, and an adaptive index that starts as a plain list
// and upgrades itself to a hash table once it grows (the paper's example).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <vector>

#include "types/value.h"

namespace stems {

/// Maps join-column values to entry ids within the owning SteM.
class StemIndex {
 public:
  virtual ~StemIndex() = default;

  virtual void Insert(const Value& key, uint32_t entry_id) = 0;

  /// Appends ids of entries whose key equals `key`.
  virtual void LookupEq(const Value& key, std::vector<uint32_t>* out) const = 0;

  /// Appends ids with lo <= key <= hi (bounds optional); only ordered
  /// indexes support this efficiently — others fall back to full scans at
  /// the SteM level and must return false.
  virtual bool LookupRange(const Value* lo, bool lo_inclusive, const Value* hi,
                           bool hi_inclusive, std::vector<uint32_t>* out) const {
    (void)lo;
    (void)lo_inclusive;
    (void)hi;
    (void)hi_inclusive;
    (void)out;
    return false;
  }

  virtual size_t size() const = 0;

  /// Implementation name, for stats/tests ("hash", "ordered", "list").
  virtual const char* impl_name() const = 0;
};

/// Hash index: O(1) equality lookups.
class HashStemIndex : public StemIndex {
 public:
  void Insert(const Value& key, uint32_t entry_id) override;
  void LookupEq(const Value& key, std::vector<uint32_t>* out) const override;
  size_t size() const override { return count_; }
  const char* impl_name() const override { return "hash"; }

 private:
  std::unordered_map<Value, std::vector<uint32_t>, ValueHash> map_;
  size_t count_ = 0;
};

/// Ordered index: supports range lookups (tournament-tree stand-in).
class OrderedStemIndex : public StemIndex {
 public:
  void Insert(const Value& key, uint32_t entry_id) override;
  void LookupEq(const Value& key, std::vector<uint32_t>* out) const override;
  bool LookupRange(const Value* lo, bool lo_inclusive, const Value* hi,
                   bool hi_inclusive, std::vector<uint32_t>* out) const override;
  size_t size() const override { return count_; }
  const char* impl_name() const override { return "ordered"; }

 private:
  std::map<Value, std::vector<uint32_t>> map_;
  size_t count_ = 0;
};

/// Starts as an unordered list (cheap while small), upgrades to a hash
/// index past `upgrade_threshold` entries — the paper's §3.1 example of a
/// SteM adapting its own implementation.
class AdaptiveStemIndex : public StemIndex {
 public:
  explicit AdaptiveStemIndex(size_t upgrade_threshold = 64)
      : upgrade_threshold_(upgrade_threshold) {}

  void Insert(const Value& key, uint32_t entry_id) override;
  void LookupEq(const Value& key, std::vector<uint32_t>* out) const override;
  size_t size() const override;
  const char* impl_name() const override {
    return hash_ == nullptr ? "list" : "hash";
  }

 private:
  size_t upgrade_threshold_;
  std::vector<std::pair<Value, uint32_t>> list_;
  std::unique_ptr<HashStemIndex> hash_;
};

enum class StemIndexImpl { kHash, kOrdered, kAdaptive };

std::unique_ptr<StemIndex> MakeStemIndex(StemIndexImpl impl,
                                         size_t adaptive_threshold = 64);

}  // namespace stems
