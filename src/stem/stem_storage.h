// StemStorage: the shareable physical half of a SteM.
//
// The paper's §5 claim — SteMs enable "sharing of state and computation
// between queries" — requires the dictionary itself (rows, indexes, spilled
// partitions) to outlive and span individual query plans. This class is
// that dictionary: entries, content-keyed dedup identity, secondary
// indexes, and the spill-partition state, factored out of the per-query
// Stem module so several concurrent queries can attach to one copy.
//
// Ownership is ref-counted: every attached Stem facade (and any in-flight
// asynchronous fault-in event) holds a shared_ptr; the engine's StemManager
// keeps only a weak registry entry, so the storage is evicted lazily when
// the last query releases it.
//
// Visibility across queries is NOT this class's concern. In pooled mode
// every entry carries an insertion sequence number, and each attached
// facade keeps a private overlay of per-query build timestamps (see
// Stem::query_ts_ and docs/sharing.md): an entry is visible to a query iff
// that query logically built it. StemStorage only stores rows once and
// tells builders whether the row is already present (Contains).
#pragma once

#include <memory>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "runtime/tuple.h"
#include "sim/simulation.h"
#include "spill/spill_options.h"
#include "stem/stem_index.h"
#include "types/row.h"

namespace stems {

class BufferPool;
class Stem;

class StemStorage : public std::enable_shared_from_this<StemStorage> {
 public:
  struct Entry {
    RowRef row;  ///< null after spill-out or eviction (tombstone)
    /// Private storage: the owning query's BuildTs. Pooled storage: the
    /// insertion sequence number (per-query timestamps live in each
    /// facade's overlay; the sequence survives spill round trips and is
    /// the source of attach-time watermarks).
    BuildTs ts = 0;
  };

  /// `pooled` marks storage managed by a StemManager (shared across
  /// queries): builds go through per-facade visibility overlays and
  /// windowed eviction is refused.
  StemStorage(std::string table_name, Simulation* sim, bool pooled);
  ~StemStorage();

  StemStorage(const StemStorage&) = delete;
  StemStorage& operator=(const StemStorage&) = delete;

  const std::string& table_name() const { return table_name_; }
  bool pooled() const { return pooled_; }

  // --- attached facades ------------------------------------------------------

  void Attach(Stem* facade);
  void Detach(Stem* facade);
  size_t attached_count() const { return attached_.size(); }

  /// Monotonic insertion sequence; a facade snapshots it at attach time as
  /// its visibility watermark (entries at or below it predate the query).
  uint64_t build_seq() const { return build_seq_; }
  BuildTs IssueSeq() { return ++build_seq_; }

  // --- rows, dedup identity, indexes -----------------------------------------

  /// Is `row` (by content) physically stored — resident, spilled, or
  /// tombstoned-with-identity? Builders use this for set semantics within
  /// one query and for cross-query build avoidance.
  bool Contains(const RowRef& row) const { return dedup_.count(row) > 0; }

  /// Physically inserts a resident row: indexes it, updates spill partition
  /// accounting, registers its dedup identity.
  void Insert(RowRef row, BuildTs stored_ts);

  /// Evicts up to `n` of the oldest live entries (sliding-window
  /// semantics). Pooled storage refuses (returns 0): evicting shared state
  /// would silently window every attached query's join.
  size_t EvictOldest(size_t n);

  const std::vector<Entry>& entries() const { return entries_; }
  size_t live_entries() const { return live_entries_; }

  std::vector<std::pair<int, std::unique_ptr<StemIndex>>>& indexes() {
    return indexes_;
  }
  const std::vector<std::pair<int, std::unique_ptr<StemIndex>>>& indexes()
      const {
    return indexes_;
  }

  // --- spill-aware partition state (src/spill/) ------------------------------

  /// Result of one spill-subsystem operation, with the I/O it performed so
  /// the calling facade can bill itself (per-query attribution).
  struct SpillResult {
    size_t entries = 0;  ///< entries moved (spilled out / restored in)
    SimTime cost = 0;    ///< virtual I/O time to charge
    uint64_t ios = 0;    ///< simulated disk page reads + writes
    uint64_t bytes = 0;  ///< bytes appended to the run file
  };

  void EnableSpill(BufferPool* pool, const SpillOptions& options,
                   int part_col);
  bool spill_enabled() const { return spill_ != nullptr; }
  SpillProbePolicy spill_probe_policy() const;
  uint32_t max_probe_deferrals() const;
  int spill_part_col() const;
  size_t num_spill_partitions() const;
  bool PartitionResident(size_t p) const;
  size_t SpillPartitionOfRow(const Row& row) const;
  /// Records probe heat against a partition (victim-selection signal).
  void CountProbe(size_t p);

  /// Moves the coldest resident partition to its run file (exact: rows,
  /// sequence numbers and dedup identity are preserved).
  SpillResult SpillColdestPartition();
  /// Restores a partition synchronously (no-op result if resident).
  SpillResult FaultInPartition(size_t p);
  /// Appends a build directly to a spilled partition's run (the row never
  /// touches memory; its dedup identity is registered).
  SpillResult AppendToSpilledPartition(size_t p, RowRef row,
                                       BuildTs stored_ts);

  /// A facade deferred a probe behind partition `p` (SpillProbePolicy::
  /// kBounce): the partition must not be re-spilled out from under it.
  void AddSpillWaiter(size_t p);
  void RemoveSpillWaiter(size_t p);

  /// Schedules the asynchronous fault-in of every partition in `parts`
  /// (no-op for resident or already-scheduled ones). The event holds a
  /// shared_ptr to this storage, so it outlives any detaching query; on
  /// completion every *attached* facade is told (Stem::OnPartitionFaulted)
  /// and the restore I/O is attributed to `requester` if still attached.
  void ScheduleFaultIn(const std::vector<size_t>& parts, Stem* requester);

  size_t partitions_spilled() const;
  size_t partitions_resident() const;
  /// Live entries currently only on disk (in non-resident partitions).
  uint64_t entries_spilled() const;
  uint64_t spill_faults() const;
  size_t pending_fault_events() const;
  /// Expected extra virtual time a probe pays right now because of spilled
  /// partitions (fault-in I/O, amortized).
  SimTime ExpectedProbeSpillCost() const;

 private:
  struct Spill;  // defined in stem_storage.cc; keeps spill includes out

  void CompleteFaultIn(size_t p);
  SpillResult RestorePartitionLocked(size_t p);

  std::string table_name_;
  Simulation* sim_;
  bool pooled_;

  std::vector<Entry> entries_;
  size_t live_entries_ = 0;
  size_t next_eviction_ = 0;
  uint64_t build_seq_ = 0;
  std::unordered_set<RowRef, RowRefContentHash, RowRefContentEq> dedup_;

  /// join column -> index (indexes are secondary: ids into entries_).
  std::vector<std::pair<int, std::unique_ptr<StemIndex>>> indexes_;

  std::vector<Stem*> attached_;

  std::unique_ptr<Spill> spill_;
};

}  // namespace stems
