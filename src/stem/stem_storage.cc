#include "stem/stem_storage.h"

#include <algorithm>
#include <cassert>

#include "spill/spill_file.h"
#include "stem/stem.h"

namespace stems {

/// Spill-partition state: the run file, per-partition residency/heat, and
/// the fault-in scheduling shared by every attached query.
struct StemStorage::Spill {
  BufferPool* pool = nullptr;
  SpillOptions options;
  std::unique_ptr<SpillFile> file;
  /// Partitioning column (first indexed join column); -1 degenerates to a
  /// single partition.
  int part_col = -1;
  std::vector<uint8_t> resident;          ///< per partition
  std::vector<size_t> live_in_partition;  ///< resident live entries
  std::vector<uint64_t> probe_counts;     ///< per-partition heat
  /// entries_ ids per partition, so a spill-out touches only its own
  /// partition instead of scanning every entry (stale tombstoned ids are
  /// skipped and dropped at the next spill).
  std::vector<std::vector<uint32_t>> ids_in_partition;
  /// Run file still equals the partition's content (clean): re-spilling is
  /// free — drop the memory copy. Cleared by any in-memory mutation.
  std::vector<uint8_t> run_valid;
  std::vector<uint8_t> fault_scheduled;  ///< async fault-in pending
  /// Probes (from any attached query) deferred behind each partition's
  /// asynchronous fault-in; such partitions must not be re-victimized.
  std::vector<uint32_t> waiters;
  /// Facade whose probe scheduled each pending fault; the restore I/O is
  /// attributed to it at completion if it is still attached.
  std::vector<Stem*> fault_requester;
  std::vector<SpilledEntry> restore_scratch;
  size_t spilled_partitions = 0;
  size_t pending_fault_events = 0;
  /// Most recently faulted partition: skipped by victim selection (unless
  /// it is the only candidate) so a fault-in is not immediately undone.
  size_t last_faulted = SIZE_MAX;
  uint64_t faults = 0;
  uint64_t entries_spilled_total = 0;
};

StemStorage::StemStorage(std::string table_name, Simulation* sim, bool pooled)
    : table_name_(std::move(table_name)), sim_(sim), pooled_(pooled) {}

StemStorage::~StemStorage() = default;

void StemStorage::Attach(Stem* facade) { attached_.push_back(facade); }

void StemStorage::Detach(Stem* facade) {
  attached_.erase(std::remove(attached_.begin(), attached_.end(), facade),
                  attached_.end());
  if (spill_ != nullptr) {
    // A fault the facade requested may still be in flight; clear the
    // attribution slot so CompleteFaultIn never compares (or bills) a
    // dangling pointer — a later query's facade could be allocated at the
    // same address and silently inherit the restore I/O.
    for (Stem*& requester : spill_->fault_requester) {
      if (requester == facade) requester = nullptr;
    }
  }
}

void StemStorage::Insert(RowRef row, BuildTs stored_ts) {
  const uint32_t id = static_cast<uint32_t>(entries_.size());
  for (auto& [col, index] : indexes_) {
    index->Insert(row->value(col), id);
  }
  if (spill_ != nullptr) {
    const size_t p = SpillPartitionOfRow(*row);
    ++spill_->live_in_partition[p];
    spill_->ids_in_partition[p].push_back(id);
    spill_->run_valid[p] = 0;  // memory diverges from any retained run
  }
  dedup_.insert(row);
  entries_.push_back(Entry{std::move(row), stored_ts});
  ++live_entries_;
}

size_t StemStorage::EvictOldest(size_t n) {
  if (pooled_) return 0;  // shared state is never windowed (docs/sharing.md)
  size_t evicted = 0;
  while (evicted < n && next_eviction_ < entries_.size()) {
    Entry& victim = entries_[next_eviction_++];
    if (victim.row == nullptr) continue;  // already a tombstone
    if (spill_ != nullptr) {
      const size_t p = SpillPartitionOfRow(*victim.row);
      if (spill_->live_in_partition[p] > 0) --spill_->live_in_partition[p];
      spill_->run_valid[p] = 0;  // a retained run would resurrect the row
    }
    dedup_.erase(victim.row);
    victim.row = nullptr;  // tombstone; index ids skip it at lookup
    --live_entries_;
    ++evicted;
  }
  return evicted;
}

// --- spill -------------------------------------------------------------------

void StemStorage::EnableSpill(BufferPool* pool, const SpillOptions& options,
                              int part_col) {
  if (spill_ != nullptr) return;
  spill_ = std::make_unique<Spill>();
  Spill& s = *spill_;
  s.pool = pool;
  s.options = options;
  s.part_col = part_col;
  const size_t n =
      part_col < 0 ? 1 : (options.partitions == 0 ? 1 : options.partitions);
  s.file = std::make_unique<SpillFile>(pool, n, options.page_entries);
  s.resident.assign(n, 1);
  s.live_in_partition.assign(n, 0);
  s.probe_counts.assign(n, 0);
  s.run_valid.assign(n, 0);
  s.fault_scheduled.assign(n, 0);
  s.waiters.assign(n, 0);
  s.fault_requester.assign(n, nullptr);
  s.ids_in_partition.assign(n, {});
  for (uint32_t id = 0; id < entries_.size(); ++id) {
    if (entries_[id].row == nullptr) continue;
    const size_t p = SpillPartitionOfRow(*entries_[id].row);
    ++s.live_in_partition[p];
    s.ids_in_partition[p].push_back(id);
  }
}

SpillProbePolicy StemStorage::spill_probe_policy() const {
  return spill_ == nullptr ? SpillProbePolicy::kFaultIn
                           : spill_->options.probe_policy;
}

uint32_t StemStorage::max_probe_deferrals() const {
  return spill_ == nullptr ? 0 : spill_->options.max_probe_deferrals;
}

int StemStorage::spill_part_col() const {
  return spill_ == nullptr ? -1 : spill_->part_col;
}

size_t StemStorage::num_spill_partitions() const {
  return spill_ == nullptr ? 0 : spill_->resident.size();
}

bool StemStorage::PartitionResident(size_t p) const {
  return spill_ == nullptr || spill_->resident[p] != 0;
}

size_t StemStorage::SpillPartitionOfRow(const Row& row) const {
  if (spill_ == nullptr || spill_->part_col < 0) return 0;
  return row.value(static_cast<size_t>(spill_->part_col)).Hash() %
         spill_->resident.size();
}

void StemStorage::CountProbe(size_t p) {
  if (spill_ != nullptr) ++spill_->probe_counts[p];
}

StemStorage::SpillResult StemStorage::SpillColdestPartition() {
  SpillResult out;
  if (spill_ == nullptr) return out;
  Spill& s = *spill_;
  const size_t nparts = s.resident.size();
  // Partitions a probe is waiting on (deferred behind a fault-in, or the
  // read is already scheduled) must not be spilled back out from under it.
  auto demanded = [&s](size_t p) {
    return s.fault_scheduled[p] != 0 || s.waiters[p] > 0;
  };
  size_t victim = SIZE_MAX;
  double victim_heat = 0;
  for (size_t p = 0; p < nparts; ++p) {
    if (!s.resident[p] || s.live_in_partition[p] == 0) continue;
    if (p == s.last_faulted) continue;  // anti-thrash: not right back out
    if (demanded(p)) continue;
    const double heat = static_cast<double>(s.probe_counts[p]) /
                        static_cast<double>(s.live_in_partition[p]);
    if (victim == SIZE_MAX || heat < victim_heat ||
        (heat == victim_heat &&
         s.live_in_partition[p] > s.live_in_partition[victim])) {
      victim = p;
      victim_heat = heat;
    }
  }
  if (victim == SIZE_MAX && s.last_faulted < nparts &&
      s.resident[s.last_faulted] && s.live_in_partition[s.last_faulted] > 0 &&
      !demanded(s.last_faulted)) {
    // Sole candidate beats an unenforced budget — unless probes wait on it.
    victim = s.last_faulted;
  }
  if (victim == SIZE_MAX) return out;

  const uint64_t ios_before = s.file->disk_ios();
  const uint64_t bytes_before = s.file->bytes_written();
  // Clean partition (faulted in earlier, unmodified since): the run file
  // already holds exactly this content, so spilling is dropping the memory
  // copy — zero I/O. Otherwise rewrite the run and flush it.
  const bool clean = s.run_valid[victim] &&
                     s.file->EntriesIn(victim) == s.live_in_partition[victim];
  if (!clean) s.file->ClearPartition(victim);
  for (uint32_t id : s.ids_in_partition[victim]) {
    Entry& entry = entries_[id];
    if (entry.row == nullptr) continue;  // evicted or stale since listed
    if (!clean) out.cost += s.file->Append(victim, entry.row, entry.ts);
    entry.row = nullptr;  // tombstone; dedup_ keeps the row's identity
    --live_entries_;
    ++out.entries;
  }
  s.ids_in_partition[victim].clear();
  if (!clean) {
    out.cost += s.file->FlushPartition(victim);  // run durably on disk
  }
  s.run_valid[victim] = 1;
  s.live_in_partition[victim] = 0;
  s.resident[victim] = 0;
  ++s.spilled_partitions;
  s.entries_spilled_total += out.entries;
  out.ios = s.file->disk_ios() - ios_before;
  out.bytes = s.file->bytes_written() - bytes_before;
  return out;
}

StemStorage::SpillResult StemStorage::RestorePartitionLocked(size_t p) {
  Spill& s = *spill_;
  SpillResult out;
  if (s.resident[p]) return out;
  const uint64_t ios_before = s.file->disk_ios();
  s.restore_scratch.clear();
  out.cost = s.file->ReadAll(p, &s.restore_scratch);
  s.resident[p] = 1;
  --s.spilled_partitions;
  out.entries = s.restore_scratch.size();
  for (SpilledEntry& e : s.restore_scratch) {
    Insert(std::move(e.row), e.ts);
  }
  s.restore_scratch.clear();
  // The run is retained and, right after restoring, equals the in-memory
  // partition (Insert cleared the flag; re-arm it last).
  s.run_valid[p] = 1;
  s.last_faulted = p;
  ++s.faults;
  out.ios = s.file->disk_ios() - ios_before;
  return out;
}

StemStorage::SpillResult StemStorage::FaultInPartition(size_t p) {
  if (spill_ == nullptr) return {};
  return RestorePartitionLocked(p);
}

StemStorage::SpillResult StemStorage::AppendToSpilledPartition(
    size_t p, RowRef row, BuildTs stored_ts) {
  Spill& s = *spill_;
  assert(!s.resident[p]);
  SpillResult out;
  const uint64_t ios_before = s.file->disk_ios();
  const uint64_t bytes_before = s.file->bytes_written();
  dedup_.insert(row);
  out.entries = 1;
  out.cost = s.file->Append(p, std::move(row), stored_ts);
  out.ios = s.file->disk_ios() - ios_before;
  out.bytes = s.file->bytes_written() - bytes_before;
  return out;
}

void StemStorage::AddSpillWaiter(size_t p) {
  if (spill_ != nullptr) ++spill_->waiters[p];
}

void StemStorage::RemoveSpillWaiter(size_t p) {
  if (spill_ != nullptr && spill_->waiters[p] > 0) --spill_->waiters[p];
}

void StemStorage::ScheduleFaultIn(const std::vector<size_t>& parts,
                                  Stem* requester) {
  Spill& s = *spill_;
  for (size_t p : parts) {
    if (s.resident[p] || s.fault_scheduled[p]) continue;
    s.fault_scheduled[p] = 1;
    s.fault_requester[p] = requester;
    ++s.pending_fault_events;
    // The event delay models the asynchronous read; pool bookkeeping (and
    // page caching) happens at completion. Never zero, so a defer/fault
    // cycle always advances virtual time. The closure keeps the storage
    // alive: a query may detach (even be destroyed) before the read lands.
    const SimTime delay =
        std::max<SimTime>(Micros(1), s.file->EstimateRestoreCost(p));
    sim_->Schedule(delay, [self = shared_from_this(), p] {
      self->CompleteFaultIn(p);
    });
  }
}

void StemStorage::CompleteFaultIn(size_t p) {
  Spill& s = *spill_;
  assert(s.pending_fault_events > 0);
  --s.pending_fault_events;
  s.fault_scheduled[p] = 0;
  Stem* requester = s.fault_requester[p];
  s.fault_requester[p] = nullptr;
  const SpillResult restored =
      RestorePartitionLocked(p);  // no-op if faulted in meanwhile
  if (requester != nullptr &&
      std::find(attached_.begin(), attached_.end(), requester) !=
          attached_.end()) {
    requester->AttributeAsyncRestore(restored);
  }
  // Every attached query gets to re-emit its probes deferred behind this
  // partition; queries without waiters ignore the callback.
  for (Stem* facade : attached_) {
    facade->OnPartitionFaulted(p);
  }
}

size_t StemStorage::partitions_spilled() const {
  return spill_ == nullptr ? 0 : spill_->spilled_partitions;
}

size_t StemStorage::partitions_resident() const {
  if (spill_ == nullptr) return 0;
  return spill_->resident.size() - spill_->spilled_partitions;
}

uint64_t StemStorage::entries_spilled() const {
  if (spill_ == nullptr) return 0;
  // Only non-resident partitions' runs hold entries that are *not* in
  // memory (resident partitions may retain a clean run as a copy).
  uint64_t n = 0;
  for (size_t p = 0; p < spill_->resident.size(); ++p) {
    if (!spill_->resident[p]) n += spill_->file->EntriesIn(p);
  }
  return n;
}

uint64_t StemStorage::spill_faults() const {
  return spill_ == nullptr ? 0 : spill_->faults;
}

size_t StemStorage::pending_fault_events() const {
  return spill_ == nullptr ? 0 : spill_->pending_fault_events;
}

SimTime StemStorage::ExpectedProbeSpillCost() const {
  if (spill_ == nullptr || spill_->spilled_partitions == 0) return 0;
  const Spill& s = *spill_;
  // P(the probe's partition is spilled) × mean pages per spilled partition
  // × expected page read cost.
  const double frac = static_cast<double>(s.spilled_partitions) /
                      static_cast<double>(s.resident.size());
  const size_t page_entries =
      s.options.page_entries == 0 ? 1 : s.options.page_entries;
  const double pages_per_part =
      static_cast<double>((entries_spilled() + page_entries - 1) /
                          page_entries) /
      static_cast<double>(s.spilled_partitions);
  return static_cast<SimTime>(frac * pages_per_part *
                              static_cast<double>(s.pool->ExpectedReadCost()));
}

}  // namespace stems
