// RoutingPolicy: the eddy's pluggable brain (paper §2.1.1, §4.1).
//
// The eddy asks the policy where to send each tuple next. Policies decide
// join orders, join algorithms, access-method choice and spanning trees —
// all the adaptation the paper describes happens here. Correctness does not
// depend on the policy: the routing constraints of Table 2 are enforced by
// the SteMs/AMs internally and audited by the eddy's ConstraintChecker.
#pragma once

#include <string>
#include <vector>

#include "eddy/tuple_batch.h"
#include "runtime/module.h"
#include "runtime/tuple.h"

namespace stems {

class Eddy;

/// What the eddy should do with a tuple.
struct RouteDecision {
  enum class Kind {
    kSend,    ///< deliver to `dest`
    kRetire,  ///< remove from the dataflow
    kPark,    ///< hold until the SteM serving `park_slot` changes
  };

  Kind kind = Kind::kRetire;
  Module* dest = nullptr;
  RouteIntent intent = RouteIntent::kAuto;
  int target_slot = -1;
  bool exclude_equal_ts = false;
  int park_slot = -1;

  static RouteDecision Send(Module* dest, RouteIntent intent,
                            int target_slot = -1,
                            bool exclude_equal_ts = false) {
    RouteDecision d;
    d.kind = Kind::kSend;
    d.dest = dest;
    d.intent = intent;
    d.target_slot = target_slot;
    d.exclude_equal_ts = exclude_equal_ts;
    return d;
  }
  static RouteDecision Retire() { return RouteDecision{}; }
  static RouteDecision Park(int slot) {
    RouteDecision d;
    d.kind = Kind::kPark;
    d.park_slot = slot;
    return d;
  }
};

class RoutingPolicy {
 public:
  virtual ~RoutingPolicy() = default;

  virtual const char* name() const = 0;

  /// Called once, after all modules are registered.
  virtual void Attach(Eddy* eddy) { eddy_ = eddy; }

  /// Chooses the next step for `tuple`. The eddy has already handled
  /// output-eligible tuples, seeds and EOTs.
  virtual RouteDecision Route(const TuplePtr& tuple) = 0;

  /// Chooses the next step for every tuple of `batch` (one decision per
  /// tuple, in order). Called by the eddy when it routes in batches
  /// (EddyOptions::batch_size > 1). The default simply loops the scalar
  /// Route(), so every policy keeps working unchanged; batch-aware policies
  /// override this to amortize one decision across tuples with a
  /// homogeneous lineage (see PolicyBase).
  virtual void ChooseBatch(const TupleBatch& batch,
                           std::vector<RouteDecision>* out) {
    out->clear();
    out->reserve(batch.size());
    for (const TuplePtr& t : batch.tuples) out->push_back(Route(t));
  }

  // --- observability (src/obs/trace.h) --------------------------------------

  /// The eddy turns this on just for decisions a tracer sampled; policies
  /// that compute numeric scores then describe them via
  /// LastDecisionScores(). Off by default so the hot path never formats.
  void set_score_tracing(bool on) {
    score_tracing_ = on;
    if (on) OnScoreTracingStart();
  }

  /// Scores behind the most recent Route()/ChooseBatch() decision, as a
  /// short "slot=N:<score>" list. Empty when untraced or when the policy
  /// has no numeric scores (e.g. the static nary_shj ordering).
  virtual const std::string& LastDecisionScores() const {
    static const std::string kEmpty;
    return kEmpty;
  }

 protected:
  bool score_tracing() const { return score_tracing_; }

  /// Called when score tracing turns on for the next decision; policies
  /// clear their previous scores here so a scoreless decision (e.g. a
  /// pre-decided build) never reports stale terms.
  virtual void OnScoreTracingStart() {}

  Eddy* eddy_ = nullptr;
  bool score_tracing_ = false;
};

}  // namespace stems
