// ConstraintChecker: audits routing decisions against paper Table 2.
//
// The SteM BounceBack and TimeStamp constraints live inside the SteM/AM
// implementations ("the routing policy implementor need not be aware of
// them at all", §3.5). The remaining constraints — BuildFirst,
// ProbeCompletion, BoundedRepetition — restrict the *policy*; this checker
// validates every decision the policy makes, so tests can prove that a
// policy is correct-by-routing and that deliberately broken policies are
// caught.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "eddy/routing_policy.h"
#include "runtime/query_context.h"

namespace stems {

class Eddy;

enum class ConstraintMode {
  kOff,     ///< no checking
  kRecord,  ///< record violations, allow the route (default; tests assert 0)
  kStrict,  ///< abort on violation (debugging)
};

struct ConstraintViolation {
  std::string constraint;
  std::string detail;
};

class ConstraintChecker {
 public:
  ConstraintChecker(const Eddy* eddy, ConstraintMode mode,
                    uint32_t max_routes_per_tuple);

  /// Audits one decision; returns true if it is legal. Illegal decisions
  /// are recorded (kRecord) or fatal (kStrict).
  bool Check(const Tuple& tuple, const RouteDecision& decision);

  const std::vector<ConstraintViolation>& violations() const {
    return violations_;
  }
  ConstraintMode mode() const { return mode_; }

 private:
  void Report(const Tuple& tuple, const char* constraint, std::string detail);

  bool CheckSend(const Tuple& tuple, const RouteDecision& decision);
  bool CheckRetire(const Tuple& tuple);

  const Eddy* eddy_;
  ConstraintMode mode_;
  uint32_t max_routes_per_tuple_;
  std::vector<ConstraintViolation> violations_;
};

}  // namespace stems
