#include "eddy/constraints.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

#include "eddy/eddy.h"

namespace stems {

ConstraintChecker::ConstraintChecker(const Eddy* eddy, ConstraintMode mode,
                                     uint32_t max_routes_per_tuple)
    : eddy_(eddy), mode_(mode), max_routes_per_tuple_(max_routes_per_tuple) {}

void ConstraintChecker::Report(const Tuple& tuple, const char* constraint,
                               std::string detail) {
  if (mode_ == ConstraintMode::kOff) return;
  detail += " [tuple " + tuple.ToString() + "]";
  if (mode_ == ConstraintMode::kStrict) {
    std::fprintf(stderr, "Routing constraint violated: %s: %s\n", constraint,
                 detail.c_str());
    std::abort();
  }
  violations_.push_back({constraint, std::move(detail)});
}

bool ConstraintChecker::Check(const Tuple& tuple,
                              const RouteDecision& decision) {
  if (mode_ == ConstraintMode::kOff) return true;

  if (tuple.route_count() > max_routes_per_tuple_) {
    Report(tuple, "BoundedRepetition", "tuple exceeded max routing steps");
    return false;
  }

  switch (decision.kind) {
    case RouteDecision::Kind::kSend:
      return CheckSend(tuple, decision);
    case RouteDecision::Kind::kRetire:
      return CheckRetire(tuple);
    case RouteDecision::Kind::kPark: {
      // Parking is only meaningful for prior probers awaiting their
      // completion table's SteM.
      if (!tuple.IsPriorProber() ||
          decision.park_slot != tuple.probe_completion_slot()) {
        Report(tuple, "ProbeCompletion",
               "parked on a slot that is not the probe completion table");
        return false;
      }
      return true;
    }
  }
  return true;
}

bool ConstraintChecker::CheckSend(const Tuple& tuple,
                                  const RouteDecision& decision) {
  Module* dest = decision.dest;
  if (dest == nullptr) {
    Report(tuple, "Routing", "kSend with null destination");
    return false;
  }

  const QuerySpec& query = eddy_->query();

  // ProbeCompletion (Table 2): a prior prober may only go to its probe
  // completion table's AMs, that table's SteM (a §3.5 re-probe), or
  // selection modules.
  if (tuple.IsPriorProber()) {
    const int cslot = tuple.probe_completion_slot();
    const std::string& ctable = query.slots()[cslot].table_name;
    switch (dest->kind()) {
      case ModuleKind::kSelection:
        break;
      case ModuleKind::kStem: {
        auto* stem = static_cast<Stem*>(dest);
        if (stem->table_name() != ctable) {
          Report(tuple, "ProbeCompletion",
                 "prior prober routed to SteM(" + stem->table_name() +
                     ") instead of its completion table " + ctable);
          return false;
        }
        break;
      }
      case ModuleKind::kIndexAm:
      case ModuleKind::kScanAm: {
        auto* am = static_cast<AccessModule*>(dest);
        if (am->table_name() != ctable) {
          Report(tuple, "ProbeCompletion",
                 "prior prober routed to AM on " + am->table_name() +
                     " instead of its completion table " + ctable);
          return false;
        }
        break;
      }
      case ModuleKind::kOperator:
        break;
    }
  }

  // Singleton-specific rules.
  const int slot = tuple.SingletonSlot();
  const bool unbuilt_singleton =
      slot >= 0 && !tuple.is_seed() &&
      tuple.component(slot).timestamp == kTsInfinity;

  if (unbuilt_singleton && !tuple.IsEot()) {
    const bool build_required = eddy_->BuildRequired(slot);
    const bool dest_is_own_stem_build =
        dest->kind() == ModuleKind::kStem &&
        static_cast<Stem*>(dest)->ServesSlot(slot) &&
        decision.intent != RouteIntent::kProbe;
    const bool dest_is_sm = dest->kind() == ModuleKind::kSelection;
    if (build_required && !dest_is_own_stem_build && !dest_is_sm) {
      // BuildFirst (Table 2): before probing anything, a singleton from a
      // table with multiple AMs or an index AM must build into its SteM.
      // (Selections first are harmless and permitted, as in CACQ.)
      Report(tuple, "BuildFirst",
             "unbuilt singleton of slot " + std::to_string(slot) +
                 " routed to " + dest->name() + " before building");
      return false;
    }
    if (!build_required && !dest_is_own_stem_build && !dest_is_sm &&
        !eddy_->options().relax_build_first) {
      Report(tuple, "BuildFirst",
             "unbuilt singleton probe requires relax_build_first (§3.5)");
      return false;
    }
  }

  // Index AMs accept only tuples that need them: prior probers completing
  // their probe (the paper's Fig. 4 flow). Anything else cannot have come
  // from a SteM bounce and risks missing results.
  if (dest->kind() == ModuleKind::kIndexAm && !tuple.IsPriorProber()) {
    Report(tuple, "ProbeCompletion",
           "non-prior-prober routed to index AM " + dest->name());
    return false;
  }

  // Scan AMs accept only seeds.
  if (dest->kind() == ModuleKind::kScanAm && !tuple.is_seed()) {
    Report(tuple, "Routing", "non-seed tuple routed to scan AM");
    return false;
  }

  // SteM probes must target a slot the tuple does not span.
  if (dest->kind() == ModuleKind::kStem &&
      decision.intent == RouteIntent::kProbe) {
    if (decision.target_slot >= 0 && tuple.Spans(decision.target_slot)) {
      Report(tuple, "Routing", "probe targets a slot the tuple spans");
      return false;
    }
  }

  return true;
}

bool ConstraintChecker::CheckRetire(const Tuple& tuple) {
  // ProbeCompletion (Table 2): a prior prober can be removed only after
  // probing one of its completion AMs — unless the bounce was optional
  // (its completion table has a scan AM feeding the shared SteM, so the
  // missing matches will still rendezvous through the SteMs), or no
  // completion AM can bind the tuple at all (theta-joined index-only
  // table: its residual matches are unreachable by construction and are
  // generated by the other side's probes instead).
  if (tuple.IsPriorProber() && !tuple.probe_completed()) {
    const int cslot = tuple.probe_completion_slot();
    const TableDef* def = eddy_->query().slots()[cslot].def;
    if (def->HasScanAm() && tuple.AllComponentsBuilt()) return true;
    bool bindable = false;
    for (IndexAm* am : eddy_->IndexAmsForSlot(cslot)) {
      if (!am->ExtractBindValues(tuple, cslot).empty()) {
        bindable = true;
        break;
      }
    }
    if (bindable || (def->HasScanAm() && !tuple.AllComponentsBuilt())) {
      Report(tuple, "ProbeCompletion",
             "prior prober retired before probing a completion AM on '" +
                 def->name + "'");
      return false;
    }
  }
  return true;
}

}  // namespace stems
