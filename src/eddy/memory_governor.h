// MemoryGovernor: global memory control across SteMs (paper §6).
//
// "Since SteMs encapsulate the data structures, and communicate directly
// with the eddy, they enable the eddy to observe and control memory
// resource utilization across all modules in the query. The eddy can make
// memory allocation decisions in a globally optimal manner, possibly based
// on overall memory availability as well as relative frequency of probes
// into each SteM."
//
// The governor holds a global entry budget over all SteMs of a query. When
// the total exceeds the budget it shrinks one SteM at a time, chosen by a
// victim policy:
//   kLargestFirst — evict from the biggest SteM (balances sizes);
//   kColdestFirst — evict from the SteM with the fewest probes per entry
//                   (keep hot lookup state, evict bulk state);
//   kSpillColdest — *spill* the coldest SteM's coldest hash partition to
//                   its run file (src/spill/) instead of evicting. Results
//                   stay exact: spilled state is faulted back in on demand,
//                   priced through the simulation's disk latency model.
//
// Eviction turns the affected join into a window join over that table, so
// the evicting policies are meant for continuous queries / sliding-window
// scenarios (CACQ/PSoup); kSpillColdest is the larger-than-memory mode.
//
// When no watched SteM can shrink any further (everything spillable is
// already spilled, or spill is disabled and nothing is evictable) the
// governor logs once and bails out instead of spinning; it re-arms after
// the next successful shrink.
#pragma once

#include <cstdint>
#include <vector>

#include "common/logging.h"
#include "stem/stem.h"

namespace stems {

enum class MemoryVictimPolicy { kLargestFirst, kColdestFirst, kSpillColdest };

struct MemoryGovernorOptions {
  /// Total live in-memory entries allowed across all SteMs (0 = unlimited).
  size_t global_entry_budget = 0;
  MemoryVictimPolicy victim_policy = MemoryVictimPolicy::kLargestFirst;
  /// Evict in chunks to amortize governor invocations (eviction policies
  /// only; spilling works at whole-partition granularity).
  size_t eviction_batch = 16;
};

class MemoryGovernor {
 public:
  explicit MemoryGovernor(MemoryGovernorOptions options)
      : options_(options) {}

  /// Registers a SteM to govern (the eddy does this as SteMs register).
  void Watch(Stem* stem) {
    stems_.push_back(stem);
    spilled_by_stem_.push_back(0);
  }

  size_t TotalEntries() const {
    size_t n = 0;
    for (const Stem* s : stems_) n += s->num_entries();
    return n;
  }

  uint64_t total_evicted() const { return total_evicted_; }
  uint64_t total_spilled() const { return total_spilled_; }

  /// Per-SteM spill accounting: entries this governor moved out of memory
  /// from each watched SteM, in Watch() order.
  const std::vector<Stem*>& watched() const { return stems_; }
  const std::vector<uint64_t>& spilled_by_stem() const {
    return spilled_by_stem_;
  }

  /// Enforces the budget; called by the eddy after SteM growth. Tries
  /// victims in score order until the budget holds; if no victim can
  /// shrink, logs (once, until progress resumes) and bails out.
  void Rebalance() {
    if (options_.global_entry_budget == 0 || stems_.empty()) return;
    while (TotalEntries() > options_.global_entry_budget) {
      tried_.clear();
      size_t shrunk = 0;
      while (shrunk == 0) {
        const int victim = PickVictim();
        if (victim < 0) break;
        shrunk = Shrink(victim);
        tried_.push_back(stems_[victim]);
      }
      if (shrunk == 0) {
        if (!stall_logged_) {
          STEMS_LOG(Warning)
              << "MemoryGovernor: entry budget "
              << options_.global_entry_budget << " unreachable ("
              << TotalEntries()
              << " resident entries; no SteM can shrink further)";
          stall_logged_ = true;
        }
        return;
      }
      stall_logged_ = false;
    }
  }

 private:
  size_t Shrink(int victim_index) {
    Stem* victim = stems_[victim_index];
    if (options_.victim_policy == MemoryVictimPolicy::kSpillColdest) {
      const size_t spilled = victim->SpillColdestPartition();
      total_spilled_ += spilled;
      spilled_by_stem_[victim_index] += spilled;
      return spilled;
    }
    const size_t over = TotalEntries() - options_.global_entry_budget;
    const size_t chunk =
        over < options_.eviction_batch ? over : options_.eviction_batch;
    const size_t evicted = victim->EvictOldest(chunk);
    total_evicted_ += evicted;
    return evicted;
  }

  /// Index of the best not-yet-tried victim this round; -1 when none left.
  int PickVictim() const {
    int best = -1;
    double best_score = -1;
    for (size_t i = 0; i < stems_.size(); ++i) {
      Stem* s = stems_[i];
      if (s->num_entries() == 0) continue;
      bool tried = false;
      for (const Stem* t : tried_) {
        if (t == s) {
          tried = true;
          break;
        }
      }
      if (tried) continue;
      double score = 0;
      switch (options_.victim_policy) {
        case MemoryVictimPolicy::kLargestFirst:
          score = static_cast<double>(s->num_entries());
          break;
        case MemoryVictimPolicy::kColdestFirst:
        case MemoryVictimPolicy::kSpillColdest: {
          // Fewest probes per stored entry = coldest.
          const double probes_per_entry =
              static_cast<double>(s->probes_processed()) /
              static_cast<double>(s->num_entries());
          score = 1.0 / (probes_per_entry + 1e-9);
          break;
        }
      }
      if (score > best_score) {
        best_score = score;
        best = static_cast<int>(i);
      }
    }
    return best;
  }

  MemoryGovernorOptions options_;
  std::vector<Stem*> stems_;
  std::vector<uint64_t> spilled_by_stem_;
  std::vector<Stem*> tried_;  ///< victims that failed to shrink this round
  uint64_t total_evicted_ = 0;
  uint64_t total_spilled_ = 0;
  bool stall_logged_ = false;
};

}  // namespace stems
