// MemoryGovernor: global memory control across SteMs (paper §6).
//
// "Since SteMs encapsulate the data structures, and communicate directly
// with the eddy, they enable the eddy to observe and control memory
// resource utilization across all modules in the query. The eddy can make
// memory allocation decisions in a globally optimal manner, possibly based
// on overall memory availability as well as relative frequency of probes
// into each SteM."
//
// The governor holds a global entry budget over all SteMs of a query. When
// the total exceeds the budget it evicts from one SteM at a time, chosen by
// a victim policy:
//   kLargestFirst — shrink the biggest SteM (balances sizes);
//   kColdestFirst — shrink the SteM with the fewest probes per entry (keep
//                   hot lookup state, evict bulk state).
//
// Eviction turns the affected join into a window join over that table, so
// the governor is meant for continuous queries / memory-pressure scenarios,
// mirroring the sliding-window use of SteMs in CACQ/PSoup.
#pragma once

#include <cstdint>
#include <vector>

#include "stem/stem.h"

namespace stems {

enum class MemoryVictimPolicy { kLargestFirst, kColdestFirst };

struct MemoryGovernorOptions {
  /// Total live entries allowed across all SteMs (0 = unlimited).
  size_t global_entry_budget = 0;
  MemoryVictimPolicy victim_policy = MemoryVictimPolicy::kLargestFirst;
  /// Evict in chunks to amortize governor invocations.
  size_t eviction_batch = 16;
};

class MemoryGovernor {
 public:
  explicit MemoryGovernor(MemoryGovernorOptions options)
      : options_(options) {}

  /// Registers a SteM to govern (the eddy does this as SteMs register).
  void Watch(Stem* stem) { stems_.push_back(stem); }

  size_t TotalEntries() const {
    size_t n = 0;
    for (const Stem* s : stems_) n += s->num_entries();
    return n;
  }

  uint64_t total_evicted() const { return total_evicted_; }

  /// Enforces the budget; called by the eddy after SteM growth.
  void Rebalance() {
    if (options_.global_entry_budget == 0 || stems_.empty()) return;
    while (TotalEntries() > options_.global_entry_budget) {
      Stem* victim = PickVictim();
      if (victim == nullptr) return;
      const size_t over = TotalEntries() - options_.global_entry_budget;
      const size_t chunk =
          over < options_.eviction_batch ? over : options_.eviction_batch;
      const size_t evicted = victim->EvictOldest(chunk);
      total_evicted_ += evicted;
      if (evicted == 0) return;  // nothing evictable
    }
  }

 private:
  Stem* PickVictim() const {
    Stem* best = nullptr;
    double best_score = -1;
    for (Stem* s : stems_) {
      if (s->num_entries() == 0) continue;
      double score = 0;
      switch (options_.victim_policy) {
        case MemoryVictimPolicy::kLargestFirst:
          score = static_cast<double>(s->num_entries());
          break;
        case MemoryVictimPolicy::kColdestFirst: {
          // Fewest probes per stored entry = coldest.
          const double probes_per_entry =
              static_cast<double>(s->probes_processed()) /
              static_cast<double>(s->num_entries());
          score = 1.0 / (probes_per_entry + 1e-9);
          break;
        }
      }
      if (score > best_score) {
        best_score = score;
        best = s;
      }
    }
    return best;
  }

  MemoryGovernorOptions options_;
  std::vector<Stem*> stems_;
  uint64_t total_evicted_ = 0;
};

}  // namespace stems
