// BenefitCostPolicy: the paper's §4.1 online-metric routing policy.
//
// The eddy routes so as to maximize benefit(tuple-state, module) divided by
// expected processing time, where benefit is the expected value of partial
// results the module will emit. As in the paper, the optimization is done
// at the granularity of (module, tuple span) using continuously observed
// statistics, with a small exploration probability so alternatives keep
// being sampled.
//
// Two behaviours distinguish this policy:
//   * optional bounces (index+scan tables, ProbeBounceMode::kAlways) are
//     resolved by comparing the ETA of the match through the index AM
//     (queue + latency) against the ETA through the ongoing scan — this is
//     what hybridizes index join into hash join during execution (§4.3),
//     with cache-miss probes (last_probe_matches == 0) preferred;
//   * prioritized tuples are always expedited through index AMs (§4.1).
#pragma once

#include "common/rng.h"
#include "eddy/policies/policy_base.h"

namespace stems {

struct BenefitCostPolicyOptions {
  uint64_t seed = 42;
  /// Probability of exploring a non-best destination / an index AM probe
  /// that the cost model would decline.
  double explore_epsilon = 0.05;
  /// Optimism for unobserved destinations (expected matches per probe).
  double prior_matches = 1.0;
};

class BenefitCostPolicy : public PolicyBase {
 public:
  explicit BenefitCostPolicy(BenefitCostPolicyOptions options = {})
      : options_(options), rng_(options.seed) {}

  const char* name() const override { return "benefit-cost"; }

  const std::string& LastDecisionScores() const override {
    return last_scores_;
  }

 protected:
  void OnScoreTracingStart() override { last_scores_.clear(); }

  /// §4.1 statistics move slowly relative to a batch: sharing one
  /// benefit/cost evaluation across a homogeneous-lineage group trades a
  /// per-tuple re-evaluation (and its exploration draw) for one per group.
  bool AmortizeHomogeneousLineage() const override { return true; }

  int ChooseProbeSlot(const Tuple& tuple,
                      const std::vector<int>& candidates) override;
  IndexAm* ChooseIndexAm(const Tuple& tuple,
                         const std::vector<IndexAm*>& ams) override;
  bool ShouldProbeIndexAm(const Tuple& tuple,
                          const std::vector<IndexAm*>& ams) override;
  bool ShouldHedgeProbe(const Tuple& tuple,
                        const std::vector<IndexAm*>& unprobed) override;

 private:
  /// Expected virtual time for one probe through `am` right now.
  SimTime IndexAmEta(const IndexAm& am) const;
  /// Expected virtual time until an ongoing scan on `slot` delivers a given
  /// missing match; kSimTimeNever when no scan is running.
  SimTime ScanEta(int slot) const;

  BenefitCostPolicyOptions options_;
  Rng rng_;
  /// Per-slot benefit/cost terms of the last traced decision (score
  /// tracing only — empty and never touched on the untraced hot path).
  std::string last_scores_;
};

}  // namespace stems
