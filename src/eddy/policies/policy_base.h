// PolicyBase: the constraint-respecting routing skeleton shared by all
// built-in policies.
//
// PolicyBase encodes the generalized n-ary symmetric hash join flow of
// paper §2.3/§3 — build first, then probe adjacent SteMs, complete probes
// through index AMs, park §3.5 re-probers — and leaves the *choices* to
// subclasses:
//   * ChooseProbeSlot    — join ordering / spanning tree selection
//   * ChooseIndexAm      — competitive access method selection
//   * ShouldProbeIndexAm — whether an optional bounce is worth an index
//                          lookup (join algorithm hybridization, §4.3)
//   * SelectionsFirst    — selection pushdown vs. adaptive interleaving
#pragma once

#include <vector>

#include "eddy/eddy.h"
#include "eddy/routing_policy.h"

namespace stems {

class PolicyBase : public RoutingPolicy {
 public:
  RouteDecision Route(const TuplePtr& tuple) override;

  /// Batch routing with homogeneous-lineage amortization: when the subclass
  /// opts in (AmortizeHomogeneousLineage), the decision computed for the
  /// first tuple of each RouteLineage group is reused for the rest of the
  /// group, so one policy consultation covers the whole group. Seeds and
  /// prior probers always go through the scalar Route() (their decisions
  /// depend on per-tuple state beyond the lineage key).
  void ChooseBatch(const TupleBatch& batch,
                   std::vector<RouteDecision>* out) override;

 protected:
  /// Opt-in for ChooseBatch's decision sharing. Policies whose per-tuple
  /// randomness is the point (e.g. lottery scheduling) keep this off and
  /// still benefit from the eddy's batched event-queue hops.
  virtual bool AmortizeHomogeneousLineage() const { return false; }

  /// Picks the next SteM to probe from non-empty `candidates` (slots).
  virtual int ChooseProbeSlot(const Tuple& tuple,
                              const std::vector<int>& candidates) = 0;

  /// Picks one of the bindable index AMs on the completion table.
  virtual IndexAm* ChooseIndexAm(const Tuple& tuple,
                                 const std::vector<IndexAm*>& ams);

  /// For *optional* bounces (the completion table also has a scan AM):
  /// probe the index anyway, or retire and let the scan deliver the
  /// matches? Default: always use the index.
  virtual bool ShouldProbeIndexAm(const Tuple& tuple,
                                  const std::vector<IndexAm*>& ams) {
    (void)tuple;
    (void)ams;
    return true;
  }

  /// After a probe completed through one AM, hedge it through another
  /// bindable AM on the same table? (Competitive access methods, §3.2: the
  /// eddy can run multiple AMs for the same request and take whichever
  /// answers first — the shared SteM absorbs the overlap.) Default: no.
  virtual bool ShouldHedgeProbe(const Tuple& tuple,
                                const std::vector<IndexAm*>& unprobed) {
    (void)tuple;
    (void)unprobed;
    return false;
  }

  /// Route tuples through pending selection modules before SteM probes?
  virtual bool SelectionsFirst() const { return true; }

  /// Slots whose SteM `tuple` may probe next: unspanned, unprobed, joined
  /// to the tuple's span (falls back to unconnected slots for cross
  /// products).
  std::vector<int> ProbeCandidates(const Tuple& tuple) const;

 private:
  RouteDecision RoutePriorProber(const TuplePtr& tuple);
  /// Spawns the strict-timestamp retarget clone for self-joins, once.
  void MaybeSpawnRetargetClone(const TuplePtr& tuple);

  /// ChooseBatch's per-batch decision cache (member so the steady state
  /// allocates nothing; cleared at every batch).
  struct CachedDecision {
    RouteLineage key;
    RouteDecision decision;
  };
  std::vector<CachedDecision> batch_cache_;
};

}  // namespace stems
