#include "eddy/policies/nary_shj_policy.h"

namespace stems {

int NaryShjPolicy::ChooseProbeSlot(const Tuple& /*tuple*/,
                                   const std::vector<int>& candidates) {
  for (int preferred : probe_order_) {
    for (int c : candidates) {
      if (c == preferred) return c;
    }
  }
  int best = candidates.front();
  for (int c : candidates) {
    if (c < best) best = c;
  }
  return best;
}

}  // namespace stems
