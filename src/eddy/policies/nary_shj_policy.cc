#include "eddy/policies/nary_shj_policy.h"

#include "engine/policy_registry.h"

namespace stems {

STEMS_REGISTER_POLICY("nary_shj", [](const PolicyParams& p) {
  return std::make_unique<NaryShjPolicy>(p.probe_order);
});

int NaryShjPolicy::ChooseProbeSlot(const Tuple& /*tuple*/,
                                   const std::vector<int>& candidates) {
  for (int preferred : probe_order_) {
    for (int c : candidates) {
      if (c == preferred) return c;
    }
  }
  int best = candidates.front();
  for (int c : candidates) {
    if (c < best) best = c;
  }
  return best;
}

}  // namespace stems
