// LotteryPolicy: ticket-based adaptive routing in the spirit of the
// original eddy paper [2].
//
// Each probe-able SteM holds tickets. A SteM that returns few matches per
// probe (selective — it shrinks the dataflow) and has a short queue earns
// more tickets; destinations are drawn by lottery, so ordering decisions
// continuously follow observed selectivities and backpressure, per tuple.
// Index AMs are likewise chosen by lottery weighted by inverse backlog.
#pragma once

#include "common/rng.h"
#include "eddy/policies/policy_base.h"

namespace stems {

struct LotteryPolicyOptions {
  uint64_t seed = 42;
  /// Weight floor so every candidate keeps a nonzero chance (exploration).
  double min_weight = 0.05;
  /// Penalty exponent for queue length (backpressure sensitivity).
  double queue_penalty = 1.0;
};

class LotteryPolicy : public PolicyBase {
 public:
  explicit LotteryPolicy(LotteryPolicyOptions options = {})
      : options_(options), rng_(options.seed) {}

  const char* name() const override { return "lottery"; }

 protected:
  int ChooseProbeSlot(const Tuple& tuple,
                      const std::vector<int>& candidates) override;
  IndexAm* ChooseIndexAm(const Tuple& tuple,
                         const std::vector<IndexAm*>& ams) override;

 private:
  double StemWeight(const Stem& stem) const;

  LotteryPolicyOptions options_;
  Rng rng_;
};

}  // namespace stems
