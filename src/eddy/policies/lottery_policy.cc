#include "eddy/policies/lottery_policy.h"

#include <cmath>

#include "engine/policy_registry.h"

namespace stems {

STEMS_REGISTER_POLICY("lottery", [](const PolicyParams& p) {
  LotteryPolicyOptions o;
  o.seed = p.seed;
  o.min_weight = p.KnobOr("min_weight", o.min_weight);
  o.queue_penalty = p.KnobOr("queue_penalty", o.queue_penalty);
  return std::make_unique<LotteryPolicy>(o);
});

double LotteryPolicy::StemWeight(const Stem& stem) const {
  // Observed matches per probe: selective SteMs (fewer matches) win more
  // tickets, since probing them first shrinks intermediate results.
  const double probes =
      static_cast<double>(stem.probes_processed()) + 1.0;
  const double matches = static_cast<double>(stem.matches_emitted());
  const double selectivity = matches / probes;
  double weight = 1.0 / (0.1 + selectivity);
  // Backpressure: long queues lose tickets.
  weight /= std::pow(1.0 + static_cast<double>(stem.queue_length()),
                     options_.queue_penalty);
  return weight < options_.min_weight ? options_.min_weight : weight;
}

int LotteryPolicy::ChooseProbeSlot(const Tuple& /*tuple*/,
                                   const std::vector<int>& candidates) {
  double total = 0;
  std::vector<double> weights;
  weights.reserve(candidates.size());
  for (int slot : candidates) {
    const Stem* stem = eddy_->StemForSlot(slot);
    const double w = stem != nullptr ? StemWeight(*stem) : options_.min_weight;
    weights.push_back(w);
    total += w;
  }
  double draw = rng_.NextDouble() * total;
  for (size_t i = 0; i < candidates.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0) return candidates[i];
  }
  return candidates.back();
}

IndexAm* LotteryPolicy::ChooseIndexAm(const Tuple& /*tuple*/,
                                      const std::vector<IndexAm*>& ams) {
  // Competitive access method selection: weight inversely with the AM's
  // backlog and observed latency, keeping a floor so slow AMs still get
  // occasional probes (they may recover; paper §3.2).
  double total = 0;
  std::vector<double> weights;
  weights.reserve(ams.size());
  for (IndexAm* am : ams) {
    const double eta =
        static_cast<double>(am->MeanLookupLatency()) *
        (1.0 + static_cast<double>(am->outstanding() + am->queue_length()));
    double w = 1e6 / (eta + 1.0);
    if (w < options_.min_weight) w = options_.min_weight;
    weights.push_back(w);
    total += w;
  }
  double draw = rng_.NextDouble() * total;
  for (size_t i = 0; i < ams.size(); ++i) {
    draw -= weights[i];
    if (draw <= 0) return ams[i];
  }
  return ams.back();
}

}  // namespace stems
