// NaryShjPolicy: the paper's n-ary symmetric hash join as a routing policy
// (§2.3): build each arriving singleton into its SteM, then probe the other
// SteMs in a fixed order (ascending slot, or a caller-specified order).
//
// With every table scanned, this policy makes the eddy execute exactly the
// n-ary SHJ of Figure 2(iii); with index AMs present it generalizes to
// index joins via the bounce/probe-completion flow (Figure 4/6).
#pragma once

#include <vector>

#include "eddy/policies/policy_base.h"

namespace stems {

class NaryShjPolicy : public PolicyBase {
 public:
  NaryShjPolicy() = default;
  /// `probe_order` lists slots in preference order; unlisted slots come
  /// last in ascending order.
  explicit NaryShjPolicy(std::vector<int> probe_order)
      : probe_order_(std::move(probe_order)) {}

  const char* name() const override { return "nary-shj"; }

 protected:
  /// The probe order is a pure function of the tuple's lineage, so one
  /// decision serves every tuple of a homogeneous batch group.
  bool AmortizeHomogeneousLineage() const override { return true; }

  int ChooseProbeSlot(const Tuple& tuple,
                      const std::vector<int>& candidates) override;

 private:
  std::vector<int> probe_order_;
};

}  // namespace stems
