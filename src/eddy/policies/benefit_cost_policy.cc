#include "eddy/policies/benefit_cost_policy.h"

#include <cstdio>

#include "engine/policy_registry.h"

namespace stems {

STEMS_REGISTER_POLICY("benefit_cost", [](const PolicyParams& p) {
  BenefitCostPolicyOptions o;
  o.seed = p.seed;
  o.explore_epsilon = p.KnobOr("explore_epsilon", o.explore_epsilon);
  o.prior_matches = p.KnobOr("prior_matches", o.prior_matches);
  return std::make_unique<BenefitCostPolicy>(o);
});

int BenefitCostPolicy::ChooseProbeSlot(const Tuple& /*tuple*/,
                                       const std::vector<int>& candidates) {
  if (candidates.size() > 1 && rng_.NextBool(options_.explore_epsilon)) {
    return candidates[rng_.NextBounded(candidates.size())];
  }
  // benefit/cost: expected matches per probe over expected latency.
  int best = candidates.front();
  double best_score = -1;
  for (int slot : candidates) {
    const Stem* stem = eddy_->StemForSlot(slot);
    double matches_per_probe = options_.prior_matches;
    if (stem->probes_processed() > 0) {
      matches_per_probe = static_cast<double>(stem->matches_emitted()) /
                          static_cast<double>(stem->probes_processed());
    }
    // Spill-aware cost (§6): a SteM with spilled partitions makes probes
    // pay fault-in I/O, so its expected latency rises and the policy
    // prefers resident state while the spilled side stays cold.
    const double latency =
        stem->stats().MeanLatency() + 1.0 +
        static_cast<double>(stem->queue_length()) +
        static_cast<double>(stem->ExpectedProbeSpillCost());
    const double score = (matches_per_probe + 0.01) / latency;
    if (score_tracing()) {
      char buf[48];
      std::snprintf(buf, sizeof(buf), "%sslot=%d:%.4f",
                    last_scores_.empty() ? "" : " ", slot, score);
      last_scores_ += buf;
    }
    if (score > best_score) {
      best_score = score;
      best = slot;
    }
  }
  return best;
}

SimTime BenefitCostPolicy::IndexAmEta(const IndexAm& am) const {
  const SimTime latency = am.MeanLookupLatency();
  const int64_t backlog =
      static_cast<int64_t>(am.outstanding() + am.queue_length());
  return latency + latency * backlog;
}

SimTime BenefitCostPolicy::ScanEta(int slot) const {
  SimTime best = kSimTimeNever;
  for (const ScanAm* scan : eddy_->ScanAmsForSlot(slot)) {
    if (scan->finished()) continue;
    const size_t remaining = scan->total_rows() - scan->rows_emitted();
    if (remaining == 0) continue;
    // A missing match is uniformly placed among the remaining rows.
    const SimTime eta =
        scan->period() * static_cast<SimTime>((remaining + 1) / 2);
    if (eta < best) best = eta;
  }
  return best;
}

bool BenefitCostPolicy::ShouldProbeIndexAm(const Tuple& tuple,
                                           const std::vector<IndexAm*>& ams) {
  // §4.1: prioritized results are always expedited through the index.
  if (tuple.prioritized()) return true;

  // A probe that already found matches in the SteM cache usually has
  // nothing left to gain from the index (key joins: nothing at all); only
  // the exploration fraction goes through.
  const bool cache_hit = tuple.last_probe_matches() > 0;
  if (cache_hit) return rng_.NextBool(options_.explore_epsilon);

  // Cache miss: race the index AM against the ongoing scan and take the
  // faster expected path; occasionally explore the index regardless so its
  // cost estimate stays fresh (paper §4.3: "a small fraction ... throughout
  // the processing").
  SimTime best_am_eta = kSimTimeNever;
  for (const IndexAm* am : ams) {
    const SimTime eta = IndexAmEta(*am);
    if (eta < best_am_eta) best_am_eta = eta;
  }
  const SimTime scan_eta = ScanEta(tuple.probe_completion_slot());
  if (best_am_eta < scan_eta) return true;
  return rng_.NextBool(options_.explore_epsilon);
}

bool BenefitCostPolicy::ShouldHedgeProbe(const Tuple& tuple,
                                         const std::vector<IndexAm*>& unprobed) {
  // Hedge only when the SteM probe found nothing (the match must come from
  // an AM) and some untried mirror looks decisively faster than every AM
  // already probed — e.g. the first pick turned out to be stalled.
  if (tuple.last_probe_matches() > 0) return false;
  SimTime best_unprobed = kSimTimeNever;
  for (const IndexAm* am : unprobed) {
    const SimTime eta = IndexAmEta(*am);
    if (eta < best_unprobed) best_unprobed = eta;
  }
  SimTime best_probed = kSimTimeNever;
  const int cslot = tuple.probe_completion_slot();
  for (const IndexAm* am : eddy_->IndexAmsForSlot(cslot)) {
    if (!(tuple.probed_ams() & (1ULL << am->id()))) continue;
    const SimTime eta = IndexAmEta(*am);
    if (eta < best_probed) best_probed = eta;
  }
  if (best_probed == kSimTimeNever) return false;
  return best_unprobed * 4 < best_probed;
}

IndexAm* BenefitCostPolicy::ChooseIndexAm(const Tuple& /*tuple*/,
                                          const std::vector<IndexAm*>& ams) {
  IndexAm* best = ams.front();
  SimTime best_eta = kSimTimeNever;
  for (IndexAm* am : ams) {
    const SimTime eta = IndexAmEta(*am);
    if (eta < best_eta) {
      best_eta = eta;
      best = am;
    }
  }
  if (ams.size() > 1 && rng_.NextBool(options_.explore_epsilon)) {
    return ams[rng_.NextBounded(ams.size())];
  }
  return best;
}

}  // namespace stems
