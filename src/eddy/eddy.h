// Eddy: the adaptive tuple router (paper §2.1.1), extended with SteMs.
//
// The eddy owns all modules of a query (AMs, SMs, SteMs), continuously
// routes tuples between them according to a pluggable RoutingPolicy, sends
// tuples that span all tables and pass all predicates to the output, and
// terminates when no work remains. It also:
//   * routes EOT tuples to their table's SteM as builds (paper §2.1.3);
//   * seeds scan AMs at query start (paper §2.2 step 5);
//   * parks prior probers waiting for SteM growth and wakes them on change;
//   * audits every routing decision with a ConstraintChecker.
#pragma once

#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "am/index_am.h"
#include "am/scan_am.h"
#include "eddy/constraints.h"
#include "eddy/memory_governor.h"
#include "eddy/routing_policy.h"
#include "query/join_graph.h"
#include "runtime/query_context.h"
#include "sm/selection_module.h"
#include "stem/stem.h"

namespace stems {

struct EddyOptions {
  /// Virtual cost of one routing step.
  SimTime routing_overhead = Micros(1);
  /// BoundedRepetition backstop: max routing steps per tuple.
  uint32_t max_routes_per_tuple = 10000;
  /// §4.1 simplification: build every singleton into its SteM first, even
  /// when Table 2 would not require it. Policies may rely on it.
  bool always_build = true;
  /// §3.5: allow singletons to probe unbuilt (re-probing under
  /// LastMatchTimeStamp until covered).
  bool relax_build_first = false;
  /// Tables whose SteM build is skipped under relax_build_first (the
  /// paper's "much larger than the others" table). Each must have exactly
  /// one access method, a scan, and duplicate-free rows (without a SteM
  /// there is no set-semantics dedup for it).
  std::vector<std::string> no_build_tables;
  ConstraintMode constraint_mode = ConstraintMode::kRecord;
  /// §6: global memory control across SteMs (0 budget = disabled).
  MemoryGovernorOptions memory;
  /// Optional classifier for the "results.prioritized" metric: evaluated on
  /// every output tuple (priority *flags* only propagate through the
  /// generating side's probes, so metrics use the ground-truth predicate).
  std::function<bool(const Tuple&)> result_priority_classifier;
};

class Eddy {
 public:
  Eddy(const QuerySpec& query, Simulation* sim, EddyOptions options = {});
  ~Eddy();

  Eddy(const Eddy&) = delete;
  Eddy& operator=(const Eddy&) = delete;

  // --- wiring (used by the planner / tests) --------------------------------

  /// Registers a module; the eddy takes ownership and wires its sink.
  template <typename M>
  M* AddModule(std::unique_ptr<M> module) {
    M* raw = module.get();
    RegisterModule(std::move(module));
    return raw;
  }

  void SetPolicy(std::unique_ptr<RoutingPolicy> policy);

  // --- execution -------------------------------------------------------------

  /// Seeds every scan AM (paper §2.2 step 5). Call once.
  void Start();

  /// Start() + run the simulation until it drains.
  void RunToCompletion();

  // --- results & stats -------------------------------------------------------

  const std::vector<TuplePtr>& results() const { return results_; }
  uint64_t num_results() const { return results_.size(); }
  uint64_t tuples_retired() const { return tuples_retired_; }
  uint64_t tuples_routed() const { return tuples_routed_; }
  size_t parked_count() const;

  const std::vector<ConstraintViolation>& violations() const {
    return checker_->violations();
  }

  /// The §6 global memory governor (budget configured via EddyOptions).
  const MemoryGovernor& memory_governor() const { return memory_governor_; }

  QueryContext* ctx() { return &ctx_; }
  const QuerySpec& query() const { return *ctx_.query; }
  const JoinGraph& join_graph() const { return join_graph_; }
  const EddyOptions& options() const { return options_; }
  Simulation* sim() const { return ctx_.sim; }

  // --- module lookup (policies & checker) ------------------------------------

  const std::vector<std::unique_ptr<Module>>& modules() const {
    return modules_;
  }
  Stem* StemForSlot(int slot) const;
  Stem* StemForTable(const std::string& table) const;
  const std::vector<IndexAm*>& IndexAmsForSlot(int slot) const;
  const std::vector<ScanAm*>& ScanAmsForSlot(int slot) const;
  SelectionModule* SmForPredicate(int predicate_id) const;
  const std::vector<SelectionModule*>& selection_modules() const {
    return sms_;
  }

  /// Does Table 2's BuildFirst apply to singletons of `slot`'s table (or is
  /// the eddy running with always_build)?
  bool BuildRequired(int slot) const;

  /// Injects a tuple into the routing flow (AM emissions arrive this way;
  /// policies use it for self-join retarget clones).
  void InjectTuple(TuplePtr tuple);

 private:
  void RegisterModule(std::unique_ptr<Module> module);
  void OnModuleEmit(TuplePtr tuple, Module* from);
  void MaybeStartRouting();
  void RouteOne(TuplePtr tuple);
  void OnStemChanged(int table_ordinal);

  QueryContext ctx_;
  EddyOptions options_;
  JoinGraph join_graph_;
  std::unique_ptr<RoutingPolicy> policy_;
  std::unique_ptr<ConstraintChecker> checker_;
  MemoryGovernor memory_governor_{MemoryGovernorOptions{}};

  std::vector<std::unique_ptr<Module>> modules_;
  std::vector<Stem*> stem_by_slot_;
  std::vector<std::vector<IndexAm*>> index_ams_by_slot_;
  std::vector<std::vector<ScanAm*>> scan_ams_by_slot_;
  std::map<int, SelectionModule*> sm_by_pred_;
  std::vector<SelectionModule*> sms_;

  std::deque<TuplePtr> route_queue_;
  bool routing_busy_ = false;
  bool started_ = false;

  /// Prior probers waiting for their completion table's SteM to change.
  std::map<int, std::vector<TuplePtr>> parked_by_slot_;

  std::vector<TuplePtr> results_;
  uint64_t tuples_retired_ = 0;
  uint64_t tuples_routed_ = 0;
};

}  // namespace stems
