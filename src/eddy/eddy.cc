#include "eddy/eddy.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <cstdio>

#include "common/logging.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "spill/buffer_pool.h"

namespace stems {

Eddy::Eddy(const QuerySpec& query, Simulation* sim, EddyOptions options)
    : options_(options),
      join_graph_(query),
      memory_governor_(options.memory) {
  ctx_.query = &query;
  ctx_.sim = sim;
  const size_t n = query.num_slots();
  stem_by_slot_.resize(n, nullptr);
  index_ams_by_slot_.resize(n);
  scan_ams_by_slot_.resize(n);
  checker_ = std::make_unique<ConstraintChecker>(
      this, options_.constraint_mode, options_.max_routes_per_tuple);
  results_series_ = ctx_.metrics.SeriesHandle("results");
  prioritized_series_ = ctx_.metrics.SeriesHandle("results.prioritized");
  ctx_.registry = options_.registry;
  ctx_.tracer = options_.tracer;
  if (ctx_.registry != nullptr) {
    reg_routed_ = ctx_.registry->GetCounter("eddy.tuples_routed");
    reg_results_ = ctx_.registry->GetCounter("eddy.results");
    reg_queue_hwm_ = ctx_.registry->GetGauge("eddy.route_queue_hwm");
  }
}

Eddy::~Eddy() = default;

void Eddy::RegisterModule(std::unique_ptr<Module> module) {
  Module* raw = module.get();
  raw->set_id(static_cast<int>(modules_.size()));
  raw->set_tracer(ctx_.tracer);
  raw->SetSink([this](TuplePtr t, Module* from) {
    OnModuleEmit(std::move(t), from);
  });
  switch (raw->kind()) {
    case ModuleKind::kStem: {
      auto* stem = static_cast<Stem*>(raw);
      for (int slot : stem->table_slots()) {
        assert(stem_by_slot_[slot] == nullptr && "two SteMs for one slot");
        stem_by_slot_[slot] = stem;
      }
      stem->SetChangeListener([this, slot = stem->table_slots().front()] {
        OnStemChanged(slot);
      });
      // The query-wide pool is created on first use by a SteM that still
      // needs spill: pooled SteMs arrive with spill already enabled through
      // the engine-wide pool, and a query whose SteMs are all pooled never
      // allocates (or misleadingly reports) a pool of its own.
      if (options_.spill.enabled && !stem->spill_enabled()) {
        if (buffer_pool_ == nullptr) {
          buffer_pool_ = std::make_unique<BufferPool>(options_.spill);
          buffer_pool_->AttachRegistry(ctx_.registry);
        }
        stem->EnableSpill(buffer_pool_.get(), options_.spill);
      }
      memory_governor_.Watch(stem);
      break;
    }
    case ModuleKind::kIndexAm: {
      auto* am = static_cast<IndexAm*>(raw);
      for (int slot : am->table_slots()) index_ams_by_slot_[slot].push_back(am);
      break;
    }
    case ModuleKind::kScanAm: {
      auto* am = static_cast<ScanAm*>(raw);
      for (int slot : am->table_slots()) scan_ams_by_slot_[slot].push_back(am);
      break;
    }
    case ModuleKind::kSelection: {
      auto* sm = static_cast<SelectionModule*>(raw);
      sm_by_pred_[sm->predicate()->id()] = sm;
      sms_.push_back(sm);
      break;
    }
    case ModuleKind::kOperator:
      break;
  }
  modules_.push_back(std::move(module));
}

void Eddy::SetPolicy(std::unique_ptr<RoutingPolicy> policy) {
  policy_ = std::move(policy);
  policy_->Attach(this);
}

Stem* Eddy::StemForSlot(int slot) const {
  assert(slot >= 0 && static_cast<size_t>(slot) < stem_by_slot_.size());
  return stem_by_slot_[slot];
}

Stem* Eddy::StemForTable(const std::string& table) const {
  // Resolve through the same TableDef-identity match the modules use.
  const std::vector<int> slots = ctx_.SlotsOfTable(table);
  return slots.empty() ? nullptr : stem_by_slot_[slots.front()];
}

const std::vector<IndexAm*>& Eddy::IndexAmsForSlot(int slot) const {
  return index_ams_by_slot_[slot];
}

const std::vector<ScanAm*>& Eddy::ScanAmsForSlot(int slot) const {
  return scan_ams_by_slot_[slot];
}

SelectionModule* Eddy::SmForPredicate(int predicate_id) const {
  auto it = sm_by_pred_.find(predicate_id);
  return it == sm_by_pred_.end() ? nullptr : it->second;
}

bool Eddy::BuildRequired(int slot) const {
  const TableDef* def = ctx_.query->slots()[slot].def;
  // Table 2 BuildFirst: always required with multiple AMs or an index AM.
  if (def->access_methods.size() > 1 || def->HasIndexAm()) return true;
  // §3.5 relaxation for explicitly listed single-scan tables.
  if (options_.relax_build_first) {
    for (const auto& t : options_.no_build_tables) {
      if (t == def->name) return false;
    }
  }
  return options_.always_build;
}

void Eddy::Start() {
  assert(policy_ != nullptr && "no routing policy set");
  assert(!started_);
  started_ = true;
  // LIMIT 0 asks for nothing: complete immediately without seeding the
  // scans (the engine observes quiescence and marks the query finished).
  if (ctx_.query->limit().has_value() && *ctx_.query->limit() == 0) {
    limit_reached_ = true;
    Cancel();
    return;
  }
  const int num_slots = static_cast<int>(ctx_.query->num_slots());
  // Seed every scan AM (paper §2.2 step 5). Seeds bypass the policy.
  for (const auto& module : modules_) {
    if (module->kind() == ModuleKind::kScanAm) {
      module->Accept(Tuple::MakeSeed(num_slots));
    }
  }
}

void Eddy::RunToCompletion() {
  if (!started_) Start();
  ctx_.sim->Run();
  // Drain: tuples still parked are prior probers whose completion table can
  // never change again (e.g. theta-joined index-only tables). Every result
  // they could contribute to is generated by the other side's probes, so
  // they retire (the checker verifies the retirement is legal).
  while (DrainParked() > 0) {
    ctx_.sim->Run();
  }
}

bool Eddy::Quiescent() const {
  if (routing_busy_ || !route_queue_.empty()) return false;
  for (const auto& module : modules_) {
    if (!module->Quiescent()) return false;
  }
  return true;
}

size_t Eddy::DrainParked() {
  size_t drained = 0;
  while (parked_count() > 0) {
    std::map<int, std::vector<TuplePtr>> parked = std::move(parked_by_slot_);
    parked_by_slot_.clear();
    for (auto& [slot, tuples] : parked) {
      for (auto& t : tuples) {
        checker_->Check(*t, RouteDecision::Retire());
        ++tuples_retired_;
        ++drained;
      }
    }
  }
  return drained;
}

void Eddy::Cancel() {
  cancelled_ = true;
  tuples_retired_ += route_queue_.size();
  route_queue_.clear();
  for (auto& [slot, tuples] : parked_by_slot_) {
    tuples_retired_ += tuples.size();
  }
  parked_by_slot_.clear();
  // Halt the scans: without this a cancelled query's sources keep
  // self-scheduling row emissions on the shared clock, taxing every other
  // query on the engine until the tables are exhausted.
  for (const auto& module : modules_) {
    if (module->kind() == ModuleKind::kScanAm) {
      static_cast<ScanAm*>(module.get())->Halt();
    }
  }
}

void Eddy::InjectTuple(TuplePtr tuple) {
  if (cancelled_) {
    ++tuples_retired_;
    return;
  }
  route_queue_.push_back(std::move(tuple));
  if (reg_queue_hwm_ != nullptr) {
    reg_queue_hwm_->SetMax(static_cast<int64_t>(route_queue_.size()));
  }
  MaybeStartRouting();
}

void Eddy::OnModuleEmit(TuplePtr tuple, Module* /*from*/) {
  InjectTuple(std::move(tuple));
}

void Eddy::MaybeStartRouting() {
  if (routing_busy_ || route_queue_.empty()) return;
  routing_busy_ = true;
  // One event-queue hop (and one routing_overhead charge) covers up to
  // batch_size queued tuples.
  if (options_.batch_size <= 1) {
    TuplePtr tuple = std::move(route_queue_.front());
    route_queue_.pop_front();
    ctx_.sim->Schedule(options_.routing_overhead,
                       [this, t = std::move(tuple)]() mutable {
                         // wall-clock: measures the real CPU cost of the
                         // routing decision (routing_wall_ns_ is an
                         // observability counter, never simulation input).
                         const auto start = std::chrono::steady_clock::now();
                         RouteOne(std::move(t));
                         routing_busy_ = false;
                         MaybeStartRouting();
                         // wall-clock: closes the span opened above.
                         routing_wall_ns_ += static_cast<uint64_t>(
                             (std::chrono::steady_clock::now() - start)
                                 .count());
                       });
    return;
  }
  // The tuples stay queued until the event fires: emissions arriving
  // during the routing_overhead window join this batch, and the closure
  // captures only `this` (no allocation).
  ctx_.sim->Schedule(options_.routing_overhead, [this] {
    // wall-clock: measures the real CPU cost of batch routing
    // (observability counter only, never simulation input).
    const auto start = std::chrono::steady_clock::now();
    RouteBatchFromQueue();
    routing_busy_ = false;
    MaybeStartRouting();
    // wall-clock: closes the span opened above.
    routing_wall_ns_ += static_cast<uint64_t>(
        (std::chrono::steady_clock::now() - start).count());
  });
}

bool Eddy::PreRoute(TuplePtr& tuple) {
  ++tuples_routed_;
  if (reg_routed_ != nullptr) reg_routed_->Add();
  tuple->IncrementRouteCount();

  // BoundedRepetition backstop: a policy bug must not hang the simulation.
  // The checker records the violation; the tuple is forcibly retired.
  if (tuple->route_count() > options_.max_routes_per_tuple) {
    STEMS_LOG(Error) << "BoundedRepetition exceeded for " << tuple->ToString();
    checker_->Check(*tuple, RouteDecision::Retire());
    ++tuples_retired_;
    return false;
  }

  // Output check (paper §2.1.1): spans all base tables and passed all
  // predicates.
  if (!tuple->is_seed() && !tuple->IsEot() &&
      tuple->spanned_mask() == ctx_.query->full_span_mask()) {
    const uint64_t all_preds =
        ctx_.query->num_predicates() == 0
            ? 0
            : (1ULL << ctx_.query->num_predicates()) - 1;
    if ((tuple->preds_passed() & all_preds) == all_preds) {
      AdmitResult(std::move(tuple));
      return false;
    }
  }
  return true;
}

void Eddy::AdmitResult(TuplePtr tuple) {
  const std::optional<uint64_t>& limit = ctx_.query->limit();
  if (limit.has_value() && results_.size() >= *limit) {
    // The LIMIT filled earlier — possibly within this very routing batch,
    // when a same-destination AcceptBatch cluster emitted several outputs
    // in one service event. The clamp sits before the push, so the bound
    // holds regardless of how many outputs share the step.
    ++tuples_retired_;
    return;
  }
  results_series_->Increment(ctx_.sim->now());
  if (reg_results_ != nullptr) reg_results_->Add();
  const bool prioritized = options_.result_priority_classifier
                               ? options_.result_priority_classifier(*tuple)
                               : tuple->prioritized();
  if (prioritized) {
    prioritized_series_->Increment(ctx_.sim->now());
  }
  results_.push_back(std::move(tuple));
  if (limit.has_value() && results_.size() >= *limit) {
    // LIMIT hit: stop the dataflow (halt scans, drop queued and parked
    // work) but keep the buffered results. The in-flight remainder
    // drains, the eddy goes Quiescent(), and the engine marks the
    // query *finished* — cancellation state is tracked per-handle, so
    // a LIMIT completion never reads as cancelled.
    limit_reached_ = true;
    Cancel();
  }
}

void Eddy::RouteOne(TuplePtr tuple) {
  // A routing event scheduled before Cancel() may still fire; drop its
  // tuple instead of routing on.
  if (cancelled_) {
    ++tuples_retired_;
    return;
  }
  if (!PreRoute(tuple)) return;

  // EOT tuples go straight to their table's SteM as builds (paper §2.1.3).
  if (tuple->IsEot()) {
    const int slot = tuple->SingletonSlot();
    assert(slot >= 0);
    Stem* stem = stem_by_slot_[slot];
    assert(stem != nullptr);
    tuple->SetRouteInfo(RouteIntent::kBuild, slot);
    stem->Accept(std::move(tuple));
    return;
  }

  // Sampling is decided *before* the policy runs so score tracing is live
  // during the decision it describes.
  const bool traced = ctx_.tracer != nullptr && ctx_.tracer->SampleRoute();
  if (traced) policy_->set_score_tracing(true);
  RouteDecision decision = policy_->Route(tuple);
  if (traced) {
    TraceRouteDecision(tuple, decision, 1);
    policy_->set_score_tracing(false);
  }
  checker_->Check(*tuple, decision);

  switch (decision.kind) {
    case RouteDecision::Kind::kSend:
      assert(decision.dest != nullptr);
      tuple->SetRouteInfo(decision.intent, decision.target_slot,
                          decision.exclude_equal_ts);
      decision.dest->Accept(std::move(tuple));
      return;
    case RouteDecision::Kind::kPark:
      parked_by_slot_[decision.park_slot].push_back(std::move(tuple));
      return;
    case RouteDecision::Kind::kRetire:
      ++tuples_retired_;
      return;
  }
}

void Eddy::RouteBatchFromQueue() {
  // Cancel() clears the queue (and counts the drops); a fired event then
  // finds nothing to do.
  if (cancelled_ || route_queue_.empty()) return;

  // A batch of one routes through the scalar path: the batch machinery
  // (pending entries, lineage keys, clustering) only pays for itself from
  // two tuples up.
  if (route_queue_.size() == 1) {
    TuplePtr tuple = std::move(route_queue_.front());
    route_queue_.pop_front();
    RouteOne(std::move(tuple));
    return;
  }

  // Phase 1: pop up to batch_size tuples; pre-policy handling. EOT tuples
  // keep their queue position (a probe routed after a scan's EOT must reach
  // the SteM after it, or EOT coverage would claim completeness over builds
  // still in this batch), so they become pre-decided entries instead of
  // being delivered immediately.
  const size_t n = std::min(options_.batch_size, route_queue_.size());
  pending_scratch_.clear();
  policy_batch_.clear();
  for (size_t i = 0; i < n; ++i) {
    // PreRoute can hit the query's LIMIT and Cancel() mid-batch, which
    // clears the queue out from under this loop.
    if (cancelled_ || route_queue_.empty()) break;
    TuplePtr tuple = std::move(route_queue_.front());
    route_queue_.pop_front();
    if (!PreRoute(tuple)) continue;
    if (tuple->IsEot()) {
      const int slot = tuple->SingletonSlot();
      assert(slot >= 0);
      Stem* stem = stem_by_slot_[slot];
      assert(stem != nullptr);
      PendingRoute p;
      p.eot_tuple = std::move(tuple);
      p.eot_decision = RouteDecision::Send(stem, RouteIntent::kBuild, slot);
      pending_scratch_.push_back(std::move(p));
      continue;
    }
    PendingRoute p;
    p.policy_index = static_cast<int32_t>(policy_batch_.tuples.size());
    pending_scratch_.push_back(std::move(p));
    policy_batch_.tuples.push_back(std::move(tuple));
  }
  if (cancelled_) {
    // LIMIT (or cancel) fired while collecting the batch: the tuples
    // already popped retire instead of routing into a halted dataflow.
    tuples_retired_ += pending_scratch_.size();
    pending_scratch_.clear();
    policy_batch_.clear();
    return;
  }
  if (pending_scratch_.empty()) return;

  // Phase 2: one policy consultation for the whole batch. One sampling
  // draw covers the batch (the trace records the batch size); scores are
  // live during the consultation they describe.
  const bool traced = ctx_.tracer != nullptr && !policy_batch_.tuples.empty() &&
                      ctx_.tracer->SampleRoute();
  if (traced) policy_->set_score_tracing(true);
  policy_->ChooseBatch(policy_batch_, &decisions_scratch_);
  if (decisions_scratch_.size() != policy_batch_.size()) {
    // A custom ChooseBatch returned the wrong number of decisions (e.g. a
    // missing out->clear()). Recover deterministically through the scalar
    // Route() rather than indexing out of bounds.
    STEMS_LOG(Error) << "policy '" << policy_->name() << "' returned "
                     << decisions_scratch_.size() << " batch decisions for "
                     << policy_batch_.size() << " tuples; falling back to "
                     << "per-tuple routing";
    decisions_scratch_.clear();
    decisions_scratch_.reserve(policy_batch_.size());
    for (const TuplePtr& t : policy_batch_.tuples) {
      decisions_scratch_.push_back(policy_->Route(t));
    }
  }
  if (traced) {
    TraceRouteDecision(policy_batch_.tuples.front(),
                       decisions_scratch_.front(), policy_batch_.size());
    policy_->set_score_tracing(false);
  }

  // Phase 3: audit + dispatch. The audit is amortized within the batch:
  // a (lineage, decision) pair that already passed is not re-checked.
  // Same-destination runs are delivered as one AcceptBatch call; delivery
  // order per module matches queue order.
  audited_scratch_.clear();
  cluster_scratch_.clear();
  Module* cluster_dest = nullptr;
  auto flush_cluster = [&] {
    if (cluster_scratch_.empty()) return;
    if (cluster_scratch_.size() == 1) {
      cluster_dest->Accept(std::move(cluster_scratch_.front()));
      cluster_scratch_.clear();
    } else {
      cluster_dest->AcceptBatch(&cluster_scratch_);
    }
  };

  size_t dispatched = 0;
  for (PendingRoute& p : pending_scratch_) {
    if (cancelled_) {
      // LIMIT/cancel tripped mid-dispatch: the rest of the batch (and the
      // undelivered cluster) must not enter the halted dataflow — retire
      // it, mirroring the phase-1 guard (clamp inside the batch path).
      tuples_retired_ += cluster_scratch_.size();
      cluster_scratch_.clear();
      tuples_retired_ += pending_scratch_.size() - dispatched;
      break;
    }
    ++dispatched;
    const bool predecided = p.policy_index < 0;
    const RouteDecision& decision =
        predecided ? p.eot_decision : decisions_scratch_[p.policy_index];
    TuplePtr& tuple =
        predecided ? p.eot_tuple : policy_batch_.tuples[p.policy_index];
    if (!predecided) {
      // Seeds and prior probers carry decision-relevant state beyond the
      // lineage key; their audits never amortize.
      const bool amortizable = decision.kind == RouteDecision::Kind::kSend &&
                               !tuple->is_seed() && !tuple->IsPriorProber();
      bool skip_audit = false;
      RouteLineage lineage;
      if (amortizable) {
        lineage = RouteLineage::Of(*tuple);
        for (const AuditedRoute& a : audited_scratch_) {
          if (a.dest == decision.dest && a.intent == decision.intent &&
              a.target_slot == decision.target_slot &&
              a.exclude_equal_ts == decision.exclude_equal_ts &&
              a.lineage == lineage) {
            skip_audit = true;
            break;
          }
        }
      }
      if (!skip_audit) {
        const bool ok = checker_->Check(*tuple, decision);
        if (ok && amortizable) {
          audited_scratch_.push_back({lineage, decision.dest, decision.intent,
                                      decision.target_slot,
                                      decision.exclude_equal_ts});
        }
      }
    }
    switch (decision.kind) {
      case RouteDecision::Kind::kSend:
        assert(decision.dest != nullptr);
        tuple->SetRouteInfo(decision.intent, decision.target_slot,
                            decision.exclude_equal_ts);
        if (decision.dest != cluster_dest) {
          flush_cluster();
          cluster_dest = decision.dest;
        }
        cluster_scratch_.push_back(std::move(tuple));
        break;
      case RouteDecision::Kind::kPark:
        parked_by_slot_[decision.park_slot].push_back(std::move(tuple));
        break;
      case RouteDecision::Kind::kRetire:
        ++tuples_retired_;
        break;
    }
  }
  flush_cluster();
  pending_scratch_.clear();
  policy_batch_.clear();
}

void Eddy::TraceRouteDecision(const TuplePtr& tuple,
                              const RouteDecision& decision, size_t batch) {
  obs::TraceEvent ev;
  ev.cat = "route";
  ev.ph = 'i';
  ev.ts_us = static_cast<uint64_t>(ctx_.sim->now());
  const char* kind = "retire";
  switch (decision.kind) {
    case RouteDecision::Kind::kSend:
      ev.name = decision.dest->name();
      ev.tid = static_cast<uint32_t>(decision.dest->id());
      kind = "send";
      break;
    case RouteDecision::Kind::kPark:
      ev.name = "park";
      kind = "park";
      break;
    case RouteDecision::Kind::kRetire:
      ev.name = "retire";
      break;
  }
  char buf[128];
  std::snprintf(buf, sizeof(buf),
                "\"lineage\":%llu,\"kind\":\"%s\",\"intent\":%d,\"batch\":%zu",
                static_cast<unsigned long long>(tuple->spanned_mask()), kind,
                static_cast<int>(decision.intent), batch);
  ev.args_json = buf;
  const std::string& scores = policy_->LastDecisionScores();
  if (!scores.empty()) {
    ev.args_json += ",\"scores\":\"" + obs::Tracer::JsonEscape(scores) + "\"";
  }
  ctx_.tracer->Record(std::move(ev));
}

void Eddy::OnStemChanged(int table_ordinal) {
  // §6: enforce the global memory budget as SteMs grow.
  memory_governor_.Rebalance();
  // Wake tuples parked on any slot served by this SteM.
  Stem* stem = stem_by_slot_[table_ordinal];
  for (int slot : stem->table_slots()) {
    auto it = parked_by_slot_.find(slot);
    if (it == parked_by_slot_.end() || it->second.empty()) continue;
    auto woken = std::move(it->second);
    it->second.clear();
    for (auto& t : woken) InjectTuple(std::move(t));
  }
}

Eddy::SpillSummary Eddy::SpillStats() const {
  SpillSummary out;
  for (const auto& module : modules_) {
    if (module->kind() != ModuleKind::kStem) continue;
    const auto* stem = static_cast<const Stem*>(module.get());
    if (!stem->spill_enabled()) continue;
    out.spill_ios += stem->spill_ios();
    out.bytes_spilled += stem->bytes_spilled();
    out.entries_spilled += stem->entries_spilled();
    out.partitions_resident += stem->partitions_resident();
    out.partitions_spilled += stem->partitions_spilled();
  }
  if (buffer_pool_ != nullptr) {
    out.pool_hits = buffer_pool_->stats().hits;
    out.pool_misses = buffer_pool_->stats().misses;
    out.pool_evictions = buffer_pool_->stats().evictions;
  }
  return out;
}

size_t Eddy::parked_count() const {
  size_t n = 0;
  for (const auto& [slot, v] : parked_by_slot_) n += v.size();
  return n;
}

}  // namespace stems
