// TupleBatch: the unit of batched routing through the eddy.
//
// With EddyOptions::batch_size > 1 the eddy pops up to batch_size tuples
// from its routing queue per scheduling step and asks the policy for all
// decisions at once (RoutingPolicy::ChooseBatch). RouteLineage is the
// grouping key for that amortization: tuples with equal lineage are
// indistinguishable to the constraint-respecting routing skeleton
// (PolicyBase), so one decision can be shared across all of them.
#pragma once

#include <cstdint>
#include <vector>

#include "runtime/tuple.h"

namespace stems {

/// An ordered group of tuples awaiting one routing decision each.
struct TupleBatch {
  std::vector<TuplePtr> tuples;

  size_t size() const { return tuples.size(); }
  bool empty() const { return tuples.empty(); }
  void clear() { tuples.clear(); }
};

/// Everything PolicyBase's routing skeleton reads from a (non-seed,
/// non-prior-prober) tuple: span, predicate "done bits", SteMs already
/// probed, and the flags that steer the build/probe/clone branches. Two
/// tuples with equal lineage take the same path through Route(), so a
/// batch-aware policy may compute the decision once per lineage group.
struct RouteLineage {
  enum Flags : uint8_t {
    kUnbuiltSingleton = 1,  ///< singleton not yet built into its SteM
    kRetargetClone = 2,     ///< self-join reverse-probe clone
    kPrioritized = 4,       ///< §4.1 interactive priority
  };

  uint64_t spanned_mask = 0;
  uint64_t preds_passed = 0;
  uint64_t probed_stems = 0;
  uint8_t flags = 0;

  static RouteLineage Of(const Tuple& t) {
    RouteLineage key{t.spanned_mask(), t.preds_passed(), t.probed_stems(), 0};
    const int slot = t.SingletonSlot();
    if (slot >= 0 && t.component(slot).timestamp == kTsInfinity) {
      key.flags |= kUnbuiltSingleton;
    }
    if (t.is_retarget_clone()) key.flags |= kRetargetClone;
    if (t.prioritized()) key.flags |= kPrioritized;
    return key;
  }

  friend bool operator==(const RouteLineage&, const RouteLineage&) = default;
};

}  // namespace stems
