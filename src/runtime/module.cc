#include "runtime/module.h"

#include <cassert>
#include <cstdio>

#include "obs/trace.h"

namespace stems {

const char* ModuleKindName(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kSelection:
      return "SM";
    case ModuleKind::kScanAm:
      return "ScanAM";
    case ModuleKind::kIndexAm:
      return "IndexAM";
    case ModuleKind::kStem:
      return "SteM";
    case ModuleKind::kOperator:
      return "Op";
  }
  return "?";
}

Module::Module(Simulation* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void Module::Accept(TuplePtr tuple) {
  ++stats_.tuples_in;
  queue_.push_back({std::move(tuple), sim_->now()});
  if (queue_.size() > stats_.max_queue_len) {
    stats_.max_queue_len = queue_.size();
  }
  MaybeStartService();
}

void Module::AcceptBatch(std::vector<TuplePtr>* batch) {
  if (batch->empty()) return;
  const SimTime now = sim_->now();
  stats_.tuples_in += batch->size();
  for (auto& tuple : *batch) {
    queue_.push_back({std::move(tuple), now});
  }
  batch->clear();
  if (queue_.size() > stats_.max_queue_len) {
    stats_.max_queue_len = queue_.size();
  }
  MaybeStartService();
}

void Module::Emit(TuplePtr tuple) {
  assert(sink_ && "module output not wired");
  ++stats_.tuples_out;
  sink_(std::move(tuple), this);
}

void Module::TraceService(SimTime start, SimTime duration, size_t group_size) {
  if (!tracer_->SampleService()) return;
  obs::TraceEvent ev;
  ev.name = name_;
  ev.cat = "module";
  ev.ph = 'X';
  ev.ts_us = static_cast<uint64_t>(start);
  ev.dur_us = static_cast<uint64_t>(duration);
  ev.tid = static_cast<uint32_t>(id_ < 0 ? 0 : id_);
  char buf[48];
  std::snprintf(buf, sizeof(buf), "\"group\":%zu,\"queued\":%zu", group_size,
                queue_.size());
  ev.args_json = buf;
  tracer_->Record(std::move(ev));
}

void Module::MaybeStartService() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  if (service_batch_ <= 1 || queue_.size() == 1) {
    QueueEntry entry = std::move(queue_.front());
    queue_.pop_front();
    stats_.queue_wait_time +=
        static_cast<uint64_t>(sim_->now() - entry.enqueued_at);
    const SimTime service = ServiceTime(*entry.tuple);
    stats_.busy_time += static_cast<uint64_t>(service);
    if (tracer_ != nullptr) TraceService(sim_->now(), service, 1);
    sim_->Schedule(service, [this, t = std::move(entry.tuple)]() mutable {
      Process(std::move(t));
      busy_ = false;
      MaybeStartService();
    });
    return;
  }
  // Batched service: one event covers up to service_batch_ queued tuples;
  // the virtual busy period is the sum of their individual service times.
  // The group lives in the reusable in_service_ buffer and the closure
  // captures only `this`, so the steady state allocates nothing.
  const size_t n = std::min(service_batch_, queue_.size());
  in_service_.clear();
  SimTime total = 0;
  const SimTime now = sim_->now();
  for (size_t i = 0; i < n; ++i) {
    QueueEntry entry = std::move(queue_.front());
    queue_.pop_front();
    stats_.queue_wait_time += static_cast<uint64_t>(now - entry.enqueued_at);
    total += ServiceTime(*entry.tuple);
    in_service_.push_back(std::move(entry.tuple));
  }
  stats_.busy_time += static_cast<uint64_t>(total);
  if (tracer_ != nullptr) TraceService(now, total, n);
  sim_->Schedule(total, [this] {
    ProcessBatch(&in_service_);
    busy_ = false;
    MaybeStartService();
  });
}

}  // namespace stems
