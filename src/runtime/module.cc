#include "runtime/module.h"

#include <cassert>

namespace stems {

const char* ModuleKindName(ModuleKind kind) {
  switch (kind) {
    case ModuleKind::kSelection:
      return "SM";
    case ModuleKind::kScanAm:
      return "ScanAM";
    case ModuleKind::kIndexAm:
      return "IndexAM";
    case ModuleKind::kStem:
      return "SteM";
    case ModuleKind::kOperator:
      return "Op";
  }
  return "?";
}

Module::Module(Simulation* sim, std::string name)
    : sim_(sim), name_(std::move(name)) {}

void Module::Accept(TuplePtr tuple) {
  ++stats_.tuples_in;
  queue_.push_back({std::move(tuple), sim_->now()});
  if (queue_.size() > stats_.max_queue_len) {
    stats_.max_queue_len = queue_.size();
  }
  MaybeStartService();
}

void Module::Emit(TuplePtr tuple) {
  assert(sink_ && "module output not wired");
  ++stats_.tuples_out;
  sink_(std::move(tuple), this);
}

void Module::MaybeStartService() {
  if (busy_ || queue_.empty()) return;
  busy_ = true;
  QueueEntry entry = std::move(queue_.front());
  queue_.pop_front();
  stats_.queue_wait_time +=
      static_cast<uint64_t>(sim_->now() - entry.enqueued_at);
  const SimTime service = ServiceTime(*entry.tuple);
  stats_.busy_time += static_cast<uint64_t>(service);
  sim_->Schedule(service, [this, t = std::move(entry.tuple)]() mutable {
    Process(std::move(t));
    busy_ = false;
    MaybeStartService();
  });
}

}  // namespace stems
