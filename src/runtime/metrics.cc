#include "runtime/metrics.h"

#include <algorithm>

namespace stems {

void CounterSeries::Increment(SimTime now, int64_t delta) {
  MutexLock lock(&mu_);
  total_ += delta;
  if (!points_.empty() && points_.back().first == now) {
    points_.back().second = total_;
  } else {
    points_.emplace_back(now, total_);
  }
}

int64_t CounterSeries::total() const {
  MutexLock lock(&mu_);
  return total_;
}

std::vector<std::pair<SimTime, int64_t>> CounterSeries::points() const {
  MutexLock lock(&mu_);
  return points_;
}

int64_t CounterSeries::ValueAt(SimTime t) const {
  MutexLock lock(&mu_);
  // Last point with time <= t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](SimTime lhs, const std::pair<SimTime, int64_t>& p) {
        return lhs < p.first;
      });
  if (it == points_.begin()) return 0;
  return std::prev(it)->second;
}

std::vector<int64_t> CounterSeries::Sample(SimTime horizon,
                                           size_t num_samples) const {
  std::vector<int64_t> out;
  out.reserve(num_samples);
  for (size_t i = 0; i < num_samples; ++i) {
    SimTime t = static_cast<SimTime>(
        static_cast<double>(horizon) * static_cast<double>(i) /
        static_cast<double>(num_samples > 1 ? num_samples - 1 : 1));
    out.push_back(ValueAt(t));
  }
  return out;
}

SimTime CounterSeries::TimeToReach(int64_t value) const {
  MutexLock lock(&mu_);
  for (const auto& [t, v] : points_) {
    if (v >= value) return t;
  }
  return kSimTimeNever;
}

const CounterSeries& MetricsRecorder::Series(const std::string& name) const {
  static const CounterSeries kEmpty;
  MutexLock lock(&mu_);
  auto it = series_.find(name);
  return it == series_.end() ? kEmpty : it->second;
}

}  // namespace stems
