// QueryContext: per-query shared state handed to every module.
#pragma once

#include "query/query_spec.h"
#include "runtime/metrics.h"
#include "runtime/tuple.h"
#include "sim/simulation.h"

namespace stems {

/// Owned by the query executor (Eddy or a static plan); modules keep a
/// non-owning pointer for its lifetime.
struct QueryContext {
  const QuerySpec* query = nullptr;
  Simulation* sim = nullptr;
  TimestampAuthority ts;
  MetricsRecorder metrics;

  /// Slots of `query` whose table instance is `table_name`.
  std::vector<int> SlotsOfTable(const std::string& table_name) const {
    std::vector<int> out;
    for (size_t i = 0; i < query->num_slots(); ++i) {
      if (query->slots()[i].table_name == table_name) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  }
};

}  // namespace stems
