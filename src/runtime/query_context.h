// QueryContext: per-query shared state handed to every module.
#pragma once

#include "query/query_spec.h"
#include "runtime/metrics.h"
#include "runtime/tuple.h"
#include "sim/simulation.h"

namespace stems {

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Owned by the query executor (Eddy or a static plan); modules keep a
/// non-owning pointer for its lifetime.
struct QueryContext {
  const QuerySpec* query = nullptr;
  Simulation* sim = nullptr;
  TimestampAuthority ts;
  MetricsRecorder metrics;
  /// Engine-wide metric registry (nullable: tests and detached eddies run
  /// without one; instrumentation sites branch on the cached pointer).
  obs::MetricsRegistry* registry = nullptr;
  /// Per-query trace-span sink; null when tracing is disabled
  /// (RunOptions::trace_every_n == 0) — the one-branch disabled path.
  obs::Tracer* tracer = nullptr;

  /// Slots of `query` bound to exactly this table definition. Identity
  /// comparison on the resolved TableDef, not a name compare: two catalog
  /// entries (or an alias shadowing another base table's name) must never
  /// alias each other's slots.
  std::vector<int> SlotsOfTable(const TableDef* def) const {
    std::vector<int> out;
    for (size_t i = 0; i < query->num_slots(); ++i) {
      if (query->slots()[i].def == def) {
        out.push_back(static_cast<int>(i));
      }
    }
    return out;
  }

  /// Name-keyed convenience: resolves `table_name` to the TableDef of the
  /// first slot whose *definition* carries that name, then matches slots by
  /// definition identity.
  std::vector<int> SlotsOfTable(const std::string& table_name) const {
    for (size_t i = 0; i < query->num_slots(); ++i) {
      const TableDef* def = query->slots()[i].def;
      if (def != nullptr && def->name == table_name) {
        return SlotsOfTable(def);
      }
    }
    return {};
  }
};

}  // namespace stems
