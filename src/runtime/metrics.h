// MetricsRecorder: time-series counters for experiments.
//
// The paper's evaluation plots cumulative quantities against time (results
// output, index probes made). Counters here record (virtual time, value)
// step series that benches sample on a fixed grid to print figure data.
//
// Thread-safety: every series mutation and read is internally synchronized
// (a per-series mutex plus a recorder-level map mutex), so a recorder
// reached from the threaded executor's workers is race-free. The sim
// executor is single-threaded and pays one uncontended lock per increment.
// Engine-wide, cross-query aggregation lives in obs::MetricsRegistry
// (src/obs/metrics_registry.h); this recorder is the per-query, sim-facing
// series view layered beside it.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/thread_annotations.h"
#include "sim/clock.h"

namespace stems {

/// A monotone step series of (time, cumulative value). Internally
/// synchronized; safe to Increment from several workers concurrently.
class CounterSeries {
 public:
  CounterSeries() = default;
  /// Copies take a consistent snapshot of the source (benches copy series
  /// out of a recorder to keep plotting after the query is gone).
  CounterSeries(const CounterSeries& other) {
    MutexLock lock(&other.mu_);
    points_ = other.points_;
    total_ = other.total_;
  }
  CounterSeries& operator=(const CounterSeries& other) {
    if (this == &other) return *this;
    // Snapshot the source, then assign under our own lock: never holds
    // both mutexes at once, so no lock-order cycle between two series.
    std::vector<std::pair<SimTime, int64_t>> points;
    int64_t total;
    {
      MutexLock lock(&other.mu_);
      points = other.points_;
      total = other.total_;
    }
    MutexLock lock(&mu_);
    points_ = std::move(points);
    total_ = total;
    return *this;
  }

  void Increment(SimTime now, int64_t delta = 1);

  int64_t total() const;

  /// Snapshot of the step points (copy, taken under the series lock).
  std::vector<std::pair<SimTime, int64_t>> points() const;

  /// Value of the counter at time `t` (steps are right-continuous).
  int64_t ValueAt(SimTime t) const;

  /// Samples the series at `num_samples` evenly spaced times over
  /// [0, horizon].
  std::vector<int64_t> Sample(SimTime horizon, size_t num_samples) const;

  /// Earliest time at which the counter reached `value`; kSimTimeNever if it
  /// never did.
  SimTime TimeToReach(int64_t value) const;

 private:
  mutable Mutex mu_;
  std::vector<std::pair<SimTime, int64_t>> points_ STEMS_GUARDED_BY(mu_);
  int64_t total_ STEMS_GUARDED_BY(mu_) = 0;
};

/// Named counter series.
class MetricsRecorder {
 public:
  void Count(const std::string& name, SimTime now, int64_t delta = 1) {
    SeriesHandle(name)->Increment(now, delta);
  }

  /// Stable handle for hot paths: resolves the series once; callers then
  /// Increment() without re-building the key or re-searching the map.
  /// (std::map nodes are pointer-stable across later insertions, and the
  /// map itself is guarded by mu_ — handles stay valid and race-free.)
  CounterSeries* SeriesHandle(const std::string& name) {
    MutexLock lock(&mu_);
    return &series_[name];
  }

  const CounterSeries& Series(const std::string& name) const;
  bool Has(const std::string& name) const {
    MutexLock lock(&mu_);
    return series_.count(name) > 0;
  }

 private:
  mutable Mutex mu_;
  std::map<std::string, CounterSeries> series_ STEMS_GUARDED_BY(mu_);
};

}  // namespace stems
