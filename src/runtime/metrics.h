// MetricsRecorder: time-series counters for experiments.
//
// The paper's evaluation plots cumulative quantities against time (results
// output, index probes made). Counters here record (virtual time, value)
// step series that benches sample on a fixed grid to print figure data.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "sim/clock.h"

namespace stems {

/// A monotone step series of (time, cumulative value).
class CounterSeries {
 public:
  void Increment(SimTime now, int64_t delta = 1);

  int64_t total() const { return total_; }
  const std::vector<std::pair<SimTime, int64_t>>& points() const {
    return points_;
  }

  /// Value of the counter at time `t` (steps are right-continuous).
  int64_t ValueAt(SimTime t) const;

  /// Samples the series at `num_samples` evenly spaced times over
  /// [0, horizon].
  std::vector<int64_t> Sample(SimTime horizon, size_t num_samples) const;

  /// Earliest time at which the counter reached `value`; kSimTimeNever if it
  /// never did.
  SimTime TimeToReach(int64_t value) const;

 private:
  std::vector<std::pair<SimTime, int64_t>> points_;
  int64_t total_ = 0;
};

/// Named counter series.
class MetricsRecorder {
 public:
  void Count(const std::string& name, SimTime now, int64_t delta = 1) {
    series_[name].Increment(now, delta);
  }

  /// Stable handle for hot paths: resolves the series once; callers then
  /// Increment() without re-building the key or re-searching the map.
  /// (std::map nodes are pointer-stable across later insertions.)
  CounterSeries* SeriesHandle(const std::string& name) {
    return &series_[name];
  }

  const CounterSeries& Series(const std::string& name) const;
  bool Has(const std::string& name) const { return series_.count(name) > 0; }

 private:
  std::map<std::string, CounterSeries> series_;
};

}  // namespace stems
