// Module: the base class of all query processing modules (paper §2.1).
//
// Each module has an input queue and a service model; in the paper each
// module runs in its own thread, here each runs as an actor on the
// discrete-event simulator (single-threaded asynchrony, paper [24]).
// Modules receive tuples from the eddy and emit tuples back to the eddy
// through their sink.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>

#include "runtime/tuple.h"
#include "sim/clock.h"
#include "sim/simulation.h"

namespace stems {

namespace obs {
class Tracer;
}  // namespace obs

enum class ModuleKind { kSelection, kScanAm, kIndexAm, kStem, kOperator };

const char* ModuleKindName(ModuleKind kind);

/// Observable per-module statistics; the eddy's routing policies feed on
/// these (paper §4.1: expected processing time, expected matches).
struct ModuleStats {
  uint64_t tuples_in = 0;        ///< tuples accepted
  uint64_t tuples_out = 0;       ///< tuples emitted (incl. bounce-backs)
  uint64_t busy_time = 0;        ///< total virtual service time
  uint64_t queue_wait_time = 0;  ///< summed virtual queueing delay
  size_t max_queue_len = 0;

  /// Mean virtual time a tuple spends queued + in service.
  double MeanLatency() const {
    if (tuples_in == 0) return 0;
    return static_cast<double>(queue_wait_time + busy_time) /
           static_cast<double>(tuples_in);
  }
};

class Module {
 public:
  using TupleSink = std::function<void(TuplePtr, Module* from)>;

  Module(Simulation* sim, std::string name);
  virtual ~Module() = default;

  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  const std::string& name() const { return name_; }
  int id() const { return id_; }
  void set_id(int id) { id_ = id; }

  virtual ModuleKind kind() const = 0;

  /// Wires the module's output to the eddy (or a test collector).
  void SetSink(TupleSink sink) { sink_ = std::move(sink); }

  /// Enqueues a tuple for processing; service starts when the (single)
  /// server frees up.
  void Accept(TuplePtr tuple);

  /// Batch entry point: drains `*batch` into the input queue (in order)
  /// with one bookkeeping pass, then starts service. Used by the eddy's
  /// batched router to deliver a cluster of same-destination tuples in one
  /// call; the drained vector keeps its capacity for the caller to reuse.
  void AcceptBatch(std::vector<TuplePtr>* batch);

  /// Tuples serviced per scheduled event (default 1 = one event per tuple).
  /// With n > 1 the module drains up to n queued tuples per event, charging
  /// the sum of their virtual service times as one busy period — the
  /// event-queue hop is amortized. Service times are evaluated up front
  /// (before any tuple of the group is processed), so a ServiceTime() that
  /// depends on processing order (e.g. the Grace-mode partition-switch
  /// penalty) must keep the module scalar.
  void set_service_batch(size_t n) { service_batch_ = n == 0 ? 1 : n; }
  size_t service_batch() const { return service_batch_; }

  /// Observability: when set (by the eddy at registration), every sampled
  /// service group records one complete trace span (virtual clock). Null =
  /// tracing disabled; the service path pays one branch.
  void set_tracer(obs::Tracer* tracer) { tracer_ = tracer; }

  size_t queue_length() const { return queue_.size(); }
  bool busy() const { return busy_; }
  /// True when no queued or in-service work remains. AMs with outstanding
  /// asynchronous lookups override this.
  virtual bool Quiescent() const { return queue_.empty() && !busy_; }

  const ModuleStats& stats() const { return stats_; }

 protected:
  /// Virtual service time charged for processing `tuple`.
  virtual SimTime ServiceTime(const Tuple& tuple) const = 0;

  /// Processes one tuple after its service time has elapsed. Implementations
  /// emit results (and bounce-backs) via Emit().
  virtual void Process(TuplePtr tuple) = 0;

  /// Processes and drains a serviced group (batched service path; `*tuples`
  /// is the module's reusable service buffer — implementations must leave
  /// it empty). The default loops Process(); modules with per-change side
  /// effects may override to amortize them across the group (e.g. the SteM
  /// defers its change notification to the end of the group).
  virtual void ProcessBatch(std::vector<TuplePtr>* tuples) {
    for (auto& t : *tuples) Process(std::move(t));
    tuples->clear();
  }

  /// Sends a tuple back to the eddy.
  void Emit(TuplePtr tuple);

  Simulation* sim() const { return sim_; }

 private:
  void MaybeStartService();
  /// Records a sampled 'X' span for a service period starting now.
  void TraceService(SimTime start, SimTime duration, size_t group_size);

  Simulation* sim_;
  std::string name_;
  int id_ = -1;
  TupleSink sink_;
  obs::Tracer* tracer_ = nullptr;

  struct QueueEntry {
    TuplePtr tuple;
    SimTime enqueued_at;
  };
  std::deque<QueueEntry> queue_;
  bool busy_ = false;
  size_t service_batch_ = 1;
  /// Reusable buffer for the in-flight service group (busy_ serializes
  /// service, so one buffer suffices); keeps the batched path allocation-free.
  std::vector<TuplePtr> in_service_;
  ModuleStats stats_;
};

}  // namespace stems
