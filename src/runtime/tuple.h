// Tuple: the unit of dataflow, with its TupleState (paper §2.1.1).
//
// A tuple is a concatenation of base-table components (paper Def. 1): one
// optional Row per table slot of the query. A singleton tuple (Def. 2) has
// exactly one component. The TupleState carried with each tuple records, at
// minimum, (a) the tables it spans and (b) the predicates it has passed
// ("done bits"), plus the timestamp bookkeeping of §3.1/§3.5 and the
// prior-prober marker of §3.4 (Def. 3).
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "expr/predicate.h"
#include "types/row.h"

namespace stems {

/// Build timestamps (paper §3.1): assigned from a global monotonic counter
/// when a singleton builds into a SteM; "infinity" before building.
using BuildTs = uint64_t;
constexpr BuildTs kTsInfinity = UINT64_MAX;

/// Issues global, monotonically increasing build timestamps. Shared by all
/// SteMs of a query.
class TimestampAuthority {
 public:
  BuildTs Issue() { return next_++; }
  BuildTs last_issued() const { return next_ - 1; }

 private:
  BuildTs next_ = 1;
};

class Tuple;
using TuplePtr = std::shared_ptr<Tuple>;

/// The operation the eddy is requesting from the destination module of a
/// routing step. SteMs accept builds and probes; other modules ignore this.
enum class RouteIntent : uint8_t { kAuto = 0, kBuild, kProbe };

class Tuple : public ValueSource {
 public:
  /// One base-table component and its build timestamp.
  struct Component {
    RowRef row;                       ///< null when the slot is not spanned
    BuildTs timestamp = kTsInfinity;  ///< kTsInfinity until built into a SteM
  };

  /// An empty tuple over a query with `num_slots` table slots.
  explicit Tuple(int num_slots) : components_(num_slots) {}

  /// A singleton spanning `slot`.
  static TuplePtr MakeSingleton(int num_slots, int slot, RowRef row);

  /// The seed tuple that initializes scans (paper §2.1.3).
  static TuplePtr MakeSeed(int num_slots);

  // --- components & span ---------------------------------------------------

  int num_slots() const { return static_cast<int>(components_.size()); }
  const Component& component(int slot) const { return components_[slot]; }
  bool Spans(int slot) const { return components_[slot].row != nullptr; }
  uint64_t spanned_mask() const { return spanned_mask_; }
  /// Number of spanned slots.
  int SpanSize() const;
  bool IsSingleton() const { return SpanSize() == 1; }
  /// The single spanned slot of a singleton; -1 otherwise.
  int SingletonSlot() const;

  /// Sets component `slot`; updates the span mask.
  void SetComponent(int slot, RowRef row, BuildTs ts = kTsInfinity);
  /// Marks component `slot` as built with timestamp `ts`.
  void SetBuilt(int slot, BuildTs ts);

  /// Paper §3.1: a tuple's timestamp is that of its last-arriving component:
  /// the max over built components; kTsInfinity if any component is unbuilt.
  BuildTs Timestamp() const;

  /// True iff every spanned component has been built into its SteM.
  bool AllComponentsBuilt() const;

  // --- predicates ----------------------------------------------------------

  uint64_t preds_passed() const { return preds_passed_; }
  bool PassedPredicate(int id) const { return preds_passed_ & (1ULL << id); }
  void MarkPredicatePassed(int id) { preds_passed_ |= 1ULL << id; }

  // --- special tuple kinds -------------------------------------------------

  bool is_seed() const { return is_seed_; }
  /// An End-Of-Transmission tuple (paper §2.1.3).
  bool IsEot() const;

  // --- §3.4 prior-prober state (Def. 3) -------------------------------------

  bool IsPriorProber() const { return probe_completion_slot_ >= 0; }
  int probe_completion_slot() const { return probe_completion_slot_; }
  void MarkPriorProber(int slot) { probe_completion_slot_ = slot; }
  bool probe_completed() const { return probe_completed_; }
  void MarkProbeCompleted() { probe_completed_ = true; }

  // --- §3.5 LastMatchTimeStamp ----------------------------------------------

  BuildTs last_match_ts() const { return last_match_ts_; }
  void set_last_match_ts(BuildTs ts) { last_match_ts_ = ts; }

  // --- routing bookkeeping ---------------------------------------------------

  /// Bitmask of slots whose SteM this tuple has already probed (policy aid).
  uint64_t probed_stems() const { return probed_stems_; }
  void MarkProbedStem(int slot) { probed_stems_ |= 1ULL << slot; }
  void SetProbedStemsMask(uint64_t mask) { probed_stems_ = mask; }

  /// Module ids (< 64) of access methods this tuple has probed; lets
  /// policies hedge a probe across competing AMs (paper §3.2) without
  /// re-probing the same one.
  uint64_t probed_ams() const { return probed_ams_; }
  void MarkProbedAm(int module_id) {
    if (module_id >= 0 && module_id < 64) probed_ams_ |= 1ULL << module_id;
  }

  /// Self-join support: a "retarget clone" is a copy of a built singleton
  /// moved to another slot of the same table; it probes only its table's
  /// original slot, with strict timestamp comparison, so every ordered pair
  /// is produced exactly once (see eddy/policies/policy_base.cc).
  bool is_retarget_clone() const { return is_retarget_clone_; }
  void set_is_retarget_clone(bool v) { is_retarget_clone_ = v; }
  bool retarget_spawned() const { return retarget_spawned_; }
  void set_retarget_spawned(bool v) { retarget_spawned_ = v; }

  /// Total routing steps taken; the eddy uses this as the BoundedRepetition
  /// backstop.
  uint32_t route_count() const { return route_count_; }
  void IncrementRouteCount() { ++route_count_; }

  /// Times this probe was deferred behind a spilled partition's
  /// asynchronous fault-in (SpillProbePolicy::kBounce). SteMs stop
  /// deferring past SpillOptions::max_probe_deferrals and fault in
  /// synchronously instead, so re-spills can never starve a probe.
  uint32_t spill_deferrals() const { return spill_deferrals_; }
  void IncrementSpillDeferrals() { ++spill_deferrals_; }

  /// Transient per-dispatch fields, set by the eddy just before delivery.
  RouteIntent route_intent() const { return route_intent_; }
  int route_target_slot() const { return route_target_slot_; }
  /// §extension for self-joins: exclude equal-timestamp matches on
  /// slot-retargeted probes so each ordered pair is produced exactly once.
  bool exclude_equal_ts() const { return exclude_equal_ts_; }
  void SetRouteInfo(RouteIntent intent, int target_slot,
                    bool exclude_equal_ts = false) {
    route_intent_ = intent;
    route_target_slot_ = target_slot;
    exclude_equal_ts_ = exclude_equal_ts;
  }

  /// Interactive priority (§4.1): prioritized tuples are bounced back by
  /// SteMs on index-AM tables so their matches enter the dataflow sooner.
  bool prioritized() const { return prioritized_; }
  void set_prioritized(bool p) { prioritized_ = p; }

  /// Matches found by this tuple's most recent SteM probe; policies use it
  /// to decide whether an index AM lookup is still worthwhile (a cache-miss
  /// signal, see eddy/policies/benefit_cost_policy.h).
  uint32_t last_probe_matches() const { return last_probe_matches_; }
  void set_last_probe_matches(uint32_t n) { last_probe_matches_ = n; }

  // --- derived --------------------------------------------------------------

  /// Concatenation (paper Table 1): a new tuple spanning this tuple's slots
  /// plus `row` at `slot`. Merges predicate state; the caller marks newly
  /// verified predicates on the result.
  TuplePtr ConcatWith(int slot, RowRef row, BuildTs row_ts) const;

  /// A copy of a singleton with its single component moved to `slot`
  /// (self-join retargeting).
  TuplePtr RetargetSingleton(int to_slot) const;

  // ValueSource:
  const Value* ValueAt(int slot, int col) const override;

  std::string ToString() const;

 private:
  std::vector<Component> components_;
  uint64_t spanned_mask_ = 0;
  uint64_t preds_passed_ = 0;
  uint64_t probed_stems_ = 0;
  uint64_t probed_ams_ = 0;
  BuildTs last_match_ts_ = 0;
  uint32_t route_count_ = 0;
  uint32_t spill_deferrals_ = 0;
  uint32_t last_probe_matches_ = 0;
  int probe_completion_slot_ = -1;
  bool probe_completed_ = false;
  bool is_seed_ = false;
  bool prioritized_ = false;
  bool is_retarget_clone_ = false;
  bool retarget_spawned_ = false;

  RouteIntent route_intent_ = RouteIntent::kAuto;
  int route_target_slot_ = -1;
  bool exclude_equal_ts_ = false;
};

}  // namespace stems
