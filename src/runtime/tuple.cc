#include "runtime/tuple.h"

#include <bit>
#include <cassert>

namespace stems {

TuplePtr Tuple::MakeSingleton(int num_slots, int slot, RowRef row) {
  auto t = std::make_shared<Tuple>(num_slots);
  t->SetComponent(slot, std::move(row));
  return t;
}

TuplePtr Tuple::MakeSeed(int num_slots) {
  auto t = std::make_shared<Tuple>(num_slots);
  t->is_seed_ = true;
  return t;
}

int Tuple::SpanSize() const { return std::popcount(spanned_mask_); }

int Tuple::SingletonSlot() const {
  if (SpanSize() != 1) return -1;
  return std::countr_zero(spanned_mask_);
}

void Tuple::SetComponent(int slot, RowRef row, BuildTs ts) {
  assert(slot >= 0 && slot < num_slots());
  components_[slot].row = std::move(row);
  components_[slot].timestamp = ts;
  if (components_[slot].row != nullptr) {
    spanned_mask_ |= 1ULL << slot;
  } else {
    spanned_mask_ &= ~(1ULL << slot);
  }
}

void Tuple::SetBuilt(int slot, BuildTs ts) {
  assert(Spans(slot));
  components_[slot].timestamp = ts;
}

BuildTs Tuple::Timestamp() const {
  BuildTs max_ts = 0;
  for (int s = 0; s < num_slots(); ++s) {
    if (!Spans(s)) continue;
    BuildTs ts = components_[s].timestamp;
    if (ts == kTsInfinity) return kTsInfinity;
    if (ts > max_ts) max_ts = ts;
  }
  return max_ts;
}

bool Tuple::AllComponentsBuilt() const {
  for (int s = 0; s < num_slots(); ++s) {
    if (Spans(s) && components_[s].timestamp == kTsInfinity) return false;
  }
  return true;
}

bool Tuple::IsEot() const {
  for (const auto& c : components_) {
    if (c.row != nullptr && c.row->IsEot()) return true;
  }
  return false;
}

TuplePtr Tuple::ConcatWith(int slot, RowRef row, BuildTs row_ts) const {
  assert(!Spans(slot) && "concatenation target slot already spanned");
  auto t = std::make_shared<Tuple>(num_slots());
  t->components_ = components_;
  t->spanned_mask_ = spanned_mask_;
  t->preds_passed_ = preds_passed_;
  t->prioritized_ = prioritized_;
  t->SetComponent(slot, std::move(row), row_ts);
  return t;
}

TuplePtr Tuple::RetargetSingleton(int to_slot) const {
  const int from = SingletonSlot();
  assert(from >= 0 && "retarget requires a singleton");
  auto t = std::make_shared<Tuple>(num_slots());
  t->SetComponent(to_slot, components_[from].row, components_[from].timestamp);
  t->prioritized_ = prioritized_;
  // Predicate state does not transfer: passed bits refer to the old slot.
  return t;
}

const Value* Tuple::ValueAt(int slot, int col) const {
  if (slot < 0 || slot >= num_slots()) return nullptr;
  const auto& c = components_[slot];
  if (c.row == nullptr || static_cast<size_t>(col) >= c.row->num_values()) {
    return nullptr;
  }
  return &c.row->value(col);
}

std::string Tuple::ToString() const {
  if (is_seed_) return "<seed>";
  std::string out = "{";
  bool first = true;
  for (int s = 0; s < num_slots(); ++s) {
    if (!Spans(s)) continue;
    if (!first) out += " ";
    first = false;
    out += "s" + std::to_string(s) + ":" + components_[s].row->ToString();
    if (components_[s].timestamp != kTsInfinity) {
      out += "@" + std::to_string(components_[s].timestamp);
    }
  }
  out += "}";
  return out;
}

}  // namespace stems
