#include "reference/brute_force.h"

#include <unordered_set>

namespace stems {

std::string ResultKey(const Tuple& tuple) {
  std::string key;
  for (int s = 0; s < tuple.num_slots(); ++s) {
    key += "|s" + std::to_string(s) + ":";
    if (tuple.Spans(s)) key += tuple.component(s).row->ToString();
  }
  return key;
}

std::set<std::string> BruteForceResultSet(const QuerySpec& query,
                                          const TableStore& store) {
  const int n = static_cast<int>(query.num_slots());

  // Deduplicate base tables (set semantics).
  std::vector<std::vector<RowRef>> tables(n);
  for (int s = 0; s < n; ++s) {
    const StoredTable* data =
        store.GetTable(query.slots()[s].table_name).ValueOrDie();
    std::unordered_set<RowRef, RowRefContentHash, RowRefContentEq> seen;
    for (const auto& row : data->rows()) {
      if (seen.insert(row).second) tables[s].push_back(row);
    }
  }

  std::set<std::string> results;
  // Iterative DFS over slot assignments with early predicate pruning.
  std::vector<size_t> cursor(n, 0);
  std::vector<TuplePtr> partials(n + 1);
  partials[0] = std::make_shared<Tuple>(n);
  int depth = 0;
  while (depth >= 0) {
    if (depth == n) {
      results.insert(ResultKey(*partials[n]));
      --depth;
      continue;
    }
    if (cursor[depth] >= tables[depth].size()) {
      cursor[depth] = 0;
      --depth;
      continue;
    }
    const RowRef& row = tables[depth][cursor[depth]++];
    TuplePtr next = partials[depth]->ConcatWith(depth, row, 0);
    bool pass = true;
    for (const auto& p : query.predicates()) {
      if (p.CanEvaluate(next->spanned_mask()) &&
          !p.CanEvaluate(partials[depth]->spanned_mask())) {
        if (!p.Evaluate(*next)) {
          pass = false;
          break;
        }
      }
    }
    if (!pass) continue;
    partials[depth + 1] = next;
    ++depth;
  }
  return results;
}

std::set<std::string> KeysOf(const std::vector<TuplePtr>& results,
                             std::vector<std::string>* duplicates) {
  std::set<std::string> keys;
  for (const auto& t : results) {
    std::string key = ResultKey(*t);
    if (!keys.insert(key).second && duplicates != nullptr) {
      duplicates->push_back(key);
    }
  }
  return keys;
}

}  // namespace stems
