// BruteForceEvaluator: ground truth for correctness tests.
//
// Computes the full select-project-join result by nested iteration over the
// stored tables (set semantics: base tables are deduplicated first, to
// match the SteM's set-semantics duplicate elimination, paper §3.2).
#pragma once

#include <set>
#include <string>
#include <vector>

#include "query/query_spec.h"
#include "runtime/tuple.h"
#include "storage/table_store.h"

namespace stems {

/// Canonical serialization of a full-span result tuple, independent of the
/// path that produced it.
std::string ResultKey(const Tuple& tuple);

/// All query results as canonical keys.
std::set<std::string> BruteForceResultSet(const QuerySpec& query,
                                          const TableStore& store);

/// Canonical keys of an executed result list (e.g. Eddy::results()).
/// `duplicates` (optional) receives keys that appeared more than once.
std::set<std::string> KeysOf(const std::vector<TuplePtr>& results,
                             std::vector<std::string>* duplicates = nullptr);

}  // namespace stems
