// Value: the scalar cell type of the engine.
//
// A Value is null, an int64, a double, a string, or the special EOT marker
// used by End-Of-Transmission tuples (paper §2.1.3): an AM that has returned
// all matches for a probe emits a tuple with EOT markers in the non-bound
// fields, and that tuple is stored in SteMs alongside regular tuples.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <variant>

namespace stems {

enum class ValueType : uint8_t { kNull = 0, kInt64, kDouble, kString, kEot };

class Value {
 public:
  /// Null value.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int64(int64_t v) { return Value(Repr(std::in_place_index<1>, v)); }
  static Value Double(double v) { return Value(Repr(std::in_place_index<2>, v)); }
  static Value String(std::string v) {
    return Value(Repr(std::in_place_index<3>, std::move(v)));
  }
  /// The EOT marker (paper §2.1.3). Compares equal only to itself.
  static Value Eot() { return Value(Repr(std::in_place_index<4>, EotTag{})); }

  ValueType type() const { return static_cast<ValueType>(repr_.index()); }
  bool is_null() const { return type() == ValueType::kNull; }
  bool is_eot() const { return type() == ValueType::kEot; }

  int64_t AsInt64() const { return std::get<1>(repr_); }
  double AsDouble() const { return std::get<2>(repr_); }
  const std::string& AsString() const { return std::get<3>(repr_); }

  /// Numeric value as double (int64 widened); only valid for numeric types.
  double NumericValue() const;

  /// SQL-style equality except: null == null is true here (we use Value
  /// equality for set-semantics duplicate elimination, paper §3.2, where
  /// "identical tuple" includes identical nulls). Predicate evaluation
  /// treats null comparisons as false separately (see expr/predicate.h).
  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// Total order over values: by type first (null < int64/double < string
  /// < eot), numerics compared cross-type by numeric value.
  bool operator<(const Value& other) const;

  /// Hash consistent with operator==.
  size_t Hash() const;

  std::string ToString() const;

 private:
  struct EotTag {
    bool operator==(const EotTag&) const { return true; }
  };
  using Repr =
      std::variant<std::monostate, int64_t, double, std::string, EotTag>;
  explicit Value(Repr repr) : repr_(std::move(repr)) {}

  Repr repr_;
};

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace stems
