// Column and table schemas.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "types/value.h"

namespace stems {

/// Definition of one column of a base table.
struct ColumnDef {
  std::string name;
  ValueType type = ValueType::kInt64;
};

/// An ordered list of named, typed columns.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<ColumnDef> columns);

  size_t num_columns() const { return columns_.size(); }
  const ColumnDef& column(size_t i) const { return columns_[i]; }
  const std::vector<ColumnDef>& columns() const { return columns_; }

  /// Index of the column with the given name, if any.
  std::optional<size_t> FindColumn(const std::string& name) const;

  std::string ToString() const;

 private:
  std::vector<ColumnDef> columns_;
};

/// Identifies a column of a table *instance* in a query: (table slot, column
/// ordinal). Table slots index the FROM list, so self-joins get distinct
/// slots even though they share a SteM (paper §2.2).
struct ColumnRef {
  int table_slot = -1;
  int column = -1;

  bool operator==(const ColumnRef& other) const = default;
};

}  // namespace stems
