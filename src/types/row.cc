#include "types/row.h"

namespace stems {

size_t Row::Hash() const {
  size_t h = is_eot_ ? 0x51ed270b0u : 0x811c9dc5u;
  for (const auto& v : values_) {
    h ^= v.Hash() + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
  }
  return h;
}

std::string Row::ToString() const {
  std::string out = is_eot_ ? "EOT[" : "[";
  for (size_t i = 0; i < values_.size(); ++i) {
    if (i > 0) out += ", ";
    out += values_[i].ToString();
  }
  out += "]";
  return out;
}

RowRef MakeRow(std::vector<Value> values) {
  return std::make_shared<const Row>(std::move(values));
}

RowRef MakeEotRowRef(std::vector<Value> values) {
  return std::make_shared<const Row>(std::move(values), /*is_eot=*/true);
}

}  // namespace stems
