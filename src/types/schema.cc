#include "types/schema.h"

namespace stems {

Schema::Schema(std::vector<ColumnDef> columns) : columns_(std::move(columns)) {}

std::optional<size_t> Schema::FindColumn(const std::string& name) const {
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  return std::nullopt;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) out += ", ";
    out += columns_[i].name;
  }
  out += ")";
  return out;
}

}  // namespace stems
