#include "types/value.h"

#include <cassert>
#include <cmath>
#include <cstdio>

namespace stems {

double Value::NumericValue() const {
  switch (type()) {
    case ValueType::kInt64:
      return static_cast<double>(AsInt64());
    case ValueType::kDouble:
      return AsDouble();
    default:
      assert(false && "NumericValue on non-numeric Value");
      return 0;
  }
}

bool Value::operator==(const Value& other) const {
  const bool numeric_a =
      type() == ValueType::kInt64 || type() == ValueType::kDouble;
  const bool numeric_b =
      other.type() == ValueType::kInt64 || other.type() == ValueType::kDouble;
  if (numeric_a && numeric_b) {
    return NumericValue() == other.NumericValue();
  }
  return repr_ == other.repr_;
}

bool Value::operator<(const Value& other) const {
  auto rank = [](ValueType t) -> int {
    switch (t) {
      case ValueType::kNull:
        return 0;
      case ValueType::kInt64:
      case ValueType::kDouble:
        return 1;
      case ValueType::kString:
        return 2;
      case ValueType::kEot:
        return 3;
    }
    return 4;
  };
  const int ra = rank(type()), rb = rank(other.type());
  if (ra != rb) return ra < rb;
  switch (ra) {
    case 0:
    case 3:
      return false;  // nulls (and EOTs) are mutually equal
    case 1:
      return NumericValue() < other.NumericValue();
    case 2:
      return AsString() < other.AsString();
  }
  return false;
}

size_t Value::Hash() const {
  switch (type()) {
    case ValueType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case ValueType::kInt64:
      // Hash through double so that Int64(3) and Double(3.0), which compare
      // equal, also hash equal.
      return std::hash<double>()(static_cast<double>(AsInt64()));
    case ValueType::kDouble:
      return std::hash<double>()(AsDouble());
    case ValueType::kString:
      return std::hash<std::string>()(AsString());
    case ValueType::kEot:
      return 0x2545f4914f6cdd1dULL;
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return std::to_string(AsInt64());
    case ValueType::kDouble: {
      char buf[32];
      std::snprintf(buf, sizeof(buf), "%g", AsDouble());
      return buf;
    }
    case ValueType::kString:
      return "'" + AsString() + "'";
    case ValueType::kEot:
      return "EOT";
  }
  return "?";
}

}  // namespace stems
