// Row: a single base-table tuple (one base-table component, paper Def. 1).
//
// Rows are immutable once created and shared by reference: a row built into
// a SteM and appearing inside many concatenated result tuples is stored once.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "types/value.h"

namespace stems {

class Row;
using RowRef = std::shared_ptr<const Row>;

class Row {
 public:
  /// `is_eot` marks an End-Of-Transmission tuple (paper §2.1.3). The paper
  /// encodes EOTs purely by placing EOT markers in non-bound fields; we
  /// additionally carry an explicit flag because an EOT whose bind columns
  /// cover the whole schema has no non-bound field left to mark (e.g. an
  /// index EOT on a single-column table).
  explicit Row(std::vector<Value> values, bool is_eot = false)
      : values_(std::move(values)), is_eot_(is_eot) {
    if (!is_eot_) {
      for (const auto& v : values_) {
        if (v.is_eot()) {
          is_eot_ = true;
          break;
        }
      }
    }
  }

  size_t num_values() const { return values_.size(); }
  const Value& value(size_t i) const { return values_[i]; }
  const std::vector<Value>& values() const { return values_; }

  /// True iff this row is an End-Of-Transmission tuple, not data.
  bool IsEot() const { return is_eot_; }

  /// Content equality (used for set-semantics duplicate removal, §3.2);
  /// EOT rows never equal data rows.
  bool operator==(const Row& other) const {
    return is_eot_ == other.is_eot_ && values_ == other.values_;
  }

  /// Hash of all values, consistent with operator==.
  size_t Hash() const;

  std::string ToString() const;

 private:
  std::vector<Value> values_;
  bool is_eot_ = false;
};

/// Convenience builders.
RowRef MakeRow(std::vector<Value> values);
RowRef MakeEotRowRef(std::vector<Value> values);

struct RowRefContentHash {
  size_t operator()(const RowRef& r) const { return r->Hash(); }
};
struct RowRefContentEq {
  bool operator()(const RowRef& a, const RowRef& b) const { return *a == *b; }
};

}  // namespace stems
