#include "exec/morsel_router.h"

namespace stems {

MorselRouter::MorselRouter(size_t num_slots, const std::string& policy,
                           uint64_t seed, int worker_id)
    : stats_(num_slots),
      rng_(seed * 0x9e3779b97f4a7c15ULL + static_cast<uint64_t>(worker_id)) {
  if (policy == "lottery") {
    kind_ = Kind::kLottery;
  } else if (policy == "benefit_cost") {
    kind_ = Kind::kBenefitCost;
  } else {
    kind_ = Kind::kFirstCandidate;
  }
}

int MorselRouter::ChooseTarget(const Tuple& tuple,
                               const std::vector<int>& candidates) {
  (void)tuple;
  if (candidates.size() == 1) return candidates.front();
  switch (kind_) {
    case Kind::kFirstCandidate:
      return candidates.front();
    case Kind::kLottery: {
      // Ticket weight favours selective SteMs (few matches per probe), the
      // lottery's reward signal, with one base ticket so every candidate
      // keeps a nonzero chance (exploration).
      double total = 0;
      std::vector<double> weight(candidates.size());
      for (size_t i = 0; i < candidates.size(); ++i) {
        const SlotStats& s = stats_[static_cast<size_t>(candidates[i])];
        const double avg_matches =
            s.probes == 0
                ? 1.0
                : static_cast<double>(s.matches) / static_cast<double>(s.probes);
        weight[i] = 1.0 / (1.0 + avg_matches);
        total += weight[i];
      }
      std::uniform_real_distribution<double> dist(0.0, total);
      double draw = dist(rng_);
      for (size_t i = 0; i < candidates.size(); ++i) {
        draw -= weight[i];
        if (draw <= 0) return candidates[i];
      }
      return candidates.back();
    }
    case Kind::kBenefitCost: {
      // Benefit/cost on local history: prefer the probe expected to shrink
      // the dataflow most per entry scanned; unprobed SteMs first (their
      // score is unknown, and probing them is the cheapest way to learn).
      int best = candidates.front();
      double best_score = -1;
      for (int slot : candidates) {
        const SlotStats& s = stats_[static_cast<size_t>(slot)];
        if (s.probes == 0) return slot;
        const double avg_matches =
            static_cast<double>(s.matches) / static_cast<double>(s.probes);
        const double avg_scanned =
            static_cast<double>(s.scanned) / static_cast<double>(s.probes);
        const double score = 1.0 / ((1.0 + avg_matches) * (1.0 + avg_scanned));
        if (score > best_score) {
          best_score = score;
          best = slot;
        }
      }
      return best;
    }
  }
  return candidates.front();
}

void MorselRouter::RecordProbe(int slot, uint64_t scanned, uint64_t matches) {
  SlotStats& s = stats_[static_cast<size_t>(slot)];
  ++s.probes;
  s.scanned += scanned;
  s.matches += matches;
}

}  // namespace stems
