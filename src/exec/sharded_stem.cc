#include "exec/sharded_stem.h"

#include <algorithm>
#include <chrono>

namespace stems {

namespace {

/// Scoped shard lock that accounts contention: the uncontended path is one
/// try_lock; only when that fails does it read the clock and charge the
/// blocked time to the run's shared counters.
class STEMS_SCOPED_CAPABILITY ContentionLock {
 public:
  ContentionLock(Mutex& mu, ShardedSpillState* spill) STEMS_ACQUIRE(mu)
      : mu_(mu) {
    if (mu_.TryLock()) return;
    const auto start = std::chrono::steady_clock::now();
    mu_.Lock();
    if (spill != nullptr) {
      const auto waited = std::chrono::steady_clock::now() - start;
      spill->lock_waits.fetch_add(1, std::memory_order_relaxed);
      spill->lock_wait_ns.fetch_add(
          static_cast<uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(waited)
                  .count()),
          std::memory_order_relaxed);
    }
  }
  ~ContentionLock() STEMS_RELEASE() { mu_.Unlock(); }
  ContentionLock(const ContentionLock&) = delete;
  ContentionLock& operator=(const ContentionLock&) = delete;

 private:
  Mutex& mu_;
};

/// Rough in-memory footprint of a row, for the spill byte counters (the
/// same order of accounting the simulated spill files use).
uint64_t ApproxRowBytes(const Row& row) {
  return 16 + 16 * static_cast<uint64_t>(row.num_values());
}

uint64_t PagesFor(uint64_t bytes) { return bytes / 4096 + 1; }

}  // namespace

bool ShardedStem::mutation_ts_outside_lock_for_test = false;

ShardedStem::ShardedStem(int slot, const QuerySpec& query, size_t num_shards,
                         Atomic<BuildTs>* ts_counter,
                         ShardedSpillState* spill)
    : slot_(slot), query_(query), ts_counter_(ts_counter), spill_(spill) {
  for (const auto& pred : query.predicates()) {
    if (!pred.is_join() || pred.op() != CompareOp::kEq) continue;
    auto col = pred.EquiJoinColumnFor(slot_);
    if (!col.has_value()) continue;
    if (std::find(index_columns_.begin(), index_columns_.end(), *col) ==
        index_columns_.end()) {
      index_columns_.push_back(*col);
    }
  }
  std::sort(index_columns_.begin(), index_columns_.end());
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    auto shard = std::make_unique<Shard>();
    // The shard is private until the constructor returns; the lock exists
    // to satisfy the guarded_by contract, and is uncontended by definition.
    MutexLock lock(&shard->mu);
    shard->indexes.resize(index_columns_.size());
    shards_.push_back(std::move(shard));
  }
}

size_t ShardedStem::ShardOfValue(const Value& v) const {
  return v.Hash() % shards_.size();
}

size_t ShardedStem::ShardOfRow(const Row& row) const {
  // Placement must agree with probe routing: shard by the first equi-join
  // column when one exists, else spread by content hash (such stems are
  // only ever scanned in full).
  if (!index_columns_.empty()) {
    return ShardOfValue(row.value(static_cast<size_t>(index_columns_[0])));
  }
  return row.Hash() % shards_.size();
}

ShardedStem::BuildResult ShardedStem::Build(const RowRef& row) {
  Shard& shard = *shards_[ShardOfRow(*row)];
  BuildResult out;
  // Deliberately broken ordering for the harness's mutation check: issuing
  // the timestamp out here decouples it from the entry's publication, and
  // the model checker must find the interleaving where that loses a match.
  BuildTs mutated_ts = kTsInfinity;
  if (mutation_ts_outside_lock_for_test) {
    mutated_ts = ts_counter_->fetch_add(1);
  }
  {
    ContentionLock lock(shard.mu, spill_);
    if (shard.dedup.count(row) > 0) return out;  // absorbed (§3.2)
    // Timestamp issuance and entry publication share this critical
    // section — the visibility contract every probe relies on.
    out.ts = mutation_ts_outside_lock_for_test ? mutated_ts
                                               : ts_counter_->fetch_add(1);
    out.inserted = true;
    const auto ord = static_cast<uint32_t>(shard.entries.size());
    shard.entries.push_back(Entry{row, out.ts});
    shard.dedup.insert(row);
    if (shard.resident) {
      for (size_t i = 0; i < index_columns_.size(); ++i) {
        shard.indexes[i][row->value(static_cast<size_t>(index_columns_[i]))]
            .push_back(ord);
      }
      if (spill_ != nullptr && spill_->budget_entries > 0) {
        spill_->resident.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (spill_ != nullptr) {
      // Appending behind a spilled shard goes straight to its run file:
      // no index maintenance now (FaultInLocked rebuilds from the entry
      // log), one simulated write.
      const uint64_t bytes = ApproxRowBytes(*row);
      spill_->entries_spilled.fetch_add(1, std::memory_order_relaxed);
      spill_->bytes_spilled.fetch_add(bytes, std::memory_order_relaxed);
      spill_->spill_ios.fetch_add(1, std::memory_order_relaxed);
    }
  }
  if (out.inserted && spill_ != nullptr && spill_->budget_entries > 0) {
    EnforceBudget(&shard);
  }
  if (out.inserted) entries_.fetch_add(1, std::memory_order_relaxed);
  return out;
}

void ShardedStem::ProbeBindings(const Tuple& probe, Bindings* out) const {
  out->clear();
  for (const auto& pred : query_.predicates()) {
    if (!pred.is_join() || pred.op() != CompareOp::kEq) continue;
    auto col = pred.EquiJoinColumnFor(slot_);
    if (!col.has_value()) continue;
    auto peer = pred.EquiJoinPeerOf(slot_);
    if (!peer.has_value() || peer->table_slot == slot_) continue;
    if (!probe.Spans(peer->table_slot)) continue;
    const Value* v = probe.ValueAt(peer->table_slot, peer->column);
    if (v != nullptr) out->emplace_back(*col, *v);
  }
}

uint64_t ShardedStem::ProbeShard(Shard* shard, int idx, const Value* key,
                                 BuildTs probe_ts, Matches* out) {
  ContentionLock lock(shard->mu, spill_);
  if (!shard->resident) FaultInLocked(shard);
  uint64_t scanned = 0;
  auto visit = [&](const Entry& e) {
    ++scanned;
    if (e.ts <= probe_ts) out->emplace_back(e.row, e.ts);
  };
  if (idx >= 0) {
    auto it = shard->indexes[static_cast<size_t>(idx)].find(*key);
    if (it != shard->indexes[static_cast<size_t>(idx)].end()) {
      for (uint32_t ord : it->second) visit(shard->entries[ord]);
    }
  } else {
    for (const Entry& e : shard->entries) visit(e);
  }
  return scanned;
}

std::pair<int, int> ShardedStem::IndexForBindings(
    const Bindings& bindings) const {
  std::pair<int, int> best{-1, -1};
  for (size_t b = 0; b < bindings.size(); ++b) {
    auto it = std::find(index_columns_.begin(), index_columns_.end(),
                        bindings[b].first);
    if (it == index_columns_.end()) continue;
    const int pos = static_cast<int>(it - index_columns_.begin());
    if (pos == 0) return {static_cast<int>(b), 0};  // shard key: best case
    if (best.second < 0) best = {static_cast<int>(b), pos};
  }
  return best;
}

void ShardedStem::FaultInLocked(Shard* shard) {
  shard->indexes.assign(index_columns_.size(), ColumnIndex{});
  for (uint32_t ord = 0; ord < shard->entries.size(); ++ord) {
    const Row& row = *shard->entries[ord].row;
    for (size_t i = 0; i < index_columns_.size(); ++i) {
      shard->indexes[i][row.value(static_cast<size_t>(index_columns_[i]))]
          .push_back(ord);
    }
  }
  shard->resident = true;
  if (spill_ != nullptr) {
    const auto n = static_cast<int64_t>(shard->entries.size());
    uint64_t bytes = 0;
    for (const Entry& e : shard->entries) bytes += ApproxRowBytes(*e.row);
    spill_->resident.fetch_add(n, std::memory_order_relaxed);
    spill_->entries_spilled.fetch_sub(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
    spill_->spill_ios.fetch_add(PagesFor(bytes), std::memory_order_relaxed);
    spill_->faults.fetch_add(1, std::memory_order_relaxed);
    // The budget may now be transiently exceeded; the next build's
    // EnforceBudget pass restores it (the simulated spill subsystem
    // over-commits across a fault-in the same way).
  }
}

void ShardedStem::EnforceBudget(const Shard* except) {
  while (spill_->resident.load(std::memory_order_relaxed) >
         static_cast<int64_t>(spill_->budget_entries)) {
    // Victim: this stem's largest resident shard. Each shard is locked
    // only for the size/residency peek (entry counts only grow, so the
    // sampled victim stays reasonable even if it grows meanwhile). Avoid
    // the shard just built into — spilling it would thrash.
    Shard* victim = nullptr;
    size_t victim_size = 0;
    for (auto& shard : shards_) {
      if (shard.get() == except) continue;
      MutexLock lock(&shard->mu);
      if (!shard->resident) continue;
      const size_t n = shard->entries.size();
      if (n > victim_size) {
        victim = shard.get();
        victim_size = n;
      }
    }
    if (victim == nullptr) return;  // nothing local left to spill
    MutexLock lock(&victim->mu);
    if (!victim->resident || victim->entries.empty()) continue;
    victim->indexes.clear();
    victim->resident = false;
    const auto n = static_cast<int64_t>(victim->entries.size());
    uint64_t bytes = 0;
    for (const Entry& e : victim->entries) bytes += ApproxRowBytes(*e.row);
    spill_->resident.fetch_sub(n, std::memory_order_relaxed);
    spill_->entries_spilled.fetch_add(static_cast<uint64_t>(n),
                                      std::memory_order_relaxed);
    spill_->bytes_spilled.fetch_add(bytes, std::memory_order_relaxed);
    spill_->spill_ios.fetch_add(PagesFor(bytes), std::memory_order_relaxed);
  }
}

std::pair<size_t, size_t> ShardedStem::ShardResidency() const {
  size_t resident = 0;
  size_t spilled = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mu);
    if (shard->entries.empty()) continue;
    if (shard->resident) {
      ++resident;
    } else {
      ++spilled;
    }
  }
  return {resident, spilled};
}

}  // namespace stems
