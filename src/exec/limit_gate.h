// LimitGate: the threaded executor's exact-LIMIT admission protocol,
// extracted so the schedule-exploration harness (src/check/) can drive the
// real protocol object over every interleaving.
//
// The protocol is one fetch_add race: the first `limit` admissions win, the
// winner of slot limit-1 raises the stop flag, everyone else drains. Any
// interleaving is a valid serialization — the invariant the harness checks
// is *exactly once*: across all workers, precisely `limit` TryAdmit calls
// return admitted=true and precisely one returns filled=true, no matter how
// the fetch_adds and the stop-flag store interleave.
//
// Built on stems::Atomic so each access is a scheduling yield point under
// the model checker (and a plain std::atomic op in production).
#pragma once

#include <cstdint>

#include "common/thread_annotations.h"

namespace stems {

class LimitGate {
 public:
  /// `limit` = max admissions; UINT64_MAX = unlimited.
  explicit LimitGate(uint64_t limit = UINT64_MAX) : limit_(limit) {}
  LimitGate(const LimitGate&) = delete;
  LimitGate& operator=(const LimitGate&) = delete;

  /// Single-threaded setup only (before workers start).
  void SetLimit(uint64_t limit) { limit_ = limit; }
  uint64_t limit() const { return limit_; }

  struct Admit {
    bool admitted = false;  ///< this call won one of the `limit` slots
    bool filled = false;    ///< this call won the *last* slot (raises stop)
  };

  /// The admission race. Exactly `limit` calls return admitted across all
  /// threads; exactly one of those returns filled.
  Admit TryAdmit() {
    Admit out;
    const uint64_t n = admitted_.fetch_add(1);
    if (n >= limit_) return out;
    out.admitted = true;
    if (n + 1 == limit_) {
      out.filled = true;
      // LIMIT filled: this is the whole cancel path — one flag. The store
      // order (limit_reached before stop) is what Fetch observers rely on:
      // whoever sees stop also owes them a defined limit_reached.
      limit_reached_.store(true);
      stop_.store(true);
    }
    return out;
  }

  /// External cancel: drain without marking the limit as reached.
  void RequestStop() { stop_.store(true); }

  /// Advisory drain flag; a worker that reads a stale false does a bounded
  /// amount of extra (discarded) work, never wrong work.
  bool stop_requested() const { return stop_.load(); }
  bool limit_reached() const { return limit_reached_.load(); }

 private:
  uint64_t limit_;
  /// sync: the LIMIT admission counter — the fetch_add race decides which
  /// `limit` admissions win (exactly-once by construction, any order is a
  /// valid serialization). stems::Atomic: a model-checking yield point.
  Atomic<uint64_t> admitted_{0};
  /// sync: drain + limit flags, stored only by the filling admission (or an
  /// external cancel), read by every worker. stems::Atomic (yield points).
  Atomic<bool> stop_{false};
  Atomic<bool> limit_reached_{false};
};

}  // namespace stems
