// ShardedStem: the threaded executor's concurrent build/probe state store.
//
// One ShardedStem per table slot, hash-partitioned into shards so workers
// building and probing the same SteM contend only per shard, never globally
// (docs/parallelism.md covers the ownership rules). Each shard owns:
//   - its entry log (row + build timestamp),
//   - the content-dedup set enforcing the paper's §3.2 set semantics,
//   - one hash index per equi-join column of the slot.
//
// Visibility contract (the threaded analogue of the §3.1 timestamp rule):
// a build issues its timestamp from the query-global atomic counter and
// inserts the entry *inside the same shard critical section*, and a probe
// issues no timestamps and reads under the same shard mutex. Together with
// the probe-side filter `entry_ts <= probe_ts` this gives the symmetric-
// join guarantee: for any two rows r, s with ts(r) < ts(s), s's probe is
// ordered after r's insert (else s's probe section — which follows s's own
// ts issuance in program order — would precede r's issuance, contradicting
// ts(r) < ts(s)), so exactly the newer row observes the older one.
//
// Spill-lite: under a global resident-entry budget (the threaded mapping of
// RunOptions::LargerThanMemory) whole shards are "spilled" — their hash
// indexes are dropped and their entries accounted off-budget, standing in
// for a partitioned run file exactly like the simulated spill subsystem
// keeps its run files in memory. A probe touching a spilled shard faults it
// back in (rebuilds the indexes, re-charges the budget). Results are never
// affected, only the I/O counters and fault-in work.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"
#include "query/query_spec.h"
#include "runtime/tuple.h"
#include "types/row.h"
#include "types/value.h"

namespace stems {

/// Budget + counters shared by all ShardedStems of one threaded query run.
/// relaxed: every field is a monotone statistic accumulated by many workers
/// and only read after the workers join (or for a best-effort budget check);
/// no field orders any other memory access. They stay std::atomic (not the
/// schedulable stems::Atomic) deliberately: statistics are not part of any
/// sync protocol, and turning them into yield points would blow up the
/// model checker's state space for zero coverage.
struct ShardedSpillState {
  /// Resident-entry budget across all stems (0 = unlimited).
  size_t budget_entries = 0;
  /// Entries currently charged against the budget (resident shards only).
  // invariant: allow(schedulable-atomic) -- relaxed: best-effort budget statistic, not a sync protocol (struct doc)
  std::atomic<int64_t> resident{0};
  // invariant: allow(schedulable-atomic) -- relaxed: monotone statistic (struct doc)
  std::atomic<uint64_t> spill_ios{0};
  // invariant: allow(schedulable-atomic) -- relaxed: monotone statistic (struct doc)
  std::atomic<uint64_t> bytes_spilled{0};
  // invariant: allow(schedulable-atomic) -- relaxed: monotone statistic (struct doc)
  std::atomic<uint64_t> entries_spilled{0};  ///< entries currently off-budget
  // invariant: allow(schedulable-atomic) -- relaxed: monotone statistic (struct doc)
  std::atomic<uint64_t> faults{0};  ///< relaxed: shard fault-ins by probes
  /// relaxed: shard-mutex contention counters for the hot paths (Build /
  /// ProbeShard): how many acquisitions found the mutex held, and the wall
  /// time spent blocked. The uncontended path pays one try_lock and no
  /// clock read.
  // invariant: allow(schedulable-atomic) -- relaxed: monotone statistic (struct doc)
  std::atomic<uint64_t> lock_waits{0};
  // invariant: allow(schedulable-atomic) -- relaxed: monotone statistic (struct doc)
  std::atomic<uint64_t> lock_wait_ns{0};
};

class ShardedStem {
 public:
  /// `ts_counter` is the query-global build-timestamp source (the threaded
  /// TimestampAuthority); `spill` may be null for unbudgeted runs.
  ShardedStem(int slot, const QuerySpec& query, size_t num_shards,
              Atomic<BuildTs>* ts_counter, ShardedSpillState* spill);

  /// Test-only mutation switch for the schedule-exploration harness: when
  /// true, Build issues the timestamp *before* entering the shard critical
  /// section — the exact §3.1 violation the visibility contract forbids.
  /// The model checker must find an interleaving where a probe pair loses
  /// a match (tests/test_schedule_explore.cc), proving the harness can see
  /// through correctly-locked-but-misordered code. Never set in production.
  static bool mutation_ts_outside_lock_for_test;

  ShardedStem(const ShardedStem&) = delete;
  ShardedStem& operator=(const ShardedStem&) = delete;

  struct BuildResult {
    bool inserted = false;  ///< false: content duplicate, absorbed (§3.2)
    BuildTs ts = kTsInfinity;
  };

  /// Inserts `row` unless an identical row is already stored. On insert the
  /// timestamp is issued and the entry published atomically w.r.t. probes
  /// of the same shard (see the visibility contract above).
  BuildResult Build(const RowRef& row);

  /// Equality bindings a probe carries: (column of this slot, value).
  using Bindings = std::vector<std::pair<int, Value>>;

  /// Computes the equality bindings tuple `probe` provides for this slot
  /// from the query's equi-join predicates (§2.1.4's index bind columns).
  void ProbeBindings(const Tuple& probe, Bindings* out) const;

  /// Invokes `fn(row, entry_ts)` for every stored entry matching `bindings`
  /// with `entry_ts <= probe_ts` (§3.1's probe-side filter). A binding on
  /// the shard-key column routes to one shard; a binding on another indexed
  /// column uses that column's per-shard index across all shards; no usable
  /// binding (range joins, cross products) scans everything. Returns the
  /// number of entries examined (the router's cost signal).
  /// A probe match handed back to the prober: the stored row + its build
  /// timestamp, copied out of the shard so the (expensive) continuation —
  /// predicate evaluation, concatenation, cascading — runs *outside* the
  /// shard critical section and never serializes other workers. Deferring
  /// the continuation cannot change the match set: which entries a probe
  /// observes is fixed at lock time, and the visibility contract only
  /// constrains the scan itself.
  using Matches = std::vector<std::pair<RowRef, BuildTs>>;

  template <typename Fn>
  uint64_t Probe(const Bindings& bindings, BuildTs probe_ts, Fn&& fn,
                 Matches* scratch = nullptr) {
    Matches local;
    Matches& matches = scratch != nullptr ? *scratch : local;
    matches.clear();
    const auto [binding_pos, index_pos] = IndexForBindings(bindings);
    uint64_t scanned = 0;
    if (index_pos >= 0) {
      const Value& key = bindings[static_cast<size_t>(binding_pos)].second;
      if (index_pos == 0) {
        // Binding on the shard key: entries with this value live in exactly
        // one shard (builds are placed by the same column).
        scanned = ProbeShard(shards_[ShardOfValue(key)].get(), 0, &key,
                             probe_ts, &matches);
      } else {
        for (auto& shard : shards_) {
          scanned +=
              ProbeShard(shard.get(), index_pos, &key, probe_ts, &matches);
        }
      }
    } else {
      for (auto& shard : shards_) {
        scanned += ProbeShard(shard.get(), -1, nullptr, probe_ts, &matches);
      }
    }
    for (auto& [row, ts] : matches) fn(row, ts);
    return scanned;
  }

  int slot() const { return slot_; }
  size_t num_shards() const { return shards_.size(); }
  /// (resident, spilled) shard counts; sampled without a global lock.
  std::pair<size_t, size_t> ShardResidency() const;
  uint64_t num_entries() const { return entries_.load(std::memory_order_relaxed); }

 private:
  struct Entry {
    RowRef row;
    BuildTs ts;
  };
  /// Value -> entry ordinals, one map per indexed equi-join column.
  using ColumnIndex =
      std::unordered_map<Value, std::vector<uint32_t>, ValueHash>;

  /// Cache-line separated so two workers on adjacent shards never share.
  /// All state is guarded by `mu` — the shard critical section of the §3.1
  /// visibility contract — so an access outside it is a compile error
  /// under -Wthread-safety.
  struct alignas(64) Shard {
    mutable Mutex mu;
    std::vector<Entry> entries STEMS_GUARDED_BY(mu);
    std::unordered_set<RowRef, RowRefContentHash, RowRefContentEq> dedup
        STEMS_GUARDED_BY(mu);
    /// Parallel to index_columns_.
    std::vector<ColumnIndex> indexes STEMS_GUARDED_BY(mu);
    /// false: indexes dropped, entries off-budget.
    bool resident STEMS_GUARDED_BY(mu) = true;
  };

  /// (position in `bindings`, position in `index_columns_`) of the best
  /// indexable binding — the shard-key column if bound, else any other
  /// indexed column — or (-1, -1) when no binding is indexable.
  std::pair<int, int> IndexForBindings(const Bindings& bindings) const;
  size_t ShardOfValue(const Value& v) const;
  size_t ShardOfRow(const Row& row) const;

  /// Probes one shard under its mutex (faulting it in first when spilled)
  /// and appends the ts-filtered matches to `out`. Only the scan holds the
  /// lock; RowRefs are copied out so `out` stays valid after unlock even
  /// if a concurrent build reallocates the entry log.
  uint64_t ProbeShard(Shard* shard, int idx, const Value* key,
                      BuildTs probe_ts, Matches* out);

  /// Rebuilds a spilled shard's indexes and re-charges the budget.
  void FaultInLocked(Shard* shard) STEMS_REQUIRES(shard->mu);
  /// Drops the indexes of the largest resident shard other than `except`
  /// until the budget is met (or nothing is left to spill).
  void EnforceBudget(const Shard* except);

  const int slot_;
  const QuerySpec& query_;
  /// sync: the query-global timestamp authority; fetch_add is issued inside
  /// the shard critical section (see Build), the shard mutex provides the
  /// ordering the §3.1 contract needs. stems::Atomic: a yield point under
  /// the model checker.
  Atomic<BuildTs>* const ts_counter_;
  ShardedSpillState* const spill_;
  /// Equi-join columns of this slot, ascending; the first is the shard key.
  std::vector<int> index_columns_;
  std::vector<std::unique_ptr<Shard>> shards_;
  /// relaxed: monotone statistic (total inserted entries across shards);
  /// sampled by observers, never used to order other accesses.
  // invariant: allow(schedulable-atomic) -- observer statistic, not a sync protocol
  std::atomic<uint64_t> entries_{0};
};

}  // namespace stems
