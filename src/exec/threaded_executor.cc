#include "exec/threaded_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "eddy/tuple_batch.h"
#include "engine/run_options.h"
#include "exec/limit_gate.h"
#include "exec/morsel_router.h"
#include "exec/sharded_stem.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"
#include "query/join_graph.h"
#include "query/query_spec.h"
#include "storage/table_store.h"

namespace stems {

namespace {

/// Shards per SteM. Plenty for 64 workers' worth of lock spreading while
/// keeping per-shard hash maps dense; also the spill-lite granularity.
constexpr size_t kShardsPerStem = 64;

/// A contiguous row range of one table slot — what a worker claims, and
/// materializes into the TupleBatch morsel.
struct SourceChunk {
  int slot;
  size_t begin;
  size_t end;
};

}  // namespace

struct ThreadPoolExecutor::WorkerState {
  WorkerCounters counters;
  std::vector<TuplePtr> results;
  std::unique_ptr<MorselRouter> router;
  std::vector<TuplePtr> cascade_stack;
  std::vector<int> candidates_scratch;
  std::vector<int> passed_scratch;
  ShardedStem::Bindings bindings_scratch;
  ShardedStem::Matches matches_scratch;
};

struct ThreadPoolExecutor::RunState {
  const QuerySpec* query = nullptr;
  const JoinGraph* graph = nullptr;

  std::vector<const StoredTable*> tables;  ///< per slot
  std::vector<std::unique_ptr<ShardedStem>> stems;
  /// sync: the query-global timestamp authority; every fetch_add happens
  /// inside a shard critical section (ShardedStem::Build), which supplies
  /// the §3.1 ordering. stems::Atomic: a model-checking yield point.
  Atomic<BuildTs> ts_counter{1};
  ShardedSpillState spill;

  std::vector<SourceChunk> chunks;
  /// sync: the morsel-dispatch cursor; fetch_add is the whole claim
  /// protocol (chunks itself is immutable once workers start).
  /// stems::Atomic: a model-checking yield point.
  Atomic<size_t> next_chunk{0};

  uint64_t full_mask = 0;
  uint64_t all_preds_mask = 0;
  std::vector<std::vector<const Predicate*>> selections;  ///< per slot
  std::vector<std::vector<int>> neighbors;                ///< per slot

  /// The LIMIT admission race + drain flags (exec/limit_gate.h) — the
  /// protocol object the schedule-exploration harness drives directly.
  LimitGate gate;

  /// Per-query trace sink (null when tracing is off). Morsel spans are
  /// stamped with wall time relative to `run_start` so the whole run's
  /// timeline starts at ts=0 in the exported Chrome trace.
  obs::Tracer* tracer = nullptr;
  std::chrono::steady_clock::time_point run_start;

  /// Workers own their slot exclusively while running; padded so adjacent
  /// workers' accumulators never share a cache line.
  struct alignas(64) PaddedWorker {
    WorkerState ws;
  };
  std::vector<PaddedWorker> workers;

  Mutex violations_mu;
  std::vector<std::string> violations STEMS_GUARDED_BY(violations_mu);
};

size_t ThreadPoolExecutor::EffectiveThreads(size_t requested,
                                            size_t fallback) {
  size_t n = requested != 0 ? requested : fallback;
  if (n == 0) {
    n = std::thread::hardware_concurrency();
    n = std::clamp<size_t>(n, 1, 8);
  }
  return std::clamp<size_t>(n, 1, 64);
}

Status ThreadPoolExecutor::ValidateSupported(const QuerySpec& query,
                                             const RunOptions& options) {
  // Options outside the envelope. Each of these exists to model behaviour
  // the wall-clock dataflow deliberately does not reproduce; see
  // docs/parallelism.md for the rationale per item.
  if (options.share_stems) {
    return Status::Unsupported(
        "threaded executor: cross-query SteM sharing (share_stems) is "
        "sim-only");
  }
  const size_t budget = options.memory_budget_entries != 0
                            ? options.memory_budget_entries
                            : options.exec.eddy.memory.global_entry_budget;
  if (budget > 0 && !options.spill && !options.exec.eddy.spill.enabled) {
    return Status::Unsupported(
        "threaded executor: an evicting (window-semantics) memory budget is "
        "sim-only; set spill=true for the exact larger-than-memory mode");
  }
  if (options.exec.eddy.relax_build_first ||
      !options.exec.eddy.no_build_tables.empty()) {
    return Status::Unsupported(
        "threaded executor: relaxed BuildFirst (§3.5) is sim-only");
  }
  if (!options.exec.eddy.always_build) {
    return Status::Unsupported(
        "threaded executor: always_build=false routing is sim-only");
  }
  if (options.exec.eddy.result_priority_classifier != nullptr) {
    return Status::Unsupported(
        "threaded executor: result-priority metrics (§4.1) are sim-only");
  }
  // Query shapes outside the envelope.
  if (query.num_slots() == 0 || query.num_slots() > 64) {
    return Status::Unsupported("threaded executor: 1..64 table slots");
  }
  if (query.num_predicates() > 64) {
    return Status::Unsupported("threaded executor: at most 64 predicates");
  }
  std::set<std::string> seen_tables;
  for (const auto& slot : query.slots()) {
    if (!seen_tables.insert(slot.table_name).second) {
      return Status::Unsupported(
          "threaded executor: self-joins (table '" + slot.table_name +
          "' in several FROM slots) are sim-only");
    }
    if (slot.def == nullptr || !slot.def->HasScanAm()) {
      return Status::Unsupported(
          "threaded executor: table '" + slot.table_name +
          "' has no scan access method; index-only tables (probe "
          "bouncing, EOT coverage) are sim-only");
    }
  }
  return Status::OK();
}

void ThreadPoolExecutor::AdmitResult(RunState* state, WorkerState* ws,
                                     TuplePtr tuple) {
  // Constraint audit (the threaded analogue of the sim's checker verdicts):
  // a result must span everything, be fully built, and have passed every
  // predicate. Violations are collected, never dropped — the equivalence
  // gate compares them against the sim run's audit.
  if (tuple->spanned_mask() != state->full_mask ||
      !tuple->AllComponentsBuilt() ||
      (tuple->preds_passed() & state->all_preds_mask) !=
          state->all_preds_mask) {
    MutexLock lock(&state->violations_mu);
    state->violations.push_back("invalid result admitted: " +
                                tuple->ToString());
  }
  if (state->gate.TryAdmit().admitted) {
    ws->results.push_back(std::move(tuple));
    ++ws->counters.results;
  } else {
    ++ws->counters.tuples_retired;
  }
}

void ThreadPoolExecutor::Cascade(RunState* state, WorkerState* ws,
                                 TuplePtr tuple) {
  const QuerySpec& query = *state->query;
  auto& stack = ws->cascade_stack;
  stack.push_back(std::move(tuple));
  while (!stack.empty()) {
    TuplePtr t = std::move(stack.back());
    stack.pop_back();
    if (state->gate.stop_requested()) {
      ++ws->counters.tuples_retired;
      continue;
    }
    if (t->spanned_mask() == state->full_mask) {
      AdmitResult(state, ws, std::move(t));
      continue;
    }
    // Probe candidates exactly as the sim's routing skeleton: unspanned
    // slots join-connected to the span, falling back to every unspanned
    // slot for cross products.
    auto& candidates = ws->candidates_scratch;
    candidates.clear();
    for (int s = 0; s < static_cast<int>(query.num_slots()); ++s) {
      if (t->Spans(s)) {
        for (int n : state->neighbors[static_cast<size_t>(s)]) {
          if (!t->Spans(n) &&
              std::find(candidates.begin(), candidates.end(), n) ==
                  candidates.end()) {
            candidates.push_back(n);
          }
        }
      }
    }
    if (candidates.empty()) {
      for (int s = 0; s < static_cast<int>(query.num_slots()); ++s) {
        if (!t->Spans(s)) candidates.push_back(s);
      }
    }
    std::sort(candidates.begin(), candidates.end());

    ++ws->counters.tuples_routed;
    const int target = ws->router->ChooseTarget(*t, candidates);
    ShardedStem& stem = *state->stems[static_cast<size_t>(target)];

    ShardedStem::Bindings& bindings = ws->bindings_scratch;
    stem.ProbeBindings(*t, &bindings);
    const BuildTs probe_ts = t->Timestamp();
    const uint64_t new_span = t->spanned_mask() | (1ULL << target);
    uint64_t matches = 0;
    const uint64_t scanned = stem.Probe(
        bindings, probe_ts, [&](const RowRef& row, BuildTs entry_ts) {
          // Evaluate every not-yet-passed predicate the widened span can
          // decide (the stored row's selections included) — mirrors
          // Stem::ProcessProbe.
          OverlayValueSource overlay(*t, target, &row->values());
          auto& passed = ws->passed_scratch;
          passed.clear();
          for (const auto& pred : query.predicates()) {
            if (t->PassedPredicate(pred.id())) continue;
            if (!pred.CanEvaluate(new_span)) continue;
            if (!pred.Evaluate(overlay)) return;
            passed.push_back(pred.id());
          }
          TuplePtr nt = t->ConcatWith(target, row, entry_ts);
          for (int id : passed) nt->MarkPredicatePassed(id);
          ++matches;
          ++ws->counters.matches;
          if (nt->spanned_mask() == state->full_mask) {
            AdmitResult(state, ws, std::move(nt));
          } else {
            stack.push_back(std::move(nt));
          }
        },
        &ws->matches_scratch);
    ++ws->counters.probes;
    ws->router->RecordProbe(target, scanned, matches);
    // One probe per tuple, then out of the dataflow: the cascade continues
    // through the concatenations (see the exactly-once note in the header).
    ++ws->counters.tuples_retired;
  }
}

void ThreadPoolExecutor::ProcessSource(RunState* state, WorkerState* ws,
                                       const TuplePtr& tuple) {
  const int slot = tuple->SingletonSlot();
  ++ws->counters.tuples_routed;
  for (const Predicate* pred : state->selections[static_cast<size_t>(slot)]) {
    if (!pred->Evaluate(*tuple)) {
      ++ws->counters.tuples_retired;
      return;
    }
    tuple->MarkPredicatePassed(pred->id());
  }
  auto built =
      state->stems[static_cast<size_t>(slot)]->Build(tuple->component(slot).row);
  if (!built.inserted) {
    // Content duplicate: absorbed by set semantics (§3.2), like the sim.
    ++ws->counters.duplicates;
    ++ws->counters.tuples_retired;
    return;
  }
  ++ws->counters.builds;
  tuple->SetBuilt(slot, built.ts);
  Cascade(state, ws, tuple);
}

void ThreadPoolExecutor::WorkerMain(RunState* state, int worker_id) {
  WorkerState& ws = state->workers[static_cast<size_t>(worker_id)].ws;
  const int num_slots = static_cast<int>(state->query->num_slots());
  TupleBatch morsel;
  for (;;) {
    const size_t c = state->next_chunk.fetch_add(1);
    if (c >= state->chunks.size()) break;
    if (state->gate.stop_requested()) continue;  // fast drain
    const SourceChunk& chunk = state->chunks[c];
    const auto start = std::chrono::steady_clock::now();
    ++ws.counters.morsels;
    // Materialize the claimed row range as the TupleBatch morsel, then run
    // each singleton's full lifecycle inline (build + cascade).
    morsel.clear();
    const auto& rows = state->tables[static_cast<size_t>(chunk.slot)]->rows();
    for (size_t i = chunk.begin; i < chunk.end; ++i) {
      if (rows[i]->IsEot()) continue;  // EOT markers are sim-protocol, not data
      morsel.tuples.push_back(
          Tuple::MakeSingleton(num_slots, chunk.slot, rows[i]));
    }
    for (TuplePtr& t : morsel.tuples) {
      if (state->gate.stop_requested()) {
        ++ws.counters.tuples_retired;
        continue;
      }
      ProcessSource(state, &ws, t);
    }
    const auto end = std::chrono::steady_clock::now();
    ws.counters.routing_wall_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(end - start)
            .count());
    if (state->tracer != nullptr && state->tracer->SampleMorsel()) {
      char args[96];
      std::snprintf(args, sizeof(args),
                    "\"slot\":%d,\"rows\":%zu,\"chunk\":%zu", chunk.slot,
                    morsel.tuples.size(), c);
      obs::TraceEvent ev;
      ev.name = "morsel";
      ev.cat = "morsel";
      ev.ph = 'X';
      ev.ts_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              start - state->run_start)
              .count());
      ev.dur_us = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(end - start)
              .count());
      ev.tid = static_cast<uint32_t>(worker_id);
      ev.args_json = args;
      state->tracer->Record(std::move(ev));
    }
  }
}

Status ThreadPoolExecutor::Execute(const QuerySpec& query,
                                   const RunOptions& options,
                                   const TableStore& store, ExecOutcome* out,
                                   const ExecObs& obs) {
  STEMS_RETURN_NOT_OK(ValidateSupported(query, options));
  MutexLock run_lock(&run_mu_);

  RunState state;
  state.tracer = obs.tracer;
  state.run_start = std::chrono::steady_clock::now();
  state.query = &query;
  JoinGraph graph(query);
  state.graph = &graph;
  state.full_mask = query.full_span_mask();
  if (query.limit().has_value()) state.gate.SetLimit(*query.limit());

  const size_t num_slots = query.num_slots();
  state.tables.resize(num_slots);
  state.selections.resize(num_slots);
  state.neighbors.resize(num_slots);
  for (size_t s = 0; s < num_slots; ++s) {
    STEMS_ASSIGN_OR_RETURN(state.tables[s],
                           store.GetTable(query.slots()[s].table_name));
    state.selections[s] = query.SelectionsOn(static_cast<int>(s));
    state.neighbors[s] = graph.Neighbors(static_cast<int>(s));
  }
  for (const auto& pred : query.predicates()) {
    state.all_preds_mask |= 1ULL << pred.id();
  }

  if (options.spill || options.exec.eddy.spill.enabled) {
    state.spill.budget_entries =
        options.memory_budget_entries != 0
            ? options.memory_budget_entries
            : options.exec.eddy.memory.global_entry_budget;
  }
  state.stems.reserve(num_slots);
  for (size_t s = 0; s < num_slots; ++s) {
    state.stems.push_back(std::make_unique<ShardedStem>(
        static_cast<int>(s), query, kShardsPerStem, &state.ts_counter,
        &state.spill));
  }

  // Morsel size: RunOptions::batch_size, the same knob that sizes the sim's
  // routing batches. LIMIT 0 short-circuits like the sim's unseeded scans.
  const size_t morsel_rows = std::max<size_t>(1, options.batch_size);
  if (state.gate.limit() > 0) {
    for (size_t s = 0; s < num_slots; ++s) {
      const size_t n = state.tables[s]->num_rows();
      for (size_t begin = 0; begin < n; begin += morsel_rows) {
        state.chunks.push_back(SourceChunk{static_cast<int>(s), begin,
                                           std::min(begin + morsel_rows, n)});
      }
    }
  }

  const size_t num_threads =
      EffectiveThreads(options.num_threads, default_threads_);
  state.workers = std::vector<RunState::PaddedWorker>(num_threads);
  for (size_t w = 0; w < num_threads; ++w) {
    state.workers[w].ws.router = std::make_unique<MorselRouter>(
        num_slots, options.policy, options.policy_params.seed,
        static_cast<int>(w));
  }

  std::vector<std::thread> threads;
  threads.reserve(num_threads - 1);
  for (size_t w = 1; w < num_threads; ++w) {
    threads.emplace_back(WorkerMain, &state, static_cast<int>(w));
  }
  WorkerMain(&state, 0);
  for (auto& t : threads) t.join();

  *out = ExecOutcome{};
  out->workers.reserve(num_threads);
  for (auto& padded : state.workers) {
    out->totals += padded.ws.counters;
    out->workers.push_back(padded.ws.counters);
    out->results.insert(out->results.end(),
                        std::make_move_iterator(padded.ws.results.begin()),
                        std::make_move_iterator(padded.ws.results.end()));
  }
  {
    // Workers are joined, but the guarded_by contract is unconditional.
    MutexLock lock(&state.violations_mu);
    out->violations = std::move(state.violations);
  }
  out->limit_reached = state.gate.limit_reached();
  out->spill_ios = state.spill.spill_ios.load();
  out->bytes_spilled = state.spill.bytes_spilled.load();
  out->entries_spilled = state.spill.entries_spilled.load();
  out->shard_lock_waits = state.spill.lock_waits.load();
  out->shard_lock_wait_ns = state.spill.lock_wait_ns.load();
  for (const auto& stem : state.stems) {
    const auto [resident, spilled] = stem->ShardResidency();
    out->partitions_resident += resident;
    out->partitions_spilled += spilled;
  }

  // Publish run totals into the engine-wide registry once, after the join —
  // workers never touch shared metric state on the hot path.
  if (obs.registry != nullptr) {
    obs.registry->GetCounter("exec.morsels")->Add(out->totals.morsels);
    obs.registry->GetCounter("eddy.tuples_routed")
        ->Add(out->totals.tuples_routed);
    obs.registry->GetCounter("eddy.results")->Add(out->totals.results);
    obs.registry->GetCounter("stem.builds")->Add(out->totals.builds);
    obs.registry->GetCounter("stem.probes")->Add(out->totals.probes);
    obs.registry->GetCounter("stem.matches")->Add(out->totals.matches);
    obs.registry->GetCounter("exec.shard_lock_waits")
        ->Add(state.spill.lock_waits.load(std::memory_order_relaxed));
    obs.registry->GetCounter("exec.shard_lock_wait_ns")
        ->Add(state.spill.lock_wait_ns.load(std::memory_order_relaxed));
    obs.registry->GetCounter("spill.ios")->Add(out->spill_ios);
    obs.registry->GetCounter("spill.bytes")->Add(out->bytes_spilled);
  }
  return Status::OK();
}

}  // namespace stems
