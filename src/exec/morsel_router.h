// MorselRouter: the threaded executor's per-worker routing policy.
//
// The sim's RoutingPolicy objects assume single-threaded ownership of their
// statistics (ticket counts, benefit/cost scores); sharing one across
// workers would put a lock on every routing decision. Instead each worker
// owns a MorselRouter: the same policy *family* selected by
// RunOptions::policy, but fed exclusively from that worker's observations
// (probes issued, matches returned, entries scanned). Readers merge
// per-worker outcomes through WorkerCounters — statistics move to the
// workers, never the other way (docs/parallelism.md).
//
// Any target choice yields the identical result set: a tuple's cascade
// reaches full span through every probe order, and §3.1 timestamps make
// each result appear exactly once regardless (the equivalence suite pins
// this across all policies × thread counts). The router only shapes *work*,
// as in the paper.
#pragma once

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include "runtime/tuple.h"

namespace stems {

class MorselRouter {
 public:
  /// `policy` is the RunOptions policy name; unrecognized names fall back
  /// to the deterministic first-candidate order (the nary_shj behaviour).
  /// `seed`/`worker_id` decorrelate the lottery streams across workers.
  MorselRouter(size_t num_slots, const std::string& policy, uint64_t seed,
               int worker_id);

  /// Picks the SteM slot `tuple` probes next from `candidates` (non-empty,
  /// ascending). Deterministic for nary_shj/benefit_cost given the same
  /// local history; lottery draws from the worker's private RNG.
  int ChooseTarget(const Tuple& tuple, const std::vector<int>& candidates);

  /// Feedback after the probe: how much was scanned, how much matched.
  void RecordProbe(int slot, uint64_t scanned, uint64_t matches);

 private:
  enum class Kind { kFirstCandidate, kLottery, kBenefitCost };

  struct SlotStats {
    uint64_t probes = 0;
    uint64_t scanned = 0;
    uint64_t matches = 0;
  };

  Kind kind_;
  std::vector<SlotStats> stats_;
  std::mt19937_64 rng_;
};

}  // namespace stems
