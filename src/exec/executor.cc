#include "exec/executor.h"

namespace stems {

const char* ExecutorKindName(ExecutorKind kind) {
  switch (kind) {
    case ExecutorKind::kSim:
      return "sim";
    case ExecutorKind::kThreaded:
      return "threaded";
  }
  return "unknown";
}

}  // namespace stems
