// ThreadPoolExecutor: morsel-driven wall-clock execution (docs/parallelism.md).
//
// The dataflow is the paper's, re-scheduled for real cores. A TupleBatch is
// the morsel: workers claim fixed-size row ranges of the base tables from a
// shared chunk list (a single atomic cursor — the HyPer-style morsel
// dispatch), materialize each range as a batch of singletons, and run every
// tuple's whole lifecycle inline:
//
//   selections -> build into the slot's ShardedStem (set-semantics dedup)
//     -> cascade: probe one unspanned join-connected SteM, concatenate the
//        timestamp-visible matches, repeat until full span -> admit result.
//
// Because every table streams through a scan (the supported envelope), each
// result is produced exactly once: along the cascade rooted at its
// newest-timestamped component, by the §3.1 argument the ShardedStem header
// spells out. No bounces, no parking, no EOTs — those exist to cope with
// index-AM incompleteness and relaxed BuildFirst, which stay sim-only.
//
// Concurrency rules: SteM state is only touched under its shard mutex;
// routing statistics and results are worker-private (merged on read);
// LIMIT/cancel is one atomic admission counter plus a stop flag. Workers
// are spawned per Execute and joined before it returns — no state outlives
// the call.
#pragma once

#include <cstddef>

#include "common/thread_annotations.h"
#include "exec/executor.h"

namespace stems {

class ThreadPoolExecutor : public Executor {
 public:
  /// `default_threads` applies when RunOptions::num_threads is 0;
  /// 0 = hardware concurrency (clamped to [1, 8]).
  explicit ThreadPoolExecutor(size_t default_threads = 0)
      : default_threads_(default_threads) {}

  const char* name() const override { return "threaded"; }

  Status Execute(const QuerySpec& query, const RunOptions& options,
                 const TableStore& store, ExecOutcome* out,
                 const ExecObs& obs = {}) override;

  /// Whether the query/options combination is inside the threaded
  /// envelope. Non-OK names the first sim-only feature requested
  /// (docs/parallelism.md, "What stays sim-only").
  static Status ValidateSupported(const QuerySpec& query,
                                  const RunOptions& options);

  /// Worker count for a request (0 = default), clamped to [1, 64].
  static size_t EffectiveThreads(size_t requested, size_t fallback = 0);

 private:
  struct RunState;
  struct WorkerState;

  static void WorkerMain(RunState* state, int worker_id);
  static void ProcessSource(RunState* state, WorkerState* ws,
                            const TuplePtr& tuple);
  static void Cascade(RunState* state, WorkerState* ws, TuplePtr tuple);
  static void AdmitResult(RunState* state, WorkerState* ws, TuplePtr tuple);

  /// One query runs at a time per executor; concurrent Submits queue here
  /// rather than oversubscribing the machine.
  Mutex run_mu_;
  size_t default_threads_;
};

}  // namespace stems
