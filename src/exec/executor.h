// Executor: how a submitted query's dataflow is driven (docs/parallelism.md).
//
// The engine has exactly two ways to run the eddies-and-SteMs dataflow:
//
//   kSim      — the deterministic discrete-event simulator (src/sim/): every
//               module is an actor on one virtual clock, executions are
//               bit-for-bit reproducible, and virtual time prices remote
//               latencies and disk I/O. This is the default and the
//               reference semantics for all equivalence/property tests.
//   kThreaded — the wall-clock morsel-driven thread pool
//               (threaded_executor.h): TupleBatch is the morsel, SteM state
//               is hash-sharded across workers, and routing statistics live
//               in per-worker accumulators merged on read. Same result set,
//               real cores.
//
// Both implement Executor::Execute — run one query to completion, fill an
// ExecOutcome — which is what the sim-vs-threaded equivalence gate in CI
// exercises. (The Engine's lazy multi-query pump is the sim executor's
// interleaved form: several eddies share one clock and a cursor advances it
// just far enough; see engine/engine.cc.)
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "runtime/tuple.h"

namespace stems {

class QuerySpec;
class TableStore;
struct RunOptions;

namespace obs {
class MetricsRegistry;
class Tracer;
}  // namespace obs

/// Observability hookup for one Execute() call: the engine-wide registry
/// the run publishes into and the per-query trace sink. Both nullable —
/// a default-constructed ExecObs runs the query dark (tests, benches).
struct ExecObs {
  obs::MetricsRegistry* registry = nullptr;
  obs::Tracer* tracer = nullptr;
};

/// Which execution substrate Engine::Submit puts the query on.
enum class ExecutorKind { kSim, kThreaded };

const char* ExecutorKindName(ExecutorKind kind);

/// One worker's routing accumulators (threaded executor). Workers never
/// share counters on the hot path — each owns one of these, and readers
/// merge the vector (QueryStats aggregates them; the per-worker breakdown
/// is kept for observability).
struct WorkerCounters {
  uint64_t morsels = 0;         ///< TupleBatch work units processed
  uint64_t tuples_routed = 0;   ///< routing decisions made
  uint64_t tuples_retired = 0;  ///< tuples dropped from the dataflow
  uint64_t builds = 0;          ///< SteM inserts performed
  uint64_t duplicates = 0;      ///< builds absorbed by set-semantics dedup
  uint64_t probes = 0;          ///< SteM probes performed
  uint64_t matches = 0;         ///< concatenations emitted by probes
  uint64_t results = 0;         ///< output tuples this worker admitted
  uint64_t routing_wall_ns = 0;  ///< wall time inside morsel processing

  WorkerCounters& operator+=(const WorkerCounters& o) {
    morsels += o.morsels;
    tuples_routed += o.tuples_routed;
    tuples_retired += o.tuples_retired;
    builds += o.builds;
    duplicates += o.duplicates;
    probes += o.probes;
    matches += o.matches;
    results += o.results;
    routing_wall_ns += o.routing_wall_ns;
    return *this;
  }
};

/// Everything Execute() reports back about one completed run.
struct ExecOutcome {
  std::vector<TuplePtr> results;
  /// Constraint-audit verdict: invariant breaches observed while running
  /// (empty on every correct execution; the equivalence gate compares this
  /// against the sim run's audit).
  std::vector<std::string> violations;
  /// Per-worker accumulators, merged on read (size 1 for the sim executor).
  std::vector<WorkerCounters> workers;
  /// Aggregate of `workers` (computed by Execute).
  WorkerCounters totals;
  /// Spill observability (threaded executor's sharded state; the sim path
  /// reports through Eddy::SpillStats instead).
  uint64_t spill_ios = 0;
  uint64_t bytes_spilled = 0;
  uint64_t entries_spilled = 0;
  size_t partitions_resident = 0;
  size_t partitions_spilled = 0;
  /// Shard-mutex contention (threaded executor): blocked hot-path
  /// acquisitions and the wall time they spent waiting.
  uint64_t shard_lock_waits = 0;
  uint64_t shard_lock_wait_ns = 0;
  /// True when the run stopped early because the query's LIMIT filled.
  bool limit_reached = false;
};

/// A strategy for running one query to completion. Implementations:
/// SimExecutor (sim_executor.h) and ThreadPoolExecutor
/// (threaded_executor.h).
class Executor {
 public:
  virtual ~Executor() = default;

  virtual const char* name() const = 0;

  /// Runs `query` over `store` to completion under `options`, filling
  /// `*out`. Returns non-OK (and leaves `*out` unspecified) when the
  /// query/options combination is not supported by this executor. `obs`
  /// carries the optional metric/trace sinks the run publishes into.
  virtual Status Execute(const QuerySpec& query, const RunOptions& options,
                         const TableStore& store, ExecOutcome* out,
                         const ExecObs& obs = {}) = 0;
};

}  // namespace stems
