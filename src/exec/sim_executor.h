// SimExecutor: the deterministic simulated-clock Executor.
//
// Wraps the original dataflow — PlanQuery onto a private discrete-event
// Simulation, RunToCompletion — behind the Executor interface, so the
// sim-vs-threaded equivalence gate drives both substrates through one call
// shape. This is the reference implementation: bit-for-bit reproducible,
// full routing-policy machinery, constraint audit, parking, spill pricing.
//
// The Engine's own sim path is the *interleaved* form of this executor
// (several live eddies share the engine clock, pumped lazily by cursors);
// SimExecutor is the one-shot form with a clock of its own, which is what
// tests and benches want when they compare whole runs.
#pragma once

#include "exec/executor.h"

namespace stems {

class SimExecutor : public Executor {
 public:
  const char* name() const override { return "sim"; }

  Status Execute(const QuerySpec& query, const RunOptions& options,
                 const TableStore& store, ExecOutcome* out,
                 const ExecObs& obs = {}) override;
};

}  // namespace stems
