#include "exec/sim_executor.h"

#include <memory>
#include <utility>

#include "engine/run_options.h"
#include "query/planner.h"
#include "sim/simulation.h"

namespace stems {

Status SimExecutor::Execute(const QuerySpec& query, const RunOptions& options,
                            const TableStore& store, ExecOutcome* out,
                            const ExecObs& obs) {
  STEMS_RETURN_NOT_OK(options.Validate());
  if (options.share_stems) {
    return Status::Unsupported(
        "SimExecutor runs one query on a private clock; cross-query sharing "
        "needs the Engine's shared pool (Engine::Submit with share_stems)");
  }
  Simulation sim;
  ExecutionConfig cfg = options.EffectiveExec();
  cfg.eddy.registry = obs.registry;
  cfg.eddy.tracer = obs.tracer;
  STEMS_ASSIGN_OR_RETURN(std::unique_ptr<Eddy> eddy,
                         PlanQuery(query, store, &sim, cfg, nullptr));
  STEMS_ASSIGN_OR_RETURN(std::unique_ptr<RoutingPolicy> policy,
                         PolicyRegistry::Global().Create(
                             options.policy, options.policy_params));
  eddy->SetPolicy(std::move(policy));
  eddy->RunToCompletion();
  if (!eddy->Quiescent()) {
    return Status::Internal(
        "simulation drained but the dataflow is not quiescent (a module "
        "lost in-flight work)");
  }
  eddy->DrainParked();

  *out = ExecOutcome{};
  out->results = eddy->results();
  for (const ConstraintViolation& v : eddy->violations()) {
    out->violations.push_back(v.constraint + ": " + v.detail);
  }
  WorkerCounters wc;
  wc.tuples_routed = eddy->tuples_routed();
  wc.tuples_retired = eddy->tuples_retired();
  wc.results = eddy->num_results();
  wc.routing_wall_ns = eddy->routing_wall_ns();
  out->workers.push_back(wc);
  out->totals = wc;
  const Eddy::SpillSummary spill = eddy->SpillStats();
  out->spill_ios = spill.spill_ios;
  out->bytes_spilled = spill.bytes_spilled;
  out->entries_spilled = spill.entries_spilled;
  out->partitions_resident = spill.partitions_resident;
  out->partitions_spilled = spill.partitions_spilled;
  out->limit_reached = eddy->limit_reached();
  return Status::OK();
}

}  // namespace stems
