// Selection Module (paper §2.1.2).
//
// Bounces a tuple back iff it passes the module's predicate, marking the
// pass in the tuple's TupleState; drops it from the dataflow otherwise.
#pragma once

#include "expr/predicate.h"
#include "runtime/module.h"
#include "runtime/query_context.h"

namespace stems {

class SelectionModule : public Module {
 public:
  /// `service_time` is the per-tuple virtual cost of evaluating the
  /// predicate.
  SelectionModule(QueryContext* ctx, const Predicate* predicate,
                  SimTime service_time = Micros(1));

  ModuleKind kind() const override { return ModuleKind::kSelection; }

  const Predicate* predicate() const { return predicate_; }
  uint64_t dropped() const { return dropped_; }

 protected:
  SimTime ServiceTime(const Tuple&) const override { return service_time_; }
  void Process(TuplePtr tuple) override;

 private:
  QueryContext* ctx_;
  const Predicate* predicate_;
  SimTime service_time_;
  uint64_t dropped_ = 0;
};

}  // namespace stems
