#include "sm/selection_module.h"

#include <cassert>

namespace stems {

SelectionModule::SelectionModule(QueryContext* ctx, const Predicate* predicate,
                                 SimTime service_time)
    : Module(ctx->sim, "SM(" + predicate->ToString() + ")"),
      ctx_(ctx),
      predicate_(predicate),
      service_time_(service_time) {}

void SelectionModule::Process(TuplePtr tuple) {
  assert(predicate_->CanEvaluate(tuple->spanned_mask()) &&
         "tuple routed to SM whose predicate it cannot evaluate");
  if (tuple->PassedPredicate(predicate_->id())) {
    // Idempotent: already verified (e.g. by a SteM probe).
    Emit(std::move(tuple));
    return;
  }
  if (predicate_->Evaluate(*tuple)) {
    tuple->MarkPredicatePassed(predicate_->id());
    Emit(std::move(tuple));
  } else {
    ++dropped_;
    ctx_->metrics.Count("sm.dropped", sim()->now());
  }
}

}  // namespace stems
