#include "sql/parser.h"

#include <cerrno>
#include <cstdlib>

#include "sql/lexer.h"

namespace stems::sql {

namespace {

Status ErrorAt(const std::string& msg, const Token& t) {
  return Status::InvalidQuery(msg + " at " + t.Position());
}

class Parser {
 public:
  explicit Parser(const std::vector<Token>& tokens) : tokens_(tokens) {}

  Result<SelectStatement> ParseSelect() {
    SelectStatement stmt;
    if (Accept(TokenKind::kExplain)) {
      STEMS_RETURN_NOT_OK(Expect(
          TokenKind::kAnalyze,
          "expected ANALYZE after EXPLAIN (only EXPLAIN ANALYZE is "
          "supported: adaptive routing has no static plan to explain)"));
      stmt.explain_analyze = true;
    }
    STEMS_RETURN_NOT_OK(Expect(TokenKind::kSelect, "expected SELECT"));
    STEMS_RETURN_NOT_OK(ParseSelectList(&stmt));
    STEMS_RETURN_NOT_OK(Expect(TokenKind::kFrom, "expected FROM"));
    STEMS_RETURN_NOT_OK(ParseFromList(&stmt));
    if (Accept(TokenKind::kWhere)) {
      STEMS_RETURN_NOT_OK(ParseWhere(&stmt));
    }
    if (Accept(TokenKind::kLimit)) {
      STEMS_RETURN_NOT_OK(ParseLimit(&stmt));
    }
    Accept(TokenKind::kSemicolon);
    if (Cur().kind != TokenKind::kEof) {
      return ErrorAt("expected end of input", Cur());
    }
    return stmt;
  }

 private:
  const Token& Cur() const { return tokens_[pos_]; }
  const Token& Peek() const {
    return tokens_[pos_ + 1 < tokens_.size() ? pos_ + 1 : pos_];
  }
  void Advance() {
    if (pos_ + 1 < tokens_.size()) ++pos_;
  }
  bool Accept(TokenKind kind) {
    if (Cur().kind != kind) return false;
    Advance();
    return true;
  }
  Status Expect(TokenKind kind, const std::string& what) {
    if (Cur().kind != kind) return ErrorAt(what, Cur());
    Advance();
    return Status::OK();
  }

  Status ParseSelectList(SelectStatement* stmt) {
    if (Accept(TokenKind::kStar)) {
      stmt->select_star = true;
      return Status::OK();
    }
    do {
      if (Cur().kind != TokenKind::kIdent) {
        return ErrorAt("expected column reference or '*'", Cur());
      }
      STEMS_ASSIGN_OR_RETURN(AstColumn col, ParseColumn());
      stmt->select_list.push_back(std::move(col));
    } while (Accept(TokenKind::kComma));
    return Status::OK();
  }

  /// `ident` or `ident '.' ident`; the caller checked Cur() is an ident.
  Result<AstColumn> ParseColumn() {
    AstColumn col;
    col.line = Cur().line;
    col.col = Cur().col;
    std::string first = Cur().text;
    Advance();
    if (Accept(TokenKind::kDot)) {
      if (Cur().kind != TokenKind::kIdent) {
        return ErrorAt("expected column name after '.'", Cur());
      }
      col.qualifier = std::move(first);
      col.column = Cur().text;
      Advance();
    } else {
      col.column = std::move(first);
    }
    return col;
  }

  Status ParseFromList(SelectStatement* stmt) {
    do {
      if (Cur().kind != TokenKind::kIdent) {
        return ErrorAt("expected table name", Cur());
      }
      AstTableRef ref;
      ref.table = Cur().text;
      ref.line = Cur().line;
      ref.col = Cur().col;
      Advance();
      if (Accept(TokenKind::kAs)) {
        if (Cur().kind != TokenKind::kIdent) {
          return ErrorAt("expected alias after AS", Cur());
        }
        ref.alias = Cur().text;
        Advance();
      } else if (Cur().kind == TokenKind::kIdent) {
        ref.alias = Cur().text;
        Advance();
      }
      stmt->from.push_back(std::move(ref));
    } while (Accept(TokenKind::kComma));
    return Status::OK();
  }

  Status ParseWhere(SelectStatement* stmt) {
    do {
      AstComparison cmp;
      STEMS_ASSIGN_OR_RETURN(cmp.lhs, ParseOperand());
      const Token& op_tok = Cur();
      cmp.line = op_tok.line;
      cmp.col = op_tok.col;
      switch (op_tok.kind) {
        case TokenKind::kEq:
          cmp.op = CompareOp::kEq;
          break;
        case TokenKind::kNe:
          cmp.op = CompareOp::kNe;
          break;
        case TokenKind::kLt:
          cmp.op = CompareOp::kLt;
          break;
        case TokenKind::kLe:
          cmp.op = CompareOp::kLe;
          break;
        case TokenKind::kGt:
          cmp.op = CompareOp::kGt;
          break;
        case TokenKind::kGe:
          cmp.op = CompareOp::kGe;
          break;
        default:
          return ErrorAt("expected comparison operator", op_tok);
      }
      Advance();
      STEMS_ASSIGN_OR_RETURN(cmp.rhs, ParseOperand());
      stmt->where.push_back(std::move(cmp));
    } while (Accept(TokenKind::kAnd));
    return Status::OK();
  }

  Result<AstOperand> ParseOperand() {
    const Token& t = Cur();
    switch (t.kind) {
      case TokenKind::kIdent: {
        STEMS_ASSIGN_OR_RETURN(AstColumn col, ParseColumn());
        return AstOperand(std::move(col));
      }
      case TokenKind::kMinus:
      case TokenKind::kInt:
      case TokenKind::kFloat: {
        bool negate = false;
        int line = t.line;
        int col = t.col;
        if (Cur().kind == TokenKind::kMinus) {
          negate = true;
          Advance();
          if (Cur().kind != TokenKind::kInt &&
              Cur().kind != TokenKind::kFloat) {
            return ErrorAt("expected numeric literal after '-'", Cur());
          }
        }
        STEMS_ASSIGN_OR_RETURN(Value v, ParseNumber(Cur(), negate));
        Advance();
        return AstOperand(AstLiteral{std::move(v), line, col});
      }
      case TokenKind::kString: {
        AstLiteral lit{Value::String(t.text), t.line, t.col};
        Advance();
        return AstOperand(std::move(lit));
      }
      case TokenKind::kNull: {
        AstLiteral lit{Value::Null(), t.line, t.col};
        Advance();
        return AstOperand(std::move(lit));
      }
      case TokenKind::kQuestion: {
        AstParam p;
        p.position = next_positional_++;
        p.line = t.line;
        p.col = t.col;
        Advance();
        return AstOperand(std::move(p));
      }
      case TokenKind::kDollar: {
        AstParam p;
        p.name = t.text;
        p.line = t.line;
        p.col = t.col;
        Advance();
        return AstOperand(std::move(p));
      }
      default:
        return ErrorAt("expected expression", t);
    }
  }

  static Result<Value> ParseNumber(const Token& t, bool negate) {
    errno = 0;
    if (t.kind == TokenKind::kInt) {
      // The sign is part of the strtoll input so INT64_MIN (whose
      // magnitude alone overflows) round-trips through ToString().
      const std::string text = negate ? "-" + t.text : t.text;
      char* end = nullptr;
      const long long v = std::strtoll(text.c_str(), &end, 10);
      if (errno == ERANGE || end != text.c_str() + text.size()) {
        return ErrorAt("integer literal out of range", t);
      }
      return Value::Int64(v);
    }
    char* end = nullptr;
    const double d = std::strtod(t.text.c_str(), &end);
    if (end != t.text.c_str() + t.text.size()) {
      return ErrorAt("malformed float literal", t);
    }
    return Value::Double(negate ? -d : d);
  }

  Status ParseLimit(SelectStatement* stmt) {
    const Token& t = Cur();
    if (t.kind != TokenKind::kInt) {
      return ErrorAt("expected a non-negative integer after LIMIT", t);
    }
    errno = 0;
    char* end = nullptr;
    const unsigned long long v = std::strtoull(t.text.c_str(), &end, 10);
    if (errno == ERANGE || end != t.text.c_str() + t.text.size()) {
      return ErrorAt("integer literal out of range", t);
    }
    stmt->limit = static_cast<uint64_t>(v);
    Advance();
    return Status::OK();
  }

  const std::vector<Token>& tokens_;
  size_t pos_ = 0;
  int next_positional_ = 0;
};

}  // namespace

Result<SelectStatement> ParseTokens(const std::vector<Token>& tokens) {
  if (tokens.empty() || tokens.back().kind != TokenKind::kEof) {
    return Status::InvalidArgument("token stream must end in EOF");
  }
  Parser parser(tokens);
  return parser.ParseSelect();
}

Result<SelectStatement> Parse(const std::string& sql) {
  STEMS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  return ParseTokens(tokens);
}

}  // namespace stems::sql
