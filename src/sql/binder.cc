#include "sql/binder.h"

#include "query/validation.h"
#include "sql/parser.h"

namespace stems::sql {

namespace {

const char* ValueTypeName(ValueType t) {
  switch (t) {
    case ValueType::kNull:
      return "NULL";
    case ValueType::kInt64:
      return "INT64";
    case ValueType::kDouble:
      return "DOUBLE";
    case ValueType::kString:
      return "STRING";
    case ValueType::kEot:
      return "EOT";
  }
  return "?";
}

/// Mirror a comparison so the column lands on the left ("5 < R.a" becomes
/// "R.a > 5").
CompareOp Flip(CompareOp op) {
  switch (op) {
    case CompareOp::kLt:
      return CompareOp::kGt;
    case CompareOp::kGt:
      return CompareOp::kLt;
    case CompareOp::kLe:
      return CompareOp::kGe;
    case CompareOp::kGe:
      return CompareOp::kLe;
    case CompareOp::kEq:
    case CompareOp::kNe:
      return op;
  }
  return op;
}

Status ErrorAt(const std::string& msg, int line, int col) {
  return Status::InvalidQuery(msg + " at " + std::to_string(line) + ":" +
                              std::to_string(col));
}

bool TypeCompatible(ValueType column, ValueType value) {
  if (value == ValueType::kNull) return true;  // `col = NULL` is legal SQL
  const bool col_numeric =
      column == ValueType::kInt64 || column == ValueType::kDouble;
  const bool val_numeric =
      value == ValueType::kInt64 || value == ValueType::kDouble;
  if (col_numeric) return val_numeric;
  if (column == ValueType::kString) return value == ValueType::kString;
  return false;
}

}  // namespace

Result<BoundStatement> Binder::Bind(const SelectStatement& stmt,
                                    const Catalog& catalog) {
  std::vector<Status> errors;

  // FROM list: feed the builder, and keep a local view (alias + def) for
  // resolving *unqualified* column names, which QueryBuilder does not do.
  QueryBuilder qb(catalog);
  struct LocalSlot {
    std::string alias;
    const TableDef* def = nullptr;
  };
  std::vector<LocalSlot> slots;
  for (const auto& t : stmt.from) {
    qb.AddTable(t.table, t.alias);
    LocalSlot slot;
    slot.alias = t.alias.empty() ? t.table : t.alias;
    auto def = catalog.GetTable(t.table);
    // An unknown table is the builder's error to report; the local slot
    // just stays unusable for unqualified resolution.
    if (def.ok()) slot.def = def.Value();
    slots.push_back(std::move(slot));
  }
  if (stmt.from.empty()) {
    // Unreachable through the parser (FROM is mandatory) but hand-built
    // ASTs land here; keep the friendly path, never an assert.
    return Status::InvalidQuery("query has no tables (empty FROM list)");
  }

  // Qualifies an AST column to the builder's "Alias.column" spelling.
  // Unqualified names resolve when exactly one FROM entry has the column;
  // nullopt records the error and lets the caller skip the operand (so a
  // single bad name doesn't cascade into derived diagnostics).
  auto qualify = [&](const AstColumn& col) -> std::optional<std::string> {
    if (!col.qualifier.empty()) return col.qualifier + "." + col.column;
    std::vector<const LocalSlot*> matches;
    for (const auto& slot : slots) {
      if (slot.def != nullptr &&
          slot.def->schema.FindColumn(col.column).has_value()) {
        matches.push_back(&slot);
      }
    }
    if (matches.size() == 1) return matches.front()->alias + "." + col.column;
    if (matches.empty()) {
      errors.push_back(ErrorAt(
          "column '" + col.column + "' not found in any FROM table",
          col.line, col.col));
    } else {
      std::string candidates;
      for (size_t i = 0; i < matches.size(); ++i) {
        if (i > 0) candidates += ", ";
        candidates += matches[i]->alias + "." + col.column;
      }
      errors.push_back(ErrorAt("column '" + col.column +
                                   "' is ambiguous (candidates: " +
                                   candidates + ")",
                               col.line, col.col));
    }
    return std::nullopt;
  };

  // SELECT list.
  if (!stmt.select_star) {
    std::vector<std::string> columns;
    columns.reserve(stmt.select_list.size());
    for (const auto& col : stmt.select_list) {
      if (auto q = qualify(col)) columns.push_back(std::move(*q));
    }
    qb.Select(columns);
  }

  // WHERE conjuncts: classify into joins and selections. The builder
  // orders joins before selections in the final spec, so parameter sites
  // record their *selection ordinal* now and the predicate index later.
  struct PendingParam {
    AstParam param;
    size_t selection_ordinal;
  };
  std::vector<PendingParam> pending_params;
  size_t num_selections = 0;
  bool has_positional = false;
  bool has_named = false;

  for (const auto& cmp : stmt.where) {
    const auto* lhs_col = std::get_if<AstColumn>(&cmp.lhs);
    const auto* rhs_col = std::get_if<AstColumn>(&cmp.rhs);
    if (lhs_col != nullptr && rhs_col != nullptr) {
      auto lhs_q = qualify(*lhs_col);
      auto rhs_q = qualify(*rhs_col);
      if (lhs_q.has_value() && rhs_q.has_value()) {
        // Same-instance column comparisons have no runtime predicate form
        // (selections take a constant); diagnose here with a position
        // instead of surfacing the builder's programmatic-path advice.
        const std::string lhs_alias = lhs_q->substr(0, lhs_q->find('.'));
        const std::string rhs_alias = rhs_q->substr(0, rhs_q->find('.'));
        if (lhs_alias == rhs_alias) {
          errors.push_back(ErrorAt("comparison between two columns of one "
                                   "table instance ('" +
                                       *lhs_q + "' and '" + *rhs_q +
                                       "') is not supported",
                                   cmp.line, cmp.col));
          continue;
        }
        qb.AddJoin(*lhs_q, *rhs_q, cmp.op);
      }
      continue;
    }
    if (lhs_col == nullptr && rhs_col == nullptr) {
      errors.push_back(ErrorAt(
          "comparison must reference at least one column", cmp.line,
          cmp.col));
      continue;
    }
    // One side is a column: normalize it to the left.
    const AstColumn& col = lhs_col != nullptr ? *lhs_col : *rhs_col;
    const AstOperand& other = lhs_col != nullptr ? cmp.rhs : cmp.lhs;
    const CompareOp op = lhs_col != nullptr ? cmp.op : Flip(cmp.op);
    auto col_q = qualify(col);
    if (const auto* lit = std::get_if<AstLiteral>(&other)) {
      if (col_q.has_value()) {
        qb.AddSelection(*col_q, op, lit->value);
        ++num_selections;
      }
      continue;
    }
    const AstParam& param = std::get<AstParam>(other);
    if (param.position >= 0) {
      has_positional = true;
    } else {
      has_named = true;
    }
    if (!col_q.has_value()) continue;
    // The placeholder constant is NULL; BindParameters replaces it.
    qb.AddSelection(*col_q, op, Value::Null());
    pending_params.push_back({param, num_selections});
    ++num_selections;
  }
  if (has_positional && has_named) {
    errors.push_back(Status::InvalidQuery(
        "query mixes positional '?' and named '$' parameters; use one "
        "style"));
  }

  if (stmt.limit.has_value()) qb.Limit(*stmt.limit);

  Result<QuerySpec> built = qb.Build();
  if (!built.ok()) errors.push_back(built.status());
  if (!errors.empty()) return CombineStatuses(errors);

  BoundStatement bound;
  bound.explain_analyze = stmt.explain_analyze;
  bound.spec = std::move(built).Value();
  // Build() already ran ValidateQueryShape; the SQL-only intent check is
  // join-connectedness (cross products, see validation.h).
  STEMS_RETURN_NOT_OK(ValidateJoinConnected(bound.spec));

  // Literal/column type check: `u.age = 'x'` would otherwise bind to an
  // always-false predicate and silently return nothing. Parameter
  // placeholders are NULL here and get the same check at Bind time.
  auto column_of = [&bound](const ColumnRef& ref) {
    return bound.spec.slots()[ref.table_slot].def->schema.column(ref.column);
  };
  auto label_of = [&bound, &column_of](const ColumnRef& ref) {
    return bound.spec.slots()[ref.table_slot].alias + "." +
           column_of(ref).name;
  };
  for (const auto& p : bound.spec.predicates()) {
    if (p.is_join()) {
      if (!TypeCompatible(column_of(p.lhs()).type, column_of(p.rhs()).type)) {
        errors.push_back(Status::InvalidQuery(
            "join '" + label_of(p.lhs()) + " " + CompareOpName(p.op()) + " " +
            label_of(p.rhs()) + "' compares " +
            ValueTypeName(column_of(p.lhs()).type) + " with " +
            ValueTypeName(column_of(p.rhs()).type)));
      }
    } else if (!TypeCompatible(column_of(p.lhs()).type,
                               p.constant().type())) {
      errors.push_back(Status::InvalidQuery(
          "selection on '" + label_of(p.lhs()) + "' (" +
          ValueTypeName(column_of(p.lhs()).type) + ") compares against a " +
          ValueTypeName(p.constant().type()) + " literal " +
          p.constant().ToString()));
    }
  }
  if (!errors.empty()) return CombineStatuses(errors);

  // Resolve parameter sites to final predicate indexes: the builder put
  // all joins first, so selection ordinal i is predicate (num_joins + i).
  const size_t num_joins = bound.spec.num_predicates() - num_selections;
  for (const auto& p : pending_params) {
    ParamSite site;
    site.predicate_index = num_joins + p.selection_ordinal;
    site.position = p.param.position;
    site.name = p.param.name;
    const Predicate& pred = bound.spec.predicates()[site.predicate_index];
    const TableInstance& inst = bound.spec.slots()[pred.lhs().table_slot];
    site.column_label =
        inst.alias + "." + inst.def->schema.column(pred.lhs().column).name;
    site.column_type = inst.def->schema.column(pred.lhs().column).type;
    // The template's ToString() must print the placeholder, not the NULL
    // stand-in ('?' placeholders re-parse positionally, so the plain
    // spelling suffices).
    bound.spec.param_markers_.emplace_back(
        site.predicate_index,
        site.name.empty() ? "?" : "$" + site.name);
    bound.params.push_back(std::move(site));
  }
  return bound;
}

Status Binder::BindParameters(QuerySpec* spec,
                              const std::vector<ParamSite>& sites,
                              const SqlParams& values) {
  size_t num_positional = 0;
  for (const auto& site : sites) {
    if (site.position >= 0) ++num_positional;
  }
  if (num_positional > 0 && !values.named().empty()) {
    return Status::InvalidArgument(
        "query uses positional '?' parameters but named values were "
        "bound");
  }
  if (values.positional().size() != num_positional) {
    return Status::InvalidArgument(
        "query expects " + std::to_string(num_positional) +
        " positional parameter(s); " +
        std::to_string(values.positional().size()) + " bound");
  }
  // Every named value must match a site (catches typos like $regin).
  for (const auto& [name, value] : values.named()) {
    bool known = false;
    for (const auto& site : sites) {
      if (site.name == name) {
        known = true;
        break;
      }
    }
    if (!known) {
      return Status::InvalidArgument("parameter '$" + name +
                                     "' does not appear in the query");
    }
  }

  for (const auto& site : sites) {
    const Value* value = nullptr;
    if (site.position >= 0) {
      value = &values.positional()[static_cast<size_t>(site.position)];
    } else {
      value = values.FindNamed(site.name);
      if (value == nullptr) {
        return Status::InvalidArgument("no value bound for parameter '$" +
                                       site.name + "'");
      }
    }
    if (!TypeCompatible(site.column_type, value->type())) {
      return Status::InvalidArgument(
          "parameter " + site.ToString() + " compares against column '" +
          site.column_label + "' (" + ValueTypeName(site.column_type) +
          ") but the bound value " + value->ToString() + " is " +
          ValueTypeName(value->type()));
    }
    const Predicate& old = spec->predicates_[site.predicate_index];
    spec->predicates_[site.predicate_index] =
        Predicate::Selection(old.id(), old.lhs(), old.op(), *value);
  }
  // Every site now holds its real constant: the executable spec's
  // ToString() prints values, not placeholders.
  spec->param_markers_.clear();
  return Status::OK();
}

Result<BoundStatement> ParseAndBind(const std::string& sql,
                                    const Catalog& catalog) {
  STEMS_ASSIGN_OR_RETURN(SelectStatement stmt, Parse(sql));
  return Binder::Bind(stmt, catalog);
}

}  // namespace stems::sql
