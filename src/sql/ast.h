// SQL abstract syntax tree: the parser's output, the binder's input.
//
// The dialect covers exactly what the engine executes (paper §2.2):
//
//   SELECT <cols | *> FROM t [alias], ...
//     [WHERE conjunct AND conjunct ...] [LIMIT n] [;]
//
// where each conjunct is a comparison between column references, literals
// and parameters ('?' positional, '$name' named). Names stay unresolved
// here — the binder turns them into ColumnRefs against a Catalog.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "expr/predicate.h"
#include "types/value.h"

namespace stems::sql {

/// `alias.column` or a bare `column` (resolved by the binder when it is
/// unambiguous across the FROM list).
struct AstColumn {
  std::string qualifier;  ///< empty for unqualified references
  std::string column;
  int line = 1;
  int col = 1;

  std::string ToString() const {
    return qualifier.empty() ? column : qualifier + "." + column;
  }
};

/// A literal constant (int, float, string, NULL).
struct AstLiteral {
  Value value;
  int line = 1;
  int col = 1;
};

/// A parameter placeholder: position >= 0 for '?', name set for '$name'.
struct AstParam {
  int position = -1;
  std::string name;
  int line = 1;
  int col = 1;

  std::string ToString() const {
    return name.empty() ? "?" : "$" + name;
  }
};

using AstOperand = std::variant<AstColumn, AstLiteral, AstParam>;

/// One WHERE conjunct: `lhs op rhs`.
struct AstComparison {
  AstOperand lhs;
  CompareOp op = CompareOp::kEq;
  AstOperand rhs;
  int line = 1;  ///< position of the comparison operator
  int col = 1;
};

/// One FROM entry: `table [AS] alias`.
struct AstTableRef {
  std::string table;
  std::string alias;  ///< empty = defaults to the table name
  int line = 1;
  int col = 1;
};

/// A full SELECT statement.
struct SelectStatement {
  /// "EXPLAIN ANALYZE SELECT ...": run the query to completion and return
  /// its per-module execution profile instead of the result rows.
  bool explain_analyze = false;
  bool select_star = false;
  std::vector<AstColumn> select_list;  ///< empty iff select_star
  std::vector<AstTableRef> from;
  std::vector<AstComparison> where;
  std::optional<uint64_t> limit;
};

}  // namespace stems::sql
