// SQL tokens: the lexer's output, the parser's input.
//
// Every token carries its 1-based source position so parser and binder
// diagnostics can point at the offending character ("expected expression
// at 1:27") — the serving-system requirement that a rejected query tells
// the *user* what to fix, not the operator.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace stems::sql {

enum class TokenKind : uint8_t {
  // Keywords (case-insensitive in the input).
  kSelect,
  kFrom,
  kWhere,
  kAnd,
  kAs,
  kLimit,
  kNull,
  kExplain,
  kAnalyze,
  // Literals and names.
  kIdent,      ///< bare identifier (case-sensitive, like the catalog)
  kInt,        ///< [0-9]+
  kFloat,      ///< [0-9]+ '.' [0-9]* with optional exponent
  kString,     ///< '...' with '' escaping; text holds the unescaped value
  // Parameters.
  kQuestion,   ///< positional parameter '?'
  kDollar,     ///< named parameter '$name'; text holds the name
  // Punctuation and operators.
  kComma,
  kDot,
  kStar,
  kSemicolon,
  kMinus,
  kEq,   ///< =
  kNe,   ///< != or <>
  kLt,
  kLe,
  kGt,
  kGe,
  kEof,
};

/// Human-readable token-kind name for diagnostics ("SELECT", "','", ...).
const char* TokenKindName(TokenKind kind);

struct Token {
  TokenKind kind = TokenKind::kEof;
  /// The lexeme: identifier spelling, literal digits, unescaped string
  /// body, or parameter name. Empty for fixed-spelling tokens.
  std::string text;
  int line = 1;  ///< 1-based
  int col = 1;   ///< 1-based column of the token's first character

  /// "1:27" — the position suffix used by every front-end diagnostic.
  std::string Position() const {
    return std::to_string(line) + ":" + std::to_string(col);
  }
};

}  // namespace stems::sql
