#include "sql/lexer.h"

#include <cctype>

namespace stems::sql {

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

bool IsDigit(char c) { return std::isdigit(static_cast<unsigned char>(c)); }

/// Case-insensitive keyword lookup; kIdent when `word` is no keyword.
TokenKind KeywordOrIdent(const std::string& word) {
  std::string upper;
  upper.reserve(word.size());
  for (char c : word) {
    upper.push_back(
        static_cast<char>(std::toupper(static_cast<unsigned char>(c))));
  }
  if (upper == "SELECT") return TokenKind::kSelect;
  if (upper == "FROM") return TokenKind::kFrom;
  if (upper == "WHERE") return TokenKind::kWhere;
  if (upper == "AND") return TokenKind::kAnd;
  if (upper == "AS") return TokenKind::kAs;
  if (upper == "LIMIT") return TokenKind::kLimit;
  if (upper == "NULL") return TokenKind::kNull;
  if (upper == "EXPLAIN") return TokenKind::kExplain;
  if (upper == "ANALYZE") return TokenKind::kAnalyze;
  return TokenKind::kIdent;
}

}  // namespace

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kSelect:
      return "SELECT";
    case TokenKind::kFrom:
      return "FROM";
    case TokenKind::kWhere:
      return "WHERE";
    case TokenKind::kAnd:
      return "AND";
    case TokenKind::kAs:
      return "AS";
    case TokenKind::kLimit:
      return "LIMIT";
    case TokenKind::kNull:
      return "NULL";
    case TokenKind::kExplain:
      return "EXPLAIN";
    case TokenKind::kAnalyze:
      return "ANALYZE";
    case TokenKind::kIdent:
      return "identifier";
    case TokenKind::kInt:
      return "integer literal";
    case TokenKind::kFloat:
      return "float literal";
    case TokenKind::kString:
      return "string literal";
    case TokenKind::kQuestion:
      return "'?'";
    case TokenKind::kDollar:
      return "'$' parameter";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNe:
      return "'!='";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kEof:
      return "end of input";
  }
  return "?";
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> out;
  int line = 1;
  int col = 1;
  size_t i = 0;
  const size_t n = sql.size();

  auto error_at = [](const std::string& msg, int l, int c) {
    return Status::InvalidQuery(msg + " at " + std::to_string(l) + ":" +
                                std::to_string(c));
  };
  auto push = [&](TokenKind kind, std::string text, int l, int c) {
    out.push_back(Token{kind, std::move(text), l, c});
  };

  while (i < n) {
    const char c = sql[i];
    if (c == '\n') {
      ++line;
      col = 1;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++col;
      ++i;
      continue;
    }
    const int tl = line;
    const int tc = col;
    if (IsIdentStart(c)) {
      size_t j = i;
      while (j < n && IsIdentChar(sql[j])) ++j;
      std::string word = sql.substr(i, j - i);
      const TokenKind kind = KeywordOrIdent(word);
      push(kind, kind == TokenKind::kIdent ? std::move(word) : "", tl, tc);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (IsDigit(c)) {
      size_t j = i;
      while (j < n && IsDigit(sql[j])) ++j;
      bool is_float = false;
      // A '.' is part of the number only when followed by a digit or an
      // exponent/end-of-number; "1.x" lexes as 1 . x, never as a float.
      if (j < n && sql[j] == '.' && j + 1 < n && IsDigit(sql[j + 1])) {
        is_float = true;
        ++j;
        while (j < n && IsDigit(sql[j])) ++j;
      }
      if (j < n && (sql[j] == 'e' || sql[j] == 'E') && j + 1 < n &&
          (IsDigit(sql[j + 1]) ||
           ((sql[j + 1] == '+' || sql[j + 1] == '-') && j + 2 < n &&
            IsDigit(sql[j + 2])))) {
        is_float = true;
        j += (sql[j + 1] == '+' || sql[j + 1] == '-') ? 2 : 1;
        while (j < n && IsDigit(sql[j])) ++j;
      }
      push(is_float ? TokenKind::kFloat : TokenKind::kInt,
           sql.substr(i, j - i), tl, tc);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    if (c == '\'') {
      std::string body;
      size_t j = i + 1;
      int ccol = col + 1;
      int cline = line;
      bool closed = false;
      while (j < n) {
        if (sql[j] == '\'') {
          if (j + 1 < n && sql[j + 1] == '\'') {  // '' escape
            body.push_back('\'');
            j += 2;
            ccol += 2;
            continue;
          }
          closed = true;
          ++j;
          ++ccol;
          break;
        }
        if (sql[j] == '\n') {
          ++cline;
          ccol = 1;
        } else {
          ++ccol;
        }
        body.push_back(sql[j]);
        ++j;
      }
      if (!closed) {
        return error_at("unterminated string literal", tl, tc);
      }
      push(TokenKind::kString, std::move(body), tl, tc);
      line = cline;
      col = ccol;
      i = j;
      continue;
    }
    if (c == '$') {
      size_t j = i + 1;
      if (j >= n || !IsIdentStart(sql[j])) {
        return error_at("'$' must be followed by a parameter name", tl, tc);
      }
      while (j < n && IsIdentChar(sql[j])) ++j;
      push(TokenKind::kDollar, sql.substr(i + 1, j - i - 1), tl, tc);
      col += static_cast<int>(j - i);
      i = j;
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < n && sql[i + 1] == second;
    };
    TokenKind kind;
    int len = 1;
    switch (c) {
      case ',':
        kind = TokenKind::kComma;
        break;
      case '.':
        kind = TokenKind::kDot;
        break;
      case '*':
        kind = TokenKind::kStar;
        break;
      case ';':
        kind = TokenKind::kSemicolon;
        break;
      case '-':
        kind = TokenKind::kMinus;
        break;
      case '?':
        kind = TokenKind::kQuestion;
        break;
      case '=':
        kind = TokenKind::kEq;
        break;
      case '!':
        if (!two('=')) {
          return error_at("unexpected character '!' (did you mean '!='?)",
                          tl, tc);
        }
        kind = TokenKind::kNe;
        len = 2;
        break;
      case '<':
        if (two('=')) {
          kind = TokenKind::kLe;
          len = 2;
        } else if (two('>')) {
          kind = TokenKind::kNe;
          len = 2;
        } else {
          kind = TokenKind::kLt;
        }
        break;
      case '>':
        if (two('=')) {
          kind = TokenKind::kGe;
          len = 2;
        } else {
          kind = TokenKind::kGt;
        }
        break;
      default:
        return error_at(std::string("unexpected character '") + c + "'", tl,
                        tc);
    }
    push(kind, "", tl, tc);
    col += len;
    i += static_cast<size_t>(len);
  }
  push(TokenKind::kEof, "", line, col);
  return out;
}

}  // namespace stems::sql
