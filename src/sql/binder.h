// SQL binder: AST -> QuerySpec against a Catalog.
//
// The binder resolves names (delegating "Alias.column" resolution to
// QueryBuilder so both front ends share one error vocabulary, and adding
// unqualified-column resolution on top), classifies WHERE conjuncts into
// join and selection predicates, records parameter placeholder sites, and
// validates the query shape. Parameter *values* arrive later:
// BindParameters() patches a copy of the bound spec in place — the
// prepared-query hot path, no re-parse, no re-resolution.
#pragma once

#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/status.h"
#include "query/query_spec.h"
#include "sql/ast.h"
#include "sql/params.h"

namespace stems::sql {

/// One parameter placeholder in a bound statement: which predicate's
/// constant it fills, and how callers address it.
struct ParamSite {
  size_t predicate_index = 0;  ///< index into QuerySpec::predicates()
  int position = -1;           ///< '?' order, or -1 for named
  std::string name;            ///< "$name", or empty for positional
  /// Column the parameter compares against (for type checks/messages).
  std::string column_label;
  ValueType column_type = ValueType::kInt64;

  std::string ToString() const {
    return name.empty() ? "?" + std::to_string(position + 1) : "$" + name;
  }
};

/// A statement bound against a catalog: an executable QuerySpec template
/// plus its parameter sites. With no parameters the spec is ready to
/// submit; otherwise BindParameters() produces the executable copy.
struct BoundStatement {
  QuerySpec spec;
  std::vector<ParamSite> params;
  /// "EXPLAIN ANALYZE ..." prefix: the caller wants the execution profile,
  /// not the rows (Engine::Query runs such statements to completion).
  bool explain_analyze = false;
};

class Binder {
 public:
  /// Resolves and validates `stmt` against `catalog`. All name-resolution
  /// errors are collected into one combined Status.
  static Result<BoundStatement> Bind(const SelectStatement& stmt,
                                     const Catalog& catalog);

  /// Replaces each parameter site's placeholder constant in `spec` with
  /// its value from `values`. Checks arity, names, and value/column type
  /// compatibility. `spec` must be a copy of the BoundStatement's spec.
  static Status BindParameters(QuerySpec* spec,
                               const std::vector<ParamSite>& sites,
                               const SqlParams& values);
};

/// Tokenize + parse + bind in one step (the Engine::Query front door).
Result<BoundStatement> ParseAndBind(const std::string& sql,
                                    const Catalog& catalog);

}  // namespace stems::sql
