// SQL lexer: text -> tokens with source positions.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/token.h"

namespace stems::sql {

/// Tokenizes `sql` into a token list ending in a kEof token. Keywords are
/// case-insensitive; identifiers are case-sensitive (they must match the
/// catalog spelling exactly). Errors (stray characters, unterminated
/// strings) are InvalidQuery statuses with a "at line:col" suffix.
Result<std::vector<Token>> Tokenize(const std::string& sql);

}  // namespace stems::sql
