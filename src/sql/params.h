// SqlParams: the values bound to a prepared query's placeholders.
//
// A query uses either positional ('?') or named ('$name') parameters,
// never both. Positional values bind in placeholder order; named values
// bind by name and may be set in any order.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "types/value.h"

namespace stems::sql {

class SqlParams {
 public:
  SqlParams() = default;
  /// Positional values, in '?' order: SqlParams{Value::Int64(7), ...}.
  SqlParams(std::initializer_list<Value> positional)
      : positional_(positional) {}
  explicit SqlParams(std::vector<Value> positional)
      : positional_(std::move(positional)) {}

  /// Binds `$name`; overwrites an earlier Set of the same name.
  SqlParams& Set(const std::string& name, Value value) {
    for (auto& [n, v] : named_) {
      if (n == name) {
        v = std::move(value);
        return *this;
      }
    }
    named_.emplace_back(name, std::move(value));
    return *this;
  }

  /// Appends the next positional value.
  SqlParams& Add(Value value) {
    positional_.push_back(std::move(value));
    return *this;
  }

  const std::vector<Value>& positional() const { return positional_; }
  const std::vector<std::pair<std::string, Value>>& named() const {
    return named_;
  }

  /// The value bound to `$name`, or nullptr.
  const Value* FindNamed(const std::string& name) const {
    for (const auto& [n, v] : named_) {
      if (n == name) return &v;
    }
    return nullptr;
  }

 private:
  std::vector<Value> positional_;
  std::vector<std::pair<std::string, Value>> named_;
};

}  // namespace stems::sql
