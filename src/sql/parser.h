// SQL parser: recursive descent over the token stream, producing an AST.
//
// Every diagnostic is position-annotated ("expected expression at 1:27");
// tests/test_sql.cc pins the exact messages as golden strings.
#pragma once

#include <string>
#include <vector>

#include "common/status.h"
#include "sql/ast.h"
#include "sql/token.h"

namespace stems::sql {

/// Parses one SELECT statement. The whole input must be consumed (an
/// optional trailing ';' is allowed).
Result<SelectStatement> Parse(const std::string& sql);

/// Parses from an existing token list (must end in kEof). Used by the
/// token-mutation fuzz tests; `Parse` is Tokenize + ParseTokens.
Result<SelectStatement> ParseTokens(const std::vector<Token>& tokens);

}  // namespace stems::sql
