// Minimal leveled logging for the stems library.
//
// Logging is off by default (benchmarks must not be perturbed); tests and
// examples can raise the level. Not thread-safe by design: the engine is a
// single-threaded discrete-event simulation (DESIGN.md §5).
#pragma once

#include <sstream>
#include <string>

namespace stems {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

/// Sets the global minimum level that will be emitted.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

void EmitLog(LogLevel level, const std::string& message);

/// Stream-style log line; emits on destruction.
class LogMessage {
 public:
  LogMessage(LogLevel level) : level_(level) {}
  ~LogMessage() { EmitLog(level_, stream_.str()); }
  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

}  // namespace internal

#define STEMS_LOG(level)                                      \
  if (::stems::GetLogLevel() <= ::stems::LogLevel::k##level)  \
  ::stems::internal::LogMessage(::stems::LogLevel::k##level)

}  // namespace stems
