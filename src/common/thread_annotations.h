// Thread-safety annotations and the engine's only sanctioned lock types.
//
// Every mutex in the engine is a stems::Mutex, every scoped acquisition a
// stems::MutexLock, every condition wait a stems::CondVar — the repo-invariant
// linter (scripts/check_invariants.py, rule `naked-mutex`) rejects raw
// std::mutex / std::lock_guard anywhere else. The wrappers carry Clang
// Thread Safety Analysis capability attributes, so under clang with
// -Wthread-safety (added automatically by the build; CI runs it with
// -Werror) an access to a STEMS_GUARDED_BY field without its lock, or a
// call to a STEMS_REQUIRES function without the capability, is a *compile
// error*, not a code-review hope. On non-clang compilers every annotation
// macro expands to nothing and the wrappers are zero-cost veneers over the
// standard types.
//
// This is how the project's two hardest prose invariants became
// machine-checked (docs/static_analysis.md):
//   * the §3.1 visibility contract — ShardedStem build-timestamp issuance
//     must happen inside the shard critical section (sharded_stem.h);
//   * engine-thread ownership — only the server's engine thread touches
//     the Engine (server.h; the linter's `engine-thread` rule covers the
//     cross-file half).
//
// Annotation conventions:
//   * every field a mutex protects is STEMS_GUARDED_BY(that mutex);
//   * every helper that expects the caller to hold a lock says so with
//     STEMS_REQUIRES(mu) instead of a "caller holds mu" comment;
//   * scoped lock types are STEMS_SCOPED_CAPABILITY with ACQUIRE/RELEASE
//     on the constructor/destructor (the absl::MutexLock idiom);
//   * fields synchronized by something other than a mutex (atomics,
//     thread ownership, happens-before via thread start/join) carry a
//     `// relaxed:` / `// sync:` comment the linter recognizes
//     (rule `atomic-doc`).
//
// Schedule-exploration seam (src/check/, docs/static_analysis.md "Dynamic
// exploration"): every wrapper below consults a thread-local scheduler hook
// before/after the underlying operation. The hook pointer is null outside
// the model-checking harness, so production code pays one thread-local load
// and a never-taken branch per sync op (bench-smoke holds the overhead
// gates); under the harness, every lock, unlock, cv wait/notify and
// stems::Atomic access becomes a controlled yield point.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>

// Attribute spelling: clang's capability analysis. GCC accepts none of
// these, so they compile away entirely (the linter still enforces the
// conventions textually there).
#if defined(__clang__)
#define STEMS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define STEMS_THREAD_ANNOTATION_(x)
#endif

/// Declares a class to be a lockable capability ("mutex" in diagnostics).
#define STEMS_CAPABILITY(x) STEMS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define STEMS_SCOPED_CAPABILITY STEMS_THREAD_ANNOTATION_(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define STEMS_GUARDED_BY(x) STEMS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x`.
#define STEMS_PT_GUARDED_BY(x) STEMS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function precondition: the caller must hold the listed capabilities.
/// Replaces "caller holds mu_" comments with a compiler-checked contract.
#define STEMS_REQUIRES(...) \
  STEMS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function precondition: the caller must NOT hold the listed capabilities
/// (documents lock-ordering / self-deadlock hazards).
#define STEMS_EXCLUDES(...) STEMS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define STEMS_ACQUIRE(...) \
  STEMS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the capability (held on entry).
#define STEMS_RELEASE(...) \
  STEMS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the return
/// value that means success.
#define STEMS_TRY_ACQUIRE(...) \
  STEMS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define STEMS_RETURN_CAPABILITY(x) STEMS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis. Every use must
/// say why in an adjacent comment.
#define STEMS_NO_THREAD_SAFETY_ANALYSIS \
  STEMS_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Runtime assertion that the capability is held (for call graphs the
/// static analysis cannot follow, e.g. callbacks).
#define STEMS_ASSERT_CAPABILITY(x) \
  STEMS_THREAD_ANNOTATION_(assert_capability(x))

namespace stems {

namespace sched {

/// Interface the schedule-exploration scheduler (src/check/scheduler.h)
/// implements; the sync wrappers below call into it at every
/// synchronization point of the thread it is installed on.
///
/// Contract between the wrappers and the hook:
///   * MutexLockPoint fires *before* the real acquisition and blocks (in
///     the scheduler) until the modeled mutex is free and this thread is
///     scheduled — the real lock that follows is therefore uncontended.
///   * MutexUnlockPoint fires *after* the real release (yield point).
///   * CondWaitPoint fires with the real mutex already released; it blocks
///     until the thread is woken (notify / injected spurious wakeup /
///     virtual timeout) *and* has reacquired the modeled mutex. Returns
///     true when the wake was a timeout (timed waits only).
///   * TryLockPoint is a yield point that resolves the attempt against the
///     model: true = acquired (the real try_lock that follows succeeds).
///   * NotifyPoint / AtomicPoint are plain yield points.
class Hook {
 public:
  virtual ~Hook() = default;
  virtual void MutexLockPoint(void* mu) = 0;
  virtual void MutexUnlockPoint(void* mu) = 0;
  virtual bool TryLockPoint(void* mu) = 0;
  virtual bool CondWaitPoint(void* cv, void* mu, bool timed) = 0;
  virtual void NotifyPoint(void* cv, bool notify_all) = 0;
  virtual void AtomicPoint(const void* addr) = 0;
};

/// The per-thread hook. Null everywhere except on threads spawned by a
/// check::Scheduler; the wrappers' fast path is one thread-local load plus
/// a never-taken branch.
inline thread_local Hook* t_hook = nullptr;

inline Hook* ThreadHook() { return t_hook; }
inline void SetThreadHook(Hook* hook) { t_hook = hook; }

}  // namespace sched

class CondVar;

/// The engine's mutex: std::mutex with a capability attribute. Prefer
/// MutexLock for scoped sections; Lock/Unlock exist for the rare
/// non-scoped protocol (and for scoped wrappers like ContentionLock).
class STEMS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() STEMS_ACQUIRE() {
    // Hooked: the scheduler blocks here until the modeled mutex is free and
    // this thread is picked, so the real lock below never contends.
    if (sched::Hook* h = sched::ThreadHook()) h->MutexLockPoint(this);
    mu_.lock();
  }
  void Unlock() STEMS_RELEASE() {
    mu_.unlock();
    if (sched::Hook* h = sched::ThreadHook()) h->MutexUnlockPoint(this);
  }
  bool TryLock() STEMS_TRY_ACQUIRE(true) {
    if (sched::Hook* h = sched::ThreadHook()) {
      if (!h->TryLockPoint(this)) return false;
      // Modeled acquisition succeeded; the real try_lock cannot fail (the
      // scheduler serializes, and the model says the mutex is free).
      return mu_.try_lock();
    }
    return mu_.try_lock();
  }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped acquisition (the std::lock_guard of this codebase). Takes a
/// pointer so call sites read `MutexLock lock(&mu_);` — an acquisition is
/// visibly an action on the mutex, not a copy of it.
class STEMS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) STEMS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() STEMS_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to stems::Mutex. Waits take the Mutex (with a
/// REQUIRES contract) rather than a std::unique_lock, so guarded state
/// stays inside the annotated world; predicates are written as explicit
/// `while` loops in the caller — where the capability is held and the
/// analysis can see the guarded reads — never as lambdas (a lambda body is
/// a separate function the analysis treats as lock-free).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) STEMS_REQUIRES(mu) {
    if (sched::Hook* h = sched::ThreadHook()) {
      // Hooked wait: really release the mutex (other scheduled threads must
      // be able to really lock it), let the scheduler model the wait —
      // notify, injected spurious wakeup, modeled reacquisition — then
      // really relock (uncontended; the model granted it).
      mu.mu_.unlock();
      try {
        (void)h->CondWaitPoint(this, &mu, /*timed=*/false);
      } catch (...) {
        // Schedule abort unwinds through here; the caller's scoped lock
        // will release the mutex, so it must really be held again.
        mu.mu_.lock();
        throw;
      }
      mu.mu_.lock();
      return;
    }
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands it back without unlocking (the caller still holds it).
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      STEMS_REQUIRES(mu) {
    if (sched::Hook* h = sched::ThreadHook()) {
      // Hooked timed wait: the deadline is virtual — the scheduler decides
      // when (whether) the timeout fires, so explored schedules never
      // depend on wall time.
      mu.mu_.unlock();
      bool timed_out = false;
      try {
        timed_out = h->CondWaitPoint(this, &mu, /*timed=*/true);
      } catch (...) {
        mu.mu_.lock();  // see Wait(): unwinding must leave the mutex held
        throw;
      }
      mu.mu_.lock();
      return timed_out ? std::cv_status::timeout : std::cv_status::no_timeout;
    }
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      STEMS_REQUIRES(mu) {
    if (sched::Hook* h = sched::ThreadHook()) {
      mu.mu_.unlock();
      bool timed_out = false;
      try {
        timed_out = h->CondWaitPoint(this, &mu, /*timed=*/true);
      } catch (...) {
        mu.mu_.lock();  // see Wait(): unwinding must leave the mutex held
        throw;
      }
      mu.mu_.lock();
      return timed_out ? std::cv_status::timeout : std::cv_status::no_timeout;
    }
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void NotifyOne() {
    if (sched::Hook* h = sched::ThreadHook()) h->NotifyPoint(this, false);
    cv_.notify_one();
  }
  void NotifyAll() {
    if (sched::Hook* h = sched::ThreadHook()) h->NotifyPoint(this, true);
    cv_.notify_all();
  }

 private:
  std::condition_variable cv_;
};

/// Schedulable atomic: std::atomic with a yield point before every access.
/// Adopt it for every atomic that *synchronizes* (`sync:`-annotated sites —
/// stop flags, admission counters, CAS protocols); pure statistics may stay
/// std::atomic with an `// invariant: allow(schedulable-atomic)` note
/// (rule `schedulable-atomic` in scripts/check_invariants.py). Under the
/// model-checking harness every load/store/RMW becomes a scheduling
/// decision; in production it is the same one-branch fast path as Mutex.
///
/// Deliberately narrower than std::atomic: only the operations the engine
/// actually uses, all seq_cst (the memory-order parameter the engine never
/// varied is not worth widening the exploration surface for).
template <typename T>
class Atomic {
 public:
  constexpr Atomic() noexcept : v_(T{}) {}
  constexpr Atomic(T value) noexcept : v_(value) {}  // NOLINT(google-explicit-constructor)
  Atomic(const Atomic&) = delete;
  Atomic& operator=(const Atomic&) = delete;

  T load() const noexcept {
    Point();
    return v_.load();
  }
  void store(T value) noexcept {
    Point();
    v_.store(value);
  }
  T exchange(T value) noexcept {
    Point();
    return v_.exchange(value);
  }
  bool compare_exchange_strong(T& expected, T desired) noexcept {
    Point();
    return v_.compare_exchange_strong(expected, desired);
  }
  bool compare_exchange_weak(T& expected, T desired) noexcept {
    Point();
    // Under the hook, weak CAS is strengthened: a spurious CAS failure is
    // a scheduling event the model wants to control, not inherit from the
    // hardware mid-schedule.
    if (sched::ThreadHook() != nullptr) {
      return v_.compare_exchange_strong(expected, desired);
    }
    return v_.compare_exchange_weak(expected, desired);
  }
  T fetch_add(T delta) noexcept {
    Point();
    return v_.fetch_add(delta);
  }
  T fetch_sub(T delta) noexcept {
    Point();
    return v_.fetch_sub(delta);
  }

  operator T() const noexcept { return load(); }  // NOLINT(google-explicit-constructor)
  T operator=(T value) noexcept {
    store(value);
    return value;
  }
  T operator++() noexcept { return fetch_add(T{1}) + T{1}; }
  T operator--() noexcept { return fetch_sub(T{1}) - T{1}; }

 private:
  void Point() const noexcept {
    if (sched::Hook* h = sched::ThreadHook()) h->AtomicPoint(&v_);
  }

  /// sync: the wrapped cell; every access above is seq_cst (class doc).
  std::atomic<T> v_;
};

}  // namespace stems
