// Thread-safety annotations and the engine's only sanctioned lock types.
//
// Every mutex in the engine is a stems::Mutex, every scoped acquisition a
// stems::MutexLock, every condition wait a stems::CondVar — the repo-invariant
// linter (scripts/check_invariants.py, rule `naked-mutex`) rejects raw
// std::mutex / std::lock_guard anywhere else. The wrappers carry Clang
// Thread Safety Analysis capability attributes, so under clang with
// -Wthread-safety (added automatically by the build; CI runs it with
// -Werror) an access to a STEMS_GUARDED_BY field without its lock, or a
// call to a STEMS_REQUIRES function without the capability, is a *compile
// error*, not a code-review hope. On non-clang compilers every annotation
// macro expands to nothing and the wrappers are zero-cost veneers over the
// standard types.
//
// This is how the project's two hardest prose invariants became
// machine-checked (docs/static_analysis.md):
//   * the §3.1 visibility contract — ShardedStem build-timestamp issuance
//     must happen inside the shard critical section (sharded_stem.h);
//   * engine-thread ownership — only the server's engine thread touches
//     the Engine (server.h; the linter's `engine-thread` rule covers the
//     cross-file half).
//
// Annotation conventions:
//   * every field a mutex protects is STEMS_GUARDED_BY(that mutex);
//   * every helper that expects the caller to hold a lock says so with
//     STEMS_REQUIRES(mu) instead of a "caller holds mu" comment;
//   * scoped lock types are STEMS_SCOPED_CAPABILITY with ACQUIRE/RELEASE
//     on the constructor/destructor (the absl::MutexLock idiom);
//   * fields synchronized by something other than a mutex (atomics,
//     thread ownership, happens-before via thread start/join) carry a
//     `// relaxed:` / `// sync:` comment the linter recognizes
//     (rule `atomic-doc`).
#pragma once

#include <chrono>
#include <condition_variable>
#include <mutex>

// Attribute spelling: clang's capability analysis. GCC accepts none of
// these, so they compile away entirely (the linter still enforces the
// conventions textually there).
#if defined(__clang__)
#define STEMS_THREAD_ANNOTATION_(x) __attribute__((x))
#else
#define STEMS_THREAD_ANNOTATION_(x)
#endif

/// Declares a class to be a lockable capability ("mutex" in diagnostics).
#define STEMS_CAPABILITY(x) STEMS_THREAD_ANNOTATION_(capability(x))

/// Declares an RAII class that acquires a capability in its constructor
/// and releases it in its destructor.
#define STEMS_SCOPED_CAPABILITY STEMS_THREAD_ANNOTATION_(scoped_lockable)

/// Field annotation: reads and writes require holding `x`.
#define STEMS_GUARDED_BY(x) STEMS_THREAD_ANNOTATION_(guarded_by(x))

/// Pointer-field annotation: the pointed-to data requires holding `x`.
#define STEMS_PT_GUARDED_BY(x) STEMS_THREAD_ANNOTATION_(pt_guarded_by(x))

/// Function precondition: the caller must hold the listed capabilities.
/// Replaces "caller holds mu_" comments with a compiler-checked contract.
#define STEMS_REQUIRES(...) \
  STEMS_THREAD_ANNOTATION_(requires_capability(__VA_ARGS__))

/// Function precondition: the caller must NOT hold the listed capabilities
/// (documents lock-ordering / self-deadlock hazards).
#define STEMS_EXCLUDES(...) STEMS_THREAD_ANNOTATION_(locks_excluded(__VA_ARGS__))

/// The function acquires the capability and holds it on return.
#define STEMS_ACQUIRE(...) \
  STEMS_THREAD_ANNOTATION_(acquire_capability(__VA_ARGS__))

/// The function releases the capability (held on entry).
#define STEMS_RELEASE(...) \
  STEMS_THREAD_ANNOTATION_(release_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the return
/// value that means success.
#define STEMS_TRY_ACQUIRE(...) \
  STEMS_THREAD_ANNOTATION_(try_acquire_capability(__VA_ARGS__))

/// The function returns a reference to the given capability.
#define STEMS_RETURN_CAPABILITY(x) STEMS_THREAD_ANNOTATION_(lock_returned(x))

/// Escape hatch: the function body is exempt from analysis. Every use must
/// say why in an adjacent comment.
#define STEMS_NO_THREAD_SAFETY_ANALYSIS \
  STEMS_THREAD_ANNOTATION_(no_thread_safety_analysis)

/// Runtime assertion that the capability is held (for call graphs the
/// static analysis cannot follow, e.g. callbacks).
#define STEMS_ASSERT_CAPABILITY(x) \
  STEMS_THREAD_ANNOTATION_(assert_capability(x))

namespace stems {

class CondVar;

/// The engine's mutex: std::mutex with a capability attribute. Prefer
/// MutexLock for scoped sections; Lock/Unlock exist for the rare
/// non-scoped protocol (and for scoped wrappers like ContentionLock).
class STEMS_CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() STEMS_ACQUIRE() { mu_.lock(); }
  void Unlock() STEMS_RELEASE() { mu_.unlock(); }
  bool TryLock() STEMS_TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// Scoped acquisition (the std::lock_guard of this codebase). Takes a
/// pointer so call sites read `MutexLock lock(&mu_);` — an acquisition is
/// visibly an action on the mutex, not a copy of it.
class STEMS_SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) STEMS_ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() STEMS_RELEASE() { mu_->Unlock(); }
  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// Condition variable bound to stems::Mutex. Waits take the Mutex (with a
/// REQUIRES contract) rather than a std::unique_lock, so guarded state
/// stays inside the annotated world; predicates are written as explicit
/// `while` loops in the caller — where the capability is held and the
/// analysis can see the guarded reads — never as lambdas (a lambda body is
/// a separate function the analysis treats as lock-free).
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) STEMS_REQUIRES(mu) {
    // Adopt the already-held native mutex for the duration of the wait;
    // release() hands it back without unlocking (the caller still holds it).
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    cv_.wait(native);
    native.release();
  }

  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      STEMS_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_until(native, deadline);
    native.release();
    return status;
  }

  template <class Rep, class Period>
  std::cv_status WaitFor(Mutex& mu,
                         const std::chrono::duration<Rep, Period>& timeout)
      STEMS_REQUIRES(mu) {
    std::unique_lock<std::mutex> native(mu.mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(native, timeout);
    native.release();
    return status;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace stems
