// Status / Result error handling for the stems library.
//
// The library does not use exceptions (database-engine convention; see the
// Arrow and RocksDB style guides). Fallible operations return Status, or
// Result<T> when they produce a value.
#pragma once

#include <cassert>
#include <string>
#include <utility>
#include <variant>
#include <vector>

namespace stems {

/// Machine-readable error category.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kAlreadyExists,
  kOutOfRange,
  kUnsupported,
  kInternal,
  kResourceExhausted,
  kInvalidQuery,
};

/// Human-readable name for a StatusCode.
const char* StatusCodeName(StatusCode code);

/// Success-or-error return type. Cheap to copy in the OK case.
/// [[nodiscard]]: ignoring a returned Status is how errors vanish; a
/// discarded call site must either handle it or cast through IgnoreError().
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() = default;
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Unsupported(std::string msg) {
    return Status(StatusCode::kUnsupported, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status InvalidQuery(std::string msg) {
    return Status(StatusCode::kInvalidQuery, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  /// Explicitly discards the status. The only sanctioned way past
  /// [[nodiscard]] — reserve it for paths where failure is genuinely
  /// uninteresting (best-effort cleanup), and say why at the call site.
  void IgnoreError() const {}

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// A value or an error. Use `ValueOrDie()` only where failure is a bug.
template <typename T>
class [[nodiscard]] Result {
 public:
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(T value) : repr_(std::move(value)) {}
  // NOLINTNEXTLINE(google-explicit-constructor): intentional implicit wrap.
  Result(Status status) : repr_(std::move(status)) {
    assert(!std::get<Status>(repr_).ok() && "Result(Status) must carry error");
  }

  bool ok() const { return std::holds_alternative<T>(repr_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(repr_);
  }

  const T& Value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& Value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& Value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  /// Returns the value, aborting the process on error.
  T ValueOrDie() &&;

 private:
  std::variant<T, Status> repr_;
};

/// Folds a list of error statuses into one. Empty list -> OK; one error ->
/// that status unchanged; several -> a status with the first error's code
/// whose message enumerates every error ("3 errors: [1] ...; [2] ...").
/// Used wherever a whole batch of problems should surface at once (name
/// resolution in QueryBuilder::Build and the SQL binder).
Status CombineStatuses(const std::vector<Status>& errors);

namespace internal {
[[noreturn]] void DieOnError(const Status& status);
}  // namespace internal

template <typename T>
T Result<T>::ValueOrDie() && {
  if (!ok()) internal::DieOnError(status());
  return std::get<T>(std::move(repr_));
}

/// Propagates an error Status from a fallible expression.
#define STEMS_RETURN_NOT_OK(expr)                   \
  do {                                              \
    ::stems::Status _st = (expr);                   \
    if (!_st.ok()) return _st;                      \
  } while (0)

/// Assigns the value of a Result expression or propagates its error.
#define STEMS_ASSIGN_OR_RETURN(lhs, expr)           \
  auto STEMS_CONCAT_(_res, __LINE__) = (expr);      \
  if (!STEMS_CONCAT_(_res, __LINE__).ok())          \
    return STEMS_CONCAT_(_res, __LINE__).status();  \
  lhs = std::move(STEMS_CONCAT_(_res, __LINE__)).Value()

#define STEMS_CONCAT_IMPL_(a, b) a##b
#define STEMS_CONCAT_(a, b) STEMS_CONCAT_IMPL_(a, b)

}  // namespace stems
