// Deterministic pseudo-random number generation.
//
// All randomness in the library flows through Rng so that experiments and
// property tests are reproducible from a seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace stems {

/// xoshiro256** based generator; small, fast, and seedable.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform in [0, 2^64).
  uint64_t Next();

  /// Uniform in [0, bound). bound must be > 0.
  uint64_t NextBounded(uint64_t bound);

  /// Uniform integer in [lo, hi] inclusive.
  int64_t NextInt(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Bernoulli draw with probability p.
  bool NextBool(double p = 0.5);

  /// A random permutation of [0, n).
  std::vector<size_t> Permutation(size_t n);

 private:
  uint64_t state_[4];
};

/// Zipf-distributed values in [0, n) with exponent s (s=0 is uniform).
/// Uses the classic inverse-CDF-over-precomputed-weights approach; suited to
/// the modest domains of the paper's workloads.
class ZipfGenerator {
 public:
  ZipfGenerator(size_t n, double s, uint64_t seed = 42);

  size_t Next();

 private:
  std::vector<double> cdf_;
  Rng rng_;
};

}  // namespace stems
