#include "common/status.h"

#include <cstdio>
#include <cstdlib>

namespace stems {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kInvalidQuery:
      return "InvalidQuery";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

Status CombineStatuses(const std::vector<Status>& errors) {
  if (errors.empty()) return Status::OK();
  if (errors.size() == 1) return errors.front();
  std::string msg = std::to_string(errors.size()) + " errors: ";
  for (size_t i = 0; i < errors.size(); ++i) {
    if (i > 0) msg += "; ";
    msg += "[" + std::to_string(i + 1) + "] " + errors[i].message();
  }
  return Status(errors.front().code(), std::move(msg));
}

namespace internal {
void DieOnError(const Status& status) {
  std::fprintf(stderr, "Fatal: %s\n", status.ToString().c_str());
  std::abort();
}
}  // namespace internal

}  // namespace stems
