#include "server/client.h"

#include <arpa/inet.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>

namespace stems::server {

Client::~Client() { Abort(); }

Status Client::ConnectRawForTest(const std::string& host, uint16_t port) {
  if (fd_ >= 0) return Status::AlreadyExists("client already connected");
  fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Abort();
    return Status::InvalidArgument("not an IPv4 address: '" + host + "'");
  }
  if (connect(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const Status st = Status::Internal(std::string("connect(): ") +
                                       std::strerror(errno));
    Abort();
    return st;
  }
  return Status::OK();
}

Status Client::Connect(const std::string& host, uint16_t port,
                       const std::string& tenant, const std::string& token) {
  STEMS_RETURN_NOT_OK(ConnectRawForTest(host, port));
  wire::HelloRequest hello;
  hello.tenant = tenant;
  hello.token = token;
  std::string payload;
  Status st = RoundTrip(wire::Encode(hello), wire::FrameType::kHelloOk,
                        &payload);
  if (!st.ok()) {
    Abort();
    return st;
  }
  wire::HelloOk ok;
  st = wire::Decode(payload, &ok);
  if (!st.ok()) {
    Abort();
    return st;
  }
  session_id_ = ok.session_id;
  return Status::OK();
}

Result<PrepareResult> Client::Prepare(const std::string& sql) {
  wire::PrepareRequest request;
  request.stmt_id = next_stmt_id_++;
  request.sql = sql;
  std::string payload;
  STEMS_RETURN_NOT_OK(
      RoundTrip(wire::Encode(request), wire::FrameType::kPrepareOk, &payload));
  wire::PrepareOk ok;
  STEMS_RETURN_NOT_OK(wire::Decode(payload, &ok));
  PrepareResult result;
  result.stmt_id = ok.stmt_id;
  result.num_params = ok.num_params;
  result.columns = std::move(ok.columns);
  return result;
}

Result<uint32_t> Client::Bind(uint32_t stmt_id, const sql::SqlParams& params) {
  wire::BindRequest request;
  request.stmt_id = stmt_id;
  request.portal_id = next_portal_id_++;
  request.positional = params.positional();
  request.named = params.named();
  STEMS_ASSIGN_OR_RETURN(const std::string frame, wire::Encode(request));
  std::string payload;
  STEMS_RETURN_NOT_OK(
      RoundTrip(frame, wire::FrameType::kBindOk, &payload));
  wire::BindOk ok;
  STEMS_RETURN_NOT_OK(wire::Decode(payload, &ok));
  return ok.portal_id;
}

Result<SubmitResult> Client::Submit(uint32_t portal_id,
                                    const std::string& preset) {
  wire::SubmitRequest request;
  request.portal_id = portal_id;
  request.preset = preset;
  std::string payload;
  STEMS_RETURN_NOT_OK(
      RoundTrip(wire::Encode(request), wire::FrameType::kSubmitOk, &payload));
  wire::SubmitOk ok;
  STEMS_RETURN_NOT_OK(wire::Decode(payload, &ok));
  SubmitResult result;
  result.query_id = ok.query_id;
  result.admitted = ok.admitted;
  result.queue_position = ok.queue_position;
  return result;
}

Result<FetchResult> Client::Fetch(uint64_t query_id, uint32_t max_rows) {
  wire::FetchRequest request;
  request.query_id = query_id;
  request.max_rows = max_rows;
  std::string payload;
  STEMS_RETURN_NOT_OK(
      RoundTrip(wire::Encode(request), wire::FrameType::kRows, &payload));
  wire::RowsResponse rows;
  STEMS_RETURN_NOT_OK(wire::Decode(payload, &rows));
  FetchResult result;
  result.rows = std::move(rows.rows);
  result.done = rows.done;
  return result;
}

Status Client::Cancel(uint64_t query_id) {
  wire::CancelRequest request;
  request.query_id = query_id;
  std::string payload;
  STEMS_RETURN_NOT_OK(
      RoundTrip(wire::Encode(request), wire::FrameType::kCancelOk, &payload));
  wire::CancelOk ok;
  return wire::Decode(payload, &ok);
}

Result<std::vector<std::pair<std::string, uint64_t>>> Client::TenantStats() {
  std::string payload;
  STEMS_RETURN_NOT_OK(RoundTrip(wire::EncodeStatsRequest(),
                                wire::FrameType::kStatsOk, &payload));
  wire::StatsOk ok;
  STEMS_RETURN_NOT_OK(wire::Decode(payload, &ok));
  return std::move(ok.counters);
}

Result<std::string> Client::Metrics() {
  std::string payload;
  STEMS_RETURN_NOT_OK(RoundTrip(wire::EncodeMetricsRequest(),
                                wire::FrameType::kMetricsOk, &payload));
  wire::MetricsOk ok;
  STEMS_RETURN_NOT_OK(wire::Decode(payload, &ok));
  return std::move(ok.text);
}

Status Client::Close() {
  if (fd_ < 0) return Status::OK();
  std::string payload;
  const Status st = RoundTrip(wire::EncodeCloseRequest(),
                              wire::FrameType::kCloseOk, &payload);
  Abort();
  return st;
}

void Client::Abort() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
}

Result<std::vector<std::vector<Value>>> Client::RunQuery(
    const std::string& sql, const sql::SqlParams& params,
    const std::string& preset) {
  STEMS_ASSIGN_OR_RETURN(PrepareResult prepared, Prepare(sql));
  STEMS_ASSIGN_OR_RETURN(uint32_t portal, Bind(prepared.stmt_id, params));
  STEMS_ASSIGN_OR_RETURN(SubmitResult submit, Submit(portal, preset));
  std::vector<std::vector<Value>> rows;
  while (true) {
    STEMS_ASSIGN_OR_RETURN(FetchResult fetch, Fetch(submit.query_id));
    for (auto& row : fetch.rows) rows.push_back(std::move(row));
    if (fetch.done) return rows;
    if (fetch.rows.empty()) {
      // Queued behind the tenant's admission quota (or mid-admission):
      // back off briefly instead of hot-spinning the server.
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  }
}

Status Client::SendRaw(const void* data, size_t size) {
  return WriteAll(data, size);
}

void Client::ShutdownWriteForTest() {
  if (fd_ >= 0) shutdown(fd_, SHUT_WR);
}

Status Client::ReadFrameRaw(wire::FrameType* type, std::string* payload) {
  uint8_t header[wire::kHeaderBytes];
  STEMS_RETURN_NOT_OK(ReadExactly(header, sizeof(header)));
  wire::FrameHeader decoded;
  STEMS_RETURN_NOT_OK(
      wire::DecodeFrameHeader(header, wire::kMaxFramePayload, &decoded));
  payload->resize(decoded.payload_len);
  if (decoded.payload_len > 0) {
    STEMS_RETURN_NOT_OK(ReadExactly(payload->data(), decoded.payload_len));
  }
  *type = decoded.type;
  return Status::OK();
}

Status Client::RoundTrip(const std::string& frame, wire::FrameType expected,
                         std::string* response_payload) {
  STEMS_RETURN_NOT_OK(WriteAll(frame.data(), frame.size()));
  wire::FrameType type;
  STEMS_RETURN_NOT_OK(ReadFrameRaw(&type, response_payload));
  if (type == wire::FrameType::kError) {
    wire::ErrorResponse error;
    STEMS_RETURN_NOT_OK(wire::Decode(*response_payload, &error));
    last_error_.code = error.code;
    last_error_.message = error.message;
    last_error_.sql_line = error.sql_line;
    last_error_.sql_column = error.sql_column;
    last_error_.retry_after_ms = error.retry_after_ms;
    return wire::StatusFromError(error);
  }
  if (type != expected) {
    return Status::Internal(std::string("protocol error: expected ") +
                            wire::FrameTypeName(expected) + ", got " +
                            wire::FrameTypeName(type));
  }
  return Status::OK();
}

Status Client::WriteAll(const void* data, size_t size) {
  if (fd_ < 0) return Status::Internal("client not connected");
  const char* p = static_cast<const char*>(data);
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n = send(fd_, p + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal("connection lost while sending");
  }
  return Status::OK();
}

Status Client::ReadExactly(void* data, size_t size) {
  if (fd_ < 0) return Status::Internal("client not connected");
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < size) {
    const ssize_t n = recv(fd_, p + got, size - got, 0);
    if (n > 0) {
      got += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    return Status::Internal("connection closed by server");
  }
  return Status::OK();
}

}  // namespace stems::server
