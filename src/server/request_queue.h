// RequestQueue: the bounded MPSC hand-off between the server's network
// thread (producer) and engine thread (consumer), extracted from server.h
// so the schedule-exploration harness (src/check/) can drive the real
// queue over every interleaving.
//
// Fairness: requests are segregated into per-tenant *lanes* (Request.lane,
// stamped by the network thread from the session's Hello-assigned lane id)
// and the consumer pops lanes round-robin, so a chatty tenant that keeps
// its own lane full cannot crowd another tenant out of the pump (the
// ROADMAP fairness item; regression-tested in test_request_queue.cc and
// test_server.cc). The capacity bound is *per lane* for the same reason —
// one tenant's backlog must never consume another's push budget.
//
// Control messages (disconnects, end-of-input, protocol errors) bypass
// the capacity bound — cleanup is never lost to backpressure — but NOT
// the ordering: they enter their session's lane so e.g. an end-of-input
// marker is consumed only after every frame queued before it (pipelined
// requests are still answered after a half-close).
//
// Ordering: FIFO within a lane. A session's lane can change exactly once
// (0 -> tenant lane, when the engine thread processes its Hello), so
// per-session FIFO additionally needs lane 0 to drain before any tenant
// lane — hence lane 0 has strict priority. That cannot starve tenants:
// lane 0 carries only pre-authentication frames, is capacity-bounded,
// and every session leaves it at its first processed Hello.
#pragma once

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <string>

#include "common/thread_annotations.h"
#include "server/wire.h"

namespace stems::server {

/// One unit of work handed from the network thread to the engine thread.
struct Request {
  enum class Kind { kFrame, kProtocolError, kEndOfInput, kDisconnect };
  Kind kind = Kind::kFrame;
  uint64_t session_id = 0;
  /// Fairness lane, assigned per tenant at Hello (0 = the shared
  /// pre-authentication lane).
  uint32_t lane = 0;
  wire::FrameType type = wire::FrameType::kError;
  std::string payload;  // frame payload, or the protocol-error message
};

class RequestQueue {
 public:
  /// `per_lane_capacity` bounds each tenant lane independently.
  explicit RequestQueue(size_t per_lane_capacity)
      : per_lane_capacity_(per_lane_capacity) {}
  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Moves `request` into its lane and returns true; when that lane is
  /// full, returns false and leaves `request` untouched so the caller can
  /// park and retry the intact frame.
  bool TryPush(Request&& request);

  /// Unbounded push (disconnect / end-of-input / protocol error): joins
  /// `request.lane` in FIFO order but ignores the capacity bound, so
  /// cleanup is never lost to backpressure.
  void PushControl(Request request);

  /// Pops the next request: the pre-auth lane 0 first (see file comment),
  /// then tenant lanes round-robin (one request per lane per turn,
  /// ascending lane id, wrapping). False on timeout with nothing to pop.
  bool PopWithTimeout(Request* request, std::chrono::milliseconds timeout);

  size_t size() const;
  /// Deepest the queue has ever been (backpressure observability).
  size_t high_water() const;
  void WakeAll();

 private:
  bool HasWorkLocked() const STEMS_REQUIRES(mu_) { return lane_total_ > 0; }
  /// Pops under the fairness policy; requires HasWorkLocked().
  Request PopLocked() STEMS_REQUIRES(mu_);
  void PushLocked(Request&& request) STEMS_REQUIRES(mu_);

  mutable Mutex mu_;
  CondVar cv_;
  /// Lane id -> pending requests; empty deques are erased, so iteration
  /// touches only lanes with queued work.
  std::map<uint32_t, std::deque<Request>> lanes_ STEMS_GUARDED_BY(mu_);
  size_t lane_total_ STEMS_GUARDED_BY(mu_) = 0;
  /// The tenant lane served last; the next round-robin pop starts
  /// strictly after it (lane 0 is outside the rotation).
  uint32_t rr_cursor_ STEMS_GUARDED_BY(mu_) = 0;
  const size_t per_lane_capacity_;
  size_t high_water_ STEMS_GUARDED_BY(mu_) = 0;
};

}  // namespace stems::server
