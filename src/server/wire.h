// Wire protocol of the stems server: length-prefixed binary frames.
//
// Every message on a connection is one frame: an 8-byte header (payload
// length, frame type, flags, reserved — all little-endian) followed by the
// payload. A session is strictly request/response: the client sends one
// request frame and the server answers with exactly one response frame, in
// order, so pipelined requests correlate by position. Error responses carry
// the engine's machine-readable StatusCode, the human message, a
// best-effort SQL source position (line:column, 0:0 when absent) and a
// retry-after hint for admission-control rejections.
//
//   Hello ->HelloOk      authenticate as a tenant, open the session
//   Prepare->PrepareOk   compile SQL once (params + output schema back)
//   Bind   ->BindOk      fill parameter placeholders into a portal
//   Submit ->SubmitOk    run a portal (admitted immediately or queued)
//   Fetch  ->Rows        stream up to max_rows results of a query
//   Cancel ->CancelOk    stop a query, drop its unread results
//   Stats  ->StatsOk     this tenant's rolled-up QueryStats counters
//   Metrics->MetricsOk   engine-wide metrics, Prometheus plaintext
//   Close  ->CloseOk     orderly session end
//
// Layout and an annotated example exchange: docs/server.md.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "types/value.h"

namespace stems::server::wire {

/// Protocol revision spoken by this tree. A server rejects a Hello whose
/// version it does not speak with kUnsupported.
constexpr uint32_t kProtocolVersion = 1;

/// Hard ceiling on one frame's payload. A header announcing more is a
/// protocol violation: the connection is poisoned (the stream cannot be
/// resynchronized) and must close after the error frame.
constexpr uint32_t kMaxFramePayload = 4u << 20;

/// Rows served per Fetch response are clamped to this, so one greedy
/// Fetch cannot monopolize the engine thread.
constexpr uint32_t kMaxRowsPerFetch = 4096;

/// Frame header: 8 bytes, little-endian.
///   [0..3] u32 payload length (bytes after the header)
///   [4]    u8  frame type (FrameType)
///   [5]    u8  flags    — must be 0 in version 1
///   [6..7] u16 reserved — must be 0 in version 1
constexpr size_t kHeaderBytes = 8;

enum class FrameType : uint8_t {
  // Client -> server.
  kHello = 0x01,
  kPrepare = 0x02,
  kBind = 0x03,
  kSubmit = 0x04,
  kFetch = 0x05,
  kCancel = 0x06,
  kStats = 0x07,
  kClose = 0x08,
  kMetrics = 0x09,
  // Server -> client.
  kHelloOk = 0x81,
  kPrepareOk = 0x82,
  kBindOk = 0x83,
  kSubmitOk = 0x84,
  kRows = 0x85,
  kCancelOk = 0x86,
  kStatsOk = 0x87,
  kCloseOk = 0x88,
  kMetricsOk = 0x89,
  kError = 0xFF,
};

const char* FrameTypeName(FrameType type);

struct FrameHeader {
  uint32_t payload_len = 0;
  FrameType type = FrameType::kError;
};

/// Decodes and validates the 8-byte header. kInvalidArgument on nonzero
/// flags/reserved bytes or a payload length above `max_payload` — both are
/// unrecoverable framing errors (close the connection after responding).
Status DecodeFrameHeader(const uint8_t* bytes, uint32_t max_payload,
                         FrameHeader* out);

/// Appends frames to `buffer` (client or server outbound stream).
std::string EncodeFrame(FrameType type, const std::string& payload);

/// Extracts one complete frame from the front of `buffer`, erasing the
/// consumed bytes. Returns false when the buffer does not yet hold a full
/// frame (no error) or when framing failed (`error` set — the caller must
/// close the connection).
bool TryExtractFrame(std::string* buffer, uint32_t max_payload,
                     FrameHeader* header, std::string* payload, Status* error);

// --- primitive serialization -------------------------------------------------

/// Little-endian append-only payload builder.
class Writer {
 public:
  void U8(uint8_t v) { buf_.push_back(static_cast<char>(v)); }
  void U16(uint16_t v);
  void U32(uint32_t v);
  void U64(uint64_t v);
  /// u32 byte length + raw bytes (may contain NULs).
  void Str(const std::string& s);
  /// u8 ValueType tag + type-dependent payload.
  void Val(const Value& v);

  const std::string& payload() const { return buf_; }
  /// The finished frame: header + payload.
  std::string Frame(FrameType type) const { return EncodeFrame(type, buf_); }

 private:
  std::string buf_;
};

/// Bounds-checked reader over one frame's payload. Every getter returns
/// false (and poisons the reader) on underrun or a malformed field; decode
/// functions turn that into a kInvalidArgument status naming the frame.
class Reader {
 public:
  explicit Reader(const std::string& payload) : data_(payload) {}

  bool U8(uint8_t* v);
  bool U16(uint16_t* v);
  bool U32(uint32_t* v);
  bool U64(uint64_t* v);
  bool Str(std::string* v);
  bool Val(Value* v);

  /// True when every payload byte was consumed (trailing garbage is a
  /// malformed frame).
  bool AtEnd() const { return ok_ && pos_ == data_.size(); }
  bool ok() const { return ok_; }

 private:
  bool Take(size_t n, const char** out);

  const std::string& data_;
  size_t pos_ = 0;
  bool ok_ = true;
};

// --- typed messages ----------------------------------------------------------

struct HelloRequest {
  uint32_t protocol_version = kProtocolVersion;
  std::string tenant;
  std::string token;
};

struct PrepareRequest {
  uint32_t stmt_id = 0;
  std::string sql;
};

struct BindRequest {
  uint32_t stmt_id = 0;
  uint32_t portal_id = 0;
  std::vector<Value> positional;
  std::vector<std::pair<std::string, Value>> named;
};

struct SubmitRequest {
  uint32_t portal_id = 0;
  /// RunOptions preset: "" (server default), "paper", "low_memory",
  /// "larger_than_memory", "multi_query".
  std::string preset;
};

struct FetchRequest {
  uint64_t query_id = 0;
  uint32_t max_rows = 1024;
};

struct CancelRequest {
  uint64_t query_id = 0;
};

struct HelloOk {
  uint64_t session_id = 0;
  std::string server_version;
};

struct PrepareOk {
  uint32_t stmt_id = 0;
  uint16_t num_params = 0;
  /// Output schema, SELECT-list order.
  std::vector<std::pair<std::string, ValueType>> columns;
};

struct BindOk {
  uint32_t portal_id = 0;
};

struct SubmitOk {
  uint64_t query_id = 0;
  /// False when the tenant was over quota and the submit was queued; the
  /// query admits automatically when capacity frees and Fetch starts
  /// returning rows then.
  bool admitted = true;
  /// Position in the tenant's admission queue when not admitted (1-based).
  uint32_t queue_position = 0;
};

struct RowsResponse {
  uint64_t query_id = 0;
  /// True once the stream is complete: every row was delivered and the
  /// query finished cleanly. A query that failed ends with an Error frame
  /// on the next Fetch instead (typed end-of-stream, never silent).
  bool done = false;
  std::vector<std::vector<Value>> rows;
};

struct CancelOk {
  uint64_t query_id = 0;
};

struct StatsOk {
  std::vector<std::pair<std::string, uint64_t>> counters;
};

struct MetricsOk {
  /// Prometheus-style plaintext exposition of the server's engine-wide
  /// metrics registry (obs::MetricsRegistry::ExpositionText plus the
  /// server.* gauges refreshed at serve time).
  std::string text;
};

struct ErrorResponse {
  StatusCode code = StatusCode::kInternal;
  std::string message;
  /// 1-based SQL source position when the error is a positioned SQL
  /// diagnostic; 0:0 otherwise.
  uint32_t sql_line = 0;
  uint32_t sql_column = 0;
  /// Admission-control hint: retry the Submit after this many
  /// milliseconds. 0 = no hint.
  uint32_t retry_after_ms = 0;
};

// Encoders produce the complete frame (header + payload). Encoders whose
// message carries a u16-counted collection return Result and reject
// oversized collections (> 65535 entries) instead of silently truncating
// the count — a truncated count would desynchronize from the values and
// fail decode as trailing garbage.
std::string Encode(const HelloRequest& m);
std::string Encode(const PrepareRequest& m);
Result<std::string> Encode(const BindRequest& m);
std::string Encode(const SubmitRequest& m);
std::string Encode(const FetchRequest& m);
std::string Encode(const CancelRequest& m);
std::string EncodeStatsRequest();
std::string EncodeCloseRequest();
std::string EncodeMetricsRequest();
std::string Encode(const HelloOk& m);
std::string Encode(const PrepareOk& m);
std::string Encode(const BindOk& m);
std::string Encode(const SubmitOk& m);
Result<std::string> Encode(const RowsResponse& m);
std::string Encode(const CancelOk& m);
std::string Encode(const StatsOk& m);
std::string Encode(const MetricsOk& m);
std::string EncodeCloseOk();
std::string Encode(const ErrorResponse& m);

// Decoders take one frame's payload. kInvalidArgument on any malformed,
// truncated or trailing-garbage payload, with a message naming the frame.
Status Decode(const std::string& payload, HelloRequest* out);
Status Decode(const std::string& payload, PrepareRequest* out);
Status Decode(const std::string& payload, BindRequest* out);
Status Decode(const std::string& payload, SubmitRequest* out);
Status Decode(const std::string& payload, FetchRequest* out);
Status Decode(const std::string& payload, CancelRequest* out);
Status Decode(const std::string& payload, HelloOk* out);
Status Decode(const std::string& payload, PrepareOk* out);
Status Decode(const std::string& payload, BindOk* out);
Status Decode(const std::string& payload, SubmitOk* out);
Status Decode(const std::string& payload, RowsResponse* out);
Status Decode(const std::string& payload, CancelOk* out);
Status Decode(const std::string& payload, StatsOk* out);
Status Decode(const std::string& payload, MetricsOk* out);
Status Decode(const std::string& payload, ErrorResponse* out);

/// Builds the error frame for `status`, extracting the trailing
/// "at <line>:<column>" position the SQL front-end embeds in its
/// diagnostics (docs/sql.md) into the structured fields.
ErrorResponse ErrorFromStatus(const Status& status, uint32_t retry_after_ms = 0);

/// The Status an ErrorResponse round-trips back to on the client.
Status StatusFromError(const ErrorResponse& error);

/// Best-effort scan for the last "at <line>:<column>" in a diagnostic
/// message. Returns false when the message carries no position.
bool ExtractSqlPosition(const std::string& message, uint32_t* line,
                        uint32_t* column);

}  // namespace stems::server::wire
