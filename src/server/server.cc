#include "server/server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/logging.h"

namespace stems::server {

namespace {

constexpr char kServerVersion[] = "stems-server/1";
constexpr int kPollTimeoutMs = 20;

void SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  fcntl(fd, F_SETFL, flags | O_NONBLOCK);
}

/// Maps a Submit frame's preset string onto RunOptions. "" keeps the
/// server's configured base options.
Result<RunOptions> OptionsForPreset(const RunOptions& base,
                                    const std::string& preset) {
  if (preset.empty()) return base;
  if (preset == "paper") return RunOptions::Paper();
  if (preset == "low_memory") return RunOptions::LowMemory();
  if (preset == "larger_than_memory") return RunOptions::LargerThanMemory();
  if (preset == "multi_query") return RunOptions::MultiQuery();
  if (preset == "threaded") return RunOptions::Threaded();
  return Status::InvalidArgument(
      "unknown RunOptions preset '" + preset +
      "' (expected one of: paper, low_memory, larger_than_memory, "
      "multi_query, threaded)");
}

}  // namespace

/// One running query of a session. Before admission it holds the bound
/// spec waiting in the tenant's queue; after admission, the live handle.
struct Server::QueryRec {
  std::string tenant;
  bool admitted = false;
  /// Governor slot + memory charge returned and stats rolled up.
  bool slot_released = false;
  QuerySpec spec;
  RunOptions options;
  /// Declared memory budget (entries); 0 charges the tenant default.
  size_t memory_charge = 0;
  QueryHandle handle;
  /// Spill I/Os already reported to the governor's accounting window.
  uint64_t last_spill_ios = 0;
  /// A deferred (queued) submit that failed at admission time; surfaced
  /// as the Error response of the next Fetch.
  Status submit_error;
};

/// One client connection. Socket-side fields belong to the network
/// thread, protocol state to the engine thread; the output buffer is the
/// shared hand-off (engine appends, network flushes).
struct Server::Session {
  uint64_t id = 0;
  int fd = -1;

  // --- network-thread-owned -------------------------------------------------
  std::string in_buffer;
  /// Set on an unrecoverable framing error: the byte stream cannot be
  /// resynchronized, so no further frames are parsed.
  bool reading_paused = false;
  /// The client half-closed its write side (orderly EOF). Frames already
  /// buffered are still parsed and answered before the session closes.
  bool eof_seen = false;
  /// The post-EOF end-of-input marker has been queued to the engine
  /// thread (exactly once, after every buffered frame).
  bool end_of_input_queued = false;
  /// A send() hit a hard error: the peer can never receive the remaining
  /// output, so the session closes instead of waiting for a flush.
  bool write_dead = false;
  /// A decoded frame the bounded request queue had no room for; retried
  /// before any further parsing (frames must stay ordered). The payload is
  /// read and written only by the network thread; the flag alone crosses
  /// threads (the engine thread reads it in Drained(), where a parked
  /// frame is still pending work).
  Request stalled_request;
  /// sync: flag-only cross-thread read; the engine thread never touches
  /// stalled_request itself (seq_cst default kept for simplicity).
  /// stems::Atomic for model-checking yield points (src/check/).
  Atomic<bool> has_stalled{false};

  /// sync: fairness lane, written once by the engine thread at Hello and
  /// read by the network thread when stamping requests (0 until then —
  /// the shared pre-auth lane).
  Atomic<uint32_t> lane{0};

  // --- shared output path ---------------------------------------------------
  Mutex out_mu;
  std::string out_buffer STEMS_GUARDED_BY(out_mu);
  size_t out_offset STEMS_GUARDED_BY(out_mu) = 0;
  bool close_after_flush STEMS_GUARDED_BY(out_mu) = false;

  /// sync: close/cleanup handshake bits between the net and engine
  /// threads; exchange() makes each transition exactly-once, and the
  /// seq_cst accesses order them against the surrounding socket state.
  Atomic<bool> fd_closed{false};
  Atomic<bool> engine_cleared{false};
  Atomic<bool> disconnect_queued{false};

  // --- engine-thread-owned --------------------------------------------------
  enum class State { kAwaitHello, kReady, kClosing };
  State state = State::kAwaitHello;
  std::string tenant;
  bool cleaned = false;
  std::unordered_map<uint32_t, PreparedQuery> prepared;
  std::unordered_map<uint32_t, QuerySpec> portals;
  std::map<uint64_t, QueryRec> queries;
};

// --- lifecycle ---------------------------------------------------------------

Server::Server(Engine* engine, ServerOptions options)
    : engine_(engine),
      options_(std::move(options)),
      queue_(std::max<size_t>(options_.request_queue_capacity, 1)) {}

Server::~Server() { Shutdown(); }

Status Server::Start() {
  if (started_) return Status::AlreadyExists("server already started");
  if (options_.max_frame_payload < 64 ||
      options_.max_frame_payload > wire::kMaxFramePayload) {
    return Status::InvalidArgument(
        "max_frame_payload must be in [64, " +
        std::to_string(wire::kMaxFramePayload) + "]");
  }
  STEMS_RETURN_NOT_OK(options_.run_options.Validate());
  for (const TenantConfig& cfg : options_.tenants) {
    STEMS_RETURN_NOT_OK(governor_.RegisterTenant(cfg.name, cfg.quota));
  }

  listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0) {
    return Status::Internal(std::string("socket(): ") + std::strerror(errno));
  }
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(options_.port);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const Status st =
        Status::Internal(std::string("bind(): ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  socklen_t len = sizeof(addr);
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  if (listen(listen_fd_, 128) != 0) {
    const Status st =
        Status::Internal(std::string("listen(): ") + std::strerror(errno));
    close(listen_fd_);
    listen_fd_ = -1;
    return st;
  }
  SetNonBlocking(listen_fd_);
  if (pipe(wake_pipe_) != 0) {
    close(listen_fd_);
    listen_fd_ = -1;
    return Status::Internal(std::string("pipe(): ") + std::strerror(errno));
  }
  SetNonBlocking(wake_pipe_[0]);
  SetNonBlocking(wake_pipe_[1]);

  shutdown_requested_ = false;
  stop_net_ = false;
  engine_thread_done_ = false;
  started_ = true;
  net_thread_ = std::thread([this] { NetThreadMain(); });
  engine_thread_ = std::thread([this] { EngineThreadMain(); });
  return Status::OK();
}

void Server::Shutdown() {
  if (!started_) return;
  shutdown_deadline_ = std::chrono::steady_clock::now() +
                       std::chrono::milliseconds(options_.shutdown_drain_ms);
  shutdown_requested_ = true;
  queue_.WakeAll();
  WakeNet();
  if (engine_thread_.joinable()) engine_thread_.join();
  stop_net_ = true;
  WakeNet();
  if (net_thread_.joinable()) net_thread_.join();
  if (wake_pipe_[0] >= 0) close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) close(wake_pipe_[1]);
  wake_pipe_[0] = wake_pipe_[1] = -1;
  {
    MutexLock lock(&sessions_mu_);
    sessions_.clear();
  }
  started_ = false;
}

size_t Server::active_sessions() const {
  MutexLock lock(&sessions_mu_);
  size_t n = 0;
  for (const auto& [id, session] : sessions_) {
    if (!session->fd_closed) ++n;
  }
  return n;
}

std::shared_ptr<Server::Session> Server::FindSession(
    uint64_t session_id) const {
  MutexLock lock(&sessions_mu_);
  auto it = sessions_.find(session_id);
  return it == sessions_.end() ? nullptr : it->second;
}

// --- network thread ----------------------------------------------------------

void Server::WakeNet() {
  if (wake_pipe_[1] < 0) return;
  const char byte = 1;
  // A full pipe already guarantees a pending wake-up.
  [[maybe_unused]] ssize_t n = write(wake_pipe_[1], &byte, 1);
}

void Server::AcceptNewSession() {
  while (true) {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN or transient error: try next tick
    SetNonBlocking(fd);
    const int one = 1;
    setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    auto session = std::make_shared<Session>();
    session->fd = fd;
    MutexLock lock(&sessions_mu_);
    if (sessions_.size() >= options_.max_sessions) {
      close(fd);
      return;
    }
    session->id = next_session_id_++;
    sessions_[session->id] = session;
  }
}

Server::ReadOutcome Server::ReadFromSession(
    const std::shared_ptr<Session>& session) {
  char buf[65536];
  while (true) {
    const ssize_t n = recv(session->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      session->in_buffer.append(buf, static_cast<size_t>(n));
      if (n < static_cast<ssize_t>(sizeof(buf))) break;
      continue;
    }
    if (n == 0) return ReadOutcome::kEof;  // orderly half-close
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    return ReadOutcome::kError;
  }
  return ReadOutcome::kOpen;
}

void Server::FlushSession(const std::shared_ptr<Session>& session) {
  MutexLock lock(&session->out_mu);
  while (session->out_offset < session->out_buffer.size()) {
    const ssize_t n =
        send(session->fd, session->out_buffer.data() + session->out_offset,
             session->out_buffer.size() - session->out_offset, MSG_NOSIGNAL);
    if (n > 0) {
      session->out_offset += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    // Hard write error: the peer can never receive this output. Mark the
    // session dead so the poll loop closes it (an EOF-draining session no
    // longer reads, so the failure would otherwise go unnoticed).
    session->write_dead = true;
    break;
  }
  if (session->out_offset == session->out_buffer.size()) {
    session->out_buffer.clear();
    session->out_offset = 0;
  }
}

void Server::CloseSessionFd(const std::shared_ptr<Session>& session) {
  if (session->fd_closed.exchange(true)) return;
  close(session->fd);
  if (!session->disconnect_queued.exchange(true)) {
    Request request;
    request.kind = Request::Kind::kDisconnect;
    request.session_id = session->id;
    request.lane = session->lane.load();
    queue_.PushControl(std::move(request));
  }
}

void Server::NetThreadMain() {
  while (!stop_net_) {
    std::vector<pollfd> fds;
    std::vector<std::shared_ptr<Session>> polled;
    fds.push_back({wake_pipe_[0], POLLIN, 0});
    bool accepting = false;
    {
      MutexLock lock(&sessions_mu_);
      accepting = !shutdown_requested_ &&
                  sessions_.size() < options_.max_sessions;
    }
    const size_t listen_idx = fds.size();
    if (accepting) fds.push_back({listen_fd_, POLLIN, 0});

    {
      MutexLock lock(&sessions_mu_);
      for (auto it = sessions_.begin(); it != sessions_.end();) {
        const std::shared_ptr<Session>& session = it->second;
        if (session->fd_closed) {
          // The engine thread has released this session's queries and
          // governor charges; the map entry is all that remains.
          if (session->engine_cleared) {
            it = sessions_.erase(it);
            continue;
          }
          ++it;
          continue;
        }
        short events = 0;
        if (!session->reading_paused && !session->eof_seen) events |= POLLIN;
        {
          MutexLock out_lock(&session->out_mu);
          if (session->out_offset < session->out_buffer.size()) {
            events |= POLLOUT;
          }
        }
        // Nothing to wait for (e.g. EOF seen, output drained): keep the
        // session in `polled` for its per-tick parse/close checks, but
        // hand poll(2) a negative fd so a HUP-ready socket cannot spin
        // the loop. fds and polled must stay index-aligned.
        fds.push_back({events != 0 ? session->fd : -1, events, 0});
        polled.push_back(session);
        ++it;
      }
    }

    poll(fds.data(), static_cast<nfds_t>(fds.size()), kPollTimeoutMs);

    if (fds[0].revents & POLLIN) {
      char drain[256];
      while (read(wake_pipe_[0], drain, sizeof(drain)) > 0) {
      }
    }
    if (accepting && (fds[listen_idx].revents & POLLIN)) AcceptNewSession();

    const size_t first_session = accepting ? listen_idx + 1 : listen_idx;
    for (size_t i = 0; i < polled.size(); ++i) {
      const std::shared_ptr<Session>& session = polled[i];
      const short revents = fds[first_session + i].revents;
      if (session->fd_closed) continue;
      if (revents & POLLOUT) {
        FlushSession(session);
        if (session->write_dead) {
          CloseSessionFd(session);
          continue;
        }
      }
      if (!session->eof_seen && (revents & (POLLIN | POLLHUP | POLLERR))) {
        const ReadOutcome outcome = ReadFromSession(session);
        if (outcome == ReadOutcome::kError) {
          CloseSessionFd(session);
          continue;
        }
        // Orderly EOF: the client may have pipelined requests and
        // half-closed before reading responses. Stop reading, but parse
        // and answer everything already buffered before closing.
        if (outcome == ReadOutcome::kEof) session->eof_seen = true;
      }
      ParseFrames(session);
      if (session->eof_seen && !session->has_stalled &&
          !session->end_of_input_queued) {
        // Every complete buffered frame is now queued; tell the engine
        // thread the input is done so it can answer them, clean up, and
        // close the session after the responses flush.
        session->end_of_input_queued = true;
        Request request;
        request.kind = Request::Kind::kEndOfInput;
        request.session_id = session->id;
        request.lane = session->lane.load();
        queue_.PushControl(std::move(request));
      }
      // Server-initiated close: everything flushed, nothing more to say.
      bool flushed = false;
      bool closing = false;
      {
        MutexLock out_lock(&session->out_mu);
        flushed = session->out_offset == session->out_buffer.size();
        closing = session->close_after_flush;
      }
      if (closing && flushed) CloseSessionFd(session);
    }
  }

  // Shutdown: one best-effort flush, then close everything.
  MutexLock lock(&sessions_mu_);
  for (auto& [id, session] : sessions_) {
    if (session->fd_closed) continue;
    FlushSession(session);
    session->fd_closed = true;
    close(session->fd);
  }
  if (listen_fd_ >= 0) {
    close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::ParseFrames(const std::shared_ptr<Session>& session) {
  while (!session->reading_paused) {
    if (session->has_stalled) {
      if (!queue_.TryPush(std::move(session->stalled_request))) return;
      session->has_stalled = false;
    }
    wire::FrameHeader header;
    std::string payload;
    Status error;
    if (!wire::TryExtractFrame(&session->in_buffer,
                               options_.max_frame_payload, &header, &payload,
                               &error)) {
      if (!error.ok()) {
        // The stream cannot be resynchronized: stop parsing and let the
        // engine thread answer with an error frame and close.
        session->reading_paused = true;
        Request request;
        request.kind = Request::Kind::kProtocolError;
        request.session_id = session->id;
        request.lane = session->lane.load();
        request.payload = error.message();
        queue_.PushControl(std::move(request));
      }
      return;
    }
    Request request;
    request.kind = Request::Kind::kFrame;
    request.session_id = session->id;
    request.lane = session->lane.load();
    request.type = header.type;
    request.payload = std::move(payload);
    if (!queue_.TryPush(std::move(request))) {
      // Bounded-queue backpressure: park the frame, retry next tick; the
      // unread socket bytes throttle the client.
      session->stalled_request = std::move(request);
      session->has_stalled = true;
      return;
    }
  }
}

// --- engine thread -----------------------------------------------------------

void Server::EngineThreadMain() {
  while (true) {
    engine_ticks_.fetch_add(1, std::memory_order_relaxed);
    // Only two things make progress with *time* rather than with a queued
    // request: the governor's admission window (queued submits can start
    // to fit as the spill-I/O window rolls over) and the shutdown drain
    // deadline. Poll at 20ms only while one of those is pending; otherwise
    // park on the queue's cv with a long bounded timeout so an idle server
    // burns ~0 CPU. Every producer (TryPush/PushControl/WakeAll) notifies
    // the cv, so new work still wakes the loop immediately.
    const bool timed_work = HasQueuedSubmits() || shutdown_requested_;
    const auto timeout = timed_work ? std::chrono::milliseconds(20)
                                    : std::chrono::milliseconds(250);
    Request request;
    if (queue_.PopWithTimeout(&request, timeout)) {
      ProcessRequest(request);
    }
    SweepCompletions();
    // Re-offer queued submits every tick, not only after a completion:
    // capacity can also free with time alone (the spill-I/O window rolls
    // over), and a tenant with no running queries would otherwise strand
    // its queue forever.
    if (HasQueuedSubmits()) AdmitQueuedSubmits();
    if (shutdown_requested_ &&
        (Drained() ||
         std::chrono::steady_clock::now() >= shutdown_deadline_)) {
      CancelAllQueries();
      break;
    }
  }
  engine_thread_done_ = true;
}

bool Server::Drained() const {
  if (queue_.size() != 0) return false;
  MutexLock lock(&sessions_mu_);
  for (const auto& [id, session] : sessions_) {
    // A frame parked under backpressure is pending work the queue cannot
    // see; the network thread re-offers it next tick, so keep draining.
    if (!session->fd_closed && session->has_stalled) return false;
    if (session->cleaned) continue;
    for (const auto& [qid, rec] : session->queries) {
      if (!rec.admitted && rec.submit_error.ok()) return false;  // queued
      if (rec.admitted && rec.handle.valid() && !rec.handle.done()) {
        return false;
      }
    }
  }
  return true;
}

void Server::CancelAllQueries() {
  std::vector<std::shared_ptr<Session>> all;
  {
    MutexLock lock(&sessions_mu_);
    for (auto& [id, session] : sessions_) all.push_back(session);
  }
  for (auto& session : all) {
    CleanupSessionState(session);
    session->engine_cleared = true;
  }
}

void Server::ProcessRequest(const Request& request) {
  std::shared_ptr<Session> session = FindSession(request.session_id);
  if (session == nullptr) return;
  switch (request.kind) {
    case Request::Kind::kDisconnect:
      CleanupSessionState(session);
      session->engine_cleared = true;
      return;
    case Request::Kind::kEndOfInput:
      // The client half-closed after pipelining: every frame it sent has
      // been answered above (queue order), and nothing more can arrive.
      // Tear down like an implicit Close — flush the buffered responses,
      // then let the network thread close the socket.
      CleanupSessionState(session);
      session->state = Session::State::kClosing;
      {
        MutexLock lock(&session->out_mu);
        session->close_after_flush = true;
      }
      WakeNet();
      return;
    case Request::Kind::kProtocolError:
      SendErrorAndClose(session, Status::InvalidArgument(request.payload));
      return;
    case Request::Kind::kFrame:
      if (session->state == Session::State::kClosing) return;
      ProcessFrame(session, request.type, request.payload);
      return;
  }
}

void Server::ProcessFrame(const std::shared_ptr<Session>& session,
                          wire::FrameType type, const std::string& payload) {
  using wire::FrameType;
  if (session->state == Session::State::kAwaitHello &&
      type != FrameType::kHello) {
    SendErrorAndClose(
        session,
        Status::InvalidArgument(std::string("out-of-order frame: ") +
                                wire::FrameTypeName(type) +
                                " before Hello (the session must "
                                "authenticate first)"));
    return;
  }
  switch (type) {
    case FrameType::kHello:
      if (session->state != Session::State::kAwaitHello) {
        SendErrorAndClose(session,
                          Status::InvalidArgument(
                              "out-of-order frame: duplicate Hello on an "
                              "authenticated session"));
        return;
      }
      HandleHello(session, payload);
      return;
    case FrameType::kPrepare:
      HandlePrepare(session, payload);
      return;
    case FrameType::kBind:
      HandleBind(session, payload);
      return;
    case FrameType::kSubmit:
      HandleSubmit(session, payload);
      return;
    case FrameType::kFetch:
      HandleFetch(session, payload);
      return;
    case FrameType::kCancel:
      HandleCancel(session, payload);
      return;
    case FrameType::kStats:
      HandleStats(session);
      return;
    case FrameType::kMetrics:
      HandleMetrics(session);
      return;
    case FrameType::kClose:
      CleanupSessionState(session);
      session->state = Session::State::kClosing;
      SendFrame(session, wire::EncodeCloseOk());
      {
        MutexLock lock(&session->out_mu);
        session->close_after_flush = true;
      }
      WakeNet();
      return;
    default:
      SendErrorAndClose(
          session,
          Status::InvalidArgument(
              "unknown frame type " +
              std::to_string(static_cast<unsigned>(type)) +
              " (a response type, or a type this server does not speak)"));
      return;
  }
}

void Server::HandleHello(const std::shared_ptr<Session>& session,
                         const std::string& payload) {
  wire::HelloRequest hello;
  Status st = wire::Decode(payload, &hello);
  if (!st.ok()) {
    SendErrorAndClose(session, st);
    return;
  }
  if (hello.protocol_version != wire::kProtocolVersion) {
    SendErrorAndClose(
        session, Status::Unsupported(
                     "protocol version " +
                     std::to_string(hello.protocol_version) +
                     " not supported (server speaks version " +
                     std::to_string(wire::kProtocolVersion) + ")"));
    return;
  }
  if (hello.tenant.empty()) {
    SendErrorAndClose(session,
                      Status::InvalidArgument("Hello: tenant must be named"));
    return;
  }
  if (options_.tenants.empty()) {
    // Open mode: first connection of a tenant registers it.
    if (!governor_.HasTenant(hello.tenant)) {
      (void)governor_.RegisterTenant(hello.tenant, TenantQuota{});
    }
  } else {
    const TenantConfig* config = nullptr;
    for (const TenantConfig& cfg : options_.tenants) {
      if (cfg.name == hello.tenant) {
        config = &cfg;
        break;
      }
    }
    if (config == nullptr) {
      SendErrorAndClose(session, Status::NotFound("unknown tenant '" +
                                                  hello.tenant + "'"));
      return;
    }
    if (!config->token.empty() && config->token != hello.token) {
      SendErrorAndClose(
          session, Status::InvalidArgument("authentication failed for "
                                           "tenant '" +
                                           hello.tenant + "'"));
      return;
    }
  }
  session->tenant = hello.tenant;
  session->state = Session::State::kReady;
  // Assign the tenant's fairness lane; every frame the network thread
  // parses after this store is stamped with it (frames already in flight
  // ride the shared pre-auth lane 0, which is harmless).
  uint32_t& lane = tenant_lanes_[hello.tenant];
  if (lane == 0) lane = next_lane_id_++;
  session->lane.store(lane);
  wire::HelloOk ok;
  ok.session_id = session->id;
  ok.server_version = kServerVersion;
  SendFrame(session, wire::Encode(ok));
}

void Server::HandlePrepare(const std::shared_ptr<Session>& session,
                           const std::string& payload) {
  wire::PrepareRequest request;
  Status st = wire::Decode(payload, &request);
  if (!st.ok()) {
    SendErrorAndClose(session, st);
    return;
  }
  Result<PreparedQuery> prepared = engine_->Prepare(request.sql);
  if (!prepared.ok()) {
    // SQL errors are the session's business, not a protocol violation:
    // the error frame carries the positioned diagnostic and the session
    // lives on.
    SendError(session, prepared.status());
    return;
  }
  const Schema& schema = prepared.Value().spec().output_schema();
  // The PrepareOk column list and every Rows frame carry u16 counts; a
  // statement wider than that can never stream back correctly.
  if (schema.columns().size() > 0xFFFF ||
      prepared.Value().params().size() > 0xFFFF) {
    SendError(session,
              Status::InvalidArgument(
                  "Prepare: statement exceeds wire limits (at most 65535 "
                  "output columns and 65535 parameters)"));
    return;
  }
  wire::PrepareOk ok;
  ok.stmt_id = request.stmt_id;
  ok.num_params = static_cast<uint16_t>(prepared.Value().params().size());
  for (const ColumnDef& col : schema.columns()) {
    ok.columns.emplace_back(col.name, col.type);
  }
  session->prepared[request.stmt_id] = std::move(prepared).Value();
  SendFrame(session, wire::Encode(ok));
}

void Server::HandleBind(const std::shared_ptr<Session>& session,
                        const std::string& payload) {
  wire::BindRequest request;
  Status st = wire::Decode(payload, &request);
  if (!st.ok()) {
    SendErrorAndClose(session, st);
    return;
  }
  auto it = session->prepared.find(request.stmt_id);
  if (it == session->prepared.end()) {
    SendError(session,
              Status::NotFound("Bind: unknown statement id " +
                               std::to_string(request.stmt_id) +
                               " (Prepare it first)"));
    return;
  }
  sql::SqlParams params;
  for (const Value& v : request.positional) params.Add(v);
  for (const auto& [name, v] : request.named) params.Set(name, v);
  BoundQuery bound = it->second.Bind(params);
  if (!bound.status().ok()) {
    SendError(session, bound.status());
    return;
  }
  session->portals[request.portal_id] = bound.spec();
  wire::BindOk ok;
  ok.portal_id = request.portal_id;
  SendFrame(session, wire::Encode(ok));
}

Status Server::StartQuery(const std::shared_ptr<Session>& session,
                          QueryRec* rec) {
  Result<QueryHandle> result = engine_->Submit(rec->spec, rec->options);
  if (!result.ok()) return result.status();
  rec->handle = std::move(result).Value();
  rec->admitted = true;
  if (options_.post_submit_hook) {
    options_.post_submit_hook(session->tenant, rec->handle);
  }
  return Status::OK();
}

void Server::HandleSubmit(const std::shared_ptr<Session>& session,
                          const std::string& payload) {
  wire::SubmitRequest request;
  Status st = wire::Decode(payload, &request);
  if (!st.ok()) {
    SendErrorAndClose(session, st);
    return;
  }
  auto portal = session->portals.find(request.portal_id);
  if (portal == session->portals.end()) {
    SendError(session,
              Status::NotFound("Submit: unknown portal id " +
                               std::to_string(request.portal_id) +
                               " (Bind it first)"));
    return;
  }
  Result<RunOptions> options =
      OptionsForPreset(options_.run_options, request.preset);
  if (!options.ok()) {
    SendError(session, options.status());
    return;
  }

  QueryRec rec;
  rec.tenant = session->tenant;
  rec.spec = portal->second;
  rec.options = std::move(options).Value();
  rec.memory_charge = rec.options.memory_budget_entries;

  const AdmissionDecision decision =
      governor_.OnSubmit(session->tenant, rec.memory_charge);
  {
    // Cross-tenant admission outcomes, one counter per verdict: the feed
    // behind the stems_server_submits_* exposition series.
    obs::MetricsRegistry& registry = engine_->metrics_registry();
    const char* name =
        decision.outcome == AdmissionOutcome::kAdmit ? "server.submits_admitted"
        : decision.outcome == AdmissionOutcome::kQueue
            ? "server.submits_queued"
            : "server.submits_rejected";
    registry.GetCounter(name)->Add(1);
  }
  if (decision.outcome == AdmissionOutcome::kReject) {
    SendError(session, decision.status, decision.retry_after_ms);
    return;
  }
  const uint64_t query_id = next_query_id_++;
  if (decision.outcome == AdmissionOutcome::kAdmit) {
    Status start = StartQuery(session, &rec);
    if (!start.ok()) {
      governor_.OnQueryFinished(session->tenant, rec.memory_charge,
                                QueryStats{}, start);
      SendError(session, start);
      return;
    }
    session->queries.emplace(query_id, std::move(rec));
    wire::SubmitOk ok;
    ok.query_id = query_id;
    ok.admitted = true;
    SendFrame(session, wire::Encode(ok));
    return;
  }
  // Queued: the spec waits in the tenant's admission queue; Fetch serves
  // rows once capacity frees.
  session->queries.emplace(query_id, std::move(rec));
  auto& queue = pending_submits_[session->tenant];
  queue.emplace_back(session->id, query_id);
  wire::SubmitOk ok;
  ok.query_id = query_id;
  ok.admitted = false;
  ok.queue_position = static_cast<uint32_t>(queue.size());
  SendFrame(session, wire::Encode(ok));
}

void Server::HandleFetch(const std::shared_ptr<Session>& session,
                         const std::string& payload) {
  wire::FetchRequest request;
  Status st = wire::Decode(payload, &request);
  if (!st.ok()) {
    SendErrorAndClose(session, st);
    return;
  }
  auto it = session->queries.find(request.query_id);
  if (it == session->queries.end()) {
    SendError(session,
              Status::NotFound("Fetch: unknown query id " +
                               std::to_string(request.query_id) +
                               " (never submitted, already drained, or "
                               "cancelled)"));
    return;
  }
  QueryRec& rec = it->second;
  if (!rec.admitted) {
    if (!rec.submit_error.ok()) {
      // The deferred submit failed when its turn came; typed error, then
      // the query id is gone.
      SendError(session, rec.submit_error);
      session->queries.erase(it);
      return;
    }
    // Still waiting in the admission queue: an empty, not-done response.
    wire::RowsResponse rows;
    rows.query_id = request.query_id;
    SendRows(session, rows);
    return;
  }

  // Wall time serving this admitted Fetch (cursor pumping dominates),
  // observed on every exit path below. Queued-submit polls above are
  // excluded — they would drown the histogram in empty round trips.
  struct FetchTimer {
    obs::Histogram* hist;
    std::chrono::steady_clock::time_point start =
        std::chrono::steady_clock::now();
    ~FetchTimer() {
      hist->Observe(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - start)
              .count()));
    }
  } fetch_timer{engine_->metrics_registry().GetHistogram("server.fetch_us")};

  const uint32_t max_rows =
      std::clamp<uint32_t>(request.max_rows, 1, wire::kMaxRowsPerFetch);
  wire::RowsResponse response;
  response.query_id = request.query_id;
  ResultCursor cursor = rec.handle.cursor();
  bool end_of_stream = false;
  while (response.rows.size() < max_rows) {
    std::optional<RowView> row = cursor.NextRow();
    if (!row.has_value()) {
      end_of_stream = true;
      break;
    }
    std::vector<Value> values;
    const size_t n = row->num_columns();
    values.reserve(n);
    for (size_t i = 0; i < n; ++i) values.push_back(row->value(i));
    response.rows.push_back(std::move(values));
  }
  // Live spill-I/O accounting for the tenant's window budget.
  const uint64_t total_ios = cursor.spill_ios();
  if (total_ios > rec.last_spill_ios) {
    governor_.OnSpillProgress(rec.tenant, total_ios - rec.last_spill_ios);
    rec.last_spill_ios = total_ios;
  }

  if (end_of_stream && rec.handle.done()) {
    ReleaseSlot(session, &rec);
    const Status& error = rec.handle.status();
    if (!error.ok() && response.rows.empty()) {
      // Typed end-of-stream: the failure travels as an error frame, never
      // as a silent done-bit.
      SendError(session, error);
      session->queries.erase(it);
      AdmitQueuedSubmits();
      return;
    }
    if (error.ok()) {
      response.done = true;
      SendRows(session, response);
      session->queries.erase(it);
      AdmitQueuedSubmits();
      return;
    }
    // Rows collected this round travel first; the error frame ends the
    // stream on the next Fetch.
    SendRows(session, response);
    AdmitQueuedSubmits();
    return;
  }
  SendRows(session, response);
}

void Server::HandleCancel(const std::shared_ptr<Session>& session,
                          const std::string& payload) {
  wire::CancelRequest request;
  Status st = wire::Decode(payload, &request);
  if (!st.ok()) {
    SendErrorAndClose(session, st);
    return;
  }
  auto it = session->queries.find(request.query_id);
  if (it == session->queries.end()) {
    SendError(session, Status::NotFound("Cancel: unknown query id " +
                                        std::to_string(request.query_id)));
    return;
  }
  QueryRec& rec = it->second;
  if (!rec.admitted && rec.submit_error.ok()) {
    // Still queued: drop it from the tenant's admission queue.
    auto& queue = pending_submits_[rec.tenant];
    for (auto qit = queue.begin(); qit != queue.end(); ++qit) {
      if (qit->first == session->id && qit->second == request.query_id) {
        queue.erase(qit);
        break;
      }
    }
    governor_.DropQueued(rec.tenant);
  } else if (rec.admitted && !rec.slot_released) {
    rec.handle.Cancel();
    ReleaseSlot(session, &rec);
  }
  session->queries.erase(it);
  wire::CancelOk ok;
  ok.query_id = request.query_id;
  SendFrame(session, wire::Encode(ok));
  AdmitQueuedSubmits();
}

void Server::HandleStats(const std::shared_ptr<Session>& session) {
  wire::StatsOk ok;
  ok.counters = governor_.Rollup(session->tenant).Counters();
  // Server-level health rides along with the tenant's rollup, so one Stats
  // frame answers both "how is my workload doing" and "is the server
  // keeping up".
  ok.counters.emplace_back("server.engine_ticks", engine_ticks());
  ok.counters.emplace_back("server.request_queue_high_water",
                           queue_.high_water());
  SendFrame(session, wire::Encode(ok));
}

std::string Server::MetricsText() {
  obs::MetricsRegistry& registry = engine_->metrics_registry();
  registry.GetGauge("server.sessions_active")
      ->Set(static_cast<int64_t>(active_sessions()));
  registry.GetGauge("server.engine_ticks")
      ->Set(static_cast<int64_t>(engine_ticks()));
  registry.GetGauge("server.request_queue_depth")
      ->Set(static_cast<int64_t>(queue_.size()));
  registry.GetGauge("server.request_queue_high_water")
      ->Set(static_cast<int64_t>(queue_.high_water()));
  return registry.ExpositionText();
}

void Server::HandleMetrics(const std::shared_ptr<Session>& session) {
  wire::MetricsOk ok;
  ok.text = MetricsText();
  SendFrame(session, wire::Encode(ok));
}

void Server::ReleaseSlot(const std::shared_ptr<Session>& session,
                         QueryRec* rec) {
  (void)session;
  if (rec->slot_released) return;
  rec->slot_released = true;
  QueryStats stats;
  Status error;
  if (rec->handle.valid()) {
    stats = rec->handle.Stats();
    error = rec->handle.status();
    // Final spill delta (completions between fetches).
    if (stats.spill_ios > rec->last_spill_ios) {
      governor_.OnSpillProgress(rec->tenant,
                                stats.spill_ios - rec->last_spill_ios);
      rec->last_spill_ios = stats.spill_ios;
    }
    MaybeLogSlowQuery(*rec);
  }
  governor_.OnQueryFinished(rec->tenant, rec->memory_charge, stats, error);
}

void Server::MaybeLogSlowQuery(const QueryRec& rec) {
  if (options_.slow_query_ms == 0 || !rec.handle.valid()) return;
  const obs::QueryProfile profile = rec.handle.Profile();
  const uint64_t wall_ms = profile.wall_us / 1000;
  if (wall_ms < options_.slow_query_ms) return;
  engine_->metrics_registry().GetCounter("server.slow_queries")->Add(1);
  std::string line =
      "slow query: tenant=" + rec.tenant + " wall_ms=" +
      std::to_string(wall_ms) + " threshold_ms=" +
      std::to_string(options_.slow_query_ms) + " executor=" +
      profile.executor + " policy=" + profile.policy + " results=" +
      std::to_string(profile.num_results) + " tuples_routed=" +
      std::to_string(profile.tuples_routed) + " spill_ios=" +
      std::to_string(profile.spill_ios) + " bytes_spilled=" +
      std::to_string(profile.bytes_spilled) + " modules=" +
      std::to_string(profile.modules.size());
  if (options_.slow_query_log) {
    options_.slow_query_log(line);
  } else {
    STEMS_LOG(Warning) << line;
  }
}

void Server::SweepCompletions() {
  std::vector<std::shared_ptr<Session>> all;
  {
    MutexLock lock(&sessions_mu_);
    for (auto& [id, session] : sessions_) all.push_back(session);
  }
  for (auto& session : all) {
    if (session->cleaned) continue;
    for (auto& [qid, rec] : session->queries) {
      if (rec.admitted && !rec.slot_released && rec.handle.done()) {
        // The query finished while some other session's Fetch pumped the
        // shared clock; its slot frees now, its buffered rows stay until
        // the owner drains them. The engine loop re-offers queued submits
        // right after this sweep.
        ReleaseSlot(session, &rec);
      }
    }
  }
}

bool Server::HasQueuedSubmits() const {
  for (const auto& [tenant, queue] : pending_submits_) {
    if (!queue.empty()) return true;
  }
  return false;
}

void Server::AdmitQueuedSubmits() {
  for (auto& [tenant, queue] : pending_submits_) {
    while (!queue.empty()) {
      const auto [session_id, query_id] = queue.front();
      std::shared_ptr<Session> session = FindSession(session_id);
      if (session == nullptr || session->cleaned) {
        // CleanupSessionState already settled the governor charge.
        queue.pop_front();
        continue;
      }
      auto it = session->queries.find(query_id);
      if (it == session->queries.end()) {
        queue.pop_front();
        continue;
      }
      QueryRec& rec = it->second;
      if (!governor_.TryAdmitQueued(tenant, rec.memory_charge)) break;
      queue.pop_front();
      Status start = StartQuery(session, &rec);
      if (!start.ok()) {
        // Slot charged by TryAdmitQueued; settle it and surface the error
        // on the owner's next Fetch.
        governor_.OnQueryFinished(tenant, rec.memory_charge, QueryStats{},
                                  start);
        rec.submit_error = start;
        rec.slot_released = true;
      }
    }
  }
}

void Server::CleanupSessionState(const std::shared_ptr<Session>& session) {
  if (session->cleaned) return;
  session->cleaned = true;
  for (auto& [qid, rec] : session->queries) {
    if (rec.admitted && !rec.slot_released) {
      rec.handle.Cancel();
      ReleaseSlot(session, &rec);
    } else if (!rec.admitted && rec.submit_error.ok()) {
      auto pending = pending_submits_.find(rec.tenant);
      if (pending != pending_submits_.end()) {
        auto& queue = pending->second;
        for (auto it = queue.begin(); it != queue.end(); ++it) {
          if (it->first == session->id && it->second == qid) {
            queue.erase(it);
            break;
          }
        }
      }
      governor_.DropQueued(rec.tenant);
    }
  }
  session->queries.clear();
  session->portals.clear();
  session->prepared.clear();
  AdmitQueuedSubmits();
}

void Server::SendRows(const std::shared_ptr<Session>& session,
                      const wire::RowsResponse& response) {
  Result<std::string> frame = wire::Encode(response);
  if (!frame.ok()) {
    // A row too wide for the wire format (defense in depth; Prepare
    // already rejects over-wide schemas): typed error, not a bad frame.
    SendError(session, frame.status());
    return;
  }
  SendFrame(session, std::move(frame).Value());
}

void Server::SendFrame(const std::shared_ptr<Session>& session,
                       std::string frame) {
  {
    MutexLock lock(&session->out_mu);
    if (session->fd_closed) return;  // client already gone; drop quietly
    session->out_buffer.append(frame);
  }
  WakeNet();
}

void Server::SendError(const std::shared_ptr<Session>& session,
                       const Status& status, uint32_t retry_after_ms) {
  SendFrame(session,
            wire::Encode(wire::ErrorFromStatus(status, retry_after_ms)));
}

void Server::SendErrorAndClose(const std::shared_ptr<Session>& session,
                               const Status& status) {
  SendError(session, status);
  CleanupSessionState(session);
  session->state = Session::State::kClosing;
  {
    MutexLock lock(&session->out_mu);
    session->close_after_flush = true;
  }
  WakeNet();
}

}  // namespace stems::server
