// TenantGovernor: per-tenant admission control for the shared engine.
//
// Every server session authenticates as a tenant; the governor decides,
// per Submit, whether the tenant may start another query *now* (admit),
// must wait for capacity (queue) or is hard-over quota (reject with a
// retry-after hint). Three budgets, all fed by accounting the engine
// already keeps:
//
//   * concurrent queries — a simple slot count;
//   * memory             — the sum of the *declared* MemoryGovernor entry
//                          budgets (RunOptions::memory_budget_entries) of
//                          the tenant's running queries; an undeclared
//                          query charges the quota's default estimate;
//   * spill I/O          — simulated disk I/Os (QueryStats::spill_ios /
//                          ResultCursor::spill_ios) accumulated over a
//                          sliding accounting window, so one tenant's
//                          spill-heavy queries cannot monopolize the
//                          (shared) buffer pool and run files.
//
// The governor also rolls every finished query's QueryStats up into a
// per-tenant TenantRollup, the observability surface the Stats wire frame
// serves. Admission decisions and rollups are pure bookkeeping: the
// *server* owns the queue of deferred submits and re-offers them through
// TryAdmitQueued when a running query finishes.
//
// Thread-safety: fully locked — the engine thread drives admissions while
// tests and operators read rollups concurrently.
#pragma once

#include <chrono>
#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "engine/engine.h"

namespace stems::server {

/// Per-tenant budgets. Zero-valued limits mean "unlimited" except
/// max_concurrent_queries, which must be >= 1.
struct TenantQuota {
  /// Queries of this tenant allowed to run at once; further submits queue.
  size_t max_concurrent_queries = 4;
  /// Deferred submits the tenant may have waiting; past this, Submit is
  /// rejected outright with a retry-after hint.
  size_t max_queued_submits = 16;
  /// Ceiling on the summed declared memory budgets (entries) of the
  /// tenant's running queries. 0 = unlimited.
  size_t max_memory_entries = 0;
  /// Memory charge (entries) for a query that declares no budget; only
  /// consulted when max_memory_entries > 0.
  size_t default_query_memory_entries = 256;
  /// Spill I/Os the tenant may consume per accounting window. 0 =
  /// unlimited.
  uint64_t spill_io_window_budget = 0;
  /// Length of the spill-I/O accounting window.
  uint32_t spill_window_ms = 1000;
  /// Retry-after hint attached to queue-full rejections.
  uint32_t reject_retry_after_ms = 100;
};

/// Cumulative per-tenant accounting: admission counters plus the rollup of
/// every finished query's QueryStats.
struct TenantRollup {
  uint64_t queries_submitted = 0;
  uint64_t queries_admitted = 0;
  uint64_t queries_queued = 0;
  uint64_t queries_rejected = 0;
  uint64_t queries_completed = 0;
  uint64_t queries_cancelled = 0;
  uint64_t queries_failed = 0;
  // Summed QueryStats of finished queries.
  uint64_t num_results = 0;
  uint64_t tuples_routed = 0;
  uint64_t tuples_retired = 0;
  uint64_t spill_ios = 0;
  uint64_t bytes_spilled = 0;
  uint64_t builds_avoided = 0;
  // Live state (running right now).
  uint64_t running_queries = 0;
  uint64_t queued_queries = 0;
  uint64_t memory_entries_in_use = 0;
  // Admission-queue observability.
  /// Most deferred submits this tenant ever had waiting at once.
  uint64_t queue_high_water = 0;
  /// Total wall-clock milliseconds deferred submits spent waiting in the
  /// admission queue before being admitted (or dropped/cancelled).
  uint64_t queued_time_ms = 0;

  /// The rollup as ordered (name, value) counters — the Stats wire frame's
  /// payload.
  std::vector<std::pair<std::string, uint64_t>> Counters() const;
};

enum class AdmissionOutcome { kAdmit, kQueue, kReject };

struct AdmissionDecision {
  AdmissionOutcome outcome = AdmissionOutcome::kAdmit;
  /// Non-OK exactly for kReject (kResourceExhausted with the quota named).
  Status status;
  /// Retry-after hint for kReject; also set on kQueue as an estimate of
  /// when capacity may free.
  uint32_t retry_after_ms = 0;
};

class TenantGovernor {
 public:
  /// Injectable clock for the spill-I/O window (tests pin it).
  using Clock = std::chrono::steady_clock;

  Status RegisterTenant(const std::string& name, TenantQuota quota);
  bool HasTenant(const std::string& name) const;
  /// Registered tenant names, registration order.
  std::vector<std::string> TenantNames() const;

  /// Admission check for a Submit that would charge `memory_entries`
  /// (0 = use the quota's default estimate). kAdmit charges the slot and
  /// memory immediately; kQueue charges the queue slot; kReject charges
  /// nothing. Unknown tenants are rejected (kNotFound).
  AdmissionDecision OnSubmit(const std::string& tenant, size_t memory_entries);

  /// Re-offers the head of the tenant's deferred queue: when capacity
  /// allows, converts one queued charge into a running charge and returns
  /// true. The server pops its pending submit and starts it iff this
  /// returns true.
  bool TryAdmitQueued(const std::string& tenant, size_t memory_entries);

  /// Drops one queued charge without admitting (session died while its
  /// submit waited).
  void DropQueued(const std::string& tenant);

  /// Releases a running query's slot + memory charge and rolls its final
  /// QueryStats into the tenant rollup. `error` is the query's terminal
  /// status (kOk for clean completion).
  void OnQueryFinished(const std::string& tenant, size_t memory_entries,
                       const QueryStats& stats, const Status& error);

  /// Feeds live spill-I/O progress (delta since the last report) into the
  /// tenant's accounting window while a query is still running.
  void OnSpillProgress(const std::string& tenant, uint64_t spill_io_delta);

  /// Snapshot of the tenant's rollup (zero-valued for unknown tenants).
  TenantRollup Rollup(const std::string& tenant) const;

  /// The memory charge a query with the given declared budget costs this
  /// tenant (applies the default estimate; 0 for unknown tenants).
  size_t MemoryCharge(const std::string& tenant,
                      size_t declared_entries) const;

 private:
  struct TenantState {
    TenantQuota quota;
    TenantRollup rollup;
    // Spill-I/O accounting window.
    Clock::time_point window_start{};
    uint64_t window_spill_ios = 0;
    bool window_open = false;
    /// Enqueue times of the deferred submits, admission (FIFO) order —
    /// mirrors the server's pending-submit deque, which admits and drops
    /// from the front.
    std::deque<Clock::time_point> queued_since;
  };

  /// Pops the oldest enqueue timestamp and adds its elapsed wait to
  /// rollup.queued_time_ms.
  void SettleQueuedTime(TenantState* state) STEMS_REQUIRES(mu_);
  /// Rolls the window forward and returns the I/Os consumed in the
  /// current window.
  uint64_t WindowSpillIos(TenantState* state, Clock::time_point now) const
      STEMS_REQUIRES(mu_);
  /// Capacity check shared by OnSubmit and TryAdmitQueued. Returns
  /// kAdmit/kQueue (never kReject) with retry hints set.
  AdmissionOutcome CheckCapacity(TenantState* state, size_t memory_entries,
                                 uint32_t* retry_after_ms)
      STEMS_REQUIRES(mu_);

  mutable Mutex mu_;
  std::unordered_map<std::string, TenantState> tenants_ STEMS_GUARDED_BY(mu_);
  std::vector<std::string> tenant_order_ STEMS_GUARDED_BY(mu_);
};

}  // namespace stems::server
