#include "server/wire.h"

#include <cstring>

namespace stems::server::wire {

namespace {

/// Shared tail of every decoder: reader healthy and payload fully consumed.
Status FinishDecode(const Reader& reader, const char* frame) {
  if (!reader.ok()) {
    return Status::InvalidArgument(std::string("malformed ") + frame +
                                   " frame: truncated payload");
  }
  if (!reader.AtEnd()) {
    return Status::InvalidArgument(std::string("malformed ") + frame +
                                   " frame: trailing bytes after payload");
  }
  return Status::OK();
}

void PutU16(std::string* buf, uint16_t v) {
  buf->push_back(static_cast<char>(v & 0xFF));
  buf->push_back(static_cast<char>((v >> 8) & 0xFF));
}

void PutU32(std::string* buf, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    buf->push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
  }
}

}  // namespace

const char* FrameTypeName(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "Hello";
    case FrameType::kPrepare: return "Prepare";
    case FrameType::kBind: return "Bind";
    case FrameType::kSubmit: return "Submit";
    case FrameType::kFetch: return "Fetch";
    case FrameType::kCancel: return "Cancel";
    case FrameType::kStats: return "Stats";
    case FrameType::kClose: return "Close";
    case FrameType::kMetrics: return "Metrics";
    case FrameType::kHelloOk: return "HelloOk";
    case FrameType::kPrepareOk: return "PrepareOk";
    case FrameType::kBindOk: return "BindOk";
    case FrameType::kSubmitOk: return "SubmitOk";
    case FrameType::kRows: return "Rows";
    case FrameType::kCancelOk: return "CancelOk";
    case FrameType::kStatsOk: return "StatsOk";
    case FrameType::kCloseOk: return "CloseOk";
    case FrameType::kMetricsOk: return "MetricsOk";
    case FrameType::kError: return "Error";
  }
  return "Unknown";
}

Status DecodeFrameHeader(const uint8_t* bytes, uint32_t max_payload,
                         FrameHeader* out) {
  uint32_t len = 0;
  for (int i = 0; i < 4; ++i) len |= static_cast<uint32_t>(bytes[i]) << (8 * i);
  const uint8_t type = bytes[4];
  const uint8_t flags = bytes[5];
  const uint16_t reserved =
      static_cast<uint16_t>(bytes[6] | (static_cast<uint16_t>(bytes[7]) << 8));
  if (flags != 0 || reserved != 0) {
    return Status::InvalidArgument(
        "malformed frame header: nonzero flags/reserved bytes (protocol "
        "version 1 requires them zero)");
  }
  if (len > max_payload) {
    return Status::InvalidArgument(
        "oversized frame: payload of " + std::to_string(len) +
        " bytes exceeds the limit of " + std::to_string(max_payload));
  }
  out->payload_len = len;
  out->type = static_cast<FrameType>(type);
  return Status::OK();
}

std::string EncodeFrame(FrameType type, const std::string& payload) {
  std::string frame;
  frame.reserve(kHeaderBytes + payload.size());
  PutU32(&frame, static_cast<uint32_t>(payload.size()));
  frame.push_back(static_cast<char>(type));
  frame.push_back(0);  // flags
  PutU16(&frame, 0);   // reserved
  frame.append(payload);
  return frame;
}

bool TryExtractFrame(std::string* buffer, uint32_t max_payload,
                     FrameHeader* header, std::string* payload, Status* error) {
  *error = Status::OK();
  if (buffer->size() < kHeaderBytes) return false;
  Status st = DecodeFrameHeader(
      reinterpret_cast<const uint8_t*>(buffer->data()), max_payload, header);
  if (!st.ok()) {
    *error = st;
    return false;
  }
  const size_t total = kHeaderBytes + header->payload_len;
  if (buffer->size() < total) return false;
  payload->assign(*buffer, kHeaderBytes, header->payload_len);
  buffer->erase(0, total);
  return true;
}

// --- Writer ------------------------------------------------------------------

void Writer::U16(uint16_t v) { PutU16(&buf_, v); }

void Writer::U32(uint32_t v) { PutU32(&buf_, v); }

void Writer::U64(uint64_t v) {
  U32(static_cast<uint32_t>(v & 0xFFFFFFFFu));
  U32(static_cast<uint32_t>(v >> 32));
}

void Writer::Str(const std::string& s) {
  U32(static_cast<uint32_t>(s.size()));
  buf_.append(s);
}

void Writer::Val(const Value& v) {
  U8(static_cast<uint8_t>(v.type()));
  switch (v.type()) {
    case ValueType::kNull:
    case ValueType::kEot:
      break;
    case ValueType::kInt64:
      U64(static_cast<uint64_t>(v.AsInt64()));
      break;
    case ValueType::kDouble: {
      uint64_t bits = 0;
      const double d = v.AsDouble();
      std::memcpy(&bits, &d, sizeof(bits));
      U64(bits);
      break;
    }
    case ValueType::kString:
      Str(v.AsString());
      break;
  }
}

// --- Reader ------------------------------------------------------------------

bool Reader::Take(size_t n, const char** out) {
  if (!ok_ || data_.size() - pos_ < n) {
    ok_ = false;
    return false;
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return true;
}

bool Reader::U8(uint8_t* v) {
  const char* p = nullptr;
  if (!Take(1, &p)) return false;
  *v = static_cast<uint8_t>(*p);
  return true;
}

bool Reader::U16(uint16_t* v) {
  const char* p = nullptr;
  if (!Take(2, &p)) return false;
  *v = static_cast<uint16_t>(static_cast<uint8_t>(p[0]) |
                             (static_cast<uint16_t>(static_cast<uint8_t>(p[1]))
                              << 8));
  return true;
}

bool Reader::U32(uint32_t* v) {
  const char* p = nullptr;
  if (!Take(4, &p)) return false;
  uint32_t out = 0;
  for (int i = 0; i < 4; ++i) {
    out |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *v = out;
  return true;
}

bool Reader::U64(uint64_t* v) {
  uint32_t lo = 0, hi = 0;
  if (!U32(&lo) || !U32(&hi)) return false;
  *v = static_cast<uint64_t>(lo) | (static_cast<uint64_t>(hi) << 32);
  return true;
}

bool Reader::Str(std::string* v) {
  uint32_t len = 0;
  if (!U32(&len)) return false;
  const char* p = nullptr;
  if (!Take(len, &p)) return false;
  v->assign(p, len);
  return true;
}

bool Reader::Val(Value* v) {
  uint8_t tag = 0;
  if (!U8(&tag)) return false;
  if (tag > static_cast<uint8_t>(ValueType::kEot)) {
    ok_ = false;  // unknown value tag: malformed, not forward-compatible
    return false;
  }
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      *v = Value::Null();
      return true;
    case ValueType::kEot:
      *v = Value::Eot();
      return true;
    case ValueType::kInt64: {
      uint64_t bits = 0;
      if (!U64(&bits)) return false;
      *v = Value::Int64(static_cast<int64_t>(bits));
      return true;
    }
    case ValueType::kDouble: {
      uint64_t bits = 0;
      if (!U64(&bits)) return false;
      double d = 0;
      std::memcpy(&d, &bits, sizeof(d));
      *v = Value::Double(d);
      return true;
    }
    case ValueType::kString: {
      std::string s;
      if (!Str(&s)) return false;
      *v = Value::String(std::move(s));
      return true;
    }
  }
  ok_ = false;
  return false;
}

// --- encoders ----------------------------------------------------------------

std::string Encode(const HelloRequest& m) {
  Writer w;
  w.U32(m.protocol_version);
  w.Str(m.tenant);
  w.Str(m.token);
  return w.Frame(FrameType::kHello);
}

std::string Encode(const PrepareRequest& m) {
  Writer w;
  w.U32(m.stmt_id);
  w.Str(m.sql);
  return w.Frame(FrameType::kPrepare);
}

Result<std::string> Encode(const BindRequest& m) {
  if (m.positional.size() > 0xFFFF || m.named.size() > 0xFFFF) {
    return Status::InvalidArgument(
        "Bind: too many parameters (" + std::to_string(m.positional.size()) +
        " positional, " + std::to_string(m.named.size()) +
        " named; the wire format carries at most 65535 of each)");
  }
  Writer w;
  w.U32(m.stmt_id);
  w.U32(m.portal_id);
  w.U16(static_cast<uint16_t>(m.positional.size()));
  for (const Value& v : m.positional) w.Val(v);
  w.U16(static_cast<uint16_t>(m.named.size()));
  for (const auto& [name, v] : m.named) {
    w.Str(name);
    w.Val(v);
  }
  return w.Frame(FrameType::kBind);
}

std::string Encode(const SubmitRequest& m) {
  Writer w;
  w.U32(m.portal_id);
  w.Str(m.preset);
  return w.Frame(FrameType::kSubmit);
}

std::string Encode(const FetchRequest& m) {
  Writer w;
  w.U64(m.query_id);
  w.U32(m.max_rows);
  return w.Frame(FrameType::kFetch);
}

std::string Encode(const CancelRequest& m) {
  Writer w;
  w.U64(m.query_id);
  return w.Frame(FrameType::kCancel);
}

std::string EncodeStatsRequest() { return EncodeFrame(FrameType::kStats, ""); }

std::string EncodeCloseRequest() { return EncodeFrame(FrameType::kClose, ""); }

std::string EncodeMetricsRequest() {
  return EncodeFrame(FrameType::kMetrics, "");
}

std::string Encode(const HelloOk& m) {
  Writer w;
  w.U64(m.session_id);
  w.Str(m.server_version);
  return w.Frame(FrameType::kHelloOk);
}

std::string Encode(const PrepareOk& m) {
  Writer w;
  w.U32(m.stmt_id);
  w.U16(m.num_params);
  w.U16(static_cast<uint16_t>(m.columns.size()));
  for (const auto& [label, type] : m.columns) {
    w.Str(label);
    w.U8(static_cast<uint8_t>(type));
  }
  return w.Frame(FrameType::kPrepareOk);
}

std::string Encode(const BindOk& m) {
  Writer w;
  w.U32(m.portal_id);
  return w.Frame(FrameType::kBindOk);
}

std::string Encode(const SubmitOk& m) {
  Writer w;
  w.U64(m.query_id);
  w.U8(m.admitted ? 1 : 0);
  w.U32(m.queue_position);
  return w.Frame(FrameType::kSubmitOk);
}

Result<std::string> Encode(const RowsResponse& m) {
  Writer w;
  w.U64(m.query_id);
  w.U8(m.done ? 1 : 0);
  w.U32(static_cast<uint32_t>(m.rows.size()));
  for (const auto& row : m.rows) {
    if (row.size() > 0xFFFF) {
      return Status::InvalidArgument(
          "Rows: a row of " + std::to_string(row.size()) +
          " columns exceeds the wire format's 65535-column limit");
    }
    w.U16(static_cast<uint16_t>(row.size()));
    for (const Value& v : row) w.Val(v);
  }
  return w.Frame(FrameType::kRows);
}

std::string Encode(const CancelOk& m) {
  Writer w;
  w.U64(m.query_id);
  return w.Frame(FrameType::kCancelOk);
}

std::string Encode(const StatsOk& m) {
  Writer w;
  w.U16(static_cast<uint16_t>(m.counters.size()));
  for (const auto& [key, value] : m.counters) {
    w.Str(key);
    w.U64(value);
  }
  return w.Frame(FrameType::kStatsOk);
}

std::string Encode(const MetricsOk& m) {
  Writer w;
  w.Str(m.text);
  return w.Frame(FrameType::kMetricsOk);
}

std::string EncodeCloseOk() { return EncodeFrame(FrameType::kCloseOk, ""); }

std::string Encode(const ErrorResponse& m) {
  Writer w;
  w.U16(static_cast<uint16_t>(m.code));
  w.Str(m.message);
  w.U32(m.sql_line);
  w.U32(m.sql_column);
  w.U32(m.retry_after_ms);
  return w.Frame(FrameType::kError);
}

// --- decoders ----------------------------------------------------------------

Status Decode(const std::string& payload, HelloRequest* out) {
  Reader r(payload);
  r.U32(&out->protocol_version);
  r.Str(&out->tenant);
  r.Str(&out->token);
  return FinishDecode(r, "Hello");
}

Status Decode(const std::string& payload, PrepareRequest* out) {
  Reader r(payload);
  r.U32(&out->stmt_id);
  r.Str(&out->sql);
  return FinishDecode(r, "Prepare");
}

Status Decode(const std::string& payload, BindRequest* out) {
  Reader r(payload);
  r.U32(&out->stmt_id);
  r.U32(&out->portal_id);
  uint16_t n = 0;
  r.U16(&n);
  out->positional.clear();
  for (uint16_t i = 0; i < n && r.ok(); ++i) {
    Value v;
    if (r.Val(&v)) out->positional.push_back(std::move(v));
  }
  uint16_t m = 0;
  r.U16(&m);
  out->named.clear();
  for (uint16_t i = 0; i < m && r.ok(); ++i) {
    std::string name;
    Value v;
    if (r.Str(&name) && r.Val(&v)) {
      out->named.emplace_back(std::move(name), std::move(v));
    }
  }
  return FinishDecode(r, "Bind");
}

Status Decode(const std::string& payload, SubmitRequest* out) {
  Reader r(payload);
  r.U32(&out->portal_id);
  r.Str(&out->preset);
  return FinishDecode(r, "Submit");
}

Status Decode(const std::string& payload, FetchRequest* out) {
  Reader r(payload);
  r.U64(&out->query_id);
  r.U32(&out->max_rows);
  return FinishDecode(r, "Fetch");
}

Status Decode(const std::string& payload, CancelRequest* out) {
  Reader r(payload);
  r.U64(&out->query_id);
  return FinishDecode(r, "Cancel");
}

Status Decode(const std::string& payload, HelloOk* out) {
  Reader r(payload);
  r.U64(&out->session_id);
  r.Str(&out->server_version);
  return FinishDecode(r, "HelloOk");
}

Status Decode(const std::string& payload, PrepareOk* out) {
  Reader r(payload);
  r.U32(&out->stmt_id);
  r.U16(&out->num_params);
  uint16_t n = 0;
  r.U16(&n);
  out->columns.clear();
  for (uint16_t i = 0; i < n && r.ok(); ++i) {
    std::string label;
    uint8_t tag = 0;
    if (r.Str(&label) && r.U8(&tag)) {
      out->columns.emplace_back(std::move(label),
                                static_cast<ValueType>(tag));
    }
  }
  return FinishDecode(r, "PrepareOk");
}

Status Decode(const std::string& payload, BindOk* out) {
  Reader r(payload);
  r.U32(&out->portal_id);
  return FinishDecode(r, "BindOk");
}

Status Decode(const std::string& payload, SubmitOk* out) {
  Reader r(payload);
  r.U64(&out->query_id);
  uint8_t admitted = 0;
  r.U8(&admitted);
  out->admitted = admitted != 0;
  r.U32(&out->queue_position);
  return FinishDecode(r, "SubmitOk");
}

Status Decode(const std::string& payload, RowsResponse* out) {
  Reader r(payload);
  r.U64(&out->query_id);
  uint8_t done = 0;
  r.U8(&done);
  out->done = done != 0;
  uint32_t n = 0;
  r.U32(&n);
  out->rows.clear();
  for (uint32_t i = 0; i < n && r.ok(); ++i) {
    uint16_t cols = 0;
    r.U16(&cols);
    std::vector<Value> row;
    row.reserve(cols);
    for (uint16_t c = 0; c < cols && r.ok(); ++c) {
      Value v;
      if (r.Val(&v)) row.push_back(std::move(v));
    }
    if (r.ok()) out->rows.push_back(std::move(row));
  }
  return FinishDecode(r, "Rows");
}

Status Decode(const std::string& payload, CancelOk* out) {
  Reader r(payload);
  r.U64(&out->query_id);
  return FinishDecode(r, "CancelOk");
}

Status Decode(const std::string& payload, StatsOk* out) {
  Reader r(payload);
  uint16_t n = 0;
  r.U16(&n);
  out->counters.clear();
  for (uint16_t i = 0; i < n && r.ok(); ++i) {
    std::string key;
    uint64_t value = 0;
    if (r.Str(&key) && r.U64(&value)) {
      out->counters.emplace_back(std::move(key), value);
    }
  }
  return FinishDecode(r, "StatsOk");
}

Status Decode(const std::string& payload, MetricsOk* out) {
  Reader r(payload);
  r.Str(&out->text);
  return FinishDecode(r, "MetricsOk");
}

Status Decode(const std::string& payload, ErrorResponse* out) {
  Reader r(payload);
  uint16_t code = 0;
  r.U16(&code);
  r.Str(&out->message);
  r.U32(&out->sql_line);
  r.U32(&out->sql_column);
  r.U32(&out->retry_after_ms);
  Status st = FinishDecode(r, "Error");
  if (!st.ok()) return st;
  if (code > static_cast<uint16_t>(StatusCode::kInvalidQuery)) {
    return Status::InvalidArgument(
        "malformed Error frame: unknown status code " + std::to_string(code));
  }
  out->code = static_cast<StatusCode>(code);
  return Status::OK();
}

bool ExtractSqlPosition(const std::string& message, uint32_t* line,
                        uint32_t* column) {
  // Scan backwards for the last " at <digits>:<digits>" — the shape every
  // positioned diagnostic of the SQL front-end ends with.
  for (size_t at = message.rfind(" at "); at != std::string::npos;
       at = (at == 0) ? std::string::npos : message.rfind(" at ", at - 1)) {
    size_t p = at + 4;
    uint64_t l = 0, c = 0;
    size_t digits = 0;
    while (p < message.size() && message[p] >= '0' && message[p] <= '9') {
      l = l * 10 + static_cast<uint64_t>(message[p] - '0');
      ++p;
      ++digits;
    }
    if (digits == 0 || p >= message.size() || message[p] != ':') continue;
    ++p;
    digits = 0;
    while (p < message.size() && message[p] >= '0' && message[p] <= '9') {
      c = c * 10 + static_cast<uint64_t>(message[p] - '0');
      ++p;
      ++digits;
    }
    if (digits == 0 || l == 0 || c == 0) continue;
    if (l > UINT32_MAX || c > UINT32_MAX) continue;
    *line = static_cast<uint32_t>(l);
    *column = static_cast<uint32_t>(c);
    return true;
  }
  return false;
}

ErrorResponse ErrorFromStatus(const Status& status, uint32_t retry_after_ms) {
  ErrorResponse error;
  error.code = status.code();
  error.message = status.message();
  error.retry_after_ms = retry_after_ms;
  ExtractSqlPosition(status.message(), &error.sql_line, &error.sql_column);
  return error;
}

Status StatusFromError(const ErrorResponse& error) {
  return Status(error.code, error.message);
}

}  // namespace stems::server::wire
