// Server: the network front-end that turns the in-process Engine into a
// multi-tenant query service.
//
// Two threads serve N client sessions over one shared Engine:
//
//   * the network thread owns every socket: a poll(2) loop accepts
//     connections, reads bytes into per-session buffers, frames them
//     (server/wire.h) and hands decoded work to the engine thread through
//     a bounded queue; response bytes flow back through per-session output
//     buffers written when the socket is writable. A slow client therefore
//     only backs up its own buffers — it never blocks the engine clock or
//     any other session.
//   * the engine thread is the only thread that touches the Engine (the
//     discrete-event core is single-threaded by design): it pops requests
//     in arrival order, runs Prepare/Bind/Submit, pumps ResultCursors to
//     build Fetch responses, and drives admission control.
//
// Sessions authenticate as a *tenant* (Hello frame); the TenantGovernor
// decides per Submit whether the tenant may run another query now, must
// queue behind its quota, or is rejected with a retry-after hint. Finished
// queries roll their QueryStats up per tenant (the Stats frame).
//
// Lifecycle: construct over a fully-populated Engine, Start(), serve,
// Shutdown() — which stops accepting, drains active sessions up to
// ServerOptions::shutdown_drain_ms, cancels whatever is still running via
// the engine's cancel path, and joins both threads. The Engine must
// outlive the Server and must not be touched by the owner between Start()
// and Shutdown().
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "common/thread_annotations.h"
#include "engine/engine.h"
#include "server/request_queue.h"
#include "server/tenant_governor.h"
#include "server/wire.h"

namespace stems::server {

struct TenantConfig {
  std::string name;
  /// Shared secret the Hello frame must present. Empty = no token check
  /// for this tenant.
  std::string token;
  TenantQuota quota;
};

struct ServerOptions {
  /// TCP port on 127.0.0.1; 0 = pick an ephemeral port (see
  /// Server::port()).
  uint16_t port = 0;
  size_t max_sessions = 64;
  uint32_t max_frame_payload = wire::kMaxFramePayload;
  /// Bounded request queue between the network and engine threads; when
  /// full, the network thread stops decoding (socket buffers provide the
  /// backpressure to clients).
  size_t request_queue_capacity = 256;
  /// Graceful-shutdown drain budget: how long Shutdown() keeps serving so
  /// active queries can finish before the remainder is cancelled.
  uint32_t shutdown_drain_ms = 2000;
  /// Base RunOptions for every Submit (a Submit frame's preset string
  /// replaces them wholesale). share_stems pools SteM state across the
  /// tenants' queries — the serving configuration.
  RunOptions run_options;
  /// Tenants allowed to connect. Empty = open mode: any tenant name is
  /// accepted (no token check) and auto-registered with a default quota.
  std::vector<TenantConfig> tenants;
  /// Slow-query log threshold: a query whose submit-to-finish wall time
  /// reaches this many milliseconds is reported (one line: tenant, wall
  /// time, result/routing/spill counters) when its slot is released.
  /// 0 disables the log.
  uint32_t slow_query_ms = 0;
  /// Receives each slow-query line; when unset, lines go to STEMS_LOG
  /// (Warning). Called on the engine thread — keep it cheap.
  std::function<void(const std::string& line)> slow_query_log;
  /// Test-only hook, invoked on the engine thread right after a query is
  /// submitted to the Engine (fault injection into the live dataflow).
  std::function<void(const std::string& tenant, QueryHandle&)>
      post_submit_hook;
};

class Server {
 public:
  /// The engine must be fully populated (AddTable) before Start().
  Server(Engine* engine, ServerOptions options);
  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds 127.0.0.1:<port>, spawns the network and engine threads.
  Status Start();

  /// Graceful stop: stop accepting, drain up to shutdown_drain_ms, cancel
  /// remaining queries, close every socket, join both threads. Idempotent.
  void Shutdown();

  /// The bound port (after Start()).
  uint16_t port() const { return port_; }
  bool running() const { return started_; }

  /// Live observability (thread-safe).
  size_t active_sessions() const;
  /// Engine-loop wakeups since Start(). An idle server must stay on the
  /// long cv-wait cadence, so this grows by only a few per second with no
  /// clients connected (regression-tested: the loop must not busy-tick).
  uint64_t engine_ticks() const {
    return engine_ticks_.load(std::memory_order_relaxed);
  }
  TenantRollup TenantStats(const std::string& tenant) const {
    return governor_.Rollup(tenant);
  }
  const TenantGovernor& governor() const { return governor_; }
  /// Prometheus-style plaintext exposition of the engine's metrics
  /// registry, with the server.* gauges (sessions, engine ticks, request
  /// queue depth/high-water) refreshed first. Thread-safe; also serves the
  /// Metrics wire frame.
  std::string MetricsText();

 private:
  struct Session;
  struct QueryRec;

  // Request + RequestQueue live in server/request_queue.h: the bounded,
  // lane-fair MPSC hand-off between the two threads (extracted so the
  // schedule-exploration harness can drive the real queue).

  // --- network thread --------------------------------------------------------
  enum class ReadOutcome {
    kOpen,  // socket still readable (possibly after appending bytes)
    kEof,   // orderly end of input: the peer half-closed its write side
    kError  // hard socket error: the connection is dead both ways
  };

  void NetThreadMain();
  void AcceptNewSession();
  /// Drains readable bytes from one session into its input buffer.
  ReadOutcome ReadFromSession(const std::shared_ptr<Session>& session);
  /// Extracts complete frames from the session's input buffer and pushes
  /// them onto the request queue, honoring backpressure.
  void ParseFrames(const std::shared_ptr<Session>& session);
  void FlushSession(const std::shared_ptr<Session>& session);
  void CloseSessionFd(const std::shared_ptr<Session>& session);
  void WakeNet();

  // --- engine thread ---------------------------------------------------------
  void EngineThreadMain();
  void ProcessRequest(const Request& request);
  void ProcessFrame(const std::shared_ptr<Session>& session,
                    wire::FrameType type, const std::string& payload);
  void HandleHello(const std::shared_ptr<Session>& session,
                   const std::string& payload);
  void HandlePrepare(const std::shared_ptr<Session>& session,
                     const std::string& payload);
  void HandleBind(const std::shared_ptr<Session>& session,
                  const std::string& payload);
  void HandleSubmit(const std::shared_ptr<Session>& session,
                    const std::string& payload);
  void HandleFetch(const std::shared_ptr<Session>& session,
                   const std::string& payload);
  void HandleCancel(const std::shared_ptr<Session>& session,
                    const std::string& payload);
  void HandleStats(const std::shared_ptr<Session>& session);
  void HandleMetrics(const std::shared_ptr<Session>& session);
  /// Reports a finished query on the slow-query log when it ran at least
  /// ServerOptions::slow_query_ms (no-op when disabled or never started).
  void MaybeLogSlowQuery(const QueryRec& rec);
  /// Starts a bound spec on the engine and wires the QueryRec. Returns
  /// non-OK when Engine::Submit failed (slot already released).
  Status StartQuery(const std::shared_ptr<Session>& session, QueryRec* rec);
  /// Returns a finished query's governor slot + memory charge and rolls
  /// its final QueryStats into the tenant rollup (idempotent).
  void ReleaseSlot(const std::shared_ptr<Session>& session, QueryRec* rec);
  /// Observes queries that finished since the last sweep: releases their
  /// governor slots, rolls up stats, then admits queued submits that now
  /// fit.
  void SweepCompletions();
  void AdmitQueuedSubmits();
  /// True if any tenant has a deferred submit waiting for capacity (the
  /// per-tenant deques can be empty; the map keeps drained entries).
  bool HasQueuedSubmits() const;
  /// Cancels every live query of the session and releases its governor
  /// charges; the session keeps only its socket state afterwards.
  void CleanupSessionState(const std::shared_ptr<Session>& session);
  /// Engine-thread shutdown tail: cancel everything still running.
  void CancelAllQueries();
  bool Drained() const;

  /// Sends one response frame (appends to the session's output buffer and
  /// wakes the network thread).
  void SendFrame(const std::shared_ptr<Session>& session, std::string frame);
  /// Encodes and sends a Rows response; a row too wide for the wire format
  /// is surfaced as a typed error frame instead of a truncated frame.
  void SendRows(const std::shared_ptr<Session>& session,
                const wire::RowsResponse& response);
  void SendError(const std::shared_ptr<Session>& session, const Status& status,
                 uint32_t retry_after_ms = 0);
  /// Error + mark the session for close-after-flush (protocol violations).
  void SendErrorAndClose(const std::shared_ptr<Session>& session,
                         const Status& status);

  std::shared_ptr<Session> FindSession(uint64_t session_id) const;

  Engine* engine_;
  ServerOptions options_;
  TenantGovernor governor_;
  RequestQueue queue_;

  /// sync: lifecycle flags crossing the owner / net / engine threads;
  /// the (seq_cst) accesses give each flag flip a single global order, and
  /// thread start/join bracket the non-atomic state around it.
  /// stems::Atomic: model-checking yield points (src/check/).
  Atomic<bool> started_{false};
  Atomic<bool> shutdown_requested_{false};
  Atomic<bool> stop_net_{false};
  Atomic<bool> engine_thread_done_{false};
  /// relaxed: monotone wakeup counter, observability only.
  // invariant: allow(schedulable-atomic) -- observability statistic, not a sync protocol
  std::atomic<uint64_t> engine_ticks_{0};
  /// sync: written by Shutdown() strictly before the shutdown_requested_
  /// store; the engine thread reads it only after observing that flag, so
  /// the seq_cst flag publishes this plain field.
  std::chrono::steady_clock::time_point shutdown_deadline_{};

  int listen_fd_ = -1;
  int wake_pipe_[2] = {-1, -1};
  uint16_t port_ = 0;

  mutable Mutex sessions_mu_;
  /// The session map is shared between the net thread (accept/poll/erase)
  /// and the engine thread (FindSession); Session field ownership is
  /// documented on the struct itself (server.cc).
  std::map<uint64_t, std::shared_ptr<Session>> sessions_
      STEMS_GUARDED_BY(sessions_mu_);
  uint64_t next_session_id_ STEMS_GUARDED_BY(sessions_mu_) = 1;
  /// Engine-thread-owned (only HandleSubmit touches it); not guarded.
  uint64_t next_query_id_ = 1;

  /// Deferred submits per tenant, admission order: (session id, query id).
  std::unordered_map<std::string,
                     std::deque<std::pair<uint64_t, uint64_t>>>
      pending_submits_;

  /// Tenant -> fairness lane id for the request queue. Engine-thread-owned
  /// (assigned in HandleHello); sessions carry their lane in an atomic the
  /// network thread reads when stamping requests. Lane 0 is the shared
  /// pre-authentication lane, so ids start at 1.
  std::unordered_map<std::string, uint32_t> tenant_lanes_;
  uint32_t next_lane_id_ = 1;

  std::thread net_thread_;
  std::thread engine_thread_;
};

}  // namespace stems::server
